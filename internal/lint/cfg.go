package lint

import (
	"go/ast"
	"go/token"
)

// This file builds the intraprocedural control-flow graph the dataflow
// analyzers (arenagc, and anything PR-10+ layers on the engine) interpret.
// It is deliberately SSA-lite: blocks hold the original statements in
// execution order, control statements appear once as their own "header"
// entry (condition/tag evaluation), and nested bodies become separate
// blocks wired with successor edges. Break/continue resolve through a
// stack of enclosing constructs, labels included; goto is treated as a
// terminator (the repo has none — a missing edge only under-approximates
// a may-analysis, it cannot crash it).

// block is one straight-line run of statements.
type block struct {
	stmts []ast.Stmt
	succs []*block
}

// funcCFG is the flow graph of one function body.
type funcCFG struct {
	entry  *block
	blocks []*block
}

// cfgBuilder carries the under-construction graph.
type cfgBuilder struct {
	g      *funcCFG
	cur    *block
	stack  []cfgFrame        // enclosing breakable/continuable constructs
	labels map[string]string // pending label for the next loop/switch
}

// cfgFrame is one enclosing construct a break/continue can target.
type cfgFrame struct {
	label      string
	breakTo    *block
	contTo     *block // nil for switch/select (continue skips them)
	isLoop     bool
	caseBlocks []*block // switch only: fallthrough targets in order
	caseIdx    int
}

// buildCFG constructs the flow graph of a function body.
func buildCFG(body *ast.BlockStmt) *funcCFG {
	g := &funcCFG{}
	b := &cfgBuilder{g: g}
	g.entry = b.newBlock()
	b.cur = g.entry
	b.stmtList(body.List, "")
	return g
}

func (b *cfgBuilder) newBlock() *block {
	blk := &block{}
	b.g.blocks = append(b.g.blocks, blk)
	return blk
}

func edge(from, to *block) {
	if from == nil || to == nil {
		return
	}
	from.succs = append(from.succs, to)
}

// put appends a statement to the current block (dropped when the current
// position is unreachable after a terminator).
func (b *cfgBuilder) put(s ast.Stmt) {
	if b.cur != nil {
		b.cur.stmts = append(b.cur.stmts, s)
	}
}

// stmtList builds a statement sequence; label names the construct the
// first statement belongs to (from an enclosing LabeledStmt).
func (b *cfgBuilder) stmtList(list []ast.Stmt, label string) {
	for i, s := range list {
		lbl := ""
		if i == 0 {
			lbl = label
		}
		b.stmt(s, lbl)
	}
}

// frameFor finds the innermost frame a break/continue targets.
func (b *cfgBuilder) frameFor(label string, isContinue bool) *cfgFrame {
	for i := len(b.stack) - 1; i >= 0; i-- {
		f := &b.stack[i]
		if label != "" {
			if f.label == label && (!isContinue || f.isLoop) {
				return f
			}
			continue
		}
		if isContinue && !f.isLoop {
			continue
		}
		return f
	}
	return nil
}

func (b *cfgBuilder) stmt(s ast.Stmt, label string) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List, "")

	case *ast.LabeledStmt:
		b.stmt(s.Stmt, s.Label.Name)

	case *ast.IfStmt:
		if s.Init != nil {
			b.put(s.Init)
		}
		b.put(s) // header: the condition evaluates here
		cond := b.cur
		after := b.newBlock()
		then := b.newBlock()
		edge(cond, then)
		b.cur = then
		b.stmtList(s.Body.List, "")
		edge(b.cur, after)
		if s.Else != nil {
			els := b.newBlock()
			edge(cond, els)
			b.cur = els
			b.stmt(s.Else, "")
			edge(b.cur, after)
		} else {
			edge(cond, after)
		}
		b.cur = after

	case *ast.ForStmt:
		if s.Init != nil {
			b.put(s.Init)
		}
		head := b.newBlock()
		edge(b.cur, head)
		head.stmts = append(head.stmts, s) // header: the condition evaluates here
		body := b.newBlock()
		after := b.newBlock()
		post := b.newBlock()
		edge(head, body)
		if s.Cond != nil {
			edge(head, after)
		}
		if s.Post != nil {
			post.stmts = append(post.stmts, s.Post)
		}
		edge(post, head)
		b.stack = append(b.stack, cfgFrame{label: label, breakTo: after, contTo: post, isLoop: true})
		b.cur = body
		b.stmtList(s.Body.List, "")
		edge(b.cur, post)
		b.stack = b.stack[:len(b.stack)-1]
		b.cur = after

	case *ast.RangeStmt:
		head := b.newBlock()
		edge(b.cur, head)
		head.stmts = append(head.stmts, s) // header: X evaluates, key/value bind
		body := b.newBlock()
		after := b.newBlock()
		edge(head, body)
		edge(head, after)
		b.stack = append(b.stack, cfgFrame{label: label, breakTo: after, contTo: head, isLoop: true})
		b.cur = body
		b.stmtList(s.Body.List, "")
		edge(b.cur, head)
		b.stack = b.stack[:len(b.stack)-1]
		b.cur = after

	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		var init ast.Stmt
		var clauses []ast.Stmt
		if sw, ok := s.(*ast.SwitchStmt); ok {
			init = sw.Init
			clauses = sw.Body.List
		} else {
			ts := s.(*ast.TypeSwitchStmt)
			init = ts.Init
			clauses = ts.Body.List
		}
		if init != nil {
			b.put(init)
		}
		b.put(s) // header: tag / type-switch assign evaluates here
		hdr := b.cur
		after := b.newBlock()
		var caseBlocks []*block
		hasDefault := false
		for _, c := range clauses {
			cc := c.(*ast.CaseClause)
			if cc.List == nil {
				hasDefault = true
			}
			cb := b.newBlock()
			edge(hdr, cb)
			caseBlocks = append(caseBlocks, cb)
		}
		if !hasDefault {
			edge(hdr, after)
		}
		b.stack = append(b.stack, cfgFrame{label: label, breakTo: after, caseBlocks: caseBlocks})
		for i, c := range clauses {
			cc := c.(*ast.CaseClause)
			b.stack[len(b.stack)-1].caseIdx = i
			b.cur = caseBlocks[i]
			b.stmtList(cc.Body, "")
			edge(b.cur, after)
		}
		b.stack = b.stack[:len(b.stack)-1]
		b.cur = after

	case *ast.SelectStmt:
		b.put(s) // header
		hdr := b.cur
		after := b.newBlock()
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			cb := b.newBlock()
			edge(hdr, cb)
			b.stack = append(b.stack, cfgFrame{label: label, breakTo: after})
			b.cur = cb
			if cc.Comm != nil {
				b.put(cc.Comm)
			}
			b.stmtList(cc.Body, "")
			edge(b.cur, after)
			b.stack = b.stack[:len(b.stack)-1]
		}
		b.cur = after

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			lbl := ""
			if s.Label != nil {
				lbl = s.Label.Name
			}
			if f := b.frameFor(lbl, false); f != nil {
				edge(b.cur, f.breakTo)
			}
			b.cur = nil
		case token.CONTINUE:
			lbl := ""
			if s.Label != nil {
				lbl = s.Label.Name
			}
			if f := b.frameFor(lbl, true); f != nil {
				edge(b.cur, f.contTo)
			}
			b.cur = nil
		case token.FALLTHROUGH:
			if len(b.stack) > 0 {
				f := &b.stack[len(b.stack)-1]
				if f.caseBlocks != nil && f.caseIdx+1 < len(f.caseBlocks) {
					edge(b.cur, f.caseBlocks[f.caseIdx+1])
				}
			}
			b.cur = nil
		case token.GOTO:
			b.cur = nil // terminator; the repo has no gotos
		}

	case *ast.ReturnStmt:
		b.put(s)
		b.cur = nil

	default:
		// Assignments, declarations, expression statements, sends, defers,
		// go statements, inc/dec: straight-line entries.
		b.put(s)
		if es, ok := s.(*ast.ExprStmt); ok {
			if call, ok := es.X.(*ast.CallExpr); ok && calleeName(call) == "panic" {
				b.cur = nil
			}
		}
	}
	if b.cur == nil {
		b.cur = b.newBlock() // unreachable continuation
	}
}

// stmtEvalNodes returns the sub-nodes a dataflow transfer function should
// interpret when a statement appears in a block: control-statement
// headers expose only the expressions that evaluate at that point (their
// bodies are separate blocks); everything else is interpreted whole.
func stmtEvalNodes(s ast.Stmt) []ast.Node {
	switch s := s.(type) {
	case *ast.IfStmt:
		return []ast.Node{s.Cond}
	case *ast.ForStmt:
		if s.Cond != nil {
			return []ast.Node{s.Cond}
		}
		return nil
	case *ast.RangeStmt:
		nodes := []ast.Node{s.X}
		if s.Key != nil {
			nodes = append(nodes, s.Key)
		}
		if s.Value != nil {
			nodes = append(nodes, s.Value)
		}
		return nodes
	case *ast.SwitchStmt:
		if s.Tag != nil {
			return []ast.Node{s.Tag}
		}
		return nil
	case *ast.TypeSwitchStmt:
		return []ast.Node{s.Assign}
	case *ast.SelectStmt:
		return nil
	default:
		return []ast.Node{s}
	}
}
