// Package satgen generates competition-style CNF benchmarks standing in
// for the paper's SAT Competition 2017 suite (310 instances): a
// heterogeneous population of application-like, crafted and random
// formulas. The real suite is a multi-gigabyte download of proprietary-mix
// instances; these generators produce the same *kinds* of structure —
// random k-SAT at the phase transition, pigeonhole and mutilated
// chessboard (crafted UNSAT), XOR/parity chains (where ANF-level
// reasoning shines), graph colouring, and unrolled sequential circuits
// (BMC-style) — with known satisfiability status where possible.
package satgen

import (
	"fmt"
	"math/rand"

	"repro/internal/cnf"
)

// Status is the known ground truth of a generated instance.
type Status int

const (
	// StatusUnknown means the generator cannot certify the answer.
	StatusUnknown Status = iota
	// StatusSat means the instance is satisfiable by construction.
	StatusSat
	// StatusUnsat means the instance is unsatisfiable by construction.
	StatusUnsat
)

func (s Status) String() string {
	switch s {
	case StatusSat:
		return "SAT"
	case StatusUnsat:
		return "UNSAT"
	default:
		return "UNKNOWN"
	}
}

// Instance is a generated benchmark.
type Instance struct {
	Name    string
	Formula *cnf.Formula
	Status  Status
}

// RandomKSAT generates a uniform random k-SAT formula with the given
// clause/variable ratio (4.26 is the 3-SAT phase transition).
func RandomKSAT(nVars, k int, ratio float64, rng *rand.Rand) *Instance {
	f := cnf.NewFormula(nVars)
	nClauses := int(ratio * float64(nVars))
	for i := 0; i < nClauses; i++ {
		seen := map[int]bool{}
		var c []cnf.Lit
		for len(c) < k {
			v := rng.Intn(nVars)
			if seen[v] {
				continue
			}
			seen[v] = true
			c = append(c, cnf.MkLit(cnf.Var(v), rng.Intn(2) == 1))
		}
		f.AddClause(c...)
	}
	return &Instance{
		Name:    fmt.Sprintf("rand%dsat-v%d-r%.2f", k, nVars, ratio),
		Formula: f,
		Status:  StatusUnknown,
	}
}

// Pigeonhole generates PHP(pigeons, holes): UNSAT iff pigeons > holes.
func Pigeonhole(pigeons, holes int) *Instance {
	f := cnf.NewFormula(pigeons * holes)
	at := func(p, h int) cnf.Var { return cnf.Var(p*holes + h) }
	for p := 0; p < pigeons; p++ {
		var c []cnf.Lit
		for h := 0; h < holes; h++ {
			c = append(c, cnf.MkLit(at(p, h), false))
		}
		f.AddClause(c...)
	}
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				f.AddClause(cnf.MkLit(at(p1, h), true), cnf.MkLit(at(p2, h), true))
			}
		}
	}
	st := StatusSat
	if pigeons > holes {
		st = StatusUnsat
	}
	return &Instance{Name: fmt.Sprintf("php-%d-%d", pigeons, holes), Formula: f, Status: st}
}

// ParityChain generates a random linear system over GF(2) encoded as CNF
// (each XOR expanded clausally): n variables, m equations of width w. With
// planted = true the RHS comes from a planted solution (SAT); otherwise
// random RHS (usually UNSAT once m > n). This is the family where a
// GJE-enabled solver or ANF-level reasoning wins big.
func ParityChain(nVars, nEqs, width int, planted bool, rng *rand.Rand) *Instance {
	f := cnf.NewFormula(nVars)
	sol := make([]bool, nVars)
	for i := range sol {
		sol[i] = rng.Intn(2) == 1
	}
	status := StatusSat
	if !planted {
		status = StatusUnknown
	}
	for e := 0; e < nEqs; e++ {
		seen := map[int]bool{}
		var vs []cnf.Var
		for len(vs) < width {
			v := rng.Intn(nVars)
			if seen[v] {
				continue
			}
			seen[v] = true
			vs = append(vs, cnf.Var(v))
		}
		rhs := rng.Intn(2) == 1
		if planted {
			rhs = false
			for _, v := range vs {
				if sol[v] {
					rhs = !rhs
				}
			}
		}
		// Clausal expansion of the XOR (2^(w-1) clauses).
		for mask := 0; mask < 1<<uint(width); mask++ {
			parity := false
			for i := 0; i < width; i++ {
				if mask>>uint(i)&1 == 1 {
					parity = !parity
				}
			}
			if parity == rhs {
				continue
			}
			lits := make([]cnf.Lit, width)
			for i := 0; i < width; i++ {
				lits[i] = cnf.MkLit(vs[i], mask>>uint(i)&1 == 1)
			}
			f.AddClause(lits...)
		}
	}
	kind := "rand"
	if planted {
		kind = "planted"
	}
	return &Instance{
		Name:    fmt.Sprintf("parity-%s-v%d-e%d-w%d", kind, nVars, nEqs, width),
		Formula: f,
		Status:  status,
	}
}

// GraphColoring generates a k-colouring instance of a random graph with
// the given edge density. Status is unknown in general.
func GraphColoring(nNodes, colors int, density float64, rng *rand.Rand) *Instance {
	f := cnf.NewFormula(nNodes * colors)
	at := func(node, c int) cnf.Var { return cnf.Var(node*colors + c) }
	for n := 0; n < nNodes; n++ {
		var c []cnf.Lit
		for k := 0; k < colors; k++ {
			c = append(c, cnf.MkLit(at(n, k), false))
		}
		f.AddClause(c...)
		for k1 := 0; k1 < colors; k1++ {
			for k2 := k1 + 1; k2 < colors; k2++ {
				f.AddClause(cnf.MkLit(at(n, k1), true), cnf.MkLit(at(n, k2), true))
			}
		}
	}
	for a := 0; a < nNodes; a++ {
		for b := a + 1; b < nNodes; b++ {
			if rng.Float64() >= density {
				continue
			}
			for k := 0; k < colors; k++ {
				f.AddClause(cnf.MkLit(at(a, k), true), cnf.MkLit(at(b, k), true))
			}
		}
	}
	return &Instance{
		Name:    fmt.Sprintf("color-n%d-k%d-d%.2f", nNodes, colors, density),
		Formula: f,
		Status:  StatusUnknown,
	}
}

// LFSRReach generates a BMC-style unrolling: an n-bit Fibonacci LFSR with
// random taps is unrolled for `steps` transitions from a symbolic initial
// state; the property asks for an initial state whose trajectory ends in
// the all-ones state. The transition relation is linear, so the instance
// rewards XOR recovery; satisfiability is decided at generation time by
// simulating all... no — by construction: we pick a random final trajectory
// backwards, making the instance SAT, or add a blocking twist for UNSAT.
func LFSRReach(nBits, steps int, unsat bool, rng *rand.Rand) *Instance {
	f := cnf.NewFormula(nBits * (steps + 1))
	at := func(step, bit int) cnf.Var { return cnf.Var(step*nBits + bit) }
	// Random taps: bit 0's next value is the XOR of tapped bits; other
	// bits shift.
	taps := []int{0}
	for b := 1; b < nBits; b++ {
		if rng.Intn(3) == 0 {
			taps = append(taps, b)
		}
	}
	for s := 0; s < steps; s++ {
		// next[b] = cur[b+1] for b < n-1  (shift)
		for b := 0; b+1 < nBits; b++ {
			// Equality via two binary clauses.
			f.AddClause(cnf.MkLit(at(s+1, b), true), cnf.MkLit(at(s, b+1), false))
			f.AddClause(cnf.MkLit(at(s+1, b), false), cnf.MkLit(at(s, b+1), true))
		}
		// next[n-1] = XOR of taps of cur: clausal expansion.
		vs := []cnf.Var{at(s+1, nBits-1)}
		for _, tp := range taps {
			vs = append(vs, at(s, tp))
		}
		w := len(vs)
		for mask := 0; mask < 1<<uint(w); mask++ {
			parity := false
			for i := 0; i < w; i++ {
				if mask>>uint(i)&1 == 1 {
					parity = !parity
				}
			}
			if !parity { // constraint: XOR of all = 0 (next ⊕ taps = 0)
				continue
			}
			lits := make([]cnf.Lit, w)
			for i := 0; i < w; i++ {
				lits[i] = cnf.MkLit(vs[i], mask>>uint(i)&1 == 1)
			}
			f.AddClause(lits...)
		}
	}
	// Property: final state all ones.
	for b := 0; b < nBits; b++ {
		f.AddClause(cnf.MkLit(at(steps, b), false))
	}
	status := StatusSat // the final state determines a valid backward run
	if unsat {
		// Additionally force the initial state to all zeros, whose forward
		// trajectory stays zero — contradiction with the all-ones target.
		for b := 0; b < nBits; b++ {
			f.AddClause(cnf.MkLit(at(0, b), true))
		}
		status = StatusUnsat
	}
	kind := "sat"
	if unsat {
		kind = "unsat"
	}
	return &Instance{
		Name:    fmt.Sprintf("lfsr-%s-n%d-s%d", kind, nBits, steps),
		Formula: f,
		Status:  status,
	}
}

// MutilatedChessboard encodes domino tiling of an n×n board with two
// opposite corners removed — the classic crafted UNSAT family (the two
// removed squares share a colour, so no perfect domino cover exists).
// Variables are the horizontal/vertical domino placements; each remaining
// square must be covered exactly once. Resolution needs exponential size
// on this family, making it a strong crafted member of the suite.
func MutilatedChessboard(n int) *Instance {
	if n < 2 {
		panic("satgen: board too small")
	}
	removed := func(r, c int) bool {
		return (r == 0 && c == 0) || (r == n-1 && c == n-1)
	}
	// Enumerate dominoes over remaining squares.
	type domino struct{ r1, c1, r2, c2 int }
	var doms []domino
	covering := map[[2]int][]int{} // square -> domino variable indices
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			if removed(r, c) {
				continue
			}
			if c+1 < n && !removed(r, c+1) {
				covering[[2]int{r, c}] = append(covering[[2]int{r, c}], len(doms))
				covering[[2]int{r, c + 1}] = append(covering[[2]int{r, c + 1}], len(doms))
				doms = append(doms, domino{r, c, r, c + 1})
			}
			if r+1 < n && !removed(r+1, c) {
				covering[[2]int{r, c}] = append(covering[[2]int{r, c}], len(doms))
				covering[[2]int{r + 1, c}] = append(covering[[2]int{r + 1, c}], len(doms))
				doms = append(doms, domino{r, c, r + 1, c})
			}
		}
	}
	f := cnf.NewFormula(len(doms))
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			if removed(r, c) {
				continue
			}
			vars := covering[[2]int{r, c}]
			// At least one covering domino...
			clause := make([]cnf.Lit, len(vars))
			for i, v := range vars {
				clause[i] = cnf.MkLit(cnf.Var(v), false)
			}
			f.AddClause(clause...)
			// ... and at most one (pairwise).
			for i := 0; i < len(vars); i++ {
				for j := i + 1; j < len(vars); j++ {
					f.AddClause(cnf.MkLit(cnf.Var(vars[i]), true), cnf.MkLit(cnf.Var(vars[j]), true))
				}
			}
		}
	}
	return &Instance{
		Name:    fmt.Sprintf("mutilated-chessboard-%d", n),
		Formula: f,
		Status:  StatusUnsat,
	}
}

// SuiteConfig scales the benchmark suite.
type SuiteConfig struct {
	// Scale multiplies instance sizes (1 = laptop-quick defaults).
	Scale int
	// PerFamily is the number of instances per generator family.
	PerFamily int
	// Seed fixes the population.
	Seed int64
}

// DefaultSuiteConfig returns a quick, minutes-scale suite.
func DefaultSuiteConfig() SuiteConfig {
	return SuiteConfig{Scale: 1, PerFamily: 4, Seed: 20170901}
}

// Suite generates the full mixed population, the stand-in for the
// SAT-2017 benchmark set.
func Suite(cfg SuiteConfig) []*Instance {
	if cfg.Scale < 1 {
		cfg.Scale = 1
	}
	if cfg.PerFamily < 1 {
		cfg.PerFamily = 4
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var out []*Instance
	for i := 0; i < cfg.PerFamily; i++ {
		n := (40 + 25*i) * cfg.Scale
		out = append(out, RandomKSAT(n, 3, 4.26, rng))
	}
	for i := 0; i < cfg.PerFamily; i++ {
		// Steep ladder: the larger pigeonholes are the suite's genuinely
		// hard UNSAT members (they feed the Table II hard-subset row).
		h := 5 + 2*i + cfg.Scale
		out = append(out, Pigeonhole(h+1, h))
	}
	for i := 0; i < cfg.PerFamily; i++ {
		n := (24 + 8*i) * cfg.Scale
		out = append(out, ParityChain(n, n+4, 3, i%2 == 0, rng))
	}
	for i := 0; i < cfg.PerFamily; i++ {
		out = append(out, GraphColoring(10+3*i*cfg.Scale, 3, 0.35, rng))
	}
	for i := 0; i < cfg.PerFamily; i++ {
		out = append(out, LFSRReach(8+2*i, 6+2*i*cfg.Scale, i%2 == 1, rng))
	}
	for i := 0; i < cfg.PerFamily; i++ {
		out = append(out, MutilatedChessboard(4+2*i*cfg.Scale))
	}
	return out
}
