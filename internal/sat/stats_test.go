package sat

import (
	"strings"
	"testing"
)

func TestSnapshotAndString(t *testing.T) {
	s := New(DefaultOptions(ProfileCMS))
	s.AddFormula(pigeonhole(6, 5))
	s.AddXor(true, 0, 1, 2)
	s.Solve()
	st := s.Snapshot()
	if st.Vars == 0 || st.Clauses == 0 {
		t.Fatalf("empty stats: %+v", st)
	}
	if st.Conflicts == 0 {
		t.Fatal("pigeonhole should conflict")
	}
	// NativeXor is on by default, so the short XOR lands in the parity
	// store, not the Gauss row set.
	if st.ParityClauses != 1 {
		t.Fatalf("parity clauses = %d", st.ParityClauses)
	}
	if st.XorRows != 0 {
		t.Fatalf("xor rows = %d", st.XorRows)
	}
	out := st.String()
	for _, want := range []string{"vars=", "conflicts=", "parity=1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("stats string missing %q: %s", want, out)
		}
	}

	// The CNF-cut fallback restores the Gauss routing and its XorRows
	// accounting.
	opts := DefaultOptions(ProfileCMS)
	opts.NativeXor = false
	s2 := New(opts)
	s2.AddXor(true, 0, 1, 2)
	if got := s2.Snapshot().XorRows; got != 1 {
		t.Fatalf("gauss xor rows = %d", got)
	}
}
