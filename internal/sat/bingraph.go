package sat

import "repro/internal/cnf"

// This file is the shared strongly-connected-component machinery over
// binary implication graphs. Two consumers build on it:
//
//   - BinaryEquivalences below, the §II-D SAT-step harvest that reads
//     linear equations off implication cycles, and
//   - the 2SAT fragment solver in internal/route, which decides a
//     binary-clause formula in O(n+m) from the component order alone.
//
// The graph is literal-indexed (cnf.Lit doubles as the node index), and
// the SCC pass is iterative Tarjan, so megavariable implication chains
// do not overflow the goroutine stack.

// Implications is a binary implication graph: one node per literal,
// every 2-clause (a ∨ b) contributing the edges ¬a → b and ¬b → a, and
// every unit clause (l) contributing ¬l → l (assuming ¬l forces the
// contradiction l, which makes units first-class in the SCC analysis).
type Implications struct {
	numVars int
	adj     [][]int32
}

// NewImplications returns an empty graph over n variables.
func NewImplications(n int) *Implications {
	return &Implications{numVars: n, adj: make([][]int32, 2*n)}
}

// NumVars returns the variable count the graph was built over.
func (g *Implications) NumVars() int { return g.numVars }

// AddBinary records the clause (a ∨ b) as the implication pair
// ¬a → b, ¬b → a. Clauses over a single variable (a ∨ a, a ∨ ¬a) are
// ignored: the first is a unit (use AddUnit), the second a tautology.
func (g *Implications) AddBinary(a, b cnf.Lit) {
	if a.Var() == b.Var() {
		return
	}
	g.adj[a.Not()] = append(g.adj[a.Not()], int32(b))
	g.adj[b.Not()] = append(g.adj[b.Not()], int32(a))
}

// AddUnit records the clause (l) as the self-forcing edge ¬l → l.
func (g *Implications) AddUnit(l cnf.Lit) {
	g.adj[l.Not()] = append(g.adj[l.Not()], int32(l))
}

// AddFormulaBinaries loads every unit and 2-clause of f (longer clauses
// and XOR constraints are skipped; callers wanting a faithful 2SAT view
// must ensure the formula has none).
func (g *Implications) AddFormulaBinaries(f *cnf.Formula) {
	for _, c := range f.Clauses {
		switch len(c) {
		case 1:
			g.AddUnit(c[0])
		case 2:
			if c[0].Var() == c[1].Var() && c[0] == c[1] {
				g.AddUnit(c[0])
				continue
			}
			g.AddBinary(c[0], c[1])
		}
	}
}

// Components is the result of an SCC pass: a component id per literal,
// numbered in reverse topological order of the condensation — for every
// implication u → v, Comp[v] ≤ Comp[u], with equality exactly when u and
// v are in the same component. That ordering is what the 2SAT model
// construction reads off directly.
type Components struct {
	// Comp maps each literal (as an index) to its component id.
	Comp []int32
	// N is the number of components.
	N int32
}

// Of returns the component id of a literal.
func (c *Components) Of(l cnf.Lit) int32 { return c.Comp[l] }

// Contradiction returns a variable that is equivalent to its own
// negation (comp[v] == comp[¬v]), which makes the binary layer
// unsatisfiable, and ok=true when one exists. Variables are scanned in
// index order, so the witness is deterministic.
func (c *Components) Contradiction() (cnf.Var, bool) {
	n := len(c.Comp) / 2
	for v := 0; v < n; v++ {
		if c.Comp[2*v] == c.Comp[2*v+1] {
			return cnf.Var(v), true
		}
	}
	return 0, false
}

// SCC computes the strongly connected components of the graph.
func (g *Implications) SCC() *Components {
	comp, n := tarjanSCC(g.adj)
	return &Components{Comp: comp, N: n}
}

// BinaryEquivalences analyzes the binary implication graph of a formula:
// every 2-clause (a ∨ b) contributes the implications ¬a → b and ¬b → a.
// Literals in the same strongly connected component are equivalent —
// exactly the "linear equations from binary clauses" the paper's SAT-step
// harvest is after (§II-D), generalized from complementary pairs to
// arbitrary implication cycles.
//
// It returns one (root, member) pair per non-trivial equivalence, plus
// ok=false when a variable is equivalent to its own negation (the formula
// is unsatisfiable).
func BinaryEquivalences(f *cnf.Formula) ([][2]cnf.Lit, bool) {
	g := NewImplications(f.NumVars)
	for _, c := range f.Clauses {
		if len(c) == 2 {
			g.AddBinary(c[0], c[1])
		}
	}
	sccs := g.SCC()
	if _, bad := sccs.Contradiction(); bad {
		return nil, false
	}
	// Group literals by component; emit (root, member) pairs with the
	// smallest literal of each component as root.
	comp := sccs.Comp
	byComp := map[int32][]cnf.Lit{}
	for l := range comp {
		byComp[comp[l]] = append(byComp[comp[l]], cnf.Lit(l))
	}
	var out [][2]cnf.Lit
	seen := map[cnf.Var]bool{}
	for _, lits := range byComp {
		if len(lits) < 2 {
			continue
		}
		root := lits[0]
		for _, l := range lits[1:] {
			if l.Var() == root.Var() {
				continue
			}
			// Emit each variable pair once (the complementary component
			// mirrors every pair).
			if seen[l.Var()] && seen[root.Var()] {
				continue
			}
			seen[l.Var()] = true
			seen[root.Var()] = true
			out = append(out, [2]cnf.Lit{root, l})
		}
	}
	return out, true
}

// tarjanSCC computes strongly connected components of a literal graph,
// iteratively (explicit stack) to handle long implication chains. It
// returns the component id per node and the component count; ids are
// assigned in reverse topological order of the condensation.
func tarjanSCC(adj [][]int32) ([]int32, int32) {
	n := len(adj)
	const unvisited = -1
	index := make([]int32, n)
	low := make([]int32, n)
	comp := make([]int32, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = unvisited
		comp[i] = unvisited
	}
	var stack []int32
	var nextIndex, nextComp int32

	type frame struct {
		v     int32
		child int
	}
	var callStack []frame
	for root := 0; root < n; root++ {
		if index[root] != unvisited {
			continue
		}
		callStack = append(callStack[:0], frame{int32(root), 0})
		index[root] = nextIndex
		low[root] = nextIndex
		nextIndex++
		stack = append(stack, int32(root))
		onStack[root] = true
		for len(callStack) > 0 {
			fr := &callStack[len(callStack)-1]
			if fr.child < len(adj[fr.v]) {
				w := adj[fr.v][fr.child]
				fr.child++
				if index[w] == unvisited {
					index[w] = nextIndex
					low[w] = nextIndex
					nextIndex++
					stack = append(stack, w)
					onStack[w] = true
					callStack = append(callStack, frame{w, 0})
				} else if onStack[w] && low[fr.v] > index[w] {
					low[fr.v] = index[w]
				}
				continue
			}
			// Post-visit: pop and propagate lowlink.
			v := fr.v
			callStack = callStack[:len(callStack)-1]
			if len(callStack) > 0 {
				parent := &callStack[len(callStack)-1]
				if low[parent.v] > low[v] {
					low[parent.v] = low[v]
				}
			}
			if low[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = nextComp
					if w == v {
						break
					}
				}
				nextComp++
			}
		}
	}
	return comp, nextComp
}
