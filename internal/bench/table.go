package bench

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/sat"
)

// TableRow is one family of Table II: a w/o and a w cell per solver.
type TableRow struct {
	Family string
	NJobs  int
	// Cells[profile][0] is without Bosphorus, [1] with.
	Cells map[sat.Profile][2]CellResult
}

// TableII is the reproduction of the paper's headline table.
type TableII struct {
	Rows []TableRow
	Cfg  Config
}

// Profiles lists the three solver columns in paper order.
var Profiles = []sat.Profile{sat.ProfileMiniSat, sat.ProfileLingeling, sat.ProfileCMS}

// RunTableII evaluates every family under every solver, with and without
// Bosphorus. Progress lines go to log when non-nil.
func RunTableII(fams []Family, cfg Config, log io.Writer) *TableII {
	t := &TableII{Cfg: cfg}
	for _, fam := range fams {
		row := TableRow{Family: fam.Name, NJobs: len(fam.Jobs), Cells: map[sat.Profile][2]CellResult{}}
		for _, prof := range Profiles {
			var pair [2]CellResult
			for i, useB := range []bool{false, true} {
				c := cfg
				c.Profile = prof
				c.UseBosphorus = useB
				pair[i] = RunCell(fam.Jobs, c)
				if log != nil {
					fmt.Fprintf(log, "%-16s %-14v bosphorus=%-5v -> %s (mismatches %d)\n",
						fam.Name, prof, useB, FormatCell(pair[i]), pair[i].Mismatches)
				}
			}
			row.Cells[prof] = pair
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Format renders the table in the paper's layout: per family, a "w/o" row
// and a "w" row, with the better cell of each pair marked (preferring the
// solved-instance count, as the paper does).
func (t *TableII) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table II reproduction — PAR-2 seconds (solved sat+unsat); timeout %v, bosphorus share %.0f%%\n",
		t.Cfg.Timeout, t.Cfg.BosphorusShare*100)
	fmt.Fprintf(&b, "%-18s %-4s  %-22s %-22s %-22s\n", "Problem", "", "MiniSat", "Lingeling", "CryptoMiniSat5")
	for _, row := range t.Rows {
		for i, label := range []string{"w/o", "w"} {
			name := ""
			if i == 0 {
				name = fmt.Sprintf("%s (%d)", row.Family, row.NJobs)
			}
			fmt.Fprintf(&b, "%-18s %-4s ", name, label)
			for _, prof := range Profiles {
				pair := row.Cells[prof]
				cell := FormatCell(pair[i])
				if better(pair[i], pair[1-i]) {
					cell = "*" + cell
				}
				fmt.Fprintf(&b, " %-22s", cell)
			}
			b.WriteByte('\n')
		}
	}
	b.WriteString("(* marks the better of w/o vs w, preferring solved count — Table II's bolding)\n")
	return b.String()
}

// better mirrors the paper's bolding rule: more solved instances wins;
// ties break on PAR-2.
func better(a, b CellResult) bool {
	sa, sb := a.NSat+a.NUnsat, b.NSat+b.NUnsat
	if sa != sb {
		return sa > sb
	}
	return a.PAR2 < b.PAR2
}

// WriteCSV emits the table as machine-readable CSV: one row per
// family × solver × bosphorus setting.
func (t *TableII) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "family,njobs,solver,bosphorus,par2,sat,unsat,mismatches"); err != nil {
		return err
	}
	for _, row := range t.Rows {
		for _, prof := range Profiles {
			pair := row.Cells[prof]
			for i, useB := range []string{"without", "with"} {
				c := pair[i]
				if _, err := fmt.Fprintf(w, "%s,%d,%v,%s,%.3f,%d,%d,%d\n",
					row.Family, row.NJobs, prof, useB, c.PAR2, c.NSat, c.NUnsat, c.Mismatches); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
