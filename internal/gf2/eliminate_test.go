package gf2

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func isRREF(t *testing.T, m *Matrix) {
	t.Helper()
	lastLead := -1
	sawZero := false
	for r := 0; r < m.Rows(); r++ {
		lead := m.LeadingCol(r)
		if lead < 0 {
			sawZero = true
			continue
		}
		if sawZero {
			t.Fatalf("nonzero row %d after a zero row", r)
		}
		if lead <= lastLead {
			t.Fatalf("row %d leading col %d not increasing (prev %d)", r, lead, lastLead)
		}
		lastLead = lead
		// Pivot column must be zero in every other row.
		for r2 := 0; r2 < m.Rows(); r2++ {
			if r2 != r && m.Get(r2, lead) {
				t.Fatalf("pivot column %d has extra bit in row %d", lead, r2)
			}
		}
	}
}

func TestRREFSmallKnown(t *testing.T) {
	// [1 1 0]      [1 0 1]
	// [0 1 1]  ->  [0 1 1]
	// [1 0 1]      [0 0 0]
	m := NewMatrix(3, 3)
	m.Set(0, 0, true)
	m.Set(0, 1, true)
	m.Set(1, 1, true)
	m.Set(1, 2, true)
	m.Set(2, 0, true)
	m.Set(2, 2, true)
	rank := m.RREF()
	if rank != 2 {
		t.Fatalf("rank = %d, want 2", rank)
	}
	want := "101\n011\n000"
	if got := m.String(); got != want {
		t.Fatalf("RREF =\n%s\nwant\n%s", got, want)
	}
	isRREF(t, m)
}

func TestRREFIdentity(t *testing.T) {
	m := Identity(20)
	if rank := m.RREF(); rank != 20 {
		t.Fatalf("rank of identity = %d", rank)
	}
	if !m.Equal(Identity(20)) {
		t.Fatal("RREF of identity changed it")
	}
}

func TestRREFZeroMatrix(t *testing.T) {
	m := NewMatrix(4, 9)
	if rank := m.RREF(); rank != 0 {
		t.Fatalf("rank of zero = %d", rank)
	}
}

func TestRREFProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		rows, cols := 1+rng.Intn(40), 1+rng.Intn(90)
		m := randomMatrix(rng, rows, cols)
		orig := m.Clone()
		rank := m.RREF()
		isRREF(t, m)
		if rank < 0 || rank > rows || rank > cols {
			t.Fatalf("rank %d out of range", rank)
		}
		// Row spaces must agree: each RREF row must be reducible to zero by
		// the original matrix's RREF, and vice versa. Cheap check: ranks of
		// stacked matrices equal individual ranks.
		stack := NewMatrix(rows*2, cols)
		for r := 0; r < rows; r++ {
			copy(stack.Row(r), orig.Row(r))
			copy(stack.Row(rows+r), m.Row(r))
		}
		if sr := stack.RREF(); sr != rank {
			t.Fatalf("row space changed: stacked rank %d != %d", sr, rank)
		}
	}
}

func TestM4RMatchesPlainGJE(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 60; trial++ {
		rows, cols := 1+rng.Intn(60), 1+rng.Intn(130)
		m := randomMatrix(rng, rows, cols)
		a, b := m.Clone(), m.Clone()
		ra := a.RREF()
		rb := b.RREFM4R()
		if ra != rb {
			t.Fatalf("trial %d: rank mismatch plain=%d m4r=%d", trial, ra, rb)
		}
		if !a.Equal(b) {
			t.Fatalf("trial %d: RREF differs between plain GJE and M4R:\n%s\n--\n%s", trial, a, b)
		}
	}
}

func TestM4RSparseAndStructured(t *testing.T) {
	// Structured cases that exercise the block edges: staircases, repeated
	// rows, zero columns between pivots.
	m := NewMatrix(6, 10)
	for i := 0; i < 5; i++ {
		m.Set(i, 2*i, true)
		m.Set(i, 2*i+1, true)
	}
	m.AddRowTo(0, 5) // duplicate of row 0
	a, b := m.Clone(), m.Clone()
	if ra, rb := a.RREF(), b.RREFM4R(); ra != rb || !a.Equal(b) {
		t.Fatalf("structured case mismatch: ranks %d vs %d\n%s\n--\n%s", ra, rb, a, b)
	}
}

func TestRankDoesNotMutate(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	m := randomMatrix(rng, 10, 10)
	c := m.Clone()
	_ = m.Rank()
	if !m.Equal(c) {
		t.Fatal("Rank mutated the matrix")
	}
}

func TestNullSpace(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 30; trial++ {
		rows, cols := 1+rng.Intn(20), 1+rng.Intn(40)
		m := randomMatrix(rng, rows, cols)
		rank := m.Rank()
		basis := m.NullSpace()
		if len(basis) != cols-rank {
			t.Fatalf("nullity = %d, want %d", len(basis), cols-rank)
		}
		// Every basis vector must be annihilated by m.
		for _, v := range basis {
			prod := m.Mul(v.Transpose())
			for r := 0; r < prod.Rows(); r++ {
				if !prod.RowIsZero(r) {
					t.Fatal("null space vector not annihilated")
				}
			}
		}
		// Basis vectors must be linearly independent.
		if len(basis) > 0 {
			stack := NewMatrix(len(basis), cols)
			for i, v := range basis {
				copy(stack.Row(i), v.Row(0))
			}
			if stack.Rank() != len(basis) {
				t.Fatal("null space basis not independent")
			}
		}
	}
}

func TestSolveConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 30; trial++ {
		rows, cols := 1+rng.Intn(20), 1+rng.Intn(20)
		m := randomMatrix(rng, rows, cols)
		// Construct b = m·x0 for a random x0, so the system is consistent.
		x0 := make([]bool, cols)
		for i := range x0 {
			x0[i] = rng.Intn(2) == 1
		}
		b := make([]bool, rows)
		for r := 0; r < rows; r++ {
			v := false
			for c := 0; c < cols; c++ {
				v = v != (m.Get(r, c) && x0[c])
			}
			b[r] = v
		}
		x, ok := m.Solve(b)
		if !ok {
			t.Fatal("consistent system reported unsolvable")
		}
		for r := 0; r < rows; r++ {
			v := false
			for c := 0; c < cols; c++ {
				v = v != (m.Get(r, c) && x[c])
			}
			if v != b[r] {
				t.Fatalf("solution does not satisfy row %d", r)
			}
		}
	}
}

func TestSolveInconsistent(t *testing.T) {
	// x + y = 0, x + y = 1 has no solution.
	m := NewMatrix(2, 2)
	m.Set(0, 0, true)
	m.Set(0, 1, true)
	m.Set(1, 0, true)
	m.Set(1, 1, true)
	if _, ok := m.Solve([]bool{false, true}); ok {
		t.Fatal("inconsistent system reported solvable")
	}
}

// Property: rank(A) == rank(Aᵀ).
func TestQuickRankTranspose(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomMatrix(rng, 1+rng.Intn(25), 1+rng.Intn(25))
		return m.Rank() == m.Transpose().Rank()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: RREF is idempotent.
func TestQuickRREFIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomMatrix(rng, 1+rng.Intn(25), 1+rng.Intn(50))
		m.RREF()
		c := m.Clone()
		c.RREF()
		return c.Equal(m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRREFPlain(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	m := randomMatrix(rng, 512, 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Clone().RREF()
	}
}

func BenchmarkRREFM4R(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	m := randomMatrix(rng, 512, 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Clone().RREFM4R()
	}
}
