// Package bosphorus is the public API of this reproduction of
// "BOSPHORUS: Bridging ANF and CNF Solvers" (Choo, Soos, Chai, Meel —
// DATE 2019): a reasoning framework that iteratively applies eXtended
// Linearization, ElimLin and conflict-bounded CDCL SAT solving, with ANF
// propagation after every step, to learn facts that augment a Boolean
// polynomial system (ANF) or a CNF formula.
//
// The facade wraps the implementation packages:
//
//	internal/anf       Boolean polynomials (the PolyBoRi role)
//	internal/gf2       dense GF(2) linear algebra (the M4RI role)
//	internal/sat       CDCL solver with XOR/GJE support (the CryptoMiniSat role)
//	internal/minimize  Quine–McCluskey logic minimization (the ESPRESSO role)
//	internal/conv      ANF ↔ CNF conversion
//	internal/core      the fact-learning loop itself
//	internal/cube      cube-and-conquer splitting and conquering
//	internal/share     learnt-clause exchange between portfolio workers
//
// Quick start:
//
//	sys, _ := bosphorus.ParseANF(strings.NewReader("x1*x2 + x3 + 1\nx1 + x3\n"))
//	res := bosphorus.Solve(sys, bosphorus.DefaultOptions())
//	if res.Status == bosphorus.SAT { fmt.Println(res.Solution) }
package bosphorus

import (
	"context"
	"io"
	"time"

	"repro/internal/anf"
	"repro/internal/cnf"
	"repro/internal/conv"
	"repro/internal/core"
	"repro/internal/cube"
	"repro/internal/proof"
	"repro/internal/sat"
)

// System is an ANF polynomial system (re-exported).
type System = anf.System

// Formula is a CNF formula (re-exported).
type Formula = cnf.Formula

// ParseANF reads a polynomial system: one polynomial equation per line
// ("x1*x2 + x3 + 1"), '#' comments.
func ParseANF(r io.Reader) (*System, error) { return anf.ReadSystem(r) }

// WriteANF writes a system in the same format.
func WriteANF(w io.Writer, sys *System) error { return anf.WriteSystem(w, sys) }

// ParseDimacs reads a DIMACS CNF (with CryptoMiniSat "x" XOR-clause
// support).
func ParseDimacs(r io.Reader) (*Formula, error) { return cnf.ReadDimacs(r) }

// WriteDimacs writes DIMACS.
func WriteDimacs(w io.Writer, f *Formula) error { return cnf.WriteDimacs(w, f) }

// SolverProfile selects the internal SAT solver personality.
type SolverProfile = sat.Profile

// Solver profiles, mirroring the paper's evaluation matrix.
const (
	MiniSat       = sat.ProfileMiniSat
	Lingeling     = sat.ProfileLingeling
	CryptoMiniSat = sat.ProfileCMS
)

// Options configures the fact-learning loop; zero values take the paper's
// defaults (§IV) scaled to a single machine.
type Options struct {
	// M is the XL/ElimLin subsample exponent (linearized cells ≈ 2^M).
	M int
	// DeltaM is the XL expansion allowance.
	DeltaM int
	// XLDeg is the XL multiplier degree D.
	XLDeg int
	// KarnaughK, CutLen, ClauseCutLen are the conversion parameters K, L, L′.
	KarnaughK, CutLen, ClauseCutLen int
	// ConflictBudget is the SAT step's starting conflict budget C.
	ConflictBudget int64
	// Profile picks the internal solver.
	Profile SolverProfile
	// MaxIterations caps the loop; 0 means run to the fixed point.
	MaxIterations int
	// TimeBudget caps wall-clock time (0 = none).
	TimeBudget time.Duration
	// Context, when non-nil, cancels the run cooperatively: the loop,
	// every technique, and the SAT solver's conflict loop all poll it, so
	// cancellation returns within a bounded number of conflicts. The
	// partial Result carries the facts learnt so far and Interrupted set.
	Context context.Context
	// Seed fixes all randomness for reproducible runs.
	Seed int64
	// Workers selects the engine mode: 0 runs the paper's sequential
	// loop, N ≥ 1 the deterministic snapshot pipeline with N goroutines
	// (identical facts for every value).
	Workers int
	// Log receives progress lines when non-nil.
	Log io.Writer

	// EnableGroebner adds the budgeted Buchberger phase (§V) to the loop.
	EnableGroebner bool
	// EnableProbing adds failed-literal probing to the SAT step (§V's
	// lookahead-style component).
	EnableProbing bool
	// Route puts the tractable-fragment router in front of the SAT step:
	// when the CNF residue (after ANF propagation/ElimLin) is pure 2SAT,
	// Horn, anti-Horn, or XOR, it is decided by a polynomial solver
	// instead of CDCL. Result.RoutedVia names the fragment that answered.
	Route bool
	// NoNativeXor turns off the SAT solver's native parity clauses and
	// restores the CNF-cut / Gauss-only XOR handling — the differential
	// baseline. Native parity is the default (zero value).
	NoNativeXor bool
	// ExtraTechniques are user-supplied fact learners plugged into the
	// workflow (§V: "it is relatively easy to include new solving
	// techniques by plugging them as components").
	ExtraTechniques []Technique

	// Provenance records every learnt fact's derivation (technique,
	// iteration, algebraic witness) into Result.Provenance, ready for
	// VerifyFacts. Tracking never changes which facts are learnt.
	Provenance bool
	// EmitProof captures a DRAT proof from the SAT step; when the run ends
	// UNSAT via the solver, Result.Certificate carries the checkable proof.
	EmitProof bool
	// ProofBinary selects the compact binary DRAT encoding.
	ProofBinary bool
}

// Technique is the §V plug point for custom fact-learning components
// (re-exported from the engine).
type Technique = core.Technique

// TechniqueFunc adapts a function to Technique (re-exported).
type TechniqueFunc = core.TechniqueFunc

// BuchbergerTechnique returns the budgeted Gröbner-basis component as a
// pluggable Technique.
func BuchbergerTechnique() Technique { return core.BuchbergerTechnique() }

// DefaultOptions returns the paper's configuration.
func DefaultOptions() Options {
	return Options{
		M: 20, DeltaM: 4, XLDeg: 1,
		KarnaughK: 8, CutLen: 5, ClauseCutLen: 5,
		ConflictBudget: 10000,
		Profile:        CryptoMiniSat,
		MaxIterations:  16,
		Seed:           1,
	}
}

func (o Options) toCore(stopOnSolution bool) core.Config {
	cfg := core.DefaultConfig()
	if o.M > 0 {
		cfg.M = o.M
	}
	if o.DeltaM > 0 {
		cfg.DeltaM = o.DeltaM
	}
	if o.XLDeg > 0 {
		cfg.XLDeg = o.XLDeg
	}
	cfg.Conv = conv.Options{CutLen: 5, KarnaughK: 8, ClauseCutLen: 5}
	if o.CutLen > 0 {
		cfg.Conv.CutLen = o.CutLen
	}
	if o.KarnaughK > 0 {
		cfg.Conv.KarnaughK = o.KarnaughK
	}
	if o.ClauseCutLen > 0 {
		cfg.Conv.ClauseCutLen = o.ClauseCutLen
	}
	if o.ConflictBudget > 0 {
		cfg.ConflictBudget = o.ConflictBudget
	}
	cfg.Profile = o.Profile
	if o.MaxIterations > 0 {
		cfg.MaxIterations = o.MaxIterations
	}
	cfg.TimeBudget = o.TimeBudget
	cfg.Context = o.Context
	if o.Seed != 0 {
		cfg.Seed = o.Seed
	}
	cfg.Workers = o.Workers
	cfg.Log = o.Log
	cfg.StopOnSolution = stopOnSolution
	cfg.EnableGroebner = o.EnableGroebner
	cfg.EnableProbing = o.EnableProbing
	cfg.Route = o.Route
	cfg.NoNativeXor = o.NoNativeXor
	cfg.ExtraTechniques = o.ExtraTechniques
	cfg.Provenance = o.Provenance
	cfg.EmitProof = o.EmitProof
	cfg.ProofBinary = o.ProofBinary
	return cfg
}

// Status of a Solve or Preprocess call.
type Status int

// Possible statuses.
const (
	// Processed means no verdict: the returned ANF/CNF carry the learnt facts.
	Processed Status = iota
	// SAT means a satisfying assignment was found (see Result.Solution).
	SAT
	// UNSAT means the contradiction 1 = 0 was derived.
	UNSAT
)

func (s Status) String() string {
	switch s {
	case SAT:
		return "SAT"
	case UNSAT:
		return "UNSAT"
	default:
		return "PROCESSED"
	}
}

// Result of Solve/Preprocess.
type Result struct {
	Status Status
	// Solution is a satisfying assignment over the input variables when
	// Status is SAT.
	Solution []bool
	// ANF is the processed system: input equations simplified by the
	// learnt facts, plus the facts themselves.
	ANF *System
	// CNF is the processed system converted to CNF.
	CNF *Formula
	// Iterations, FactsXL, FactsElimLin, FactsSAT, FactsPropagation
	// summarize the run.
	Iterations       int
	FactsXL          int
	FactsElimLin     int
	FactsSAT         int
	FactsPropagation int
	Elapsed          time.Duration
	// Interrupted is true when Options.Context was cancelled before the
	// run finished; the facts and simplified systems remain sound.
	Interrupted bool
	// Provenance is the fact ledger recorded when Options.Provenance was
	// set: one record per input equation and learnt fact, carrying the
	// derivation. Feed it to VerifyFacts for independent re-derivation.
	Provenance *Ledger
	// Certificate is the DRAT proof captured when Options.EmitProof was
	// set and the SAT step derived the refutation; Certificate.Check()
	// re-verifies it with the built-in checker.
	Certificate *Certificate
	// RoutedVia names the tractable fragment that produced the verdict
	// when Options.Route was on and the router matched ("2sat", "horn",
	// "antihorn", "xor"); empty when CDCL did the solving.
	RoutedVia string
}

// Ledger is the provenance table: a record per input equation and learnt
// fact (re-exported).
type Ledger = proof.Ledger

// Certificate pairs an UNSAT SAT-step's CNF with its DRAT proof
// (re-exported).
type Certificate = proof.Certificate

// VerifyReport aggregates per-fact verification verdicts (re-exported).
type VerifyReport = proof.VerifyReport

// VerifyOptions tunes VerifyFacts (re-exported).
type VerifyOptions = proof.VerifyOptions

// VerifyFacts independently re-derives every fact in a run's provenance
// ledger against the original input system: exact replay of the recorded
// algebraic witnesses, a random-assignment falsification screen, and SAT
// refutation for facts without a replayable witness. It never trusts the
// engine that produced the ledger.
func VerifyFacts(original *System, lg *Ledger, opts VerifyOptions) *VerifyReport {
	return proof.VerifyFacts(original, lg, opts)
}

func wrap(res *core.Result, o Options) *Result {
	out := &Result{
		Status:           Processed,
		Solution:         res.Solution,
		Iterations:       res.Iterations,
		FactsXL:          res.XL.NewFacts,
		FactsElimLin:     res.ElimLin.NewFacts,
		FactsSAT:         res.SAT.NewFacts,
		FactsPropagation: res.PropagationFacts,
		Elapsed:          res.Elapsed,
		Interrupted:      res.Interrupted,
		Provenance:       res.Provenance,
		Certificate:      res.Certificate,
		RoutedVia:        res.RoutedVia,
	}
	switch res.Status {
	case core.SolvedSAT:
		out.Status = SAT
	case core.SolvedUNSAT:
		out.Status = UNSAT
	}
	out.ANF = res.OutputANF()
	convOpts := conv.Options{CutLen: 5, KarnaughK: 8, ClauseCutLen: 5}
	if o.CutLen > 0 {
		convOpts.CutLen = o.CutLen
	}
	if o.KarnaughK > 0 {
		convOpts.KarnaughK = o.KarnaughK
	}
	out.CNF, _ = res.OutputCNF(convOpts)
	return out
}

// Solve runs the fact-learning loop until a verdict (or budget).
func Solve(sys *System, o Options) *Result {
	return wrap(core.Process(sys, o.toCore(true)), o)
}

// Preprocess runs the loop to its fixed point without committing to a
// solution, returning the augmented ANF and CNF.
func Preprocess(sys *System, o Options) *Result {
	return wrap(core.Process(sys, o.toCore(false)), o)
}

// PreprocessCNF runs the loop on a CNF formula (the paper's §III-D
// CNF-preprocessor use-case): the formula is translated to ANF (clause →
// product of negated literals), processed, and the learnt facts are
// returned both ways.
func PreprocessCNF(f *Formula, o Options) *Result {
	convOpts := conv.Options{CutLen: 5, KarnaughK: 8, ClauseCutLen: 5}
	if o.ClauseCutLen > 0 {
		convOpts.ClauseCutLen = o.ClauseCutLen
	}
	sys := conv.CNFToANF(f, convOpts)
	return wrap(core.Process(sys, o.toCore(false)), o)
}

// SolveCNF decides a CNF formula through the bridge.
func SolveCNF(f *Formula, o Options) *Result {
	convOpts := conv.Options{CutLen: 5, KarnaughK: 8, ClauseCutLen: 5}
	if o.ClauseCutLen > 0 {
		convOpts.ClauseCutLen = o.ClauseCutLen
	}
	sys := conv.CNFToANF(f, convOpts)
	return wrap(core.Process(sys, o.toCore(true)), o)
}

// VerifyANF reports whether the assignment satisfies the system.
func VerifyANF(sys *System, solution []bool) bool {
	return core.VerifySolution(sys, solution)
}

// CubeOptions configures a cube-and-conquer run (re-exported from
// internal/cube): lookahead splitting depth and width, the conquer worker
// count, and the learnt-clause sharing ring.
type CubeOptions = cube.Options

// CubeResult is the merged outcome of a cube-and-conquer run
// (re-exported): the verdict, the model or stitched DRAT proof, and the
// per-run cube/conflict counters.
type CubeResult = cube.Result

// DefaultCubeOptions returns the conservative cube configuration: a
// shallow 16-leaf tree, 64 probed candidates per split, glue-only clause
// sharing.
func DefaultCubeOptions() CubeOptions { return cube.DefaultOptions() }

// CubeStatus is the verdict type of CubeResult.Status (re-exported; the
// solver-level status, distinct from the fact-learning loop's Status).
type CubeStatus = sat.Status

// CubeResult.Status values.
const (
	CubeSAT     = sat.Sat
	CubeUNSAT   = sat.Unsat
	CubeUnknown = sat.Unknown
)

// SolveCube decides a CNF formula by cube-and-conquer: a lookahead
// splitter partitions the search into assumption prefixes, a worker pool
// conquers them, and the results merge deterministically (first model on
// SAT; on UNSAT, with CubeOptions.WithProof set, a stitched DRAT proof
// the built-in checker accepts). With Workers ≤ 1 and ForceSplit off the
// run is bit-identical to solving directly.
func SolveCube(ctx context.Context, f *Formula, o CubeOptions) *CubeResult {
	if ctx == nil {
		ctx = context.Background()
	}
	return cube.Solve(ctx, f, o)
}
