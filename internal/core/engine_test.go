package core

import (
	"math/rand"
	"testing"

	"repro/internal/anf"
	"repro/internal/conv"
	"repro/internal/sat"
)

const paperExample = `
x1*x2 + x3 + x4 + 1
x1*x2*x3 + x1 + x3 + 1
x1*x3 + x3*x4*x5 + x3
x2*x3 + x3*x5 + 1
x2*x3 + x5 + 1
`

// TestWorkflowExample runs the full Bosphorus loop on the paper's worked
// example (§II-E, Fig. 1): the unique solution x1..x4 = 1, x5 = 0 must
// come out.
func TestWorkflowExample(t *testing.T) {
	sys := sysFrom(t, paperExample)
	res := Process(sys, DefaultConfig())
	if res.Status != SolvedSAT && res.Status != Processed {
		t.Fatalf("status = %v", res.Status)
	}
	// Whether the SAT step or pure propagation finished it, the learnt
	// facts must pin the unique solution.
	want := map[anf.Var]bool{1: true, 2: true, 3: true, 4: true, 5: false}
	if res.Status == SolvedSAT {
		for v, b := range want {
			if res.Solution[v] != b {
				t.Fatalf("solution[%d] = %v, want %v", v, res.Solution[v], b)
			}
		}
		if !VerifySolution(sys, res.Solution) {
			t.Fatal("solution does not satisfy input")
		}
	} else {
		for v, b := range want {
			if got, ok := res.State.Value(v); !ok || got != b {
				t.Fatalf("state x%d = %v,%v; want %v", v, got, ok, b)
			}
		}
	}
}

// TestExampleFactsPerTechnique reproduces the §II-E ablation: each
// technique in isolation learns facts sufficient to assign a particular
// variable (XL → x3, ElimLin → x1, SAT → the rest).
func TestExampleFactsPerTechnique(t *testing.T) {
	rng := rand.New(rand.NewSource(1))

	sys := sysFrom(t, paperExample)
	xlFacts := RunXL(sys, XLConfig{M: 20, DeltaM: 4, Deg: 1, Rand: rng})
	foundX3 := false
	for _, f := range xlFacts {
		if f.Equal(anf.MustParsePoly("x3 + 1")) {
			foundX3 = true
		}
	}
	if !foundX3 {
		t.Errorf("XL did not learn x3 ⊕ 1 (got %v)", xlFacts)
	}

	// ElimLin runs on the system augmented with XL's facts (the workflow
	// is sequential, Fig. 1): its initial GJE then sees the four linear
	// equations the paper lists and derives x1 ⊕ 1.
	aug := sys.Clone()
	for _, f := range xlFacts {
		aug.Add(f)
	}
	elFacts := RunElimLin(aug, ElimLinConfig{M: 20, Rand: rng})
	p := NewPropagator(sys.Clone())
	p.Propagate()
	p.AddFacts(elFacts)
	if b, ok := p.State.Value(1); !ok || !b {
		t.Errorf("ElimLin facts do not force x1 = 1 (got %v)", elFacts)
	}

	step := RunSATStep(sys, SATStepConfig{ConflictBudget: 10000, Profile: sat.ProfileMiniSat, Conv: conv.DefaultOptions()})
	if step.Status != sat.Sat {
		t.Fatalf("SAT step on the example: %v", step.Status)
	}
}

func TestProcessUnsat(t *testing.T) {
	// x0 = 0, x0 = 1 via two equations, hidden behind a quadratic.
	sys := sysFrom(t, "x0*x1 + x0 + x1\nx0 + x1 + 1\nx1\nx0\n")
	// x1=0 and x0=0 contradict x0+x1+1.
	res := Process(sys, DefaultConfig())
	if res.Status != SolvedUNSAT {
		t.Fatalf("status = %v, want UNSAT", res.Status)
	}
}

func TestProcessUnsatBySATStep(t *testing.T) {
	// An UNSAT CNF-ish system with no unit facts: x0⊕x1, x1⊕x2, x0⊕x2⊕1
	// (odd cycle). Propagation alone finds it via equivalence merging.
	sys := sysFrom(t, "x0 + x1\nx1 + x2\nx0 + x2 + 1\n")
	res := Process(sys, DefaultConfig())
	if res.Status != SolvedUNSAT {
		t.Fatalf("status = %v, want UNSAT", res.Status)
	}
}

func TestProcessSolvesRandomSatSystems(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 15; trial++ {
		nVars := 4 + rng.Intn(5)
		// Plant a solution and generate polynomials vanishing on it.
		sol := make([]bool, nVars)
		for i := range sol {
			sol[i] = rng.Intn(2) == 1
		}
		sys := anf.NewSystem()
		sys.SetNumVars(nVars)
		for i := 0; i < nVars+3; i++ {
			var monos []anf.Monomial
			for j := 0; j < 1+rng.Intn(3); j++ {
				var vs []anf.Var
				for d := 0; d < 1+rng.Intn(2); d++ {
					vs = append(vs, anf.Var(rng.Intn(nVars)))
				}
				monos = append(monos, anf.NewMonomial(vs...))
			}
			p := anf.FromMonomials(monos...)
			if p.Eval(func(v anf.Var) bool { return sol[v] }) {
				p = p.Add(anf.OnePoly()) // make it vanish on sol
			}
			sys.Add(p)
		}
		cfg := DefaultConfig()
		cfg.Seed = int64(trial + 1)
		res := Process(sys, cfg)
		switch res.Status {
		case SolvedSAT:
			if !VerifySolution(sys, res.Solution) {
				t.Fatalf("trial %d: bad solution", trial)
			}
		case SolvedUNSAT:
			t.Fatalf("trial %d: satisfiable system declared UNSAT", trial)
		}
	}
}

func TestProcessAblationDisablePhases(t *testing.T) {
	sys := sysFrom(t, paperExample)
	for _, cfg := range []Config{
		func() Config { c := DefaultConfig(); c.DisableXL = true; return c }(),
		func() Config { c := DefaultConfig(); c.DisableElimLin = true; return c }(),
		func() Config { c := DefaultConfig(); c.DisableSAT = true; return c }(),
	} {
		res := Process(sys, cfg)
		if res.Status == SolvedUNSAT {
			t.Fatalf("ablation run declared UNSAT on satisfiable example")
		}
		// Even with one phase off, the example solves (it is easy).
		solved := res.Status == SolvedSAT
		if !solved {
			if b, ok := res.State.Value(3); ok && b {
				solved = true
			}
		}
		if !solved {
			t.Fatalf("ablation config failed to make progress: %+v", res)
		}
	}
}

func TestOutputANFAndCNF(t *testing.T) {
	sys := sysFrom(t, paperExample)
	cfg := DefaultConfig()
	cfg.StopOnSolution = false
	cfg.MaxIterations = 3
	res := Process(sys, cfg)
	out := res.OutputANF()
	if out.Len() == 0 {
		t.Fatal("processed ANF empty despite facts")
	}
	f, _ := res.OutputCNF(conv.DefaultOptions())
	// The CNF must preserve the unique solution x1..x4=1, x5=0 over the
	// original variables.
	s := sat.NewDefault()
	if !s.AddFormula(f) {
		t.Fatal("output CNF trivially UNSAT")
	}
	if s.Solve() != sat.Sat {
		t.Fatal("output CNF UNSAT")
	}
	m := s.Model()
	assign := func(v anf.Var) bool { return int(v) < len(m) && m[v] }
	if !sys.Eval(assign) {
		t.Fatal("output CNF model violates the original ANF")
	}
}

func TestSATStepHarvestsUnits(t *testing.T) {
	// A system whose CNF propagation yields units: x0 ⊕ 1 plus a clause
	// structure: after conversion, the solver should fix x0=1 at level 0
	// and harvesting turns it into the fact x0 + 1.
	sys := sysFrom(t, "x0 + 1\nx0*x1 + x1 + x2\n")
	step := RunSATStep(sys, SATStepConfig{ConflictBudget: 100, Profile: sat.ProfileMiniSat, Conv: conv.DefaultOptions()})
	found := false
	for _, f := range step.Facts {
		if f.Equal(anf.MustParsePoly("x0 + 1")) {
			found = true
		}
	}
	if step.Status == sat.Sat {
		return // solved outright before harvesting mattered; acceptable
	}
	if !found {
		t.Fatalf("unit fact not harvested: %v", step.Facts)
	}
}

func TestSATStepMonomialHarvestAblation(t *testing.T) {
	// Force the Tseitin path so monomial aux vars exist; with
	// HarvestMonomials a unit on an aux var becomes a monomial fact.
	sys := sysFrom(t, "x0*x1 + x2 + x3 + x4 + x5 + x6 + x7 + x8 + 1\nx2 + x3\nx4 + x5\nx6 + x7\nx8\nx2\nx4\nx6\n")
	cfgConv := conv.DefaultOptions()
	cfgConv.KarnaughK = 2
	step := RunSATStep(sys, SATStepConfig{
		ConflictBudget:   10000,
		Profile:          sat.ProfileMiniSat,
		Conv:             cfgConv,
		HarvestMonomials: true,
	})
	// With all the linear vars fixed to 0, x0*x1 must be 1: the monomial
	// fact x0*x1 ⊕ 1 (or the resulting unit facts) should appear if the
	// solver fixed the aux var at level 0.
	if step.Status == sat.Unsat {
		t.Fatal("system is satisfiable (x0=x1=1)")
	}
}

func TestProcessStats(t *testing.T) {
	sys := sysFrom(t, paperExample)
	cfg := DefaultConfig()
	cfg.StopOnSolution = false
	res := Process(sys, cfg)
	if res.Iterations == 0 {
		t.Fatal("no iterations recorded")
	}
	if res.XL.Runs == 0 || res.ElimLin.Runs == 0 || res.SAT.Runs == 0 {
		t.Fatalf("phase runs not recorded: %+v", res)
	}
	if res.Elapsed <= 0 {
		t.Fatal("elapsed not recorded")
	}
}
