package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// chdir moves the process into dir for the duration of the test.
func chdir(t *testing.T, dir string) {
	t.Helper()
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.Chdir(old) })
}

func TestList(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("run(-list) = %d, stderr %s", code, errb.String())
	}
	for _, name := range []string{"ctxpoll", "determinism", "gf2pack", "proofhook", "lockhold"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, out.String())
		}
	}
}

func TestUnknownAnalyzer(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-analyzers", "nosuch"}, &out, &errb); code != 2 {
		t.Fatalf("run(-analyzers nosuch) = %d, want 2", code)
	}
}

// TestFixtureExitCode drives the CLI against the lint fixtures: nonzero
// exit, positioned file:line:col diagnostics on stdout.
func TestFixtureExitCode(t *testing.T) {
	fixture, err := filepath.Abs(filepath.Join("..", "..", "internal", "lint", "testdata", "fixture"))
	if err != nil {
		t.Fatal(err)
	}
	chdir(t, fixture)
	var out, errb bytes.Buffer
	if code := run([]string{"./..."}, &out, &errb); code != 1 {
		t.Fatalf("run(./...) on fixtures = %d, want 1; stderr %s", code, errb.String())
	}
	first := strings.SplitN(out.String(), "\n", 2)[0]
	if !strings.Contains(first, ".go:") || !strings.Contains(first, "(") {
		t.Errorf("diagnostics are not positioned file:line:col lines: %q", first)
	}

	// -json must emit a machine-readable array with the same findings.
	out.Reset()
	if code := run([]string{"-json", "./..."}, &out, &errb); code != 1 {
		t.Fatalf("run(-json ./...) = %d, want 1", code)
	}
	var diags []struct {
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal(out.Bytes(), &diags); err != nil {
		t.Fatalf("-json output is not a JSON array: %v\n%s", err, out.String())
	}
	if len(diags) == 0 {
		t.Fatal("-json reported no diagnostics on the fixtures")
	}

	// Restricting to one analyzer must filter the findings.
	out.Reset()
	if code := run([]string{"-json", "-analyzers", "lockhold", "./..."}, &out, &errb); code != 1 {
		t.Fatalf("run(-analyzers lockhold) = %d, want 1", code)
	}
	var only []struct {
		Analyzer string `json:"analyzer"`
	}
	if err := json.Unmarshal(out.Bytes(), &only); err != nil {
		t.Fatal(err)
	}
	for _, d := range only {
		// Directive hygiene ("lint": malformed //lint:ignore comments) is
		// checked regardless of the analyzer subset.
		if d.Analyzer != "lockhold" && d.Analyzer != "lint" {
			t.Errorf("-analyzers lockhold leaked a %s diagnostic", d.Analyzer)
		}
	}
}

// TestRepoClean mirrors the check.sh gate: the CLI exits 0 on the
// repository itself.
func TestRepoClean(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	chdir(t, root)
	var out, errb bytes.Buffer
	if code := run([]string{"./..."}, &out, &errb); code != 0 {
		t.Fatalf("bosphoruslint ./... on the repo = %d, want 0\n%s%s", code, out.String(), errb.String())
	}
}

// TestJSONSchema freezes the -json wire format: a sorted array of
// {analyzer,file,line,col,message} objects with exactly those keys,
// module-relative slash-separated file paths, and [] (never null) when
// the run is clean.
func TestJSONSchema(t *testing.T) {
	fixture, err := filepath.Abs(filepath.Join("..", "..", "internal", "lint", "testdata", "fixture"))
	if err != nil {
		t.Fatal(err)
	}
	chdir(t, fixture)
	var out, errb bytes.Buffer
	if code := run([]string{"-json", "./..."}, &out, &errb); code != 1 {
		t.Fatalf("run(-json ./...) = %d, want 1; stderr %s", code, errb.String())
	}
	var raw []map[string]any
	if err := json.Unmarshal(out.Bytes(), &raw); err != nil {
		t.Fatalf("-json output is not a JSON array: %v", err)
	}
	if len(raw) == 0 {
		t.Fatal("no diagnostics on the fixtures")
	}
	for _, obj := range raw {
		for _, key := range []string{"analyzer", "file", "line", "col", "message"} {
			if _, ok := obj[key]; !ok {
				t.Fatalf("diagnostic missing %q: %v", key, obj)
			}
		}
		if len(obj) != 5 {
			t.Fatalf("diagnostic has extra keys (schema is frozen at 5): %v", obj)
		}
		file := obj["file"].(string)
		if filepath.IsAbs(file) || strings.Contains(file, "\\") {
			t.Errorf("file %q is not module-relative slash-separated", file)
		}
		if obj["line"].(float64) < 1 || obj["col"].(float64) < 1 {
			t.Errorf("non-positive position in %v", obj)
		}
	}
	var diags []jsonDiag
	if err := json.Unmarshal(out.Bytes(), &diags); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(diags); i++ {
		a, b := diags[i-1], diags[i]
		if a.File > b.File || (a.File == b.File && (a.Line > b.Line || (a.Line == b.Line && a.Col > b.Col))) {
			t.Errorf("diagnostics not sorted by (file, line, col): %v before %v", a, b)
		}
	}
}

// TestTargetedRunLoadsModuleSummaries is the regression test for the
// per-package loading defect: a run scoped to one package must still see
// call-effect summaries for the rest of the module, or every
// cross-package callee in a hotpath function is flagged as "no allocation
// summary". It also pins the clean-run -json output to [].
func TestTargetedRunLoadsModuleSummaries(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	chdir(t, root)
	var out, errb bytes.Buffer
	if code := run([]string{"-json", "./internal/sat/..."}, &out, &errb); code != 0 {
		t.Fatalf("bosphoruslint ./internal/sat/... = %d, want 0 (cross-package summaries missing?)\n%s%s",
			code, out.String(), errb.String())
	}
	if got := strings.TrimSpace(out.String()); got != "[]" {
		t.Errorf("clean -json run printed %q, want []", got)
	}
}
