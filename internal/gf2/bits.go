package gf2

import "math/bits"

// This file is the single home of the repo's word-packed bit arithmetic.
// Rows of GF(2) matrices — and the ad-hoc XOR rows kept by the SAT
// solver's Gaussian component and the proof checker — are []uint64 with 64
// columns per word, little-endian within a word. Every package that needs
// to index such a row must go through these helpers; raw `c>>6` / `c&63`
// arithmetic outside this package is rejected by the gf2pack analyzer
// (cmd/bosphoruslint), because hand-rolled copies of the packing are
// exactly how tail-word and indexing bugs crept into parity-reasoning
// solvers.

// Words returns the number of 64-bit words needed for cols packed bits.
func Words(cols int) int {
	return (cols + wordBits - 1) / wordBits
}

// XorBit flips bit c of a packed row.
func XorBit(words []uint64, c int) {
	words[c/wordBits] ^= 1 << (uint(c) % wordBits)
}

// SetBit sets bit c of a packed row to 1.
func SetBit(words []uint64, c int) {
	words[c/wordBits] |= 1 << (uint(c) % wordBits)
}

// TestBit reports whether bit c of a packed row is set.
func TestBit(words []uint64, c int) bool {
	return words[c/wordBits]>>(uint(c)%wordBits)&1 == 1
}

// FirstSetBit returns the position of the lowest set bit of a packed row,
// or -1 if the row is zero.
func FirstSetBit(words []uint64) int {
	for w, word := range words {
		if word != 0 {
			return w*wordBits + bits.TrailingZeros64(word)
		}
	}
	return -1
}

// IsZero reports whether every word of a packed row is zero.
func IsZero(words []uint64) bool {
	for _, w := range words {
		if w != 0 {
			return false
		}
	}
	return true
}

// ForEachSetBit calls fn for every set bit of a packed row, in ascending
// position order.
func ForEachSetBit(words []uint64, fn func(c int)) {
	for w, word := range words {
		for word != 0 {
			fn(w*wordBits + bits.TrailingZeros64(word))
			word &= word - 1
		}
	}
}
