package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// CtxPollAnalyzer enforces the cancellation contract PR 2 established:
// long-running work in internal/core, internal/sat and internal/portfolio
// must stay interruptible. Concretely:
//
//   - An exported function that can see a cancellation signal — a
//     context.Context parameter, or a parameter/receiver struct carrying a
//     Context field — and that contains loops must either poll a
//     cancellation probe (ctx.Err(), ctxCanceled, expired, <-ctx.Done(),
//     an Interrupt check) inside at least one loop, or install an
//     interrupt hook (SetInterrupt) that delegates the polling.
//   - Any infinite `for` loop (no condition) with no break must contain a
//     cancellation probe: without one, nothing bounds the loop once a job
//     deadline fires, and the solver-service worker stays occupied
//     forever.
var CtxPollAnalyzer = &Analyzer{
	Name: "ctxpoll",
	Doc:  "long-running technique/search loops must poll ctx.Err()/Interrupt",
	Run:  runCtxPoll,
}

var ctxpollTargets = []string{"internal/core", "internal/sat", "internal/portfolio"}

func runCtxPoll(pass *Pass) {
	targeted := false
	for _, t := range ctxpollTargets {
		if pkgPathHas(pass.Pkg, t) {
			targeted = true
			break
		}
	}
	if !targeted {
		return
	}
	for _, file := range pass.Pkg.Files {
		eachFuncBody(file, func(fd *ast.FuncDecl, body *ast.BlockStmt) {
			checkInfiniteLoops(pass, fd, body)
			if !fd.Name.IsExported() {
				return
			}
			if !hasCancelAccess(pass, fd) {
				return
			}
			loops := collectLoops(body)
			if len(loops) == 0 {
				return
			}
			for _, loop := range loops {
				if containsProbe(pass, loop) {
					return
				}
			}
			// A hook installation (SetInterrupt and friends) delegates the
			// polling to the hooked component.
			if containsCall(body, func(c *ast.CallExpr) bool {
				return strings.Contains(strings.ToLower(calleeName(c)), "interrupt")
			}) {
				return
			}
			pass.Reportf(loops[0].Pos(),
				"exported %s receives a cancellation signal but none of its loops polls ctx.Err()/Interrupt", fd.Name.Name)
		})
	}
}

// hasCancelAccess reports whether the function can observe cancellation: a
// context.Context parameter (directly or as a struct field of a parameter
// type) or a receiver carrying one.
func hasCancelAccess(pass *Pass, fd *ast.FuncDecl) bool {
	check := func(fl *ast.FieldList) bool {
		if fl == nil {
			return false
		}
		for _, f := range fl.List {
			t := typeOf(pass.Pkg, f.Type)
			if t == nil {
				continue
			}
			if isContextType(t) || typeHasContextField(t) {
				return true
			}
		}
		return false
	}
	return check(fd.Type.Params) || check(fd.Recv)
}

// collectLoops returns every for/range statement within body, including
// nested ones.
func collectLoops(body *ast.BlockStmt) []ast.Stmt {
	var loops []ast.Stmt
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			loops = append(loops, n.(ast.Stmt))
		}
		return true
	})
	return loops
}

// probeNameFragments mark a call as a cancellation probe by name:
// ctxCanceled, deadlineExpired, Interrupt, canceled...
var probeNameFragments = []string{"cancel", "expire", "interrupt"}

// containsProbe reports whether node lexically contains a cancellation
// probe: a name-matched probe call, ctx.Err() on a context value, or a
// receive from ctx.Done().
func containsProbe(pass *Pass, node ast.Node) bool {
	found := false
	ast.Inspect(node, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			name := strings.ToLower(calleeName(n))
			for _, frag := range probeNameFragments {
				if strings.Contains(name, frag) {
					found = true
					return false
				}
			}
			if recv := callReceiver(n); recv != nil && (calleeName(n) == "Err" || calleeName(n) == "Done") {
				if t := typeOf(pass.Pkg, recv); t != nil && isContextType(t) {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

// checkInfiniteLoops flags `for { ... }` loops with no break and no probe,
// in every function of the target packages (the CDCL search loop is
// unexported; the rule must see it).
func checkInfiniteLoops(pass *Pass, fd *ast.FuncDecl, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		loop, ok := n.(*ast.ForStmt)
		if !ok || loop.Cond != nil {
			return true
		}
		if loopHasBreak(loop) || containsProbe(pass, loop.Body) {
			return true
		}
		name := "function literal"
		if fd != nil {
			name = fd.Name.Name
		}
		pass.Reportf(loop.Pos(),
			"infinite for loop in %s has no break and never polls ctx.Err()/Interrupt", name)
		return true
	})
}

// loopHasBreak reports whether the loop body contains a break that
// terminates this loop (unlabeled and not swallowed by a nested loop,
// switch, or select — or labeled with this loop's label).
func loopHasBreak(loop *ast.ForStmt) bool {
	return blockHasBreak(loop.Body, false)
}

// blockHasBreak walks stmts; inSwallower tracks whether an unlabeled
// break would bind to a nested construct instead of the loop under test.
// Labeled breaks are treated as terminating (the label can only refer to
// an enclosing statement, and the common idiom is breaking the outer
// loop).
func blockHasBreak(n ast.Node, inSwallower bool) bool {
	found := false
	ast.Inspect(n, func(node ast.Node) bool {
		if found || node == nil {
			return false
		}
		switch s := node.(type) {
		case *ast.BranchStmt:
			if s.Tok != token.BREAK {
				return true
			}
			if s.Label != nil || !inSwallower {
				found = true
			}
			return false
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			if node == n {
				return true
			}
			if blockHasBreak(node, true) {
				// Only labeled breaks escape a nested swallower.
				found = hasLabeledBreak(node)
			}
			return false
		case *ast.FuncLit:
			return false
		}
		return true
	})
	return found
}

// hasLabeledBreak reports whether node contains a labeled break.
func hasLabeledBreak(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(node ast.Node) bool {
		if found {
			return false
		}
		if b, ok := node.(*ast.BranchStmt); ok && b.Tok == token.BREAK && b.Label != nil {
			found = true
			return false
		}
		if _, ok := node.(*ast.FuncLit); ok {
			return false
		}
		return true
	})
	return found
}
