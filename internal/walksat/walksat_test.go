package walksat

import (
	"context"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"repro/internal/cnf"
	"repro/internal/sat"
)

func lit(v int, neg bool) cnf.Lit { return cnf.MkLit(cnf.Var(v), neg) }

// Random satisfiable 3SAT built from a planted assignment: every model
// WalkSAT finds must verify (Solve checks this internally; the test
// re-checks from the outside).
func TestWalkSATFindsPlantedModels(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		nVars := 5 + rng.Intn(20)
		planted := make([]bool, nVars)
		for v := range planted {
			planted[v] = rng.Intn(2) == 1
		}
		f := cnf.NewFormula(nVars)
		for i := 0; i < 3*nVars; i++ {
			var c []cnf.Lit
			// Force at least one literal true under the planted model.
			sv := rng.Intn(nVars)
			c = append(c, lit(sv, !planted[sv]))
			for j := 0; j < 2; j++ {
				v := rng.Intn(nVars)
				c = append(c, lit(v, rng.Intn(2) == 1))
			}
			f.AddClause(c...)
		}
		res := Solve(context.Background(), f, Options{Seed: int64(trial)})
		if res.Status != sat.Sat {
			t.Fatalf("trial %d: no model found (flips=%d tries=%d)", trial, res.Flips, res.Tries)
		}
		if !f.Eval(func(v cnf.Var) bool { return res.Model[v] }) {
			t.Fatalf("trial %d: reported model does not verify", trial)
		}
	}
}

// XOR constraints participate in the search.
func TestWalkSATXorConstraints(t *testing.T) {
	f := cnf.NewFormula(6)
	f.AddXor(true, 0, 1, 2)
	f.AddXor(false, 2, 3)
	f.AddXor(true, 4, 5)
	f.AddClause(lit(0, false), lit(3, false))
	res := Solve(context.Background(), f, Options{Seed: 3})
	if res.Status != sat.Sat {
		t.Fatalf("mixed or/xor instance not solved: %+v", res)
	}
}

// Same seed, same verdict, same model, same flip count — the whole run
// must reproduce.
func TestWalkSATSeedDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	f := cnf.NewFormula(30)
	for i := 0; i < 100; i++ {
		f.AddClause(lit(rng.Intn(30), rng.Intn(2) == 1),
			lit(rng.Intn(30), rng.Intn(2) == 1),
			lit(rng.Intn(30), rng.Intn(2) == 1))
	}
	a := Solve(context.Background(), f, Options{Seed: 99, MaxFlips: 5000})
	b := Solve(context.Background(), f, Options{Seed: 99, MaxFlips: 5000})
	if a.Status != b.Status || a.Flips != b.Flips || a.Tries != b.Tries || !reflect.DeepEqual(a.Model, b.Model) {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
}

// An unsatisfiable instance must come back Unknown, never Unsat, and
// must respect the flip budget.
func TestWalkSATUnsatReturnsUnknown(t *testing.T) {
	f := cnf.NewFormula(2)
	f.AddClause(lit(0, false), lit(1, false))
	f.AddClause(lit(0, false), lit(1, true))
	f.AddClause(lit(0, true), lit(1, false))
	f.AddClause(lit(0, true), lit(1, true))
	res := Solve(context.Background(), f, Options{Seed: 1, MaxFlips: 3000})
	if res.Status != sat.Unknown {
		t.Fatalf("unsat instance returned %v", res.Status)
	}
	if res.Flips > 3000 {
		t.Fatalf("flip budget exceeded: %d", res.Flips)
	}
}

// Constraints no flip can satisfy short-circuit to Unknown.
func TestWalkSATFutileConstraints(t *testing.T) {
	f := cnf.NewFormula(1)
	f.Clauses = append(f.Clauses, cnf.Clause{})
	if res := Solve(context.Background(), f, Options{Seed: 1}); res.Status != sat.Unknown || res.Flips != 0 {
		t.Fatalf("empty clause: %+v", res)
	}
	g := cnf.NewFormula(1)
	g.Xors = append(g.Xors, cnf.XorClause{RHS: true})
	if res := Solve(context.Background(), g, Options{Seed: 1}); res.Status != sat.Unknown || res.Flips != 0 {
		t.Fatalf("0=1 xor: %+v", res)
	}
}

// Cancellation stops the search promptly.
func TestWalkSATContextCancel(t *testing.T) {
	f := cnf.NewFormula(2)
	f.AddClause(lit(0, false), lit(1, false))
	f.AddClause(lit(0, false), lit(1, true))
	f.AddClause(lit(0, true), lit(1, false))
	f.AddClause(lit(0, true), lit(1, true))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	res := Solve(ctx, f, Options{Seed: 1, MaxFlips: 1 << 40})
	if res.Status != sat.Unknown {
		t.Fatalf("cancelled run returned %v", res.Status)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("cancelled run did not stop promptly")
	}
}

// Degenerate inputs: no variables, tautologies, repeated literals.
func TestWalkSATDegenerate(t *testing.T) {
	empty := cnf.NewFormula(0)
	if res := Solve(context.Background(), empty, Options{Seed: 1}); res.Status != sat.Sat {
		t.Fatalf("empty formula: %+v", res)
	}
	f := cnf.NewFormula(2)
	f.AddClause(lit(0, false), lit(0, true)) // tautology
	f.AddClause(lit(1, false), lit(1, false))
	if res := Solve(context.Background(), f, Options{Seed: 1}); res.Status != sat.Sat {
		t.Fatalf("degenerate clauses: %+v", res)
	}
}
