package core

import (
	"math/rand"
	"testing"

	"repro/internal/anf"
)

// naiveState is a brute-force reference for VarState: it stores the full
// constraint set and recomputes consequences by enumeration.
type naiveState struct {
	n      int
	merges [][3]int // x, y, neg
	values [][2]int // var, value — a list so conflicting demands persist
}

func (ns *naiveState) consistentAssignments() [][]bool {
	var out [][]bool
	for mask := 0; mask < 1<<uint(ns.n); mask++ {
		ok := true
		for _, vc := range ns.values {
			if mask>>uint(vc[0])&1 == 1 != (vc[1] == 1) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		for _, m := range ns.merges {
			x := mask>>uint(m[0])&1 == 1
			y := mask>>uint(m[1])&1 == 1
			if (x != y) != (m[2] == 1) {
				ok = false
				break
			}
		}
		if ok {
			assign := make([]bool, ns.n)
			for v := 0; v < ns.n; v++ {
				assign[v] = mask>>uint(v)&1 == 1
			}
			out = append(out, assign)
		}
	}
	return out
}

// TestQuickVarStateVsNaive drives VarState with random merge/value
// operations and cross-checks determinedness and values against the
// enumeration reference.
func TestQuickVarStateVsNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(808))
	for trial := 0; trial < 120; trial++ {
		n := 3 + rng.Intn(6)
		st := NewVarState(n)
		ns := &naiveState{n: n}
		contradicted := false
		for op := 0; op < 2+rng.Intn(8) && !contradicted; op++ {
			if rng.Intn(3) == 0 {
				v := rng.Intn(n)
				b := rng.Intn(2) == 1
				ok := st.SetValue(anf.Var(v), b)
				val := 0
				if b {
					val = 1
				}
				ns.values = append(ns.values, [2]int{v, val})
				if !ok {
					contradicted = true
				}
			} else {
				x, y := rng.Intn(n), rng.Intn(n)
				neg := rng.Intn(2)
				_, ok := st.Merge(anf.Var(x), anf.Var(y), neg == 1)
				ns.merges = append(ns.merges, [3]int{x, y, neg})
				if !ok {
					contradicted = true
				}
			}
		}
		sols := ns.consistentAssignments()
		if contradicted {
			if len(sols) != 0 {
				t.Fatalf("trial %d: VarState contradicted but reference has %d solutions", trial, len(sols))
			}
			continue
		}
		if len(sols) == 0 {
			t.Fatalf("trial %d: reference inconsistent but VarState accepted everything", trial)
		}
		// Every value VarState reports as determined must be constant
		// across all reference solutions and match.
		for v := 0; v < n; v++ {
			if b, ok := st.Value(anf.Var(v)); ok {
				for _, sol := range sols {
					if sol[v] != b {
						t.Fatalf("trial %d: VarState says x%d=%v but a reference solution disagrees", trial, v, b)
					}
				}
			}
		}
		// Every equivalence must hold in all reference solutions.
		for v, r := range st.Equivalences() {
			for _, sol := range sols {
				if sol[v] != (sol[r.V] != r.Neg) {
					t.Fatalf("trial %d: equivalence x%d = %v violated by reference", trial, v, r)
				}
			}
		}
	}
}

func TestVarStateGrowAndFactPolys(t *testing.T) {
	st := NewVarState(2)
	st.Grow(5)
	if st.NumVars() != 5 {
		t.Fatalf("NumVars = %d", st.NumVars())
	}
	st.SetValue(4, true)
	st.Merge(2, 3, true)
	facts := st.FactPolys()
	// x4 ⊕ 1 and x3 = ¬x2 (root is the smaller var).
	want := map[string]bool{"x4 + 1": false, "x2 + x3 + 1": false}
	for _, f := range facts {
		if _, ok := want[f.String()]; ok {
			want[f.String()] = true
		}
	}
	for s, seen := range want {
		if !seen {
			t.Fatalf("fact %q missing from %v", s, facts)
		}
	}
	if st.String() == "" {
		t.Fatal("empty state description")
	}
}
