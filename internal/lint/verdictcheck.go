package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// VerdictCheckAnalyzer closes the loop on the proof/verification stack: a
// verdict that nobody reads is indistinguishable from no verification at
// all. Any call that produces a verification verdict — proof.Check /
// CheckText / CheckBinary, VerifyFacts, a certificate constructor (a
// module function returning a *Certificate* / CheckResult / VerifyReport
// value), or a module Eval method returning bool — must flow into a
// return, a branch, or a ledger. The analyzer uses the engine's def/use
// chains to catch three discard shapes:
//
//   - the call as a bare expression statement (or go/defer),
//   - every result assigned to the blank identifier,
//   - a local assigned the verdict and never read afterwards.
var VerdictCheckAnalyzer = &Analyzer{
	Name: "verdictcheck",
	Doc:  "verification verdicts (proof.Check, VerifyFacts, certificates, Eval) must be used, never discarded",
	Run:  runVerdictCheck,
}

// verdictFuncNames are the proof-package entry points whose results are
// verdicts regardless of result type.
var verdictFuncNames = map[string]bool{
	"Check":       true,
	"CheckText":   true,
	"CheckBinary": true,
	"VerifyFacts": true,
}

// verdictTypeFragments mark named result types that carry a verdict.
var verdictTypeFragments = []string{"Certificate", "CheckResult", "VerifyReport"}

func runVerdictCheck(pass *Pass) {
	if pass.Prog == nil {
		return
	}
	for _, file := range pass.Pkg.Files {
		eachFuncBody(file, func(fd *ast.FuncDecl, body *ast.BlockStmt) {
			du := buildDefUse(pass.Pkg, body)
			ast.Inspect(body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.ExprStmt:
					if call, ok := unparen(n.X).(*ast.CallExpr); ok {
						if what, ok := verdictCall(pass, call); ok {
							pass.Reportf(call.Pos(),
								"%s verdict discarded; thread it into a return, branch, or ledger", what)
						}
					}
				case *ast.GoStmt:
					if what, ok := verdictCall(pass, n.Call); ok {
						pass.Reportf(n.Call.Pos(),
							"%s verdict discarded by go statement; collect it through a channel or ledger", what)
					}
				case *ast.DeferStmt:
					if what, ok := verdictCall(pass, n.Call); ok {
						pass.Reportf(n.Call.Pos(),
							"%s verdict discarded by defer; call it in a deferred closure that records the result", what)
					}
				case *ast.AssignStmt:
					checkVerdictAssign(pass, du, n)
				}
				return true
			})
		})
	}
}

func checkVerdictAssign(pass *Pass, du *defUse, as *ast.AssignStmt) {
	for _, rhs := range as.Rhs {
		call, ok := unparen(rhs).(*ast.CallExpr)
		if !ok {
			continue
		}
		what, ok := verdictCall(pass, call)
		if !ok {
			continue
		}
		allBlank := true
		for _, lhs := range as.Lhs {
			id, isIdent := unparen(lhs).(*ast.Ident)
			if !isIdent {
				allBlank = false // a field/index store is a ledger write
				continue
			}
			if id.Name == "_" {
				continue
			}
			allBlank = false
			var obj types.Object
			if d := pass.Pkg.Info.Defs[id]; d != nil {
				obj = d
			} else {
				obj = pass.Pkg.Info.Uses[id]
			}
			if obj == nil || !isLocalVar(obj) {
				continue
			}
			if isErrorType(obj.Type()) {
				continue // the error leg is errcheck territory, not a verdict
			}
			if !du.usedAfter(obj, as) {
				pass.Reportf(id.Pos(),
					"%s verdict assigned to %q but never read; thread it into a return, branch, or ledger", what, id.Name)
			}
		}
		if allBlank {
			pass.Reportf(call.Pos(),
				"%s verdict assigned entirely to blank identifiers; thread it into a return, branch, or ledger", what)
		}
	}
}

// verdictCall classifies a call as verdict-producing and names it for the
// diagnostic.
func verdictCall(pass *Pass, call *ast.CallExpr) (string, bool) {
	callee := calleeFunc(pass.Pkg, call)
	if callee == nil || callee.Pkg() == nil {
		return "", false
	}
	path := "/" + callee.Pkg().Path() + "/"
	if strings.Contains(path, "/internal/proof/") && verdictFuncNames[callee.Name()] {
		return "proof." + callee.Name(), true
	}
	moduleLocal := pass.Prog.declOf(callee) != nil
	if !moduleLocal {
		return "", false
	}
	sig, ok := callee.Type().(*types.Signature)
	if !ok {
		return "", false
	}
	if callee.Name() == "Eval" && sig.Results().Len() >= 1 && isBoolType(sig.Results().At(0).Type()) {
		return "Eval verification", true
	}
	for i := 0; i < sig.Results().Len(); i++ {
		t := derefPtr(sig.Results().At(i).Type())
		named, ok := t.(*types.Named)
		if !ok {
			continue
		}
		for _, frag := range verdictTypeFragments {
			if strings.Contains(named.Obj().Name(), frag) {
				return callee.Name() + " certificate", true
			}
		}
	}
	return "", false
}

func isBoolType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsBoolean != 0
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil
}
