// Package route classifies CNF formulas into tractable fragments and
// decides the ones that match with polynomial-time solvers, so the
// engine can skip CDCL entirely on structurally easy residues.
//
// The classifier is a single pass over the clause list. Three fragments
// are decided outright:
//
//   - Binary (2SAT): every OR-clause has ≤ 2 literals. Solved in O(n+m)
//     by strongly connected components over the implication graph
//     (Aspvall–Plass–Tarjan), reusing the Tarjan machinery exported by
//     internal/sat.
//   - Horn / anti-Horn: every clause has ≤ 1 positive (resp. ≤ 1
//     negative) literal. Solved in O(n+m) by counting-based unit
//     propagation from the all-false (resp. all-true) default.
//   - AffineXor: no OR-clauses, only parity constraints. Solved by
//     GF(2) Gauss–Jordan elimination through internal/gf2.
//
// Every UNSAT verdict carries a text proof the internal/proof checker
// accepts: Horn and anti-Horn conflicts are input unit-propagation
// conflicts, so the empty clause alone is RUP; a 2SAT contradiction
// (v ≡ ¬v) yields the RUP chain (¬v), (v), (); an inconsistent XOR
// system is refuted by the empty parity constraint, which the checker
// validates against the input rows' GF(2) rowspan. Every SAT verdict's
// model is checked against the formula before being returned.
package route

import (
	"fmt"

	"repro/internal/cnf"
	"repro/internal/gf2"
	"repro/internal/sat"
)

// Fragment names the tractable class a formula was matched to.
type Fragment int

const (
	// Mixed is the catch-all: no tractable fragment matched.
	Mixed Fragment = iota
	// Binary is 2SAT: all OR-clauses have at most two literals.
	Binary
	// Horn: every clause has at most one positive literal.
	Horn
	// AntiHorn: every clause has at most one negative literal.
	AntiHorn
	// AffineXor: parity constraints only, no OR-clauses.
	AffineXor
)

// String returns the stable lowercase name used in metrics labels and
// Result.RoutedVia.
func (f Fragment) String() string {
	switch f {
	case Binary:
		return "2sat"
	case Horn:
		return "horn"
	case AntiHorn:
		return "antihorn"
	case AffineXor:
		return "xor"
	default:
		return "mixed"
	}
}

// Tally is the per-clause census the classifier gathers in its single
// pass. Fragment counts are clause counts, so a near-fragment instance
// (say 98% Horn) is visible to callers even when the verdict is Mixed.
type Tally struct {
	Clauses  int // OR-clauses in total
	Xors     int // parity constraints
	Units    int // clauses with exactly one literal
	Binary   int // clauses with at most two literals
	Horn     int // clauses with at most one positive literal
	AntiHorn int // clauses with at most one negative literal
	Empty    int // zero-literal clauses (immediately unsatisfiable)
	MaxLen   int // longest clause
}

// Classify runs the single-pass census and names the fragment. Literal
// counts are taken raw (no deduplication), so a semantically binary
// clause written with a repeated literal classifies conservatively as
// Mixed — never the other way around.
func Classify(f *cnf.Formula) (Fragment, Tally) {
	var t Tally
	t.Clauses = len(f.Clauses)
	t.Xors = len(f.Xors)
	for _, c := range f.Clauses {
		if len(c) > t.MaxLen {
			t.MaxLen = len(c)
		}
		pos := 0
		for _, l := range c {
			if !l.Neg() {
				pos++
			}
		}
		switch len(c) {
		case 0:
			t.Empty++
		case 1:
			t.Units++
		}
		if len(c) <= 2 {
			t.Binary++
		}
		if pos <= 1 {
			t.Horn++
		}
		if len(c)-pos <= 1 {
			t.AntiHorn++
		}
	}
	switch {
	case t.Xors > 0 && t.Clauses == 0:
		return AffineXor, t
	case t.Xors > 0:
		// OR/XOR blends need the CDCL+GJE profile; no polynomial route.
		return Mixed, t
	case t.Binary == t.Clauses:
		return Binary, t
	case t.Horn == t.Clauses:
		return Horn, t
	case t.AntiHorn == t.Clauses:
		return AntiHorn, t
	default:
		return Mixed, t
	}
}

// Verdict is a routed answer: the fragment that decided the formula,
// the status, and either a verified model (Sat) or a checkable text
// proof (Unsat).
type Verdict struct {
	Fragment Fragment
	Status   sat.Status
	Model    []bool // complete assignment over f.NumVars when Sat
	Proof    []byte // text DRAT/xor proof when Unsat
}

// Decide classifies f and, when a tractable fragment matches, solves it
// outright. ok=false means the formula was not routed (Mixed, or a
// defensive decline) and the caller should fall through to CDCL.
func Decide(f *cnf.Formula) (*Verdict, Tally, bool) {
	frag, tally := Classify(f)
	v, ok := Solve(f, frag)
	return v, tally, ok
}

// Solve runs the polynomial solver for a known fragment. The fragment
// must come from Classify on the same formula; Solve double-checks the
// cheap invariants and declines (ok=false) rather than guess when they
// do not hold. SAT models are verified against f before being returned.
func Solve(f *cnf.Formula, frag Fragment) (*Verdict, bool) {
	if frag == Mixed {
		return nil, false
	}
	if frag != AffineXor {
		for _, c := range f.Clauses {
			if len(c) == 0 {
				// The input contains the empty clause: the checker is
				// contradictory before the proof starts, so presenting
				// the empty clause alone verifies.
				return &Verdict{Fragment: frag, Status: sat.Unsat, Proof: []byte("0\n")}, true
			}
		}
	}
	var v *Verdict
	switch frag {
	case Binary:
		v = solve2SAT(f)
	case Horn:
		v = solveHorn(f, false)
	case AntiHorn:
		v = solveHorn(f, true)
	case AffineXor:
		v = solveXor(f)
	}
	if v == nil {
		return nil, false
	}
	if v.Status == sat.Sat {
		if !f.Eval(func(vr cnf.Var) bool { return v.Model[vr] }) {
			// A model that does not verify means the fragment invariant
			// was violated; decline the route instead of lying.
			return nil, false
		}
	}
	return v, true
}

// solve2SAT decides a binary-clause formula by SCC over the implication
// graph. Model rule (Aspvall–Plass–Tarjan): with components numbered in
// reverse topological order, set v true iff comp(v) < comp(¬v), i.e.
// pick whichever literal is downstream.
func solve2SAT(f *cnf.Formula) *Verdict {
	for _, c := range f.Clauses {
		if len(c) > 2 {
			return nil
		}
	}
	g := sat.NewImplications(f.NumVars)
	g.AddFormulaBinaries(f)
	comps := g.SCC()
	if w, bad := comps.Contradiction(); bad {
		// v and ¬v are mutually reachable, so asserting either polarity
		// unit-propagates to its complement: (¬v), (v), () is a RUP chain.
		d := int(w) + 1
		proof := fmt.Sprintf("-%d 0\n%d 0\n0\n", d, d)
		return &Verdict{Fragment: Binary, Status: sat.Unsat, Proof: []byte(proof)}
	}
	model := make([]bool, f.NumVars)
	for v := 0; v < f.NumVars; v++ {
		pos := comps.Of(cnf.MkLit(cnf.Var(v), false))
		neg := comps.Of(cnf.MkLit(cnf.Var(v), true))
		model[v] = pos < neg
	}
	return &Verdict{Fragment: Binary, Status: sat.Sat, Model: model}
}

// solveHorn decides a Horn (anti=false) or anti-Horn (anti=true)
// formula by counting-based unit propagation. The default assignment
// (all-false for Horn, all-true for anti-Horn) satisfies every clause
// that has at least one default-satisfied literal; only clauses whose
// default support runs out force their head. Horn-UNSAT is always a
// unit-propagation conflict, so the empty clause alone is a valid
// proof.
func solveHorn(f *cnf.Formula, anti bool) *Verdict {
	frag := Horn
	if anti {
		frag = AntiHorn
	}
	type hclause struct {
		head    cnf.Lit
		hasHead bool
		support int // default-satisfied literal occurrences remaining
	}
	clauses := make([]hclause, len(f.Clauses))
	// Support occurrences per var in CSR form (counted prefix sums into
	// one flat array): per-var append slices would dominate the solve on
	// sparse instances over many variables.
	occCnt := make([]int32, f.NumVars+1)
	for ci, c := range f.Clauses {
		hc := &clauses[ci]
		for _, l := range c {
			if l.Neg() == anti {
				// Head-polarity literal: falsified by the default.
				if hc.hasHead && hc.head != l {
					return nil // two distinct heads: not in the fragment
				}
				hc.hasHead = true
				hc.head = l
			} else {
				hc.support++
				occCnt[l.Var()+1]++
			}
		}
	}
	for v := 0; v < f.NumVars; v++ {
		occCnt[v+1] += occCnt[v]
	}
	occ := make([]int32, occCnt[f.NumVars])
	fill := make([]int32, f.NumVars)
	copy(fill, occCnt[:f.NumVars])
	for ci, c := range f.Clauses {
		for _, l := range c {
			if l.Neg() != anti {
				occ[fill[l.Var()]] = int32(ci)
				fill[l.Var()]++
			}
		}
	}
	// forced[v] means v was flipped from the default to the head value.
	forced := make([]bool, f.NumVars)
	var queue []cnf.Var
	force := func(v cnf.Var) {
		if !forced[v] {
			forced[v] = true
			queue = append(queue, v)
		}
	}
	conflict := false
	settle := func(hc *hclause) {
		// All default support is gone; the head must hold (or already
		// does because its variable was forced earlier).
		if !hc.hasHead {
			conflict = true
			return
		}
		force(hc.head.Var())
	}
	for ci := range clauses {
		if clauses[ci].support == 0 {
			settle(&clauses[ci])
		}
	}
	for !conflict && len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, ci := range occ[occCnt[v]:occCnt[v+1]] {
			hc := &clauses[ci]
			hc.support--
			if hc.support == 0 {
				settle(hc)
				if conflict {
					break
				}
			}
		}
	}
	if conflict {
		return &Verdict{Fragment: frag, Status: sat.Unsat, Proof: []byte("0\n")}
	}
	model := make([]bool, f.NumVars)
	for v := range model {
		model[v] = forced[v] != anti
	}
	return &Verdict{Fragment: frag, Status: sat.Sat, Model: model}
}

// solveXor decides a pure parity system with one GF(2) elimination.
// Free variables are assigned false.
func solveXor(f *cnf.Formula) *Verdict {
	if len(f.Clauses) > 0 {
		return nil
	}
	m := gf2.NewMatrix(len(f.Xors), f.NumVars)
	b := make([]bool, len(f.Xors))
	for i, x := range f.Xors {
		row := m.Row(i)
		for _, v := range x.Vars {
			// XOR, not set: a variable repeated inside one constraint
			// cancels (v ⊕ v = 0).
			gf2.XorBit(row, int(v))
		}
		b[i] = x.RHS
	}
	model, ok := m.Solve(b)
	if !ok {
		// The empty parity constraint (0 = 1) is in the input rowspan;
		// the checker's xor-justification path re-derives exactly that.
		return &Verdict{Fragment: AffineXor, Status: sat.Unsat, Proof: []byte("x 0\n")}
	}
	return &Verdict{Fragment: AffineXor, Status: sat.Sat, Model: model}
}
