// Package sha256 implements the SHA-256 compression function (FIPS 180-4)
// with a configurable round count, plus a bit-level ANF encoder — the
// substrate for the paper's weakened-Bitcoin nonce-finding benchmarks
// (appendix C, Fig. 5). The paper generated these ANFs with the cgen tool;
// we encode the compression circuit ourselves: XOR/rotate are linear,
// Ch/Maj are quadratic, and modular additions introduce carry variables
// with quadratic carry equations.
package sha256

import "math/bits"

// iv is the SHA-256 initial hash value.
var iv = [8]uint32{
	0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
	0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
}

// k is the SHA-256 round constant table.
var k = [64]uint32{
	0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
	0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
	0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
	0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
	0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
	0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
	0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
	0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
}

func ch(e, f, g uint32) uint32  { return e&f ^ ^e&g }
func maj(a, b, c uint32) uint32 { return a&b ^ a&c ^ b&c }

func bigSigma0(x uint32) uint32 {
	return bits.RotateLeft32(x, -2) ^ bits.RotateLeft32(x, -13) ^ bits.RotateLeft32(x, -22)
}
func bigSigma1(x uint32) uint32 {
	return bits.RotateLeft32(x, -6) ^ bits.RotateLeft32(x, -11) ^ bits.RotateLeft32(x, -25)
}
func smallSigma0(x uint32) uint32 {
	return bits.RotateLeft32(x, -7) ^ bits.RotateLeft32(x, -18) ^ x>>3
}
func smallSigma1(x uint32) uint32 {
	return bits.RotateLeft32(x, -17) ^ bits.RotateLeft32(x, -19) ^ x>>10
}

// Compress runs `rounds` rounds (1..64) of the SHA-256 compression
// function on one message block and returns the chained digest words.
// With rounds = 64 and the standard IV this is exactly one SHA-256 block.
func Compress(block [16]uint32, rounds int) [8]uint32 {
	if rounds < 1 || rounds > 64 {
		panic("sha256: rounds out of range")
	}
	var w [64]uint32
	copy(w[:16], block[:])
	for t := 16; t < rounds; t++ {
		w[t] = smallSigma1(w[t-2]) + w[t-7] + smallSigma0(w[t-15]) + w[t-16]
	}
	a, b, c, d, e, f, g, h := iv[0], iv[1], iv[2], iv[3], iv[4], iv[5], iv[6], iv[7]
	for t := 0; t < rounds; t++ {
		t1 := h + bigSigma1(e) + ch(e, f, g) + k[t] + w[t]
		t2 := bigSigma0(a) + maj(a, b, c)
		h, g, f, e, d, c, b, a = g, f, e, d+t1, c, b, a, t1+t2
	}
	return [8]uint32{iv[0] + a, iv[1] + b, iv[2] + c, iv[3] + d, iv[4] + e, iv[5] + f, iv[6] + g, iv[7] + h}
}

// Sum256Block hashes a single already-padded 512-bit block with the full
// 64 rounds (the weakened-Bitcoin setting uses exactly one block).
func Sum256Block(block [16]uint32) [8]uint32 { return Compress(block, 64) }
