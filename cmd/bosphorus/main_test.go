package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeFile(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestSolveANF(t *testing.T) {
	dir := t.TempDir()
	in := writeFile(t, dir, "p.anf", "x1*x2 + x3 + x4 + 1\nx1*x2*x3 + x1 + x3 + 1\nx1*x3 + x3*x4*x5 + x3\nx2*x3 + x3*x5 + 1\nx2*x3 + x5 + 1\n")
	var out, errw bytes.Buffer
	if err := run([]string{"-anf", in, "-solve"}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "s SATISFIABLE") {
		t.Fatalf("output:\n%s", out.String())
	}
	// The paper's solution: x1..x4 = 1, x5 = 0 → "v 1 2 3 4 -5" modulo x0.
	if !strings.Contains(out.String(), " 2 3 4 5 -6 0") {
		t.Fatalf("solution line wrong:\n%s", out.String())
	}
}

func TestUnsatANF(t *testing.T) {
	dir := t.TempDir()
	in := writeFile(t, dir, "u.anf", "x0\nx0 + 1\n")
	var out, errw bytes.Buffer
	if err := run([]string{"-anf", in, "-solve"}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "s UNSATISFIABLE") {
		t.Fatalf("output:\n%s", out.String())
	}
}

func TestPreprocessWritesOutputs(t *testing.T) {
	dir := t.TempDir()
	in := writeFile(t, dir, "p.anf", "x0*x1 + x2\nx0 + 1\nx2 + x3\n")
	outANF := filepath.Join(dir, "out.anf")
	outCNF := filepath.Join(dir, "out.cnf")
	var out, errw bytes.Buffer
	if err := run([]string{"-anf", in, "-out-anf", outANF, "-out-cnf", outCNF}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	anfData, err := os.ReadFile(outANF)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(anfData), "x0 + 1") {
		t.Fatalf("processed ANF missing fact:\n%s", anfData)
	}
	cnfData, err := os.ReadFile(outCNF)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(cnfData), "p cnf") {
		t.Fatal("CNF output not DIMACS")
	}
}

func TestCNFPreprocessorMode(t *testing.T) {
	dir := t.TempDir()
	in := writeFile(t, dir, "p.cnf", "p cnf 3 3\n1 0\n-1 2 0\n-2 3 0\n")
	outCNF := filepath.Join(dir, "out.cnf")
	var out, errw bytes.Buffer
	if err := run([]string{"-cnf", in, "-out-cnf", outCNF, "-solver", "minisat"}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(outCNF)
	if err != nil {
		t.Fatal(err)
	}
	// The learnt facts force all three variables; the merged output must
	// include unit clauses for them.
	s := string(data)
	for _, unit := range []string{"\n1 0\n", "\n2 0\n", "\n3 0\n"} {
		if !strings.Contains(s, unit) {
			t.Fatalf("missing learnt unit %q in:\n%s", strings.TrimSpace(unit), s)
		}
	}
}

func TestFlagValidation(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run([]string{}, &out, &errw); err == nil {
		t.Fatal("missing input not rejected")
	}
	if err := run([]string{"-anf", "a", "-cnf", "b"}, &out, &errw); err == nil {
		t.Fatal("double input not rejected")
	}
	dir := t.TempDir()
	in := writeFile(t, dir, "p.anf", "x0\n")
	if err := run([]string{"-anf", in, "-solver", "nope"}, &out, &errw); err == nil {
		t.Fatal("bad solver not rejected")
	}
}

func TestEnumerateSolutions(t *testing.T) {
	dir := t.TempDir()
	// x0 ∨ x1 as ANF would be x0*x1 + x0 + x1 + 1... simpler: x0 + x1: two
	// solutions (01, 10) over 2 variables.
	in := writeFile(t, dir, "e.anf", "x0 + x1 + 1\n")
	var out, errw bytes.Buffer
	if err := run([]string{"-anf", in, "-enum", "10"}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "2 solution(s)") {
		t.Fatalf("enumeration output wrong:\n%s", s)
	}
}
