package cube

import (
	"bytes"

	"repro/internal/cnf"
	"repro/internal/proof"
)

// SegmentWriter captures one worker's proof stream with deletions
// stripped. Stripping keeps the worker's database monotone, which is what
// makes segment concatenation sound: RUP is preserved under database
// supersets, so a clause that checked inside its own segment still checks
// with other workers' (earlier) additions in scope — while a deletion
// honoured from another worker's stream could remove a clause some later
// RUP step depends on.
type SegmentWriter struct {
	tw *proof.TextWriter
}

func NewSegmentWriter(buf *bytes.Buffer) SegmentWriter {
	return SegmentWriter{tw: proof.NewTextWriter(buf)}
}

func (w SegmentWriter) Learn(lits []cnf.Lit) { w.tw.Learn(lits) }

// Delete is a no-op: see the type comment.
func (w SegmentWriter) Delete(lits []cnf.Lit) {}

func (w SegmentWriter) Justify(lits []cnf.Lit) { w.tw.Justify(lits) }

func (w SegmentWriter) Flush() error { return w.tw.Flush() }

// stitch assembles the workers' proof segments and the cube tree into one
// DRAT refutation of the input formula. Layout, in order:
//
//  1. Every worker's segment, in worker order. Each segment is
//     independently RUP-checkable against the input (assumptions are
//     never logged, and imported shared clauses were RUP-filtered by the
//     importer), and RUP monotonicity makes the concatenation check too.
//  2. Per refuted cube, in cube-index order: the negation of its failed
//     assumptions (RUP — the worker derived the failure by propagation
//     over clauses its segment logged), then the negation of the full
//     prefix (RUP given the failed-assumption clause, which it
//     subsumes-with-extra-literals).
//  3. The tree merge, bottom-up: for every internal node, ¬prefix is RUP
//     from its children's ¬(prefix∧v) and ¬(prefix∧¬v). Refuted-at-split
//     leaves contribute their ¬prefix directly — pure unit propagation
//     against the input clauses. The root's prefix is empty, so the final
//     merge clause is the empty clause, and the checker verifies.
//
// failed[i] is cube i's failed-assumption set (possibly a strict subset
// of the prefix, possibly empty when the refuting worker found the
// formula inconsistent at level 0 — its segment then already contains the
// empty clause and the checker stops inside step 1).
// StitchProof is the exported entry point for out-of-process conquerors
// (the bosphorusd coordinator): it assembles remotely-produced segments
// and failed-assumption sets the same way the in-process pool does.
// Because remote workers solve each cube on a fresh solver, their
// segments are self-contained and may be passed in any order.
func StitchProof(t *Tree, segments [][]byte, failed [][]cnf.Lit) []byte {
	return stitch(t, segments, failed)
}

func stitch(t *Tree, segments [][]byte, failed [][]cnf.Lit) []byte {
	var out bytes.Buffer
	for _, seg := range segments {
		out.Write(seg)
	}
	tw := proof.NewTextWriter(&out)
	for i, prefix := range t.Open {
		if len(failed[i]) > 0 {
			tw.Learn(negate(failed[i]))
		}
		tw.Learn(negate(prefix))
	}
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.Pos == nil {
			if n.Refuted {
				tw.Learn(negate(n.Prefix))
			}
			// Open leaves were emitted above.
			return
		}
		walk(n.Pos)
		walk(n.Neg)
		tw.Learn(negate(n.Prefix))
	}
	walk(t.Root)
	tw.Flush()
	return out.Bytes()
}
