// Package bench is the evaluation harness reproducing the paper's §IV
// experiment design: every instance is solved once per SAT solver profile,
// with and without Bosphorus preprocessing, under a per-instance wall
// clock timeout; results aggregate to PAR-2 scores (sum of runtimes for
// solved instances plus twice the timeout for unsolved ones) and counts of
// solved SAT/UNSAT instances — the exact format of Table II.
package bench

import (
	"fmt"
	"time"

	"repro/internal/anf"
	"repro/internal/cnf"
	"repro/internal/conv"
	"repro/internal/core"
	"repro/internal/sat"
	"repro/internal/satgen"
	"repro/internal/simp"
)

// Job is one benchmark instance: either an ANF problem or a CNF problem.
type Job struct {
	Name  string
	ANF   *anf.System
	CNF   *cnf.Formula
	Truth satgen.Status // ground truth when known, for validity checking
}

// Config controls one evaluation cell (solver × with/without Bosphorus).
type Config struct {
	// Timeout is the per-instance wall-clock budget (the paper: 5000 s;
	// scaled down here).
	Timeout time.Duration
	// BosphorusShare is the fraction of Timeout granted to the
	// fact-learning loop (the paper: 1000/5000 = 0.2).
	BosphorusShare float64
	// Profile is the eventual SAT solver.
	Profile sat.Profile
	// UseBosphorus toggles the preprocessing ("w" vs "w/o" rows).
	UseBosphorus bool
	// Seed fixes all randomized components.
	Seed int64
}

// DefaultConfig returns a laptop-scale configuration.
func DefaultConfig() Config {
	return Config{
		Timeout:        3 * time.Second,
		BosphorusShare: 0.2,
		Profile:        sat.ProfileMiniSat,
		Seed:           1,
	}
}

// InstanceResult is the outcome of one run.
type InstanceResult struct {
	Name    string
	Verdict sat.Status
	Time    time.Duration
	// SolvedBy records whether Bosphorus itself or the eventual solver
	// produced the verdict.
	SolvedBy string
	// TruthMismatch flags a verdict contradicting the known ground truth —
	// always a bug, surfaced rather than silently scored.
	TruthMismatch bool
}

// RunInstance executes the paper's per-instance pipeline.
func RunInstance(job Job, cfg Config) InstanceResult {
	start := time.Now()
	res := InstanceResult{Name: job.Name, Verdict: sat.Unknown, SolvedBy: "solver"}
	deadline := start.Add(cfg.Timeout)

	formula, verdict, solvedBy := prepare(job, cfg, deadline)
	if verdict != sat.Unknown {
		res.Verdict = verdict
		res.SolvedBy = solvedBy
	} else {
		res.Verdict = finalSolve(formula, cfg, deadline)
	}
	res.Time = time.Since(start)
	if res.Time > cfg.Timeout {
		// Over-budget results count as unsolved, like the paper's runs.
		if res.Verdict != sat.Unknown {
			res.Verdict = sat.Unknown
		}
	}
	if res.Verdict != sat.Unknown && job.Truth != satgen.StatusUnknown {
		want := sat.Sat
		if job.Truth == satgen.StatusUnsat {
			want = sat.Unsat
		}
		res.TruthMismatch = res.Verdict != want
	}
	return res
}

// prepare produces the CNF the eventual solver will see, possibly solving
// outright via the Bosphorus loop.
func prepare(job Job, cfg Config, deadline time.Time) (*cnf.Formula, sat.Status, string) {
	if !cfg.UseBosphorus {
		// "w/o": CNF problems go to the solver as-is; ANF problems are
		// only converted (§IV: "converting to CNFs using BOSPHORUS if
		// needed").
		if job.CNF != nil {
			return job.CNF, sat.Unknown, ""
		}
		opts := conv.DefaultOptions()
		opts.NativeXor = cfg.Profile == sat.ProfileCMS
		f, _ := conv.ANFToCNF(job.ANF, opts)
		return f, sat.Unknown, ""
	}

	// "w": run the fact-learning loop within its time share.
	sys := job.ANF
	if sys == nil {
		sys = conv.CNFToANF(job.CNF, conv.DefaultOptions())
	}
	ccfg := core.DefaultConfig()
	ccfg.Seed = cfg.Seed
	ccfg.Profile = cfg.Profile
	ccfg.TimeBudget = time.Duration(float64(cfg.Timeout) * cfg.BosphorusShare)
	ccfg.Conv.NativeXor = cfg.Profile == sat.ProfileCMS
	out := core.Process(sys, ccfg)
	switch out.Status {
	case core.SolvedUNSAT:
		return nil, sat.Unsat, "bosphorus"
	case core.SolvedSAT:
		if job.ANF != nil {
			return nil, sat.Sat, "bosphorus"
		}
		// For CNF problems the ANF solution covers the original variables
		// (CNF variable i is ANF variable i); verify before trusting.
		if job.CNF.Eval(func(v cnf.Var) bool {
			return int(v) < len(out.Solution) && out.Solution[v]
		}) {
			return nil, sat.Sat, "bosphorus"
		}
	}

	if job.CNF != nil {
		// CNF use-case (§III-D): return the original CNF augmented with
		// the learnt value/equivalence facts over original variables.
		f := job.CNF.Clone()
		addFactClauses(f, out.State)
		return f, sat.Unknown, ""
	}
	opts := conv.DefaultOptions()
	opts.NativeXor = cfg.Profile == sat.ProfileCMS
	f, _ := conv.ANFToCNF(out.OutputANF(), opts)
	return f, sat.Unknown, ""
}

// addFactClauses appends unit and equivalence clauses for determined
// variables within the formula's variable range.
func addFactClauses(f *cnf.Formula, st *core.VarState) {
	n := f.NumVars
	for v := 0; v < n && v < st.NumVars(); v++ {
		if b, ok := st.Value(anf.Var(v)); ok {
			f.AddClause(cnf.MkLit(cnf.Var(v), !b))
			continue
		}
		r := st.Find(anf.Var(v))
		if int(r.V) >= n || r.V == anf.Var(v) {
			continue
		}
		a, b := cnf.Var(v), cnf.Var(r.V)
		if r.Neg {
			f.AddClause(cnf.MkLit(a, false), cnf.MkLit(b, false))
			f.AddClause(cnf.MkLit(a, true), cnf.MkLit(b, true))
		} else {
			f.AddClause(cnf.MkLit(a, false), cnf.MkLit(b, true))
			f.AddClause(cnf.MkLit(a, true), cnf.MkLit(b, false))
		}
	}
}

// finalSolve runs the eventual solver under the remaining wall clock.
func finalSolve(f *cnf.Formula, cfg Config, deadline time.Time) sat.Status {
	if f == nil {
		return sat.Unknown
	}
	target := f
	var rec *simp.Reconstructor
	switch cfg.Profile {
	case sat.ProfileLingeling:
		// The Lingeling column pairs CDCL with heavy preprocessing.
		pres := simp.Preprocess(f, simp.DefaultOptions())
		if pres.Unsat {
			return sat.Unsat
		}
		target = pres.Formula
		rec = pres.Reconstructor
	case sat.ProfileCMS:
		// CryptoMiniSat recovers clausally-encoded XORs so its
		// Gauss–Jordan component can act on them.
		target = sat.RecoverXors(f, 6)
	}
	_ = rec // models are not needed for scoring
	opts := sat.DefaultOptions(cfg.Profile)
	opts.RandomSeed = cfg.Seed
	s := sat.New(opts)
	if !s.AddFormula(target) {
		return sat.Unsat
	}
	s.SetDeadline(deadline)
	return s.Solve()
}

// PAR2 aggregates results: the PAR-2 score (seconds) plus the number of
// solved SAT and UNSAT instances.
func PAR2(results []InstanceResult, timeout time.Duration) (score float64, nSat, nUnsat int) {
	for _, r := range results {
		switch r.Verdict {
		case sat.Sat:
			nSat++
			score += r.Time.Seconds()
		case sat.Unsat:
			nUnsat++
			score += r.Time.Seconds()
		default:
			score += 2 * timeout.Seconds()
		}
	}
	return score, nSat, nUnsat
}

// CellResult is one Table II cell: a family × solver × with/without run.
type CellResult struct {
	PAR2   float64
	NSat   int
	NUnsat int
	// Mismatches counts verdicts contradicting ground truth (must be 0).
	Mismatches int
}

// RunCell evaluates all jobs of a family under one configuration.
func RunCell(jobs []Job, cfg Config) CellResult {
	var results []InstanceResult
	mism := 0
	for _, j := range jobs {
		r := RunInstance(j, cfg)
		if r.TruthMismatch {
			mism++
		}
		results = append(results, r)
	}
	score, nSat, nUnsat := PAR2(results, cfg.Timeout)
	return CellResult{PAR2: score, NSat: nSat, NUnsat: nUnsat, Mismatches: mism}
}

// FormatCell renders a cell the way Table II does: "PAR2 (sat+unsat)",
// with the unsat count omitted when zero.
func FormatCell(c CellResult) string {
	if c.NUnsat > 0 {
		return fmt.Sprintf("%.1f (%d+%d)", c.PAR2, c.NSat, c.NUnsat)
	}
	return fmt.Sprintf("%.1f (%d)", c.PAR2, c.NSat)
}
