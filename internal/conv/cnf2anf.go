package conv

import (
	"repro/internal/anf"
	"repro/internal/cnf"
)

// CNFToANF converts a CNF formula into an ANF polynomial system using the
// trivial refutational encoding (§III-D, after Hsiang): each clause maps
// to the product of its negated literals equated to zero. A clause with n
// positive literals yields 2^n terms, so clauses are first re-expressed
// with auxiliary variables until every piece has at most L′ positive
// literals (à la k-SAT → 3-SAT).
//
// CNF variable i becomes ANF variable i; auxiliary split variables are
// allocated past the original range. XOR clauses become linear
// polynomials directly (they are already ANF-native).
func CNFToANF(f *cnf.Formula, opts Options) *anf.System {
	if opts.ClauseCutLen < 2 {
		opts.ClauseCutLen = 2
	}
	sys := anf.NewSystem()
	sys.SetNumVars(f.NumVars)
	next := anf.Var(f.NumVars)
	for _, c := range f.Clauses {
		for _, piece := range splitClause(c, opts.ClauseCutLen, &next) {
			sys.Add(clausePoly(piece))
		}
	}
	for _, x := range f.Xors {
		p := anf.Constant(x.RHS)
		for _, v := range x.Vars {
			p = p.Add(anf.VarPoly(anf.Var(v)))
		}
		sys.Add(p)
	}
	sys.SetNumVars(int(next))
	return sys
}

// splitClause re-expresses a clause as chained pieces with at most maxPos
// positive literals each: (P1 ∨ a1), (¬a1 ∨ P2 ∨ a2), ..., (¬ak ∨ Pk+1).
// The connector literals ¬ai are negative, so they do not count against
// the positive budget of the next piece.
func splitClause(c cnf.Clause, maxPos int, next *anf.Var) []cnf.Clause {
	positives := 0
	for _, l := range c {
		if !l.Neg() {
			positives++
		}
	}
	if positives <= maxPos {
		return []cnf.Clause{c}
	}
	var pieces []cnf.Clause
	var cur cnf.Clause
	curPos := 0
	flush := func(last bool) {
		if last {
			pieces = append(pieces, cur)
			return
		}
		a := cnf.Var(*next)
		*next++
		piece := append(cur.Clone(), cnf.MkLit(a, false)) // ... ∨ a
		pieces = append(pieces, piece)
		cur = cnf.Clause{cnf.MkLit(a, true)} // ¬a ∨ ...
		curPos = 0
	}
	for _, l := range c {
		if !l.Neg() && curPos == maxPos {
			flush(false)
		}
		cur = append(cur, l)
		if !l.Neg() {
			curPos++
		}
	}
	flush(true)
	return pieces
}

// clausePoly maps a clause to the product of the negations of its
// literals: clause ¬x1 ∨ x2 becomes (x1)(x2 ⊕ 1). The clause holds iff
// the product is zero.
func clausePoly(c cnf.Clause) anf.Poly {
	p := anf.OnePoly()
	for _, l := range c {
		factor := anf.VarPoly(anf.Var(l.Var()))
		if !l.Neg() {
			factor = factor.Add(anf.OnePoly()) // positive literal x → (x ⊕ 1)
		}
		p = p.Mul(factor)
	}
	return p
}
