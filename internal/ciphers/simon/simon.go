// Package simon implements the Simon32/64 lightweight block cipher
// (Beaulieu et al., DAC 2015) and its ANF encoding — the paper's
// Simon-[n,r] benchmark family (appendix B): round-reduced Simon32/64 with
// n plaintext/ciphertext pairs under one secret key, in the Similar
// Plaintexts / Random Ciphertexts setting of Courtois et al.
//
// Simon's round function uses only AND, XOR and rotations, so every round
// contributes 16 quadratic equations; the key schedule is entirely linear
// over GF(2).
package simon

import (
	"math/rand"

	"repro/internal/anf"
)

const (
	// WordBits is the half-block width of Simon32/64.
	WordBits = 16
	// KeyWords is the number of key words (m = 4 for Simon32/64).
	KeyWords = 4
	// FullRounds is the full-strength round count of Simon32/64.
	FullRounds = 32
)

// z0 is the Simon z-sequence used by Simon32/64.
var z0 = [62]byte{
	1, 1, 1, 1, 1, 0, 1, 0, 0, 0, 1, 0, 0, 1, 0, 1, 0, 1, 1, 0, 0, 0,
	0, 1, 1, 1, 0, 0, 1, 1, 0, 1, 1, 1, 1, 1, 0, 1, 0, 0, 0, 1, 0, 0,
	1, 0, 1, 0, 1, 1, 0, 0, 0, 0, 1, 1, 1, 0, 0, 1, 1, 0,
}

func rotl(x uint16, r uint) uint16 { return x<<r | x>>(WordBits-r) }
func rotr(x uint16, r uint) uint16 { return x>>r | x<<(WordBits-r) }

// f is the Simon round function f(x) = (x ≪ 1 & x ≪ 8) ⊕ (x ≪ 2).
func f(x uint16) uint16 { return rotl(x, 1)&rotl(x, 8) ^ rotl(x, 2) }

// ExpandKey derives `rounds` round keys from the four 16-bit key words
// k[0] (used first) .. k[3].
func ExpandKey(k [4]uint16, rounds int) []uint16 {
	ks := make([]uint16, rounds)
	for i := 0; i < rounds && i < 4; i++ {
		ks[i] = k[i]
	}
	for i := 4; i < rounds; i++ {
		tmp := rotr(ks[i-1], 3) ^ ks[i-3]
		tmp ^= rotr(tmp, 1)
		ks[i] = ^ks[i-4] ^ tmp ^ uint16(z0[(i-4)%62]) ^ 3
	}
	return ks
}

// Encrypt runs `rounds` rounds of Simon32/64 on the plaintext (x = left
// half, y = right half).
func Encrypt(x, y uint16, k [4]uint16, rounds int) (uint16, uint16) {
	ks := ExpandKey(k, rounds)
	for i := 0; i < rounds; i++ {
		x, y = y^f(x)^ks[i], x
	}
	return x, y
}

// Params describes a Simon-[n, r] benchmark instance: n plaintexts
// (low Hamming distance, SP/RC setting) encrypted for r rounds under one
// random key.
type Params struct {
	NPlaintexts int
	Rounds      int
}

// Instance is the generated ANF problem together with its witness.
type Instance struct {
	Sys     *anf.System
	Key     [4]uint16
	Plains  [][2]uint16
	Ciphers [][2]uint16
	// KeyVarBase: key word w bit b is variable KeyVarBase + w*16 + b.
	KeyVarBase int
	Witness    []bool
}

// word is a symbolic 16-bit word: one polynomial per bit.
type word [WordBits]anf.Poly

func constWord(v uint16) word {
	var w word
	for b := 0; b < WordBits; b++ {
		w[b] = anf.Constant(v>>uint(b)&1 == 1)
	}
	return w
}

func (w word) rotl(r int) word {
	var out word
	for b := 0; b < WordBits; b++ {
		out[(b+r)%WordBits] = w[b]
	}
	return out
}

func (w word) rotr(r int) word { return w.rotl(WordBits - r) }

func (w word) xor(o word) word {
	var out word
	for b := 0; b < WordBits; b++ {
		out[b] = w[b].Add(o[b])
	}
	return out
}

func (w word) xorConst(v uint16) word {
	var out word
	for b := 0; b < WordBits; b++ {
		out[b] = w[b].AddConstant(v>>uint(b)&1 == 1)
	}
	return out
}

// builder allocates variables and equations.
type builder struct {
	sys  *anf.System
	next anf.Var
	wit  []bool
}

// freshWord introduces 16 fresh variables constrained to equal the given
// bit expressions, and records the concrete value in the witness.
func (bd *builder) freshWord(bits word, value uint16) word {
	var out word
	for b := 0; b < WordBits; b++ {
		v := bd.next
		bd.next++
		bd.wit = append(bd.wit, value>>uint(b)&1 == 1)
		out[b] = anf.VarPoly(v)
		bd.sys.Add(bits[b].Add(out[b]))
	}
	return out
}

// freeWord introduces 16 unconstrained variables (e.g. the key words).
func (bd *builder) freeWord(value uint16) word {
	var out word
	for b := 0; b < WordBits; b++ {
		v := bd.next
		bd.next++
		bd.wit = append(bd.wit, value>>uint(b)&1 == 1)
		out[b] = anf.VarPoly(v)
	}
	return out
}

// andWord forms the bitwise AND of two symbolic words (degree doubles; the
// caller materializes the result via freshWord).
func andWord(a, b word) word {
	var out word
	for i := 0; i < WordBits; i++ {
		out[i] = a[i].Mul(b[i])
	}
	return out
}

// symF is the symbolic round function f(x) = (x≪1 & x≪8) ⊕ (x≪2).
func symF(x word) word {
	return andWord(x.rotl(1), x.rotl(8)).xor(x.rotl(2))
}

// GenerateInstance builds the ANF system for a Simon-[n, r] instance: n
// plaintexts with low Hamming distance (the first sampled uniformly, the
// i-th toggling bit i-1 of the right half, per the SP/RC setting),
// encrypted r rounds under a random key. Plaintext and ciphertext bits
// are folded in as constants; the unknowns are the key words and the
// intermediate round states.
func GenerateInstance(p Params, rng *rand.Rand) *Instance {
	if p.Rounds < 1 || p.NPlaintexts < 1 || p.NPlaintexts > 17 {
		panic("simon: invalid parameters")
	}
	var key [4]uint16
	for i := range key {
		key[i] = uint16(rng.Intn(1 << 16))
	}
	bd := &builder{sys: anf.NewSystem()}
	inst := &Instance{Key: key, KeyVarBase: int(bd.next)}

	// Key word variables (free unknowns).
	var kw [4]word
	for i := 0; i < 4; i++ {
		kw[i] = bd.freeWord(key[i])
	}
	// Round keys: k_i for i<4 are the key words; later ones are linear in
	// them — materialized as fresh vars to keep the equations short.
	ksVals := ExpandKey(key, p.Rounds)
	ks := make([]word, p.Rounds)
	for i := 0; i < p.Rounds; i++ {
		if i < 4 {
			ks[i] = kw[i]
			continue
		}
		tmp := ks[i-1].rotr(3).xor(ks[i-3])
		tmp = tmp.xor(tmp.rotr(1))
		expr := ks[i-4].xorConst(0xFFFF).xor(tmp).xorConst(uint16(z0[(i-4)%62]) ^ 3)
		ks[i] = bd.freshWord(expr, ksVals[i])
	}

	// Plaintexts: SP/RC setting.
	p1x := uint16(rng.Intn(1 << 16))
	p1y := uint16(rng.Intn(1 << 16))
	for i := 0; i < p.NPlaintexts; i++ {
		px, py := p1x, p1y
		if i > 0 {
			py ^= 1 << uint(i-1) // toggle bit i-1 of the right half
		}
		cx, cy := Encrypt(px, py, key, p.Rounds)
		inst.Plains = append(inst.Plains, [2]uint16{px, py})
		inst.Ciphers = append(inst.Ciphers, [2]uint16{cx, cy})

		// Symbolic encryption: state halves as words; each round's new
		// left half is materialized (the AND makes it quadratic).
		x, y := constWord(px), constWord(py)
		xv, yv := px, py
		for r := 0; r < p.Rounds; r++ {
			newX := y.xor(symF(x)).xor(ks[r])
			newXVal := yv ^ f(xv) ^ ksVals[r]
			if r == p.Rounds-1 {
				// Final round: bind to the ciphertext constants instead of
				// fresh variables.
				cw := constWord(cx)
				for b := 0; b < WordBits; b++ {
					bd.sys.Add(newX[b].Add(cw[b]))
				}
				// And the right half of the ciphertext is the old x.
				cyw := constWord(cy)
				for b := 0; b < WordBits; b++ {
					bd.sys.Add(x[b].Add(cyw[b]))
				}
				break
			}
			x, y = bd.freshWord(newX, newXVal), x
			xv, yv = newXVal, xv
		}
	}
	inst.Sys = bd.sys
	inst.Sys.SetNumVars(int(bd.next))
	inst.Witness = bd.wit
	return inst
}

// KeyFromSolution reads the key words off a satisfying assignment.
func (inst *Instance) KeyFromSolution(sol []bool) [4]uint16 {
	var out [4]uint16
	for w := 0; w < 4; w++ {
		for b := 0; b < WordBits; b++ {
			idx := inst.KeyVarBase + w*WordBits + b
			if idx < len(sol) && sol[idx] {
				out[w] |= 1 << uint(b)
			}
		}
	}
	return out
}
