package cnf

import (
	"strings"
	"testing"
)

// FuzzReadDimacs checks that the DIMACS reader never panics and that
// accepted inputs survive a write/read round trip with stable semantics
// on a fixed assignment.
func FuzzReadDimacs(f *testing.F) {
	for _, seed := range []string{
		"p cnf 2 1\n1 -2 0\n",
		"c comment\np cnf 3 2\n1 2 3 0\n-1 0\n",
		"1 2 0",
		"x1 2 -3 0\n",
		"p cnf 0 0\n",
		"1\n2\n0\n",
		"p cnf a b\n",
		"zz\n",
		"x1 2\n3 0\n",
		"-0 0\n",
		// Hardening seeds: truncated header, header with missing clause
		// count, literal beyond the declared count, literal beyond MaxVar,
		// MinInt literal, and non-UTF-8 bytes.
		"p cnf 3\n",
		"p cnf 3 \n1 2 0\n",
		"p cnf 2 1\n1 99 0\n",
		"1 671088650 0\n",
		"-9223372036854775808 0\n",
		"p cnf 2 1\n\xff\xfe 1 2 0\n",
		"p cnf 99999999999999999999 1\n",
		"p cnf -1 0\n",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		frm, err := ReadDimacs(strings.NewReader(s))
		if err != nil {
			return
		}
		if frm.NumVars > 1<<16 {
			return // avoid giant assignments in the check below
		}
		var sb strings.Builder
		if err := WriteDimacs(&sb, frm); err != nil {
			t.Fatalf("write failed: %v", err)
		}
		back, err := ReadDimacs(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("round trip does not parse: %v", err)
		}
		assign := func(v Var) bool { return v%3 == 0 }
		if frm.Eval(assign) != back.Eval(assign) {
			t.Fatal("round trip changed semantics")
		}
	})
}

// TestReadDimacsRejectsMalformed pins the service-hardening contract:
// malformed bodies return errors (never panic, never silently build a
// formula with an absurd variable space).
func TestReadDimacsRejectsMalformed(t *testing.T) {
	bad := []struct{ name, in string }{
		{"truncated header", "p cnf 3\n"},
		{"non-numeric var count", "p cnf a 1\n"},
		{"non-numeric clause count", "p cnf 1 b\n"},
		{"negative var count", "p cnf -1 0\n"},
		{"overflowing var count", "p cnf 99999999999999999999 1\n"},
		{"declared count beyond MaxVar", "p cnf 999999999 1\n"},
		{"literal beyond declared", "p cnf 2 1\n1 3 0\n"},
		{"literal beyond MaxVar", "1 671088650 0\n"},
		{"MinInt literal", "-9223372036854775808 0\n"},
		{"non-UTF-8 bytes", "\xff\xfe1 2 0\n"},
		{"unterminated clause", "p cnf 2 1\n1 2\n"},
		{"xor inside clause", "1 2\nx1 2 0\n"},
	}
	for _, tc := range bad {
		if _, err := ReadDimacs(strings.NewReader(tc.in)); err == nil {
			t.Errorf("%s: accepted %q", tc.name, tc.in)
		}
	}
	good := []struct{ name, in string }{
		{"header exactly at count", "p cnf 2 1\n1 -2 0\n"},
		{"no header infers vars", "1 -2 0\n"},
		{"xor clause", "x1 2 -3 0\n"},
	}
	for _, tc := range good {
		if _, err := ReadDimacs(strings.NewReader(tc.in)); err != nil {
			t.Errorf("%s: rejected %q: %v", tc.name, tc.in, err)
		}
	}
}
