package conv

import (
	"math/rand"
	"testing"

	"repro/internal/ciphers/sr"
	"repro/internal/cnf"
)

// Conversion throughput on a full paper-scale SR(1,4,4,8) system (800
// variables, ~1700 equations) — the conversion-cost premise of the paper:
// bridging is attractive because conversion time is negligible relative
// to solving time.
func BenchmarkANFToCNF_SRPaperScale(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	inst := sr.GenerateInstance(sr.Paper144_8, rng)
	opts := DefaultOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, _ := ANFToCNF(inst.Sys, opts)
		if f.NumVars == 0 {
			b.Fatal("empty conversion")
		}
	}
}

func BenchmarkCNFToANF_Suite(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	// A mid-size CNF with mixed clause lengths.
	f := cnf.NewFormula(200)
	for i := 0; i < 850; i++ {
		k := 1 + rng.Intn(5)
		var lits []cnf.Lit
		for j := 0; j < k; j++ {
			lits = append(lits, cnf.MkLit(cnf.Var(rng.Intn(200)), rng.Intn(2) == 1))
		}
		f.AddClause(lits...)
	}
	opts := DefaultOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys := CNFToANF(f, opts)
		if sys.Len() == 0 {
			b.Fatal("empty conversion")
		}
	}
}
