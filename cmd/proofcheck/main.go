// Command proofcheck verifies a DRAT proof against a DIMACS CNF formula
// with the built-in streaming forward RUP checker — no external tool
// (drat-trim et al.) involved. It is the independent half of the
// bosphorus --proof round trip: solve with a proof, check the proof here.
//
// Usage:
//
//	proofcheck -cnf formula.cnf proof.drat
//	proofcheck -cnf formula.cnf -format bin proof.bin
//
// Prints "s VERIFIED" and exits 0 when the proof derives the empty
// clause and every step checks; prints "s NOT VERIFIED" and exits 1
// otherwise (including malformed streams).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/cnf"
	"repro/internal/proof"
)

func main() {
	code, out := run(os.Args[1:], os.Stderr)
	fmt.Fprint(os.Stdout, out)
	os.Exit(code)
}

func run(args []string, stderr io.Writer) (int, string) {
	fs := flag.NewFlagSet("proofcheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		cnfPath = fs.String("cnf", "", "DIMACS CNF formula the proof refutes (required)")
		format  = fs.String("format", "auto", "proof encoding: auto | text | bin")
		verbose = fs.Bool("v", false, "print per-kind step counts")
	)
	if err := fs.Parse(args); err != nil {
		return 2, ""
	}
	if *cnfPath == "" || fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: proofcheck -cnf formula.cnf [-format auto|text|bin] proof")
		return 2, ""
	}

	cf, err := os.Open(*cnfPath)
	if err != nil {
		fmt.Fprintln(stderr, "proofcheck:", err)
		return 2, ""
	}
	defer cf.Close()
	f, err := cnf.ReadDimacs(cf)
	if err != nil {
		fmt.Fprintln(stderr, "proofcheck: reading formula:", err)
		return 2, ""
	}

	pf, err := os.Open(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(stderr, "proofcheck:", err)
		return 2, ""
	}
	defer pf.Close()

	var res *proof.CheckResult
	switch *format {
	case "auto":
		res, err = proof.Check(f, pf)
	case "text":
		res, err = proof.CheckText(f, pf)
	case "bin":
		res, err = proof.CheckBinary(f, pf)
	default:
		fmt.Fprintf(stderr, "proofcheck: unknown format %q\n", *format)
		return 2, ""
	}

	out := ""
	if err != nil {
		out += fmt.Sprintf("c check error: %v\n", err)
	} else if *verbose {
		out += fmt.Sprintf("c steps=%d adds=%d deletes=%d justified=%d skipped-deletes=%d\n",
			res.Steps, res.Adds, res.Deletes, res.Justified, res.SkippedDeletes)
	}
	if err == nil && res.Verified {
		return 0, out + "s VERIFIED\n"
	}
	return 1, out + "s NOT VERIFIED\n"
}
