package sat

import "repro/internal/cnf"

// ProbeScore is the lookahead score of one variable: the unit-propagation
// fanout of each phase, plus whether either phase fails outright. It is
// the raw material of cube-and-conquer split selection (internal/cube)
// and of any other lookahead-style heuristic.
type ProbeScore struct {
	Var cnf.Var
	// PosImplied / NegImplied count the literals forced by assuming the
	// positive / negative phase (the probed literal itself excluded).
	PosImplied int
	NegImplied int
	// PosFailed / NegFailed report that the phase conflicts under unit
	// propagation, i.e. the opposite literal is entailed at this level.
	PosFailed bool
	NegFailed bool
}

// Score is the standard lookahead mixing function: the product of the two
// phase fanouts dominates (rewarding variables that split the search
// space evenly) with the sum as a tie-break. Failed phases score highest:
// probing them is free progress.
func (p ProbeScore) Score() int64 {
	if p.PosFailed || p.NegFailed {
		return 1 << 62
	}
	return int64(p.PosImplied)*int64(p.NegImplied)*1024 +
		int64(p.PosImplied) + int64(p.NegImplied)
}

// ProbeScoresUnder asserts the prefix literals as throwaway decisions,
// propagates each, and — when no conflict arises — scores up to maxVars of
// the remaining unassigned variables with ProbeScores. refuted reports
// that the prefix is inconsistent with the formula under unit propagation
// alone (the cube splitter's refutation-aware cutoff: such a prefix needs
// no worker, and its negation is RUP against the input clauses). The
// solver is returned to decision level 0 in either case and nothing is
// learnt or logged. Must be called at decision level 0.
func (s *Solver) ProbeScoresUnder(prefix []cnf.Lit, maxVars int) (scores []ProbeScore, refuted bool) {
	if !s.ok {
		return nil, true
	}
	if s.decisionLevel() != 0 {
		panic("sat: ProbeScoresUnder above level 0")
	}
	if conf := s.propagate(); conf != NullRef {
		s.releaseConflict(conf)
		s.ok = false
		s.logEmpty()
		return nil, true
	}
	for _, l := range prefix {
		s.ensureVars(int(l.Var()) + 1)
		if s.valueLit(l) == lTrue {
			continue
		}
		s.trailLim = append(s.trailLim, len(s.trail))
		if !s.enqueue(l, NullRef) {
			s.cancelUntil(0)
			return nil, true
		}
		if conf := s.propagate(); conf != NullRef {
			s.releaseConflict(conf)
			s.cancelUntil(0)
			return nil, true
		}
	}
	scores = s.ProbeScores(maxVars)
	s.cancelUntil(0)
	return scores, false
}

// ProbeScores measures the propagation fanout of both phases of up to
// maxVars unassigned variables (0 = all), in ascending variable order.
//
// Unlike ProbeLiterals it is purely observational: failed phases are
// reported, not asserted, and the assignment stack is exactly as before
// the call. It may be called above decision level 0 — the cube splitter
// assumes a prefix and scores the remaining variables — as long as
// propagation is already at a fixed point (callers that just assumed a
// literal must propagate, and handle the conflict, before scoring).
//
// The scores are a pure function of the clause database and the current
// assignment: two solvers built from the same formula with the same
// options and seed report bit-identical scores.
func (s *Solver) ProbeScores(maxVars int) []ProbeScore {
	var out []ProbeScore
	if !s.ok {
		return out
	}
	for v := 0; v < s.NumVars(); v++ {
		if maxVars > 0 && len(out) >= maxVars {
			break
		}
		if len(out)%64 == 63 && s.deadlineExpired() {
			break
		}
		if s.assigns[v] != lUndef {
			continue
		}
		pos, posOK := s.probeBranch(cnf.MkLit(cnf.Var(v), false))
		neg, negOK := s.probeBranch(cnf.MkLit(cnf.Var(v), true))
		sc := ProbeScore{Var: cnf.Var(v), PosFailed: !posOK, NegFailed: !negOK}
		if posOK {
			sc.PosImplied = len(pos) - 1
		}
		if negOK {
			sc.NegImplied = len(neg) - 1
		}
		out = append(out, sc)
	}
	return out
}
