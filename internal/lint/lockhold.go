package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockHoldAnalyzer enforces the mutex discipline of internal/server,
// internal/sat, internal/cube and internal/share (the packages where a
// wedged lock stalls either the request loop or the conquer workers).
// Two rules, both checked by a conservative walk over each
// function body that tracks which sync.Mutex/RWMutex values are held:
//
//   - No return path may hold a lock that was not released and has no
//     deferred unlock: an early return under a held lock wedges every
//     later request (the PR 2 outage class).
//   - No call from a locked region to a method (of the same receiver,
//     same package) that re-takes the same lock: with sync.Mutex that is
//     an instant self-deadlock, with RWMutex a writer-starvation deadlock
//     waiting for load.
var LockHoldAnalyzer = &Analyzer{
	Name: "lockhold",
	Doc:  "no lock-holding return paths without defer, no re-entrant locking through method calls",
	Run:  runLockHold,
}

var lockholdTargets = []string{"internal/server", "internal/sat", "internal/cube", "internal/share"}

func runLockHold(pass *Pass) {
	targeted := false
	for _, t := range lockholdTargets {
		if pkgPathHas(pass.Pkg, t) {
			targeted = true
			break
		}
	}
	if !targeted {
		return
	}
	locksByMethod := methodLockFields(pass)
	for _, file := range pass.Pkg.Files {
		eachFuncBody(file, func(fd *ast.FuncDecl, body *ast.BlockStmt) {
			w := &lockWalker{pass: pass, locksByMethod: locksByMethod}
			st := lockState{held: map[string]bool{}, deferred: map[string]bool{}}
			st = w.walkBlock(body, st)
			w.reportHeldAtExit(body.Rbrace, st, "function end")
		})
	}
}

// isMutexType reports whether t is sync.Mutex or sync.RWMutex (possibly
// behind a pointer).
func isMutexType(t types.Type) bool {
	named, ok := derefType(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// lockCall decodes a call as a mutex operation: the lock's source text,
// and whether it acquires (Lock/RLock) or releases (Unlock/RUnlock).
func lockCall(pass *Pass, call *ast.CallExpr) (lock string, acquire, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", false, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		acquire = true
	case "Unlock", "RUnlock":
		acquire = false
	default:
		return "", false, false
	}
	t := typeOf(pass.Pkg, sel.X)
	if t == nil || !isMutexType(t) {
		return "", false, false
	}
	return exprText(pass.Pkg.Fset, sel.X), acquire, true
}

// methodLockFields maps each method of the package to the mutex fields of
// its own receiver that its body acquires — the callee side of the
// re-entrant locking rule.
func methodLockFields(pass *Pass) map[*types.Func]map[string]bool {
	out := map[*types.Func]map[string]bool{}
	for _, file := range pass.Pkg.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil || len(fd.Recv.List) == 0 {
				continue
			}
			fn, ok := pass.Pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			var recvName string
			if names := fd.Recv.List[0].Names; len(names) > 0 {
				recvName = names[0].Name
			}
			if recvName == "" || recvName == "_" {
				continue
			}
			fields := map[string]bool{}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
					return true
				}
				inner, ok := sel.X.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				base, ok := inner.X.(*ast.Ident)
				if !ok || base.Name != recvName {
					return true
				}
				if t := typeOf(pass.Pkg, sel.X); t != nil && isMutexType(t) {
					fields[inner.Sel.Name] = true
				}
				return true
			})
			if len(fields) > 0 {
				out[fn] = fields
			}
		}
	}
	return out
}

// lockState is the abstract state of the walk: locks currently held and
// locks with a registered deferred unlock.
type lockState struct {
	held     map[string]bool
	deferred map[string]bool
}

func (s lockState) clone() lockState {
	n := lockState{held: map[string]bool{}, deferred: map[string]bool{}}
	for k := range s.held {
		n.held[k] = true
	}
	for k := range s.deferred {
		n.deferred[k] = true
	}
	return n
}

type lockWalker struct {
	pass          *Pass
	locksByMethod map[*types.Func]map[string]bool
}

func (w *lockWalker) reportHeldAtExit(pos token.Pos, st lockState, where string) {
	for lock := range st.held {
		if !st.deferred[lock] {
			w.pass.Reportf(pos, "%s reached while holding %s with no deferred unlock", where, lock)
		}
	}
}

// walkBlock threads the state through a statement list.
func (w *lockWalker) walkBlock(b *ast.BlockStmt, st lockState) lockState {
	for _, s := range b.List {
		st = w.walkStmt(s, st)
	}
	return st
}

func (w *lockWalker) walkStmt(s ast.Stmt, st lockState) lockState {
	switch s := s.(type) {
	case *ast.ExprStmt:
		return w.walkExprEffects(s.X, st)
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			st = w.walkExprEffects(r, st)
		}
		return st
	case *ast.DeferStmt:
		if lock, acquire, ok := lockCall(w.pass, s.Call); ok && !acquire {
			st.deferred[lock] = true
		}
		w.walkFuncLits(s.Call, st)
		return st
	case *ast.GoStmt:
		w.walkFuncLits(s.Call, st)
		return st
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			st = w.walkExprEffects(r, st)
		}
		w.reportHeldAtExit(s.Pos(), st, "return")
		return st
	case *ast.IfStmt:
		if s.Init != nil {
			st = w.walkStmt(s.Init, st)
		}
		st = w.walkExprEffects(s.Cond, st)
		thenSt := w.walkBlock(s.Body, st.clone())
		elseSt := st.clone()
		if s.Else != nil {
			elseSt = w.walkStmt(s.Else, elseSt)
		}
		return mergeStates(thenSt, elseSt, s.Body, s.Else)
	case *ast.BlockStmt:
		return w.walkBlock(s, st)
	case *ast.ForStmt:
		if s.Init != nil {
			st = w.walkStmt(s.Init, st)
		}
		w.walkBlock(s.Body, st.clone())
		return st
	case *ast.RangeStmt:
		w.walkBlock(s.Body, st.clone())
		return st
	case *ast.SwitchStmt:
		if s.Init != nil {
			st = w.walkStmt(s.Init, st)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				sub := st.clone()
				for _, cs := range cc.Body {
					sub = w.walkStmt(cs, sub)
				}
			}
		}
		return st
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				sub := st.clone()
				for _, cs := range cc.Body {
					sub = w.walkStmt(cs, sub)
				}
			}
		}
		return st
	case *ast.SelectStmt:
		var exits []lockState
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				sub := st.clone()
				if cc.Comm != nil {
					sub = w.walkStmt(cc.Comm, sub)
				}
				terminated := false
				for _, cs := range cc.Body {
					sub = w.walkStmt(cs, sub)
					if isTerminal(cs) {
						terminated = true
					}
				}
				if !terminated {
					exits = append(exits, sub)
				}
			}
		}
		if len(exits) > 0 {
			return unionStates(exits)
		}
		return st
	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt, st)
	}
	return st
}

// walkExprEffects applies lock/unlock effects of calls within an
// expression, checks re-entrant locking, and descends into function
// literals with a fresh state.
func (w *lockWalker) walkExprEffects(e ast.Expr, st lockState) lockState {
	ast.Inspect(e, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			fresh := lockState{held: map[string]bool{}, deferred: map[string]bool{}}
			end := w.walkBlock(fl.Body, fresh)
			w.reportHeldAtExit(fl.Body.Rbrace, end, "function end")
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if lock, acquire, ok := lockCall(w.pass, call); ok {
			if acquire {
				if st.held[lock] {
					w.pass.Reportf(call.Pos(), "%s acquired while already held (self-deadlock)", lock)
				}
				st.held[lock] = true
			} else {
				delete(st.held, lock)
			}
			return true
		}
		w.checkReentrantCall(call, st)
		return true
	})
	return st
}

// walkFuncLits scans go/defer call arguments for function literals.
func (w *lockWalker) walkFuncLits(call *ast.CallExpr, st lockState) {
	if fl, ok := call.Fun.(*ast.FuncLit); ok {
		fresh := lockState{held: map[string]bool{}, deferred: map[string]bool{}}
		end := w.walkBlock(fl.Body, fresh)
		w.reportHeldAtExit(fl.Body.Rbrace, end, "function end")
	}
	for _, a := range call.Args {
		if fl, ok := a.(*ast.FuncLit); ok {
			fresh := lockState{held: map[string]bool{}, deferred: map[string]bool{}}
			end := w.walkBlock(fl.Body, fresh)
			w.reportHeldAtExit(fl.Body.Rbrace, end, "function end")
		}
	}
}

// checkReentrantCall reports x.M(...) while a lock x.<field> is held and
// M's body acquires the same receiver field.
func (w *lockWalker) checkReentrantCall(call *ast.CallExpr, st lockState) {
	if len(st.held) == 0 {
		return
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := w.pass.Pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return
	}
	fields, ok := w.locksByMethod[fn]
	if !ok {
		return
	}
	recvText := exprText(w.pass.Pkg.Fset, sel.X)
	for field := range fields {
		if st.held[recvText+"."+field] {
			w.pass.Reportf(call.Pos(),
				"call to %s.%s while holding %s.%s, which %s re-acquires (deadlock)",
				recvText, sel.Sel.Name, recvText, field, sel.Sel.Name)
		}
	}
}

// mergeStates joins the two branches of an if: a branch that certainly
// terminated (ended in return/branch) does not constrain the fall-through
// state.
func mergeStates(thenSt, elseSt lockState, thenBlock *ast.BlockStmt, elseStmt ast.Stmt) lockState {
	thenTerm := blockTerminates(thenBlock)
	elseTerm := elseStmt != nil && stmtTerminates(elseStmt)
	switch {
	case thenTerm && elseTerm:
		return lockState{held: map[string]bool{}, deferred: map[string]bool{}}
	case thenTerm:
		return elseSt
	case elseTerm:
		return thenSt
	default:
		return unionStates([]lockState{thenSt, elseSt})
	}
}

func unionStates(states []lockState) lockState {
	out := lockState{held: map[string]bool{}, deferred: map[string]bool{}}
	for _, s := range states {
		for k := range s.held {
			out.held[k] = true
		}
		for k := range s.deferred {
			out.deferred[k] = true
		}
	}
	return out
}

// blockTerminates reports whether a block certainly leaves the enclosing
// scope (last statement is return/branch/panic).
func blockTerminates(b *ast.BlockStmt) bool {
	if b == nil || len(b.List) == 0 {
		return false
	}
	return isTerminal(b.List[len(b.List)-1])
}

func stmtTerminates(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return blockTerminates(s)
	case *ast.IfStmt:
		return blockTerminates(s.Body) && s.Else != nil && stmtTerminates(s.Else)
	default:
		return isTerminal(s)
	}
}

func isTerminal(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok && calleeName(call) == "panic" {
			return true
		}
	}
	return false
}
