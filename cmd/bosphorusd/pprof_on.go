//go:build pprof

package main

import (
	"net/http"
	"net/http/pprof"
)

// withPprof (pprof builds: go build -tags pprof) mounts the standard
// net/http/pprof handlers under /debug/pprof/ in front of the service
// mux, so a long benchmark or a stuck production repro can be profiled
// live:
//
//	go tool pprof http://<addr>/debug/pprof/profile?seconds=30
//	go tool pprof http://<addr>/debug/pprof/heap
//
// Everything else falls through to the service unchanged.
func withPprof(h http.Handler) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/", h)
	return mux
}
