// Algebraic cryptanalysis of round-reduced Simon32/64 (the paper's
// appendix-B benchmark): generate a Simon-[8,8] instance — eight related
// plaintexts encrypted under one secret key for eight rounds — and recover
// the key. Plain CDCL struggles at this depth; the Bosphorus fact-learning
// loop cracks it by combining Gauss–Jordan elimination over the quadratic
// round equations with conflict-driven learning.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"time"

	bosphorus "repro"
	"repro/internal/ciphers/simon"
)

func main() {
	plaintexts := flag.Int("plaintexts", 8, "number of related plaintexts (SP/RC setting)")
	rounds := flag.Int("rounds", 8, "Simon32/64 rounds")
	seed := flag.Int64("seed", 14, "instance seed")
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	inst := simon.GenerateInstance(simon.Params{NPlaintexts: *plaintexts, Rounds: *rounds}, rng)
	fmt.Printf("Simon-[%d,%d]: %d variables, %d quadratic equations\n",
		*plaintexts, *rounds, inst.Sys.NumVars(), inst.Sys.Len())
	fmt.Printf("secret key (hidden from the solver): %04x %04x %04x %04x\n",
		inst.Key[3], inst.Key[2], inst.Key[1], inst.Key[0])

	opts := bosphorus.DefaultOptions()
	opts.Seed = *seed
	start := time.Now()
	res := bosphorus.Solve(inst.Sys, opts)
	fmt.Printf("bosphorus: %v in %v (%d iterations; facts xl=%d elimlin=%d sat=%d prop=%d)\n",
		res.Status, time.Since(start).Round(time.Millisecond), res.Iterations,
		res.FactsXL, res.FactsElimLin, res.FactsSAT, res.FactsPropagation)
	if res.Status != bosphorus.SAT {
		log.Fatal("no solution found; increase rounds budget")
	}
	key := inst.KeyFromSolution(res.Solution)
	fmt.Printf("recovered key:                        %04x %04x %04x %04x\n",
		key[3], key[2], key[1], key[0])

	// Any recovered key must reproduce every plaintext/ciphertext pair
	// (with few pairs several keys may be consistent; all are valid
	// attacks).
	for i, pl := range inst.Plains {
		cx, cy := simon.Encrypt(pl[0], pl[1], key, *rounds)
		if cx != inst.Ciphers[i][0] || cy != inst.Ciphers[i][1] {
			log.Fatalf("recovered key fails pair %d", i)
		}
	}
	fmt.Printf("key verified against all %d plaintext/ciphertext pairs ✓\n", len(inst.Plains))
}
