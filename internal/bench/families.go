package bench

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/ciphers/sha256"
	"repro/internal/ciphers/simon"
	"repro/internal/ciphers/sr"
	"repro/internal/sat"
	"repro/internal/satgen"
)

// Family is one row group of Table II.
type Family struct {
	Name string
	Jobs []Job
}

// Scale selects instance sizes: Quick reruns the whole table in minutes on
// one machine; Paper uses the paper's instance parameters (hours of
// compute; the counts per family stay scaled down).
type Scale int

const (
	// Quick is the laptop-scale reproduction.
	Quick Scale = iota
	// Paper uses the paper's cipher parameters.
	Paper
)

// SRFamily generates the SR-[n,r,c,e] row.
func SRFamily(p sr.Params, count int, seed int64) Family {
	rng := rand.New(rand.NewSource(seed))
	fam := Family{Name: fmt.Sprintf("SR-[%d,%d,%d,%d]", p.N, p.R, p.C, p.E)}
	for i := 0; i < count; i++ {
		inst := sr.GenerateInstance(p, rng)
		fam.Jobs = append(fam.Jobs, Job{
			Name:  fmt.Sprintf("%s-%03d", fam.Name, i),
			ANF:   inst.Sys,
			Truth: satgen.StatusSat,
		})
	}
	return fam
}

// SimonFamily generates the Simon-[n,r] row.
func SimonFamily(p simon.Params, count int, seed int64) Family {
	rng := rand.New(rand.NewSource(seed))
	fam := Family{Name: fmt.Sprintf("Simon-[%d,%d]", p.NPlaintexts, p.Rounds)}
	for i := 0; i < count; i++ {
		inst := simon.GenerateInstance(p, rng)
		fam.Jobs = append(fam.Jobs, Job{
			Name:  fmt.Sprintf("%s-%03d", fam.Name, i),
			ANF:   inst.Sys,
			Truth: satgen.StatusSat,
		})
	}
	return fam
}

// BitcoinFamily generates the Bitcoin-[k] row.
func BitcoinFamily(p sha256.BitcoinParams, count int, seed int64) Family {
	rng := rand.New(rand.NewSource(seed))
	fam := Family{Name: fmt.Sprintf("Bitcoin-[%d]", p.K)}
	for i := 0; i < count; i++ {
		inst := sha256.GenerateBitcoin(p, rng)
		fam.Jobs = append(fam.Jobs, Job{
			Name:  fmt.Sprintf("%s-%03d", fam.Name, i),
			ANF:   inst.Sys,
			Truth: satgen.StatusSat,
		})
	}
	return fam
}

// SATFamily wraps the SAT-2017 substitute suite.
func SATFamily(cfg satgen.SuiteConfig) Family {
	fam := Family{Name: "SAT-2017"}
	for _, inst := range satgen.Suite(cfg) {
		fam.Jobs = append(fam.Jobs, Job{Name: inst.Name, CNF: inst.Formula, Truth: inst.Status})
	}
	return fam
}

// HardSubset mirrors the paper's second SAT-2017 row: instances selected
// by a difficulty proxy — those MiniSat (without Bosphorus) cannot solve
// within `proxyShare` of the timeout.
func HardSubset(fam Family, cfg Config, proxyShare float64) Family {
	proxy := cfg
	proxy.UseBosphorus = false
	proxy.Profile = sat.ProfileMiniSat
	proxy.Timeout = time.Duration(float64(cfg.Timeout) * proxyShare)
	hard := Family{Name: fam.Name + "-hard"}
	for _, j := range fam.Jobs {
		r := RunInstance(j, proxy)
		if r.Verdict == sat.Unknown {
			hard.Jobs = append(hard.Jobs, j)
		}
	}
	return hard
}

// Families returns the Table II rows at the given scale. Counts are per
// family (the paper used 500/50/50/310; we default far lower so the whole
// table reruns quickly — pass a larger count to approach the paper).
func Families(scale Scale, count int, seed int64) []Family {
	if count <= 0 {
		count = 5
	}
	switch scale {
	case Paper:
		return []Family{
			SRFamily(sr.Paper144_8, count, seed),
			SimonFamily(simon.Params{NPlaintexts: 8, Rounds: 6}, count, seed+1),
			SimonFamily(simon.Params{NPlaintexts: 9, Rounds: 7}, count, seed+2),
			SimonFamily(simon.Params{NPlaintexts: 10, Rounds: 8}, count, seed+3),
			BitcoinFamily(sha256.BitcoinParams{K: 10, Rounds: 64}, count, seed+4),
			BitcoinFamily(sha256.BitcoinParams{K: 15, Rounds: 64}, count, seed+5),
			BitcoinFamily(sha256.BitcoinParams{K: 20, Rounds: 64}, count, seed+6),
			SATFamily(satgen.SuiteConfig{Scale: 4, PerFamily: count, Seed: seed + 7}),
		}
	default:
		// Calibrated so the difficulty ladder mirrors Table II at seconds
		// scale: Simon-[2,6] is easy (Bosphorus is pure overhead, like the
		// paper's Simon-[8,6]); Simon-[4,7] breaks even (like
		// Simon-[9,7]); Simon-[8,8] is where plain CDCL times out but the
		// fact-learning loop cracks every instance.
		return []Family{
			SRFamily(sr.Params{N: 1, R: 2, C: 2, E: 4}, count, seed),
			SimonFamily(simon.Params{NPlaintexts: 2, Rounds: 6}, count, seed+1),
			SimonFamily(simon.Params{NPlaintexts: 4, Rounds: 7}, count, seed+2),
			SimonFamily(simon.Params{NPlaintexts: 8, Rounds: 8}, count, seed+3),
			BitcoinFamily(sha256.BitcoinParams{K: 4, Rounds: 16}, count, seed+4),
			BitcoinFamily(sha256.BitcoinParams{K: 8, Rounds: 16}, count, seed+5),
			BitcoinFamily(sha256.BitcoinParams{K: 12, Rounds: 17}, count, seed+6),
			SATFamily(satgen.SuiteConfig{Scale: 1, PerFamily: (count + 3) / 4, Seed: seed + 7}),
		}
	}
}
