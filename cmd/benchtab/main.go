// Command benchtab regenerates the paper's tables and figures:
//
//	benchtab -table 2            # Table II: the PAR-2 solver matrix
//	benchtab -table 2 -hard      # Table II's second SAT-2017 block (hard subset)
//	benchtab -table 1            # Table I: the worked XL example
//	benchtab -table fig2         # Fig. 2/3: Karnaugh vs Tseitin clause counts
//
// Table II runs every benchmark family against MiniSat-, Lingeling- and
// CryptoMiniSat-profile solvers, with and without the Bosphorus
// fact-learning loop, and prints PAR-2 scores with solved counts in the
// paper's row format. Sizes and timeouts are scaled for a single machine;
// -scale paper selects the paper's cipher parameters instead.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"time"

	"repro/internal/anf"
	"repro/internal/bench"
	"repro/internal/ciphers/sr"
	"repro/internal/cnf"
	"repro/internal/conv"
	"repro/internal/core"
	"repro/internal/gf2"
	"repro/internal/route"
	"repro/internal/sat"
	"repro/internal/satgen"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "benchtab:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("benchtab", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		table   = fs.String("table", "2", "what to regenerate: 1 | 2 | fig2")
		scale   = fs.String("scale", "quick", "instance scale: quick | paper")
		count   = fs.Int("count", 3, "instances per family")
		timeout = fs.Duration("timeout", 3*time.Second, "per-instance timeout (the paper used 5000 s)")
		seed    = fs.Int64("seed", 1, "random seed")
		hard    = fs.Bool("hard", false, "also evaluate the SAT-2017 hard subset (Table II's second block)")
		cactus  = fs.String("cactus", "", "with -table 2: also write a cactus-plot CSV (w vs w/o per solver) to this file")
		perf    = fs.String("perf", "", "write a JSON snapshot of the linearization/elimination kernel timings to this file and exit")
		quick   = fs.Bool("quick", false, "with -perf: tiny sizes and few rounds (CI smoke, numbers not comparable)")
		compare = fs.Bool("compare", false, "compare two perf snapshots: benchtab -compare old.json new.json")
		gate    = fs.Float64("gate", 0.10, "with -compare: exit non-zero when any metric regresses by more than this fraction (negative disables)")
		verbose = fs.Bool("v", false, "log each cell as it completes")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *compare {
		if fs.NArg() != 2 {
			return fmt.Errorf("-compare needs exactly two snapshot paths, got %d", fs.NArg())
		}
		return compareSnapshots(fs.Arg(0), fs.Arg(1), *gate, stdout)
	}
	if *perf != "" {
		return perfSnapshot(*perf, *seed, *quick, stderr)
	}

	switch *table {
	case "1":
		return tableI(stdout)
	case "fig2":
		return fig2(stdout)
	case "2":
		sc := bench.Quick
		if *scale == "paper" {
			sc = bench.Paper
		}
		cfg := bench.DefaultConfig()
		cfg.Timeout = *timeout
		cfg.Seed = *seed
		fams := bench.Families(sc, *count, *seed)
		if *hard {
			for _, f := range fams {
				if f.Name == "SAT-2017" {
					fmt.Fprintln(stderr, "selecting the hard SAT-2017 subset (MiniSat-runtime proxy, as in §IV)...")
					fams = append(fams, bench.HardSubset(f, cfg, 0.5))
				}
			}
		}
		var log io.Writer
		if *verbose {
			log = stderr
		}
		tab := bench.RunTableII(fams, cfg, log)
		fmt.Fprint(stdout, tab.Format())
		if *cactus != "" {
			var jobs []bench.Job
			for _, f := range fams {
				jobs = append(jobs, f.Jobs...)
			}
			configs := map[string]bench.Config{}
			for _, prof := range bench.Profiles {
				for _, useB := range []bool{false, true} {
					c := cfg
					c.Profile = prof
					c.UseBosphorus = useB
					name := prof.String() + "-wo"
					if useB {
						name = prof.String() + "-w"
					}
					configs[name] = c
				}
			}
			series := bench.RunCactus(jobs, configs)
			f, err := os.Create(*cactus)
			if err != nil {
				return err
			}
			defer f.Close()
			if err := bench.WriteCactusCSV(f, series); err != nil {
				return err
			}
			fmt.Fprintf(stderr, "cactus CSV written to %s\n", *cactus)
		}
		return nil
	default:
		return fmt.Errorf("unknown table %q", *table)
	}
}

// perfMeasurement is one kernel timing plus the execution context it was
// taken under. Earlier snapshots recorded a single top-level gomaxprocs,
// which silently misdescribed the wN entries on machines whose GOMAXPROCS
// differs from the worker count requested; every entry now carries its own
// worker count and the GOMAXPROCS in effect while it ran.
type perfMeasurement struct {
	Ns         int64 `json:"ns"`
	Workers    int   `json:"workers"`
	GOMAXPROCS int   `json:"gomaxprocs"`
}

// perfBlob is the snapshot schema. "medians_ns" is kept for compatibility
// with the frozen baselines (BENCH_pr1.json has only that section;
// BENCH_pr5.json adds "cdcl") so -compare works uniformly across
// generations; "measurements" carries the same timings with per-entry
// context.
type perfBlob struct {
	Date         string                           `json:"date"`
	GOOS         string                           `json:"goos"`
	GOARCH       string                           `json:"goarch"`
	GOMAXPROCS   int                              `json:"gomaxprocs"`
	Seed         int64                            `json:"seed"`
	Quick        bool                             `json:"quick,omitempty"`
	Medians      map[string]int64                 `json:"medians_ns"`
	Measurements map[string]perfMeasurement       `json:"measurements,omitempty"`
	CDCL         map[string]bench.CDCLMeasurement `json:"cdcl,omitempty"`
	// Cube is the cube-and-conquer scaling family (since BENCH_pr7.json):
	// direct vs 1/2/4-worker cube wall-clock medians per hard instance.
	Cube map[string]bench.CubeScalingMeasurement `json:"cube,omitempty"`
	// Fragment is the tractable-fragment routing family (since
	// BENCH_pr8.json): routed (classifier + polynomial solver) vs full
	// CDCL ns/op per instance, with the speedup ratio.
	Fragment map[string]bench.FragmentMeasurement `json:"fragment,omitempty"`
	// Parity is the native-parity family (since BENCH_pr10.json): the
	// packed parity clause kind vs the 2^(k-1) clausal cut, ns/op per
	// instance, with the cut/native speedup ratio.
	Parity map[string]bench.ParityMeasurement `json:"parity,omitempty"`
}

// perfSnapshot times the hot kernels this reproduction optimizes — the XL
// linearization pass, the ElimLin rounds loop, the (optionally parallel)
// M4R elimination, and (since PR 5) the CDCL solver's propagation-heavy
// and conflict-analysis-heavy benchmark families — and writes the medians
// as JSON, so successive PRs can diff like against like (see
// BENCH_pr1.json, BENCH_pr5.json). The CDCL entries carry allocs/op and
// bytes/op alongside ns/op: the arena clause store's target is both.
//
// The rref entries clone a pre-generated matrix outside the timed region.
// Snapshots up to BENCH_pr5.json timed matrix *generation* (n² rand.Intn
// calls, ~14 ms at n=1024) together with the elimination, burying the
// kernel being tracked; those frozen numbers are therefore comparable to
// each other but not to snapshots produced by this version (see
// EXPERIMENTS.md for the decomposition).
//
// quick shrinks everything (tiny matrix, short CDCL chain, fewer rounds)
// so CI can assert the harness runs end to end; quick numbers are marked
// in the blob and are not comparable to full runs.
func perfSnapshot(path string, seed int64, quick bool, stderr io.Writer) error {
	runs, matN, cdclRounds := 5, 1024, 5
	if quick {
		runs, matN, cdclRounds = 2, 128, 1
	}
	median := func(f func()) int64 {
		times := make([]int64, runs)
		for i := range times {
			t0 := time.Now()
			f()
			times[i] = time.Since(t0).Nanoseconds()
		}
		sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
		return times[runs/2]
	}
	srSys := sr.GenerateInstance(sr.Params{N: 1, R: 2, C: 2, E: 4},
		rand.New(rand.NewSource(7))).Sys
	randMatrix := func(n int, src int64) *gf2.Matrix {
		rng := rand.New(rand.NewSource(src))
		m := gf2.NewMatrix(n, n)
		for r := 0; r < n; r++ {
			for c := 0; c < n; c++ {
				if rng.Intn(2) == 1 {
					m.Set(r, c, true)
				}
			}
		}
		return m
	}
	maxprocs := runtime.GOMAXPROCS(0)
	base := randMatrix(matN, seed)
	medianRREF := func(w int) int64 {
		times := make([]int64, runs)
		for i := range times {
			m := base.Clone()
			t0 := time.Now()
			m.RREFM4RWorkers(w)
			times[i] = time.Since(t0).Nanoseconds()
		}
		sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
		return times[runs/2]
	}
	measurements := map[string]perfMeasurement{
		"xl_sr_ns": {Ns: median(func() {
			core.RunXL(srSys, core.XLConfig{M: 20, DeltaM: 4, Deg: 1,
				Rand: rand.New(rand.NewSource(seed))})
		}), Workers: 1, GOMAXPROCS: maxprocs},
		"elimlin_sr_ns": {Ns: median(func() {
			core.RunElimLin(srSys, core.ElimLinConfig{M: 20,
				Rand: rand.New(rand.NewSource(seed))})
		}), Workers: 1, GOMAXPROCS: maxprocs},
	}
	// The key names the matrix size so a -quick snapshot (n=128) can never
	// masquerade as a full one; at the default n=1024 the keys match the
	// frozen baselines.
	measurements[fmt.Sprintf("rref_m4r_%d_w1_ns", matN)] =
		perfMeasurement{Ns: medianRREF(1), Workers: 1, GOMAXPROCS: maxprocs}
	measurements[fmt.Sprintf("rref_m4r_%d_wN_ns", matN)] =
		perfMeasurement{Ns: medianRREF(maxprocs), Workers: maxprocs, GOMAXPROCS: maxprocs}
	results := make(map[string]int64, len(measurements))
	for k, m := range measurements {
		results[k] = m.Ns
	}
	cdcl := map[string]bench.CDCLMeasurement{}
	if quick {
		for name, m := range bench.MeasureCDCL(quickCDCLJobs(), sat.ProfileMiniSat, cdclRounds) {
			cdcl["cdcl_quick_"+name] = m
		}
	} else {
		for fam, jobs := range map[string][]bench.CDCLJob{
			"propagation": bench.CDCLPropagationJobs(),
			"conflict":    bench.CDCLConflictJobs(),
		} {
			for name, m := range bench.MeasureCDCL(jobs, sat.ProfileMiniSat, cdclRounds) {
				cdcl["cdcl_"+fam+"_"+name] = m
			}
		}
	}
	var cubeRes map[string]bench.CubeScalingMeasurement
	if quick {
		cubeRes = bench.MeasureCubeScaling(quickCubeJobs(), []int{1, 2}, 1)
	} else {
		cubeRes = bench.MeasureCubeScaling(bench.CubeScalingJobs(), []int{1, 2, 4}, cdclRounds)
	}
	cubeSec := make(map[string]bench.CubeScalingMeasurement, len(cubeRes))
	for name, m := range cubeRes {
		key := "cube_" + name
		if quick {
			key = "cube_quick_" + name
		}
		cubeSec[key] = m
		// Flatten the wall-clocks into medians_ns so -compare lists them
		// alongside the kernel timings once two snapshots carry them.
		results[key+"_direct_ns"] = m.DirectNs
		for w, ns := range m.CubeNs {
			results[key+"_w"+w+"_ns"] = ns
		}
	}
	fragJobs, fragPrefix := bench.FragmentJobs(), "fragment_"
	if quick {
		fragJobs, fragPrefix = quickFragmentJobs(), "fragment_quick_"
	}
	fragSec := make(map[string]bench.FragmentMeasurement, len(fragJobs))
	for name, m := range bench.MeasureFragment(fragJobs, sat.ProfileCMS, cdclRounds) {
		key := fragPrefix + name
		fragSec[key] = m
		// Flatten both columns into medians_ns so -compare gates them
		// alongside the kernel timings.
		results[key+"_routed_ns"] = m.RoutedNsPerOp
		results[key+"_cdcl_ns"] = m.CDCLNsPerOp
	}
	parityJobs, parityPrefix := bench.ParityJobs(), "parity_"
	if quick {
		parityJobs, parityPrefix = quickParityJobs(), "parity_quick_"
	}
	paritySec := make(map[string]bench.ParityMeasurement, len(parityJobs))
	for name, m := range bench.MeasureParity(parityJobs, sat.ProfileMiniSat, cdclRounds) {
		key := parityPrefix + name
		paritySec[key] = m
		// Flatten both arms into medians_ns so -compare gates them
		// alongside the kernel timings.
		results[key+"_native_ns"] = m.NativeNsPerOp
		results[key+"_cut_ns"] = m.CutNsPerOp
	}
	blob := perfBlob{
		Date:         time.Now().UTC().Format(time.RFC3339),
		GOOS:         runtime.GOOS,
		GOARCH:       runtime.GOARCH,
		GOMAXPROCS:   maxprocs,
		Seed:         seed,
		Quick:        quick,
		Medians:      results,
		Measurements: measurements,
		CDCL:         cdcl,
		Cube:         cubeSec,
		Fragment:     fragSec,
		Parity:       paritySec,
	}
	data, err := json.MarshalIndent(blob, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "perf snapshot written to %s\n", path)
	return nil
}

// quickCDCLJobs is a miniature propagation job for -quick runs: the same
// binary-implication chain shape as cdcl_propagation_chain-20000, cut to
// 500 variables so the whole snapshot finishes in well under a second.
func quickCDCLJobs() []bench.CDCLJob {
	const n = 500
	return []bench.CDCLJob{{
		Name: "chain-500",
		Want: satgen.StatusSat,
		Build: func() *cnf.Formula {
			f := cnf.NewFormula(n)
			for i := 0; i < n-1; i++ {
				f.AddClause(cnf.MkLit(cnf.Var(i), true), cnf.MkLit(cnf.Var(i+1), false))
			}
			f.AddClause(cnf.MkLit(0, false))
			return f
		},
	}}
}

// quickCubeJobs is a miniature cube-scaling job for -quick runs: a small
// pigeonhole instance that splits and refutes in milliseconds, asserting
// the measurement path end to end without the multi-second hard set.
func quickCubeJobs() []bench.CDCLJob {
	return []bench.CDCLJob{{
		Name: "php-5-4",
		Want: satgen.StatusUnsat,
		Build: func() *cnf.Formula {
			return satgen.Pigeonhole(5, 4).Formula
		},
	}}
}

// quickFragmentJobs is a miniature routing family for -quick runs: one
// tiny instance per pure fragment plus the mixed control, asserting the
// routed and CDCL measurement paths end to end in milliseconds.
func quickFragmentJobs() []bench.FragmentJob {
	return []bench.FragmentJob{
		{
			Name: "2sat-gadget-k60",
			Frag: route.Binary,
			Build: func() *cnf.Formula {
				return bench.Gadget2SAT(60)
			},
		},
		{
			Name: "horn-sparse-v20000-m2000",
			Frag: route.Horn,
			Build: func() *cnf.Formula {
				return bench.HornSparse(20000, 2000, rand.New(rand.NewSource(7)))
			},
		},
		{
			Name: "xor-planted-v64-e60",
			Frag: route.AffineXor,
			Build: func() *cnf.Formula {
				return bench.XorSystem(64, 60, 4, false, rand.New(rand.NewSource(82)))
			},
		},
	}
}

// quickParityJobs is a miniature parity family for -quick runs: one
// short cascade asserting the native and cut measurement arms end to end
// in milliseconds.
func quickParityJobs() []bench.ParityJob {
	return []bench.ParityJob{{
		Name: "cascade-v200-w4-unsat",
		Want: sat.Unsat,
		Build: func() *cnf.Formula {
			return bench.ParityCascade(200, 4, true, 5)
		},
	}}
}

// compareSnapshots loads two perf snapshots and prints a ratio table
// (new/old) over every metric present in both: the medians_ns section and,
// when both files have it, the CDCL ns/allocs/bytes triples. Metrics
// present in only one file are listed but not gated. When gate ≥ 0, any
// shared metric whose ratio exceeds 1+gate makes the comparison fail with
// a non-zero exit, so `benchtab -compare old.json new.json` can guard CI.
func compareSnapshots(oldPath, newPath string, gate float64, w io.Writer) error {
	load := func(path string) (*perfBlob, error) {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		var b perfBlob
		if err := json.Unmarshal(data, &b); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		return &b, nil
	}
	oldB, err := load(oldPath)
	if err != nil {
		return err
	}
	newB, err := load(newPath)
	if err != nil {
		return err
	}
	if oldB.Quick || newB.Quick {
		fmt.Fprintln(w, "note: at least one snapshot was taken with -quick; numbers are smoke-scale")
	}

	type row struct {
		name     string
		oldV     int64
		newV     int64
		both     bool
		regress  bool
		onlySide string // "old" or "new" when !both
	}
	var rows []row
	addMetric := func(name string, oldV, newV int64, oldOK, newOK bool) {
		r := row{name: name, oldV: oldV, newV: newV, both: oldOK && newOK}
		if !r.both {
			if oldOK {
				r.onlySide = "old"
			} else {
				r.onlySide = "new"
			}
		} else if gate >= 0 && oldV > 0 && float64(newV)/float64(oldV) > 1+gate {
			r.regress = true
		}
		rows = append(rows, r)
	}

	keys := map[string]bool{}
	for k := range oldB.Medians {
		keys[k] = true
	}
	for k := range newB.Medians {
		keys[k] = true
	}
	for _, k := range sortedKeys(keys) {
		ov, ook := oldB.Medians[k]
		nv, nok := newB.Medians[k]
		addMetric(k, ov, nv, ook, nok)
	}
	keys = map[string]bool{}
	for k := range oldB.CDCL {
		keys[k] = true
	}
	for k := range newB.CDCL {
		keys[k] = true
	}
	for _, k := range sortedKeys(keys) {
		om, ook := oldB.CDCL[k]
		nm, nok := newB.CDCL[k]
		addMetric(k+"/ns", om.NsPerOp, nm.NsPerOp, ook, nok)
		addMetric(k+"/allocs", om.AllocsPerOp, nm.AllocsPerOp, ook, nok)
		addMetric(k+"/bytes", om.BytesPerOp, nm.BytesPerOp, ook, nok)
	}

	fmt.Fprintf(w, "%-44s %14s %14s %8s\n", "metric", "old", "new", "ratio")
	failed := 0
	for _, r := range rows {
		switch {
		case !r.both:
			v := r.oldV
			if r.onlySide == "new" {
				v = r.newV
			}
			fmt.Fprintf(w, "%-44s %14s %14s %8s  (only in %s)\n",
				r.name, sideVal(r.onlySide == "old", v), sideVal(r.onlySide == "new", v), "-", r.onlySide)
		default:
			ratio := "-"
			if r.oldV > 0 {
				ratio = fmt.Sprintf("%.3f", float64(r.newV)/float64(r.oldV))
			} else if r.newV == 0 {
				ratio = "1.000"
			}
			mark := ""
			if r.regress {
				mark = "  REGRESSION"
				failed++
			}
			fmt.Fprintf(w, "%-44s %14d %14d %8s%s\n", r.name, r.oldV, r.newV, ratio, mark)
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d metric(s) regressed by more than %.0f%% (%s -> %s)",
			failed, gate*100, oldPath, newPath)
	}
	return nil
}

func sideVal(present bool, v int64) string {
	if present {
		return fmt.Sprintf("%d", v)
	}
	return "-"
}

func sortedKeys(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// tableI prints the worked XL example of Table I.
func tableI(w io.Writer) error {
	sys := anf.NewSystem()
	sys.Add(anf.MustParsePoly("x1*x2 + x1 + 1"))
	sys.Add(anf.MustParsePoly("x2*x3 + x3"))
	fmt.Fprintln(w, "Table I reproduction — XL on {x1*x2 + x1 + 1, x2*x3 + x3}, D = 1")
	rng := rand.New(rand.NewSource(1))
	facts := core.RunXL(sys, core.XLConfig{M: 20, DeltaM: 4, Deg: 1, Rand: rng})
	fmt.Fprintln(w, "facts retained after Gauss-Jordan elimination:")
	for _, f := range facts {
		fmt.Fprintf(w, "  %s = 0\n", f)
	}
	fmt.Fprintln(w, "(paper: x1 + 1, x2, x3)")
	return nil
}

// fig2 prints the Karnaugh vs Tseitin comparison of Fig. 2/3.
func fig2(w io.Writer) error {
	p := anf.MustParsePoly("x1*x3 + x1 + x2 + x4 + 1")
	fmt.Fprintf(w, "Fig. 2 reproduction — CNF encodings of %s = 0\n", p)

	kOpts := conv.DefaultOptions()
	kf, kvm := conv.PolyToCNF(p, kOpts)
	fmt.Fprintf(w, "Karnaugh-map path (K=%d): %d clauses, %d auxiliary variables\n",
		kOpts.KarnaughK, len(kf.Clauses), kvm.AuxCount()+kvm.ConnectorCount())
	for _, c := range kf.Clauses {
		fmt.Fprintf(w, "  %s\n", c)
	}

	tOpts := conv.DefaultOptions()
	tOpts.KarnaughK = 0
	tf, tvm := conv.PolyToCNF(p, tOpts)
	fmt.Fprintf(w, "Tseitin path: %d clauses, %d auxiliary variables\n",
		len(tf.Clauses), tvm.AuxCount()+tvm.ConnectorCount())
	for _, c := range tf.Clauses {
		fmt.Fprintf(w, "  %s\n", c)
	}
	fmt.Fprintln(w, "(paper: 6 clauses vs 11 clauses with one auxiliary variable)")
	return nil
}
