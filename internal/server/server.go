// Package server implements bosphorusd's HTTP/JSON solver service: a
// bounded job queue in front of a fixed worker pool, with per-job
// deadlines threaded through the whole solve stack as context
// cancellation, backpressure when the queue is full, an LRU cache for
// identical normalized inputs, and plain-text metrics.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
)

// maxBodyBytes caps a request body; anything larger is a client error,
// not a reason to let one request eat the heap.
const maxBodyBytes = 64 << 20

// Config sets the daemon's pool/queue shape and the base engine
// configuration shared by all jobs.
type Config struct {
	// Workers is the solve pool size. 0 = GOMAXPROCS.
	Workers int
	// QueueSize bounds the number of admitted-but-unstarted jobs; a full
	// queue turns new jobs away with 429. 0 = 64.
	QueueSize int
	// CacheSize is the LRU result-cache capacity. 0 = 128; negative
	// disables caching.
	CacheSize int
	// DefaultJobTime applies when a request carries no timeout_ms. 0 = 10s.
	DefaultJobTime time.Duration
	// MaxJobTime caps every job regardless of the requested timeout. 0 = 60s.
	MaxJobTime time.Duration
	// Engine is the base fact-learning configuration; per-request knobs
	// (max_iterations, conflict_budget, seed, workers) override it.
	Engine core.Config
	// Role selects the clustering role. RoleSolo (the default) answers
	// every job in-process. RoleCoordinator additionally parks cube-mode
	// jobs after splitting them and serves the open cubes to pull-based
	// worker nodes on /cube/next, assembling their results (and stitching
	// their proof segments) into the job's response.
	Role Role
	// CubeLeaseTTL (coordinator role) bounds how long a dispatched cube
	// may stay unanswered before the lease reaper re-queues it for another
	// worker node — the recovery path for nodes that die or go silent
	// mid-conquest. 0 = 30s.
	CubeLeaseTTL time.Duration
	// Log receives one line per job; nil silences it.
	Log *log.Logger
}

// Role is the daemon's clustering role.
type Role int

// Roles. The worker-node role is not a Server configuration — worker
// nodes are clients of a coordinator (see Node) with their own small
// health/metrics listener.
const (
	RoleSolo Role = iota
	RoleCoordinator
)

func (r Role) String() string {
	if r == RoleCoordinator {
		return "coordinator"
	}
	return "solo"
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueSize <= 0 {
		c.QueueSize = 64
	}
	if c.CacheSize == 0 {
		c.CacheSize = 128
	}
	if c.DefaultJobTime <= 0 {
		c.DefaultJobTime = 10 * time.Second
	}
	if c.MaxJobTime <= 0 {
		c.MaxJobTime = 60 * time.Second
	}
	if c.CubeLeaseTTL <= 0 {
		c.CubeLeaseTTL = 30 * time.Second
	}
	return c
}

// Server is the running service. Create with New, expose via ServeHTTP,
// stop with Shutdown.
type Server struct {
	cfg     Config
	metrics *Metrics
	cache   *lruCache
	mux     *http.ServeMux
	cubes   *cubeRegistry

	queue      chan *job
	pool       sync.WaitGroup
	stopReaper chan struct{} // closed on Shutdown (coordinator role only)

	mu       sync.RWMutex // guards draining vs. enqueue-on-closed-queue
	draining bool
}

// New builds the server and starts its worker pool.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		metrics: NewMetrics(),
		cache:   newLRUCache(cfg.CacheSize),
		mux:     http.NewServeMux(),
		cubes:   newCubeRegistry(cfg.CubeLeaseTTL),
		queue:   make(chan *job, cfg.QueueSize),
	}
	s.mux.HandleFunc("/solve", s.handleSolve)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	if cfg.Role == RoleCoordinator {
		s.mux.HandleFunc("/cube/next", s.handleCubeNext)
		s.mux.HandleFunc("/cube/result", s.handleCubeResult)
		s.stopReaper = make(chan struct{})
		go s.cubeReaper()
	}
	for i := 0; i < cfg.Workers; i++ {
		s.pool.Add(1)
		go s.worker()
	}
	return s
}

// Metrics exposes the registry (for tests and embedding binaries).
func (s *Server) Metrics() *Metrics { return s.metrics }

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Shutdown drains the service: no new jobs are admitted, queued and
// running jobs finish (bounded by their own deadlines), and the worker
// pool exits. It returns early with ctx.Err() if ctx expires first.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	if !already {
		close(s.queue)
		if s.stopReaper != nil {
			close(s.stopReaper)
		}
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.pool.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// worker owns one pool slot: pull a job, run it under the job's context,
// publish the response, repeat until the queue closes.
func (s *Server) worker() {
	defer s.pool.Done()
	for jb := range s.queue {
		s.metrics.QueueDepth.Add(-1)
		start := time.Now()
		var resp *Response
		if jb.kind == kindCube && s.cfg.Role == RoleCoordinator {
			resp = s.runCubeCoordinator(jb)
		} else {
			resp = jb.run(s.cfg.Engine, s.metrics)
		}
		if resp.Status == "CANCELED" {
			s.metrics.JobsCanceled.Add(1)
		} else {
			s.metrics.JobsCompleted.Add(1)
			s.cache.Put(jb.key, resp)
		}
		s.metrics.ObserveLatency(time.Since(start))
		s.logf("job mode=%s status=%s elapsed=%s", jb.req.Mode, resp.Status, time.Since(start))
		jb.resp = resp
		close(jb.done)
	}
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req Request
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.metrics.JobsFailed.Add(1)
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	// Fold the server's routing and XOR-handling defaults into the request
	// before parsing so the cache key reflects the effective flags, not
	// just the client's.
	req.Route = req.Route || s.cfg.Engine.Route
	req.NoNativeXor = req.NoNativeXor || s.cfg.Engine.NoNativeXor
	jb, err := parseJob(req)
	if err != nil {
		s.metrics.JobsFailed.Add(1)
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}

	if hit, ok := s.cache.Get(jb.key); ok {
		s.metrics.CacheHits.Add(1)
		cached := *hit // shallow copy; cached responses are never mutated
		cached.Cached = true
		writeJSON(w, http.StatusOK, &cached)
		return
	}

	// Per-job deadline: request override, server default, hard cap — and
	// tied to the client connection, so a disconnect cancels the solve.
	effTimeout := s.cfg.DefaultJobTime
	if req.TimeoutMS > 0 {
		effTimeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if effTimeout > s.cfg.MaxJobTime {
		effTimeout = s.cfg.MaxJobTime
	}
	ctx, cancel := context.WithTimeout(r.Context(), effTimeout)
	defer cancel()
	jb.ctx = ctx
	jb.done = make(chan struct{})

	// Admit or reject. The read lock keeps Shutdown's close(queue) from
	// racing the send; a full queue answers immediately with backpressure.
	s.mu.RLock()
	if s.draining {
		s.mu.RUnlock()
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	select {
	case s.queue <- jb:
		s.mu.RUnlock()
		s.metrics.JobsAccepted.Add(1)
		s.metrics.QueueDepth.Add(1)
	default:
		s.mu.RUnlock()
		s.metrics.JobsRejected.Add(1)
		w.Header().Set("Retry-After", "1")
		http.Error(w, "queue full", http.StatusTooManyRequests)
		return
	}

	<-jb.done
	writeJSON(w, http.StatusOK, jb.resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	draining := s.draining
	s.mu.RUnlock()
	if draining {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "ok role=%s\n", s.cfg.Role)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprint(w, s.metrics.Render())
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Log != nil {
		s.cfg.Log.Printf(format, args...)
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}
