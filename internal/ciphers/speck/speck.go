// Package speck implements the Speck32/64 lightweight block cipher
// (Beaulieu et al., DAC 2015 — the same paper that defines Simon) and its
// bit-level ANF encoding. Speck is the ARX (add–rotate–xor) sibling of
// the Feistel-style Simon: where Simon's nonlinearity is a bitwise AND,
// Speck's is addition modulo 2^16, which the encoder expands with carry
// variables — the same construction the SHA-256 encoder uses. It extends
// the paper's benchmark families in the direction its §V "plug in more
// techniques/problems" discussion invites.
package speck

import (
	"math/rand"

	"repro/internal/anf"
)

const (
	// WordBits is the half-block width of Speck32/64.
	WordBits = 16
	// KeyWords is m = 4 for Speck32/64.
	KeyWords = 4
	// FullRounds is the full-strength round count of Speck32/64.
	FullRounds = 22
	// alpha and beta are the Speck32 rotation constants.
	alpha = 7
	beta  = 2
)

func rotl(x uint16, r uint) uint16 { return x<<r | x>>(WordBits-r) }
func rotr(x uint16, r uint) uint16 { return x>>r | x<<(WordBits-r) }

// round applies one Speck round with round key k:
// x = (x ⋙ α + y) ⊕ k;  y = (y ⋘ β) ⊕ x.
func round(x, y, k uint16) (uint16, uint16) {
	x = rotr(x, alpha)
	x += y
	x ^= k
	y = rotl(y, beta)
	y ^= x
	return x, y
}

// ExpandKey derives `rounds` round keys from key words k[0] (used first)
// through k[3], per the Speck key schedule (which reuses the round
// function on the key state).
func ExpandKey(k [4]uint16, rounds int) []uint16 {
	ks := make([]uint16, rounds)
	l := []uint16{k[1], k[2], k[3]}
	key := k[0]
	for i := 0; i < rounds; i++ {
		ks[i] = key
		if i == rounds-1 {
			break
		}
		nl, nk := round(l[i%3], key, uint16(i))
		l[i%3] = nl
		key = nk
	}
	return ks
}

// Encrypt runs `rounds` rounds of Speck32/64.
func Encrypt(x, y uint16, k [4]uint16, rounds int) (uint16, uint16) {
	ks := ExpandKey(k, rounds)
	for i := 0; i < rounds; i++ {
		x, y = round(x, y, ks[i])
	}
	return x, y
}

// Params describes a Speck-[n, r] instance: n known plaintext/ciphertext
// pairs under one key, r rounds.
type Params struct {
	NPlaintexts int
	Rounds      int
}

// Instance is the generated ANF problem with its witness.
type Instance struct {
	Sys        *anf.System
	Key        [4]uint16
	Plains     [][2]uint16
	Ciphers    [][2]uint16
	KeyVarBase int
	Witness    []bool
}

type word [WordBits]anf.Poly

func constWord(v uint16) word {
	var w word
	for b := 0; b < WordBits; b++ {
		w[b] = anf.Constant(v>>uint(b)&1 == 1)
	}
	return w
}

func (w word) rotl(r int) word {
	var out word
	for b := 0; b < WordBits; b++ {
		out[(b+r)%WordBits] = w[b]
	}
	return out
}

func (w word) rotr(r int) word { return w.rotl(WordBits - r) }

func (w word) xor(o word) word {
	var out word
	for b := 0; b < WordBits; b++ {
		out[b] = w[b].Add(o[b])
	}
	return out
}

func (w word) xorConst(v uint16) word {
	var out word
	for b := 0; b < WordBits; b++ {
		out[b] = w[b].AddConstant(v>>uint(b)&1 == 1)
	}
	return out
}

type builder struct {
	sys  *anf.System
	next anf.Var
	wit  []bool
}

func (bd *builder) freshBit(expr anf.Poly, val bool) anf.Poly {
	v := bd.next
	bd.next++
	bd.wit = append(bd.wit, val)
	p := anf.VarPoly(v)
	bd.sys.Add(expr.Add(p))
	return p
}

func (bd *builder) freeWord(value uint16) word {
	var out word
	for b := 0; b < WordBits; b++ {
		v := bd.next
		bd.next++
		bd.wit = append(bd.wit, value>>uint(b)&1 == 1)
		out[b] = anf.VarPoly(v)
	}
	return out
}

// maybeMaterialize rebinds any grown bit expressions to fresh variables so
// downstream products stay small (same trick as the SHA-256 encoder).
func (bd *builder) maybeMaterialize(w word, val uint16) word {
	grown := false
	for b := 0; b < WordBits; b++ {
		if w[b].NumTerms() > 4 || w[b].Deg() > 1 {
			grown = true
			break
		}
	}
	if !grown {
		return w
	}
	var out word
	for b := 0; b < WordBits; b++ {
		out[b] = bd.freshBit(w[b], val>>uint(b)&1 == 1)
	}
	return out
}

// add emits s = a + b mod 2^16 with materialized sum and carry variables
// (quadratic carry equations), tracking witness values.
func (bd *builder) add(a word, aVal uint16, b word, bVal uint16) (word, uint16) {
	a = bd.maybeMaterialize(a, aVal)
	b = bd.maybeMaterialize(b, bVal)
	sVal := aVal + bVal
	var s word
	carry := anf.Zero()
	carryVal := false
	for i := 0; i < WordBits; i++ {
		ab := a[i].Add(b[i])
		s[i] = bd.freshBit(ab.Add(carry), sVal>>uint(i)&1 == 1)
		if i == WordBits-1 {
			break
		}
		ai := aVal>>uint(i)&1 == 1
		bi := bVal>>uint(i)&1 == 1
		newCarryVal := (ai && bi) || (carryVal && (ai != bi))
		carry = bd.freshBit(a[i].Mul(b[i]).Add(carry.Mul(ab)), newCarryVal)
		carryVal = newCarryVal
	}
	return s, sVal
}

// GenerateInstance builds the ANF system for a Speck-[n, r] instance: the
// unknowns are the four key words, the round-key words and the
// intermediate state words (all materialized so every equation stays
// quadratic).
func GenerateInstance(p Params, rng *rand.Rand) *Instance {
	if p.Rounds < 1 || p.NPlaintexts < 1 {
		panic("speck: invalid parameters")
	}
	var key [4]uint16
	for i := range key {
		key[i] = uint16(rng.Intn(1 << 16))
	}
	bd := &builder{sys: anf.NewSystem()}
	inst := &Instance{Key: key, KeyVarBase: int(bd.next)}

	kw := make([]word, 4)
	for i := range kw {
		kw[i] = bd.freeWord(key[i])
	}
	// Symbolic key schedule (it reuses the round function, so it is
	// nonlinear and needs its own adder chains).
	ksVals := ExpandKey(key, p.Rounds)
	lVals := []uint16{key[1], key[2], key[3]}
	l := []word{kw[1], kw[2], kw[3]}
	ks := make([]word, p.Rounds)
	ks[0] = kw[0]
	kcur, kcurVal := kw[0], key[0]
	for i := 0; i+1 < p.Rounds; i++ {
		// nl = (l[i%3] ⋙ α + kcur) ⊕ i ; nk = (kcur ⋘ β) ⊕ nl.
		sum, sumVal := bd.add(l[i%3].rotr(alpha), rotr(lVals[i%3], alpha), kcur, kcurVal)
		nl := sum.xorConst(uint16(i))
		nlVal := sumVal ^ uint16(i)
		nk := kcur.rotl(beta).xor(nl)
		nkVal := rotl(kcurVal, beta) ^ nlVal
		l[i%3], lVals[i%3] = nl, nlVal
		kcur, kcurVal = nk, nkVal
		ks[i+1] = kcur
		if kcurVal != ksVals[i+1] {
			panic("speck: symbolic key schedule diverged from reference")
		}
	}

	for i := 0; i < p.NPlaintexts; i++ {
		px := uint16(rng.Intn(1 << 16))
		py := uint16(rng.Intn(1 << 16))
		cx, cy := Encrypt(px, py, key, p.Rounds)
		inst.Plains = append(inst.Plains, [2]uint16{px, py})
		inst.Ciphers = append(inst.Ciphers, [2]uint16{cx, cy})

		x, y := constWord(px), constWord(py)
		xv, yv := px, py
		for r := 0; r < p.Rounds; r++ {
			sum, sumVal := bd.add(x.rotr(alpha), rotr(xv, alpha), y, yv)
			ksVal := ksVals[r]
			nx := sum.xor(ks[r])
			nxVal := sumVal ^ ksVal
			ny := y.rotl(beta).xor(nx)
			nyVal := rotl(yv, beta) ^ nxVal
			x, xv = nx, nxVal
			y, yv = ny, nyVal
		}
		// Bind to the ciphertext constants.
		cwx, cwy := constWord(cx), constWord(cy)
		for b := 0; b < WordBits; b++ {
			bd.sys.Add(x[b].Add(cwx[b]))
			bd.sys.Add(y[b].Add(cwy[b]))
		}
	}
	inst.Sys = bd.sys
	inst.Sys.SetNumVars(int(bd.next))
	inst.Witness = bd.wit
	return inst
}

// KeyFromSolution reads the key words off a satisfying assignment.
func (inst *Instance) KeyFromSolution(sol []bool) [4]uint16 {
	var out [4]uint16
	for w := 0; w < 4; w++ {
		for b := 0; b < WordBits; b++ {
			idx := inst.KeyVarBase + w*WordBits + b
			if idx < len(sol) && sol[idx] {
				out[w] |= 1 << uint(b)
			}
		}
	}
	return out
}
