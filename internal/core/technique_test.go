package core

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/anf"
)

// A custom technique that "knows" a fact about the example system; the
// loop must pick it up, propagate it, and credit it to Extra.
func TestExtraTechniquePlugIn(t *testing.T) {
	sys := sysFrom(t, paperExample)
	oracle := TechniqueFunc{
		TechName: "oracle",
		Fn: func(ctx context.Context, s *anf.System, rng *rand.Rand) []anf.Poly {
			return []anf.Poly{anf.MustParsePoly("x3 + 1")}
		},
	}
	cfg := DefaultConfig()
	cfg.DisableXL = true
	cfg.DisableElimLin = true
	cfg.DisableSAT = true
	cfg.ExtraTechniques = []Technique{oracle}
	res := Process(sys, cfg)
	if res.Extra.Runs == 0 {
		t.Fatal("extra technique never ran")
	}
	if res.Extra.NewFacts == 0 {
		t.Fatal("oracle fact not credited")
	}
	if b, ok := res.State.Value(3); !ok || !b {
		t.Fatal("oracle fact not propagated")
	}
}

func TestExtraTechniqueContradiction(t *testing.T) {
	sys := sysFrom(t, "x0 + x1\n")
	liar := TechniqueFunc{
		TechName: "liar",
		Fn: func(ctx context.Context, s *anf.System, rng *rand.Rand) []anf.Poly {
			return []anf.Poly{anf.OnePoly()}
		},
	}
	cfg := DefaultConfig()
	cfg.ExtraTechniques = []Technique{liar}
	res := Process(sys, cfg)
	if res.Status != SolvedUNSAT {
		t.Fatalf("contradictory fact should yield UNSAT, got %v", res.Status)
	}
}

func TestBuchbergerTechniqueWrapper(t *testing.T) {
	sys := sysFrom(t, paperExample)
	cfg := DefaultConfig()
	cfg.ExtraTechniques = []Technique{BuchbergerTechnique()}
	res := Process(sys, cfg)
	if res.Status == SolvedUNSAT {
		t.Fatal("wrong verdict")
	}
	if res.Extra.Runs == 0 {
		t.Fatal("Buchberger technique never ran")
	}
	if BuchbergerTechnique().Name() != "buchberger" {
		t.Fatal("name wrong")
	}
}
