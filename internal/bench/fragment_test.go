package bench

import (
	"testing"

	"repro/internal/cnf"
	"repro/internal/route"
	"repro/internal/sat"
)

// Every fragment job classifies as advertised, and on the pure fragments
// the routed verdict agrees with a full CDCL solve of the same formula —
// the differential contract the bench numbers rest on.
func TestFragmentJobsClassifyAndAgree(t *testing.T) {
	for _, job := range FragmentJobs() {
		job := job
		t.Run(job.Name, func(t *testing.T) {
			f := job.Build()
			if got, _ := route.Classify(f); got != job.Frag {
				t.Fatalf("Classify = %v, want %v", got, job.Frag)
			}
			v, _, routed := route.Decide(f)
			if job.Frag == route.Mixed {
				if routed {
					t.Fatalf("Mixed control was routed: %+v", v)
				}
				return
			}
			if !routed {
				t.Fatalf("pure fragment %v declined by the router", job.Frag)
			}
			if v.Status == sat.Sat {
				// A verified model is self-certifying; no CDCL run needed.
				if !f.Eval(func(vr cnf.Var) bool { return v.Model[vr] }) {
					t.Fatal("routed model does not satisfy the formula")
				}
			}
			// Cross-check the verdict against CDCL only on instances the
			// baseline can afford under -race (the family's bench-scale
			// jobs take minutes there; an UNSAT verdict on those is still
			// covered by the certificate checks in internal/route).
			lits := len(f.Xors)
			for _, c := range f.Clauses {
				lits += len(c)
			}
			if lits > 50000 {
				return
			}
			s := sat.New(sat.DefaultOptions(sat.ProfileCMS))
			st := sat.Unsat
			if s.AddFormula(f.Clone()) {
				st = s.Solve()
			}
			if v.Status != st {
				t.Fatalf("routed %v but CDCL says %v", v.Status, st)
			}
		})
	}
}

// Deterministic builders: two Build calls give identical formulas, so
// snapshot numbers are attributable to code changes, not instance noise.
func TestFragmentJobsDeterministic(t *testing.T) {
	for _, job := range FragmentJobs() {
		a, b := job.Build(), job.Build()
		if len(a.Clauses) != len(b.Clauses) || len(a.Xors) != len(b.Xors) {
			t.Fatalf("%s: builds differ in size", job.Name)
		}
	}
}

// The measurement path runs end to end at smoke scale and reports a real
// speedup on a pure fragment.
func TestMeasureFragmentSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runs testing.Benchmark")
	}
	jobs := []FragmentJob{
		{
			Name: "smoke-2sat",
			Frag: route.Binary,
			Build: func() *cnf.Formula {
				f := cnf.NewFormula(64)
				for i := 0; i+1 < 64; i++ {
					f.AddClause(cnf.MkLit(cnf.Var(i), true), cnf.MkLit(cnf.Var(i+1), false))
				}
				return f
			},
		},
	}
	res := MeasureFragment(jobs, sat.ProfileMiniSat, 1)
	m, ok := res["smoke-2sat"]
	if !ok {
		t.Fatal("no measurement for smoke job")
	}
	if !m.Routed {
		t.Fatal("smoke 2SAT chain was not routed")
	}
	if m.RoutedNsPerOp <= 0 || m.CDCLNsPerOp <= 0 {
		t.Fatalf("degenerate timings: %+v", m)
	}
}
