package core

import (
	"math/rand"
	"testing"

	"repro/internal/anf"
)

// TestTableI reproduces the paper's Table I: XL with D=1 on the system
// {x1x2 ⊕ x1 ⊕ 1, x2x3 ⊕ x3} retains exactly the facts {x1⊕1, x2, x3}.
func TestTableI(t *testing.T) {
	sys := sysFrom(t, "x1*x2 + x1 + 1\nx2*x3 + x3\n")
	rng := rand.New(rand.NewSource(1))
	facts := RunXL(sys, XLConfig{M: 20, DeltaM: 4, Deg: 1, Rand: rng})
	want := map[string]bool{"x1 + 1": false, "x2": false, "x3": false}
	for _, f := range facts {
		s := f.String()
		if _, ok := want[s]; !ok {
			t.Fatalf("unexpected XL fact %q (all: %v)", s, facts)
		}
		want[s] = true
	}
	for s, seen := range want {
		if !seen {
			t.Fatalf("expected fact %q not learnt; got %v", s, facts)
		}
	}
}

// TestXLPaperExample checks §II-E: XL with D=1 learns the six listed facts
// on the worked example.
func TestXLPaperExample(t *testing.T) {
	sys := sysFrom(t, `
x1*x2 + x3 + x4 + 1
x1*x2*x3 + x1 + x3 + 1
x1*x3 + x3*x4*x5 + x3
x2*x3 + x3*x5 + 1
x2*x3 + x5 + 1
`)
	rng := rand.New(rand.NewSource(1))
	facts := RunXL(sys, XLConfig{M: 20, DeltaM: 4, Deg: 1, Rand: rng})
	// The paper lists: x2x3x4⊕1, x1x3x4⊕1, x1⊕x5⊕1, x1⊕x4, x3⊕1, x1⊕x2.
	// Our RREF basis may present an equivalent set; require that all the
	// paper's facts are consequences: every paper fact, added to the learnt
	// set, is already implied — checked by solving: both fact sets must
	// pin the unique solution after propagation.
	p := NewPropagator(sys.Clone())
	p.Propagate()
	if _, ok := p.AddFacts(facts); !ok {
		t.Fatal("XL facts contradicted the system")
	}
	want := []struct {
		v anf.Var
		b bool
	}{{1, true}, {2, true}, {3, true}, {4, true}, {5, false}}
	for _, w := range want {
		if b, ok := p.State.Value(w.v); !ok || b != w.b {
			t.Fatalf("after XL facts, x%d = %v,%v; want %v (facts: %v)", w.v, b, ok, w.b, facts)
		}
	}
}

// All XL facts must be logical consequences of the system: every solution
// of the system satisfies every fact.
func TestXLFactsSound(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 40; trial++ {
		nVars := 3 + rng.Intn(5)
		sys := anf.NewSystem()
		sys.SetNumVars(nVars)
		for i := 0; i < 2+rng.Intn(2*nVars); i++ {
			var monos []anf.Monomial
			for j := 0; j <= rng.Intn(3); j++ {
				var vs []anf.Var
				for d := 0; d < rng.Intn(3); d++ {
					vs = append(vs, anf.Var(rng.Intn(nVars)))
				}
				monos = append(monos, anf.NewMonomial(vs...))
			}
			sys.Add(anf.FromMonomials(monos...))
		}
		facts := RunXL(sys, XLConfig{M: 16, DeltaM: 4, Deg: 1, Rand: rng})
		for mask := uint32(0); mask < 1<<uint(nVars); mask++ {
			assign := func(v anf.Var) bool { return mask>>uint(v)&1 == 1 }
			if !sys.Eval(assign) {
				continue
			}
			for _, f := range facts {
				if f.Eval(assign) {
					t.Fatalf("trial %d: XL fact %s violated by solution %b", trial, f, mask)
				}
			}
		}
	}
}

func TestXLDegreeTwo(t *testing.T) {
	// With D=2 the multipliers include quadratic monomials; facts must
	// still be sound.
	sys := sysFrom(t, "x0*x1 + x2\nx1*x2 + x0 + 1\nx0 + x1 + x2\n")
	rng := rand.New(rand.NewSource(3))
	facts := RunXL(sys, XLConfig{M: 16, DeltaM: 4, Deg: 2, Rand: rng})
	for mask := uint32(0); mask < 8; mask++ {
		assign := func(v anf.Var) bool { return mask>>uint(v)&1 == 1 }
		if !sys.Eval(assign) {
			continue
		}
		for _, f := range facts {
			if f.Eval(assign) {
				t.Fatalf("D=2 fact %s violated by solution %b", f, mask)
			}
		}
	}
}

func TestXLEmptySystem(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if facts := RunXL(anf.NewSystem(), DefaultXLConfig(rng)); facts != nil {
		t.Fatalf("empty system gave facts %v", facts)
	}
}

// TestElimLinPaperExample follows §II-C: on {x1⊕x2⊕x3, x1x2⊕x2x3⊕1},
// ElimLin derives x2 ⊕ 1 after substituting the linear equation.
func TestElimLinPaperExample(t *testing.T) {
	sys := sysFrom(t, "x1 + x2 + x3\nx1*x2 + x2*x3 + 1\n")
	rng := rand.New(rand.NewSource(1))
	facts := RunElimLin(sys, ElimLinConfig{M: 20, Rand: rng})
	// ElimLin must learn the initial linear equation and a consequence
	// forcing x2 = 1; check soundness and completeness via enumeration:
	// solutions of the system are (x1,x2,x3) with x1⊕x2⊕x3=0 and
	// x1x2⊕x2x3=1 → x2(x1⊕x3)=1 → x2=1, x1⊕x3=1.
	if len(facts) < 2 {
		t.Fatalf("too few ElimLin facts: %v", facts)
	}
	sawX2 := false
	for _, f := range facts {
		if f.Equal(anf.MustParsePoly("x2 + 1")) {
			sawX2 = true
		}
	}
	if !sawX2 {
		t.Fatalf("ElimLin did not learn x2 ⊕ 1; facts: %v", facts)
	}
	for mask := uint32(0); mask < 16; mask++ {
		assign := func(v anf.Var) bool { return mask>>uint(v)&1 == 1 }
		if !sys.Eval(assign) {
			continue
		}
		for _, f := range facts {
			if f.Eval(assign) {
				t.Fatalf("ElimLin fact %s violated by solution %b", f, mask)
			}
		}
	}
}

// TestElimLinWorkedExample checks §II-E: the workflow is sequential, so
// ElimLin runs after XL's facts have been added to the system; its initial
// GJE then sees the four linear equations the paper lists, substitutes
// them, and learns x1 ⊕ 1.
func TestElimLinWorkedExample(t *testing.T) {
	sys := sysFrom(t, `
x1*x2 + x3 + x4 + 1
x1*x2*x3 + x1 + x3 + 1
x1*x3 + x3*x4*x5 + x3
x2*x3 + x3*x5 + 1
x2*x3 + x5 + 1
x1 + x5 + 1
x1 + x4
x3 + 1
x1 + x2
`)
	rng := rand.New(rand.NewSource(1))
	facts := RunElimLin(sys, ElimLinConfig{M: 20, Rand: rng})
	// The learnt set is an RREF-normalized basis (e.g. x5 rather than
	// x1 ⊕ 1); what matters is that it forces the paper's assignment.
	p := NewPropagator(sys.Clone())
	p.Propagate()
	if _, ok := p.AddFacts(facts); !ok {
		t.Fatal("ElimLin facts contradicted the system")
	}
	if b, ok := p.State.Value(1); !ok || !b {
		t.Fatalf("ElimLin facts should force x1 = 1; facts: %v", facts)
	}
}

func TestElimLinSoundRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 40; trial++ {
		nVars := 3 + rng.Intn(5)
		sys := anf.NewSystem()
		sys.SetNumVars(nVars)
		for i := 0; i < 2+rng.Intn(2*nVars); i++ {
			var monos []anf.Monomial
			for j := 0; j <= rng.Intn(3); j++ {
				var vs []anf.Var
				for d := 0; d < rng.Intn(3); d++ {
					vs = append(vs, anf.Var(rng.Intn(nVars)))
				}
				monos = append(monos, anf.NewMonomial(vs...))
			}
			sys.Add(anf.FromMonomials(monos...))
		}
		facts := RunElimLin(sys, ElimLinConfig{M: 16, Rand: rng})
		for mask := uint32(0); mask < 1<<uint(nVars); mask++ {
			assign := func(v anf.Var) bool { return mask>>uint(v)&1 == 1 }
			if !sys.Eval(assign) {
				continue
			}
			for _, f := range facts {
				if f.Eval(assign) {
					t.Fatalf("trial %d: ElimLin fact %s violated by solution %b", trial, f, mask)
				}
			}
		}
	}
}
