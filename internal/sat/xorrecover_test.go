package sat

import (
	"math/rand"
	"testing"

	"repro/internal/cnf"
)

// clausalXor appends the 2^(k-1) clause encoding of an XOR to f.
func clausalXor(f *cnf.Formula, rhs bool, vars ...cnf.Var) {
	n := len(vars)
	for mask := 0; mask < 1<<uint(n); mask++ {
		parity := false
		for i := 0; i < n; i++ {
			if mask>>uint(i)&1 == 1 {
				parity = !parity
			}
		}
		if parity == rhs {
			continue
		}
		lits := make([]cnf.Lit, n)
		for i := 0; i < n; i++ {
			lits[i] = cnf.MkLit(vars[i], mask>>uint(i)&1 == 1)
		}
		f.AddClause(lits...)
	}
}

func TestRecoverXorsBasic(t *testing.T) {
	f := cnf.NewFormula(4)
	clausalXor(f, true, 0, 1, 2)
	clausalXor(f, false, 1, 3)
	f.AddClause(cnf.MkLit(0, false), cnf.MkLit(3, false)) // ordinary clause
	out := RecoverXors(f, 6)
	if len(out.Xors) != 2 {
		t.Fatalf("recovered %d xors, want 2", len(out.Xors))
	}
	if len(out.Clauses) != 1 {
		t.Fatalf("kept %d clauses, want 1", len(out.Clauses))
	}
	for _, x := range out.Xors {
		switch len(x.Vars) {
		case 3:
			if !x.RHS {
				t.Fatal("ternary xor rhs wrong")
			}
		case 2:
			if x.RHS {
				t.Fatal("binary xor rhs wrong")
			}
		default:
			t.Fatalf("unexpected xor arity %d", len(x.Vars))
		}
	}
}

func TestRecoverXorsPartialGroupKept(t *testing.T) {
	f := cnf.NewFormula(3)
	clausalXor(f, true, 0, 1, 2)
	// Remove one clause: the group is incomplete, nothing to recover.
	f.Clauses = f.Clauses[:len(f.Clauses)-1]
	out := RecoverXors(f, 6)
	if len(out.Xors) != 0 {
		t.Fatal("partial group wrongly recovered")
	}
	if len(out.Clauses) != 3 {
		t.Fatalf("clauses = %d", len(out.Clauses))
	}
}

// Recovery must preserve semantics exactly, on every assignment.
func TestRecoverXorsSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 60; trial++ {
		nVars := 5 + rng.Intn(4) // ≥ 5 so k ≤ 4 always has enough distinct vars
		f := cnf.NewFormula(nVars)
		for i := 0; i < 1+rng.Intn(3); i++ {
			k := 2 + rng.Intn(3)
			seen := map[int]bool{}
			var vs []cnf.Var
			for len(vs) < k {
				v := rng.Intn(nVars)
				if !seen[v] {
					seen[v] = true
					vs = append(vs, cnf.Var(v))
				}
			}
			clausalXor(f, rng.Intn(2) == 1, vs...)
		}
		for i := 0; i < rng.Intn(5); i++ {
			f.AddClause(cnf.MkLit(cnf.Var(rng.Intn(nVars)), rng.Intn(2) == 1),
				cnf.MkLit(cnf.Var(rng.Intn(nVars)), rng.Intn(2) == 1))
		}
		out := RecoverXors(f, 6)
		for mask := 0; mask < 1<<uint(nVars); mask++ {
			assign := func(v cnf.Var) bool { return mask>>uint(v)&1 == 1 }
			if f.Eval(assign) != out.Eval(assign) {
				t.Fatalf("trial %d: semantics changed at %b", trial, mask)
			}
		}
		if len(out.Xors) == 0 {
			t.Fatalf("trial %d: no xors recovered", trial)
		}
	}
}

func TestRecoverXorsSpeedsUpCMS(t *testing.T) {
	// An UNSAT parity system: recovery + GJE detects it without search.
	rng := rand.New(rand.NewSource(77))
	nVars := 20
	f := cnf.NewFormula(nVars)
	// Planted inconsistent chain: x0⊕x1=0, x1⊕x2=0, ..., x19⊕x0=1.
	for i := 0; i < nVars; i++ {
		rhs := i == nVars-1
		clausalXor(f, rhs, cnf.Var(i), cnf.Var((i+1)%nVars))
	}
	_ = rng
	rec := RecoverXors(f, 6)
	if len(rec.Xors) != nVars {
		t.Fatalf("recovered %d xors, want %d", len(rec.Xors), nVars)
	}
	// The zero-conflict refutation is a Gauss-elimination property, so pin
	// the PR-10 native-parity router off for this arm.
	opts := DefaultOptions(ProfileCMS)
	opts.NativeXor = false
	s := New(opts)
	s.AddFormula(rec)
	if s.Solve() != Unsat {
		t.Fatal("inconsistent chain not refuted")
	}
	if s.Conflicts != 0 {
		t.Fatalf("GJE should refute without conflicts, used %d", s.Conflicts)
	}
	// The native path (default options) must agree on the verdict.
	sn := New(DefaultOptions(ProfileCMS))
	sn.AddFormula(rec)
	if sn.Solve() != Unsat {
		t.Fatal("native parity: inconsistent chain not refuted")
	}
}
