package gf2

import (
	"math/bits"
	"sync"
)

// RREF reduces the matrix in place to reduced row echelon form using plain
// Gauss–Jordan elimination with partial (first-nonzero) pivoting, and
// returns the rank. After the call, pivot rows are sorted by leading column
// and every pivot column has exactly one set bit.
func (m *Matrix) RREF() int {
	rank := 0
	for col := 0; col < m.cols && rank < m.rows; col++ {
		// Find a pivot row at or below rank with a 1 in this column.
		pivot := -1
		for r := rank; r < m.rows; r++ {
			if m.Get(r, col) {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			continue
		}
		m.SwapRows(rank, pivot)
		// Eliminate the column from every other row.
		prow := m.Row(rank)
		for r := 0; r < m.rows; r++ {
			if r == rank || !m.Get(r, col) {
				continue
			}
			row := m.Row(r)
			for w := range row {
				row[w] ^= prow[w]
			}
		}
		rank++
	}
	return rank
}

// RREFTracked reduces the matrix in place to reduced row echelon form
// with the same plain Gauss–Jordan loop as RREF, and additionally returns
// an ops matrix recording the row operations: after the call,
//
//	new_row[r] = XOR over { original_row[j] : ops.Get(r, j) }.
//
// RREF of a matrix is unique, so the reduced rows (and their order — pivot
// rows sorted by leading column, zero rows last) are bit-identical to what
// RREFM4RWorkers produces for the same input; only the run time differs.
// The provenance-tracking elimination paths use this to attribute every
// reduced row to an exact GF(2) combination of input rows.
func (m *Matrix) RREFTracked() (int, *Matrix) {
	ops := Identity(m.rows)
	rank := 0
	for col := 0; col < m.cols && rank < m.rows; col++ {
		pivot := -1
		for r := rank; r < m.rows; r++ {
			if m.Get(r, col) {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			continue
		}
		m.SwapRows(rank, pivot)
		ops.SwapRows(rank, pivot)
		prow := m.Row(rank)
		orow := ops.Row(rank)
		for r := 0; r < m.rows; r++ {
			if r == rank || !m.Get(r, col) {
				continue
			}
			row := m.Row(r)
			for w := range row {
				row[w] ^= prow[w]
			}
			xrow := ops.Row(r)
			for w := range xrow {
				xrow[w] ^= orow[w]
			}
		}
		rank++
	}
	return rank, ops
}

// Rank returns the rank of the matrix without modifying it.
func (m *Matrix) Rank() int {
	return m.Clone().RREF()
}

// m4rK picks the table width for M4R elimination: roughly log2 of the
// matrix size, clamped to [1, 8] so tables stay small.
func m4rK(rows, cols int) int {
	n := rows
	if cols < n {
		n = cols
	}
	k := bits.Len(uint(n)) - 2
	if k < 1 {
		k = 1
	}
	if k > 8 {
		k = 8
	}
	return k
}

// RREFM4R reduces the matrix in place to reduced row echelon form using the
// Method of the Four Russians and returns the rank. It is the sequential
// form of RREFM4RWorkers.
func (m *Matrix) RREFM4R() int { return m.RREFM4RWorkers(1) }

// minWorkerWords is the minimum number of matrix words a round must touch
// per worker before the kernel fans the table-application loop out to
// goroutines; below it the per-round synchronization outweighs the XOR
// work.
const minWorkerWords = 8192

// RREFM4RWorkers reduces the matrix in place to reduced row echelon form
// using the Method of the Four Russians and returns the rank. It processes
// up to k pivot columns per round: the k pivot rows are first fully reduced
// against each other, then a 2^k-entry table of all their GF(2)
// combinations is built, and every other row is cleared in one table
// lookup plus one word-parallel XOR. This is the elimination algorithm that
// gives M4RI its name and its asymptotic O(n^3 / log n) behaviour.
//
// The combination table lives in a pooled workspace, so steady-state rounds
// allocate nothing. With workers > 1 the table-application loop — the bulk
// of the work, and independent per row once the pivot block and table are
// fixed — is split over row blocks across that many goroutines. Each row's
// final value is a fixed XOR of table entries regardless of scheduling, so
// the result is bit-identical for every worker count.
func (m *Matrix) RREFM4RWorkers(workers int) int {
	k := m4rK(m.rows, m.cols)
	ws := getM4RWorkspace(m.stride, k)
	defer putM4RWorkspace(ws)
	// Cap the fan-out by the per-round work so small matrices stay on the
	// fast sequential path.
	if limit := m.rows * m.stride / minWorkerWords; workers > limit {
		workers = limit
	}

	rank := 0
	col := 0
	for col < m.cols && rank < m.rows {
		// Gather up to k pivots starting from this column. Chosen pivot
		// rows are swapped up to the contiguous block [rank, rank+np).
		np := 0 // pivots gathered this round
		c := col
		for c < m.cols && np < k {
			// Scan candidate rows below the block, reducing each against
			// the block pivots before testing its bit at column c. Rows
			// that are reduced but not chosen stay partially reduced; that
			// is only a row operation, so correctness is unaffected and the
			// table step below finishes them.
			found := -1
			for r := rank + np; r < m.rows; r++ {
				for i := 0; i < np; i++ {
					if m.data[r*m.stride+ws.pcWord[i]]>>ws.pcBit[i]&1 == 1 {
						m.AddRowTo(rank+i, r)
					}
				}
				if m.Get(r, c) {
					found = r
					break
				}
			}
			if found >= 0 {
				newRow := rank + np
				m.SwapRows(newRow, found)
				// Clear column c from the earlier pivot rows so the block
				// stays in reduced form.
				for i := 0; i < np; i++ {
					if m.Get(rank+i, c) {
						m.AddRowTo(newRow, rank+i)
					}
				}
				ws.pcWord[np] = c / wordBits
				ws.pcBit[np] = uint(c) % wordBits
				np++
			}
			c++
		}
		if np == 0 {
			break
		}
		// Build the combination table in the workspace: table[mask] = XOR
		// of pivot rows whose bit is set in mask. Built incrementally
		// (Gray-code style) so each entry costs one row XOR.
		nComb := 1 << uint(np)
		zero := ws.tableRow(0, m.stride)
		for w := range zero {
			zero[w] = 0
		}
		for mask := 1; mask < nComb; mask++ {
			low := bits.TrailingZeros(uint(mask))
			prev := ws.tableRow(mask&(mask-1), m.stride)
			row := ws.tableRow(mask, m.stride)
			pr := m.Row(rank + low)
			for w := range row {
				row[w] = prev[w] ^ pr[w]
			}
		}
		// Reduce every non-pivot row: read its bits at the pivot columns to
		// form the table index, then XOR the combination in.
		if workers > 1 {
			m.applyTableParallel(ws, rank, np, workers)
		} else {
			m.applyTable(ws, rank, np, 0, m.rows)
		}
		rank += np
		col = c
	}
	// The pivot gathering above can leave rows unsorted by leading column
	// when a round spans a zero column; finish with a compaction pass that
	// restores canonical RREF row order.
	m.sortRowsByLeading()
	return rank
}

// applyTable clears the pivot columns from every non-pivot row in
// [lo, hi): the row's bits at the np pivot columns index the combination
// table, whose entry is XORed in. Rows in the pivot block
// [rank, rank+np) are skipped.
func (m *Matrix) applyTable(ws *m4rWorkspace, rank, np, lo, hi int) {
	for r := lo; r < hi; r++ {
		if r >= rank && r < rank+np {
			continue
		}
		base := r * m.stride
		mask := 0
		for i := 0; i < np; i++ {
			mask |= int(m.data[base+ws.pcWord[i]]>>ws.pcBit[i]&1) << uint(i)
		}
		if mask == 0 {
			continue
		}
		xorWords(m.data[base:base+m.stride], ws.tableRow(mask, m.stride))
	}
}

// applyTableParallel splits applyTable's row range over `workers`
// goroutines in contiguous blocks. Every row's update depends only on the
// fixed pivot block and table, so the partitioning does not affect the
// result.
func (m *Matrix) applyTableParallel(ws *m4rWorkspace, rank, np, workers int) {
	chunk := (m.rows + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := chunk; lo < m.rows; lo += chunk {
		hi := lo + chunk
		if hi > m.rows {
			hi = m.rows
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			m.applyTable(ws, rank, np, lo, hi)
		}(lo, hi)
	}
	// The first chunk runs on the calling goroutine.
	m.applyTable(ws, rank, np, 0, chunk)
	wg.Wait()
}

// sortRowsByLeading reorders rows so leading columns are strictly
// increasing, with zero rows last. Rows in RREF are unique per leading
// column, so a counting placement suffices.
func (m *Matrix) sortRowsByLeading() {
	type rowLead struct{ row, lead int }
	leads := make([]rowLead, m.rows)
	for r := 0; r < m.rows; r++ {
		l := m.LeadingCol(r)
		if l < 0 {
			l = m.cols
		}
		leads[r] = rowLead{r, l}
	}
	// Insertion sort on the lead column; matrices here are small enough and
	// usually nearly sorted already.
	for i := 1; i < len(leads); i++ {
		for j := i; j > 0 && leads[j].lead < leads[j-1].lead; j-- {
			leads[j], leads[j-1] = leads[j-1], leads[j]
			m.SwapRows(leads[j].row, leads[j-1].row)
			leads[j].row, leads[j-1].row = leads[j-1].row, leads[j].row
		}
	}
}

// NullSpace returns a basis of the right null space of m: every returned
// vector v (length Cols) satisfies m·v = 0. The basis vectors are packed
// bit vectors in the same layout as matrix rows.
func (m *Matrix) NullSpace() []*Matrix {
	r := m.Clone()
	r.RREF()
	// Identify pivot columns.
	pivotCol := make([]int, 0, m.rows)
	isPivot := make([]bool, m.cols)
	for row := 0; row < r.rows; row++ {
		c := r.LeadingCol(row)
		if c < 0 {
			break
		}
		pivotCol = append(pivotCol, c)
		isPivot[c] = true
	}
	var basis []*Matrix
	for free := 0; free < m.cols; free++ {
		if isPivot[free] {
			continue
		}
		v := NewMatrix(1, m.cols)
		v.Set(0, free, true)
		for row, pc := range pivotCol {
			if r.Get(row, free) {
				v.Set(0, pc, true)
			}
		}
		basis = append(basis, v)
	}
	return basis
}

// Solve finds one solution x to m·x = b, where b is a column vector given
// as a packed bit slice of length Rows. It returns (x, true) on success and
// (nil, false) if the system is inconsistent. Free variables are set to 0.
func (m *Matrix) Solve(b []bool) ([]bool, bool) {
	if len(b) != m.rows {
		panic("gf2: Solve rhs length mismatch")
	}
	// Build the augmented matrix [m | b]. Row() exposes the packed words,
	// so a caller can have smeared bits past column cols into the source
	// row's final partial word; mask the trailing word after the copy so
	// stale bits cannot land in (or beyond) the augmented column.
	aug := NewMatrix(m.rows, m.cols+1)
	mask := lastWordMask(m.cols)
	for r := 0; r < m.rows; r++ {
		dst := aug.Row(r)
		copy(dst, m.Row(r))
		if m.stride > 0 {
			dst[m.stride-1] &= mask
		}
		aug.Set(r, m.cols, b[r])
	}
	aug.RREF()
	x := make([]bool, m.cols)
	for r := 0; r < aug.rows; r++ {
		lead := aug.LeadingCol(r)
		if lead < 0 {
			break
		}
		if lead == m.cols {
			return nil, false // row 0...0 | 1: inconsistent
		}
		x[lead] = aug.Get(r, m.cols)
	}
	return x, true
}
