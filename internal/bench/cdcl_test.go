package bench

import (
	"testing"

	"repro/internal/sat"
	"repro/internal/satgen"
)

// Every CDCL benchmark job must solve to its known verdict under every
// profile — a wrong verdict would make the timing meaningless — and the
// counters must be identical across repeated runs (the determinism the
// before/after perf methodology rests on).
func TestCDCLJobsVerdictsAndDeterminism(t *testing.T) {
	jobs := append(CDCLPropagationJobs(), CDCLConflictJobs()...)
	for _, job := range jobs {
		job := job
		t.Run(job.Name, func(t *testing.T) {
			for _, prof := range []sat.Profile{sat.ProfileMiniSat, sat.ProfileCMS} {
				st1, stats1 := RunCDCLJob(job, prof)
				if job.Want == satgen.StatusSat && st1 != sat.Sat {
					t.Fatalf("%v: verdict %v, want SAT", prof, st1)
				}
				if job.Want == satgen.StatusUnsat && st1 != sat.Unsat {
					t.Fatalf("%v: verdict %v, want UNSAT", prof, st1)
				}
				st2, stats2 := RunCDCLJob(job, prof)
				if st1 != st2 || stats1 != stats2 {
					t.Fatalf("%v: nondeterministic run: %v/%+v vs %v/%+v",
						prof, st1, stats1, st2, stats2)
				}
			}
		})
	}
}

// The propagation family must actually be propagation-dominated and the
// conflict family conflict-dominated — otherwise a future regression in
// one path could hide behind the other family's numbers.
func TestCDCLFamiliesExerciseTheirPath(t *testing.T) {
	for _, job := range CDCLPropagationJobs() {
		_, stats := RunCDCLJob(job, sat.ProfileMiniSat)
		if stats.Propagations == 0 {
			t.Fatalf("%s: no propagations", job.Name)
		}
		if stats.Conflicts > stats.Propagations/10 {
			t.Fatalf("%s: conflict-bound (%d conflicts vs %d propagations); not a propagation benchmark",
				job.Name, stats.Conflicts, stats.Propagations)
		}
	}
	sawReduce := false
	for _, job := range CDCLConflictJobs() {
		_, stats := RunCDCLJob(job, sat.ProfileMiniSat)
		if stats.Conflicts < 100 {
			t.Fatalf("%s: only %d conflicts; not a conflict-analysis benchmark",
				job.Name, stats.Conflicts)
		}
		if stats.ReducedDBs > 0 {
			sawReduce = true
		}
	}
	if !sawReduce {
		t.Fatal("no conflict job triggered reduceDB; the family no longer exercises clause-DB churn")
	}
}
