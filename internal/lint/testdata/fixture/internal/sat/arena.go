// Package sat is a lint fixture for the arenaref analyzer: ClauseRef
// offset arithmetic, ref<->integer conversions, and access to the
// clauseArena backing store are legal only in a file named arena.go
// (or its unit test arena_test.go). This file is that file, so every
// raw manipulation below is clean.
package sat

// ClauseRef is a word offset into the arena's backing store.
type ClauseRef uint32

// NullRef is the absent-clause sentinel.
const NullRef = ClauseRef(^uint32(0))

type clauseArena struct {
	data   []uint32
	wasted int
}

func (a *clauseArena) header(r ClauseRef) uint32 { return a.data[r] }

func (a *clauseArena) size(r ClauseRef) int { return int(a.header(r) >> 4) }

// next walks to the following clause: offset arithmetic, fine here.
func (a *clauseArena) next(r ClauseRef) ClauseRef {
	return r + ClauseRef(a.size(r)) + 1
}

// alloc appends a clause and returns its ref; the append may move the
// backing array, so every previously taken lits view dies here.
func (a *clauseArena) alloc(lits []uint32) ClauseRef {
	r := ClauseRef(len(a.data))
	a.data = append(a.data, uint32(len(lits))<<4)
	a.data = append(a.data, lits...)
	return r
}

// lits returns a view into the backing store.
func (a *clauseArena) lits(r ClauseRef) []uint32 {
	n := a.size(r)
	return a.data[int(r)+1 : int(r)+1+n]
}

// garbageCollect compacts the arena: every ref and view held outside the
// remapped roots is invalid afterwards.
func (a *clauseArena) garbageCollect() {
	a.data = append([]uint32(nil), a.data...)
	a.wasted = 0
}

// maybeGC runs a compaction when enough space is wasted.
func (a *clauseArena) maybeGC() {
	if a.wasted > len(a.data)/4 {
		a.garbageCollect()
	}
}
