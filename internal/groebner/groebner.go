// Package groebner implements a Buchberger-style Gröbner-basis engine for
// Boolean polynomial rings (F2[x1..xn] modulo the field equations
// x² = x). The paper's §V discussion names Buchberger's algorithm as a
// pluggable technique, and §IV notes that the off-the-shelf Gröbner
// solver M4GB ran out of resources on every benchmark instance — this
// package both provides the pluggable baseline and reproduces that
// blow-up observation under an explicit work budget.
//
// In the Boolean quotient ring, monomials are squarefree and
// multiplication absorbs (x·x = x). The Buchberger criterion is adapted
// accordingly: a basis G is complete when every S-polynomial of a pair in
// G *and* every product v·g (variable times basis element) reduces to
// zero — the product pairs stand in for the S-polynomials against the
// field equations.
package groebner

import (
	"fmt"

	"repro/internal/anf"
)

// Options bounds the computation.
type Options struct {
	// MaxBasis aborts when the working basis exceeds this many polynomials.
	MaxBasis int
	// MaxTerms aborts when the total term count (the memory proxy) exceeds
	// this.
	MaxTerms int
	// MaxReductions aborts after this many reduction steps.
	MaxReductions int
}

// DefaultOptions allows small systems through and fails fast on big ones,
// mirroring the paper's M4GB observation.
func DefaultOptions() Options {
	return Options{MaxBasis: 4096, MaxTerms: 1 << 20, MaxReductions: 1 << 22}
}

// Result of a basis computation.
type Result struct {
	// Basis is the reduced Gröbner basis when Complete.
	Basis []anf.Poly
	// Complete is false when a budget was exhausted.
	Complete bool
	// Contradiction is true when 1 ∈ ideal (the system is UNSAT).
	Contradiction bool
	// Reductions counts reduction steps performed.
	Reductions int
	// PeakTerms is the largest total term count observed (memory proxy).
	PeakTerms int
}

func (r *Result) String() string {
	switch {
	case r.Contradiction:
		return "groebner: UNSAT (1 in ideal)"
	case !r.Complete:
		return fmt.Sprintf("groebner: budget exhausted (basis %d, peak terms %d)", len(r.Basis), r.PeakTerms)
	default:
		return fmt.Sprintf("groebner: basis of %d polynomials", len(r.Basis))
	}
}

type engine struct {
	opts  Options
	basis []anf.Poly
	pairs [][2]int // S-poly pairs by basis index
	prods []int    // basis indices with pending variable-product checks
	res   *Result
}

// Basis computes (or attempts, within budget) the reduced Gröbner basis
// of the system's polynomials in the Boolean quotient ring.
func Basis(sys *anf.System, opts Options) *Result {
	e := &engine{opts: opts, res: &Result{}}
	for _, p := range sys.Polys() {
		e.addPoly(p)
		if e.res.Contradiction {
			return e.res
		}
	}
	for (len(e.pairs) > 0 || len(e.prods) > 0) && e.withinBudget() {
		var cand anf.Poly
		if len(e.pairs) > 0 {
			pair := e.pairs[len(e.pairs)-1]
			e.pairs = e.pairs[:len(e.pairs)-1]
			f, g := e.basis[pair[0]], e.basis[pair[1]]
			if f.IsZero() || g.IsZero() {
				continue
			}
			cand = spoly(f, g)
		} else {
			i := e.prods[len(e.prods)-1]
			e.prods = e.prods[:len(e.prods)-1]
			f := e.basis[i]
			if f.IsZero() {
				continue
			}
			// Check products v·f for every variable of f not already in
			// its leading term; queue the first non-reducing one.
			lead := f.Lead()
			var nonzero anf.Poly
			for _, v := range f.Vars() {
				if lead.Contains(v) {
					continue
				}
				q := e.reduce(f.MulMonomial(anf.NewMonomial(v)))
				if !q.IsZero() {
					nonzero = q
					break
				}
				if !e.withinBudget() {
					break
				}
			}
			if nonzero.IsZero() {
				continue
			}
			cand = nonzero
		}
		red := e.reduce(cand)
		if red.IsZero() {
			continue
		}
		e.addPoly(red)
		if e.res.Contradiction {
			return e.res
		}
	}
	e.res.Complete = len(e.pairs) == 0 && len(e.prods) == 0 && !e.res.Contradiction
	if e.res.Complete {
		e.interreduce()
	}
	for _, p := range e.basis {
		if !p.IsZero() {
			e.res.Basis = append(e.res.Basis, p)
		}
	}
	return e.res
}

func (e *engine) withinBudget() bool {
	terms := e.totalTerms()
	return len(e.basis) <= e.opts.MaxBasis &&
		e.res.Reductions <= e.opts.MaxReductions &&
		terms <= e.opts.MaxTerms
}

func (e *engine) totalTerms() int {
	n := 0
	for _, p := range e.basis {
		n += p.NumTerms()
	}
	if n > e.res.PeakTerms {
		e.res.PeakTerms = n
	}
	return n
}

// addPoly reduces p by the basis and installs it, queueing new pairs.
func (e *engine) addPoly(p anf.Poly) {
	p = e.reduce(p)
	if p.IsZero() {
		return
	}
	if p.IsOne() {
		e.res.Contradiction = true
		e.basis = []anf.Poly{anf.OnePoly()}
		return
	}
	idx := len(e.basis)
	for i, g := range e.basis {
		if g.IsZero() {
			continue
		}
		e.pairs = append(e.pairs, [2]int{i, idx})
	}
	e.basis = append(e.basis, p)
	e.prods = append(e.prods, idx)
}

// reduce computes the normal form of p modulo the basis.
func (e *engine) reduce(p anf.Poly) anf.Poly {
	for !p.IsZero() {
		if e.res.Reductions > e.opts.MaxReductions {
			return p
		}
		reduced := false
		lead := p.Lead()
		for _, g := range e.basis {
			if g.IsZero() {
				continue
			}
			gl := g.Lead()
			if !gl.Divides(lead) {
				continue
			}
			// p -= (lead/gl)·g  (over GF(2): addition).
			quot := lead
			for _, v := range gl.Vars() {
				quot = quot.Without(v)
			}
			p = p.Add(g.MulMonomial(quot))
			e.res.Reductions++
			reduced = true
			break
		}
		if !reduced {
			// Leading term irreducible; move on by reducing the tail.
			tail := anf.FromMonomials(p.Terms()[1:]...)
			redTail := e.reduce(tail)
			return anf.FromMonomials(p.Terms()[0]).Add(redTail)
		}
	}
	return p
}

// interreduce brings the completed basis to reduced form.
func (e *engine) interreduce() {
	for i := range e.basis {
		if e.basis[i].IsZero() {
			continue
		}
		p := e.basis[i]
		e.basis[i] = anf.Zero() // exclude from its own reduction
		q := e.reduce(p)
		e.basis[i] = q
	}
}

// spoly forms the S-polynomial of f and g in the Boolean quotient ring:
// lcm of the (squarefree) leading terms, cross-multiplied.
func spoly(f, g anf.Poly) anf.Poly {
	lf, lg := f.Lead(), g.Lead()
	lcm := lf.Mul(lg)
	qf, qg := lcm, lcm
	for _, v := range lf.Vars() {
		qf = qf.Without(v)
	}
	for _, v := range lg.Vars() {
		qg = qg.Without(v)
	}
	return f.MulMonomial(qf).Add(g.MulMonomial(qg))
}

// IsUnsat is a convenience wrapper: attempts the basis and reports (unsat,
// decided) — decided is false when the budget ran out first.
func IsUnsat(sys *anf.System, opts Options) (bool, bool) {
	res := Basis(sys, opts)
	if res.Contradiction {
		return true, true
	}
	if !res.Complete {
		return false, false
	}
	return false, true
}
