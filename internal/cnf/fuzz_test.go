package cnf

import (
	"strings"
	"testing"
)

// FuzzReadDimacs checks that the DIMACS reader never panics and that
// accepted inputs survive a write/read round trip with stable semantics
// on a fixed assignment.
func FuzzReadDimacs(f *testing.F) {
	for _, seed := range []string{
		"p cnf 2 1\n1 -2 0\n",
		"c comment\np cnf 3 2\n1 2 3 0\n-1 0\n",
		"1 2 0",
		"x1 2 -3 0\n",
		"p cnf 0 0\n",
		"1\n2\n0\n",
		"p cnf a b\n",
		"zz\n",
		"x1 2\n3 0\n",
		"-0 0\n",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		frm, err := ReadDimacs(strings.NewReader(s))
		if err != nil {
			return
		}
		if frm.NumVars > 1<<16 {
			return // avoid giant assignments in the check below
		}
		var sb strings.Builder
		if err := WriteDimacs(&sb, frm); err != nil {
			t.Fatalf("write failed: %v", err)
		}
		back, err := ReadDimacs(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("round trip does not parse: %v", err)
		}
		assign := func(v Var) bool { return v%3 == 0 }
		if frm.Eval(assign) != back.Eval(assign) {
			t.Fatal("round trip changed semantics")
		}
	})
}
