package anf

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewMonomialCanonical(t *testing.T) {
	m := NewMonomial(3, 1, 2, 1, 3)
	if got := m.String(); got != "x1*x2*x3" {
		t.Fatalf("canonical form = %q", got)
	}
	if m.Deg() != 3 {
		t.Fatalf("deg = %d, want 3", m.Deg())
	}
}

func TestOneMonomial(t *testing.T) {
	if !One.IsOne() || One.Deg() != 0 || One.String() != "1" {
		t.Fatal("One is broken")
	}
	if !NewMonomial().IsOne() {
		t.Fatal("empty NewMonomial should be 1")
	}
}

func TestMonomialMul(t *testing.T) {
	a := NewMonomial(1, 3)
	b := NewMonomial(2, 3, 5)
	p := a.Mul(b)
	if got := p.String(); got != "x1*x2*x3*x5" {
		t.Fatalf("product = %q", got)
	}
	if !a.Mul(One).Equal(a) || !One.Mul(a).Equal(a) {
		t.Fatal("multiplying by 1 changed monomial")
	}
	if !a.Mul(a).Equal(a) {
		t.Fatal("m*m != m (idempotence over GF(2))")
	}
}

func TestMonomialMulVarWithout(t *testing.T) {
	m := NewMonomial(2, 4)
	if got := m.MulVar(3).String(); got != "x2*x3*x4" {
		t.Fatalf("MulVar = %q", got)
	}
	if !m.MulVar(2).Equal(m) {
		t.Fatal("MulVar existing var changed monomial")
	}
	if got := m.Without(2).String(); got != "x4" {
		t.Fatalf("Without = %q", got)
	}
	if !m.Without(9).Equal(m) {
		t.Fatal("Without absent var changed monomial")
	}
}

func TestMonomialContainsDivides(t *testing.T) {
	m := NewMonomial(1, 4, 9)
	if !m.Contains(4) || m.Contains(5) {
		t.Fatal("Contains wrong")
	}
	if !NewMonomial(1, 9).Divides(m) {
		t.Fatal("x1*x9 should divide x1*x4*x9")
	}
	if NewMonomial(1, 5).Divides(m) {
		t.Fatal("x1*x5 should not divide x1*x4*x9")
	}
	if !One.Divides(m) {
		t.Fatal("1 divides everything")
	}
	if m.Divides(One) {
		t.Fatal("nontrivial monomial cannot divide 1")
	}
}

func TestMonomialCompareGradedLex(t *testing.T) {
	cases := []struct {
		a, b Monomial
		want int
	}{
		{One, One, 0},
		{NewMonomial(1), One, 1},
		{NewMonomial(1), NewMonomial(2), 1},     // x1 > x2: lower index is larger
		{NewMonomial(5), NewMonomial(1, 2), -1}, // degree dominates
		{NewMonomial(1, 3), NewMonomial(1, 2), -1},
		{NewMonomial(1, 2), NewMonomial(1, 2), 0},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("Compare(%s, %s) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := c.b.Compare(c.a); got != -c.want {
			t.Errorf("Compare(%s, %s) = %d, want %d (antisymmetry)", c.b, c.a, got, -c.want)
		}
	}
}

func TestMonomialKeyUnique(t *testing.T) {
	seen := map[string]string{}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 500; i++ {
		n := rng.Intn(5)
		vars := make([]Var, n)
		for j := range vars {
			vars[j] = Var(rng.Intn(1000))
		}
		m := NewMonomial(vars...)
		if prev, ok := seen[m.Key()]; ok && prev != m.String() {
			t.Fatalf("key collision: %s vs %s", prev, m.String())
		}
		seen[m.Key()] = m.String()
	}
}

func TestMonomialEval(t *testing.T) {
	m := NewMonomial(0, 2)
	all1 := func(Var) bool { return true }
	if !m.Eval(all1) {
		t.Fatal("product of 1s should be 1")
	}
	if m.Eval(func(v Var) bool { return v != 2 }) {
		t.Fatal("product with a 0 factor should be 0")
	}
	if !One.Eval(func(Var) bool { return false }) {
		t.Fatal("constant 1 should evaluate to 1")
	}
}

// Property: monomial multiplication is commutative, associative, idempotent.
func TestQuickMonomialAlgebra(t *testing.T) {
	gen := func(rng *rand.Rand) Monomial {
		n := rng.Intn(4)
		vars := make([]Var, n)
		for i := range vars {
			vars[i] = Var(rng.Intn(8))
		}
		return NewMonomial(vars...)
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b, c := gen(rng), gen(rng), gen(rng)
		if !a.Mul(b).Equal(b.Mul(a)) {
			return false
		}
		if !a.Mul(b).Mul(c).Equal(a.Mul(b.Mul(c))) {
			return false
		}
		return a.Mul(a).Equal(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
