package core

import (
	"math/rand"
	"testing"

	"repro/internal/anf"
	"repro/internal/proof"
)

// randomPlantedSystem generates a system vanishing on a planted solution,
// so it is guaranteed satisfiable — the shape the differential test uses.
func randomPlantedSystem(rng *rand.Rand, nVars int) *anf.System {
	sol := make([]bool, nVars)
	for i := range sol {
		sol[i] = rng.Intn(2) == 1
	}
	sys := anf.NewSystem()
	sys.SetNumVars(nVars)
	for i := 0; i < nVars+3; i++ {
		var monos []anf.Monomial
		c := false
		for j := 0; j <= rng.Intn(3); j++ {
			var vs []anf.Var
			val := true
			for d := 0; d < 1+rng.Intn(2); d++ {
				v := anf.Var(rng.Intn(nVars))
				vs = append(vs, v)
				val = val && sol[v]
			}
			monos = append(monos, anf.NewMonomial(vs...))
			c = c != val
		}
		if c {
			monos = append(monos, anf.One)
		}
		sys.Add(anf.FromMonomials(monos...))
	}
	return sys
}

// Provenance tracking must be an observer: the engine with tracking on
// learns exactly the facts it learns with tracking off, for both the
// sequential loop and the snapshot pipeline.
func TestProvenanceDoesNotChangeResult(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	systems := []*anf.System{sysFrom(t, paperExample)}
	for i := 0; i < 6; i++ {
		systems = append(systems, randomPlantedSystem(rng, 4+rng.Intn(5)))
	}
	systems = append(systems, sysFrom(t, "x0*x1 + x0 + x1\nx0 + x1 + 1\nx1\nx0\n"))
	for si, sys := range systems {
		for _, workers := range []int{0, 3} {
			cfg := DefaultConfig()
			cfg.Seed = int64(si + 1)
			cfg.Workers = workers
			plain := Process(sys, cfg)
			cfg.Provenance = true
			tracked := Process(sys, cfg)
			if plain.Status != tracked.Status || plain.Iterations != tracked.Iterations {
				t.Fatalf("sys %d workers %d: status/iters diverge: %v/%d vs %v/%d",
					si, workers, plain.Status, plain.Iterations, tracked.Status, tracked.Iterations)
			}
			pf := [4]int{plain.XL.NewFacts, plain.ElimLin.NewFacts, plain.SAT.NewFacts, plain.PropagationFacts}
			tf := [4]int{tracked.XL.NewFacts, tracked.ElimLin.NewFacts, tracked.SAT.NewFacts, tracked.PropagationFacts}
			if pf != tf {
				t.Fatalf("sys %d workers %d: fact counts diverge: %v vs %v", si, workers, pf, tf)
			}
			pp, tp := plain.System.Polys(), tracked.System.Polys()
			if len(pp) != len(tp) {
				t.Fatalf("sys %d workers %d: system sizes diverge: %d vs %d", si, workers, len(pp), len(tp))
			}
			for i := range pp {
				if !pp[i].Equal(tp[i]) {
					t.Fatalf("sys %d workers %d: poly %d diverges: %v vs %v", si, workers, i, pp[i], tp[i])
				}
			}
			if tracked.Provenance == nil {
				t.Fatalf("sys %d workers %d: no ledger on tracked run", si, workers)
			}
			if plain.Provenance != nil {
				t.Fatalf("sys %d: ledger present on untracked run", si)
			}
		}
	}
}

// Every record the tracked engine writes must re-derive against the
// original input system — the tentpole's 100%-verification criterion at
// the engine level, for both engine modes.
func TestProvenanceVerifiesEverything(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	systems := []*anf.System{
		sysFrom(t, paperExample),
		sysFrom(t, "x0*x1 + x0 + x1\nx0 + x1 + 1\nx1\nx0\n"),
		sysFrom(t, "x0 + x1\nx1 + x2\nx0 + x2 + 1\n"),
	}
	for i := 0; i < 5; i++ {
		systems = append(systems, randomPlantedSystem(rng, 4+rng.Intn(5)))
	}
	for si, sys := range systems {
		for _, workers := range []int{0, 2} {
			cfg := DefaultConfig()
			cfg.Seed = int64(si + 7)
			cfg.Provenance = true
			cfg.Workers = workers
			cfg.EnableProbing = si%2 == 0
			cfg.EnableGroebner = si%3 == 0
			res := Process(sys, cfg)
			report := proof.VerifyFacts(sys, res.Provenance, proof.VerifyOptions{Seed: 5})
			if !report.AllVerified() {
				for _, v := range report.Verdicts {
					if !v.Verdict.Verified() {
						rec := res.Provenance.At(v.ID)
						t.Errorf("sys %d workers %d: record %d (%s iter %d) %v: %s [%v]",
							si, workers, v.ID, v.Technique, v.Iteration, v.Verdict, v.Detail, rec.Poly)
					}
				}
				t.Fatalf("sys %d workers %d: %s", si, workers, report.Summary())
			}
			if res.Status == SolvedUNSAT {
				// The refutation must be in the ledger, not just the Status.
				found := false
				for _, r := range res.Provenance.Facts() {
					if r.Poly.IsOne() {
						found = true
					}
				}
				if !found {
					t.Fatalf("sys %d workers %d: UNSAT verdict without a 1=0 record", si, workers)
				}
			}
		}
	}
}

// An UNSAT run with proof capture must attach a certificate that the
// independent DRAT checker accepts, in both encodings, and reject a
// corrupted proof.
func TestEngineCertificate(t *testing.T) {
	// Force the refutation through the SAT step: two contradictory
	// quadratics that propagation leaves alone (neither is a unit, a
	// monomial-plus-one, or a linear pair), with XL/ElimLin disabled so
	// GJE cannot sum them to 1 first.
	src := "x0*x1 + x2\nx0*x1 + x2 + 1\n"
	for _, binary := range []bool{false, true} {
		sys := sysFrom(t, src)
		cfg := DefaultConfig()
		cfg.Provenance = true
		cfg.EmitProof = true
		cfg.ProofBinary = binary
		cfg.DisableXL = true
		cfg.DisableElimLin = true
		res := Process(sys, cfg)
		if res.Status != SolvedUNSAT {
			t.Fatalf("binary=%v: status %v, want UNSAT", binary, res.Status)
		}
		if res.Certificate == nil {
			// The refutation may have come from propagation/techniques
			// before any SAT step ran; this instance is built to need the
			// solver, so a missing certificate is a wiring bug.
			t.Fatalf("binary=%v: UNSAT without certificate", binary)
		}
		cr, err := res.Certificate.Check()
		if err != nil || !cr.Verified {
			t.Fatalf("binary=%v: certificate rejected: %+v err=%v", binary, cr, err)
		}
		// Bit-flip corruption must be detectable: some single-bit mutation
		// of the stream has to be rejected. (Not every flip breaks a proof
		// — one may turn a literal into another whose clause is still RUP
		// — so scan for a rejected one rather than betting on an offset.)
		rejected := false
		for i := range res.Certificate.Proof {
			mut := *res.Certificate
			mut.Proof = append([]byte(nil), res.Certificate.Proof...)
			mut.Proof[i] ^= 0x01
			if cr, err := mut.Check(); err != nil || !cr.Verified {
				rejected = true
				break
			}
		}
		if !rejected {
			t.Fatalf("binary=%v: every single-bit mutation of the proof still verified", binary)
		}
	}
}
