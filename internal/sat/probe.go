package sat

import "repro/internal/cnf"

// ProbeResult is the outcome of failed-literal probing.
type ProbeResult struct {
	// Units are the literals proven at level 0 by the probe (failed
	// literals' negations and necessary assignments).
	Units []cnf.Lit
	// Equivalences are pairs (a, b) with a ≡ b proven by bidirectional
	// implication.
	Equivalences [][2]cnf.Lit
	// Unsat is true when probing refuted the formula outright.
	Unsat bool
	// Probed counts the variables examined.
	Probed int
}

// ProbeLiterals performs failed-literal probing — the lookahead-style
// technique the paper's §V discussion names as a pluggable component. For
// each unassigned variable v (up to maxVars, 0 = all): assume v, propagate,
// record the implied literals; assume ¬v likewise. A conflicted branch
// fixes the opposite literal at level 0; literals implied by both branches
// are necessary assignments; x implied by v together with ¬x implied by ¬v
// proves v ≡ x.
//
// The solver is left at level 0 with all derived units applied (they show
// up in LearntUnits, so the Bosphorus harvest path picks them up).
func (s *Solver) ProbeLiterals(maxVars int) *ProbeResult {
	res := &ProbeResult{}
	if !s.ok {
		res.Unsat = true
		return res
	}
	if s.decisionLevel() != 0 {
		panic("sat: ProbeLiterals above level 0")
	}
	if conf := s.propagate(); conf != NullRef {
		s.releaseConflict(conf)
		s.ok = false
		s.logEmpty()
		res.Unsat = true
		return res
	}
	if s.gauss != nil {
		if s.gauss.initialize() == lFalse {
			s.ok = false
			s.logEmpty()
			res.Unsat = true
			return res
		}
		if conf := s.propagate(); conf != NullRef {
			s.releaseConflict(conf)
			s.ok = false
			s.logEmpty()
			res.Unsat = true
			return res
		}
	}
	// assertUnit fixes l at level 0. bridge, when not litUndef, is the
	// probed literal that implied l in both branches: the unit [l] alone is
	// not RUP then, but the two implication bridges (¬bridge ∨ l) and
	// (bridge ∨ l) are — each probe branch propagated to l — and together
	// they make [l] RUP. The bridges go only into the proof stream, never
	// into the clause database.
	assertUnit := func(l cnf.Lit, bridge cnf.Lit) bool {
		if s.valueLit(l) == lTrue {
			return true
		}
		if s.proof != nil {
			if bridge != litUndef {
				s.logLearn([]cnf.Lit{bridge.Not(), l})
				s.logLearn([]cnf.Lit{bridge, l})
			}
			s.logLearn([]cnf.Lit{l})
		}
		if !s.enqueue(l, NullRef) {
			s.ok = false
			s.logEmpty()
			return false
		}
		if conf := s.propagate(); conf != NullRef {
			s.releaseConflict(conf)
			s.ok = false
			s.logEmpty()
			return false
		}
		res.Units = append(res.Units, l)
		return true
	}
	for v := 0; v < s.NumVars(); v++ {
		if maxVars > 0 && res.Probed >= maxVars {
			break
		}
		// Probing runs one propagation pair per variable, which adds up on
		// service-sized formulas; honour interruption between variables so a
		// cancelled job does not hold its worker through the whole sweep.
		if res.Probed%64 == 0 && s.deadlineExpired() {
			break
		}
		if s.assigns[v] != lUndef {
			continue
		}
		res.Probed++
		pos, posOK := s.probeBranch(cnf.MkLit(cnf.Var(v), false))
		if !posOK {
			if !assertUnit(cnf.MkLit(cnf.Var(v), true), litUndef) {
				res.Unsat = true
				return res
			}
			continue
		}
		neg, negOK := s.probeBranch(cnf.MkLit(cnf.Var(v), true))
		if !negOK {
			if !assertUnit(cnf.MkLit(cnf.Var(v), false), litUndef) {
				res.Unsat = true
				return res
			}
			continue
		}
		// Both branches survived: intersect.
		inPos := map[cnf.Lit]bool{}
		for _, l := range pos {
			inPos[l] = true
		}
		for _, l := range neg {
			if l.Var() == cnf.Var(v) {
				continue
			}
			if inPos[l] {
				// Necessary assignment.
				if !assertUnit(l, cnf.MkLit(cnf.Var(v), false)) {
					res.Unsat = true
					return res
				}
			} else if inPos[l.Not()] {
				// v → ¬l and ¬v → l: the literal tracks ¬v.
				res.Equivalences = append(res.Equivalences,
					[2]cnf.Lit{cnf.MkLit(cnf.Var(v), false), l.Not()})
			}
		}
	}
	return res
}

// probeBranch assumes l at a fresh decision level, propagates, collects
// the implications, and backtracks. ok is false when the branch
// conflicts.
func (s *Solver) probeBranch(l cnf.Lit) (implied []cnf.Lit, ok bool) {
	base := len(s.trail)
	s.trailLim = append(s.trailLim, base)
	if !s.enqueue(l, NullRef) {
		s.cancelUntil(s.decisionLevel() - 1)
		return nil, false
	}
	conf := s.propagate()
	s.releaseConflict(conf)
	if conf == NullRef {
		implied = append(implied, s.trail[base:]...)
	}
	s.cancelUntil(s.decisionLevel() - 1)
	return implied, conf == NullRef
}
