package bitops

// Writer mirrors the structural signature of the repo's proof-writer
// hooks (Learn + Justify): the proofhook analyzer applies in every
// package.
type Writer interface {
	Learn(lits []int)
	Justify(lits []int)
}

// Logger lacks Justify, so it is not a proof hook: calls through it need
// no guard.
type Logger interface {
	Learn(lits []int)
}

type engine struct {
	hook Writer
	log  Logger
}

func (e *engine) badUnguarded() {
	e.hook.Learn(nil) // want proofhook "without a nil guard"
}

func (e *engine) guardedEnclosing() {
	if e.hook != nil {
		e.hook.Learn(nil)
	}
}

func (e *engine) guardedEarlyReturn() {
	if e.hook == nil {
		return
	}
	e.hook.Justify(nil)
}

func (e *engine) notAHook() {
	e.log.Learn(nil)
}

// A directive that excuses nothing is itself a finding, so stale
// suppressions cannot outlive the code they excused.
func (e *engine) staleSuppression() {
	// want lint "unused //lint:ignore directive"
	//lint:ignore proofhook nothing here needs suppressing
	e.log.Learn(nil)
}
