package speck

import (
	"math/rand"
	"testing"

	"repro/internal/anf"
	"repro/internal/core"
)

// TestSpeckTestVector checks the published Speck32/64 vector: key
// 1918 1110 0908 0100, plaintext 6574 694c, ciphertext a868 42f2.
func TestSpeckTestVector(t *testing.T) {
	key := [4]uint16{0x0100, 0x0908, 0x1110, 0x1918}
	x, y := Encrypt(0x6574, 0x694c, key, FullRounds)
	if x != 0xa868 || y != 0x42f2 {
		t.Fatalf("Speck32/64 = %04x %04x, want a868 42f2", x, y)
	}
}

func TestExpandKeyFirstKey(t *testing.T) {
	key := [4]uint16{7, 8, 9, 10}
	ks := ExpandKey(key, 6)
	if ks[0] != 7 {
		t.Fatalf("first round key %04x, want 0007", ks[0])
	}
	for i := 1; i < len(ks); i++ {
		if ks[i] == ks[i-1] {
			t.Fatalf("round keys %d and %d identical", i-1, i)
		}
	}
}

func TestInstanceWitness(t *testing.T) {
	for _, p := range []Params{{1, 1}, {1, 3}, {2, 4}, {4, 5}} {
		rng := rand.New(rand.NewSource(61))
		inst := GenerateInstance(p, rng)
		assign := func(v anf.Var) bool {
			return int(v) < len(inst.Witness) && inst.Witness[int(v)]
		}
		if !inst.Sys.Eval(assign) {
			for _, q := range inst.Sys.Polys() {
				if q.Eval(assign) {
					t.Fatalf("Speck-[%d,%d]: witness violates %s", p.NPlaintexts, p.Rounds, q)
				}
			}
		}
		if got := inst.KeyFromSolution(inst.Witness); got != inst.Key {
			t.Fatalf("witness key mismatch")
		}
		if d := inst.Sys.MaxDeg(); d > 2 {
			t.Fatalf("encoding degree %d, want ≤ 2", d)
		}
	}
}

func TestCiphersMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	inst := GenerateInstance(Params{NPlaintexts: 3, Rounds: 5}, rng)
	for i, pl := range inst.Plains {
		cx, cy := Encrypt(pl[0], pl[1], inst.Key, 5)
		if cx != inst.Ciphers[i][0] || cy != inst.Ciphers[i][1] {
			t.Fatalf("pair %d mismatch", i)
		}
	}
}

// End-to-end: the Bosphorus loop recovers a Speck key at small rounds.
func TestIntegrationSpeckKeyRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	p := Params{NPlaintexts: 2, Rounds: 3}
	inst := GenerateInstance(p, rng)
	res := core.Process(inst.Sys, core.DefaultConfig())
	if res.Status != core.SolvedSAT {
		t.Fatalf("status %v", res.Status)
	}
	key := inst.KeyFromSolution(res.Solution)
	for i, pl := range inst.Plains {
		cx, cy := Encrypt(pl[0], pl[1], key, p.Rounds)
		if cx != inst.Ciphers[i][0] || cy != inst.Ciphers[i][1] {
			t.Fatalf("recovered key fails pair %d", i)
		}
	}
}

func TestInvalidParamsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	GenerateInstance(Params{0, 0}, rand.New(rand.NewSource(1)))
}
