package bench

import (
	"strings"
	"testing"

	"repro/internal/sat"
)

func TestWriteCSV(t *testing.T) {
	tab := &TableII{Cfg: DefaultConfig()}
	tab.Rows = []TableRow{{
		Family: "fam",
		NJobs:  2,
		Cells: map[sat.Profile][2]CellResult{
			sat.ProfileMiniSat:   {{PAR2: 1.5, NSat: 1}, {PAR2: 0.5, NSat: 2}},
			sat.ProfileLingeling: {{PAR2: 2, NSat: 1}, {PAR2: 2, NSat: 1}},
			sat.ProfileCMS:       {{PAR2: 3, NSat: 0, NUnsat: 1}, {PAR2: 1, NSat: 1, NUnsat: 1}},
		},
	}}
	var sb strings.Builder
	if err := tab.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "family,njobs,solver,bosphorus,par2,sat,unsat,mismatches\n") {
		t.Fatalf("header wrong:\n%s", out)
	}
	for _, want := range []string{
		"fam,2,minisat,without,1.500,1,0,0",
		"fam,2,minisat,with,0.500,2,0,0",
		"fam,2,cryptominisat,with,1.000,1,1,0",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing row %q:\n%s", want, out)
		}
	}
	// 3 profiles × 2 settings + header = 7 lines.
	if lines := strings.Count(out, "\n"); lines != 7 {
		t.Fatalf("line count %d, want 7", lines)
	}
}

func TestBetterRule(t *testing.T) {
	// More solved wins regardless of PAR-2.
	if !better(CellResult{NSat: 3, PAR2: 100}, CellResult{NSat: 2, PAR2: 1}) {
		t.Fatal("solved count should dominate")
	}
	// Ties break on PAR-2.
	if !better(CellResult{NSat: 2, PAR2: 1}, CellResult{NSat: 2, PAR2: 2}) {
		t.Fatal("PAR-2 tiebreak wrong")
	}
}
