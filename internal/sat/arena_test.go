package sat

import (
	"math/rand"
	"testing"

	"repro/internal/cnf"
	"repro/internal/satgen"
)

func lits(ds ...int) []cnf.Lit {
	out := make([]cnf.Lit, len(ds))
	for i, d := range ds {
		l, err := cnf.LitFromDimacs(d)
		if err != nil {
			panic(err)
		}
		out[i] = l
	}
	return out
}

func TestArenaAllocAndViews(t *testing.T) {
	var a clauseArena
	c1 := a.alloc(lits(1, -2, 3), false, false)
	c2 := a.alloc(lits(-4, 5), true, false)
	c3 := a.alloc(lits(2, -3, 4, -5), false, true)

	for _, tc := range []struct {
		ref    ClauseRef
		want   []cnf.Lit
		learnt bool
		temp   bool
	}{
		{c1, lits(1, -2, 3), false, false},
		{c2, lits(-4, 5), true, false},
		{c3, lits(2, -3, 4, -5), false, true},
	} {
		if got := a.lits(tc.ref); len(got) != len(tc.want) {
			t.Fatalf("ref %d: %d lits, want %d", tc.ref, len(got), len(tc.want))
		} else {
			for i := range got {
				if got[i] != tc.want[i] {
					t.Errorf("ref %d lit %d: %v, want %v", tc.ref, i, got[i], tc.want[i])
				}
			}
		}
		if a.size(tc.ref) != len(tc.want) {
			t.Errorf("ref %d size = %d, want %d", tc.ref, a.size(tc.ref), len(tc.want))
		}
		if a.learnt(tc.ref) != tc.learnt || a.temp(tc.ref) != tc.temp || a.dead(tc.ref) {
			t.Errorf("ref %d flags learnt=%v temp=%v dead=%v", tc.ref,
				a.learnt(tc.ref), a.temp(tc.ref), a.dead(tc.ref))
		}
	}
	// Footprints: 1+3, 4+2, 1+4 words.
	if len(a.data) != 4+6+5 {
		t.Errorf("arena holds %d words, want 15", len(a.data))
	}
	if a.wasted != 0 || a.liveWords() != len(a.data) {
		t.Errorf("fresh arena wasted=%d live=%d", a.wasted, a.liveWords())
	}
}

func TestArenaLearntMetadataRoundTrip(t *testing.T) {
	var a clauseArena
	r := a.alloc(lits(1, 2, 3), true, false)
	// Activities are float64 on purpose (reduceDB tie-breaks must stay
	// bit-identical to the seed solver); these values do not survive a
	// float32 round trip.
	for _, act := range []float64{0, 1, 1e-100, 1e20 + 4096, 0.1, 123456789.123456789} {
		a.setActivity(r, act)
		if got := a.activity(r); got != act {
			t.Errorf("activity round trip: got %v, want %v", got, act)
		}
	}
	for _, lbd := range []int{0, 1, 7, 1 << 20} {
		a.setLBD(r, lbd)
		if got := a.lbd(r); got != lbd {
			t.Errorf("lbd round trip: got %d, want %d", got, lbd)
		}
	}
	// Metadata writes must not clobber the literals.
	got := a.lits(r)
	for i, want := range lits(1, 2, 3) {
		if got[i] != want {
			t.Errorf("lit %d corrupted: %v, want %v", i, got[i], want)
		}
	}
}

func TestArenaFreeAndShrinkAccounting(t *testing.T) {
	var a clauseArena
	c1 := a.alloc(lits(1, 2, 3, 4, 5), false, false) // 6 words
	c2 := a.alloc(lits(1, 2, 3), true, false)        // 7 words
	if a.liveWords() != 13 {
		t.Fatalf("liveWords = %d, want 13", a.liveWords())
	}
	a.shrink(c1, 3) // drops 2 words
	if a.size(c1) != 3 || a.wasted != 2 {
		t.Errorf("after shrink: size=%d wasted=%d, want 3/2", a.size(c1), a.wasted)
	}
	a.shrink(c1, 5) // growing is a no-op
	if a.size(c1) != 3 || a.wasted != 2 {
		t.Errorf("shrink must not grow: size=%d wasted=%d", a.size(c1), a.wasted)
	}
	a.free(c1) // 4 remaining words
	if !a.dead(c1) || a.wasted != 6 {
		t.Errorf("after free: dead=%v wasted=%d, want true/6", a.dead(c1), a.wasted)
	}
	a.free(c2)
	if a.wasted != 13 || a.liveWords() != 0 {
		t.Errorf("after freeing all: wasted=%d live=%d", a.wasted, a.liveWords())
	}
}

func TestArenaRelocate(t *testing.T) {
	var from, to clauseArena
	c1 := from.alloc(lits(1, -2, 3), false, false)
	c2 := from.alloc(lits(-4, 5), true, false)
	from.setLBD(c2, 3)
	from.setActivity(c2, 0.625)
	c3 := from.alloc(lits(6, -7, 8), false, true)

	n1 := from.relocate(c1, &to)
	n2 := from.relocate(c2, &to)
	n3 := from.relocate(c3, &to)
	// Relocating again must follow the forwarding ref, not copy twice.
	if again := from.relocate(c2, &to); again != n2 {
		t.Errorf("second relocate returned %d, want forwarded %d", again, n2)
	}
	for i, want := range lits(1, -2, 3) {
		if got := to.lits(n1)[i]; got != want {
			t.Errorf("relocated c1 lit %d: %v, want %v", i, got, want)
		}
	}
	if !to.learnt(n2) || to.lbd(n2) != 3 || to.activity(n2) != 0.625 {
		t.Errorf("learnt metadata lost in relocation: learnt=%v lbd=%d act=%v",
			to.learnt(n2), to.lbd(n2), to.activity(n2))
	}
	if !to.temp(n3) {
		t.Error("temp flag lost in relocation")
	}
	if to.wasted != 0 || to.liveWords() != 4+6+4 {
		t.Errorf("target arena wasted=%d live=%d, want 0/14", to.wasted, to.liveWords())
	}
}

// checkWatchInvariants verifies the structural contract the GC must
// preserve: every attached clause is watched exactly twice, on the
// negations of its first two literals, and every watcher resolves to a
// live clause in the database (temp reasons are never attached).
func checkWatchInvariants(t *testing.T, s *Solver) {
	t.Helper()
	inDB := map[ClauseRef]int{}
	for _, c := range append(append([]ClauseRef(nil), s.clauses...), s.learnts...) {
		inDB[c] = 0
		if s.ca.dead(c) {
			t.Fatalf("dead clause %d in database", c)
		}
		if s.ca.size(c) < 2 {
			t.Fatalf("clause %d has %d lits", c, s.ca.size(c))
		}
	}
	for li := range s.watches {
		for _, w := range s.watches[li] {
			if _, ok := inDB[w.ref]; !ok {
				t.Fatalf("watcher on %d references clause %d outside the database", li, w.ref)
			}
			inDB[w.ref]++
			cl := s.ca.lits(w.ref)
			if cnf.Lit(li) != cl[0].Not() && cnf.Lit(li) != cl[1].Not() {
				t.Fatalf("clause %d watched on %v, but watched pair is %v %v",
					w.ref, cnf.Lit(li), cl[0], cl[1])
			}
		}
	}
	for c, n := range inDB {
		if n != 2 {
			t.Fatalf("clause %d has %d watchers, want 2", c, n)
		}
	}
}

// TestGarbageCollectMidSearch interrupts a search, forces a collection,
// and resumes: the GC must remap every root so the remaining search is
// oblivious to it, and the structural invariants must hold on both sides.
func TestGarbageCollectMidSearch(t *testing.T) {
	f := satgen.Pigeonhole(7, 6).Formula
	s := New(DefaultOptions(ProfileMiniSat))
	if !s.AddFormula(f) {
		t.Fatal("load-time UNSAT")
	}
	if st := s.SolveLimited(200); st != Unknown {
		t.Fatalf("budgeted solve = %v, want Unknown", st)
	}
	checkWatchInvariants(t, s)
	liveBefore := s.ca.liveWords()
	s.garbageCollect()
	checkWatchInvariants(t, s)
	if s.ArenaGCs == 0 {
		t.Error("ArenaGCs not counted")
	}
	if s.ca.wasted != 0 {
		t.Errorf("fresh arena wasted = %d", s.ca.wasted)
	}
	if s.ca.liveWords() > liveBefore {
		t.Errorf("GC grew the arena: %d -> %d", liveBefore, s.ca.liveWords())
	}
	if st := s.Solve(); st != Unsat {
		t.Fatalf("post-GC solve = %v, want Unsat", st)
	}
	checkWatchInvariants(t, s)
}

// TestGCClearsDeadReasonSlots reproduces the one dangling-ref hazard the
// pointer-based solver tolerated silently: Simplify deletes a satisfied
// clause that is still the reason slot of a level-0 assignment (never
// dereferenced at level 0, but a GC must not resurrect it).
func TestGCClearsDeadReasonSlots(t *testing.T) {
	s := New(DefaultOptions(ProfileMiniSat))
	// Ballast keeps the freed clause under the GC waste threshold, so
	// Simplify's own maybeGC stays quiet and the dangling state is
	// observable before the explicit collection below.
	for i := 0; i < 32; i++ {
		if !s.AddClause(lits(10+i, 11+i, 12+i)...) {
			t.Fatal("ballast UNSAT")
		}
	}
	if !s.AddClause(lits(1, 2)...) || !s.AddClause(lits(-1)...) {
		t.Fatal("setup UNSAT")
	}
	// ¬x1 propagated x2 through (x1 ∨ x2); that clause is x2's reason.
	v := lits(2)[0].Var()
	if s.reason[v] == NullRef {
		t.Fatal("x2 has no reason clause")
	}
	if !s.Simplify() {
		t.Fatal("Simplify reported UNSAT")
	}
	if r := s.reason[v]; r == NullRef || !s.ca.dead(r) {
		t.Fatalf("expected a dangling dead reason after Simplify, got ref %d", r)
	}
	s.garbageCollect()
	if r := s.reason[v]; r != NullRef {
		t.Fatalf("GC kept dead reason slot: %d", r)
	}
	if st := s.Solve(); st != Sat || !s.Value(v) {
		t.Fatalf("post-GC solve wrong: %v", st)
	}
}

// TestGaussTempClausesAreReclaimed drives the CMS profile's XOR component
// through deep search and checks that the temp reason/conflict clauses it
// materializes in the arena are freed on backtrack rather than leaking.
func TestGaussTempClausesAreReclaimed(t *testing.T) {
	f := satgen.ParityChain(48, 44, 3, false, rand.New(rand.NewSource(31))).Formula
	s := New(DefaultOptions(ProfileCMS))
	if !s.AddFormula(f) {
		t.Fatal("load-time UNSAT")
	}
	s.Solve()
	s.cancelUntil(0)
	// At level 0 every surviving temp must be dead (freed): walk the arena
	// roots — no temp may be reachable from the database or reason slots.
	for _, c := range append(append([]ClauseRef(nil), s.clauses...), s.learnts...) {
		if s.ca.temp(c) {
			t.Fatalf("temp clause %d attached to the database", c)
		}
	}
	for _, l := range s.trail {
		if r := s.reason[l.Var()]; r != NullRef && s.ca.temp(r) && !s.ca.dead(r) {
			t.Fatalf("live temp reason %d at level 0", r)
		}
	}
}

// TestWatchListShrink checks the unbounded-watcher-memory fix: after a
// conflict-heavy solve deletes half the learnt database several times,
// a GC rebuilds the grossly over-capacity watch lists.
func TestWatchListShrink(t *testing.T) {
	f := satgen.Pigeonhole(8, 7).Formula
	s := New(DefaultOptions(ProfileMiniSat))
	if !s.AddFormula(f) {
		t.Fatal("load-time UNSAT")
	}
	if st := s.Solve(); st != Unsat {
		t.Fatalf("verdict %v", st)
	}
	before := 0
	for i := range s.watches {
		before += cap(s.watches[i])
	}
	s.garbageCollect()
	after := 0
	for i := range s.watches {
		after += cap(s.watches[i])
	}
	if s.WatchShrinks == 0 {
		t.Fatal("GC shrank no watch lists on a reduceDB-heavy run")
	}
	if after >= before {
		t.Errorf("total watch capacity %d did not drop (was %d)", after, before)
	}
	checkWatchInvariants(t, s)
}
