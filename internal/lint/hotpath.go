package lint

import (
	"go/ast"
)

// HotpathAnalyzer statically re-proves the PR-6 allocation result: a
// function annotated //bosphorus:hotpath must be allocation-free by
// construction, so the cdcl_propagation_chain benchmark's allocs/op
// cannot regress without this analyzer firing first. Within an annotated
// function it flags every statically visible allocation — make/new,
// growing append (amortized self-appends `x = append(x, ...)` and
// pooled `append(buf[:0], ...)` resets are the two sanctioned shapes),
// slice/map/&composite literals, capturing closures, string
// concatenation, map writes, interface boxing at call sites, goroutine
// spawns — plus any call into a function that is neither annotated
// hotpath itself nor provably allocation-free by its transitive summary.
// panic() arguments are exempt: a crash path is by definition cold.
var HotpathAnalyzer = &Analyzer{
	Name: "hotpath",
	Doc:  "//bosphorus:hotpath functions must be statically allocation-free",
	Run:  runHotpath,
}

func runHotpath(pass *Pass) {
	if pass.Prog == nil {
		return
	}
	for _, file := range pass.Pkg.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotpathDecl(fd) {
				continue
			}
			checkHotpathFunc(pass, fd)
		}
	}
}

func checkHotpathFunc(pass *Pass, fd *ast.FuncDecl) {
	for _, f := range allocSites(pass.Pkg, fd.Body) {
		pass.Reportf(f.node.Pos(), "allocation in //bosphorus:hotpath function %s: %s", fd.Name.Name, f.what)
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isBuiltinCall(pass.Pkg, call) || isTypeConversion(pass.Pkg, call) {
			return true
		}
		if calleeName(call) == "panic" || whitelistedCall(pass.Pkg, call) {
			return true
		}
		callee := calleeFunc(pass.Pkg, call)
		if callee == nil {
			pass.Reportf(call.Pos(),
				"hotpath function %s calls through a function value or interface; the target cannot be proven allocation-free — devirtualize or hoist off the hot path", fd.Name.Name)
			return true
		}
		eff := pass.Prog.effectsOf(callee)
		switch {
		case eff == nil:
			pass.Reportf(call.Pos(),
				"hotpath function %s calls %s, which has no allocation summary (outside the module and not whitelisted)", fd.Name.Name, callee.Name())
		case eff.Hotpath:
			// Annotated callees are trusted: their own bodies are checked
			// (and any excused allocation carries its own suppression), so
			// re-reporting here would only cascade.
		case eff.Allocates:
			pass.Reportf(call.Pos(),
				"hotpath function %s calls %s, which may allocate; mark the callee //bosphorus:hotpath (and fix it) or hoist the call", fd.Name.Name, callee.Name())
		case eff.CallsUnknown:
			pass.Reportf(call.Pos(),
				"hotpath function %s calls %s, which is not provably allocation-free (it calls unsummarized code)", fd.Name.Name, callee.Name())
		}
		return true
	})
}
