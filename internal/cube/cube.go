// Package cube implements cube-and-conquer solving: a lookahead splitter
// partitions the search space into a bounded tree of assumption prefixes
// ("cubes"), a scheduler fans the open cubes across a pool of CDCL
// workers that solve them as assumption jobs, and the results merge
// deterministically — SAT short-circuits with the first model, UNSAT
// requires every cube refuted and stitches the workers' DRAT segments
// into one proof the internal/proof checker accepts.
//
// The splitter scores candidate split variables with the solver's
// failed-literal probing machinery (sat.ProbeScoresUnder): a variable's
// score is the product of its two phase-propagation fanouts, so the tree
// branches on variables that simplify both halves. A prefix that already
// propagates to a conflict is refuted at split time and never reaches a
// worker (the refutation-aware cutoff).
//
// Workers optionally exchange low-LBD learnt clauses through the
// internal/share ring. The determinism contract is layered:
//
//   - Workers ≤ 1 without ForceSplit routes to a plain solve — verdict,
//     model, learnt facts and counters are bit-identical to running the
//     solver directly.
//   - One worker with ForceSplit is still deterministic: cubes are solved
//     in index order on one solver, with no clause exchange.
//   - Several workers keep the verdict deterministic, but the model (on
//     SAT), the fact harvest, and the search counters depend on timing;
//     Stats.SharedExported/SharedImported report the clause traffic that
//     explains the variance.
package cube

import (
	"time"

	"repro/internal/cnf"
	"repro/internal/sat"
)

// Options configures a cube-and-conquer run.
type Options struct {
	// Workers is the size of the conquer pool. Values below 2 solve
	// directly (no splitting) unless ForceSplit is set.
	Workers int
	// MaxCubes bounds the number of open leaves the splitter produces.
	MaxCubes int
	// MaxDepth bounds the cube prefix length.
	MaxDepth int
	// ProbeVars is the number of candidate variables scored per split
	// node (0 = all unassigned).
	ProbeVars int
	// ForceSplit runs the splitter and the cube scheduler even with a
	// single worker — the deterministic configuration the equivalence
	// tests and benchmarks exercise.
	ForceSplit bool
	// SolverOptions configures the conquer solvers. Worker i>0 gets
	// RandomSeed+i for diversification; worker 0 keeps the exact seed.
	SolverOptions sat.Options
	// ShareSlots sizes the learnt-clause exchange ring. 0 disables
	// sharing; sharing is only active with at least two workers.
	ShareSlots int
	// ShareMaxLBD caps the LBD of exported clauses.
	ShareMaxLBD int
	// WithProof captures per-worker DRAT segments and stitches an UNSAT
	// proof into Result.Proof.
	WithProof bool
	// Timeout bounds the whole run (0 = none); on expiry the result is
	// Unknown unless a verdict already landed.
	Timeout time.Duration
}

// DefaultOptions returns a conservative cube configuration: a shallow
// 16-leaf tree, 64 probed candidates per node, and glue-only sharing.
func DefaultOptions() Options {
	return Options{
		Workers:       1,
		MaxCubes:      16,
		MaxDepth:      8,
		ProbeVars:     64,
		SolverOptions: sat.DefaultOptions(sat.ProfileMiniSat),
		ShareSlots:    256,
		ShareMaxLBD:   4,
	}
}

// Result is the merged outcome of a cube-and-conquer run.
type Result struct {
	// Status is the merged verdict: Sat as soon as any cube is
	// satisfiable, Unsat when every cube is refuted (at split time or by
	// a worker) or any worker refutes the formula outright, Unknown when
	// the run was interrupted before either.
	Status sat.Status
	// Model is the satisfying assignment on Sat.
	Model []bool
	// SatCube is the index of the cube that produced the model, -1
	// otherwise (and on the direct, splitless path).
	SatCube int
	// Units and Binaries are the level-0 facts harvested from the
	// workers (the Bosphorus learn-back payload). Deterministic for a
	// single worker; a union in worker order otherwise.
	Units    []cnf.Lit
	Binaries []cnf.Clause
	// Cubes counts the open cubes scheduled to workers; RefutedAtSplit
	// counts prefixes the splitter refuted by propagation alone; Refuted
	// counts cubes refuted by workers.
	Cubes          int
	RefutedAtSplit int
	Refuted        int
	// WorkerStats holds each worker's final counters, in worker order.
	// The direct path reports exactly one entry.
	WorkerStats []sat.Stats
	// Conflicts, Decisions and Propagations are pool-wide totals.
	Conflicts, Decisions, Propagations uint64
	// SharedExported / SharedImported total the clause-exchange traffic.
	SharedExported, SharedImported uint64
	// Proof is the stitched DRAT refutation (text form) when WithProof
	// was set and the verdict is Unsat.
	Proof []byte
	// Elapsed is the wall-clock time of the run.
	Elapsed time.Duration
}

// negate returns the clause ¬(l1 ∧ ... ∧ ln).
func negate(lits []cnf.Lit) []cnf.Lit {
	out := make([]cnf.Lit, len(lits))
	for i, l := range lits {
		out[i] = l.Not()
	}
	return out
}
