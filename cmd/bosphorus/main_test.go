package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/cnf"
	"repro/internal/proof"
)

func writeFile(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestSolveANF(t *testing.T) {
	dir := t.TempDir()
	in := writeFile(t, dir, "p.anf", "x1*x2 + x3 + x4 + 1\nx1*x2*x3 + x1 + x3 + 1\nx1*x3 + x3*x4*x5 + x3\nx2*x3 + x3*x5 + 1\nx2*x3 + x5 + 1\n")
	var out, errw bytes.Buffer
	if err := run([]string{"-anf", in, "-solve"}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "s SATISFIABLE") {
		t.Fatalf("output:\n%s", out.String())
	}
	// The paper's solution: x1..x4 = 1, x5 = 0 → "v 1 2 3 4 -5" modulo x0.
	if !strings.Contains(out.String(), " 2 3 4 5 -6 0") {
		t.Fatalf("solution line wrong:\n%s", out.String())
	}
}

func TestUnsatANF(t *testing.T) {
	dir := t.TempDir()
	in := writeFile(t, dir, "u.anf", "x0\nx0 + 1\n")
	var out, errw bytes.Buffer
	if err := run([]string{"-anf", in, "-solve"}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "s UNSATISFIABLE") {
		t.Fatalf("output:\n%s", out.String())
	}
}

func TestPreprocessWritesOutputs(t *testing.T) {
	dir := t.TempDir()
	in := writeFile(t, dir, "p.anf", "x0*x1 + x2\nx0 + 1\nx2 + x3\n")
	outANF := filepath.Join(dir, "out.anf")
	outCNF := filepath.Join(dir, "out.cnf")
	var out, errw bytes.Buffer
	if err := run([]string{"-anf", in, "-out-anf", outANF, "-out-cnf", outCNF}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	anfData, err := os.ReadFile(outANF)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(anfData), "x0 + 1") {
		t.Fatalf("processed ANF missing fact:\n%s", anfData)
	}
	cnfData, err := os.ReadFile(outCNF)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(cnfData), "p cnf") {
		t.Fatal("CNF output not DIMACS")
	}
}

func TestCNFPreprocessorMode(t *testing.T) {
	dir := t.TempDir()
	in := writeFile(t, dir, "p.cnf", "p cnf 3 3\n1 0\n-1 2 0\n-2 3 0\n")
	outCNF := filepath.Join(dir, "out.cnf")
	var out, errw bytes.Buffer
	if err := run([]string{"-cnf", in, "-out-cnf", outCNF, "-solver", "minisat"}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(outCNF)
	if err != nil {
		t.Fatal(err)
	}
	// The learnt facts force all three variables; the merged output must
	// include unit clauses for them.
	s := string(data)
	for _, unit := range []string{"\n1 0\n", "\n2 0\n", "\n3 0\n"} {
		if !strings.Contains(s, unit) {
			t.Fatalf("missing learnt unit %q in:\n%s", strings.TrimSpace(unit), s)
		}
	}
}

func TestFlagValidation(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run([]string{}, &out, &errw); err == nil {
		t.Fatal("missing input not rejected")
	}
	if err := run([]string{"-anf", "a", "-cnf", "b"}, &out, &errw); err == nil {
		t.Fatal("double input not rejected")
	}
	dir := t.TempDir()
	in := writeFile(t, dir, "p.anf", "x0\n")
	if err := run([]string{"-anf", in, "-solver", "nope"}, &out, &errw); err == nil {
		t.Fatal("bad solver not rejected")
	}
}

func TestEnumerateSolutions(t *testing.T) {
	dir := t.TempDir()
	// x0 ∨ x1 as ANF would be x0*x1 + x0 + x1 + 1... simpler: x0 + x1: two
	// solutions (01, 10) over 2 variables.
	in := writeFile(t, dir, "e.anf", "x0 + x1 + 1\n")
	var out, errw bytes.Buffer
	if err := run([]string{"-anf", in, "-enum", "10"}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "2 solution(s)") {
		t.Fatalf("enumeration output wrong:\n%s", s)
	}
}

// The --proof flag must round-trip: solve an UNSAT instance whose
// refutation is forced through the SAT step, write the DRAT proof and its
// formula, and have the built-in checker accept the pair — while a
// corrupted proof is rejected.
func TestProofFlagRoundTrip(t *testing.T) {
	dir := t.TempDir()
	in := writeFile(t, dir, "u.anf", "x1*x2 + x3\nx1*x2 + x3 + 1\n")
	proofPath := filepath.Join(dir, "p.drat")
	for _, format := range []string{"text", "bin"} {
		var out, errw bytes.Buffer
		err := run([]string{"-anf", in, "-solve", "-no-xl", "-no-elimlin",
			"-proof", proofPath, "-proof-format", format}, &out, &errw)
		if err != nil {
			t.Fatalf("format %s: %v\n%s", format, err, errw.String())
		}
		if !strings.Contains(out.String(), "s UNSATISFIABLE") {
			t.Fatalf("format %s: output:\n%s", format, out.String())
		}
		if !strings.Contains(out.String(), "c proof: ") {
			t.Fatalf("format %s: no proof line:\n%s", format, out.String())
		}
		cf, err := os.Open(proofPath + ".cnf")
		if err != nil {
			t.Fatal(err)
		}
		f, err := cnf.ReadDimacs(cf)
		cf.Close()
		if err != nil {
			t.Fatal(err)
		}
		pf, err := os.ReadFile(proofPath)
		if err != nil {
			t.Fatal(err)
		}
		cr, err := proof.Check(f, bytes.NewReader(pf))
		if err != nil || !cr.Verified {
			t.Fatalf("format %s: proof rejected: %+v err=%v", format, cr, err)
		}
		// Some single-bit corruption of the stream must be detected.
		rejected := false
		for i := range pf {
			mut := append([]byte(nil), pf...)
			mut[i] ^= 0x01
			if cr, err := proof.Check(f, bytes.NewReader(mut)); err != nil || !cr.Verified {
				rejected = true
				break
			}
		}
		if !rejected {
			t.Fatalf("format %s: no single-bit mutation was rejected", format)
		}
	}
}

// An UNSAT verdict that does not come from the SAT solver (propagation
// refutes the odd cycle) reports that no proof was captured instead of
// writing an empty file.
func TestProofFlagNoCertificate(t *testing.T) {
	dir := t.TempDir()
	in := writeFile(t, dir, "c.anf", "x1 + x2\nx2 + x3\nx1 + x3 + 1\n")
	proofPath := filepath.Join(dir, "p.drat")
	var out, errw bytes.Buffer
	if err := run([]string{"-anf", in, "-solve", "-proof", proofPath}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "c no proof captured") {
		t.Fatalf("output:\n%s", out.String())
	}
	if _, err := os.Stat(proofPath); !os.IsNotExist(err) {
		t.Fatal("proof file written without a certificate")
	}
}

// --verify-facts re-derives every learnt fact; on sound runs the summary
// reports zero failures and the exit status is clean, for SAT and UNSAT
// inputs alike.
func TestVerifyFactsFlag(t *testing.T) {
	dir := t.TempDir()
	for name, src := range map[string]string{
		"sat.anf":   "x1*x2 + x3 + x4 + 1\nx1*x2*x3 + x1 + x3 + 1\nx1*x3 + x3*x4*x5 + x3\nx2*x3 + x3*x5 + 1\nx2*x3 + x5 + 1\n",
		"unsat.anf": "x1*x2 + x3\nx1*x2 + x3 + 1\n",
	} {
		in := writeFile(t, dir, name, src)
		var out, errw bytes.Buffer
		if err := run([]string{"-anf", in, "-solve", "-verify-facts"}, &out, &errw); err != nil {
			t.Fatalf("%s: %v\n%s", name, err, out.String())
		}
		if !strings.Contains(out.String(), "c verify: facts=") {
			t.Fatalf("%s: no verify summary:\n%s", name, out.String())
		}
		if !strings.Contains(out.String(), "failed=0 unverified=0") {
			t.Fatalf("%s: verification not clean:\n%s", name, out.String())
		}
	}
}
