package sat

import "repro/internal/cnf"

// analyze performs first-UIP conflict analysis. It returns the learnt
// clause (with the asserting literal first) and the backtrack level. No
// arena allocation happens during analysis, so the clause views taken
// while walking the implication graph stay valid throughout.
//
//bosphorus:hotpath first-UIP conflict analysis over pooled buffers
func (s *Solver) analyze(conf ClauseRef) ([]cnf.Lit, int) {
	learnt := s.analyzeBuf[:0]
	learnt = append(learnt, 0) // slot for the asserting literal
	var p cnf.Lit
	havePathLit := false
	pathCount := 0
	index := len(s.trail) - 1

	c := conf
	for {
		// clauseLits materializes parity reasons on demand; ordinary refs
		// come back as plain arena views (see parity.go).
		for _, q := range s.clauseLits(c, p, havePathLit) {
			if havePathLit && q == p {
				continue
			}
			v := q.Var()
			if s.seen[v] == 1 || s.level[v] == 0 {
				continue
			}
			s.seen[v] = 1
			s.bumpVar(v)
			if int(s.level[v]) >= s.decisionLevel() {
				pathCount++
			} else {
				learnt = append(learnt, q)
			}
		}
		if s.ca.learnt(c) {
			s.bumpClause(c)
		}
		// Select next literal to expand: walk the trail backwards to the
		// most recent seen variable.
		for s.seen[s.trail[index].Var()] == 0 {
			index--
		}
		p = s.trail[index]
		havePathLit = true
		index--
		v := p.Var()
		s.seen[v] = 0
		pathCount--
		if pathCount == 0 {
			break
		}
		c = s.reason[v]
		if c == NullRef {
			panic("sat: decision variable reached during analysis with open paths")
		}
	}
	learnt[0] = p.Not()

	// Clause minimization: drop literals whose reason is covered by the
	// rest of the clause (local/self-subsuming minimization). The snapshot
	// lives in a per-solver scratch buffer — analysis runs once per
	// conflict and the copy below was a visible allocation on
	// conflict-heavy instances.
	original := append(s.minimizeBuf[:0], learnt...)
	for _, l := range learnt[1:] {
		s.seen[l.Var()] = 1
	}
	out := learnt[:1]
	for _, l := range learnt[1:] {
		if s.reason[l.Var()] == NullRef || !s.litRedundant(l) {
			out = append(out, l)
		}
	}
	learnt = out

	// Find the backtrack level: the second-highest level in the clause.
	btLevel := 0
	if len(learnt) > 1 {
		maxIdx := 1
		for i := 2; i < len(learnt); i++ {
			if s.level[learnt[i].Var()] > s.level[learnt[maxIdx].Var()] {
				maxIdx = i
			}
		}
		learnt[1], learnt[maxIdx] = learnt[maxIdx], learnt[1]
		btLevel = int(s.level[learnt[1].Var()])
	}

	// Clear seen flags, including those of literals dropped during
	// minimization.
	for _, l := range original {
		s.seen[l.Var()] = 0
	}
	s.minimizeBuf = original[:0]
	s.analyzeBuf = learnt[:0]
	// The returned slice aliases analyzeBuf: the caller (search) hands it
	// to recordLearnt, which copies what it keeps (arena alloc, proof log,
	// binary harvest) before the next conflict can reuse the buffer.
	return learnt, btLevel
}

// litRedundant reports whether literal l in a learnt clause is implied by
// the other clause literals: every literal in its reason chain is either
// seen or at level 0. Conservative one-level check (MiniSat's "basic"
// ccmin mode) — it never recurses past unseen antecedents.
//
//bosphorus:hotpath clause minimization reason-chain walk
func (s *Solver) litRedundant(l cnf.Lit) bool {
	r := s.reason[l.Var()]
	if r == NullRef {
		return false
	}
	for _, q := range s.clauseLits(r, l, true) {
		if q.Var() == l.Var() {
			continue
		}
		if s.level[q.Var()] == 0 {
			continue
		}
		if s.seen[q.Var()] == 0 {
			return false
		}
	}
	return true
}

// recordLearnt installs a learnt clause produced by analyze and enqueues
// its asserting literal. Must be called after backtracking to the level
// returned by analyze.
func (s *Solver) recordLearnt(lits []cnf.Lit) {
	switch len(lits) {
	case 0:
		s.ok = false
		s.logEmpty()
	case 1:
		s.logLearn(lits)
		s.exportLearnt(lits, 1)
		if !s.enqueue(lits[0], NullRef) {
			s.ok = false
			s.logEmpty()
		}
	default:
		s.logLearn(lits)
		cr := s.ca.alloc(lits, true, false)
		lbd := s.computeLBD(lits)
		s.exportLearnt(lits, lbd)
		s.ca.setLBD(cr, lbd)
		s.learnts = append(s.learnts, cr)
		s.attach(cr)
		s.bumpClause(cr)
		if len(lits) == 2 {
			s.learntBinaries = append(s.learntBinaries, append(cnf.Clause(nil), lits...))
		}
		if !s.enqueue(lits[0], cr) {
			panic("sat: asserting literal not enqueueable")
		}
	}
}

// computeLBD returns the number of distinct decision levels in the clause
// (literal block distance, the glucose clause-quality measure). Distinct
// levels are counted with a generation-stamped dense array instead of a
// per-call map: levels are bounded by the decision stack depth, and this
// runs for every learnt clause.
//
//bosphorus:hotpath per-learnt LBD with a generation-stamped dense array
func (s *Solver) computeLBD(lits []cnf.Lit) int {
	s.lbdGen++
	gen := s.lbdGen
	n := 0
	for _, l := range lits {
		lvl := s.level[l.Var()]
		for int(lvl) >= len(s.lbdStamp) {
			s.lbdStamp = append(s.lbdStamp, 0)
		}
		if s.lbdStamp[lvl] != gen {
			s.lbdStamp[lvl] = gen
			n++
		}
	}
	return n
}
