package proof

import (
	"fmt"

	"repro/internal/anf"
)

// Technique labels for Record.Technique.
const (
	TechInput       = "input"
	TechXL          = "xl"
	TechElimLin     = "elimlin"
	TechSAT         = "sat"
	TechPropagation = "propagation"
	TechGroebner    = "groebner"
	TechExtra       = "extra"
)

// Term is one summand of a witness: Mult · (the poly of ledger record
// Src). A Src of -1 marks a placeholder the producer could not attribute
// (the witness is then not exactly replayable and verification falls back
// to SAT entailment).
type Term struct {
	Mult anf.Poly
	Src  int
}

// Record is the provenance of one learnt fact: the fact polynomial, the
// technique and loop iteration that produced it, and — when the producer
// tracked the algebra exactly — a witness expressing the fact as a
// polynomial combination of earlier records, bottoming out at the input
// equations.
//
// The witness claims the Boolean-ring identity
//
//	Poly = Σ_i  Witness[i].Mult · record(Witness[i].Src).Poly
//
// which makes Poly = 0 a consequence of the source facts being 0.
type Record struct {
	ID        int
	Technique string
	Iteration int
	Poly      anf.Poly
	Witness   []Term
	// Note carries producer detail ("unit", "probe-equivalence", GJE row
	// ids, ...) for diagnostics; it is not used by verification.
	Note string
}

// Ledger is an append-only provenance table. Records 0..n-1 are the n
// input equations (Technique "input"); everything after is a learnt fact.
type Ledger struct {
	recs   []Record
	inputs int
}

// NewLedger seeds a ledger with the input system's equations.
func NewLedger(sys *anf.System) *Ledger {
	lg := &Ledger{}
	for _, p := range sys.Polys() {
		lg.recs = append(lg.recs, Record{
			ID:        len(lg.recs),
			Technique: TechInput,
			Iteration: 0,
			Poly:      p,
		})
	}
	lg.inputs = len(lg.recs)
	return lg
}

// Append adds a record, assigning and returning its ID.
func (lg *Ledger) Append(r Record) int {
	r.ID = len(lg.recs)
	lg.recs = append(lg.recs, r)
	return r.ID
}

// Len is the total number of records, inputs included.
func (lg *Ledger) Len() int { return len(lg.recs) }

// Inputs is the number of seeded input records.
func (lg *Ledger) Inputs() int { return lg.inputs }

// At returns record i.
func (lg *Ledger) At(i int) Record { return lg.recs[i] }

// Facts returns the learnt (non-input) records.
func (lg *Ledger) Facts() []Record { return lg.recs[lg.inputs:] }

func (r Record) String() string {
	return fmt.Sprintf("#%d [%s it%d] %s = 0 (witness terms: %d)",
		r.ID, r.Technique, r.Iteration, r.Poly, len(r.Witness))
}
