package satgen

import (
	"math/rand"
	"testing"

	"repro/internal/cnf"
	"repro/internal/sat"
)

func solve(t *testing.T, f *cnf.Formula) sat.Status {
	t.Helper()
	s := sat.NewDefault()
	if !s.AddFormula(f) {
		return sat.Unsat
	}
	return s.Solve()
}

func TestPigeonholeStatus(t *testing.T) {
	u := Pigeonhole(5, 4)
	if u.Status != StatusUnsat {
		t.Fatal("PHP(5,4) should be marked UNSAT")
	}
	if solve(t, u.Formula) != sat.Unsat {
		t.Fatal("PHP(5,4) solver disagrees")
	}
	s := Pigeonhole(4, 4)
	if s.Status != StatusSat || solve(t, s.Formula) != sat.Sat {
		t.Fatal("PHP(4,4) should be SAT")
	}
}

func TestParityPlantedIsSat(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 5; i++ {
		inst := ParityChain(16, 20, 3, true, rng)
		if inst.Status != StatusSat {
			t.Fatal("planted parity not marked SAT")
		}
		if solve(t, inst.Formula) != sat.Sat {
			t.Fatal("planted parity unsolvable")
		}
	}
}

func TestLFSRStatuses(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	satInst := LFSRReach(8, 6, false, rng)
	if satInst.Status != StatusSat || solve(t, satInst.Formula) != sat.Sat {
		t.Fatalf("LFSR sat instance wrong: %v", satInst.Status)
	}
	rng = rand.New(rand.NewSource(4))
	unsatInst := LFSRReach(8, 6, true, rng)
	if unsatInst.Status != StatusUnsat || solve(t, unsatInst.Formula) != sat.Unsat {
		t.Fatalf("LFSR unsat instance wrong: %v", unsatInst.Status)
	}
}

func TestGraphColoringWellFormed(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	inst := GraphColoring(8, 3, 0.3, rng)
	if inst.Formula.NumVars != 24 {
		t.Fatalf("vars = %d", inst.Formula.NumVars)
	}
	st := solve(t, inst.Formula)
	if st == sat.Unknown {
		t.Fatal("small colouring should be decidable")
	}
}

func TestRandomKSATShape(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	inst := RandomKSAT(50, 3, 4.26, rng)
	if len(inst.Formula.Clauses) != 213 {
		t.Fatalf("clauses = %d, want 213", len(inst.Formula.Clauses))
	}
	for _, c := range inst.Formula.Clauses {
		if len(c) != 3 {
			t.Fatal("non-ternary clause in 3-SAT")
		}
		seen := map[cnf.Var]bool{}
		for _, l := range c {
			if seen[l.Var()] {
				t.Fatal("repeated variable in clause")
			}
			seen[l.Var()] = true
		}
	}
}

func TestSuitePopulation(t *testing.T) {
	insts := Suite(DefaultSuiteConfig())
	if len(insts) != 24 {
		t.Fatalf("suite size = %d, want 24", len(insts))
	}
	names := map[string]bool{}
	for _, in := range insts {
		if names[in.Name] {
			t.Fatalf("duplicate instance name %q", in.Name)
		}
		names[in.Name] = true
		if in.Formula.NumVars == 0 || len(in.Formula.Clauses) == 0 {
			t.Fatalf("instance %q empty", in.Name)
		}
	}
	// Ground truths in the suite must agree with the solver. Large UNSAT
	// members (the bigger pigeonholes) are deliberately hard — they exist
	// to produce timeouts in the PAR-2 benchmark — so skip them here.
	for _, in := range insts {
		if in.Status == StatusUnknown || in.Formula.NumVars > 120 {
			continue
		}
		if in.Status == StatusUnsat && in.Formula.NumVars > 60 {
			continue
		}
		got := solve(t, in.Formula)
		want := sat.Sat
		if in.Status == StatusUnsat {
			want = sat.Unsat
		}
		if got != want {
			t.Fatalf("instance %q: solver %v, ground truth %v", in.Name, got, in.Status)
		}
	}
}

func TestSuiteDeterministic(t *testing.T) {
	a := Suite(DefaultSuiteConfig())
	b := Suite(DefaultSuiteConfig())
	for i := range a {
		if a[i].Name != b[i].Name || len(a[i].Formula.Clauses) != len(b[i].Formula.Clauses) {
			t.Fatal("suite not deterministic")
		}
	}
}

func TestMutilatedChessboard(t *testing.T) {
	for _, n := range []int{2, 4, 6} {
		inst := MutilatedChessboard(n)
		if inst.Status != StatusUnsat {
			t.Fatalf("n=%d not marked UNSAT", n)
		}
		if n <= 4 {
			if solve(t, inst.Formula) != sat.Unsat {
				t.Fatalf("n=%d solver disagrees", n)
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("n=1 accepted")
		}
	}()
	MutilatedChessboard(1)
}
