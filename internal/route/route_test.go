package route

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/cnf"
	"repro/internal/proof"
	"repro/internal/sat"
)

func lit(v int, neg bool) cnf.Lit { return cnf.MkLit(cnf.Var(v), neg) }

func TestClassifyFragments(t *testing.T) {
	bin := cnf.NewFormula(3)
	bin.AddClause(lit(0, false), lit(1, true))
	bin.AddClause(lit(2, false))
	if frag, tl := Classify(bin); frag != Binary || tl.Binary != 2 || tl.Units != 1 {
		t.Fatalf("binary: frag=%v tally=%+v", frag, tl)
	}

	horn := cnf.NewFormula(3)
	horn.AddClause(lit(0, true), lit(1, true), lit(2, false))
	horn.AddClause(lit(0, false))
	if frag, _ := Classify(horn); frag != Horn {
		t.Fatalf("horn: frag=%v", frag)
	}

	anti := cnf.NewFormula(3)
	anti.AddClause(lit(0, false), lit(1, false), lit(2, true))
	anti.AddClause(lit(0, false), lit(1, false), lit(2, false))
	if frag, _ := Classify(anti); frag != AntiHorn {
		t.Fatalf("antihorn: frag=%v", frag)
	}

	xor := cnf.NewFormula(3)
	xor.AddXor(true, 0, 1, 2)
	if frag, _ := Classify(xor); frag != AffineXor {
		t.Fatalf("xor: frag=%v", frag)
	}

	mixed := cnf.NewFormula(4)
	mixed.AddClause(lit(0, false), lit(1, false), lit(2, true))
	mixed.AddClause(lit(0, true), lit(1, true), lit(2, false))
	mixed.AddClause(lit(1, false), lit(2, false), lit(3, false))
	if frag, tl := Classify(mixed); frag != Mixed {
		t.Fatalf("mixed: frag=%v tally=%+v", frag, tl)
	}

	blend := cnf.NewFormula(3)
	blend.AddClause(lit(0, false), lit(1, false))
	blend.AddXor(true, 0, 2)
	if frag, _ := Classify(blend); frag != Mixed {
		t.Fatal("or/xor blend must classify Mixed")
	}
}

// Near-fragment tallies must expose how close a Mixed instance is.
func TestClassifyNearFragmentTally(t *testing.T) {
	f := cnf.NewFormula(5)
	for i := 0; i < 9; i++ {
		f.AddClause(lit(i%5, true), lit((i+1)%5, true), lit((i+2)%5, false))
	}
	f.AddClause(lit(0, false), lit(1, false), lit(2, false)) // the one non-Horn clause
	frag, tl := Classify(f)
	if frag != Mixed || tl.Horn != 9 || tl.Clauses != 10 {
		t.Fatalf("frag=%v tally=%+v", frag, tl)
	}
}

func checkVerdict(t *testing.T, f *cnf.Formula, v *Verdict) {
	t.Helper()
	switch v.Status {
	case sat.Sat:
		if !f.Eval(func(vr cnf.Var) bool { return v.Model[vr] }) {
			t.Fatalf("routed model does not satisfy the formula (fragment %v)", v.Fragment)
		}
	case sat.Unsat:
		res, err := proof.CheckText(f, bytes.NewReader(v.Proof))
		if err != nil {
			t.Fatalf("routed proof rejected: %v (proof %q)", err, v.Proof)
		}
		if !res.Verified {
			t.Fatalf("routed proof did not verify (fragment %v, proof %q)", v.Fragment, v.Proof)
		}
	default:
		t.Fatalf("routed verdict is Unknown")
	}
}

func cdclStatus(t *testing.T, f *cnf.Formula) sat.Status {
	t.Helper()
	s := sat.NewDefault()
	s.AddFormula(f)
	st := s.Solve()
	if st == sat.Unknown {
		t.Fatal("CDCL returned Unknown on a tiny instance")
	}
	return st
}

// Differential: routed 2SAT verdicts must match CDCL, models must
// verify, UNSAT proofs must check.
func TestRoute2SATDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	for trial := 0; trial < 120; trial++ {
		nVars := 2 + rng.Intn(10)
		f := cnf.NewFormula(nVars)
		for i := 0; i < 1+rng.Intn(4*nVars); i++ {
			a := lit(rng.Intn(nVars), rng.Intn(2) == 1)
			if rng.Intn(8) == 0 {
				f.AddClause(a)
				continue
			}
			b := lit(rng.Intn(nVars), rng.Intn(2) == 1)
			if a.Var() == b.Var() {
				continue
			}
			f.AddClause(a, b)
		}
		frag, _ := Classify(f)
		if frag != Binary {
			t.Fatalf("trial %d: classified %v", trial, frag)
		}
		v, ok := Solve(f, frag)
		if !ok {
			t.Fatalf("trial %d: solver declined a pure 2SAT instance", trial)
		}
		if want := cdclStatus(t, f); v.Status != want {
			t.Fatalf("trial %d: routed %v, CDCL %v", trial, v.Status, want)
		}
		checkVerdict(t, f, v)
	}
}

// Differential: Horn and anti-Horn.
func TestRouteHornDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	for trial := 0; trial < 120; trial++ {
		anti := trial%2 == 1
		nVars := 2 + rng.Intn(10)
		f := cnf.NewFormula(nVars)
		for i := 0; i < 1+rng.Intn(4*nVars); i++ {
			n := 1 + rng.Intn(4)
			var c []cnf.Lit
			headAt := rng.Intn(n + 1) // n means "no head"
			for j := 0; j < n; j++ {
				v := rng.Intn(nVars)
				c = append(c, lit(v, (j != headAt) != anti))
			}
			f.AddClause(c...)
		}
		want := Horn
		if anti {
			want = AntiHorn
		}
		frag, _ := Classify(f)
		// Degenerate draws (all-unit clauses) may classify as Binary
		// first; both routes must agree with CDCL either way.
		if frag != want && frag != Binary {
			t.Fatalf("trial %d: classified %v, want %v", trial, frag, want)
		}
		v, ok := Solve(f, frag)
		if !ok {
			t.Fatalf("trial %d: solver declined a %v instance", trial, frag)
		}
		if wantSt := cdclStatus(t, f); v.Status != wantSt {
			t.Fatalf("trial %d (%v): routed %v, CDCL %v", trial, frag, v.Status, wantSt)
		}
		checkVerdict(t, f, v)
	}
}

// Differential: pure XOR systems against brute force.
func TestRouteXorDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	for trial := 0; trial < 120; trial++ {
		nVars := 2 + rng.Intn(8)
		f := cnf.NewFormula(nVars)
		for i := 0; i < 1+rng.Intn(2*nVars); i++ {
			var vars []cnf.Var
			for j := 0; j < 1+rng.Intn(4); j++ {
				vars = append(vars, cnf.Var(rng.Intn(nVars)))
			}
			f.AddXor(rng.Intn(2) == 1, vars...)
		}
		frag, _ := Classify(f)
		if frag != AffineXor {
			t.Fatalf("trial %d: classified %v", trial, frag)
		}
		v, ok := Solve(f, frag)
		if !ok {
			t.Fatal("solver declined a pure XOR system")
		}
		brute := sat.Unsat
		for mask := 0; mask < 1<<uint(nVars); mask++ {
			if f.Eval(func(vr cnf.Var) bool { return mask>>uint(vr)&1 == 1 }) {
				brute = sat.Sat
				break
			}
		}
		if v.Status != brute {
			t.Fatalf("trial %d: routed %v, brute force %v", trial, v.Status, brute)
		}
		checkVerdict(t, f, v)
	}
}

func TestRouteEmptyClauseIsUnsat(t *testing.T) {
	f := cnf.NewFormula(2)
	f.AddClause(lit(0, false), lit(1, false))
	f.Clauses = append(f.Clauses, cnf.Clause{})
	frag, tl := Classify(f)
	if tl.Empty != 1 {
		t.Fatalf("tally = %+v", tl)
	}
	v, ok := Solve(f, frag)
	if !ok || v.Status != sat.Unsat {
		t.Fatalf("empty clause not refuted: ok=%t v=%+v", ok, v)
	}
	checkVerdict(t, f, v)
}

func TestRouteEmptyFormulaIsSat(t *testing.T) {
	f := cnf.NewFormula(3)
	v, _, ok := Decide(f)
	if !ok || v.Status != sat.Sat {
		t.Fatalf("empty formula: ok=%t v=%+v", ok, v)
	}
	checkVerdict(t, f, v)
}

func TestRouteMixedDeclines(t *testing.T) {
	f := cnf.NewFormula(4)
	f.AddClause(lit(0, false), lit(1, false), lit(2, true))
	f.AddClause(lit(0, true), lit(1, true), lit(2, false))
	f.AddClause(lit(1, false), lit(2, false), lit(3, false))
	if _, _, ok := Decide(f); ok {
		t.Fatal("Mixed formula must not be routed")
	}
	if _, ok := Solve(f, Mixed); ok {
		t.Fatal("Solve(Mixed) must decline")
	}
}

// Tautologies and repeated literals must not break the solvers.
func TestRouteDegenerateClauses(t *testing.T) {
	f := cnf.NewFormula(2)
	f.AddClause(lit(0, false), lit(0, true)) // tautology
	f.AddClause(lit(1, true), lit(1, true))  // repeated literal
	v, _, ok := Decide(f)
	if !ok || v.Status != sat.Sat {
		t.Fatalf("degenerate: ok=%t v=%+v", ok, v)
	}
	checkVerdict(t, f, v)
}

// FuzzClassify feeds arbitrary byte strings decoded as clause soup into
// the classifier and solvers: nothing may panic, and any verdict the
// router does emit must be verifiable.
func FuzzClassify(f *testing.F) {
	f.Add([]byte{1, 2, 0, 3, 4, 5, 0}, uint8(4))
	f.Add([]byte{0, 0, 0}, uint8(2))
	f.Add([]byte{7, 7, 7, 0, 255, 1}, uint8(3))
	f.Fuzz(func(t *testing.T, data []byte, nv uint8) {
		nVars := int(nv)%12 + 1
		form := cnf.NewFormula(nVars)
		var cur []cnf.Lit
		xorMode := false
		for _, b := range data {
			if b == 0 {
				if xorMode {
					var vars []cnf.Var
					for _, l := range cur {
						vars = append(vars, l.Var())
					}
					form.AddXor(len(cur)%2 == 1, vars...)
				} else {
					form.Clauses = append(form.Clauses, cnf.Clause(cur).Clone())
				}
				cur = cur[:0]
				xorMode = false
				continue
			}
			if b == 255 {
				xorMode = true
				continue
			}
			cur = append(cur, lit(int(b)%nVars, b&64 != 0))
		}
		frag, tally := Classify(form)
		if tally.Clauses != len(form.Clauses) || tally.Xors != len(form.Xors) {
			t.Fatalf("tally miscount: %+v", tally)
		}
		v, ok := Solve(form, frag)
		if !ok {
			return
		}
		checkVerdict(t, form, v)
		// Routed verdicts must agree with CDCL whenever the formula has
		// no XORs (the reference solver profile here is CNF-only).
		if len(form.Xors) == 0 {
			if want := cdclStatus(t, form); v.Status != want {
				t.Fatalf("routed %v, CDCL %v", v.Status, want)
			}
		}
	})
}
