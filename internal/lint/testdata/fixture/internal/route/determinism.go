// Package route is a lint fixture: its import path ends in
// internal/route, so the determinism analyzer treats it as a target —
// the fragment router sits on the engine's provenance-tracked SAT path,
// so a routed verdict (and the tie-breaks inside the polynomial solvers)
// must replay bit-identically from the configured seed. The NewRNG
// routing rule applies here too: the router may not construct its own
// generators.
package route

import (
	"math/rand"
	"sort"
	"time"
)

// badTieBreak breaks a fragment-classification tie on the global source:
// two identical runs could route the same residue differently.
func badTieBreak(n int) int {
	return rand.Intn(n) // want determinism "global math/rand source"
}

// badLocalRNG seeds its own generator instead of going through
// core.NewRNG, so the seed does not derive from the run configuration.
func badLocalRNG(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed)) // want determinism "core.NewRNG" determinism "core.NewRNG"
}

// badRouteClock stamps the verdict with the wall clock inside the
// decision path.
func badRouteClock() int64 {
	return time.Now().UnixNano() // want determinism "time.Now"
}

// timingOnly carries a reasoned suppression: the route_ns metric is
// observability, never fact ordering.
func timingOnly() time.Time {
	//lint:ignore determinism timing only: feeds the route_ns metric, never ordering
	return time.Now()
}

// badFragmentOrder emits per-fragment tallies in map order: the routed
// counter stream would differ between identical runs.
func badFragmentOrder(tallies map[string]int, emit func(string, int)) {
	for f, n := range tallies { // want determinism "map iteration order"
		emit(f, n)
	}
}

// sortedFragmentOrder restores a deterministic emission order.
func sortedFragmentOrder(tallies map[string]int, emit func(string, int)) {
	keys := make([]string, 0, len(tallies))
	for k := range tallies {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		emit(k, tallies[k])
	}
}
