// Package bitops is a lint fixture for the gf2pack analyzer's outside
// rule: raw word-packed bit arithmetic anywhere but internal/gf2 must go
// through the gf2 helpers.
package bitops

import "math/bits"

func badShiftIndex(row []uint64, c int) {
	row[c>>6] ^= 1 << (uint(c) & 63) // want gf2pack "raw word-index"
}

func badDivIndex(row []uint64, c int) bool {
	return row[c/64]>>(uint(c)%64)&1 == 1 // want gf2pack "raw word-index"
}

func badWordCount(n int) int {
	return (n + 63) / 64 // want gf2pack "raw packed-row sizing"
}

func badReconstruct(row []uint64) int {
	for w, word := range row {
		if word != 0 {
			return w*64 + bits.TrailingZeros64(word) // want gf2pack "raw bit-position reconstruction"
		}
	}
	return -1
}

func badStripLow(row []uint64, c int) []uint64 {
	return row[c>>6:] // want gf2pack "raw lead-word strip slicing"
}

func badStripHigh(row []uint64, c int) []uint64 {
	return row[:c/64] // want gf2pack "raw lead-word strip slicing"
}

func badStripMax(row []uint64, c int) []uint64 {
	return row[0:2:(c >> 6)] // want gf2pack "raw lead-word strip slicing"
}

// plainDivision has nothing to do with bit packing: clean.
func plainDivision(n int) int {
	return n / 2
}

// plainSlice uses ordinary bounds, not word-index arithmetic: clean.
func plainSlice(row []uint64, n int) []uint64 {
	return row[:n/2]
}
