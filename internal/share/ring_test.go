package share_test

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/cnf"
	"repro/internal/sat"
	"repro/internal/share"
)

// The endpoint must keep satisfying the solver's exchange hook.
var _ sat.ClauseExchange = (*share.Endpoint)(nil)

func mkLits(vs ...uint32) []cnf.Lit {
	out := make([]cnf.Lit, len(vs))
	for i, v := range vs {
		out[i] = cnf.MkLit(cnf.Var(v), false)
	}
	return out
}

func TestRingRoundTrip(t *testing.T) {
	r := share.NewRing(16, 4)
	a, b := r.Endpoint(), r.Endpoint()

	if !a.Export(mkLits(1, 2, 3), 2) {
		t.Fatal("export rejected")
	}
	var got [][]cnf.Lit
	b.Drain(func(lits []cnf.Lit) {
		got = append(got, append([]cnf.Lit(nil), lits...))
	})
	if len(got) != 1 || len(got[0]) != 3 {
		t.Fatalf("drain got %v", got)
	}
	want := mkLits(1, 2, 3)
	for i, l := range want {
		if got[0][i] != l {
			t.Fatalf("lit %d: got %v want %v", i, got[0][i], l)
		}
	}

	// The exporter must not re-import its own clause.
	a.Drain(func([]cnf.Lit) { t.Fatal("own clause delivered back") })
	if a.SkippedOwn != 1 {
		t.Fatalf("SkippedOwn = %d, want 1", a.SkippedOwn)
	}
	// Draining again delivers nothing new.
	b.Drain(func([]cnf.Lit) { t.Fatal("stale clause re-delivered") })
}

func TestRingLBDAndWidthCaps(t *testing.T) {
	r := share.NewRing(16, 3)
	a, b := r.Endpoint(), r.Endpoint()

	if a.Export(mkLits(1, 2), 4) {
		t.Fatal("clause above the LBD cap accepted")
	}
	wide := make([]cnf.Lit, share.MaxLits+1)
	for i := range wide {
		wide[i] = cnf.MkLit(cnf.Var(uint32(i)), false)
	}
	if a.Export(wide, 2) {
		t.Fatal("clause above the width cap accepted")
	}
	if a.Export(nil, 1) {
		t.Fatal("empty clause accepted")
	}
	if !a.Export(mkLits(1, 2), 3) {
		t.Fatal("clause at the LBD cap rejected")
	}
	_, dropLBD, dropWide, _ := r.Counters()
	if dropLBD != 1 || dropWide != 2 {
		t.Fatalf("drops lbd=%d wide=%d, want 1 and 2", dropLBD, dropWide)
	}
	n := 0
	b.Drain(func([]cnf.Lit) { n++ })
	if n != 1 {
		t.Fatalf("delivered %d clauses, want 1", n)
	}
}

// A consumer that attaches late or drains rarely gets lapped: the ring
// overwrites old entries and the cursor jumps forward, counting the loss.
func TestRingWraparound(t *testing.T) {
	r := share.NewRing(8, 10)
	slots := r.Slots()
	prod := r.Endpoint()
	slow := r.Endpoint()

	total := 5*slots + 3
	for i := 0; i < total; i++ {
		if !prod.Export(mkLits(uint32(i%7), uint32(i%7)+8), 1) {
			t.Fatalf("export %d rejected", i)
		}
	}
	n := 0
	slow.Drain(func([]cnf.Lit) { n++ })
	if n > slots {
		t.Fatalf("delivered %d clauses from a %d-slot ring", n, slots)
	}
	if slow.SkippedLap == 0 {
		t.Fatal("no lapped entries counted after overflow")
	}
	if got := n + int(slow.SkippedLap); got != total {
		t.Fatalf("delivered+skipped = %d, want %d", got, total)
	}
	// Epoch/ticket continuity: the next publication is seen exactly once.
	if !prod.Export(mkLits(30, 31), 1) {
		t.Fatal("post-wrap export rejected")
	}
	n = 0
	slow.Drain(func([]cnf.Lit) { n++ })
	if n != 1 {
		t.Fatalf("post-wrap drain delivered %d, want 1", n)
	}
}

// Hammer the ring from several producer/consumer goroutines. Run under
// -race this checks the seqlock protocol's memory-model cleanliness; the
// invariant checked per delivery is payload coherence (every delivered
// clause is exactly one that some producer published).
func TestRingConcurrent(t *testing.T) {
	r := share.NewRing(64, 10)
	const producers = 4
	const perProducer = 2000

	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		ep := r.Endpoint()
		wg.Add(1)
		go func(tag uint32) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				// Encode the producer tag in every literal so a torn read
				// would be visible as a mixed clause.
				ep.Export(mkLits(tag*1000+uint32(i%17), tag*1000+uint32(i%17)+100), 1)
			}
		}(uint32(p + 1))
	}

	var consumed atomic.Uint64
	var cwg sync.WaitGroup
	done := make(chan struct{})
	for c := 0; c < 2; c++ {
		ep := r.Endpoint()
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			for {
				ep.Drain(func(lits []cnf.Lit) {
					consumed.Add(1)
					if len(lits) != 2 {
						t.Errorf("torn clause width %d", len(lits))
						return
					}
					a, b := uint32(lits[0].Var())/1000, (uint32(lits[1].Var())-100)/1000
					if a != b {
						t.Errorf("torn clause: lits from producers %d and %d", a, b)
					}
				})
				select {
				case <-done:
					// One final drain so nothing published before the
					// producers finished is missed.
					ep.Drain(func([]cnf.Lit) {})
					return
				default:
				}
			}
		}()
	}
	wg.Wait()
	close(done)
	cwg.Wait()

	published, _, _, dropRace := r.Counters()
	if published+dropRace != producers*perProducer {
		t.Fatalf("published %d + raced %d != %d offered", published, dropRace, producers*perProducer)
	}
	if published == 0 {
		t.Fatal("nothing published")
	}
	if consumed.Load() == 0 {
		t.Fatal("consumers delivered nothing")
	}
}
