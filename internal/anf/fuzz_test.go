package anf

import (
	"strings"
	"testing"
)

// FuzzParsePoly checks that the parser never panics and that everything
// it accepts survives a print/parse round trip.
func FuzzParsePoly(f *testing.F) {
	for _, seed := range []string{
		"x1*x2 + x3 + 1",
		"0",
		"1",
		"x0",
		"x4294967295",
		"x1 + x1",
		"  x2 * x3  +  1 ",
		"x1*x2*x3*x4*x5",
		"x1 ⊕ x2",
		"+ x1",
		"x1 +",
		"y1",
		"x",
		"x1**x2",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		p, err := ParsePoly(s)
		if err != nil {
			return
		}
		back, err := ParsePoly(p.String())
		if err != nil {
			t.Fatalf("printed form %q of %q does not parse: %v", p.String(), s, err)
		}
		if !back.Equal(p) {
			t.Fatalf("round trip changed %q: %q vs %q", s, p.String(), back.String())
		}
	})
}

// FuzzReadSystem checks that the system reader — the entry point for
// service payloads — never panics, and that accepted systems survive a
// write/read round trip with the same equation count and variable space.
func FuzzReadSystem(f *testing.F) {
	for _, seed := range []string{
		"x1*x2 + x3 + 1\nx1 + x3\n",
		"# comment\nx1\n\nc more\nx2 + 1\n",
		"x1 +\n",
		"x99999999999\n",
		"x16777217\n", // MaxVarIndex + 1
		"\xff\xfex1\n",
		"0\n1\n",
		strings.Repeat("x1 + ", 50) + "1\n",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		sys, err := ReadSystem(strings.NewReader(s))
		if err != nil {
			return
		}
		var sb strings.Builder
		if err := WriteSystem(&sb, sys); err != nil {
			t.Fatalf("write failed: %v", err)
		}
		back, err := ReadSystem(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("round trip does not parse: %v", err)
		}
		if back.Len() != sys.Len() || back.NumVars() != sys.NumVars() {
			t.Fatalf("round trip changed shape: %d/%d eqs, %d/%d vars",
				sys.Len(), back.Len(), sys.NumVars(), back.NumVars())
		}
	})
}

// TestParseRejectsMalformed pins the hardening contract for the ANF
// reader: out-of-range indices and non-UTF-8 input error out, never
// panic, never produce a system with an absurd variable space.
func TestParseRejectsMalformed(t *testing.T) {
	bad := []struct{ name, in string }{
		{"index beyond MaxVarIndex", "x16777217\n"},
		{"huge index", "x4294967295\n"},
		{"overflowing index", "x99999999999999999999\n"},
		{"non-UTF-8", "\xff\xfex1\n"},
		{"empty term", "x1 +\n"},
		{"bad factor", "x1*y2\n"},
	}
	for _, tc := range bad {
		if _, err := ReadSystem(strings.NewReader(tc.in)); err == nil {
			t.Errorf("%s: accepted %q", tc.name, tc.in)
		}
	}
	if sys, err := ReadSystem(strings.NewReader("x16777216\n")); err != nil {
		t.Errorf("index at MaxVarIndex rejected: %v", err)
	} else if sys.NumVars() != MaxVarIndex+1 {
		t.Errorf("NumVars = %d, want %d", sys.NumVars(), MaxVarIndex+1)
	}
}
