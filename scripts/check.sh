#!/bin/sh
# check.sh — the full local gate: vet, build, race-enabled tests, and a
# one-iteration smoke pass over the perf-critical benchmarks. CI and
# pre-commit runs should both go through `make check`, which calls this.
set -eu

cd "$(dirname "$0")/.."

echo "==> go vet"
go vet ./...

echo "==> go build"
go build ./...

echo "==> build bosphorusd"
go build -o /tmp/bosphorusd.check ./cmd/bosphorusd
rm -f /tmp/bosphorusd.check

echo "==> go test -race"
go test -race ./...

echo "==> server tests (-race, uncached)"
go test -race -count=1 ./internal/server

echo "==> bosphorusd e2e smoke (start, solve, backpressure, drain)"
go test -count=1 -run TestEndToEndSmoke ./cmd/bosphorusd

echo "==> bench smoke (1 iteration per benchmark)"
go test -run '^$' -bench 'XL|RREF|ElimLin|PickElimVar' -benchtime 1x \
	./internal/anf ./internal/core ./internal/gf2

echo "==> OK"
