package sat

import (
	"math/rand"
	"testing"

	"repro/internal/cnf"
)

func TestEnumerateAllModels(t *testing.T) {
	// x0 ∨ x1 has exactly 3 models over 2 variables.
	s := NewDefault()
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(cnf.MkLit(a, false), cnf.MkLit(b, false))
	models := s.EnumerateModels(2, 0)
	if len(models) != 3 {
		t.Fatalf("models = %d, want 3", len(models))
	}
	seen := map[[2]bool]bool{}
	for _, m := range models {
		seen[[2]bool{m[0], m[1]}] = true
	}
	if seen[[2]bool{false, false}] {
		t.Fatal("non-model enumerated")
	}
}

func TestEnumerateCap(t *testing.T) {
	s := NewDefault()
	for i := 0; i < 4; i++ {
		s.NewVar()
	}
	s.AddClause(cnf.MkLit(0, false), cnf.MkLit(1, false))
	models := s.EnumerateModels(4, 5)
	if len(models) != 5 {
		t.Fatalf("cap ignored: %d models", len(models))
	}
}

func TestEnumerateProjection(t *testing.T) {
	// Projection onto x0 only: x0 free, x1 tied to x0 → 2 projected models.
	s := NewDefault()
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(cnf.MkLit(a, true), cnf.MkLit(b, false))
	s.AddClause(cnf.MkLit(a, false), cnf.MkLit(b, true))
	if n := s.CountModels(1, 0); n != 2 {
		t.Fatalf("projected count = %d, want 2", n)
	}
}

func TestEnumerateUnsat(t *testing.T) {
	s := NewDefault()
	a := s.NewVar()
	s.AddClause(cnf.MkLit(a, false))
	s.AddClause(cnf.MkLit(a, true))
	if models := s.EnumerateModels(1, 0); len(models) != 0 {
		t.Fatalf("UNSAT enumerated %d models", len(models))
	}
}

// Differential: enumeration count equals brute-force count on random
// formulas, for both the full space and projections.
func TestQuickEnumerateVsBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 40; trial++ {
		nVars := 3 + rng.Intn(5)
		f := randomFormula(rng, nVars, 2+rng.Intn(3*nVars), 3)
		want := 0
		for mask := 0; mask < 1<<uint(nVars); mask++ {
			if f.Eval(func(v cnf.Var) bool { return mask>>uint(v)&1 == 1 }) {
				want++
			}
		}
		s := New(DefaultOptions(ProfileMiniSat))
		s.AddFormula(f)
		s.ensureVars(nVars)
		got := s.CountModels(nVars, 0)
		if got != want {
			t.Fatalf("trial %d: enumerated %d, brute force %d", trial, got, want)
		}
	}
}
