package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// GF2PackAnalyzer confines word-packed GF(2) bit arithmetic to
// internal/gf2. Rows are []uint64 with 64 columns per word; the packing
// invariants (word index c/64, bit index c%64, tail-word masking) live in
// gf2's named helpers (Words, XorBit, TestBit, FirstSetBit, ForEachSetBit,
// lastWordMask). Hand-rolled copies elsewhere are how the tail-word bug
// class enters — so:
//
//   - Outside internal/gf2: indexing with c>>6 or c/64, shift amounts
//     c&63 or c%64 paired with such an index, word-count sizing
//     (n+63)/64, bit-position reconstruction w*64+TrailingZeros64, and
//     strip slicing with word-index bounds (row[c>>6:], row[:c/64] — the
//     lead-word tracking idiom of the blocked M4R kernel) are all
//     rejected; call the gf2 helpers instead.
//   - Inside internal/gf2: tail-word masks derived from the column count
//     must go through lastWordMask, not be recomputed inline.
var GF2PackAnalyzer = &Analyzer{
	Name: "gf2pack",
	Doc:  "word-packed GF(2) bit arithmetic is confined to internal/gf2's named helpers",
	Run:  runGF2Pack,
}

func runGF2Pack(pass *Pass) {
	if pkgPathHas(pass.Pkg, "internal/gf2") {
		runGF2PackInside(pass)
		return
	}
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.IndexExpr:
				if isWordIndexExpr(pass, n.Index) {
					pass.Reportf(n.Pos(),
						"raw word-index bit arithmetic outside internal/gf2; use gf2.XorBit/TestBit/SetBit")
					return false // the index's own /64 would double-report
				}
			case *ast.SliceExpr:
				// Lead-word strip bounds: slicing a packed row at a
				// column-derived word offset (the skip-zero-prefix and
				// cache-strip idiom inside gf2's blocked elimination) leaks
				// the packing layout when done anywhere else.
				for _, b := range []ast.Expr{n.Low, n.High, n.Max} {
					if b != nil && isWordIndexExpr(pass, unparen(b)) {
						pass.Reportf(n.Pos(),
							"raw lead-word strip slicing outside internal/gf2; use gf2's row accessors")
						return false
					}
				}
			case *ast.BinaryExpr:
				if isWordCountExpr(pass, n) {
					pass.Reportf(n.Pos(),
						"raw packed-row sizing outside internal/gf2; use gf2.Words")
					return false
				}
				if isBitReconstructionExpr(pass, n) {
					pass.Reportf(n.Pos(),
						"raw bit-position reconstruction outside internal/gf2; use gf2.FirstSetBit/ForEachSetBit")
					return false
				}
			}
			return true
		})
	}
}

// isWordIndexExpr matches c>>6 and c/64 used as an index.
func isWordIndexExpr(pass *Pass, idx ast.Expr) bool {
	bin, ok := idx.(*ast.BinaryExpr)
	if !ok {
		return false
	}
	switch bin.Op {
	case token.SHR:
		v, ok := intConstValue(pass.Pkg, bin.Y)
		return ok && v == 6
	case token.QUO:
		v, ok := intConstValue(pass.Pkg, bin.Y)
		return ok && v == 64
	}
	return false
}

// isWordCountExpr matches (n+63)/64.
func isWordCountExpr(pass *Pass, bin *ast.BinaryExpr) bool {
	if bin.Op != token.QUO {
		return false
	}
	if v, ok := intConstValue(pass.Pkg, bin.Y); !ok || v != 64 {
		return false
	}
	inner, ok := unparen(bin.X).(*ast.BinaryExpr)
	if !ok || inner.Op != token.ADD {
		return false
	}
	if v, ok := intConstValue(pass.Pkg, inner.Y); ok && v == 63 {
		return true
	}
	if v, ok := intConstValue(pass.Pkg, inner.X); ok && v == 63 {
		return true
	}
	return false
}

// isBitReconstructionExpr matches w*64 + <bits call>(...) (and the
// mirrored operand order).
func isBitReconstructionExpr(pass *Pass, bin *ast.BinaryExpr) bool {
	if bin.Op != token.ADD {
		return false
	}
	isMul64 := func(e ast.Expr) bool {
		m, ok := unparen(e).(*ast.BinaryExpr)
		if !ok || m.Op != token.MUL {
			return false
		}
		if v, ok := intConstValue(pass.Pkg, m.Y); ok && v == 64 {
			return true
		}
		v, ok := intConstValue(pass.Pkg, m.X)
		return ok && v == 64
	}
	isBitsCall := func(e ast.Expr) bool {
		call, ok := unparen(e).(*ast.CallExpr)
		if !ok {
			return false
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return false
		}
		return isPkgIdent(pass.Pkg, sel.X, "math/bits")
	}
	return (isMul64(bin.X) && isBitsCall(bin.Y)) || (isMul64(bin.Y) && isBitsCall(bin.X))
}

// runGF2PackInside checks the one discipline internal/gf2 itself owes:
// tail-word masks derived from the column count go through lastWordMask.
func runGF2PackInside(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		eachFuncBody(file, func(fd *ast.FuncDecl, body *ast.BlockStmt) {
			if fd != nil && fd.Name.Name == "lastWordMask" {
				return // the named helper itself
			}
			ast.Inspect(body, func(n ast.Node) bool {
				bin, ok := n.(*ast.BinaryExpr)
				if !ok {
					return true
				}
				if bin.Op != token.REM && bin.Op != token.AND {
					return true
				}
				rhsIsWordWidth := false
				if v, ok := intConstValue(pass.Pkg, bin.Y); ok && (v == 64 || v == 63) {
					rhsIsWordWidth = true
				}
				if !rhsIsWordWidth {
					return true
				}
				if mentionsCols(bin.X) {
					pass.Reportf(bin.Pos(),
						"inline tail-word mask arithmetic on the column count; use lastWordMask")
				}
				return true
			})
		})
	}
}

// mentionsCols reports whether the expression references a cols-named
// identifier or selector — the signature of tail-word computations.
func mentionsCols(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && strings.EqualFold(id.Name, "cols") {
			found = true
			return false
		}
		return true
	})
	return found
}

// unparen strips parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
