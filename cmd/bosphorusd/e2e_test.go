package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/cnf"
	"repro/internal/satgen"
)

// TestEndToEndSmoke builds the real binary, starts it on a free port, and
// drives the acceptance behaviors over actual HTTP: concurrent jobs
// complete, a cancelled job frees its worker within 2 seconds, a full
// queue answers 429, the metrics counters match the jobs submitted, and
// SIGTERM drains cleanly.
func TestEndToEndSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the daemon binary")
	}
	bin := filepath.Join(t.TempDir(), "bosphorusd")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	cmd := exec.Command(bin,
		"-listen", "127.0.0.1:0",
		"-solve-workers", "1",
		"-queue", "1",
		"-default-timeout", "5s",
		"-drain-timeout", "15s",
	)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// The first stdout line names the resolved address.
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		t.Fatalf("no startup line; stderr:\n%s", stderr.String())
	}
	line := sc.Text()
	addr := line[strings.LastIndex(line, " ")+1:]
	base := "http://" + addr
	go func() { // keep draining stdout so the process never blocks on it
		for sc.Scan() {
		}
	}()

	waitHealthy(t, base)

	easy := `{"format":"anf","input":"x1*x2 + x1 + x2\nx1*x3 + x2\nx1 + x3\n"`
	post := func(body string) (*http.Response, map[string]any) {
		t.Helper()
		resp, err := http.Post(base+"/solve", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST /solve: %v", err)
		}
		defer resp.Body.Close()
		var out map[string]any
		if resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				t.Fatalf("decode: %v", err)
			}
		}
		return resp, out
	}

	// 1. One ANF job: 200 with learnt facts.
	resp, out := post(easy + `}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("easy job status = %d", resp.StatusCode)
	}
	if facts, ok := out["facts"].(map[string]any); !ok || len(facts) == 0 {
		t.Fatalf("easy job returned no facts: %v", out)
	}

	// 2. A hard job with a short deadline is cancelled and frees the single
	// worker within 2 seconds.
	var php strings.Builder
	if err := cnf.WriteDimacs(&php, satgen.Pigeonhole(10, 9).Formula); err != nil {
		t.Fatal(err)
	}
	hardBody := func(seed, timeoutMS int) string {
		b, _ := json.Marshal(map[string]any{
			"format": "dimacs", "input": php.String(), "mode": "solve",
			"conflict_budget": int64(1) << 40, "timeout_ms": timeoutMS, "seed": seed,
		})
		return string(b)
	}
	start := time.Now()
	_, out = post(hardBody(1, 300))
	if got := out["status"]; got != "CANCELED" {
		t.Fatalf("hard job status = %v, want CANCELED", got)
	}
	start = time.Now()
	resp, _ = post(easy + `,"seed":7}`)
	if resp.StatusCode != http.StatusOK || time.Since(start) > 2*time.Second {
		t.Fatalf("worker not freed: follow-up status %d after %s", resp.StatusCode, time.Since(start))
	}

	// 3. Concurrent jobs all complete (distinct seeds dodge the cache).
	// With one worker and one queue slot, four simultaneous posts can
	// legitimately catch the queue momentarily full — 429 + Retry-After is
	// the documented transient answer, not a failure — so each job retries
	// briefly; what must hold is that every job eventually gets a 200.
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			deadline := time.Now().Add(5 * time.Second)
			for {
				r, o := post(easy + fmt.Sprintf(`,"seed":%d}`, 100+i))
				if r.StatusCode == http.StatusTooManyRequests && time.Now().Before(deadline) {
					time.Sleep(20 * time.Millisecond)
					continue
				}
				if r.StatusCode != http.StatusOK || o["status"] == "CANCELED" {
					t.Errorf("concurrent job %d: status %d / %v", i, r.StatusCode, o["status"])
				}
				return
			}
		}(i)
	}
	wg.Wait()

	// 4. Backpressure: keep the worker and the single queue slot saturated
	// with a stream of hard jobs, then overflow → 429 + Retry-After. Two
	// occupier goroutines each re-post the moment their previous job
	// returns (distinct seeds dodge the result cache), so the system stays
	// full even when a probe momentarily wins the race for a slot or the
	// solver finishes a job faster than its deadline. Probes use distinct
	// seeds too: a cached probe answer would bypass admission entirely.
	stop := make(chan struct{})
	var occupiers sync.WaitGroup
	for i := 0; i < 2; i++ {
		occupiers.Add(1)
		go func(i int) {
			defer occupiers.Done()
			for seed := 1000 * (i + 1); ; seed++ {
				select {
				case <-stop:
					return
				default:
				}
				post(hardBody(seed, 1500))
			}
		}(i)
	}
	got429 := false
	deadline := time.Now().Add(10 * time.Second)
	for seed := 99; time.Now().Before(deadline); seed++ {
		r, _ := post(hardBody(seed, 1500))
		if r.StatusCode == http.StatusTooManyRequests {
			if r.Header.Get("Retry-After") == "" {
				t.Error("429 without Retry-After")
			}
			got429 = true
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	close(stop)
	occupiers.Wait()
	if !got429 {
		t.Fatal("never saw 429 with worker and queue occupied")
	}

	// 5. A routed job: a single cubic monomial survives ANF preprocessing
	// (no units or equivalences to propagate), and its CNF image is one
	// Horn clause, so the fragment router decides it without CDCL.
	routedBody, _ := json.Marshal(map[string]any{
		"format": "anf", "input": "x1*x2*x3\n", "mode": "solve", "route": true,
	})
	_, out = post(string(routedBody))
	if got := out["status"]; got != "SAT" {
		t.Fatalf("routed job status = %v, want SAT", got)
	}
	if got := out["routed_via"]; got != "horn" {
		t.Fatalf("routed_via = %v, want horn", got)
	}

	// 6. Metrics reflect the submitted work.
	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var mb bytes.Buffer
	mb.ReadFrom(mresp.Body)
	mresp.Body.Close()
	metrics := mb.String()
	for _, want := range []string{
		"bosphorusd_jobs_accepted_total",
		"bosphorusd_jobs_rejected_total",
		"bosphorusd_jobs_canceled_total",
		"bosphorusd_facts_learnt_total",
		"bosphorusd_solve_seconds_count",
		`bosphorusd_routed_total{fragment="horn"}`,
		"bosphorusd_route_ns_bucket",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %s:\n%s", want, metrics)
		}
	}
	if v := counter(t, metrics, "bosphorusd_jobs_rejected_total"); v < 1 {
		t.Errorf("jobs_rejected = %d, want >= 1", v)
	}
	if v := counter(t, metrics, "bosphorusd_jobs_canceled_total"); v < 1 {
		t.Errorf("jobs_canceled = %d, want >= 1", v)
	}
	if v := counter(t, metrics, "bosphorusd_route_ns_count"); v < 1 {
		t.Errorf("route_ns_count = %d, want >= 1", v)
	}
	accepted := counter(t, metrics, "bosphorusd_jobs_accepted_total")
	completed := counter(t, metrics, "bosphorusd_jobs_completed_total")
	canceled := counter(t, metrics, "bosphorusd_jobs_canceled_total")
	if accepted != completed+canceled {
		t.Errorf("accepted (%d) != completed (%d) + canceled (%d)", accepted, completed, canceled)
	}

	// 7. SIGTERM drains: healthz flips to 503 and the process exits 0.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	waitErr := make(chan error, 1)
	go func() { waitErr <- cmd.Wait() }()
	select {
	case err := <-waitErr:
		if err != nil {
			t.Fatalf("daemon exited with %v; stderr:\n%s", err, stderr.String())
		}
	case <-time.After(20 * time.Second):
		t.Fatal("daemon did not exit within 20s of SIGTERM")
	}
}

func waitHealthy(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatal("daemon never became healthy")
}

// counter extracts one un-labelled counter value from the metrics text.
func counter(t *testing.T, metrics, name string) int64 {
	t.Helper()
	for _, line := range strings.Split(metrics, "\n") {
		var v int64
		if n, _ := fmt.Sscanf(line, name+" %d", &v); n == 1 && !strings.Contains(line, "{") {
			return v
		}
	}
	t.Fatalf("counter %s not found in metrics", name)
	return 0
}
