package core

import (
	"testing"

	"repro/internal/anf"
	"repro/internal/conv"
	"repro/internal/sat"
)

// Two-variable linear equations cut to binary clauses under the MiniSat
// profile, so the SAT step's converted CNF is pure 2SAT; an odd
// equivalence cycle refutes it and the routed certificate must check.
func TestSATStepRoutes2SATUnsat(t *testing.T) {
	sys := sysFrom(t, "x0 + x1\nx1 + x2\nx0 + x2 + 1\n")
	cfg := SATStepConfig{
		Profile:      sat.ProfileMiniSat,
		Conv:         conv.DefaultOptions(),
		Route:        true,
		CaptureProof: true,
	}
	step := RunSATStep(sys, cfg)
	if step.RoutedVia != "2sat" {
		t.Fatalf("RoutedVia = %q, want 2sat", step.RoutedVia)
	}
	if step.Status != sat.Unsat {
		t.Fatalf("status = %v, want Unsat", step.Status)
	}
	if step.Certificate == nil {
		t.Fatal("no certificate on routed UNSAT")
	}
	res, err := step.Certificate.Check()
	if err != nil || !res.Verified {
		t.Fatalf("routed 2SAT certificate rejected: verified=%v err=%v", res != nil && res.Verified, err)
	}
	// Differential: CDCL must agree.
	cfg.Route = false
	if ref := RunSATStep(sys, cfg); ref.Status != sat.Unsat {
		t.Fatalf("CDCL disagrees: %v", ref.Status)
	}
}

func TestSATStepRoutes2SATSat(t *testing.T) {
	sys := sysFrom(t, "x0 + x1\nx1 + x2\n")
	step := RunSATStep(sys, SATStepConfig{
		Profile: sat.ProfileMiniSat,
		Conv:    conv.DefaultOptions(),
		Route:   true,
	})
	if step.RoutedVia != "2sat" || step.Status != sat.Sat {
		t.Fatalf("RoutedVia=%q status=%v", step.RoutedVia, step.Status)
	}
	if step.Model == nil {
		t.Fatal("routed SAT verdict without model")
	}
	if step.RouteNs <= 0 {
		t.Fatalf("RouteNs = %d, want > 0", step.RouteNs)
	}
}

// Positive units plus a blocked conjunction (x·y·z = 0 Karnaugh-cuts to
// the single clause ¬x∨¬y∨¬z) form a Horn instance — the ternary clause
// keeps it out of the 2SAT fragment — and the conflict is pure unit
// propagation.
func TestSATStepRoutesHornUnsat(t *testing.T) {
	sys := sysFrom(t, "x0 + 1\nx1 + 1\nx2 + 1\nx0*x1*x2\n")
	cfg := SATStepConfig{
		Profile:      sat.ProfileMiniSat,
		Conv:         conv.DefaultOptions(),
		Route:        true,
		CaptureProof: true,
	}
	step := RunSATStep(sys, cfg)
	if step.RoutedVia != "horn" {
		t.Fatalf("RoutedVia = %q, want horn", step.RoutedVia)
	}
	if step.Status != sat.Unsat {
		t.Fatalf("status = %v, want Unsat", step.Status)
	}
	res, err := step.Certificate.Check()
	if err != nil || !res.Verified {
		t.Fatalf("routed Horn certificate rejected: err=%v", err)
	}
	cfg.Route = false
	if ref := RunSATStep(sys, cfg); ref.Status != sat.Unsat {
		t.Fatalf("CDCL disagrees: %v", ref.Status)
	}
}

// Under the CMS profile linear equations stay native XOR (KarnaughK=1
// keeps small parities off the K-map clause path), so a pure linear
// system routes through the GF(2) solver.
func TestSATStepRoutesXor(t *testing.T) {
	unsat := sysFrom(t, "x0 + x1 + x2\nx1 + x2 + x3\nx0 + x3 + 1\n")
	convOpts := conv.DefaultOptions()
	convOpts.KarnaughK = 1
	cfg := SATStepConfig{
		Profile:      sat.ProfileCMS,
		Conv:         convOpts,
		Route:        true,
		CaptureProof: true,
	}
	step := RunSATStep(unsat, cfg)
	if step.RoutedVia != "xor" {
		t.Fatalf("RoutedVia = %q, want xor", step.RoutedVia)
	}
	if step.Status != sat.Unsat {
		t.Fatalf("status = %v, want Unsat", step.Status)
	}
	res, err := step.Certificate.Check()
	if err != nil || !res.Verified {
		t.Fatalf("routed XOR certificate rejected: err=%v", err)
	}

	satSys := sysFrom(t, "x0 + x1 + x2\nx1 + x2 + x3\n")
	step = RunSATStep(satSys, cfg)
	if step.RoutedVia != "xor" || step.Status != sat.Sat || step.Model == nil {
		t.Fatalf("RoutedVia=%q status=%v model=%v", step.RoutedVia, step.Status, step.Model != nil)
	}
}

// Mixed residues must fall through to CDCL with routing on: same
// verdict, RoutedVia empty.
func TestSATStepRouteFallsThroughOnMixed(t *testing.T) {
	// x0 ⊕ x1 ⊕ x2 = 1 under MiniSat cuts to 3-literal clauses of every
	// polarity pattern: none of the fragments match.
	sys := sysFrom(t, "x0 + x1 + x2 + 1\n")
	step := RunSATStep(sys, SATStepConfig{
		Profile: sat.ProfileMiniSat,
		Conv:    conv.DefaultOptions(),
		Route:   true,
	})
	if step.RoutedVia != "" {
		t.Fatalf("RoutedVia = %q, want empty (CDCL fallback)", step.RoutedVia)
	}
	if step.Status != sat.Sat {
		t.Fatalf("status = %v", step.Status)
	}
}

// Full engine run: the router decides the SAT step, the verdict
// surfaces as Result.RoutedVia, and the routed certificate survives the
// engine plumbing.
func TestProcessWithRouting(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Route = true
	cfg.DisableXL = true
	cfg.DisableElimLin = true
	cfg.EmitProof = true
	cfg.Profile = sat.ProfileCMS
	cfg.Conv.KarnaughK = 1 // keep small parities native-XOR

	// No 2-variable equations: nothing for ANF propagation to merge, so
	// the linear system reaches the SAT step intact.
	unsat := sysFrom(t, "x0 + x1 + x2\nx2 + x3 + x4\nx0 + x1 + x3 + x4 + 1\n")
	res := Process(unsat, cfg)
	if res.Status != SolvedUNSAT {
		t.Fatalf("status = %v, want UNSAT", res.Status)
	}
	if res.RoutedVia != "xor" {
		t.Fatalf("RoutedVia = %q, want xor", res.RoutedVia)
	}
	if res.Certificate == nil {
		t.Fatal("routed engine run lost the certificate")
	}
	if chk, err := res.Certificate.Check(); err != nil || !chk.Verified {
		t.Fatalf("engine-level routed certificate rejected: err=%v", err)
	}

	satIn := sysFrom(t, "x0 + x1 + x2\nx2 + x3 + x4\nx0 + x1 + x3 + x4\n")
	res = Process(satIn.Clone(), cfg)
	if res.Status != SolvedSAT {
		t.Fatalf("status = %v, want SAT", res.Status)
	}
	if res.RoutedVia != "xor" {
		t.Fatalf("RoutedVia = %q, want xor", res.RoutedVia)
	}
	if res.RouteNs <= 0 {
		t.Fatalf("RouteNs = %d, want > 0", res.RouteNs)
	}
	if !satIn.Eval(func(v anf.Var) bool { return res.Solution[v] }) {
		t.Fatal("routed engine solution violates the input system")
	}
}
