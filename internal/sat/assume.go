package sat

import "repro/internal/cnf"

// SolveAssuming solves under the given assumption literals, MiniSat-style:
// assumptions are asserted as the first decisions and never learnt as
// permanent facts. The solver object stays reusable afterwards.
//
// On Unsat, FailedAssumptions reports whether the refutation depends on
// the assumptions: a non-empty set means the formula itself may still be
// satisfiable under other assumptions (Okay() stays true in that case).
func (s *Solver) SolveAssuming(assumptions []cnf.Lit, conflictBudget int64) Status {
	for _, l := range assumptions {
		s.ensureVars(int(l.Var()) + 1)
	}
	s.assumptions = append(s.assumptions[:0], assumptions...)
	s.failedAssumps = nil
	st := s.SolveLimited(conflictBudget)
	s.assumptions = s.assumptions[:0]
	return st
}

// FailedAssumptions returns, after an Unsat result from SolveAssuming, a
// subset of the assumptions that together are inconsistent with the
// formula (the "final conflict clause" negated). Empty when the formula
// is unsatisfiable outright.
func (s *Solver) FailedAssumptions() []cnf.Lit {
	return append([]cnf.Lit(nil), s.failedAssumps...)
}

// assumeNext establishes pending assumption levels. It returns the next
// decision literal (or litUndef to fall through to VSIDS), and false when
// an assumption is already falsified — the under-assumptions UNSAT case.
func (s *Solver) assumeNext() (cnf.Lit, bool) {
	for s.decisionLevel() < len(s.assumptions) {
		p := s.assumptions[s.decisionLevel()]
		switch s.valueLit(p) {
		case lTrue:
			// Already satisfied: open an empty pseudo-level so the
			// level-to-assumption correspondence stays intact.
			s.trailLim = append(s.trailLim, len(s.trail))
		case lFalse:
			s.failedAssumps = s.analyzeFinal(p)
			return litUndef, false
		default:
			return p, true
		}
	}
	return litUndef, true
}

// analyzeFinal computes the subset of assumptions responsible for the
// falsification of assumption p, by walking the implication graph of ¬p
// back to decision (assumption) literals.
func (s *Solver) analyzeFinal(p cnf.Lit) []cnf.Lit {
	out := []cnf.Lit{p}
	if s.decisionLevel() == 0 {
		return out
	}
	s.seen[p.Var()] = 1
	bottom := s.trailLim[0]
	for i := len(s.trail) - 1; i >= bottom; i-- {
		v := s.trail[i].Var()
		if s.seen[v] == 0 {
			continue
		}
		if s.reason[v] == NullRef {
			// A decision — under assumption solving these are exactly the
			// assumption literals.
			if v != p.Var() {
				out = append(out, s.trail[i])
			}
		} else {
			for _, q := range s.clauseLits(s.reason[v], s.trail[i], true) {
				if q.Var() != v && s.level[q.Var()] > 0 {
					s.seen[q.Var()] = 1
				}
			}
		}
		s.seen[v] = 0
	}
	s.seen[p.Var()] = 0
	return out
}
