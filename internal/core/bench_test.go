package core

import (
	"math/rand"
	"testing"

	"repro/internal/anf"
	"repro/internal/ciphers/simon"
	"repro/internal/ciphers/sr"
)

// benchSRSystem returns a mid-size SR instance system: large enough that
// the linearize→GJE cycle dominates, small enough for -benchtime=1x smoke
// runs.
func benchSRSystem() *anf.System {
	rng := rand.New(rand.NewSource(7))
	inst := sr.GenerateInstance(sr.Params{N: 1, R: 2, C: 2, E: 4}, rng)
	return inst.Sys
}

func benchSimonSystem() *anf.System {
	rng := rand.New(rand.NewSource(8))
	inst := simon.GenerateInstance(simon.Params{NPlaintexts: 4, Rounds: 7}, rng)
	return inst.Sys
}

// BenchmarkXLLinearize measures one full XL pass (subsample → expand →
// linearize → GJE → fact extraction) on an SR instance — the dominant cost
// of every Bosphorus iteration.
func BenchmarkXLLinearize(b *testing.B) {
	sys := benchSRSystem()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(1))
		_ = RunXL(sys, XLConfig{M: 20, DeltaM: 4, Deg: 1, Rand: rng})
	}
}

// BenchmarkXLSimon runs XL over the larger Simon system.
func BenchmarkXLSimon(b *testing.B) {
	sys := benchSimonSystem()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(1))
		_ = RunXL(sys, XLConfig{M: 20, DeltaM: 4, Deg: 1, Rand: rng})
	}
}

// BenchmarkElimLin measures the full ElimLin rounds loop (GJE → gather
// linear → substitute) on the SR instance.
func BenchmarkElimLin(b *testing.B) {
	sys := benchSRSystem()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(1))
		_ = RunElimLin(sys, ElimLinConfig{M: 20, Rand: rng})
	}
}

// BenchmarkGJERows measures just the linearize+reduce kernel: building the
// monomial→column index, filling the matrix, and reading reduced rows back.
func BenchmarkGJERows(b *testing.B) {
	sys := benchSRSystem()
	polys := sys.Polys()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = gjeRows(polys)
	}
}
