package anf

// MonoTable interns monomials to dense uint32 IDs. It is the column-index
// backbone of the linearization hot path: XL and ElimLin linearize a
// polynomial system into a GF(2) matrix with one column per distinct
// monomial, and with a table the column of a term is an integer array
// lookup instead of a string-keyed map probe.
//
// IDs are assigned densely in first-intern order, so a table with Len() = n
// has valid IDs 0..n-1. Monomials returned by the table (via Mono or
// InternPoly) carry their ID in a hidden field; calling ID on such a
// monomial is an O(1) pointer comparison with no hashing — the fast path
// that makes repeated linearization passes over the same system cheap.
//
// A MonoTable is not safe for concurrent mutation, and slow-path probes
// share a scratch key buffer. Concurrent readers are safe once every
// monomial they will ask about is a canonical copy from this table (ID
// then always takes the fast path, which touches no shared scratch);
// System.MonoTable establishes exactly that invariant for a system's own
// polynomials.
type MonoTable struct {
	ids   map[string]uint32 // Monomial.Key() → ID, the slow path
	monos []Monomial        // ID → canonical monomial (id field set)
	kbuf  []byte            // scratch for zero-alloc key probes (slow path only)
}

// NewMonoTable returns an empty table.
func NewMonoTable() *MonoTable {
	return &MonoTable{ids: make(map[string]uint32)}
}

// Len returns the number of distinct monomials interned so far.
func (t *MonoTable) Len() int { return len(t.monos) }

// Reset empties the table while keeping its map and slice capacity, so a
// pooled table re-interns the next pass's monomials without reallocating.
// Monomials carrying a cached ID from before the reset stay safe: the
// fast path accepts a cached ID only when the stored canonical entry has
// the identical vars backing (sameInterned), which a post-reset table can
// satisfy only for the monomial that owns that backing — any stale ID
// falls through to the keyed slow path.
func (t *MonoTable) Reset() {
	for k := range t.ids {
		delete(t.ids, k)
	}
	t.monos = t.monos[:0]
}

// Mono returns the canonical monomial for id. The returned monomial carries
// its cached ID, so a later ID() call on it takes the fast path.
func (t *MonoTable) Mono(id uint32) Monomial { return t.monos[id] }

// Monos returns the interned monomials indexed by ID. The slice is owned by
// the table and must not be modified; it is invalidated by further interning.
func (t *MonoTable) Monos() []Monomial { return t.monos }

// sameInterned reports whether a and b are the same interned monomial
// value: equal length and identical backing storage. The vars slices here
// are immutable, so identity implies content equality; the length check
// guards against prefix-aliased subslices.
func sameInterned(a, b Monomial) bool {
	if len(a.vars) != len(b.vars) {
		return false
	}
	return len(a.vars) == 0 || &a.vars[0] == &b.vars[0]
}

// ID interns m (if new) and returns its dense ID. Monomials previously
// returned by this table resolve without hashing.
func (t *MonoTable) ID(m Monomial) uint32 {
	if m.id != 0 {
		if id := m.id - 1; int(id) < len(t.monos) && sameInterned(t.monos[id], m) {
			return id
		}
	}
	t.kbuf = m.appendKey(t.kbuf[:0])
	if id, ok := t.ids[string(t.kbuf)]; ok { // no alloc: map probe by []byte
		return id
	}
	id := uint32(len(t.monos))
	m.id = id + 1
	t.monos = append(t.monos, m)
	t.ids[string(t.kbuf)] = id
	return id
}

// Lookup returns the ID of m without interning it. The second result is
// false if m has not been interned.
func (t *MonoTable) Lookup(m Monomial) (uint32, bool) {
	if m.id != 0 {
		if id := m.id - 1; int(id) < len(t.monos) && sameInterned(t.monos[id], m) {
			return id, true
		}
	}
	t.kbuf = m.appendKey(t.kbuf[:0])
	id, ok := t.ids[string(t.kbuf)]
	return id, ok
}

// Canonical interns m and returns the table's canonical copy, which carries
// its cached ID.
func (t *MonoTable) Canonical(m Monomial) Monomial {
	return t.monos[t.ID(m)]
}

// InternPoly interns every term of p and returns a polynomial whose terms
// are the canonical copies, so subsequent ID() calls on its terms take the
// fast path. If p is already fully canonical with respect to this table it
// is returned unchanged (no allocation).
func (t *MonoTable) InternPoly(p Poly) Poly {
	canonical := true
	for _, m := range p.terms {
		if m.id == 0 {
			canonical = false
			break
		}
		id := m.id - 1
		if int(id) >= len(t.monos) || !sameInterned(t.monos[id], m) {
			canonical = false
			break
		}
	}
	if canonical {
		return p
	}
	terms := make([]Monomial, len(p.terms))
	for i, m := range p.terms {
		terms[i] = t.monos[t.ID(m)]
	}
	return Poly{terms: terms}
}

// AppendTermIDs appends the IDs of p's terms (interning as needed) to dst
// and returns it, avoiding per-call allocation when dst is reused.
func (t *MonoTable) AppendTermIDs(dst []uint32, p Poly) []uint32 {
	for _, m := range p.terms {
		dst = append(dst, t.ID(m))
	}
	return dst
}
