package bench

import (
	"strings"
	"testing"
	"time"

	"repro/internal/anf"
	"repro/internal/ciphers/simon"
	"repro/internal/ciphers/sr"
	"repro/internal/cnf"
	"repro/internal/sat"
	"repro/internal/satgen"
)

func quickCfg() Config {
	cfg := DefaultConfig()
	cfg.Timeout = 2 * time.Second
	return cfg
}

func TestRunInstanceANF(t *testing.T) {
	// x0 = 1 makes the middle equation collapse to x2 = 0; satisfiable
	// with x1 free.
	sys, err := anf.ReadSystem(strings.NewReader("x0 + 1\nx0*x1 + x1 + x2\nx2\n"))
	if err != nil {
		t.Fatal(err)
	}
	for _, useB := range []bool{false, true} {
		cfg := quickCfg()
		cfg.UseBosphorus = useB
		r := RunInstance(Job{Name: "tiny", ANF: sys, Truth: satgen.StatusSat}, cfg)
		if r.Verdict != sat.Sat {
			t.Fatalf("useB=%v: verdict %v", useB, r.Verdict)
		}
		if r.TruthMismatch {
			t.Fatal("truth mismatch on satisfiable system")
		}
	}
}

func TestRunInstanceCNFUnsat(t *testing.T) {
	inst := satgen.Pigeonhole(5, 4)
	for _, useB := range []bool{false, true} {
		for _, prof := range Profiles {
			cfg := quickCfg()
			cfg.UseBosphorus = useB
			cfg.Profile = prof
			r := RunInstance(Job{Name: inst.Name, CNF: inst.Formula, Truth: inst.Status}, cfg)
			if r.Verdict != sat.Unsat {
				t.Fatalf("useB=%v prof=%v: verdict %v", useB, prof, r.Verdict)
			}
		}
	}
}

func TestRunInstanceTimeout(t *testing.T) {
	// A hard pigeonhole with a tiny timeout must come back Unknown
	// promptly.
	inst := satgen.Pigeonhole(12, 11)
	cfg := quickCfg()
	cfg.Timeout = 200 * time.Millisecond
	start := time.Now()
	r := RunInstance(Job{Name: inst.Name, CNF: inst.Formula, Truth: inst.Status}, cfg)
	if r.Verdict != sat.Unknown {
		t.Fatalf("verdict %v, want UNKNOWN", r.Verdict)
	}
	if time.Since(start) > 3*time.Second {
		t.Fatal("timeout not honoured")
	}
}

func TestPAR2Scoring(t *testing.T) {
	rs := []InstanceResult{
		{Verdict: sat.Sat, Time: time.Second},
		{Verdict: sat.Unsat, Time: 2 * time.Second},
		{Verdict: sat.Unknown, Time: 5 * time.Second},
	}
	score, nSat, nUnsat := PAR2(rs, 5*time.Second)
	if nSat != 1 || nUnsat != 1 {
		t.Fatalf("counts %d %d", nSat, nUnsat)
	}
	if score != 1+2+2*5 {
		t.Fatalf("score = %v, want 13", score)
	}
}

func TestFormatCell(t *testing.T) {
	if got := FormatCell(CellResult{PAR2: 12.34, NSat: 3}); got != "12.3 (3)" {
		t.Fatalf("FormatCell = %q", got)
	}
	if got := FormatCell(CellResult{PAR2: 1, NSat: 2, NUnsat: 4}); got != "1.0 (2+4)" {
		t.Fatalf("FormatCell = %q", got)
	}
}

func TestFamiliesShapes(t *testing.T) {
	fams := Families(Quick, 2, 3)
	if len(fams) != 8 {
		t.Fatalf("families = %d, want 8 (the paper's 8 rows)", len(fams))
	}
	wantPrefix := []string{"SR-", "Simon-", "Simon-", "Simon-", "Bitcoin-", "Bitcoin-", "Bitcoin-", "SAT-2017"}
	for i, f := range fams {
		if !strings.HasPrefix(f.Name, wantPrefix[i]) {
			t.Fatalf("family %d = %q, want prefix %q", i, f.Name, wantPrefix[i])
		}
		if len(f.Jobs) == 0 {
			t.Fatalf("family %q empty", f.Name)
		}
	}
}

func TestBosphorusRescuesHardSimon(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second end-to-end run")
	}
	// The headline effect: on Simon-[8,8] plain MiniSat times out while
	// the Bosphorus pipeline solves it.
	fam := SimonFamily(simon.Params{NPlaintexts: 8, Rounds: 8}, 1, 14)
	cfg := quickCfg()
	cfg.Timeout = 5 * time.Second
	if raceEnabled {
		// The race detector slows the solve several-fold; this test is
		// about the rescue effect, not raw speed, so scale the budget.
		cfg.Timeout = 30 * time.Second
	}
	cfg.UseBosphorus = false
	plain := RunCell(fam.Jobs, cfg)
	cfg.UseBosphorus = true
	with := RunCell(fam.Jobs, cfg)
	if with.NSat != 1 {
		t.Fatalf("Bosphorus pipeline failed to solve Simon-[8,8]: %+v", with)
	}
	if plain.NSat == 1 && plain.PAR2 < with.PAR2/2 {
		t.Log("plain solver unexpectedly fast; effect weaker on this host")
	}
}

func TestHardSubset(t *testing.T) {
	// Build a small mixed family and check that the easy instance is
	// filtered out and a hard one stays.
	easy := satgen.Pigeonhole(4, 4)
	hard := satgen.Pigeonhole(11, 10)
	fam := Family{Name: "mixed", Jobs: []Job{
		{Name: easy.Name, CNF: easy.Formula, Truth: easy.Status},
		{Name: hard.Name, CNF: hard.Formula, Truth: hard.Status},
	}}
	cfg := quickCfg()
	cfg.Timeout = 2 * time.Second
	sub := HardSubset(fam, cfg, 0.5)
	if len(sub.Jobs) != 1 || sub.Jobs[0].Name != hard.Name {
		t.Fatalf("hard subset = %v", sub.Jobs)
	}
}

func TestTableIIFormat(t *testing.T) {
	fam := SRFamily(sr.Params{N: 1, R: 1, C: 1, E: 4}, 1, 1)
	cfg := quickCfg()
	tab := RunTableII([]Family{fam}, cfg, nil)
	out := tab.Format()
	for _, want := range []string{"MiniSat", "Lingeling", "CryptoMiniSat5", "w/o", "SR-[1,1,1,4]"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table output missing %q:\n%s", want, out)
		}
	}
	// Verdicts must be mismatch-free everywhere.
	for _, row := range tab.Rows {
		for _, pair := range row.Cells {
			for _, cell := range pair {
				if cell.Mismatches != 0 {
					t.Fatal("truth mismatch in table run")
				}
			}
		}
	}
}

func TestAddFactClauses(t *testing.T) {
	// A CNF job whose Bosphorus pass determines a variable: the clause
	// must appear in the prepared formula.
	f := cnf.NewFormula(2)
	f.AddClause(cnf.MkLit(0, false))                     // v0
	f.AddClause(cnf.MkLit(0, true), cnf.MkLit(1, false)) // ¬v0 ∨ v1
	cfg := quickCfg()
	cfg.UseBosphorus = true
	r := RunInstance(Job{Name: "facts", CNF: f, Truth: satgen.StatusSat}, cfg)
	if r.Verdict != sat.Sat {
		t.Fatalf("verdict %v", r.Verdict)
	}
}
