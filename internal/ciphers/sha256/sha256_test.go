package sha256

import (
	cryptosha "crypto/sha256"
	"encoding/binary"
	"math/rand"
	"testing"

	"repro/internal/anf"
)

// TestSHA256Vectors cross-checks our full-round compression against the
// standard library on single-block messages.
func TestSHA256Vectors(t *testing.T) {
	msgs := [][]byte{
		[]byte(""),
		[]byte("abc"),
		[]byte("The quick brown fox jumps over the lazy dog"),
	}
	for _, msg := range msgs {
		if len(msg) > 55 {
			t.Fatal("test message does not fit one block")
		}
		// Standard SHA padding into one 512-bit block.
		var buf [64]byte
		copy(buf[:], msg)
		buf[len(msg)] = 0x80
		binary.BigEndian.PutUint64(buf[56:], uint64(len(msg))*8)
		var block [16]uint32
		for i := 0; i < 16; i++ {
			block[i] = binary.BigEndian.Uint32(buf[4*i:])
		}
		got := Sum256Block(block)
		want := cryptosha.Sum256(msg)
		for i := 0; i < 8; i++ {
			w := binary.BigEndian.Uint32(want[4*i:])
			if got[i] != w {
				t.Fatalf("Sum256Block(%q)[%d] = %08x, want %08x", msg, i, got[i], w)
			}
		}
	}
}

func TestCompressRoundsMonotone(t *testing.T) {
	var block [16]uint32
	block[0] = 0xdeadbeef
	d8 := Compress(block, 8)
	d9 := Compress(block, 9)
	if d8 == d9 {
		t.Fatal("extra round did not change the digest")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("rounds=0 did not panic")
		}
	}()
	Compress(block, 0)
}

func TestBitcoinInstanceShape(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	inst := GenerateBitcoin(BitcoinParams{K: 4, Rounds: 16}, rng)
	// Fig. 5: pad bit set, length word = 448.
	if inst.Block[13]&1 != 1 {
		t.Fatal("pad bit not set")
	}
	if inst.Block[15] != 448 || inst.Block[14] != 0 {
		t.Fatalf("length encoding wrong: %08x %08x", inst.Block[14], inst.Block[15])
	}
	// The digest's first K bits are zero.
	if inst.Digest[0]>>28 != 0 {
		t.Fatalf("digest does not have 4 leading zero bits: %08x", inst.Digest[0])
	}
	// The nonce recorded matches the block wiring.
	if inst.Block[12]&1 != inst.Nonce>>31 {
		t.Fatal("nonce MSB not wired into block word 12")
	}
	if inst.Block[13] != inst.Nonce<<1|1 {
		t.Fatal("nonce bits not wired into block word 13")
	}
}

func TestBitcoinWitnessSatisfies(t *testing.T) {
	for _, p := range []BitcoinParams{{K: 0, Rounds: 16}, {K: 2, Rounds: 17}, {K: 4, Rounds: 16}, {K: 3, Rounds: 18}} {
		rng := rand.New(rand.NewSource(int64(p.K + p.Rounds)))
		inst := GenerateBitcoin(p, rng)
		assign := func(v anf.Var) bool {
			return int(v) < len(inst.Witness) && inst.Witness[int(v)]
		}
		if !inst.Sys.Eval(assign) {
			for _, q := range inst.Sys.Polys() {
				if q.Eval(assign) {
					t.Fatalf("K=%d R=%d: witness violates %s", p.K, p.Rounds, q)
				}
			}
		}
		if got := inst.NonceFromSolution(inst.Witness); got != inst.Nonce {
			t.Fatalf("witness nonce = %08x, want %08x", got, inst.Nonce)
		}
	}
}

func TestBitcoinSystemQuadratic(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	inst := GenerateBitcoin(BitcoinParams{K: 2, Rounds: 16}, rng)
	if d := inst.Sys.MaxDeg(); d > 2 {
		t.Fatalf("encoding degree = %d, want ≤ 2", d)
	}
	t.Logf("bitcoin K=2 R=16: %d vars, %d equations", inst.Sys.NumVars(), inst.Sys.Len())
}

func TestNonceWrongSolutionRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	inst := GenerateBitcoin(BitcoinParams{K: 3, Rounds: 16}, rng)
	bad := append([]bool(nil), inst.Witness...)
	bad[inst.NonceVarBase+31] = !bad[inst.NonceVarBase+31] // flip nonce LSB
	assign := func(v anf.Var) bool {
		return int(v) < len(bad) && bad[int(v)]
	}
	if inst.Sys.Eval(assign) {
		t.Fatal("flipping a nonce bit alone should violate the circuit equations")
	}
}
