// Quickstart: the paper's worked example (§II-E, Fig. 1) through the
// public API. The five-equation system has the unique solution
// x1 = x2 = x3 = x4 = 1, x5 = 0; the program walks the fact-learning
// phases individually and then lets the full loop solve the system.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	bosphorus "repro"
	"repro/internal/core"
)

const example = `
# Paper equation (1): the worked example of section II-E.
x1*x2 + x3 + x4 + 1
x1*x2*x3 + x1 + x3 + 1
x1*x3 + x3*x4*x5 + x3
x2*x3 + x3*x5 + 1
x2*x3 + x5 + 1
`

func main() {
	sys, err := bosphorus.ParseANF(strings.NewReader(example))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("input ANF:")
	for _, p := range sys.Polys() {
		fmt.Printf("  %s = 0\n", p)
	}

	// Phase by phase, as the paper presents it.
	rng := rand.New(rand.NewSource(1))
	fmt.Println("\nXL (D=1) learns:")
	for _, f := range core.RunXL(sys, core.XLConfig{M: 20, DeltaM: 4, Deg: 1, Rand: rng}) {
		fmt.Printf("  %s = 0\n", f)
	}
	fmt.Println("\nElimLin learns:")
	for _, f := range core.RunElimLin(sys, core.ElimLinConfig{M: 20, Rand: rng}) {
		fmt.Printf("  %s = 0\n", f)
	}

	// The full loop.
	res := bosphorus.Solve(sys, bosphorus.DefaultOptions())
	fmt.Printf("\nfull loop: %v in %d iteration(s), %v\n", res.Status, res.Iterations, res.Elapsed)
	fmt.Printf("facts: xl=%d elimlin=%d sat=%d propagation=%d\n",
		res.FactsXL, res.FactsElimLin, res.FactsSAT, res.FactsPropagation)
	if res.Status == bosphorus.SAT {
		fmt.Print("solution:")
		for v := 1; v <= 5; v++ {
			val := 0
			if res.Solution[v] {
				val = 1
			}
			fmt.Printf(" x%d=%d", v, val)
		}
		fmt.Println()
		if !bosphorus.VerifyANF(sys, res.Solution) {
			log.Fatal("solution verification failed")
		}
		fmt.Println("verified against the input system ✓ (paper: x1=x2=x3=x4=1, x5=0)")
	}
}
