package sat

import (
	"context"
	"sort"
	"time"

	"repro/internal/cnf"
)

// luby returns the x-th element (0-based) of the Luby restart sequence
// 1,1,2,1,1,2,4,1,1,2,1,1,2,4,8,...
func luby(x uint64) uint64 {
	size, seq := uint64(1), 0
	for size < x+1 {
		seq++
		size = 2*size + 1
	}
	for size-1 != x {
		size = (size - 1) / 2
		seq--
		x %= size
	}
	return 1 << uint(seq)
}

// Solve runs the solver to completion (no conflict budget).
func (s *Solver) Solve() Status { return s.SolveLimited(-1) }

// SetDeadline makes subsequent solve calls return Unknown once the
// wall-clock deadline passes (checked between restarts and periodically
// during search). The zero time clears the deadline.
func (s *Solver) SetDeadline(t time.Time) { s.deadline = t }

// Interrupt asynchronously stops an in-progress solve; it returns Unknown
// shortly after. Safe to call from another goroutine (the portfolio
// runner's cancellation path). The flag clears when the next solve
// starts.
func (s *Solver) Interrupt() { s.interrupted.Store(true) }

// SetInterrupt installs a hook polled at the same cadence as the deadline
// (every few hundred conflicts and at restart boundaries); returning true
// makes the current and future solve calls stop with Unknown. A nil hook
// removes it. Unlike Interrupt, the hook is not cleared when a solve
// starts, so a persistent cancellation source (a context, a shared stop
// flag) needs to be wired only once. Not safe to call concurrently with a
// running solve — install the hook before handing the solver to a worker.
func (s *Solver) SetInterrupt(hook func() bool) { s.interruptHook = hook }

// SolveCtx is Solve bound to a context: the solve stops with Unknown soon
// after ctx is cancelled or its deadline passes.
func (s *Solver) SolveCtx(ctx context.Context) Status { return s.SolveLimitedCtx(ctx, -1) }

// SolveLimitedCtx is SolveLimited bound to a context. The context is
// polled through the interrupt-hook path (every few hundred conflicts and
// at restart boundaries), composing with any hook installed via
// SetInterrupt.
func (s *Solver) SolveLimitedCtx(ctx context.Context, conflictBudget int64) Status {
	if ctx == nil || ctx.Done() == nil {
		return s.SolveLimited(conflictBudget)
	}
	prev := s.interruptHook
	s.interruptHook = func() bool {
		return ctx.Err() != nil || (prev != nil && prev())
	}
	defer func() { s.interruptHook = prev }()
	return s.SolveLimited(conflictBudget)
}

func (s *Solver) deadlineExpired() bool {
	if s.interrupted.Load() {
		return true
	}
	if s.interruptHook != nil && s.interruptHook() {
		return true
	}
	return !s.deadline.IsZero() && time.Now().After(s.deadline)
}

// problemLoad is the problem size the learnt-clause cap scales with. A
// packed parity clause over w variables stands in for the 2^(w-1) CNF
// clauses of its clausal cut, so it must weigh as many — sizing the cap
// by record count alone starves an XOR-dominated instance (near-zero
// clauses → cap ≈ 100) into reduceDB thrashing that the cut baseline
// never hits. The per-row weight is capped so one hand-added long row
// cannot blow the cap up exponentially.
func (s *Solver) problemLoad() int {
	load := len(s.clauses)
	for _, cr := range s.parities {
		w := s.ca.size(cr) - 1
		if w > 6 {
			w = 6 // 64 clauses: the widest cut AddXor would actually emit in-range
		}
		load += 1 << uint(w)
	}
	return load
}

// SolveLimited runs CDCL search with a conflict budget; a negative budget
// means unlimited. This is the paper's §II-D conflict-bounded solving: the
// return is Unsat, Sat, or Unknown when the budget is exhausted.
func (s *Solver) SolveLimited(conflictBudget int64) Status {
	if !s.ok {
		return Unsat
	}
	s.interrupted.Store(false)
	s.model = nil
	s.cancelUntil(0)
	if conf := s.propagate(); conf != NullRef {
		s.releaseConflict(conf)
		s.ok = false
		s.logEmpty()
		return Unsat
	}
	if s.gauss != nil {
		if s.gauss.initialize() == lFalse {
			s.ok = false
			s.logEmpty()
			return Unsat
		}
		// Elimination may have produced unit rows; propagate them.
		if conf := s.propagate(); conf != NullRef {
			s.releaseConflict(conf)
			s.ok = false
			s.logEmpty()
			return Unsat
		}
	}

	var conflictsThisRun int64
	maxLearnts := float64(s.problemLoad())*s.opts.LearntsFraction + 100

	for restart := uint64(0); ; restart++ {
		budgetThisRestart := luby(restart) * uint64(s.opts.RestartBase)
		status, used := s.search(int64(budgetThisRestart), conflictBudget-conflictsThisRun)
		conflictsThisRun += used
		switch status {
		case Sat, Unsat:
			s.cancelUntil(0)
			return status
		}
		if conflictBudget >= 0 && conflictsThisRun >= conflictBudget {
			s.cancelUntil(0)
			return Unknown
		}
		if s.deadlineExpired() {
			s.cancelUntil(0)
			return Unknown
		}
		s.Restarts++
		s.cancelUntil(0)
		// Restart boundaries are the only clause-import point: the search
		// loop between restarts never observes a database change it did not
		// cause itself.
		if s.exchange != nil {
			s.importShared()
			if !s.ok {
				return Unsat
			}
		}
		if float64(len(s.learnts)) > maxLearnts+float64(len(s.trail)) {
			s.reduceDB()
			maxLearnts *= 1.1
		}
		// Restart boundaries are arena-view-free, so they double as a GC
		// point: without this, Gauss reason temporaries accumulated during a
		// long conflict-free stretch would never be reclaimed (reduceDB only
		// triggers on learnt-clause growth).
		s.maybeGC()
	}
}

// search runs until a restart is due (restartBudget conflicts), the global
// budget is exhausted, or a verdict. Returns the status (Unknown for
// restart/budget) and the number of conflicts consumed.
func (s *Solver) search(restartBudget, globalBudget int64) (Status, int64) {
	var conflicts int64
	for {
		conf := s.propagate()
		if conf != NullRef {
			s.Conflicts++
			conflicts++
			if s.decisionLevel() == 0 {
				s.releaseConflict(conf)
				s.ok = false
				s.logEmpty()
				return Unsat, conflicts
			}
			learnt, btLevel := s.analyze(conf)
			s.releaseConflict(conf)
			s.cancelUntil(btLevel)
			s.recordLearnt(learnt)
			if !s.ok {
				return Unsat, conflicts
			}
			s.decayVar()
			s.decayClause()
			if conflicts >= restartBudget || (globalBudget >= 0 && conflicts >= globalBudget) {
				return Unknown, conflicts
			}
			if conflicts%256 == 0 && s.deadlineExpired() {
				return Unknown, conflicts
			}
			continue
		}
		// No conflict: establish pending assumptions, then decide.
		next, ok := s.assumeNext()
		if !ok {
			return Unsat, conflicts
		}
		if next == litUndef {
			next = s.pickBranchLit()
		}
		if next == litUndef {
			// All variables assigned: model found.
			s.model = append([]lbool(nil), s.assigns...)
			return Sat, conflicts
		}
		s.Decisions++
		s.trailLim = append(s.trailLim, len(s.trail))
		if !s.enqueue(next, NullRef) {
			panic("sat: decision literal already assigned")
		}
	}
}

const litUndef = cnf.Lit(^uint32(0))

// pickBranchLit selects the next decision literal via VSIDS with saved
// phases, or litUndef if all variables are assigned.
//
//bosphorus:hotpath decision-heap pop on every decision
func (s *Solver) pickBranchLit() cnf.Lit {
	// Optional random decisions for diversification.
	if s.opts.RandomFreq > 0 && s.rng.Float64() < s.opts.RandomFreq && !s.order.empty() {
		v := s.order.heap[s.rng.Intn(len(s.order.heap))]
		if s.assigns[v] == lUndef {
			return cnf.MkLit(v, s.polarity[v] == 1)
		}
	}
	for !s.order.empty() {
		v := s.order.removeMax()
		if s.assigns[v] == lUndef {
			return cnf.MkLit(v, s.polarity[v] == 1)
		}
	}
	return litUndef
}

// reduceDB removes roughly half of the learnt clauses, keeping binary
// clauses, reasons of current assignments, and the most active or
// lowest-LBD clauses.
func (s *Solver) reduceDB() {
	s.ReducedDBs++
	// Stable sort on the same (LBD asc, activity desc) key as the seed
	// solver; stability plus identical keys means the kept half is the
	// exact set the pointer-based solver kept.
	sort.SliceStable(s.learnts, func(i, j int) bool {
		a, b := s.learnts[i], s.learnts[j]
		albd, blbd := s.ca.lbd(a), s.ca.lbd(b)
		if albd != blbd {
			return albd < blbd
		}
		return s.ca.activity(a) > s.ca.activity(b)
	})
	keep := s.learnts[:0]
	locked := func(cr ClauseRef) bool {
		first := s.ca.lits(cr)[0]
		return s.reason[first.Var()] == cr && s.valueLit(first) == lTrue
	}
	limit := len(s.learnts) / 2
	for i, c := range s.learnts {
		if s.ca.size(c) == 2 || locked(c) || i < limit {
			keep = append(keep, c)
			continue
		}
		s.detach(c)
		s.logDelete(s.ca.lits(c))
		s.ca.free(c)
	}
	s.learnts = keep
	s.maybeGC()
}

// Simplify removes satisfied problem clauses at level 0 and shrinks false
// literals out of the rest. Safe to call between solve runs.
func (s *Solver) Simplify() bool {
	if !s.ok {
		return false
	}
	if s.decisionLevel() != 0 {
		panic("sat: Simplify above level 0")
	}
	if conf := s.propagate(); conf != NullRef {
		s.releaseConflict(conf)
		s.ok = false
		s.logEmpty()
		return false
	}
	for _, list := range []*[]ClauseRef{&s.clauses, &s.learnts} {
		keep := (*list)[:0]
		for _, c := range *list {
			lits := s.ca.lits(c)
			sat := false
			for _, l := range lits {
				if s.valueLit(l) == lTrue {
					sat = true
					break
				}
			}
			if sat {
				s.detach(c)
				s.logDelete(lits)
				s.ca.free(c)
				continue
			}
			// Remove false literals beyond the watched pair (watched
			// literals of a non-satisfied clause cannot be false at level
			// 0 after propagation). The compaction happens in place in the
			// arena; shrink retires the dropped tail words.
			var old []cnf.Lit
			if s.proof != nil {
				old = append(old, lits...)
			}
			out := lits[:2]
			for _, l := range lits[2:] {
				if s.valueLit(l) != lFalse {
					out = append(out, l)
				}
			}
			s.ca.shrink(c, len(out))
			if len(old) > len(out) {
				// The shrunk clause is RUP (the dropped literals are false
				// at level 0); add it before retiring the original.
				s.logLearn(s.ca.lits(c))
				s.logDelete(old)
			}
			keep = append(keep, c)
		}
		*list = keep
	}
	s.maybeGC()
	return true
}
