package core

import (
	"math/bits"
	"math/rand"
	"sort"

	"repro/internal/anf"
	"repro/internal/gf2"
)

// XLConfig parameterizes eXtended Linearization (§II-B).
type XLConfig struct {
	// M bounds the linearized size of the subsampled system: rows·cols ≲ 2^M.
	M int
	// DeltaM bounds the expansion: the expanded system stays ≲ 2^(M+DeltaM).
	DeltaM int
	// Deg is D, the maximum degree of the multiplier monomials (the paper
	// runs with D = 1: multiply by 1 and by each single variable).
	Deg int
	// Rand drives the uniform subsampling.
	Rand *rand.Rand
}

// DefaultXLConfig returns the paper's §IV parameters, with M scaled to
// laptop runs (the paper's M=30 assumes a large-memory machine; results
// are insensitive for our instance sizes).
func DefaultXLConfig(rng *rand.Rand) XLConfig {
	return XLConfig{M: 20, DeltaM: 4, Deg: 1, Rand: rng}
}

// RunXL performs one XL pass over the system and returns the learnt facts:
// linear polynomials and monomial-plus-one polynomials read off the
// Gauss–Jordan-reduced linearization (Table I's "retained" rows).
func RunXL(sys *anf.System, cfg XLConfig) []anf.Poly {
	if cfg.Deg < 0 {
		cfg.Deg = 1
	}
	polys := subsample(sys, cfg.M, cfg.Rand)
	if len(polys) == 0 {
		return nil
	}
	// Expand in ascending degree order by monomials up to degree D, while
	// the linearized size stays under 2^(M+DeltaM).
	sort.SliceStable(polys, func(i, j int) bool { return polys[i].Deg() < polys[j].Deg() })
	limit := uint64(1) << uint(cfg.M+cfg.DeltaM)
	expanded := make([]anf.Poly, 0, 2*len(polys))
	expanded = append(expanded, polys...)
	// Collect the variables of the sampled subsystem as degree-1
	// multipliers (D = 1); for D > 1, products of those variables.
	vars := collectVars(polys)
	multipliers := buildMultipliers(vars, cfg.Deg)
expansion:
	for _, p := range polys {
		for _, m := range multipliers {
			q := p.MulMonomial(m)
			if q.IsZero() {
				continue
			}
			expanded = append(expanded, q)
			// Recheck the size bound periodically (counting distinct
			// monomials is itself linear in the system size).
			if len(expanded)%64 == 0 {
				cols := countMonomials(expanded)
				if uint64(len(expanded))*uint64(cols) > limit {
					break expansion
				}
			}
		}
	}
	return gjeFacts(expanded)
}

// subsample uniformly picks equations until the linearized size
// (rows × distinct monomials) reaches about 2^M (§II-B: m′·n′ ≳ 2^M).
func subsample(sys *anf.System, m int, rng *rand.Rand) []anf.Poly {
	all := sys.Polys()
	if len(all) == 0 {
		return nil
	}
	target := uint64(1) << uint(m)
	perm := rng.Perm(len(all))
	monos := map[string]struct{}{}
	var out []anf.Poly
	for _, idx := range perm {
		p := all[idx]
		out = append(out, p)
		for _, t := range p.Terms() {
			monos[t.Key()] = struct{}{}
		}
		if uint64(len(out))*uint64(len(monos)) >= target {
			break
		}
	}
	return out
}

func collectVars(polys []anf.Poly) []anf.Var {
	seen := map[anf.Var]struct{}{}
	for _, p := range polys {
		for _, v := range p.Vars() {
			seen[v] = struct{}{}
		}
	}
	out := make([]anf.Var, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// buildMultipliers returns all monomials of degree 1..deg over vars.
func buildMultipliers(vars []anf.Var, deg int) []anf.Monomial {
	var out []anf.Monomial
	var cur []anf.Var
	var rec func(start, d int)
	rec = func(start, d int) {
		if len(cur) > 0 {
			out = append(out, anf.NewMonomial(cur...))
		}
		if d == 0 {
			return
		}
		for i := start; i < len(vars); i++ {
			cur = append(cur, vars[i])
			rec(i+1, d-1)
			cur = cur[:len(cur)-1]
		}
	}
	rec(0, deg)
	return out
}

func countMonomials(polys []anf.Poly) int {
	monos := map[string]struct{}{}
	for _, p := range polys {
		for _, t := range p.Terms() {
			monos[t.Key()] = struct{}{}
		}
	}
	return len(monos)
}

// gjeFacts linearizes the polynomials, reduces, and returns the rows that
// are linear equations or of the form monomial ⊕ 1 (Table I's retained
// facts).
func gjeFacts(polys []anf.Poly) []anf.Poly {
	var facts []anf.Poly
	for _, p := range gjeRows(polys) {
		if p.IsLinear() || p.IsMonomialPlusOne() || p.IsOne() {
			facts = append(facts, p)
		}
	}
	return facts
}

// gjeRows linearizes the polynomials (one column per distinct monomial,
// constant column last), runs Gauss–Jordan elimination with the M4R
// kernel, and returns every nonzero reduced row as a polynomial.
func gjeRows(polys []anf.Poly) []anf.Poly {
	// Build the column order: monomials sorted descending (leading terms
	// first) so the reduction eliminates high-degree monomials first,
	// mirroring Table I.
	monoSet := map[string]anf.Monomial{}
	for _, p := range polys {
		for _, t := range p.Terms() {
			monoSet[t.Key()] = t
		}
	}
	monos := make([]anf.Monomial, 0, len(monoSet))
	for _, m := range monoSet {
		monos = append(monos, m)
	}
	sort.Slice(monos, func(i, j int) bool { return monos[i].Compare(monos[j]) > 0 })
	col := map[string]int{}
	for i, m := range monos {
		col[m.Key()] = i
	}
	mat := gf2.NewMatrix(len(polys), len(monos))
	for r, p := range polys {
		for _, t := range p.Terms() {
			mat.Flip(r, col[t.Key()])
		}
	}
	rank := mat.RREFM4R()
	out := make([]anf.Poly, 0, rank)
	for r := 0; r < rank; r++ {
		var terms []anf.Monomial
		row := mat.Row(r)
		for w, word := range row {
			for word != 0 {
				c := w*64 + bits.TrailingZeros64(word)
				word &= word - 1
				if c < len(monos) {
					terms = append(terms, monos[c])
				}
			}
		}
		out = append(out, anf.FromMonomials(terms...))
	}
	return out
}
