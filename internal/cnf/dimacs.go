package cnf

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"unicode/utf8"
)

// MaxVar bounds the variable indices ReadDimacs accepts (whether declared
// in the header or appearing as literals). Inputs beyond it are rejected
// with an error rather than forcing downstream passes to allocate
// per-variable tables for absurd index spaces — a malformed or hostile
// service payload must fail in the parser, not OOM a solver worker.
const MaxVar = 1 << 26

// ReadDimacs parses a DIMACS CNF file. It accepts:
//   - "c ..." comment lines,
//   - a "p cnf <vars> <clauses>" header (optional; inferred if absent),
//   - clause lines of whitespace-separated literals terminated by 0,
//   - CryptoMiniSat-style XOR lines starting with "x" ("x1 2 -3 0"),
//   - clauses spanning multiple lines.
//
// Malformed input — truncated or non-numeric headers, literals outside
// [-MaxVar, MaxVar] or beyond the declared variable count, non-UTF-8
// bytes — returns an error; the reader never panics (see FuzzReadDimacs).
func ReadDimacs(r io.Reader) (*Formula, error) {
	f := &Formula{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	var cur []Lit
	var curXor []int
	inXor := false
	declaredVars := 0
	lineNo := 0
	finishClause := func() error {
		if inXor {
			x := XorClause{RHS: true}
			for _, d := range curXor {
				v := d
				if v < 0 {
					x.RHS = !x.RHS
					v = -v
				}
				x.Vars = append(x.Vars, Var(v-1))
			}
			f.Xors = append(f.Xors, x)
			curXor = curXor[:0]
			inXor = false
			return nil
		}
		f.Clauses = append(f.Clauses, append(Clause(nil), cur...))
		cur = cur[:0]
		return nil
	}
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if !utf8.ValidString(line) {
			return nil, fmt.Errorf("dimacs line %d: invalid UTF-8", lineNo)
		}
		if line == "" || strings.HasPrefix(line, "c") {
			continue
		}
		if strings.HasPrefix(line, "p") {
			fields := strings.Fields(line)
			if len(fields) < 4 || fields[1] != "cnf" {
				return nil, fmt.Errorf("dimacs line %d: truncated or bad problem line %q", lineNo, line)
			}
			n, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, fmt.Errorf("dimacs line %d: %w", lineNo, err)
			}
			if _, err := strconv.Atoi(fields[3]); err != nil {
				return nil, fmt.Errorf("dimacs line %d: %w", lineNo, err)
			}
			if n < 0 || n > MaxVar {
				return nil, fmt.Errorf("dimacs line %d: declared variable count %d out of range [0, %d]", lineNo, n, MaxVar)
			}
			declaredVars = n
			continue
		}
		if strings.HasPrefix(line, "x") {
			if len(cur) > 0 || inXor {
				return nil, fmt.Errorf("dimacs line %d: xor line inside unterminated clause", lineNo)
			}
			inXor = true
			line = line[1:]
		}
		for _, tok := range strings.Fields(line) {
			d, err := strconv.Atoi(tok)
			if err != nil {
				return nil, fmt.Errorf("dimacs line %d: bad literal %q", lineNo, tok)
			}
			if d == 0 {
				if err := finishClause(); err != nil {
					return nil, err
				}
				continue
			}
			v := d
			if v < 0 {
				v = -v
			}
			if v < 0 || v > MaxVar { // v < 0: -d overflowed (d == MinInt)
				return nil, fmt.Errorf("dimacs line %d: literal %d out of range (max variable %d)", lineNo, d, MaxVar)
			}
			if declaredVars > 0 && v > declaredVars {
				return nil, fmt.Errorf("dimacs line %d: literal %d exceeds declared variable count %d", lineNo, d, declaredVars)
			}
			if v > f.NumVars {
				f.NumVars = v
			}
			if inXor {
				curXor = append(curXor, d)
			} else {
				l, _ := LitFromDimacs(d)
				cur = append(cur, l)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(cur) > 0 || inXor && len(curXor) > 0 {
		return nil, fmt.Errorf("dimacs: unterminated clause at EOF")
	}
	if declaredVars > f.NumVars {
		f.NumVars = declaredVars
	}
	return f, nil
}

// WriteDimacs writes the formula in DIMACS format, XOR clauses as "x" lines.
func WriteDimacs(w io.Writer, f *Formula) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "p cnf %d %d\n", f.NumVars, len(f.Clauses)+len(f.Xors))
	for _, c := range f.Clauses {
		for _, l := range c {
			fmt.Fprintf(bw, "%d ", l.Dimacs())
		}
		if _, err := bw.WriteString("0\n"); err != nil {
			return err
		}
	}
	for _, x := range f.Xors {
		bw.WriteByte('x')
		for i, v := range x.Vars {
			d := int(v) + 1
			if i == len(x.Vars)-1 && !x.RHS {
				d = -d
			}
			fmt.Fprintf(bw, "%d ", d)
		}
		if _, err := bw.WriteString("0\n"); err != nil {
			return err
		}
	}
	return bw.Flush()
}
