package proof

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"

	"repro/internal/cnf"
	"repro/internal/gf2"
)

// CheckResult summarizes a checked proof stream.
type CheckResult struct {
	// Verified is true when the proof derives the empty clause (directly,
	// or by forcing a top-level conflict) and every step checked out.
	Verified bool
	// Steps is the number of proof records processed.
	Steps int
	// Adds, Deletes, Justified count the record kinds; SkippedDeletes are
	// deletions of clauses not (or no longer) in the database, which are
	// ignored, as in standard forward DRAT checking.
	Adds, Deletes, Justified, SkippedDeletes int
}

// Check verifies a DRAT proof stream against a formula, auto-detecting
// the text or binary form. It returns an error on a malformed stream or a
// step that does not check; a nil error with Verified=false means the
// proof is well-formed but never derives the empty clause.
//
// The checker is a from-scratch streaming forward RUP checker with
// deletion support: additions must have the reverse-unit-propagation
// property against the current clause database, deletions shrink the
// database, and "x" justification records (Gauss/XOR-derived clauses,
// which are generally not RUP) are verified by GF(2) row-space membership
// against the formula's XOR constraints.
func Check(f *cnf.Formula, r io.Reader) (*CheckResult, error) {
	br := bufio.NewReader(r)
	head, _ := br.Peek(256)
	if looksBinary(head) {
		return CheckBinary(f, br)
	}
	return CheckText(f, br)
}

// looksBinary reports whether a proof prefix is in the binary form: text
// DRAT is pure printable ASCII plus whitespace, while every nonempty
// binary record ends with a 0x00 byte.
func looksBinary(head []byte) bool {
	for _, b := range head {
		if b == 0x00 || b >= 0x80 {
			return true
		}
		if b < 0x20 && b != '\n' && b != '\r' && b != '\t' {
			return true
		}
	}
	return false
}

// CheckText verifies a text-form DRAT proof.
func CheckText(f *cnf.Formula, r io.Reader) (*CheckResult, error) {
	c, err := newChecker(f)
	if err != nil {
		return nil, err
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 1<<24)
	sc.Split(bufio.ScanWords)
	var lits []cnf.Lit
	kind := byte('a')
	inClause := false
	for sc.Scan() {
		tok := sc.Text()
		switch {
		case tok == "d" && !inClause:
			kind = 'd'
			inClause = true
			continue
		case tok == "x" && !inClause:
			kind = 'x'
			inClause = true
			continue
		}
		d, err := strconv.Atoi(tok)
		if err != nil {
			return nil, fmt.Errorf("proof: step %d: bad token %q", c.res.Steps+1, tok)
		}
		if d == 0 {
			if err := c.step(kind, lits); err != nil {
				return nil, err
			}
			if c.res.Verified {
				return c.res, nil
			}
			lits = lits[:0]
			kind = 'a'
			inClause = false
			continue
		}
		inClause = true
		l, err := cnf.LitFromDimacs(d)
		if err != nil {
			return nil, fmt.Errorf("proof: step %d: %v", c.res.Steps+1, err)
		}
		lits = append(lits, l)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if inClause || len(lits) > 0 {
		return nil, fmt.Errorf("proof: truncated final clause")
	}
	return c.res, nil
}

// CheckBinary verifies a binary-form DRAT proof.
func CheckBinary(f *cnf.Formula, r io.Reader) (*CheckResult, error) {
	c, err := newChecker(f)
	if err != nil {
		return nil, err
	}
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReader(r)
	}
	var lits []cnf.Lit
	for {
		tag, err := br.ReadByte()
		if err == io.EOF {
			return c.res, nil
		}
		if err != nil {
			return nil, err
		}
		if tag != 'a' && tag != 'd' && tag != 'x' {
			return nil, fmt.Errorf("proof: step %d: bad record tag 0x%02x", c.res.Steps+1, tag)
		}
		lits = lits[:0]
		for {
			u, err := readUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("proof: step %d: truncated record: %v", c.res.Steps+1, err)
			}
			if u == 0 {
				break
			}
			if u < 2 {
				return nil, fmt.Errorf("proof: step %d: bad literal code %d", c.res.Steps+1, u)
			}
			lits = append(lits, cnf.Lit(u-2))
		}
		if err := c.step(tag, lits); err != nil {
			return nil, err
		}
		if c.res.Verified {
			return c.res, nil
		}
	}
}

func readUvarint(br *bufio.Reader) (uint32, error) {
	var v uint32
	var shift uint
	for {
		b, err := br.ReadByte()
		if err != nil {
			return 0, err
		}
		if shift >= 35 {
			return 0, fmt.Errorf("varint overflow")
		}
		v |= uint32(b&0x7f) << shift
		if b < 0x80 {
			return v, nil
		}
		shift += 7
	}
}

// chkClause is one active database clause.
type chkClause struct {
	lits []cnf.Lit // lits[0], lits[1] are the watched pair (len >= 2)
	key  string
}

// checker holds the streaming RUP state: a persistent top-level
// assignment, a watched-literal clause database keyed for deletions, and
// the GF(2) basis of the formula's XOR rows.
type checker struct {
	nVars   int
	assigns []int8 // 0 undef, 1 true, -1 false
	trail   []cnf.Lit
	qhead   int
	watches [][]*chkClause
	byKey   map[string][]*chkClause

	xbasis   map[int]*xrow // leading var -> reduced row
	xwords   int
	xorUnsat bool

	contradictory bool
	res           *CheckResult
}

type xrow struct {
	bits []uint64
	rhs  bool
}

func newChecker(f *cnf.Formula) (*checker, error) {
	c := &checker{
		nVars:   f.NumVars,
		assigns: make([]int8, f.NumVars),
		watches: make([][]*chkClause, 2*f.NumVars),
		byKey:   map[string][]*chkClause{},
		xbasis:  map[int]*xrow{},
		xwords:  gf2.Words(f.NumVars),
		res:     &CheckResult{},
	}
	for _, cl := range f.Clauses {
		lits, taut := normalizeLits(cl)
		if taut {
			continue
		}
		if err := c.install(lits); err != nil {
			return nil, fmt.Errorf("proof: input formula: %v", err)
		}
		if c.contradictory {
			// The inputs alone are propagation-inconsistent; any proof over
			// them verifies trivially once it presents the empty clause.
			break
		}
	}
	for _, x := range f.Xors {
		row := &xrow{bits: make([]uint64, c.xwords), rhs: x.RHS}
		for _, v := range x.Vars {
			if int(v) >= f.NumVars {
				return nil, fmt.Errorf("proof: xor references variable %d beyond header", int(v)+1)
			}
			gf2.XorBit(row.bits, int(v))
		}
		c.insertXorRow(row)
	}
	return c, nil
}

// normalizeLits sorts and deduplicates a clause; taut reports a
// complementary pair.
func normalizeLits(in []cnf.Lit) ([]cnf.Lit, bool) {
	lits := append([]cnf.Lit(nil), in...)
	sort.Slice(lits, func(i, j int) bool { return lits[i] < lits[j] })
	out := lits[:0]
	for i, l := range lits {
		if i > 0 && l == lits[i-1] {
			continue
		}
		if i > 0 && l == lits[i-1]^1 {
			return nil, true
		}
		out = append(out, l)
	}
	return out, false
}

func clauseKey(sorted []cnf.Lit) string {
	b := make([]byte, 0, 4*len(sorted))
	for _, l := range sorted {
		b = append(b, byte(l), byte(l>>8), byte(l>>16), byte(l>>24))
	}
	return string(b)
}

func (c *checker) value(l cnf.Lit) int8 {
	a := c.assigns[l.Var()]
	if l.Neg() {
		return -a
	}
	return a
}

// assertTop assigns l true persistently. Returns false on conflict.
func (c *checker) assertTop(l cnf.Lit) bool {
	switch c.value(l) {
	case 1:
		return true
	case -1:
		return false
	}
	if l.Neg() {
		c.assigns[l.Var()] = -1
	} else {
		c.assigns[l.Var()] = 1
	}
	c.trail = append(c.trail, l)
	return true
}

// propagate runs watched-literal unit propagation from qhead. It returns
// false on conflict. Assignments made here are undone by undo (for RUP
// probes) or kept (persistent, when called at top level).
func (c *checker) propagate() bool {
	for c.qhead < len(c.trail) {
		p := c.trail[c.qhead]
		c.qhead++
		// Clauses watching a literal l live in watches[l.Not()], so the
		// clauses whose watch p.Not() just became false are in watches[p].
		falsified := p.Not()
		ws := c.watches[p]
		kept := ws[:0]
		for i := 0; i < len(ws); i++ {
			cl := ws[i]
			// Ensure the falsified literal is lits[1].
			if cl.lits[0] == falsified {
				cl.lits[0], cl.lits[1] = cl.lits[1], cl.lits[0]
			}
			if c.value(cl.lits[0]) == 1 {
				kept = append(kept, cl)
				continue
			}
			// Look for a replacement watch.
			moved := false
			for k := 2; k < len(cl.lits); k++ {
				if c.value(cl.lits[k]) != -1 {
					cl.lits[1], cl.lits[k] = cl.lits[k], cl.lits[1]
					c.watches[cl.lits[1].Not()] = append(c.watches[cl.lits[1].Not()], cl)
					moved = true
					break
				}
			}
			if moved {
				continue
			}
			// Unit or conflict on lits[0].
			kept = append(kept, cl)
			if !c.assertTop(cl.lits[0]) {
				kept = append(kept, ws[i+1:]...)
				c.watches[p] = kept
				return false
			}
		}
		c.watches[p] = kept
	}
	return true
}

// undo unassigns everything past mark (a RUP probe's assumptions and
// their propagations).
func (c *checker) undo(mark int) {
	for i := len(c.trail) - 1; i >= mark; i-- {
		c.assigns[c.trail[i].Var()] = 0
	}
	c.trail = c.trail[:mark]
	if c.qhead > mark {
		c.qhead = mark
	}
}

// install adds an accepted clause to the database, asserting units
// persistently and detecting top-level conflicts.
func (c *checker) install(lits []cnf.Lit) error {
	for _, l := range lits {
		if int(l.Var()) >= c.nVars {
			return fmt.Errorf("clause references variable %d beyond formula", int(l.Var())+1)
		}
	}
	if len(lits) == 0 {
		c.contradictory = true
		return nil
	}
	if len(lits) == 1 {
		if !c.assertTop(lits[0]) || !c.propagate() {
			c.contradictory = true
		}
		return nil
	}
	// Pick two non-false watches; fewer than two means the clause is
	// already unit/conflicting under the persistent assignment.
	w := 0
	for i := 0; i < len(lits) && w < 2; i++ {
		if c.value(lits[i]) != -1 {
			lits[w], lits[i] = lits[i], lits[w]
			w++
		}
	}
	switch w {
	case 0:
		c.contradictory = true
		return nil
	case 1:
		if c.value(lits[0]) != 1 {
			if !c.assertTop(lits[0]) || !c.propagate() {
				c.contradictory = true
				return nil
			}
		}
	}
	sorted := append([]cnf.Lit(nil), lits...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	cl := &chkClause{lits: lits, key: clauseKey(sorted)}
	c.watches[cl.lits[0].Not()] = append(c.watches[cl.lits[0].Not()], cl)
	c.watches[cl.lits[1].Not()] = append(c.watches[cl.lits[1].Not()], cl)
	c.byKey[cl.key] = append(c.byKey[cl.key], cl)
	return nil
}

// rup reports whether clause lits has the reverse-unit-propagation
// property: assuming every literal false propagates to a conflict.
func (c *checker) rup(lits []cnf.Lit) bool {
	if c.contradictory {
		return true
	}
	mark := len(c.trail)
	for _, l := range lits {
		switch c.value(l) {
		case 1:
			// Satisfied at top level: trivially implied.
			c.undo(mark)
			return true
		case 0:
			if !c.assertTop(l.Not()) {
				// Another assumption complements it (defensive; normalized
				// clauses cannot reach this).
				c.undo(mark)
				return true
			}
		}
	}
	conflict := !c.propagate()
	c.undo(mark)
	return conflict
}

// step processes one proof record.
func (c *checker) step(kind byte, rawLits []cnf.Lit) error {
	c.res.Steps++
	for _, l := range rawLits {
		if int(l.Var()) >= c.nVars {
			return fmt.Errorf("proof: step %d: variable %d beyond formula header", c.res.Steps, int(l.Var())+1)
		}
	}
	lits, taut := normalizeLits(rawLits)
	switch kind {
	case 'a':
		c.res.Adds++
		if taut {
			return nil
		}
		if !c.rup(lits) {
			return fmt.Errorf("proof: step %d: clause %s is not RUP", c.res.Steps, cnf.Clause(rawLits))
		}
		if err := c.install(lits); err != nil {
			return fmt.Errorf("proof: step %d: %v", c.res.Steps, err)
		}
	case 'x':
		c.res.Justified++
		if taut {
			return nil
		}
		if !c.justified(lits) {
			return fmt.Errorf("proof: step %d: xor justification %s is not in the input row space", c.res.Steps, cnf.Clause(rawLits))
		}
		if err := c.install(lits); err != nil {
			return fmt.Errorf("proof: step %d: %v", c.res.Steps, err)
		}
	case 'd':
		c.res.Deletes++
		if taut || len(lits) < 2 {
			// Unit/empty deletions are ignored (they would weaken the
			// persistent assignment, which forward checkers never undo).
			c.res.SkippedDeletes++
			return nil
		}
		key := clauseKey(lits)
		list := c.byKey[key]
		if len(list) == 0 {
			c.res.SkippedDeletes++
			return nil
		}
		cl := list[len(list)-1]
		c.byKey[key] = list[:len(list)-1]
		c.detach(cl)
	default:
		return fmt.Errorf("proof: step %d: unknown record kind %q", c.res.Steps, kind)
	}
	if c.contradictory {
		c.res.Verified = true
	}
	return nil
}

func (c *checker) detach(cl *chkClause) {
	for _, w := range []cnf.Lit{cl.lits[0].Not(), cl.lits[1].Not()} {
		ws := c.watches[w]
		for i := range ws {
			if ws[i] == cl {
				ws[i] = ws[len(ws)-1]
				c.watches[w] = ws[:len(ws)-1]
				break
			}
		}
	}
}

// justified checks an XOR-derived clause: the clause forbids exactly one
// assignment α of its variables (each literal made false), so it is
// entailed by the XOR row (vars, ¬parity(α)); the clause checks iff that
// row lies in the GF(2) row space of the formula's XOR constraints.
func (c *checker) justified(lits []cnf.Lit) bool {
	if len(lits) == 0 {
		return c.xorUnsat
	}
	row := &xrow{bits: make([]uint64, c.xwords)}
	parity := false
	for _, l := range lits {
		v := int(l.Var())
		if v >= c.nVars {
			return false
		}
		gf2.XorBit(row.bits, v)
		if l.Neg() {
			parity = !parity
		}
	}
	row.rhs = !parity
	c.reduceXorRow(row)
	if !gf2.IsZero(row.bits) {
		return false
	}
	return !row.rhs || c.xorUnsat
}

func (c *checker) insertXorRow(row *xrow) {
	c.reduceXorRow(row)
	lead := gf2.FirstSetBit(row.bits)
	if lead < 0 {
		if row.rhs {
			c.xorUnsat = true
		}
		return
	}
	c.xbasis[lead] = row
}

func (c *checker) reduceXorRow(row *xrow) {
	for {
		lead := gf2.FirstSetBit(row.bits)
		if lead < 0 {
			return
		}
		piv, ok := c.xbasis[lead]
		if !ok {
			return
		}
		for w := range row.bits {
			row.bits[w] ^= piv.bits[w]
		}
		row.rhs = row.rhs != piv.rhs
	}
}
