package bench

import (
	"strings"
	"testing"
	"time"

	"repro/internal/sat"
	"repro/internal/satgen"
)

func TestCactusSeries(t *testing.T) {
	rs := []InstanceResult{
		{Verdict: sat.Sat, Time: 3 * time.Second},
		{Verdict: sat.Unknown, Time: 5 * time.Second},
		{Verdict: sat.Unsat, Time: time.Second},
	}
	pts := Cactus(rs)
	if len(pts) != 2 {
		t.Fatalf("points = %d, want 2 (unknown excluded)", len(pts))
	}
	if pts[0].Time != time.Second || pts[0].Solved != 1 {
		t.Fatalf("first point %+v", pts[0])
	}
	if pts[1].Time != 3*time.Second || pts[1].Solved != 2 {
		t.Fatalf("second point %+v", pts[1])
	}
}

func TestWriteCactusCSV(t *testing.T) {
	series := map[string][]CactusPoint{
		"minisat-w":   {{Time: time.Second, Solved: 1}},
		"minisat-w/o": {{Time: 2 * time.Second, Solved: 1}, {Time: 3 * time.Second, Solved: 2}},
	}
	var sb strings.Builder
	if err := WriteCactusCSV(&sb, series); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "config,seconds,solved\n") {
		t.Fatalf("header missing:\n%s", out)
	}
	if !strings.Contains(out, "minisat-w,1.000,1") || !strings.Contains(out, "minisat-w/o,3.000,2") {
		t.Fatalf("rows missing:\n%s", out)
	}
}

func TestRunCactusEndToEnd(t *testing.T) {
	easy := satgen.Pigeonhole(4, 4)
	fam := []Job{{Name: easy.Name, CNF: easy.Formula, Truth: easy.Status}}
	cfg := DefaultConfig()
	cfg.Timeout = 2 * time.Second
	cfgB := cfg
	cfgB.UseBosphorus = true
	series := RunCactus(fam, map[string]Config{"w/o": cfg, "w": cfgB})
	if len(series["w/o"]) != 1 || len(series["w"]) != 1 {
		t.Fatalf("series = %v", series)
	}
}
