package sat

import "fmt"

// Stats is a snapshot of the solver's counters. The search counters
// (conflicts through reduceDBs) are representation-independent: the arena
// refactor keeps them bit-identical to the pointer-based seed solver. The
// arena block (GCs, live/wasted words, watch-list shrinks) describes the
// clause store itself.
type Stats struct {
	Vars, Clauses, Learnts             int
	Conflicts, Decisions, Propagations uint64
	Restarts, ReducedDBs               uint64
	XorRows                            int
	ParityClauses                      int
	ArenaGCs                           uint64
	ArenaLiveWords, ArenaWastedWords   int
	WatchShrinks                       uint64
	// SharedExported / SharedImported count clause-exchange traffic. They
	// are zero — and every other counter bit-reproducible from the seed —
	// when no exchange is installed (single-worker mode); with sharing
	// enabled, imports perturb propagation order, so Conflicts, Decisions,
	// Propagations, Restarts, ReducedDBs, Learnts and the arena counters
	// may all vary between runs (the distributed-mode determinism
	// contract; see Solver.SetExchange).
	SharedExported, SharedImported uint64
}

// Snapshot returns the current statistics.
func (s *Solver) Snapshot() Stats {
	return Stats{
		Vars:             s.NumVars(),
		Clauses:          len(s.clauses),
		Learnts:          len(s.learnts),
		Conflicts:        s.Conflicts,
		Decisions:        s.Decisions,
		Propagations:     s.Propagations,
		Restarts:         s.Restarts,
		ReducedDBs:       s.ReducedDBs,
		XorRows:          s.NumXorRows(),
		ParityClauses:    len(s.parities),
		ArenaGCs:         s.ArenaGCs,
		ArenaLiveWords:   s.ca.liveWords(),
		ArenaWastedWords: s.ca.wasted,
		WatchShrinks:     s.WatchShrinks,
		SharedExported:   s.SharedExported,
		SharedImported:   s.SharedImported,
	}
}

// String renders the statistics in a MiniSat-style one-liner.
func (st Stats) String() string {
	return fmt.Sprintf("vars=%d clauses=%d learnts=%d conflicts=%d decisions=%d propagations=%d restarts=%d reduceDBs=%d xors=%d parity=%d arenaGCs=%d arenaWords=%d/%d watchShrinks=%d sharedExp=%d sharedImp=%d",
		st.Vars, st.Clauses, st.Learnts, st.Conflicts, st.Decisions,
		st.Propagations, st.Restarts, st.ReducedDBs, st.XorRows, st.ParityClauses,
		st.ArenaGCs, st.ArenaLiveWords, st.ArenaWastedWords, st.WatchShrinks,
		st.SharedExported, st.SharedImported)
}
