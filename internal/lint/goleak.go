package lint

import (
	"go/ast"
	"go/types"
)

// GoLeakAnalyzer guards the distribution tier's goroutine hygiene. The
// server, cube, share and portfolio packages all spawn workers whose
// lifetimes must be bounded by something — a context, a closable channel,
// a WaitGroup — or a long-lived bosphorusd leaks a goroutine per request.
// For every `go` statement in those packages the analyzer:
//
//   - resolves the goroutine body (function literal, or a declared
//     function/method through the program index) and proves an exit path
//     over its CFG: every reachable block must reach a terminal block
//     (return or fall-off-end). An infinite `for` whose only exits are
//     unreachable is a leak; a `range` over a channel or a ctx.Done()
//     select case with return both satisfy the proof, because they are
//     ordinary CFG edges out of the cycle.
//   - flags pre-1.22-style loop-variable capture: a goroutine literal
//     inside a loop must take the iteration variable as a parameter, not
//     close over it — the repo builds with per-iteration semantics, but
//     the distribution tier's style contract is explicit passing.
//   - checks WaitGroup pairing for literals: a body deferring wg.Done()
//     requires a wg.Add call in the spawning function.
var GoLeakAnalyzer = &Analyzer{
	Name: "goleak",
	Doc:  "goroutines in the distribution tier need a provable exit path and explicit loop-variable passing",
	Run:  runGoLeak,
}

// goLeakScopes are the path fragments the analyzer applies to.
var goLeakScopes = []string{
	"internal/server",
	"internal/cube",
	"internal/share",
	"internal/portfolio",
}

func runGoLeak(pass *Pass) {
	inScope := false
	for _, s := range goLeakScopes {
		if pkgPathHas(pass.Pkg, s) {
			inScope = true
			break
		}
	}
	if !inScope || pass.Prog == nil {
		return
	}
	for _, file := range pass.Pkg.Files {
		var stack []ast.Node
		ast.Inspect(file, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			if g, ok := n.(*ast.GoStmt); ok {
				checkGoStmt(pass, g, stack)
			}
			return true
		})
	}
}

func checkGoStmt(pass *Pass, g *ast.GoStmt, stack []ast.Node) {
	if lit, ok := unparen(g.Call.Fun).(*ast.FuncLit); ok {
		checkLoopCapture(pass, g, lit, stack)
		checkWaitGroupPairing(pass, g, lit, stack)
		if !provablyExits(lit.Body) {
			pass.Reportf(g.Pos(),
				"goroutine has no provable exit path: add a ctx.Done() select case with return, range over a channel that is closed, or bound the loop")
		}
		return
	}
	callee := calleeFunc(pass.Pkg, g.Call)
	if callee == nil {
		pass.Reportf(g.Pos(),
			"goroutine target is not statically resolvable (function value or interface method); spawn a named function or literal so the exit path can be checked")
		return
	}
	ds := pass.Prog.declOf(callee)
	if ds == nil {
		pass.Reportf(g.Pos(),
			"goroutine runs %s, which is outside the module; wrap it in a literal with an explicit exit path", callee.Name())
		return
	}
	if !provablyExits(ds.fd.Body) {
		pass.Reportf(g.Pos(),
			"goroutine running %s has no provable exit path: every loop in it must reach a return (ctx.Done() select, closed-channel range, or bounded iteration)", callee.Name())
	}
}

// provablyExits reports whether every reachable block of the body can
// reach a terminal block (a return or the function's end) — i.e. the
// goroutine cannot be trapped in a cycle with no way out.
func provablyExits(body *ast.BlockStmt) bool {
	cfg := buildCFG(body)
	reach := map[*block]bool{}
	var mark func(*block)
	mark = func(b *block) {
		if reach[b] {
			return
		}
		reach[b] = true
		for _, s := range b.succs {
			mark(s)
		}
	}
	mark(cfg.entry)
	// canExit: fixpoint of "is terminal or has a successor that can exit".
	canExit := map[*block]bool{}
	for changed := true; changed; {
		changed = false
		for _, b := range cfg.blocks {
			if canExit[b] {
				continue
			}
			ok := len(b.succs) == 0
			for _, s := range b.succs {
				if canExit[s] {
					ok = true
					break
				}
			}
			if ok {
				canExit[b] = true
				changed = true
			}
		}
	}
	for b := range reach {
		if !canExit[b] {
			return false
		}
	}
	return true
}

// checkLoopCapture flags goroutine literals that read an enclosing loop's
// iteration variable through the closure instead of a parameter.
func checkLoopCapture(pass *Pass, g *ast.GoStmt, lit *ast.FuncLit, stack []ast.Node) {
	loopVars := map[types.Object]string{}
	for _, n := range stack {
		switch n := n.(type) {
		case *ast.RangeStmt:
			for _, e := range []ast.Expr{n.Key, n.Value} {
				id, ok := e.(*ast.Ident)
				if !ok {
					continue
				}
				if obj := pass.Pkg.Info.Defs[id]; obj != nil {
					loopVars[obj] = id.Name
				} else if obj := pass.Pkg.Info.Uses[id]; obj != nil {
					loopVars[obj] = id.Name
				}
			}
		case *ast.ForStmt:
			as, ok := n.Init.(*ast.AssignStmt)
			if !ok {
				continue
			}
			for _, lhs := range as.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					if obj := pass.Pkg.Info.Defs[id]; obj != nil {
						loopVars[obj] = id.Name
					}
				}
			}
		}
	}
	if len(loopVars) == 0 {
		return
	}
	reported := map[types.Object]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.Pkg.Info.Uses[id]
		if obj == nil || reported[obj] {
			return true
		}
		if name, isLoop := loopVars[obj]; isLoop {
			reported[obj] = true
			pass.Reportf(id.Pos(),
				"goroutine captures loop variable %q; pass it as a parameter (go func(%s ...) { ... }(%s))", name, name, name)
		}
		return true
	})
}

// checkWaitGroupPairing: a literal that defers wg.Done() must be matched
// by a wg.Add call in the function that spawns it.
func checkWaitGroupPairing(pass *Pass, g *ast.GoStmt, lit *ast.FuncLit, stack []ast.Node) {
	var doneRecv string
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		df, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		if calleeName(df.Call) == "Done" {
			if recv := callReceiver(df.Call); recv != nil {
				doneRecv = exprText(pass.Pkg.Fset, recv)
			}
		}
		return true
	})
	if doneRecv == "" {
		return
	}
	var encl *ast.FuncDecl
	for _, n := range stack {
		if fd, ok := n.(*ast.FuncDecl); ok {
			encl = fd
		}
	}
	if encl == nil {
		return
	}
	hasAdd := containsCall(encl.Body, func(c *ast.CallExpr) bool {
		if calleeName(c) != "Add" {
			return false
		}
		recv := callReceiver(c)
		return recv != nil && exprText(pass.Pkg.Fset, recv) == doneRecv
	})
	if !hasAdd {
		pass.Reportf(g.Pos(),
			"goroutine defers %s.Done() but %s never calls %s.Add; the wait-group accounting is unbalanced", doneRecv, encl.Name.Name, doneRecv)
	}
}
