package lint

import (
	"go/ast"
	"go/types"
)

// ProofHookAnalyzer enforces the nil-guard contract of the proof logging
// hooks. The SAT solver's proof stream and the engine's fact ledger are
// optional: with no writer installed, solving must behave byte-identically
// to a build without logging, which the code expresses as nilable hook
// fields of the structural ProofWriter/Writer interface type. Every call
// through such a hook must therefore be dominated by a nil check —
// either an enclosing `if hook != nil`, or an earlier `if hook == nil {
// return }` guard in the same function.
var ProofHookAnalyzer = &Analyzer{
	Name: "proofhook",
	Doc:  "calls on proof.Writer/ProofWriter hooks must be nil-guarded",
	Run:  runProofHook,
}

func runProofHook(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		eachFuncBody(file, func(fd *ast.FuncDecl, body *ast.BlockStmt) {
			checkProofCalls(pass, body)
		})
	}
}

func checkProofCalls(pass *Pass, body *ast.BlockStmt) {
	// stack tracks the enclosing nodes so a call can look upward for its
	// guarding if statement.
	var stack []ast.Node
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		recv := callReceiver(call)
		if recv == nil {
			return true
		}
		t := typeOf(pass.Pkg, recv)
		if t == nil || !isProofWriterInterface(t) {
			return true
		}
		recvText := exprText(pass.Pkg.Fset, recv)
		if guardedByNilCheck(pass, stack, body, call, recvText) {
			return true
		}
		pass.Reportf(call.Pos(),
			"call on proof hook %s without a nil guard; the hook is optional by contract", recvText)
		return true
	}
	ast.Inspect(body, visit)
}

// isProofWriterInterface identifies the proof-writer hook family: an
// interface (possibly behind a named type) whose method set contains both
// Learn and Justify — the structural signature shared by proof.Writer and
// sat.ProofWriter.
func isProofWriterInterface(t types.Type) bool {
	iface, ok := t.Underlying().(*types.Interface)
	if !ok {
		return false
	}
	hasLearn, hasJustify := false, false
	for i := 0; i < iface.NumMethods(); i++ {
		switch iface.Method(i).Name() {
		case "Learn":
			hasLearn = true
		case "Justify":
			hasJustify = true
		}
	}
	return hasLearn && hasJustify
}

// guardedByNilCheck reports whether the call is dominated by a nil check
// on recvText: an ancestor if-statement whose condition mentions
// `recv != nil`, or an earlier `if recv == nil { ... }` whose body always
// leaves the function.
func guardedByNilCheck(pass *Pass, stack []ast.Node, body *ast.BlockStmt, call *ast.CallExpr, recvText string) bool {
	for _, anc := range stack {
		ifs, ok := anc.(*ast.IfStmt)
		if !ok {
			continue
		}
		if condHasNilCompare(pass, ifs.Cond, recvText, true) {
			return true
		}
	}
	// Early-return guard anywhere before the call in the function body.
	guarded := false
	ast.Inspect(body, func(n ast.Node) bool {
		if guarded || n == nil || n.Pos() >= call.Pos() {
			return !guarded && n != nil && n.Pos() < call.Pos()
		}
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		if condHasNilCompare(pass, ifs.Cond, recvText, false) && blockAlwaysExits(ifs.Body) {
			guarded = true
			return false
		}
		return true
	})
	return guarded
}

// condHasNilCompare reports whether cond contains `text != nil` (wantNeq)
// or `text == nil` (!wantNeq), possibly inside && / || chains.
func condHasNilCompare(pass *Pass, cond ast.Expr, text string, wantNeq bool) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		if found {
			return false
		}
		bin, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		var op = bin.Op.String()
		if (wantNeq && op != "!=") || (!wantNeq && op != "==") {
			return true
		}
		x := exprText(pass.Pkg.Fset, bin.X)
		y := exprText(pass.Pkg.Fset, bin.Y)
		if (x == text && y == "nil") || (y == text && x == "nil") {
			found = true
			return false
		}
		return true
	})
	return found
}

// blockAlwaysExits reports whether a block's last statement leaves the
// enclosing function or loop iteration (return, panic, continue, break,
// goto) — good enough for the early-guard idiom.
func blockAlwaysExits(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok && calleeName(call) == "panic" {
			return true
		}
	}
	return false
}
