package sat

import "repro/internal/cnf"

// ClauseExchange is the structural clause-sharing hook for portfolio and
// cube-and-conquer solving. Like ProofWriter it is deliberately small and
// declared here so the solver does not import the implementation
// (internal/share provides the lock-free ring buffer that satisfies it).
//
// Export offers a freshly learnt clause; the exchange decides (LBD cap,
// ring capacity) whether to take it and reports the decision. The lits
// slice may be a view into the solver's arena — implementations must copy
// before returning. Drain delivers foreign clauses to recv; the slice
// passed to recv is only valid for the duration of the call.
type ClauseExchange interface {
	Export(lits []cnf.Lit, lbd int) bool
	Drain(recv func(lits []cnf.Lit))
}

// SetExchange installs (or, with nil, removes) a clause exchange. Learnt
// clauses are offered at learning time; foreign clauses are injected at
// restart boundaries only, so the CDCL inner loop never observes a
// mid-search database change.
//
// Determinism contract: with no exchange installed (the single-worker
// mode), runs are bit-reproducible from Options.RandomSeed. With an
// exchange, imported clauses change propagation order, so the search
// counters (Conflicts, Decisions, Propagations, Restarts, ReducedDBs) and
// the learnt-fact harvest may vary between runs; Stats.SharedImported /
// SharedExported report the exchange traffic that explains the variance.
func (s *Solver) SetExchange(x ClauseExchange) { s.exchange = x }

// exportLearnt offers a just-learnt clause to the exchange.
func (s *Solver) exportLearnt(lits []cnf.Lit, lbd int) {
	if s.exchange == nil {
		return
	}
	if s.exchange.Export(lits, lbd) {
		s.SharedExported++
	}
}

// importShared drains the exchange at a restart boundary (decision level
// 0) and injects the usable clauses as learnt clauses. When a proof
// writer is installed, only clauses that pass a reverse-unit-propagation
// check against the solver's own database are accepted, so every logged
// addition keeps the segment independently DRAT-checkable (an imported
// clause is RUP for its exporter, not automatically for us).
func (s *Solver) importShared() {
	if s.exchange == nil || !s.ok {
		return
	}
	s.exchange.Drain(func(lits []cnf.Lit) {
		if !s.ok {
			return
		}
		s.importClause(lits)
	})
}

func (s *Solver) importClause(lits []cnf.Lit) {
	c := append(cnf.Clause{}, lits...)
	c, taut := c.Normalize()
	if taut {
		return
	}
	for _, l := range c {
		if int(l.Var()) >= s.NumVars() {
			return
		}
	}
	// Level-0 simplification: satisfied clauses carry no information,
	// false literals are dropped (sound: the shortened clause is implied
	// by the original together with the level-0 units).
	out := c[:0]
	for _, l := range c {
		switch s.valueLit(l) {
		case lTrue:
			return
		case lFalse:
			// drop
		default:
			out = append(out, l)
		}
	}
	c = out
	if s.proof != nil && (len(c) == 0 || !s.importRUP(c)) {
		// Not locally re-derivable by unit propagation: logging it would
		// break the proof segment's RUP property, so skip it.
		return
	}
	switch len(c) {
	case 0:
		// Falsified at level 0: the exporter's clause refutes the formula
		// (imported clauses are implied by the shared input).
		s.ok = false
		s.logEmpty()
	case 1:
		s.logLearn(c)
		if !s.enqueue(c[0], NullRef) {
			s.ok = false
			s.logEmpty()
			return
		}
		if conf := s.propagate(); conf != NullRef {
			s.releaseConflict(conf)
			s.ok = false
			s.logEmpty()
			return
		}
	default:
		s.logLearn(c)
		cr := s.ca.alloc(c, true, false)
		// All literals are unassigned at level 0, so the usual LBD (count
		// of distinct trail levels) is meaningless here; the clause width
		// is the standard conservative stand-in.
		s.ca.setLBD(cr, len(c))
		s.learnts = append(s.learnts, cr)
		s.attach(cr)
	}
	s.SharedImported++
}

// importRUP reports whether clause c has the reverse-unit-propagation
// property against the current database: asserting the negation of every
// literal at a throwaway decision level propagates to a conflict. Must be
// called at decision level 0 with propagation at a fixed point; the
// probe level is backtracked before returning.
func (s *Solver) importRUP(c []cnf.Lit) bool {
	s.trailLim = append(s.trailLim, len(s.trail))
	conflict := false
	for _, l := range c {
		if !s.enqueue(l.Not(), NullRef) {
			conflict = true
			break
		}
	}
	if !conflict {
		conf := s.propagate()
		s.releaseConflict(conf)
		conflict = conf != NullRef
	}
	s.cancelUntil(0)
	return conflict
}
