// Package proof is a lint fixture mirroring the real proof package's
// verification surface: Check/VerifyFacts entry points and verdict-
// carrying result types for the verdictcheck analyzer.
package proof

// CheckResult is a verification verdict.
type CheckResult struct {
	Verified bool
	Steps    int
}

// VerifyReport carries a fact-replay verdict.
type VerifyReport struct {
	OK       bool
	Mismatch int
}

// Certificate attests a solved instance.
type Certificate struct {
	Kind string
}

// Check replays a proof and returns its verdict.
func Check(steps int) (*CheckResult, error) {
	return &CheckResult{Verified: steps >= 0, Steps: steps}, nil
}

// VerifyFacts replays learned facts against the original system.
func VerifyFacts(n int) *VerifyReport {
	return &VerifyReport{OK: n >= 0}
}

// NewCertificate constructs a certificate for a solved instance.
func NewCertificate(kind string) *Certificate {
	return &Certificate{Kind: kind}
}
