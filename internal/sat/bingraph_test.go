package sat

import (
	"math/rand"
	"testing"

	"repro/internal/cnf"
)

func TestBinaryEquivalencesPair(t *testing.T) {
	// (a ∨ ¬b) ∧ (¬a ∨ b): a ≡ b.
	f := cnf.NewFormula(2)
	f.AddClause(cnf.MkLit(0, false), cnf.MkLit(1, true))
	f.AddClause(cnf.MkLit(0, true), cnf.MkLit(1, false))
	eqs, ok := BinaryEquivalences(f)
	if !ok {
		t.Fatal("wrongly refuted")
	}
	if len(eqs) != 1 {
		t.Fatalf("equivalences = %v", eqs)
	}
	a, b := eqs[0][0], eqs[0][1]
	if a.Var() == b.Var() {
		t.Fatalf("degenerate pair %v", eqs[0])
	}
	// a ≡ b here, so the pair's literals must have EQUAL polarity on
	// (v0, v1) or both flipped.
	for mask := 0; mask < 4; mask++ {
		assign := func(v cnf.Var) bool { return mask>>uint(v)&1 == 1 }
		if !f.Eval(assign) {
			continue
		}
		va := assign(a.Var()) != a.Neg()
		vb := assign(b.Var()) != b.Neg()
		if va != vb {
			t.Fatalf("pair %v violated by model %02b", eqs[0], mask)
		}
	}
}

func TestBinaryEquivalencesCycle(t *testing.T) {
	// Implication cycle a → b → c → a (as clauses ¬a∨b, ¬b∨c, ¬c∨a):
	// all three equivalent.
	f := cnf.NewFormula(3)
	f.AddClause(cnf.MkLit(0, true), cnf.MkLit(1, false))
	f.AddClause(cnf.MkLit(1, true), cnf.MkLit(2, false))
	f.AddClause(cnf.MkLit(2, true), cnf.MkLit(0, false))
	eqs, ok := BinaryEquivalences(f)
	if !ok {
		t.Fatal("wrongly refuted")
	}
	if len(eqs) != 2 {
		t.Fatalf("want 2 pairs for a 3-cycle, got %v", eqs)
	}
}

func TestBinaryEquivalencesUnsat(t *testing.T) {
	// a → ¬a and ¬a → a: (¬a ∨ ¬a) is not binary with distinct vars, so
	// build it with a helper variable: a→b, b→¬a, ¬a→c, c→a.
	f := cnf.NewFormula(3)
	f.AddClause(cnf.MkLit(0, true), cnf.MkLit(1, false))  // a→b
	f.AddClause(cnf.MkLit(1, true), cnf.MkLit(0, true))   // b→¬a
	f.AddClause(cnf.MkLit(0, false), cnf.MkLit(2, false)) // ¬a→c
	f.AddClause(cnf.MkLit(2, true), cnf.MkLit(0, false))  // c→a
	if _, ok := BinaryEquivalences(f); ok {
		t.Fatal("contradictory implication graph not detected")
	}
	// Confirm with the solver.
	s := NewDefault()
	s.AddFormula(f)
	if s.Solve() != Unsat {
		t.Fatal("solver disagrees: formula is SAT?")
	}
}

func TestBinaryEquivalencesIgnoresLongClauses(t *testing.T) {
	f := cnf.NewFormula(3)
	f.AddClause(cnf.MkLit(0, false), cnf.MkLit(1, false), cnf.MkLit(2, false))
	eqs, ok := BinaryEquivalences(f)
	if !ok || len(eqs) != 0 {
		t.Fatalf("ternary clause produced equivalences: %v", eqs)
	}
}

// Every reported equivalence must hold in every model of the formula.
func TestQuickBinaryEquivalencesSound(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	for trial := 0; trial < 80; trial++ {
		nVars := 3 + rng.Intn(6)
		f := cnf.NewFormula(nVars)
		for i := 0; i < 2+rng.Intn(4*nVars); i++ {
			a := cnf.MkLit(cnf.Var(rng.Intn(nVars)), rng.Intn(2) == 1)
			b := cnf.MkLit(cnf.Var(rng.Intn(nVars)), rng.Intn(2) == 1)
			if a.Var() == b.Var() {
				continue
			}
			f.AddClause(a, b)
		}
		eqs, ok := BinaryEquivalences(f)
		hasModel := false
		for mask := 0; mask < 1<<uint(nVars); mask++ {
			assign := func(v cnf.Var) bool { return mask>>uint(v)&1 == 1 }
			if !f.Eval(assign) {
				continue
			}
			hasModel = true
			if !ok {
				t.Fatalf("trial %d: SCC refuted a satisfiable formula", trial)
			}
			for _, eq := range eqs {
				va := assign(eq[0].Var()) != eq[0].Neg()
				vb := assign(eq[1].Var()) != eq[1].Neg()
				if va != vb {
					t.Fatalf("trial %d: equivalence %v violated by a model", trial, eq)
				}
			}
		}
		_ = hasModel
	}
}

// The exported SCC API must number components in reverse topological
// order: for every implication u → v, comp[v] <= comp[u].
func TestImplicationsComponentOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(505))
	for trial := 0; trial < 60; trial++ {
		nVars := 3 + rng.Intn(8)
		g := NewImplications(nVars)
		type edge struct{ from, to cnf.Lit }
		var edges []edge
		for i := 0; i < 2+rng.Intn(5*nVars); i++ {
			a := cnf.MkLit(cnf.Var(rng.Intn(nVars)), rng.Intn(2) == 1)
			b := cnf.MkLit(cnf.Var(rng.Intn(nVars)), rng.Intn(2) == 1)
			if a.Var() == b.Var() {
				continue
			}
			g.AddBinary(a, b)
			edges = append(edges, edge{a.Not(), b}, edge{b.Not(), a})
		}
		comps := g.SCC()
		for _, e := range edges {
			if comps.Of(e.to) > comps.Of(e.from) {
				t.Fatalf("trial %d: edge %v→%v violates reverse-topological order (%d > %d)",
					trial, e.from, e.to, comps.Of(e.to), comps.Of(e.from))
			}
		}
	}
}

// Unit clauses participate in the SCC analysis: (a) plus a → ¬a must be
// reported as a contradiction.
func TestImplicationsUnitContradiction(t *testing.T) {
	f := cnf.NewFormula(2)
	f.AddClause(cnf.MkLit(0, false))                     // a
	f.AddClause(cnf.MkLit(0, true), cnf.MkLit(1, false)) // a→b
	f.AddClause(cnf.MkLit(1, true), cnf.MkLit(0, true))  // b→¬a
	f.AddClause(cnf.MkLit(0, true))                      // ¬a, closing the loop
	g := NewImplications(f.NumVars)
	g.AddFormulaBinaries(f)
	if v, bad := g.SCC().Contradiction(); !bad {
		t.Fatal("unit-driven contradiction not detected")
	} else if v != 0 {
		t.Fatalf("contradiction witness = %d, want 0", v)
	}
}

func TestImplicationsContradictionDeterministic(t *testing.T) {
	// Both var 1 and var 2 are self-contradictory; witness must be the
	// smallest index.
	g := NewImplications(3)
	g.AddUnit(cnf.MkLit(1, false))
	g.AddUnit(cnf.MkLit(1, true))
	g.AddUnit(cnf.MkLit(2, false))
	g.AddUnit(cnf.MkLit(2, true))
	for i := 0; i < 5; i++ {
		v, bad := g.SCC().Contradiction()
		if !bad || v != 1 {
			t.Fatalf("witness = (%d,%t), want (1,true)", v, bad)
		}
	}
}
