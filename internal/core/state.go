// Package core implements the Bosphorus engine: the XL–ElimLin–SAT-solver
// fact-learning loop over a master ANF system, with ANF propagation after
// every step (paper §II and §III).
package core

import (
	"fmt"

	"repro/internal/anf"
)

// Lit is an ANF-level literal: variable V or its negation (V ⊕ 1).
type Lit struct {
	V   anf.Var
	Neg bool
}

func (l Lit) String() string {
	if l.Neg {
		return "¬" + l.V.String()
	}
	return l.V.String()
}

// Poly returns the literal as a polynomial: V or V ⊕ 1.
func (l Lit) Poly() anf.Poly {
	p := anf.VarPoly(l.V)
	if l.Neg {
		p = p.Add(anf.OnePoly())
	}
	return p
}

// VarState tracks, per variable, the paper's §III-B bookkeeping: its value
// (0, 1 or undetermined) and its equivalence literal. The default
// equivalence literal of a variable is itself.
type VarState struct {
	val []int8 // -1 undetermined, 0, 1
	rep []Lit  // union-find parent with sign; rep[v].V == v means root
}

// NewVarState returns state for n variables, all undetermined.
func NewVarState(n int) *VarState {
	s := &VarState{val: make([]int8, n), rep: make([]Lit, n)}
	for i := range s.val {
		s.val[i] = -1
		s.rep[i] = Lit{V: anf.Var(i)}
	}
	return s
}

// Grow extends the state to cover n variables.
func (s *VarState) Grow(n int) {
	for len(s.val) < n {
		v := anf.Var(len(s.val))
		s.val = append(s.val, -1)
		s.rep = append(s.rep, Lit{V: v})
	}
}

// NumVars returns the tracked variable count.
func (s *VarState) NumVars() int { return len(s.val) }

// Find returns the representative literal of v with path compression:
// v = Find(v).V ⊕ Find(v).Neg.
func (s *VarState) Find(v anf.Var) Lit {
	r := s.rep[v]
	if r.V == v {
		return r
	}
	root := s.Find(r.V)
	out := Lit{V: root.V, Neg: root.Neg != r.Neg}
	s.rep[v] = out
	return out
}

// Value returns the determined value of v (following equivalences), or
// (false, false) when undetermined.
func (s *VarState) Value(v anf.Var) (bool, bool) {
	r := s.Find(v)
	if s.val[r.V] < 0 {
		return false, false
	}
	return (s.val[r.V] == 1) != r.Neg, true
}

// Determined reports whether v has a known value.
func (s *VarState) Determined(v anf.Var) bool {
	_, ok := s.Value(v)
	return ok
}

// Equivalent returns the representative literal of v; if it differs from v
// itself, v is equivalent to that literal.
func (s *VarState) Equivalent(v anf.Var) Lit { return s.Find(v) }

// SetValue fixes v (through its representative) to b. It returns false on
// a contradiction with an earlier value.
func (s *VarState) SetValue(v anf.Var, b bool) bool {
	r := s.Find(v)
	want := int8(0)
	if b != r.Neg {
		want = 1
	}
	if s.val[r.V] >= 0 {
		return s.val[r.V] == want
	}
	s.val[r.V] = want
	return true
}

// Merge records x = y ⊕ neg. It returns (changed, ok): ok is false on
// contradiction.
func (s *VarState) Merge(x, y anf.Var, neg bool) (bool, bool) {
	rx, ry := s.Find(x), s.Find(y)
	// x = y ⊕ neg  ⇔  rx.V ⊕ rx.Neg = ry.V ⊕ ry.Neg ⊕ neg
	sign := rx.Neg != ry.Neg != neg
	if rx.V == ry.V {
		if sign {
			return false, false // v = v ⊕ 1
		}
		return false, true
	}
	// Keep the smaller variable as root (stable, mirrors the paper's
	// "equivalence literal" swaps).
	hi, lo := rx.V, ry.V
	if hi < lo {
		hi, lo = lo, hi
	}
	// Transfer any value on the absorbed root.
	hiVal, loVal := s.val[hi], s.val[lo]
	if hiVal >= 0 && loVal >= 0 {
		consistent := (hiVal == 1) == ((loVal == 1) != sign)
		if !consistent {
			return false, false
		}
	}
	s.rep[hi] = Lit{V: lo, Neg: sign}
	if hiVal >= 0 && loVal < 0 {
		want := int8(0)
		if (hiVal == 1) != sign {
			want = 1
		}
		s.val[lo] = want
	}
	s.val[hi] = -1
	return true, true
}

// NormalizePoly rewrites p using the known values and equivalences.
func (s *VarState) NormalizePoly(p anf.Poly) anf.Poly {
	for _, v := range p.Vars() {
		if int(v) >= len(s.val) {
			continue
		}
		if val, ok := s.Value(v); ok {
			p = p.SubstituteConst(v, val)
			continue
		}
		r := s.Find(v)
		if r.V != v {
			p = p.SubstituteVar(v, r.Poly())
		}
	}
	return p
}

// Assignments returns every determined variable with its value.
func (s *VarState) Assignments() map[anf.Var]bool {
	out := map[anf.Var]bool{}
	for v := range s.val {
		if b, ok := s.Value(anf.Var(v)); ok {
			out[anf.Var(v)] = b
		}
	}
	return out
}

// Equivalences returns every variable whose representative differs from
// itself and is not value-determined, mapped to its representative.
func (s *VarState) Equivalences() map[anf.Var]Lit {
	out := map[anf.Var]Lit{}
	for v := range s.val {
		if s.Determined(anf.Var(v)) {
			continue
		}
		r := s.Find(anf.Var(v))
		if r.V != anf.Var(v) {
			out[anf.Var(v)] = r
		}
	}
	return out
}

// FactPolys renders the state as fact polynomials (assignments and
// equivalences), the form in which they join the output ANF/CNF.
func (s *VarState) FactPolys() []anf.Poly {
	var out []anf.Poly
	for v := 0; v < len(s.val); v++ {
		if b, ok := s.Value(anf.Var(v)); ok {
			// v ⊕ b = 0, but only if v is its own root or mapped: emit per
			// variable for clarity at the output boundary.
			out = append(out, anf.VarPoly(anf.Var(v)).AddConstant(b))
		} else if r := s.Find(anf.Var(v)); r.V != anf.Var(v) {
			out = append(out, anf.VarPoly(anf.Var(v)).Add(r.Poly()))
		}
	}
	return out
}

func (s *VarState) String() string {
	n := 0
	for v := range s.val {
		if s.Determined(anf.Var(v)) {
			n++
		}
	}
	return fmt.Sprintf("state: %d/%d determined, %d equivalences", n, len(s.val), len(s.Equivalences()))
}
