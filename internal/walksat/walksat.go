// Package walksat is a seed-deterministic WalkSAT/Schöning local-search
// solver. It is incomplete — it returns Sat with a verified model or
// Unknown, never Unsat — which makes it safe as a portfolio member: a
// model is checked against the formula before being reported, so a
// wrong answer is impossible and the only cost of incompleteness is a
// worker that stays silent.
//
// The search is the classic WalkSAT loop with Schöning-style restarts:
// start from a random assignment, repeatedly pick an unsatisfied
// constraint, and flip one of its variables — a random one with
// probability Noise, otherwise the one breaking the fewest currently
// satisfied constraints. Parity constraints participate alongside
// OR-clauses: flipping any member of an XOR toggles it, so its break
// contribution is simply "currently satisfied".
//
// Determinism: all randomness flows from one core.NewRNG(Seed)
// generator and all iteration is in slice order, so a (formula, Options)
// pair reproduces its exact flip sequence and verdict.
package walksat

import (
	"context"
	"math/rand"

	"repro/internal/cnf"
	"repro/internal/core"
	"repro/internal/sat"
)

// Options configures a run. Zero values select the defaults noted on
// each field.
type Options struct {
	// Seed drives the run's single RNG.
	Seed int64
	// MaxFlips is the total flip budget across all restarts
	// (default 200000).
	MaxFlips int64
	// Noise is the probability of a random-walk flip instead of the
	// greedy min-break flip (default 0.5).
	Noise float64
	// FlipsPerTry bounds one try before restarting from a fresh random
	// assignment (default max(1000, 10·vars)).
	FlipsPerTry int64
}

// Result of a run. Status is Sat (Model holds a verified assignment) or
// Unknown (budget exhausted, context cancelled, or the formula contains
// a constraint no assignment satisfies).
type Result struct {
	Status sat.Status
	Model  []bool
	Flips  int64
	Tries  int
}

const ctxPollMask = 511 // check ctx every 512 flips

// Solve runs local search on f until a model is found, the flip budget
// is exhausted, or ctx is cancelled.
func Solve(ctx context.Context, f *cnf.Formula, o Options) *Result {
	if o.MaxFlips <= 0 {
		o.MaxFlips = 200000
	}
	if o.Noise <= 0 {
		o.Noise = 0.5
	}
	if o.FlipsPerTry <= 0 {
		o.FlipsPerTry = int64(10 * f.NumVars)
		if o.FlipsPerTry < 1000 {
			o.FlipsPerTry = 1000
		}
	}
	res := &Result{Status: sat.Unknown}
	// Constraints that no flip can ever satisfy make the search futile.
	for _, c := range f.Clauses {
		if len(c) == 0 {
			return res
		}
	}
	for _, x := range f.Xors {
		if len(x.Vars) == 0 && x.RHS {
			return res
		}
	}
	s := newState(f)
	rng := core.NewRNG(o.Seed)
	for res.Flips < o.MaxFlips {
		res.Tries++
		s.restart(rng)
		tryFlips := int64(0)
		for len(s.unsat) > 0 && tryFlips < o.FlipsPerTry && res.Flips < o.MaxFlips {
			if res.Flips&ctxPollMask == 0 && ctx.Err() != nil {
				return res
			}
			ci := s.unsat[rng.Intn(len(s.unsat))]
			v := s.pickVar(ci, o.Noise, rng)
			s.flip(v)
			tryFlips++
			res.Flips++
		}
		if len(s.unsat) == 0 {
			model := append([]bool(nil), s.assign...)
			if !f.Eval(func(vr cnf.Var) bool { return model[vr] }) {
				// State-tracking bug guard: never report an unverified
				// model.
				return res
			}
			res.Status = sat.Sat
			res.Model = model
			return res
		}
	}
	return res
}

// state is the incremental satisfaction bookkeeping. Constraints are
// indexed 0..len(Clauses)-1 for OR-clauses and len(Clauses)+i for
// f.Xors[i].
type state struct {
	f         *cnf.Formula
	occ       [][]int32 // literal → clause indices containing it
	xocc      [][]int32 // var → xor constraint indices containing it
	assign    []bool
	trueCount []int32 // per clause: satisfied literal occurrences
	xorAcc    []bool  // per xor: current parity of its variables
	unsat     []int32 // unsatisfied constraint indices
	pos       []int32 // constraint → index in unsat, -1 when satisfied
	scratch   []cnf.Var
}

func newState(f *cnf.Formula) *state {
	s := &state{
		f:         f,
		occ:       make([][]int32, 2*f.NumVars),
		xocc:      make([][]int32, f.NumVars),
		assign:    make([]bool, f.NumVars),
		trueCount: make([]int32, len(f.Clauses)),
		xorAcc:    make([]bool, len(f.Xors)),
		pos:       make([]int32, len(f.Clauses)+len(f.Xors)),
	}
	for ci, c := range f.Clauses {
		for _, l := range c {
			s.occ[l] = append(s.occ[l], int32(ci))
		}
	}
	for xi, x := range f.Xors {
		for _, v := range x.Vars {
			s.xocc[v] = append(s.xocc[v], int32(len(f.Clauses)+xi))
		}
	}
	return s
}

// restart draws a fresh random assignment and rebuilds the satisfaction
// counters from scratch.
func (s *state) restart(rng *rand.Rand) {
	for v := range s.assign {
		s.assign[v] = rng.Intn(2) == 1
	}
	s.unsat = s.unsat[:0]
	for i := range s.pos {
		s.pos[i] = -1
	}
	for ci, c := range s.f.Clauses {
		n := int32(0)
		for _, l := range c {
			if s.assign[l.Var()] != l.Neg() {
				n++
			}
		}
		s.trueCount[ci] = n
		if n == 0 {
			s.addUnsat(int32(ci))
		}
	}
	for xi, x := range s.f.Xors {
		acc := false
		for _, v := range x.Vars {
			if s.assign[v] {
				acc = !acc
			}
		}
		s.xorAcc[xi] = acc
		if acc != x.RHS {
			s.addUnsat(int32(len(s.f.Clauses) + xi))
		}
	}
}

//
//bosphorus:hotpath unsat-list bookkeeping inside the flip loop
func (s *state) addUnsat(ci int32) {
	if s.pos[ci] >= 0 {
		return
	}
	s.pos[ci] = int32(len(s.unsat))
	s.unsat = append(s.unsat, ci)
}

//
//bosphorus:hotpath unsat-list bookkeeping inside the flip loop
func (s *state) removeUnsat(ci int32) {
	p := s.pos[ci]
	if p < 0 {
		return
	}
	last := s.unsat[len(s.unsat)-1]
	s.unsat[p] = last
	s.pos[last] = p
	s.unsat = s.unsat[:len(s.unsat)-1]
	s.pos[ci] = -1
}

// breakCount is the number of currently satisfied constraints that
// flipping v would falsify: clauses where v carries the only satisfying
// occurrence, plus every satisfied XOR containing v.
//
//bosphorus:hotpath per-candidate break counting inside the flip loop
func (s *state) breakCount(v cnf.Var) int {
	n := 0
	trueLit := cnf.MkLit(v, !s.assign[v])
	for _, ci := range s.occ[trueLit] {
		if s.trueCount[ci] == 1 {
			n++
		}
	}
	for _, xi := range s.xocc[v] {
		if s.xorAcc[xi-int32(len(s.f.Clauses))] == s.f.Xors[xi-int32(len(s.f.Clauses))].RHS {
			n++
		}
	}
	return n
}

// pickVar chooses the variable to flip inside unsatisfied constraint
// ci: a uniformly random member with probability noise, otherwise the
// member with the smallest break count (first-seen wins ties, keeping
// the choice deterministic).
//
//bosphorus:hotpath noise/greedy variable pick inside the flip loop
func (s *state) pickVar(ci int32, noise float64, rng *rand.Rand) cnf.Var {
	vars := s.memberVars(ci)
	if rng.Float64() < noise {
		return vars[rng.Intn(len(vars))]
	}
	best := vars[0]
	bestBreak := s.breakCount(best)
	for _, v := range vars[1:] {
		if b := s.breakCount(v); b < bestBreak {
			best, bestBreak = v, b
		}
	}
	return best
}

// memberVars returns the variables of constraint ci. Clause literals
// are projected into a reused scratch buffer (no per-flip allocation);
// XOR constraints expose their Vars directly.
//
//bosphorus:hotpath constraint-member projection into the reused scratch buffer
func (s *state) memberVars(ci int32) []cnf.Var {
	if int(ci) < len(s.f.Clauses) {
		c := s.f.Clauses[ci]
		s.scratch = s.scratch[:0]
		for _, l := range c {
			s.scratch = append(s.scratch, l.Var())
		}
		return s.scratch
	}
	return s.f.Xors[int(ci)-len(s.f.Clauses)].Vars
}

// flip inverts v and updates the satisfaction counters incrementally.
//
//bosphorus:hotpath WalkSAT flip with incremental satisfaction counters
func (s *state) flip(v cnf.Var) {
	wasTrue := cnf.MkLit(v, !s.assign[v])
	wasFalse := cnf.MkLit(v, s.assign[v])
	for _, ci := range s.occ[wasTrue] {
		s.trueCount[ci]--
		if s.trueCount[ci] == 0 {
			s.addUnsat(ci)
		}
	}
	for _, ci := range s.occ[wasFalse] {
		s.trueCount[ci]++
		if s.trueCount[ci] == 1 {
			s.removeUnsat(ci)
		}
	}
	for _, xi := range s.xocc[v] {
		i := xi - int32(len(s.f.Clauses))
		s.xorAcc[i] = !s.xorAcc[i]
		if s.xorAcc[i] == s.f.Xors[i].RHS {
			s.removeUnsat(xi)
		} else {
			s.addUnsat(xi)
		}
	}
	s.assign[v] = !s.assign[v]
}
