// Lint fixture for directive handling: strict next-statement binding of
// //lint:ignore, orphaned and malformed directives, and misplaced
// //bosphorus:hotpath annotations.
package sat

// suppressedNextStatement: a standalone directive binds to the next
// statement — including every line of a multi-line statement, which the
// old line-proximity matching missed.
func suppressedNextStatement(r ClauseRef) bool {
	//lint:ignore arenaref fixture: whole-statement binding
	bad := r+
		1 == NullRef
	return bad
}

// notSuppressedSecondStatement: the directive binds ONLY to the next
// statement; the violation one statement further down is reported and the
// directive itself is flagged unused.
func notSuppressedSecondStatement(r ClauseRef) ClauseRef {
	//lint:ignore arenaref fixture: binds to the next statement only // want lint "unused //lint:ignore directive"
	ok := r == NullRef
	_ = ok
	return r + 1 // want arenaref "raw ClauseRef offset arithmetic"
}

// inlineStillWorks: a trailing directive suppresses its own line.
func inlineStillWorks(r ClauseRef) ClauseRef {
	return r + 1 //lint:ignore arenaref fixture: inline suppression
}

// misplacedHotpath: the annotation only means something in a function doc
// comment.
func misplacedHotpath() int {
	//bosphorus:hotpath fixture: wrong place // want lint "misplaced //bosphorus:hotpath"
	return 0
}

// badVerb: unknown //bosphorus: directives are findings, so a typo cannot
// silently drop an annotation.
func badVerb() int {
	//bosphorus:hotpth fixture: typo // want lint "unknown //bosphorus directive"
	return 0
}

// malformedIgnore: a suppression without a reason defeats the gate.
func malformedIgnore(r ClauseRef) bool {
	// want lint "malformed //lint:ignore directive"
	//lint:ignore arenaref
	return r == NullRef
}

//lint:ignore arenaref fixture: orphaned, nothing follows // want lint "orphaned //lint:ignore directive"
