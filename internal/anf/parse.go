package anf

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"unicode/utf8"
)

// MaxVarIndex bounds the variable indices the parser accepts. Downstream
// passes allocate dense per-variable tables, so an input naming
// x4000000000 must fail here with an error instead of OOM-ing a solver
// worker — the cap matters for service deployments that parse untrusted
// payloads.
const MaxVarIndex = 1 << 24

// ParsePoly parses a polynomial in the textual ANF format used throughout
// this repository (and by the original Bosphorus tool):
//
//	x1*x2 + x3 + 1
//
// Terms are separated by "+" (GF(2) addition / XOR); variables within a
// term are separated by "*"; "0" and "1" are the constants. Whitespace is
// ignored. "⊕" is accepted as a synonym for "+".
func ParsePoly(s string) (Poly, error) {
	s = strings.ReplaceAll(s, "⊕", "+")
	var monos []Monomial
	for _, term := range strings.Split(s, "+") {
		term = strings.TrimSpace(term)
		if term == "" {
			return Zero(), fmt.Errorf("anf: empty term in %q", s)
		}
		switch term {
		case "0":
			continue
		case "1":
			monos = append(monos, One)
			continue
		}
		var vars []Var
		for _, f := range strings.Split(term, "*") {
			f = strings.TrimSpace(f)
			v, err := parseVar(f)
			if err != nil {
				return Zero(), fmt.Errorf("anf: bad factor %q in %q: %w", f, s, err)
			}
			vars = append(vars, v)
		}
		monos = append(monos, NewMonomial(vars...))
	}
	return FromMonomials(monos...), nil
}

func parseVar(s string) (Var, error) {
	if len(s) < 2 || (s[0] != 'x' && s[0] != 'X') {
		return 0, fmt.Errorf("expected x<index>")
	}
	n, err := strconv.ParseUint(s[1:], 10, 32)
	if err != nil {
		return 0, err
	}
	if n > MaxVarIndex {
		return 0, fmt.Errorf("variable index %d out of range (max %d)", n, MaxVarIndex)
	}
	return Var(n), nil
}

// MustParsePoly is ParsePoly that panics on error; for tests and examples.
func MustParsePoly(s string) Poly {
	p, err := ParsePoly(s)
	if err != nil {
		panic(err)
	}
	return p
}

// ReadSystem parses a polynomial system: one polynomial equation per line,
// '#' and 'c' starting comments, blank lines skipped.
func ReadSystem(r io.Reader) (*System, error) {
	sys := NewSystem()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if !utf8.ValidString(line) {
			return nil, fmt.Errorf("line %d: invalid UTF-8", lineNo)
		}
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "c ") || line == "c" {
			continue
		}
		p, err := ParsePoly(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		sys.Add(p)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return sys, nil
}

// WriteSystem writes the system in the same one-polynomial-per-line format
// accepted by ReadSystem.
func WriteSystem(w io.Writer, sys *System) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# ANF system: %d equations, %d variables\n", sys.Len(), sys.NumVars())
	for _, p := range sys.Polys() {
		if _, err := fmt.Fprintln(bw, p.String()); err != nil {
			return err
		}
	}
	return bw.Flush()
}
