package proof

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/cnf"
)

// square is the 4-clause propagation-complete UNSAT formula over 2 vars.
func square() *cnf.Formula {
	f := &cnf.Formula{}
	f.AddClause(cnf.MkLit(0, false), cnf.MkLit(1, false))
	f.AddClause(cnf.MkLit(0, true), cnf.MkLit(1, false))
	f.AddClause(cnf.MkLit(0, false), cnf.MkLit(1, true))
	f.AddClause(cnf.MkLit(0, true), cnf.MkLit(1, true))
	return f
}

func impl2() *cnf.Formula {
	// (x1 ∨ x2)(¬x1 ∨ x2)(¬x2 ∨ x3): satisfiable.
	f := &cnf.Formula{}
	f.AddClause(cnf.MkLit(0, false), cnf.MkLit(1, false))
	f.AddClause(cnf.MkLit(0, true), cnf.MkLit(1, false))
	f.AddClause(cnf.MkLit(1, true), cnf.MkLit(2, false))
	return f
}

func xor1() *cnf.Formula {
	// x1 ⊕ x2 = 1, three variables declared.
	f := &cnf.Formula{}
	f.NumVars = 3
	f.AddXor(true, 0, 1)
	return f
}

func TestCheckTable(t *testing.T) {
	cases := []struct {
		name     string
		formula  func() *cnf.Formula
		proof    string
		verified bool
		wantErr  bool
	}{
		{"classic-rup-unsat", square, "2 0\n0\n", true, false},
		// Forward checking accepts as soon as the database is contradictory:
		// the unit 2 already propagates the square to a conflict.
		{"early-accept", square, "2 0\n", true, false},
		{"empty-clause-not-rup", square, "0\n", false, true},
		{"unit-not-rup", impl2, "1 0\n", false, true},
		{"unit-rup-but-sat", impl2, "2 0\n", false, false},
		{"delete-then-rup-fails", impl2, "d 1 2 0\n2 0\n", false, true},
		{"delete-unknown-ignored", impl2, "d 1 3 0\n2 0\n", false, false},
		{"xor-justify-both-false", xor1, "x 1 2 0\n", false, false},
		{"xor-justify-both-true", xor1, "x -1 -2 0\n", false, false},
		{"xor-justify-wrong-parity", xor1, "x 1 -2 0\n", false, true},
		{"xor-justify-not-in-span", xor1, "x 3 0\n", false, true},
		{"xor-empty-needs-unsat-rows", xor1, "x 0\n", false, true},
		{"tautology-accepted", impl2, "1 -1 0\n", false, false},
		{"bad-token", impl2, "1 zebra 0\n", false, true},
		{"truncated", impl2, "1 2\n", false, true},
		{"var-out-of-range", impl2, "7 0\n", false, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := Check(tc.formula(), strings.NewReader(tc.proof))
			if tc.wantErr {
				if err == nil {
					t.Fatalf("expected error, got %+v", res)
				}
				return
			}
			if err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if res.Verified != tc.verified {
				t.Fatalf("Verified = %v, want %v (%+v)", res.Verified, tc.verified, res)
			}
		})
	}
}

func TestXorInconsistentRowsJustifyEmpty(t *testing.T) {
	f := &cnf.Formula{}
	f.NumVars = 2
	f.AddXor(true, 0, 1)
	f.AddXor(false, 0, 1)
	res, err := Check(f, strings.NewReader("x 0\n"))
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if !res.Verified {
		t.Fatalf("inconsistent XOR rows + x 0 should verify: %+v", res)
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewBinaryWriter(&buf)
	w.Learn([]cnf.Lit{cnf.MkLit(1, false)}) // 2 0 in DIMACS
	w.Learn(nil)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	res, err := Check(square(), bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Check(binary): %v", err)
	}
	if !res.Verified {
		t.Fatalf("binary round trip should verify: %+v", res)
	}
}

func TestTextWriterForms(t *testing.T) {
	var buf bytes.Buffer
	w := NewTextWriter(&buf)
	w.Learn([]cnf.Lit{cnf.MkLit(0, false), cnf.MkLit(1, true)})
	w.Delete([]cnf.Lit{cnf.MkLit(0, false)})
	w.Justify([]cnf.Lit{cnf.MkLit(2, true)})
	w.Learn(nil)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	want := "1 -2 0\nd 1 0\nx -3 0\n0\n"
	if buf.String() != want {
		t.Fatalf("text form = %q, want %q", buf.String(), want)
	}
}

func TestMutatedProofRejected(t *testing.T) {
	// The classic proof of the square, with the unit's polarity flipped:
	// "-2 0" is still RUP, but then "0" must still check — it does (the
	// square is symmetric), so flip a literal inside a longer proof over a
	// formula where it breaks.
	f := impl2()
	good := "2 0\n3 0\n"
	if _, err := Check(f, strings.NewReader(good)); err != nil {
		t.Fatalf("good proof rejected: %v", err)
	}
	bad := "2 0\n-3 0\n" // ¬x3 is not implied: x2 forces x3
	if _, err := Check(f, strings.NewReader(bad)); err == nil {
		t.Fatalf("mutated proof accepted")
	}
}
