// Lint fixture for the goleak analyzer: every goroutine spawned in the
// distribution tier needs a provable exit path over its CFG, loop
// variables must be passed as parameters, and a deferred wg.Done() needs
// a matching wg.Add in the spawning function.
package server

import (
	"context"
	"sync"
)

// badForever spins with no exit edge: no block in the loop reaches a
// return.
func badForever(work func()) {
	go func() { // want goleak "no provable exit path"
		for {
			work()
		}
	}()
}

// goodCtxSelect exits through the ctx.Done() case — an ordinary CFG edge
// out of the cycle.
func goodCtxSelect(ctx context.Context, jobs chan int, work func(int)) {
	go func() {
		for {
			select {
			case j := <-jobs:
				work(j)
			case <-ctx.Done():
				return
			}
		}
	}()
}

// goodChannelRange exits when the channel closes.
func goodChannelRange(jobs chan int, work func(int)) {
	go func() {
		for j := range jobs {
			work(j)
		}
	}()
}

// goodFinite has no loop at all.
func goodFinite(done chan struct{}, wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		close(done)
	}()
}

// badLoopCapture closes over the iteration variable instead of passing
// it.
func badLoopCapture(jobs []int, work func(int)) {
	for _, j := range jobs {
		go func() {
			work(j) // want goleak "captures loop variable"
		}()
	}
}

// goodLoopParam passes the iteration variable explicitly.
func goodLoopParam(jobs []int, work func(int)) {
	for _, j := range jobs {
		go func(j int) {
			work(j)
		}(j)
	}
}

// badUnbalancedDone defers Done with no Add anywhere in the spawning
// function.
func badUnbalancedDone(wg *sync.WaitGroup, work func()) {
	go func() { // want goleak "never calls wg.Add"
		defer wg.Done()
		work()
	}()
}

type pump struct {
	stop chan struct{}
}

// run loops forever with no exit: resolved through the declaration index
// when spawned below.
func (p *pump) run(work func()) {
	for {
		work()
	}
}

// drain exits when stop is signalled.
func (p *pump) drain(work func()) {
	for {
		select {
		case <-p.stop:
			return
		default:
			work()
		}
	}
}

// badMethodSpawn leaks through a named method, not a literal.
func badMethodSpawn(p *pump, work func()) {
	go p.run(work) // want goleak "running run has no provable exit path"
}

// goodMethodSpawn spawns the stoppable method.
func goodMethodSpawn(p *pump, work func()) {
	go p.drain(work)
}
