package lint

import (
	"fmt"
	"strings"
)

// This file is the one parser for the suite's two comment-directive
// families:
//
//	//lint:ignore <analyzer> <reason>   suppress one finding, with a reason
//	//bosphorus:hotpath [reason]        mark a function allocation-free
//
// Both are line comments; the parser works on the raw comment text so the
// same code path serves the analyzers, the suppression resolver in Run,
// and the FuzzDirectives fuzz target (scripts/check.sh runs it for a few
// seconds next to the proof-checker fuzzes).

// Directive kinds.
const (
	// DirIgnore is a //lint:ignore suppression.
	DirIgnore = "ignore"
	// DirHotpath is a //bosphorus:hotpath allocation-free annotation.
	DirHotpath = "hotpath"
)

const (
	ignorePrefix  = "//lint:ignore"
	bosPrefix     = "//bosphorus:"
	hotpathSuffix = "hotpath"
)

// Directive is one parsed comment directive.
type Directive struct {
	// Kind is DirIgnore or DirHotpath.
	Kind string
	// Analyzer is the suppressed analyzer (DirIgnore only).
	Analyzer string
	// Reason is the recorded justification. Required for DirIgnore,
	// optional for DirHotpath.
	Reason string
}

// ParseDirective parses one comment's text. It returns ok=false when the
// comment is not a directive at all, and a non-nil error when it is a
// directive but malformed (missing analyzer, empty reason, unknown
// //bosphorus: verb) — malformed directives are themselves findings, so a
// typo cannot silently disable a suppression or an annotation.
func ParseDirective(text string) (Directive, bool, error) {
	switch {
	case text == ignorePrefix || strings.HasPrefix(text, ignorePrefix+" ") || strings.HasPrefix(text, ignorePrefix+"\t"):
		rest := strings.TrimPrefix(text, ignorePrefix)
		fields := strings.Fields(rest)
		if len(fields) < 2 {
			return Directive{}, true, fmt.Errorf("malformed %s directive: want %q", ignorePrefix, ignorePrefix+" <analyzer> <reason>")
		}
		return Directive{
			Kind:     DirIgnore,
			Analyzer: fields[0],
			Reason:   strings.Join(fields[1:], " "),
		}, true, nil
	case strings.HasPrefix(text, bosPrefix):
		rest := strings.TrimPrefix(text, bosPrefix)
		verb := rest
		reason := ""
		if i := strings.IndexAny(rest, " \t"); i >= 0 {
			verb, reason = rest[:i], strings.TrimSpace(rest[i+1:])
		}
		if verb != hotpathSuffix {
			return Directive{}, true, fmt.Errorf("unknown %s directive %q: the only verb is %q", strings.TrimSuffix(bosPrefix, ":"), verb, hotpathSuffix)
		}
		return Directive{Kind: DirHotpath, Reason: reason}, true, nil
	}
	return Directive{}, false, nil
}
