// bosphoruslint is the repo's multichecker: it loads the module's
// packages with internal/lint (stdlib go/parser + go/types only), runs
// the project-specific analyzers, and prints positioned diagnostics.
//
// Usage:
//
//	bosphoruslint [-json] [-analyzers ctxpoll,gf2pack] [patterns...]
//
// Patterns follow the usual ./... convention and default to ./... from
// the module root above the working directory. Whatever the patterns,
// the whole module dependency graph is loaded and summarized, so the
// dataflow analyzers (arenagc, hotpath, ...) see the same cross-package
// call-effect facts on a targeted run as on a full one. Exit codes:
// 0 clean, 1 diagnostics found, 2 usage or load error.
//
// With -json, diagnostics are emitted as a JSON array with the stable
// schema documented in the README:
//
//	[{"analyzer": "...", "file": "...", "line": N, "col": N, "message": "..."}]
//
// where file is relative to the module root (slash-separated), and the
// array is sorted by (file, line, col). An empty run emits [].
//
// Suppress a single finding with a reasoned directive on (or directly
// above) the offending line:
//
//	//lint:ignore <analyzer> <reason>
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("bosphoruslint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array")
	names := fs.String("analyzers", "", "comma-separated analyzer subset (default: all)")
	list := fs.Bool("list", false, "list the analyzers and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	analyzers, err := lint.ByName(*names)
	if err != nil {
		fmt.Fprintln(stderr, "bosphoruslint:", err)
		return 2
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "bosphoruslint:", err)
		return 2
	}
	root, err := lint.FindModuleRoot(wd)
	if err != nil {
		fmt.Fprintln(stderr, "bosphoruslint:", err)
		return 2
	}
	// Load the full program, not just the matched packages: the dataflow
	// analyzers derive call-effect summaries bottom-up over the module, and
	// a per-package load would leave every cross-package callee unknown
	// (bosphoruslint ./internal/sat would flag cnf.Lit.Var as "no
	// allocation summary").
	prog, err := lint.LoadProgram(root, fs.Args())
	if err != nil {
		fmt.Fprintln(stderr, "bosphoruslint:", err)
		return 2
	}
	diags := lint.RunProgram(prog, analyzers)
	if *jsonOut {
		out := make([]jsonDiag, 0, len(diags))
		for _, d := range diags {
			out = append(out, toJSON(root, d))
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(stderr, "bosphoruslint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d.String())
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// jsonDiag is the stable machine-readable form of one diagnostic. The
// field set and names are frozen (documented in the README and asserted
// by the golden test): CI artifact consumers parse this.
type jsonDiag struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// toJSON flattens a diagnostic, making the file path module-relative and
// slash-separated so output is stable across checkouts and platforms.
func toJSON(root string, d lint.Diagnostic) jsonDiag {
	file := d.Pos.Filename
	if rel, err := filepath.Rel(root, file); err == nil {
		file = rel
	}
	return jsonDiag{
		Analyzer: d.Analyzer,
		File:     filepath.ToSlash(file),
		Line:     d.Pos.Line,
		Col:      d.Pos.Column,
		Message:  d.Message,
	}
}
