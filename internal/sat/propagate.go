package sat

import "repro/internal/cnf"

// propagate performs unit propagation over the watched-literal lists and
// the XOR component until a joint fixed point or a conflict. It returns
// the conflicting clause, or nil.
func (s *Solver) propagate() *clause {
	//lint:ignore ctxpoll propagation reaches a joint fixed point within the current trail (qhead catches up, gauss.advance stops progressing); the search loop above polls the interrupt hook
	for {
		for s.qhead < len(s.trail) {
			p := s.trail[s.qhead] // p is now true; scan watchers of p
			s.qhead++
			s.Propagations++
			if conf := s.propagateLit(p); conf != nil {
				return conf
			}
		}
		if s.gauss == nil {
			return nil
		}
		conf, progressed := s.gauss.advance()
		if conf != nil {
			s.qhead = len(s.trail)
			return conf
		}
		if !progressed && s.qhead >= len(s.trail) {
			return nil
		}
	}
}

func (s *Solver) propagateLit(p cnf.Lit) *clause {
	ws := s.watches[p]
	kept := ws[:0]
	for wi := 0; wi < len(ws); wi++ {
		w := ws[wi]
		// Cheap pre-check: if the blocker is true the clause is satisfied.
		if s.valueLit(w.blocker) == lTrue {
			kept = append(kept, w)
			continue
		}
		c := w.c
		// Normalize so that the false watched literal is lits[1].
		falseLit := p.Not()
		if c.lits[0] == falseLit {
			c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
		}
		first := c.lits[0]
		if first != w.blocker && s.valueLit(first) == lTrue {
			kept = append(kept, watcher{c, first})
			continue
		}
		// Look for a new literal to watch.
		found := false
		for k := 2; k < len(c.lits); k++ {
			if s.valueLit(c.lits[k]) != lFalse {
				c.lits[1], c.lits[k] = c.lits[k], c.lits[1]
				s.watches[c.lits[1].Not()] = append(s.watches[c.lits[1].Not()], watcher{c, first})
				found = true
				break
			}
		}
		if found {
			continue // watcher moved; do not keep
		}
		// Clause is unit or conflicting.
		kept = append(kept, watcher{c, first})
		if s.valueLit(first) == lFalse {
			// Conflict: keep the remaining watchers and bail out.
			kept = append(kept, ws[wi+1:]...)
			s.watches[p] = kept
			s.qhead = len(s.trail)
			return c
		}
		if !s.enqueue(first, c) {
			// enqueue only fails when first is false, handled above.
			panic("sat: enqueue failed on undefined literal")
		}
	}
	s.watches[p] = kept
	return nil
}
