package minimize

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// coverExact verifies the cubes cover exactly the onset within n variables.
func coverExact(t *testing.T, n int, onset []uint32, cubes []Cube) {
	t.Helper()
	inOn := map[uint32]bool{}
	for _, m := range onset {
		inOn[m] = true
	}
	for m := uint32(0); m < 1<<uint(n); m++ {
		covered := false
		for _, c := range cubes {
			if c.Covers(m) {
				covered = true
				break
			}
		}
		if covered != inOn[m] {
			t.Fatalf("minterm %0*b: covered=%v, onset=%v (cubes %v)", n, m, covered, inOn[m], cubes)
		}
	}
}

func TestMinimizeEmpty(t *testing.T) {
	if got := Minimize(3, nil); got != nil {
		t.Fatalf("empty onset gave %v", got)
	}
}

func TestMinimizeConstantOne(t *testing.T) {
	onset := []uint32{0, 1, 2, 3}
	cubes := Minimize(2, onset)
	if len(cubes) != 1 || cubes[0].Mask != 0 {
		t.Fatalf("constant-1 gave %v", cubes)
	}
}

func TestMinimizeSingleMinterm(t *testing.T) {
	cubes := Minimize(3, []uint32{0b101})
	if len(cubes) != 1 || cubes[0].Mask != 0b111 || cubes[0].Val != 0b101 {
		t.Fatalf("single minterm gave %v", cubes)
	}
	coverExact(t, 3, []uint32{0b101}, cubes)
}

func TestMinimizeClassic(t *testing.T) {
	// f(a,b,c) with onset {0,1,2,5,6,7}: the classic QM example minimizes
	// to 3 cubes or fewer.
	onset := []uint32{0, 1, 2, 5, 6, 7}
	cubes := Minimize(3, onset)
	coverExact(t, 3, onset, cubes)
	if len(cubes) > 3 {
		t.Fatalf("classic example needed %d cubes: %v", len(cubes), cubes)
	}
}

func TestMinimizeXor(t *testing.T) {
	// XOR has no mergeable minterms: primes are the minterms themselves.
	onset := []uint32{0b01, 0b10}
	cubes := Minimize(2, onset)
	coverExact(t, 2, onset, cubes)
	if len(cubes) != 2 {
		t.Fatalf("xor gave %d cubes", len(cubes))
	}
}

func TestMintermOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for out-of-range minterm")
		}
	}()
	Minimize(2, []uint32{7})
}

func TestCubeString(t *testing.T) {
	c := Cube{Mask: 0b101, Val: 0b100}
	if got := c.String(); got != "0-1" {
		t.Fatalf("String = %q", got)
	}
	if got := (Cube{}).String(); got != "-" {
		t.Fatalf("empty cube String = %q", got)
	}
}

// Property: for random functions over up to 4 variables the result covers
// exactly the on-set, and is no larger than the on-set.
func TestQuickMinimizeExactness(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(4)
		var onset []uint32
		for m := uint32(0); m < 1<<uint(n); m++ {
			if rng.Intn(2) == 1 {
				onset = append(onset, m)
			}
		}
		cubes := Minimize(n, onset)
		inOn := map[uint32]bool{}
		for _, m := range onset {
			inOn[m] = true
		}
		for m := uint32(0); m < 1<<uint(n); m++ {
			covered := false
			for _, c := range cubes {
				if c.Covers(m) {
					covered = true
					break
				}
			}
			if covered != inOn[m] {
				return false
			}
		}
		return len(cubes) <= len(onset)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// The adder carry function (majority) minimizes to exactly 3 cubes.
func TestMinimizeMajority(t *testing.T) {
	onset := []uint32{0b011, 0b101, 0b110, 0b111}
	cubes := Minimize(3, onset)
	coverExact(t, 3, onset, cubes)
	if len(cubes) != 3 {
		t.Fatalf("majority gave %d cubes: %v", len(cubes), cubes)
	}
}

func TestMinimizeSixVars(t *testing.T) {
	// A larger structured function: parity of the low two bits OR the top
	// bit; checks the greedy path on 6 variables.
	var onset []uint32
	for m := uint32(0); m < 64; m++ {
		if (m&1)^(m>>1&1) == 1 || m>>5&1 == 1 {
			onset = append(onset, m)
		}
	}
	cubes := Minimize(6, onset)
	coverExact(t, 6, onset, cubes)
	if len(cubes) > 5 {
		t.Fatalf("6-var function needed %d cubes", len(cubes))
	}
}
