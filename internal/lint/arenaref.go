package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
)

// ArenaRefAnalyzer keeps the SAT solver's clause arena opaque. A
// sat.ClauseRef is a word offset into the arena's flat backing store, and
// the offset/header encoding (metadata word layout, flag bits, forwarding
// refs) is defined entirely in internal/sat/arena.go. Everywhere else a
// ref is a handle: it may be stored, passed, and compared for (in)equality
// against another ref or NullRef — nothing more. Offset arithmetic or
// header peeking outside the arena is how stale-ref corruption enters
// after a compacting GC changes the encoding's invariants, so:
//
//   - Arithmetic, bitwise, shift and ordering operators on a ClauseRef
//     operand are rejected outside arena files (== and != are the allowed
//     comparisons).
//   - Numeric conversions to or from ClauseRef (ClauseRef(i), int(ref),
//     uint32(ref), ...) are rejected outside arena files.
//   - The clauseArena backing store (the data field) may not be touched
//     outside arena files; go through the accessors.
//
// "Arena files" are arena.go and its unit test arena_test.go, matched by
// basename so the rule follows the file if the package moves.
var ArenaRefAnalyzer = &Analyzer{
	Name: "arenaref",
	Doc:  "ClauseRef offsets and the clause-arena encoding are confined to arena.go",
	Run:  runArenaRef,
}

func runArenaRef(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		base := filepath.Base(pass.Pkg.Fset.Position(file.Pos()).Filename)
		if base == "arena.go" || base == "arena_test.go" {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if arenaRefBinaryOpBanned(n.Op) &&
					(isClauseRefType(typeOf(pass.Pkg, n.X)) || isClauseRefType(typeOf(pass.Pkg, n.Y))) {
					pass.Reportf(n.Pos(),
						"raw ClauseRef offset arithmetic outside arena.go; refs are opaque handles — use the clauseArena accessors")
				}
			case *ast.CallExpr:
				if tv, ok := pass.Pkg.Info.Types[n.Fun]; ok && tv.IsType() && len(n.Args) == 1 {
					target, arg := tv.Type, typeOf(pass.Pkg, n.Args[0])
					switch {
					case isClauseRefType(target) && !isClauseRefType(arg):
						pass.Reportf(n.Pos(),
							"numeric conversion into ClauseRef outside arena.go; refs are minted only by the arena")
					case isClauseRefType(arg) && !isClauseRefType(target) && isNumericType(target):
						pass.Reportf(n.Pos(),
							"numeric conversion out of ClauseRef outside arena.go; the offset is arena-private")
					}
				}
			case *ast.SelectorExpr:
				if n.Sel.Name == "data" && isClauseArenaType(typeOf(pass.Pkg, n.X)) {
					pass.Reportf(n.Sel.Pos(),
						"clause-arena backing store accessed outside arena.go; use the clauseArena accessors")
				}
			}
			return true
		})
	}
}

// arenaRefBinaryOpBanned: everything arithmetic-, bit- or order-shaped.
// EQL and NEQ stay legal — comparing a ref against NullRef (or another
// ref for identity) is the one thing a handle supports.
func arenaRefBinaryOpBanned(op token.Token) bool {
	switch op {
	case token.ADD, token.SUB, token.MUL, token.QUO, token.REM,
		token.AND, token.OR, token.XOR, token.AND_NOT,
		token.SHL, token.SHR,
		token.LSS, token.GTR, token.LEQ, token.GEQ:
		return true
	}
	return false
}

// isClauseRefType matches the named type ClauseRef declared in a package
// under internal/sat (the real solver or the lint fixture's copy).
func isClauseRefType(t types.Type) bool {
	return isSatNamedType(t, "ClauseRef")
}

// isClauseArenaType matches clauseArena (possibly through a pointer).
func isClauseArenaType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	return isSatNamedType(t, "clauseArena")
}

func isSatNamedType(t types.Type, name string) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != name || obj.Pkg() == nil {
		return false
	}
	return strings.Contains("/"+obj.Pkg().Path()+"/", "/internal/sat/")
}

func isNumericType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsNumeric != 0
}
