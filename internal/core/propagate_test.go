package core

import (
	"strings"
	"testing"

	"repro/internal/anf"
)

func sysFrom(t *testing.T, src string) *anf.System {
	t.Helper()
	sys, err := anf.ReadSystem(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestStateValues(t *testing.T) {
	s := NewVarState(4)
	if s.Determined(0) {
		t.Fatal("fresh var determined")
	}
	if !s.SetValue(0, true) {
		t.Fatal("SetValue failed")
	}
	if b, ok := s.Value(0); !ok || !b {
		t.Fatal("Value wrong")
	}
	if !s.SetValue(0, true) {
		t.Fatal("idempotent SetValue failed")
	}
	if s.SetValue(0, false) {
		t.Fatal("contradictory SetValue succeeded")
	}
}

func TestStateEquivalences(t *testing.T) {
	s := NewVarState(5)
	// x1 = ¬x2
	if _, ok := s.Merge(1, 2, true); !ok {
		t.Fatal("merge failed")
	}
	r := s.Find(2)
	if r.V != 1 || !r.Neg {
		t.Fatalf("Find(2) = %v, want ¬x1", r)
	}
	// x2 = x3 → x3 = ¬x1.
	if _, ok := s.Merge(2, 3, false); !ok {
		t.Fatal("second merge failed")
	}
	r3 := s.Find(3)
	if r3.V != 1 || !r3.Neg {
		t.Fatalf("Find(3) = %v, want ¬x1", r3)
	}
	// Setting x3 = 0 forces x1 = 1 and x2 = 0.
	if !s.SetValue(3, false) {
		t.Fatal("SetValue through equivalence failed")
	}
	if b, ok := s.Value(1); !ok || !b {
		t.Fatal("x1 should be 1")
	}
	if b, ok := s.Value(2); !ok || b {
		t.Fatal("x2 should be 0")
	}
}

func TestStateMergeContradiction(t *testing.T) {
	s := NewVarState(3)
	s.Merge(0, 1, false)
	if _, ok := s.Merge(0, 1, true); ok {
		t.Fatal("x0=x1 and x0=¬x1 should contradict")
	}
	s2 := NewVarState(3)
	s2.SetValue(0, true)
	s2.SetValue(1, false)
	if _, ok := s2.Merge(0, 1, false); ok {
		t.Fatal("merging 1=x0 with 0=x1 should contradict")
	}
}

func TestNormalizePoly(t *testing.T) {
	s := NewVarState(4)
	s.SetValue(0, true)
	s.Merge(1, 2, true) // x1 = ¬x2
	p := anf.MustParsePoly("x0*x1 + x2 + x3")
	got := s.NormalizePoly(p)
	// x0=1: x1 + x2 + x3; x1 -> x2+1 (x1=¬x2): (x2+1) + x2 + x3 = x3 + 1.
	want := anf.MustParsePoly("x3 + 1")
	if !got.Equal(want) {
		t.Fatalf("normalize gave %s, want %s", got, want)
	}
}

func TestPropagateValueRules(t *testing.T) {
	// x0 = 0; x1 ⊕ 1 = 0; x2·x3·x4 ⊕ 1 = 0.
	sys := sysFrom(t, "x0\nx1 + 1\nx2*x3*x4 + 1\n")
	p := NewPropagator(sys)
	n, ok := p.Propagate()
	if !ok {
		t.Fatal("unexpected contradiction")
	}
	if n != 5 {
		t.Fatalf("facts = %d, want 5", n)
	}
	checks := []struct {
		v    anf.Var
		want bool
	}{{0, false}, {1, true}, {2, true}, {3, true}, {4, true}}
	for _, c := range checks {
		if b, ok := p.State.Value(c.v); !ok || b != c.want {
			t.Fatalf("x%d = %v,%v want %v", c.v, b, ok, c.want)
		}
	}
	if sys.Len() != 0 {
		t.Fatalf("system should be fully consumed, %d equations left", sys.Len())
	}
}

func TestPropagateEquivalenceRules(t *testing.T) {
	sys := sysFrom(t, "x0 + x1\nx1 + x2 + 1\n")
	p := NewPropagator(sys)
	if _, ok := p.Propagate(); !ok {
		t.Fatal("unexpected contradiction")
	}
	eq := p.State.Equivalences()
	if len(eq) != 2 {
		t.Fatalf("equivalences = %v", eq)
	}
	// x1 = x0, x2 = ¬x0 (roots are minimal variables).
	if r := p.State.Find(1); r.V != 0 || r.Neg {
		t.Fatalf("Find(1) = %v", r)
	}
	if r := p.State.Find(2); r.V != 0 || !r.Neg {
		t.Fatalf("Find(2) = %v", r)
	}
}

func TestPropagateCascade(t *testing.T) {
	// Equivalence + value in a chain: x0=x1, x1=x2, x2=1 forces all to 1.
	sys := sysFrom(t, "x0 + x1\nx1 + x2\nx2 + 1\n")
	p := NewPropagator(sys)
	if _, ok := p.Propagate(); !ok {
		t.Fatal("unexpected contradiction")
	}
	for v := anf.Var(0); v <= 2; v++ {
		if b, ok := p.State.Value(v); !ok || !b {
			t.Fatalf("x%d should be 1", v)
		}
	}
}

func TestPropagateContradiction(t *testing.T) {
	sys := sysFrom(t, "x0\nx0 + 1\n")
	p := NewPropagator(sys)
	if _, ok := p.Propagate(); ok {
		t.Fatal("x0=0 and x0=1 should contradict")
	}
	if !p.Contradiction {
		t.Fatal("Contradiction flag not set")
	}
}

// The paper's §II-E observation: ANF propagation alone, after the XL facts
// are added, solves the example system completely.
func TestPaperExampleXLPlusPropagation(t *testing.T) {
	sys := sysFrom(t, `
x1*x2 + x3 + x4 + 1
x1*x2*x3 + x1 + x3 + 1
x1*x3 + x3*x4*x5 + x3
x2*x3 + x3*x5 + 1
x2*x3 + x5 + 1
`)
	p := NewPropagator(sys)
	if _, ok := p.Propagate(); !ok {
		t.Fatal("base propagation contradicted")
	}
	// The XL facts from §II-E.
	facts := []anf.Poly{
		anf.MustParsePoly("x2*x3*x4 + 1"),
		anf.MustParsePoly("x1*x3*x4 + 1"),
		anf.MustParsePoly("x1 + x5 + 1"),
		anf.MustParsePoly("x1 + x4"),
		anf.MustParsePoly("x3 + 1"),
		anf.MustParsePoly("x1 + x2"),
	}
	if _, ok := p.AddFacts(facts); !ok {
		t.Fatal("adding XL facts contradicted")
	}
	// Expected unique solution: x1=x2=x3=x4=1, x5=0 (equation (2)).
	want := []struct {
		v anf.Var
		b bool
	}{{1, true}, {2, true}, {3, true}, {4, true}, {5, false}}
	for _, w := range want {
		if b, ok := p.State.Value(w.v); !ok || b != w.b {
			t.Fatalf("x%d = %v,%v; want %v", w.v, b, ok, w.b)
		}
	}
	if sys.Len() != 0 {
		t.Fatalf("system not fully solved: %d equations left", sys.Len())
	}
}

func TestAddFactDedup(t *testing.T) {
	sys := sysFrom(t, "x0*x1 + x2\n")
	p := NewPropagator(sys)
	p.Propagate()
	f := anf.MustParsePoly("x0*x1 + x2")
	if p.AddFact(f) {
		t.Fatal("existing fact reported as new")
	}
	if !p.AddFact(anf.MustParsePoly("x0 + x2")) {
		t.Fatal("new fact not added")
	}
}
