package core

import (
	"sync"

	"repro/internal/anf"
)

// linScratch pools the interning and column-ordering state behind a
// linearize→eliminate→extract pass. XL and ElimLin run one such pass per
// iteration over systems of similar size, so the monomial table (its map
// buckets and canonical slice), the flat term-ID buffer, and the column
// permutation are reset and reused instead of reallocated — the table
// rebuild was a visible slice of the xl_sr profile. Resetting is safe for
// escaping results: extracted polynomials copy the canonical Monomial
// values, whose vars backing is never recycled by Reset.
type linScratch struct {
	tab   *anf.MonoTable
	ids   []uint32 // flat term IDs, concatenated per row
	order []uint32 // column → monomial ID, sorted descending
	col   []int    // monomial ID → column
}

var linScratchPool = sync.Pool{
	New: func() interface{} { return &linScratch{tab: anf.NewMonoTable()} },
}

// getLinScratch returns a scratch with an empty table and a cleared ids
// buffer; order/col are sized by linearize.
func getLinScratch() *linScratch {
	s := linScratchPool.Get().(*linScratch)
	s.tab.Reset()
	s.ids = s.ids[:0]
	return s
}

func putLinScratch(s *linScratch) { linScratchPool.Put(s) }

// orderBufs returns the order and col buffers sized for n monomials,
// growing the backing at most geometrically across uses.
func (s *linScratch) orderBufs(n int) ([]uint32, []int) {
	if cap(s.order) < n {
		s.order = make([]uint32, n)
		s.col = make([]int, n)
	}
	s.order = s.order[:n]
	s.col = s.col[:n]
	return s.order, s.col
}
