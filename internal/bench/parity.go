// Native-parity benchmark family. Each job is an XOR-rich instance
// (recovered from clausal form or built natively) solved two ways at the
// same fixed seeds:
//
//   - native: the packed parity clause kind — one arena record per XOR
//     constraint, watched on two variables, propagating the last
//     unassigned variable to the parity-satisfying phase; and
//   - cut: the differential baseline the engine used before the native
//     kind existed — every XOR expanded into its 2^(k-1) CNF clauses
//     (NativeXor and Gauss both off).
//
// The family keeps the parity path honest: the native column must beat
// the cut column on every member (the native kind exists to make
// XOR-heavy search cheaper, not just smaller), and EXPERIMENTS.md tracks
// the ratios PR over PR. Members cover the three shapes the engine
// actually meets: LFSR step relations recovered from clausal form
// (§II-D recovery), long parity chains, and planted dense XOR systems
// just under the Gauss length threshold.
package bench

import (
	"math/rand"
	"testing"

	"repro/internal/cnf"
	"repro/internal/sat"
	"repro/internal/satgen"
)

// ParityJob is one deterministic parity-family benchmark instance.
type ParityJob struct {
	Name string
	// Want is the verdict both arms must produce; a mismatch on either
	// arm marks the measurement invalid rather than publishing a timing
	// for a wrong answer.
	Want sat.Status
	// Build constructs the formula (called outside the timed region).
	// The returned formula carries native f.Xors; the cut arm's clausal
	// expansion happens inside the solver during the timed load.
	Build func() *cnf.Formula
}

// LFSRParity builds an LFSR reachability instance (satgen.LFSRReach) and
// recovers its step relations into native XOR clauses, the same
// clausal-to-parity path the engine's §II-D recovery takes on real
// inputs.
func LFSRParity(nBits, steps int, unsat bool, seed int64) *cnf.Formula {
	inst := satgen.LFSRReach(nBits, steps, unsat, rand.New(rand.NewSource(seed)))
	return sat.RecoverXors(inst.Formula, sat.DefaultNativeXorMaxLen)
}

// ChainParity builds a clausal parity chain (satgen.ParityChain) and
// recovers the parity groups into native XOR clauses.
func ChainParity(nVars, nEqs, width int, planted bool, seed int64) *cnf.Formula {
	inst := satgen.ParityChain(nVars, nEqs, width, planted, rand.New(rand.NewSource(seed)))
	return sat.RecoverXors(inst.Formula, sat.DefaultNativeXorMaxLen)
}

// ParityCascade builds a sliding-window parity chain whose verdict is one
// long unit-propagation cascade and zero conflicts: units pin the first
// width-1 variables to a planted solution, every window X_i = x_i ⊕ … ⊕
// x_{i+width-1} then forces the next variable in order, and with
// unsat=true the final window is repeated with its RHS flipped so the
// cascade ends in a contradiction. Both arms propagate the identical
// implication chain, which makes this the family's propagation-cost
// member: the timing difference is purely watcher-scan and clause-load
// work, 1 parity record vs 2^(width-1) cut clauses per window, with no
// search-path variance to muddy it.
func ParityCascade(nVars, width int, unsat bool, seed int64) *cnf.Formula {
	rng := rand.New(rand.NewSource(seed))
	f := cnf.NewFormula(nVars)
	sol := make([]bool, nVars)
	for i := range sol {
		sol[i] = rng.Intn(2) == 1
	}
	for i := 0; i < width-1; i++ {
		f.AddClause(cnf.MkLit(cnf.Var(i), !sol[i]))
	}
	var lastVars []cnf.Var
	lastRHS := false
	for i := 0; i+width <= nVars; i++ {
		vs := make([]cnf.Var, width)
		rhs := false
		for j := 0; j < width; j++ {
			vs[j] = cnf.Var(i + j)
			if sol[i+j] {
				rhs = !rhs
			}
		}
		f.AddXor(rhs, vs...)
		lastVars, lastRHS = vs, rhs
	}
	if unsat {
		f.AddXor(!lastRHS, lastVars...)
	}
	return f
}

// ParityJobs returns the full family at fixed seeds. Widths stay at or
// under DefaultNativeXorMaxLen so on a Gauss-enabled profile every row
// would stay in-watch — this family measures the parity kind itself,
// not the Gauss side-car (the xor member of the fragment family covers
// elimination). Members are chosen propagation-bound with small, stable
// conflict counts: dense resolution-hard XOR systems have exponential
// search-path variance under either encoding (and are Gauss's job
// anyway), which would drown the encoding cost this family tracks.
func ParityJobs() []ParityJob {
	return []ParityJob{
		{
			Name: "lfsr-b24-s48-unsat",
			Want: sat.Unsat,
			Build: func() *cnf.Formula {
				return LFSRParity(24, 48, true, 11)
			},
		},
		{
			Name: "cascade-v2000-w6-unsat",
			Want: sat.Unsat,
			Build: func() *cnf.Formula {
				return ParityCascade(2000, 6, true, 5)
			},
		},
		{
			Name: "chain-parity-v80-e88-w4-unsat",
			Want: sat.Unsat,
			Build: func() *cnf.Formula {
				return ChainParity(80, 88, 4, false, 21)
			},
		},
		{
			Name: "planted-xor-v400-e150-w6-sat",
			Want: sat.Sat,
			Build: func() *cnf.Formula {
				return XorSystem(400, 150, 6, false, rand.New(rand.NewSource(7)))
			},
		},
		{
			Name: "planted-xor-v300-e280-w6-unsat",
			Want: sat.Unsat,
			Build: func() *cnf.Formula {
				return XorSystem(300, 280, 6, true, rand.New(rand.NewSource(12)))
			},
		},
	}
}

// ParityMeasurement is one job's native-vs-cut timing result.
type ParityMeasurement struct {
	// NativeNsPerOp times solver construction + load + search with the
	// packed parity kind (the DefaultOptions path).
	NativeNsPerOp int64 `json:"native_ns_per_op"`
	// CutNsPerOp times the same solve with NativeXor and Gauss off, so
	// every XOR pays the 2^(k-1) clausal expansion and CDCL search over
	// it.
	CutNsPerOp int64 `json:"cut_ns_per_op"`
	// Speedup is cut/native (0 when either side is unmeasured).
	Speedup float64 `json:"speedup"`
	// Valid reports that both arms produced the job's expected verdict;
	// timings with Valid=false must not be trusted.
	Valid bool `json:"valid"`
}

// MeasureParity benchmarks each job both ways (formula built outside the
// timed region) `rounds` times via testing.Benchmark and returns the
// per-job medians, mirroring MeasureFragment's medians-of-rounds shape
// so the JSON artifacts diff cleanly across PRs.
func MeasureParity(jobs []ParityJob, profile sat.Profile, rounds int) map[string]ParityMeasurement {
	if rounds <= 0 {
		rounds = 5
	}
	solveOnce := func(f *cnf.Formula, opts sat.Options) sat.Status {
		s := sat.New(opts)
		if !s.AddFormula(f) {
			return sat.Unsat
		}
		return s.Solve()
	}
	out := make(map[string]ParityMeasurement, len(jobs))
	for _, job := range jobs {
		f := job.Build()
		nativeOpts := sat.DefaultOptions(profile)
		cutOpts := sat.DefaultOptions(profile)
		cutOpts.NativeXor = false
		cutOpts.EnableGauss = false
		valid := solveOnce(f, nativeOpts) == job.Want && solveOnce(f, cutOpts) == job.Want
		var nativeNs, cutNs []int64
		for r := 0; r < rounds; r++ {
			res := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					solveOnce(f, nativeOpts)
				}
			})
			nativeNs = append(nativeNs, res.NsPerOp())
			res = testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					solveOnce(f, cutOpts)
				}
			})
			cutNs = append(cutNs, res.NsPerOp())
		}
		m := ParityMeasurement{
			NativeNsPerOp: median64(nativeNs),
			CutNsPerOp:    median64(cutNs),
			Valid:         valid,
		}
		if m.NativeNsPerOp > 0 {
			m.Speedup = float64(m.CutNsPerOp) / float64(m.NativeNsPerOp)
		}
		out[job.Name] = m
	}
	return out
}
