package anf

import (
	"strings"
	"testing"
)

func exampleSystem(t *testing.T) *System {
	t.Helper()
	// The worked example of the paper, §II-E, equation (1).
	src := `
# paper equation (1)
x1*x2 + x3 + x4 + 1
x1*x2*x3 + x1 + x3 + 1
x1*x3 + x3*x4*x5 + x3
x2*x3 + x3*x5 + 1
x2*x3 + x5 + 1
`
	sys, err := ReadSystem(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestReadSystemPaperExample(t *testing.T) {
	sys := exampleSystem(t)
	if sys.Len() != 5 {
		t.Fatalf("len = %d, want 5", sys.Len())
	}
	if sys.NumVars() != 6 { // x1..x5 -> indices up to 5, so 6 slots (x0 unused)
		t.Fatalf("numVars = %d, want 6", sys.NumVars())
	}
	if sys.MaxDeg() != 3 {
		t.Fatalf("maxDeg = %d, want 3", sys.MaxDeg())
	}
	// The paper's unique solution: x1=x2=x3=x4=1, x5=0.
	sol := map[Var]bool{1: true, 2: true, 3: true, 4: true, 5: false}
	if !sys.Eval(func(v Var) bool { return sol[v] }) {
		t.Fatal("paper's solution does not satisfy the parsed system")
	}
	// A perturbed assignment must not satisfy it.
	bad := map[Var]bool{1: true, 2: true, 3: true, 4: true, 5: true}
	if sys.Eval(func(v Var) bool { return bad[v] }) {
		t.Fatal("non-solution satisfied the system")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	sys := exampleSystem(t)
	var sb strings.Builder
	if err := WriteSystem(&sb, sys); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSystem(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != sys.Len() {
		t.Fatalf("round trip changed equation count: %d -> %d", sys.Len(), back.Len())
	}
	for i, p := range sys.Polys() {
		if !back.Polys()[i].Equal(p) {
			t.Fatalf("equation %d changed: %s -> %s", i, p, back.Polys()[i])
		}
	}
}

func TestOccurrenceLists(t *testing.T) {
	sys := exampleSystem(t)
	// x1 occurs in equations 0,1,2 (indices into insertion order). The
	// paper (§III-B) points out updates to x1 skip the last two equations.
	occ := sys.Occurrences(1)
	if len(occ) != 3 {
		t.Fatalf("x1 occurrence list = %v", occ)
	}
	if sys.OccurrenceCount(1) != 3 {
		t.Fatalf("x1 occurrence count = %d", sys.OccurrenceCount(1))
	}
	if sys.OccurrenceCount(5) != 3 {
		t.Fatalf("x5 occurrence count = %d", sys.OccurrenceCount(5))
	}
	// Replace equation 0 with one not containing x1: count drops, list may
	// keep the stale slot but OccurrenceCount must be exact.
	sys.Replace(0, MustParsePoly("x3 + x4"))
	if sys.OccurrenceCount(1) != 2 {
		t.Fatalf("after replace, x1 count = %d, want 2", sys.OccurrenceCount(1))
	}
}

func TestAddIgnoresZero(t *testing.T) {
	sys := NewSystem()
	if sys.Add(Zero()) {
		t.Fatal("adding zero polynomial should report false")
	}
	if !sys.Add(MustParsePoly("x0 + 1")) {
		t.Fatal("adding nonzero polynomial should report true")
	}
	if sys.Len() != 1 {
		t.Fatalf("len = %d", sys.Len())
	}
}

func TestContains(t *testing.T) {
	sys := exampleSystem(t)
	if !sys.Contains(MustParsePoly("x2*x3 + x5 + 1")) {
		t.Fatal("Contains missed an existing equation")
	}
	if sys.Contains(MustParsePoly("x2*x3 + x5")) {
		t.Fatal("Contains matched a non-member")
	}
	sys.Add(OnePoly())
	if !sys.Contains(OnePoly()) {
		t.Fatal("Contains missed the constant equation")
	}
	if !sys.HasContradiction() {
		t.Fatal("HasContradiction missed 1 = 0")
	}
}

func TestCloneIsIndependent(t *testing.T) {
	sys := exampleSystem(t)
	c := sys.Clone()
	c.Replace(0, MustParsePoly("x9"))
	if sys.At(0).Equal(MustParsePoly("x9")) {
		t.Fatal("clone shares state with original")
	}
	if c.NumVars() <= sys.NumVars() {
		t.Fatal("clone did not track new variable")
	}
}

func TestSortedByDegree(t *testing.T) {
	sys := exampleSystem(t)
	ps := sys.SortedByDegree()
	for i := 1; i < len(ps); i++ {
		if ps[i].Deg() < ps[i-1].Deg() {
			t.Fatalf("not sorted by degree at %d", i)
		}
	}
	if ps[0].Deg() != 2 || ps[len(ps)-1].Deg() != 3 {
		t.Fatalf("degree range wrong: %d..%d", ps[0].Deg(), ps[len(ps)-1].Deg())
	}
}

func TestCompactOccurrences(t *testing.T) {
	sys := exampleSystem(t)
	sys.Replace(0, Zero())
	sys.CompactOccurrences()
	for _, i := range sys.Occurrences(1) {
		if sys.At(i).IsZero() {
			t.Fatal("compacted occurrence list references deleted slot")
		}
	}
}

func TestReadSystemErrors(t *testing.T) {
	if _, err := ReadSystem(strings.NewReader("x1 + bad")); err == nil {
		t.Fatal("malformed system parsed without error")
	}
}
