package sat

import "repro/internal/cnf"

// ProofWriter receives the solver's DRAT proof events: learnt-clause
// additions, clause deletions, and XOR-justified clauses (Gauss/GJE
// reasons and conflicts, which are entailed by the input XOR rows rather
// than RUP-derivable). The interface is structural on purpose — the
// solver does not import internal/proof; proof.TextWriter and
// proof.BinaryWriter satisfy it implicitly, and with no writer installed
// the solver's behavior is byte-identical to a build without logging.
//
// The lits slices passed to a writer may be views into the solver's clause
// arena, valid only for the duration of the call: a writer must encode or
// copy them before returning, never retain them.
type ProofWriter interface {
	Learn(lits []cnf.Lit)
	Delete(lits []cnf.Lit)
	Justify(lits []cnf.Lit)
	Flush() error
}

// SetProof installs (or, with nil, removes) a proof writer. Install it
// before adding clauses so the stream covers every derivation; the
// emitted stream together with the exact input formula forms a
// certificate checkable by the internal/proof checker.
func (s *Solver) SetProof(w ProofWriter) { s.proof = w }

func (s *Solver) logLearn(lits []cnf.Lit) {
	if s.proof != nil {
		s.proof.Learn(lits)
	}
}

func (s *Solver) logDelete(lits []cnf.Lit) {
	if s.proof != nil {
		s.proof.Delete(lits)
	}
}

func (s *Solver) logJustify(lits []cnf.Lit) {
	if s.proof != nil {
		s.proof.Justify(lits)
	}
}

// logEmpty records the empty-clause derivation — the UNSAT terminator —
// at most once per solver.
func (s *Solver) logEmpty() {
	if s.proof != nil && !s.loggedEmpty {
		s.loggedEmpty = true
		s.proof.Learn(nil)
	}
}
