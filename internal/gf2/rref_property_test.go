package gf2

import (
	"math/rand"
	"testing"
)

// forceBlockedApply shrinks the calibrated fast-cache budget so applyRound
// takes the column-blocked strip path even on small test matrices, and
// returns a restore func. The calibration is forced first so the Once does
// not overwrite the override later.
func forceBlockedApply() func() {
	calibOnce.Do(calibrate)
	old := fastCacheWords
	fastCacheWords = minStripWords
	return func() { fastCacheWords = old }
}

// The column-blocked strip path must produce the same unique RREF as the
// scalar kernel on every shape, including tail-word widths and zero rows.
// The default calibration keeps small matrices on the fused path, so the
// budget is pinned down to route every round through the strips.
func TestBlockedApplyMatchesScalar(t *testing.T) {
	defer forceBlockedApply()()
	rng := rand.New(rand.NewSource(97))
	for trial := 0; trial < 80; trial++ {
		m := randomShapedMatrix(rng)
		// Splice in explicit zero rows to exercise the lead sentinel.
		for i := 0; i < m.Rows()/8; i++ {
			r := rng.Intn(m.Rows())
			row := m.Row(r)
			for w := range row {
				row[w] = 0
			}
		}
		plain, blocked := m.Clone(), m.Clone()
		rp := plain.RREF()
		for _, workers := range []int{1, 2, 5} {
			got := blocked.Clone()
			if rg := got.RREFM4RWorkers(workers); rg != rp {
				t.Fatalf("trial %d workers=%d (%dx%d): rank %d, want %d",
					trial, workers, m.Rows(), m.Cols(), rg, rp)
			} else if !got.Equal(plain) {
				t.Fatalf("trial %d workers=%d (%dx%d): blocked RREF differs from scalar",
					trial, workers, m.Rows(), m.Cols())
			}
		}
	}
}

// Degenerate shapes must not panic and must agree with the scalar kernel.
func TestKernelDegenerateShapes(t *testing.T) {
	shapes := []struct{ rows, cols int }{
		{0, 0}, {0, 5}, {5, 0}, {1, 1}, {1, 200}, {200, 1}, {3, 64}, {64, 3},
	}
	rng := rand.New(rand.NewSource(5))
	for _, sh := range shapes {
		m := NewMatrix(sh.rows, sh.cols)
		for r := 0; r < sh.rows; r++ {
			for c := 0; c < sh.cols; c++ {
				if rng.Intn(2) == 0 {
					m.Set(r, c, true)
				}
			}
		}
		plain, m4r := m.Clone(), m.Clone()
		if rp, rm := plain.RREF(), m4r.RREFM4RWorkers(4); rp != rm || !plain.Equal(m4r) {
			t.Fatalf("%dx%d: scalar and M4R kernels disagree (rank %d vs %d)", sh.rows, sh.cols, rp, rm)
		}
		if zero := NewMatrix(sh.rows, sh.cols); zero.RREFM4RWorkers(2) != 0 {
			t.Fatalf("%dx%d: zero matrix must have rank 0", sh.rows, sh.cols)
		}
	}
}

// RREFTracked must mirror the optimized kernel bit-identically (RREF is
// unique) and its ops matrix must replay: ops · original == reduced. The
// provenance witnesses and VerifyFacts replay depend on both halves.
func TestTrackedMirrorsOptimizedKernel(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 60; trial++ {
		m := randomShapedMatrix(rng)
		tracked, fast := m.Clone(), m.Clone()
		rt, ops := tracked.RREFTracked()
		rf := fast.RREFM4RWorkers(1 + rng.Intn(4))
		if rt != rf {
			t.Fatalf("trial %d (%dx%d): rank tracked=%d fast=%d", trial, m.Rows(), m.Cols(), rt, rf)
		}
		if !tracked.Equal(fast) {
			t.Fatalf("trial %d (%dx%d): tracked RREF not bit-identical to optimized kernel",
				trial, m.Rows(), m.Cols())
		}
		if replay := ops.Mul(m); !replay.Equal(tracked) {
			t.Fatalf("trial %d (%dx%d): ops matrix does not replay the reduction",
				trial, m.Rows(), m.Cols())
		}
	}
}

// Smeared bits past the last valid column must not change the computed
// RREF of the valid columns: Row() exposes the packed words, so callers
// (linearize buffers, augmented assemblies) can leave garbage in the tail
// word, and lead tracking must treat it as zero.
func TestKernelIgnoresTailGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for _, cols := range []int{5, 63, 65, 127} {
		rows := 20
		m := NewMatrix(rows, cols)
		for r := 0; r < rows; r++ {
			for c := 0; c < cols; c++ {
				if rng.Intn(2) == 0 {
					m.Set(r, c, true)
				}
			}
		}
		clean := m.Clone()
		rc := clean.RREF()
		dirty := m.Clone()
		mask := lastWordMask(cols)
		for r := 0; r < rows; r++ {
			row := dirty.Row(r)
			row[len(row)-1] |= ^mask // smear every invalid bit
		}
		rd := dirty.RREFM4RWorkers(2)
		if rd != rc {
			t.Fatalf("cols=%d: rank with tail garbage %d, want %d", cols, rd, rc)
		}
		for r := 0; r < rows; r++ {
			for c := 0; c < cols; c++ {
				if dirty.Get(r, c) != clean.Get(r, c) {
					t.Fatalf("cols=%d: bit (%d,%d) differs under tail garbage", cols, r, c)
				}
			}
		}
	}
}
