package anf

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randPoly(rng *rand.Rand, maxVar, maxTerms, maxDeg int) Poly {
	n := rng.Intn(maxTerms + 1)
	ms := make([]Monomial, n)
	for i := range ms {
		d := rng.Intn(maxDeg + 1)
		vars := make([]Var, d)
		for j := range vars {
			vars[j] = Var(rng.Intn(maxVar))
		}
		ms[i] = NewMonomial(vars...)
	}
	return FromMonomials(ms...)
}

func TestPolyCanonicalCancel(t *testing.T) {
	// x1 + x1 = 0; x1 + x1 + x1 = x1.
	p := FromMonomials(NewMonomial(1), NewMonomial(1))
	if !p.IsZero() {
		t.Fatalf("x1+x1 = %s, want 0", p)
	}
	p = FromMonomials(NewMonomial(1), NewMonomial(1), NewMonomial(1))
	if p.String() != "x1" {
		t.Fatalf("x1+x1+x1 = %s, want x1", p)
	}
}

func TestPolyParseRoundTrip(t *testing.T) {
	cases := []string{
		"0",
		"1",
		"x0",
		"x1*x2 + x3 + 1",
		"x1*x2*x3 + x1 + x3 + 1",
		"x3*x4*x5 + x1*x3 + x3",
	}
	for _, s := range cases {
		p := MustParsePoly(s)
		q := MustParsePoly(p.String())
		if !p.Equal(q) {
			t.Fatalf("round trip of %q gave %q", s, p.String())
		}
	}
}

func TestPolyParseErrors(t *testing.T) {
	for _, s := range []string{"", "x", "y1", "x1 *", "x1 + + x2", "x1*x2 + za"} {
		if _, err := ParsePoly(s); err == nil {
			t.Errorf("ParsePoly(%q) succeeded, want error", s)
		}
	}
}

func TestPolyAddProperties(t *testing.T) {
	a := MustParsePoly("x1*x2 + x3")
	b := MustParsePoly("x3 + 1")
	sum := a.Add(b)
	if sum.String() != "x1*x2 + 1" {
		t.Fatalf("sum = %s", sum)
	}
	if !a.Add(a).IsZero() {
		t.Fatal("p + p != 0")
	}
	if !a.Add(Zero()).Equal(a) {
		t.Fatal("p + 0 != p")
	}
}

func TestPolyMul(t *testing.T) {
	// (x1 + 1)(x1 + 1) = x1*x1 + x1 + x1 + 1 = x1 + 1 over GF(2)... no:
	// x1*x1 = x1, so x1 + x1 + x1 + 1 = x1 + 1.
	a := MustParsePoly("x1 + 1")
	if got := a.Mul(a); !got.Equal(a) {
		t.Fatalf("(x1+1)^2 = %s, want x1 + 1", got)
	}
	// (x1 + x2)(x1 + x2) = x1 + x2 (Frobenius: squaring is identity on
	// Boolean polynomials' zero sets, and x1x2 terms cancel pairwise).
	b := MustParsePoly("x1 + x2")
	if got := b.Mul(b); !got.Equal(b) {
		t.Fatalf("(x1+x2)^2 = %s", got)
	}
	// ElimLin example from the paper (§II-C): substituting x1 = x2 ⊕ x3 in
	// x1*x2 ⊕ x2*x3 ⊕ 1 gives (x2⊕x3)x2 ⊕ x2x3 ⊕ 1 = x2 ⊕ 1.
	sub := MustParsePoly("x2 + x3")
	e := MustParsePoly("x1*x2 + x2*x3 + 1")
	got := e.SubstituteVar(1, sub)
	if got.String() != "x2 + 1" {
		t.Fatalf("paper ElimLin simplification gave %s, want x2 + 1", got)
	}
}

func TestPolyDegLead(t *testing.T) {
	p := MustParsePoly("x1*x2*x3 + x1 + 1")
	if p.Deg() != 3 {
		t.Fatalf("deg = %d", p.Deg())
	}
	if p.Lead().String() != "x1*x2*x3" {
		t.Fatalf("lead = %s", p.Lead())
	}
	if Zero().Deg() != -1 {
		t.Fatal("deg of 0 should be -1")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Lead of zero did not panic")
		}
	}()
	Zero().Lead()
}

func TestPolyEval(t *testing.T) {
	p := MustParsePoly("x1*x2 + x3 + 1")
	assign := func(vals map[Var]bool) func(Var) bool {
		return func(v Var) bool { return vals[v] }
	}
	// x1=1,x2=1,x3=0 -> 1+0+1 = 0
	if p.Eval(assign(map[Var]bool{1: true, 2: true})) {
		t.Fatal("eval wrong for satisfying assignment")
	}
	// x1=0,x2=0,x3=0 -> 0+0+1 = 1
	if !p.Eval(assign(map[Var]bool{})) {
		t.Fatal("eval wrong for violating assignment")
	}
}

func TestSubstituteConst(t *testing.T) {
	p := MustParsePoly("x1*x2 + x2*x3 + 1")
	got := p.SubstituteConst(2, true)
	if got.String() != "x1 + x3 + 1" {
		t.Fatalf("substitute x2=1 gave %s", got)
	}
	got = p.SubstituteConst(2, false)
	if !got.IsOne() {
		t.Fatalf("substitute x2=0 gave %s, want 1", got)
	}
}

func TestLinearHelpers(t *testing.T) {
	lin := MustParsePoly("x1 + x4 + 1")
	if !lin.IsLinear() {
		t.Fatal("x1+x4+1 should be linear")
	}
	vs := lin.LinearVars()
	if len(vs) != 2 || vs[0] != 1 || vs[1] != 4 {
		t.Fatalf("LinearVars = %v", vs)
	}
	if MustParsePoly("x1*x2").IsLinear() {
		t.Fatal("x1*x2 is not linear")
	}
	if !MustParsePoly("x1*x2*x3 + 1").IsMonomialPlusOne() {
		t.Fatal("x1*x2*x3 + 1 should be monomial-plus-one")
	}
	if MustParsePoly("x1*x2 + x3 + 1").IsMonomialPlusOne() {
		t.Fatal("three-term poly is not monomial-plus-one")
	}
	if MustParsePoly("1").IsMonomialPlusOne() {
		t.Fatal("constant 1 is not monomial-plus-one")
	}
}

func TestVarsContainsMaxVar(t *testing.T) {
	p := MustParsePoly("x1*x7 + x3 + 1")
	vs := p.Vars()
	if len(vs) != 3 || vs[0] != 1 || vs[1] != 3 || vs[2] != 7 {
		t.Fatalf("Vars = %v", vs)
	}
	if !p.ContainsVar(7) || p.ContainsVar(2) {
		t.Fatal("ContainsVar wrong")
	}
	if mv, ok := p.MaxVar(); !ok || mv != 7 {
		t.Fatalf("MaxVar = %d,%v", mv, ok)
	}
	if _, ok := OnePoly().MaxVar(); ok {
		t.Fatal("constant poly should have no MaxVar")
	}
}

// Property: ring axioms on random polynomials.
func TestQuickPolyRingAxioms(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randPoly(rng, 6, 5, 3)
		b := randPoly(rng, 6, 5, 3)
		c := randPoly(rng, 6, 5, 3)
		if !a.Add(b).Equal(b.Add(a)) {
			return false
		}
		if !a.Mul(b).Equal(b.Mul(a)) {
			return false
		}
		if !a.Mul(b.Add(c)).Equal(a.Mul(b).Add(a.Mul(c))) {
			return false
		}
		return a.Mul(b).Mul(c).Equal(a.Mul(b.Mul(c)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: evaluation is a ring homomorphism — eval(p+q) = eval(p) XOR
// eval(q) and eval(p*q) = eval(p) AND eval(q), for every assignment.
func TestQuickEvalHomomorphism(t *testing.T) {
	f := func(seed int64, bits uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randPoly(rng, 8, 5, 3)
		b := randPoly(rng, 8, 5, 3)
		assign := func(v Var) bool { return bits>>(uint(v)%8)&1 == 1 }
		if a.Add(b).Eval(assign) != (a.Eval(assign) != b.Eval(assign)) {
			return false
		}
		return a.Mul(b).Eval(assign) == (a.Eval(assign) && b.Eval(assign))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: substitution agrees with evaluation — substituting v by a
// polynomial r and evaluating equals evaluating with v bound to r's value.
func TestQuickSubstituteEval(t *testing.T) {
	f := func(seed int64, bits uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randPoly(rng, 8, 5, 3)
		r := randPoly(rng, 8, 4, 2)
		v := Var(rng.Intn(8))
		base := func(u Var) bool { return bits>>(uint(u)%8)&1 == 1 }
		substituted := p.SubstituteVar(v, r).Eval(base)
		patched := func(u Var) bool {
			if u == v {
				return r.Eval(base)
			}
			return base(u)
		}
		return substituted == p.Eval(patched)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
