package sr

import (
	"math/rand"
	"testing"

	"repro/internal/anf"
)

func TestSRShapes(t *testing.T) {
	for _, p := range []Params{{1, 1, 1, 4}, {1, 2, 2, 4}, {2, 2, 2, 4}, {1, 4, 4, 8}} {
		c := New(p)
		rng := rand.New(rand.NewSource(1))
		plain := c.RandomBlock(rng)
		key := c.RandomBlock(rng)
		ct := c.Encrypt(plain, key)
		if len(ct) != p.Elements() {
			t.Fatalf("%v: ciphertext length %d", p, len(ct))
		}
	}
}

func TestSRDeterministicAndKeyDependent(t *testing.T) {
	p := Params{1, 2, 2, 4}
	c := New(p)
	rng := rand.New(rand.NewSource(7))
	plain := c.RandomBlock(rng)
	key := c.RandomBlock(rng)
	c1 := c.Encrypt(plain, key)
	c2 := c.Encrypt(plain, key)
	for i := range c1 {
		if c1[i] != c2[i] {
			t.Fatal("encryption not deterministic")
		}
	}
	key2 := append([]uint16(nil), key...)
	key2[0] ^= 1
	c3 := c.Encrypt(plain, key2)
	same := true
	for i := range c1 {
		if c1[i] != c3[i] {
			same = false
		}
	}
	if same {
		t.Fatal("flipping a key bit did not change the ciphertext")
	}
}

func TestExpandKeyChanges(t *testing.T) {
	p := Params{2, 2, 2, 4}
	c := New(p)
	key := []uint16{1, 2, 3, 4}
	ks := c.ExpandKey(key)
	if len(ks) != 3 {
		t.Fatalf("subkeys = %d, want 3", len(ks))
	}
	for i := 1; i < len(ks); i++ {
		same := true
		for j := range ks[i] {
			if ks[i][j] != ks[i-1][j] {
				same = false
			}
		}
		if same {
			t.Fatalf("subkey %d identical to predecessor", i)
		}
	}
}

func TestImplicitQuadraticsAES(t *testing.T) {
	c := New(Params{1, 4, 4, 8})
	eqs := ImplicitQuadratics(c.SBox.Table(), 8)
	// The literature's count for inversion-based 8-bit S-boxes is 39
	// linearly independent quadratic relations.
	if len(eqs) != 39 {
		t.Fatalf("AES S-box quadratic relations = %d, want 39", len(eqs))
	}
	// Every equation must vanish on every (x, S(x)) pair...
	checkTemplatesVanish(t, c, eqs, 8)
}

func TestImplicitQuadraticsSmall(t *testing.T) {
	c := New(Params{1, 2, 2, 4})
	eqs := ImplicitQuadraticsSmallE4(c)
	if len(eqs) < 21 {
		t.Fatalf("4-bit S-box relations = %d, want ≥ 21", len(eqs))
	}
	checkTemplatesVanish(t, c, eqs, 4)
}

// ImplicitQuadraticsSmallE4 is a test helper exercising the e=4 path.
func ImplicitQuadraticsSmallE4(c *Cipher) []TemplateEq {
	return ImplicitQuadratics(c.SBox.Table(), 4)
}

func checkTemplatesVanish(t *testing.T, c *Cipher, eqs []TemplateEq, e int) {
	t.Helper()
	in := make([]anf.Var, e)
	out := make([]anf.Var, e)
	for i := 0; i < e; i++ {
		in[i] = anf.Var(i)
		out[i] = anf.Var(e + i)
	}
	for x := 0; x < c.Field.Order(); x++ {
		y := c.SBox.Apply(uint16(x))
		assign := func(v anf.Var) bool {
			if int(v) < e {
				return uint16(x)>>uint(v)&1 == 1
			}
			return y>>uint(int(v)-e)&1 == 1
		}
		for _, eq := range eqs {
			if eq.Instantiate(in, out).Eval(assign) {
				t.Fatalf("implicit equation violated at x=%#x", x)
			}
		}
	}
	// ... and must NOT vanish on some wrong pair (soundness of the set as
	// an S-box characterization is not guaranteed equation-by-equation,
	// but the set should reject a corrupted pair).
	x := uint16(1)
	y := c.SBox.Apply(x) ^ 1
	assign := func(v anf.Var) bool {
		if int(v) < e {
			return x>>uint(v)&1 == 1
		}
		return y>>uint(int(v)-e)&1 == 1
	}
	rejected := false
	for _, eq := range eqs {
		if eq.Instantiate(in, out).Eval(assign) {
			rejected = true
			break
		}
	}
	if !rejected {
		t.Fatal("corrupted S-box pair satisfies every implicit equation")
	}
}

func TestEncodeShapePaper(t *testing.T) {
	// SR(1,4,4,8): the paper reports 800-variable systems; our layout is
	// p(128) + c(128) + k0,k1(256) + x(128) + y(128) + z(32) = 928 minus
	// the 128 ciphertext... count exactly:
	enc := Encode(New(Paper144_8))
	want := 128 + 128 + 2*128 + 128 + 128 + 32
	if enc.NumVars != want {
		t.Fatalf("NumVars = %d, want %d", enc.NumVars, want)
	}
}

func TestInstanceWitnessSatisfies(t *testing.T) {
	for _, p := range []Params{{1, 1, 1, 4}, {1, 2, 2, 4}, {2, 2, 2, 4}, {1, 2, 2, 8}} {
		rng := rand.New(rand.NewSource(11))
		inst := GenerateInstance(p, rng)
		assign := func(v anf.Var) bool {
			return int(v) < len(inst.Witness) && inst.Witness[int(v)]
		}
		if !inst.Sys.Eval(assign) {
			// Identify the first violated equation for the failure message.
			for _, q := range inst.Sys.Polys() {
				if q.Eval(assign) {
					t.Fatalf("%v: witness violates %s", p, q)
				}
			}
		}
		if got := inst.KeyFromSolution(inst.Witness); len(got) == len(inst.Key) {
			for i := range got {
				if got[i] != inst.Key[i] {
					t.Fatalf("%v: witness key mismatch at %d", p, i)
				}
			}
		}
	}
}

func TestInstanceFullAES(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	inst := GenerateInstance(Paper144_8, rng)
	assign := func(v anf.Var) bool {
		return int(v) < len(inst.Witness) && inst.Witness[int(v)]
	}
	if !inst.Sys.Eval(assign) {
		t.Fatal("SR(1,4,4,8) witness violates the generated system")
	}
	if inst.Sys.NumVars() != 800 {
		t.Fatalf("SR(1,4,4,8) has %d variables, paper reports 800", inst.Sys.NumVars())
	}
	t.Logf("SR(1,4,4,8): %d vars, %d equations", inst.Sys.NumVars(), inst.Sys.Len())
}
