package sat

import (
	"math/rand"
	"testing"

	"repro/internal/cnf"
	"repro/internal/satgen"
)

// cutOptions is the PR-10 differential baseline: AddXor goes through the
// pre-native routing (Gauss side-car on CMS, 2^(k-1) clausal cut
// otherwise) instead of the packed parity-clause kind.
func cutOptions(p Profile) Options {
	o := DefaultOptions(p)
	o.NativeXor = false
	return o
}

// randomXorMix builds a random CNF+XOR mix small enough for bruteForce.
func randomXorMix(rng *rand.Rand, nVars, nClauses, nXors int) *cnf.Formula {
	f := cnf.NewFormula(nVars)
	for i := 0; i < nClauses; i++ {
		w := 1 + rng.Intn(3)
		lits := make([]cnf.Lit, w)
		for j := range lits {
			lits[j] = cnf.MkLit(cnf.Var(rng.Intn(nVars)), rng.Intn(2) == 1)
		}
		f.AddClause(lits...)
	}
	for i := 0; i < nXors; i++ {
		w := 2 + rng.Intn(4)
		vars := make([]cnf.Var, w)
		for j := range vars {
			// Duplicates are allowed on purpose: pair cancellation is part
			// of the contract under test.
			vars[j] = cnf.Var(rng.Intn(nVars))
		}
		f.AddXor(rng.Intn(2) == 1, vars...)
	}
	return f
}

func checkModel(t *testing.T, f *cnf.Formula, s *Solver, arm string) {
	t.Helper()
	m := s.Model()
	if !f.Eval(func(v cnf.Var) bool { return m[v] }) {
		t.Fatalf("%s: model violates the formula", arm)
	}
}

// TestNativeXorDifferential cross-checks the native parity path against
// the CNF-cut and Gauss baselines (and the brute-force oracle) on random
// XOR+CNF mixes: same verdict everywhere, every SAT model valid.
func TestNativeXorDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 60; trial++ {
		nVars := 6 + rng.Intn(9)
		f := randomXorMix(rng, nVars, 2+rng.Intn(12), 1+rng.Intn(6))
		want := bruteForce(f)
		arms := []struct {
			name string
			opts Options
		}{
			{"native-minisat", DefaultOptions(ProfileMiniSat)},
			{"native-cms", DefaultOptions(ProfileCMS)},
			{"cut-minisat", cutOptions(ProfileMiniSat)},
			{"gauss-cms", cutOptions(ProfileCMS)},
		}
		for _, arm := range arms {
			s := New(arm.opts)
			st := Unsat
			if s.AddFormula(f.Clone()) {
				st = s.Solve()
			}
			if (st == Sat) != want {
				t.Fatalf("trial %d %s: verdict %v, brute force says sat=%v", trial, arm.name, st, want)
			}
			if st == Sat {
				checkModel(t, f, s, arm.name)
			}
		}
	}
}

// TestNativeXorGenerators runs the LFSR and parity-chain CDCL bench
// generators (clausal XOR encodings) through RecoverXors and compares the
// native parity path with the baselines — the exact workload the parity
// bench family measures.
func TestNativeXorGenerators(t *testing.T) {
	cases := []struct {
		name string
		inst *satgen.Instance
	}{
		{"lfsr-sat", satgen.LFSRReach(8, 16, false, rand.New(rand.NewSource(3)))},
		{"lfsr-unsat", satgen.LFSRReach(8, 16, true, rand.New(rand.NewSource(4)))},
		{"chain-planted", satgen.ParityChain(32, 28, 3, true, rand.New(rand.NewSource(5)))},
		{"chain-random", satgen.ParityChain(32, 40, 3, false, rand.New(rand.NewSource(6)))},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := RecoverXors(tc.inst.Formula, 6)
			if len(f.Xors) == 0 {
				t.Fatalf("no xors recovered from %s", tc.name)
			}
			verdicts := map[string]Status{}
			for _, arm := range []struct {
				name string
				opts Options
			}{
				{"native-minisat", DefaultOptions(ProfileMiniSat)},
				{"native-cms", DefaultOptions(ProfileCMS)},
				{"cut-minisat", cutOptions(ProfileMiniSat)},
				{"gauss-cms", cutOptions(ProfileCMS)},
			} {
				s := New(arm.opts)
				st := Unsat
				if s.AddFormula(f.Clone()) {
					st = s.Solve()
				}
				verdicts[arm.name] = st
				if st == Sat {
					checkModel(t, f, s, arm.name)
				}
			}
			for name, st := range verdicts {
				if st != verdicts["native-minisat"] {
					t.Fatalf("verdicts diverge: %v (%s disagrees)", verdicts, name)
				}
			}
			if want, ok := map[satgen.Status]Status{satgen.StatusSat: Sat, satgen.StatusUnsat: Unsat}[tc.inst.Status]; ok {
				if verdicts["native-minisat"] != want {
					t.Fatalf("verdict %v, generator says %v", verdicts["native-minisat"], want)
				}
			}
		})
	}
}

// TestParityGCMidSearchRelocation drives the solver by hand to a state
// with parity reasons on the trail, forces an arena GC there, and checks
// that relocation preserved the parity flag, the xwatches lists, and the
// analyzability of parity reasons — then finishes the solve normally.
func TestParityGCMidSearchRelocation(t *testing.T) {
	s := New(DefaultOptions(ProfileMiniSat))
	for i := 0; i < 12; i++ {
		s.NewVar()
	}
	if !s.AddClause(cnf.MkLit(6, true)) { // x6 = false at level 0
		t.Fatal("unit add failed")
	}
	if !s.AddClause(cnf.MkLit(3, false), cnf.MkLit(5, false)) { // x3 ∨ x5
		t.Fatal("clause add failed")
	}
	for _, x := range []struct {
		rhs  bool
		vars []cnf.Var
	}{
		{true, []cnf.Var{0, 1, 2}},
		{false, []cnf.Var{2, 3, 4}},
		{true, []cnf.Var{4, 5, 6}},
	} {
		if !s.AddXor(x.rhs, x.vars...) {
			t.Fatal("xor add failed")
		}
	}
	if len(s.parities) != 3 {
		t.Fatalf("parities = %d, want 3", len(s.parities))
	}

	decide := func(l cnf.Lit) {
		s.trailLim = append(s.trailLim, len(s.trail))
		if !s.enqueue(l, NullRef) {
			t.Fatalf("decision %v not enqueueable", l)
		}
	}
	// L1: ¬x0. L2: ¬x1 ⇒ x2 (x0⊕x1⊕x2=1) via a parity reason.
	decide(cnf.MkLit(0, true))
	if conf := s.propagate(); conf != NullRef {
		t.Fatal("unexpected conflict at L1")
	}
	decide(cnf.MkLit(1, true))
	if conf := s.propagate(); conf != NullRef {
		t.Fatal("unexpected conflict at L2")
	}
	if s.assigns[2] != lTrue {
		t.Fatal("x2 not implied by the parity clause")
	}
	r := s.reason[2]
	if r == NullRef || !s.ca.parity(r) {
		t.Fatal("x2's reason is not a parity ref")
	}

	// Manufacture arena waste (allocate-and-free junk clauses), then GC
	// with the parity reason live on the trail.
	for i := 0; i < 64; i++ {
		junk := s.ca.alloc([]cnf.Lit{cnf.MkLit(9, false), cnf.MkLit(10, false), cnf.MkLit(11, i%2 == 0)}, false, false)
		s.ca.free(junk)
	}
	gcs := s.ArenaGCs
	s.garbageCollect()
	if s.ArenaGCs != gcs+1 {
		t.Fatal("garbageCollect did not run")
	}
	r2 := s.reason[2]
	if r2 == NullRef || !s.ca.parity(r2) {
		t.Fatal("parity flag lost across GC relocation")
	}
	for _, cr := range s.parities {
		if !s.ca.parity(cr) || s.ca.dead(cr) {
			t.Fatal("parities list corrupt after GC")
		}
	}

	// L3: ¬x3. The xor chain forces x4 then ¬x5 through relocated parity
	// clauses, and the clause x3 ∨ x5 flips to a conflict; analysis must
	// materialize the (relocated) parity reasons.
	decide(cnf.MkLit(3, true))
	conf := s.propagate()
	if conf == NullRef {
		t.Fatal("expected a conflict at L3")
	}
	learnt, btLevel := s.analyze(conf)
	if len(learnt) == 0 || btLevel < 0 || btLevel >= s.decisionLevel() {
		t.Fatalf("analysis produced learnt=%v bt=%d", learnt, btLevel)
	}
	s.releaseConflict(conf)

	// Backtrack to the root: parity refs are persistent clauses and must
	// survive cancelUntil's temp-reason reclamation.
	s.cancelUntil(0)
	for _, cr := range s.parities {
		if s.ca.dead(cr) {
			t.Fatal("cancelUntil freed a persistent parity clause")
		}
	}

	if st := s.Solve(); st != Sat {
		t.Fatalf("final solve = %v, want Sat", st)
	}
	assign := func(v cnf.Var) bool { return s.Value(v) }
	for _, x := range []struct {
		rhs  bool
		vars []cnf.Var
	}{{true, []cnf.Var{0, 1, 2}}, {false, []cnf.Var{2, 3, 4}}, {true, []cnf.Var{4, 5, 6}}} {
		acc := false
		for _, v := range x.vars {
			if assign(v) {
				acc = !acc
			}
		}
		if acc != x.rhs {
			t.Fatalf("model violates xor %v", x.vars)
		}
	}
	if assign(6) {
		t.Fatal("model violates unit ¬x6")
	}
	if !assign(3) && !assign(5) {
		t.Fatal("model violates clause x3 ∨ x5")
	}
}

// TestParityTempReasonContract pins cancelUntil's reclamation rule with
// both reason kinds on the trail: an arena temp (the Gauss shape) is
// freed at unassignment, a native parity reason is not.
func TestParityTempReasonContract(t *testing.T) {
	s := New(DefaultOptions(ProfileMiniSat))
	for i := 0; i < 6; i++ {
		s.NewVar()
	}
	if !s.AddXor(true, 0, 1, 2) {
		t.Fatal("xor add failed")
	}
	s.trailLim = append(s.trailLim, len(s.trail))
	if !s.enqueue(cnf.MkLit(0, true), NullRef) || !s.enqueue(cnf.MkLit(1, true), NullRef) {
		t.Fatal("decisions not enqueueable")
	}
	if conf := s.propagate(); conf != NullRef {
		t.Fatal("unexpected conflict")
	}
	parityReason := s.reason[2]
	if parityReason == NullRef || !s.ca.parity(parityReason) {
		t.Fatal("x2's reason is not a parity ref")
	}
	// Hand-plant a temp reason (what gauss.imply allocates) on another var.
	temp := s.ca.alloc([]cnf.Lit{cnf.MkLit(3, false), cnf.MkLit(0, false)}, false, true)
	if !s.enqueue(cnf.MkLit(3, false), temp) {
		t.Fatal("temp-reason literal not enqueueable")
	}
	s.cancelUntil(0)
	if !s.ca.dead(temp) {
		t.Fatal("cancelUntil leaked the temp reason")
	}
	if s.ca.dead(parityReason) {
		t.Fatal("cancelUntil freed the native parity reason")
	}
	if s.assigns[2] != lUndef || s.reason[2] != NullRef {
		t.Fatal("backtrack did not unwind the parity implication")
	}
}

// FuzzParityClause feeds random clause/XOR mixes through add, propagate,
// conflict analysis, and backtracking on all four routing arms, checking
// verdict agreement with the brute-force oracle and model validity.
func FuzzParityClause(fz *testing.F) {
	fz.Add([]byte{8, 2, 0, 1, 2, 3, 4, 5, 6, 0, 7, 8})
	fz.Add([]byte{3, 3, 0, 1, 1, 3, 2, 0, 2, 2, 1, 0, 1, 2})
	fz.Add([]byte{12, 0, 1, 2, 3, 2, 3, 4, 5, 3, 5, 6, 7, 1, 0, 1, 2})
	fz.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 5 || len(data) > 96 {
			return
		}
		nVars := 4 + int(data[0])%10
		f := cnf.NewFormula(nVars)
		for i := 1; i+3 < len(data); i += 4 {
			op := data[i]
			a := cnf.Var(int(data[i+1]) % nVars)
			b := cnf.Var(int(data[i+2]) % nVars)
			c := cnf.Var(int(data[i+3]) % nVars)
			switch op % 4 {
			case 0:
				f.AddClause(cnf.MkLit(a, op&4 != 0), cnf.MkLit(b, op&8 != 0))
			case 1:
				f.AddClause(cnf.MkLit(a, op&4 != 0), cnf.MkLit(b, op&8 != 0), cnf.MkLit(c, op&16 != 0))
			case 2:
				f.AddXor(op&4 != 0, a, b)
			case 3:
				f.AddXor(op&4 != 0, a, b, c)
			}
		}
		want := bruteForce(f)
		for _, arm := range []struct {
			name string
			opts Options
		}{
			{"native-minisat", DefaultOptions(ProfileMiniSat)},
			{"native-cms", DefaultOptions(ProfileCMS)},
			{"cut-minisat", cutOptions(ProfileMiniSat)},
			{"gauss-cms", cutOptions(ProfileCMS)},
		} {
			s := New(arm.opts)
			st := Unsat
			if s.AddFormula(f.Clone()) {
				st = s.Solve()
			}
			if (st == Sat) != want {
				t.Fatalf("%s: verdict %v, brute force says sat=%v", arm.name, st, want)
			}
			if st == Sat {
				m := s.Model()
				if !f.Eval(func(v cnf.Var) bool { return m[v] }) {
					t.Fatalf("%s: model violates the formula", arm.name)
				}
			}
		}
	})
}
