// Package cnf provides Conjunctive Normal Form formulas and DIMACS I/O.
//
// Literals use the MiniSat encoding: variable v's positive literal is 2v
// and its negative literal is 2v+1, so a literal's variable is Lit>>1 and
// its sign is Lit&1. This makes literals directly usable as dense array
// indices inside the CDCL solver (package sat).
//
// The package also supports XOR clauses (CryptoMiniSat's "x" DIMACS
// extension), which the GJE-enabled solver profile consumes natively.
package cnf

import (
	"fmt"
	"slices"
	"strings"
)

// Var is a CNF variable index, starting at 0.
type Var uint32

// Lit is a literal: variable Lit>>1, negated if Lit&1 == 1.
type Lit uint32

// MkLit builds a literal from a variable and a sign (neg=true for ¬v).
func MkLit(v Var, neg bool) Lit {
	l := Lit(v) << 1
	if neg {
		l |= 1
	}
	return l
}

// Var returns the literal's variable.
func (l Lit) Var() Var { return Var(l >> 1) }

// Neg reports whether the literal is negated.
func (l Lit) Neg() bool { return l&1 == 1 }

// Not returns the complementary literal.
func (l Lit) Not() Lit { return l ^ 1 }

// Dimacs returns the 1-based signed integer DIMACS form of the literal.
func (l Lit) Dimacs() int {
	d := int(l.Var()) + 1
	if l.Neg() {
		return -d
	}
	return d
}

// LitFromDimacs converts a nonzero DIMACS literal to a Lit.
func LitFromDimacs(d int) (Lit, error) {
	if d == 0 {
		return 0, fmt.Errorf("cnf: DIMACS literal 0")
	}
	if d < 0 {
		return MkLit(Var(-d-1), true), nil
	}
	return MkLit(Var(d-1), false), nil
}

// String renders the literal DIMACS-style ("3" or "-3").
func (l Lit) String() string { return fmt.Sprintf("%d", l.Dimacs()) }

// Clause is a disjunction of literals.
type Clause []Lit

// String renders the clause like "(1 -2 3)".
func (c Clause) String() string {
	parts := make([]string, len(c))
	for i, l := range c {
		parts[i] = l.String()
	}
	return "(" + strings.Join(parts, " ") + ")"
}

// Normalize sorts the clause, removes duplicate literals, and reports
// whether the clause is a tautology (contains l and ¬l), in which case it
// should be dropped. The returned clause aliases the (sorted) input.
func (c Clause) Normalize() (Clause, bool) {
	// slices.Sort, not sort.Slice: the reflection-based sorter allocates
	// two objects per call, which a bulk clause load pays per clause.
	slices.Sort(c)
	out := c[:0]
	for i, l := range c {
		if i > 0 && l == c[i-1] {
			continue
		}
		if i > 0 && l == c[i-1].Not() {
			return nil, true
		}
		out = append(out, l)
	}
	return out, false
}

// Clone returns a copy of the clause.
func (c Clause) Clone() Clause { return append(Clause(nil), c...) }

// XorClause is a parity constraint: the XOR of the variables equals RHS.
type XorClause struct {
	Vars []Var
	RHS  bool
}

// String renders the XOR clause CryptoMiniSat-style ("x1 2 -3 0" means
// v1 ⊕ v2 ⊕ v3 = 1 with the sign on the last literal carrying the parity).
func (x XorClause) String() string {
	parts := make([]string, 0, len(x.Vars))
	for i, v := range x.Vars {
		d := int(v) + 1
		if i == len(x.Vars)-1 && !x.RHS {
			d = -d
		}
		parts = append(parts, fmt.Sprintf("%d", d))
	}
	return "x" + strings.Join(parts, " ")
}

// Formula is a CNF formula, optionally with XOR clauses.
type Formula struct {
	NumVars int
	Clauses []Clause
	Xors    []XorClause
}

// NewFormula returns an empty formula over n variables.
func NewFormula(n int) *Formula { return &Formula{NumVars: n} }

// AddClause appends a clause, growing NumVars as needed.
func (f *Formula) AddClause(lits ...Lit) {
	c := Clause(lits).Clone()
	for _, l := range c {
		if int(l.Var())+1 > f.NumVars {
			f.NumVars = int(l.Var()) + 1
		}
	}
	f.Clauses = append(f.Clauses, c)
}

// AddXor appends an XOR clause, growing NumVars as needed.
func (f *Formula) AddXor(rhs bool, vars ...Var) {
	x := XorClause{Vars: append([]Var(nil), vars...), RHS: rhs}
	for _, v := range x.Vars {
		if int(v)+1 > f.NumVars {
			f.NumVars = int(v) + 1
		}
	}
	f.Xors = append(f.Xors, x)
}

// NewVar allocates and returns a fresh variable.
func (f *Formula) NewVar() Var {
	v := Var(f.NumVars)
	f.NumVars++
	return v
}

// Eval reports whether the assignment satisfies every clause and XOR.
func (f *Formula) Eval(assign func(Var) bool) bool {
	for _, c := range f.Clauses {
		sat := false
		for _, l := range c {
			if assign(l.Var()) != l.Neg() {
				sat = true
				break
			}
		}
		if !sat {
			return false
		}
	}
	for _, x := range f.Xors {
		acc := false
		for _, v := range x.Vars {
			if assign(v) {
				acc = !acc
			}
		}
		if acc != x.RHS {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of the formula.
func (f *Formula) Clone() *Formula {
	g := &Formula{NumVars: f.NumVars}
	g.Clauses = make([]Clause, len(f.Clauses))
	for i, c := range f.Clauses {
		g.Clauses[i] = c.Clone()
	}
	g.Xors = make([]XorClause, len(f.Xors))
	for i, x := range f.Xors {
		g.Xors[i] = XorClause{Vars: append([]Var(nil), x.Vars...), RHS: x.RHS}
	}
	return g
}

// Stats returns a short human-readable summary.
func (f *Formula) Stats() string {
	return fmt.Sprintf("%d vars, %d clauses, %d xors", f.NumVars, len(f.Clauses), len(f.Xors))
}
