package gf2

import (
	"sync"
	"time"
)

// The elimination kernel makes two performance-only choices per round:
// whether the combination table is small enough to apply in one fused
// pass, and — when it is not — how wide the column strips of the blocked
// apply should be so one table strip stays resident in the fast cache
// while it streams over every row. Both derive from a single calibrated
// quantity, the fast-cache working set in words, measured once per
// process by a short XOR-throughput probe. The choices never change the
// eliminated matrix (every path computes the same XORs), so calibration
// being machine-dependent does not threaten any bit-identity contract;
// it only moves the fused/blocked crossover.

const (
	// defaultFastCacheWords is the fallback working set: 4096 words =
	// 32 KiB, a conservative L1d size.
	defaultFastCacheWords = 4096
	// minStripWords keeps strips from degenerating below one cache line
	// worth of useful streaming per row visit.
	minStripWords = 8
)

var (
	calibOnce      sync.Once
	fastCacheWords = defaultFastCacheWords
)

// fusedTableWords returns the table size (in words) up to which applyRound
// runs the single fused pass; larger tables take the column-blocked path.
func fusedTableWords() int {
	calibOnce.Do(calibrate)
	return fastCacheWords
}

// stripWordsFor returns the column-strip width for a 2^np-entry table:
// the widest strip whose table slice still fits the calibrated fast
// cache, clamped below by minStripWords.
func stripWordsFor(np int) int {
	calibOnce.Do(calibrate)
	w := fastCacheWords >> uint(np)
	if w < minStripWords {
		w = minStripWords
	}
	return w
}

// tableBudgetWords returns the cap on total combination-table size used by
// m4rKElim when narrowing k for wide matrices: one order of magnitude
// above the fast cache (an L2-ish budget), so table build cost keeps
// amortizing over the application sweep.
func tableBudgetWords() int {
	calibOnce.Do(calibrate)
	return fastCacheWords * 16
}

// calibrate probes XOR throughput over doubling working sets and keeps the
// largest one that still runs within 25% of the fastest observed
// time-per-word — an estimate of where the streaming XOR falls out of the
// fast cache. The probe costs ~1 ms and runs once per process, lazily on
// the first elimination. Degenerate timings (too-coarse clocks, heavily
// loaded machines) fall back to the default.
func calibrate() {
	const (
		minSet = 2048  // 16 KiB
		maxSet = 32768 // 256 KiB
		sweeps = 1 << 22
	)
	buf := make([]uint64, 2*maxSet)
	best := 0.0
	chosen := 0
	for set := minSet; set <= maxSet; set *= 2 {
		dst, src := buf[:set], buf[maxSet:maxSet+set]
		iters := sweeps / set
		if iters < 4 {
			iters = 4
		}
		start := time.Now()
		for i := 0; i < iters; i++ {
			xorWords(dst, src)
		}
		elapsed := time.Since(start)
		if elapsed <= 0 {
			return // clock too coarse; keep the default
		}
		perWord := float64(elapsed) / float64(iters*set)
		if best == 0 || perWord < best {
			best = perWord
		}
		if perWord <= best*1.25 {
			chosen = set
		} else {
			break // throughput fell off; larger sets only get worse
		}
	}
	if chosen >= minSet {
		fastCacheWords = chosen
	}
}
