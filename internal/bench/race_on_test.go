//go:build race

package bench

// raceEnabled reports whether the race detector is compiled in, so
// wall-clock-budgeted tests can scale their timeouts to its slowdown.
const raceEnabled = true
