package lint

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// want is one expected diagnostic, parsed from a fixture comment.
type want struct {
	file     string // relative to the fixture root
	line     int
	analyzer string
	substr   string
}

var wantSpecRe = regexp.MustCompile(`(\w+)\s+"([^"]*)"`)

// parseWants extracts the expected diagnostics from the fixture sources.
// A trailing `// want <analyzer> "<substring>" ...` comment applies to
// its own line; a standalone want comment line applies to the next line.
// Several analyzer/substring pairs in one comment expect several
// diagnostics on the same line.
func parseWants(t *testing.T, root string) []*want {
	t.Helper()
	var wants []*want
	err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(p, ".go") {
			return err
		}
		data, err := os.ReadFile(p)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(root, p)
		if err != nil {
			return err
		}
		for i, lineText := range strings.Split(string(data), "\n") {
			idx := strings.Index(lineText, "// want ")
			if idx < 0 {
				continue
			}
			line := i + 1
			if strings.HasPrefix(strings.TrimSpace(lineText), "// want ") {
				line++ // standalone comment: expectation is for the next line
			}
			specs := wantSpecRe.FindAllStringSubmatch(lineText[idx+len("// want "):], -1)
			if len(specs) == 0 {
				t.Fatalf("%s:%d: unparseable want comment: %s", rel, i+1, lineText)
			}
			for _, m := range specs {
				wants = append(wants, &want{file: rel, line: line, analyzer: m[1], substr: m[2]})
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return wants
}

// TestFixtureGolden runs the full suite on the testdata fixture module
// and checks the diagnostics against the fixtures' want comments: every
// want must be produced at its position, and nothing else may be
// reported (which also asserts //lint:ignore suppressions are honored).
func TestFixtureGolden(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("testdata", "fixture"))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := LoadModule(root, []string{"./..."})
	if err != nil {
		t.Fatalf("loading fixture module: %v", err)
	}
	diags := Run(pkgs, Analyzers())

	wants := parseWants(t, root)
	if len(wants) == 0 {
		t.Fatal("no want comments found in fixtures")
	}
	matched := make([]bool, len(diags))
	for _, w := range wants {
		found := false
		for i, d := range diags {
			if matched[i] {
				continue
			}
			rel, err := filepath.Rel(root, d.Pos.Filename)
			if err != nil {
				continue
			}
			if rel == w.file && d.Pos.Line == w.line && d.Analyzer == w.analyzer &&
				strings.Contains(d.Message, w.substr) {
				matched[i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("missing diagnostic: %s:%d %s %q", w.file, w.line, w.analyzer, w.substr)
		}
	}
	for i, d := range diags {
		if !matched[i] {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
}

// TestRepoIsClean is the meta-test: the suite must exit clean on the
// repository itself, so a regression in any guarded invariant fails the
// ordinary `go test ./...` run, not just the lint step.
func TestRepoIsClean(t *testing.T) {
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, err := FindModuleRoot(wd)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := LoadModule(root, []string{"./..."})
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	diags := Run(pkgs, Analyzers())
	for _, d := range diags {
		t.Errorf("repo not lint-clean: %s", d)
	}
}

// TestByName checks analyzer-subset resolution.
func TestByName(t *testing.T) {
	all, err := ByName("")
	if err != nil || len(all) != len(Analyzers()) {
		t.Fatalf("ByName(\"\") = %d analyzers, err %v; want the full suite", len(all), err)
	}
	got, err := ByName("ctxpoll, gf2pack")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Name != "ctxpoll" || got[1].Name != "gf2pack" {
		t.Fatalf("ByName subset = %v", names(got))
	}
	if _, err := ByName("nosuch"); err == nil {
		t.Fatal("ByName(nosuch) succeeded; want error")
	}
}

func names(as []*Analyzer) []string {
	var out []string
	for _, a := range as {
		out = append(out, a.Name)
	}
	return out
}

// TestDiagnosticString pins the file:line:col rendering the check script
// and editors rely on.
func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{Analyzer: "ctxpoll", Message: "m"}
	d.Pos.Filename = "f.go"
	d.Pos.Line = 3
	d.Pos.Column = 7
	if got, wantS := d.String(), "f.go:3:7: m (ctxpoll)"; got != wantS {
		t.Fatalf("String() = %q, want %q", got, wantS)
	}
}
