// Parallel portfolio solving: Bosphorus preprocessing feeding a portfolio
// of differently-configured CDCL solvers racing on the same formula (the
// construction behind Plingeling, the parallel sibling of the paper's
// Lingeling column). The demo instance is a planted parity system — easy
// for the GJE-enabled worker, hard for the plain ones — so the winner
// illustrates why solver diversity pays.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"time"

	bosphorus "repro"
	"repro/internal/cnf"
	"repro/internal/portfolio"
	"repro/internal/sat"
	"repro/internal/satgen"
)

func main() {
	nVars := flag.Int("vars", 48, "parity system variables")
	seed := flag.Int64("seed", 7, "instance seed")
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	inst := satgen.ParityChain(*nVars, *nVars+6, 3, true, rng)
	fmt.Printf("instance %s: %s (planted SAT)\n", inst.Name, inst.Formula.Stats())

	// Recover the hidden XOR structure first (what CryptoMiniSat does
	// internally), then race the portfolio on it.
	recovered := sat.RecoverXors(inst.Formula, 6)
	fmt.Printf("xor recovery: %d clause groups became %d native xors\n",
		len(inst.Formula.Clauses)-len(recovered.Clauses), len(recovered.Xors))

	res := portfolio.Solve(recovered, nil, 30*time.Second)
	fmt.Printf("portfolio: %v in %v — winner: %s\n", res.Status, res.Elapsed.Round(time.Microsecond), res.Winner)
	if res.Status == sat.Sat {
		if !inst.Formula.Eval(func(v cnf.Var) bool { return res.Model[v] }) {
			panic("winning model does not satisfy the original formula")
		}
		fmt.Println("model verified against the original CNF ✓")
	}

	// The same instance through the Bosphorus ANF bridge, for comparison.
	opts := bosphorus.DefaultOptions()
	opts.Seed = *seed
	t0 := time.Now()
	bres := bosphorus.SolveCNF(inst.Formula, opts)
	fmt.Printf("bosphorus bridge: %v in %v\n", bres.Status, time.Since(t0).Round(time.Microsecond))
}
