package sha256

import (
	"math/rand"

	"repro/internal/anf"
)

// word32 is a symbolic 32-bit word, bit 31 the most significant (matching
// the uint32 representation: index i is bit i).
type word32 [32]anf.Poly

func constW(v uint32) word32 {
	var w word32
	for b := 0; b < 32; b++ {
		w[b] = anf.Constant(v>>uint(b)&1 == 1)
	}
	return w
}

func (w word32) xor(o word32) word32 {
	var out word32
	for b := 0; b < 32; b++ {
		out[b] = w[b].Add(o[b])
	}
	return out
}

func (w word32) rotr(r int) word32 {
	var out word32
	for b := 0; b < 32; b++ {
		out[b] = w[(b+r)%32]
	}
	return out
}

func (w word32) shr(r int) word32 {
	var out word32
	for b := 0; b < 32; b++ {
		if b+r < 32 {
			out[b] = w[b+r]
		} else {
			out[b] = anf.Zero()
		}
	}
	return out
}

func symBigSigma0(x word32) word32 {
	return x.rotr(2).xor(x.rotr(13)).xor(x.rotr(22))
}
func symBigSigma1(x word32) word32 {
	return x.rotr(6).xor(x.rotr(11)).xor(x.rotr(25))
}
func symSmallSigma0(x word32) word32 {
	return x.rotr(7).xor(x.rotr(18)).xor(x.shr(3))
}
func symSmallSigma1(x word32) word32 {
	return x.rotr(17).xor(x.rotr(19)).xor(x.shr(10))
}

// encBuilder accumulates the system, fresh variables and the witness.
type encBuilder struct {
	sys  *anf.System
	next anf.Var
	wit  []bool
}

func (bd *encBuilder) freshBit(expr anf.Poly, val bool) anf.Poly {
	v := bd.next
	bd.next++
	bd.wit = append(bd.wit, val)
	p := anf.VarPoly(v)
	bd.sys.Add(expr.Add(p))
	return p
}

func (bd *encBuilder) freeBit(val bool) anf.Poly {
	v := bd.next
	bd.next++
	bd.wit = append(bd.wit, val)
	return anf.VarPoly(v)
}

// materialize replaces each bit expression with a fresh variable bound to
// it, recording witness values.
func (bd *encBuilder) materialize(w word32, val uint32) word32 {
	var out word32
	for b := 0; b < 32; b++ {
		out[b] = bd.freshBit(w[b], val>>uint(b)&1 == 1)
	}
	return out
}

// maybeMaterialize materializes only bits that grew beyond a few terms, to
// keep downstream products small.
func (bd *encBuilder) maybeMaterialize(w word32, val uint32) word32 {
	big := 0
	for b := 0; b < 32; b++ {
		if w[b].NumTerms() > 4 || w[b].Deg() > 1 {
			big++
		}
	}
	if big == 0 {
		return w
	}
	return bd.materialize(w, val)
}

// symCh computes Ch(e,f,g) = e·f ⊕ (¬e)·g = e·f ⊕ e·g ⊕ g bitwise.
func symCh(e, f, g word32) word32 {
	var out word32
	for b := 0; b < 32; b++ {
		out[b] = e[b].Mul(f[b]).Add(e[b].Mul(g[b])).Add(g[b])
	}
	return out
}

// symMaj computes Maj(a,b,c) = ab ⊕ ac ⊕ bc bitwise.
func symMaj(a, b, c word32) word32 {
	var out word32
	for i := 0; i < 32; i++ {
		out[i] = a[i].Mul(b[i]).Add(a[i].Mul(c[i])).Add(b[i].Mul(c[i]))
	}
	return out
}

// add emits s = a + b (mod 2^32) with carry variables: the sum bits are
// materialized fresh variables and the carries satisfy
// c_{i+1} = a_i b_i ⊕ c_i a_i ⊕ c_i b_i.
func (bd *encBuilder) add(a word32, aVal uint32, b word32, bVal uint32) (word32, uint32) {
	a = bd.maybeMaterialize(a, aVal)
	b = bd.maybeMaterialize(b, bVal)
	sVal := aVal + bVal
	var s word32
	carry := anf.Zero()
	carryVal := false
	for i := 0; i < 32; i++ {
		ab := a[i].Add(b[i])
		s[i] = bd.freshBit(ab.Add(carry), sVal>>uint(i)&1 == 1)
		if i == 31 {
			break // the final carry out is discarded (mod 2^32)
		}
		// New carry value for the witness.
		ai := aVal>>uint(i)&1 == 1
		bi := bVal>>uint(i)&1 == 1
		newCarryVal := (ai && bi) || (carryVal && (ai != bi))
		carryExpr := a[i].Mul(b[i]).Add(carry.Mul(ab))
		carry = bd.freshBit(carryExpr, newCarryVal)
		carryVal = newCarryVal
	}
	return s, sVal
}

// tracked pairs a symbolic word with its concrete witness value.
type tracked struct {
	w word32
	v uint32
}

func (bd *encBuilder) addT(a, b tracked) tracked {
	w, v := bd.add(a.w, a.v, b.w, b.v)
	return tracked{w, v}
}

// EncodeCompression builds the ANF system for `rounds` rounds of the
// compression function applied to the given symbolic block. blockVals
// supplies the witness values. It returns the digest as tracked words.
func (bd *encBuilder) encodeCompression(block [16]tracked, rounds int) [8]tracked {
	var w [64]tracked
	copy(w[:16], block[:])
	for t := 16; t < rounds; t++ {
		s1 := tracked{symSmallSigma1(w[t-2].w), smallSigma1(w[t-2].v)}
		s0 := tracked{symSmallSigma0(w[t-15].w), smallSigma0(w[t-15].v)}
		sum := bd.addT(s1, w[t-7])
		sum = bd.addT(sum, s0)
		w[t] = bd.addT(sum, w[t-16])
	}
	state := make([]tracked, 8)
	for i := 0; i < 8; i++ {
		state[i] = tracked{constW(iv[i]), iv[i]}
	}
	a, b, c, d, e, f, g, h := state[0], state[1], state[2], state[3], state[4], state[5], state[6], state[7]
	for t := 0; t < rounds; t++ {
		chT := tracked{symCh(e.w, f.w, g.w), ch(e.v, f.v, g.v)}
		majT := tracked{symMaj(a.w, b.w, c.w), maj(a.v, b.v, c.v)}
		s1 := tracked{symBigSigma1(e.w), bigSigma1(e.v)}
		s0 := tracked{symBigSigma0(a.w), bigSigma0(a.v)}
		t1 := bd.addT(h, s1)
		t1 = bd.addT(t1, chT)
		t1 = bd.addT(t1, tracked{constW(k[t]), k[t]})
		t1 = bd.addT(t1, w[t])
		t2 := bd.addT(s0, majT)
		h, g, f = g, f, e
		e = bd.addT(d, t1)
		d, c, b = c, b, a
		a = bd.addT(t1, t2)
	}
	var out [8]tracked
	init := []tracked{
		{constW(iv[0]), iv[0]}, {constW(iv[1]), iv[1]}, {constW(iv[2]), iv[2]}, {constW(iv[3]), iv[3]},
		{constW(iv[4]), iv[4]}, {constW(iv[5]), iv[5]}, {constW(iv[6]), iv[6]}, {constW(iv[7]), iv[7]},
	}
	final := []tracked{a, b, c, d, e, f, g, h}
	for i := 0; i < 8; i++ {
		out[i] = bd.addT(init[i], final[i])
	}
	return out
}

// BitcoinParams parameterizes a weakened-Bitcoin nonce instance (Fig. 5):
// a single 512-bit block whose first 415 bits are randomly fixed, a free
// 32-bit nonce at bits 415..446, bit 447 the mandatory '1' pad, and the
// final 64 bits encoding the message length 448; the challenge requires
// the first K digest bits to be zero. Rounds scales the compression
// function down so laptop-scale solvers can handle the circuit.
type BitcoinParams struct {
	K      int
	Rounds int
}

// BitcoinInstance is the generated ANF problem.
type BitcoinInstance struct {
	Sys *anf.System
	// NonceVarBase: nonce bit b (0 = most significant within the nonce
	// field) is variable NonceVarBase + b.
	NonceVarBase int
	Nonce        uint32
	Block        [16]uint32
	Digest       [8]uint32
	Witness      []bool
}

// GenerateBitcoin draws random fixed bits and searches for a nonce whose
// (round-reduced) hash has K leading zero bits, then encodes the
// corresponding ANF instance. The instance is satisfiable by
// construction, with the found nonce as witness.
func GenerateBitcoin(p BitcoinParams, rng *rand.Rand) *BitcoinInstance {
	if p.K < 0 || p.K > 32 {
		panic("sha256: K out of range")
	}
	if p.Rounds == 0 {
		p.Rounds = 64
	}
	if p.Rounds < 16 {
		// Words 12–13 (the nonce) only enter the compression at rounds
		// t = 12, 13 and the schedule expansion from t = 16; below 16
		// rounds the instance would not constrain the nonce meaningfully.
		panic("sha256: bitcoin instances need at least 16 rounds")
	}
	for attempt := 0; ; attempt++ {
		var block [16]uint32
		for i := 0; i < 13; i++ {
			block[i] = rng.Uint32()
		}
		// Bits are numbered MSB-first across the block: bit j lives in
		// word j/32 at position 31-j%32. The first 415 bits are words
		// 0..12 plus the top 31 bits of word 13's first... simpler: words
		// 0..12 are fully fixed (416 bits); to honour the 415/32/1 split
		// we place the nonce at bits 415..446: the low bit of word 12 is
		// part of the nonce. Clear it here and treat word 12 bit 0 plus
		// word 13 bits 31..1 as the 32-bit nonce field.
		block[12] &^= 1
		block[13] = 0
		block[14] = 0
		block[15] = 448 // message length in bits, per SHA padding
		// Search for a nonce: nonce bit 0 (MSB of the field) is block[12]
		// bit 0; nonce bits 1..31 are block[13] bits 31..1. Bit 447 (the
		// pad '1') is block[13] bit 0.
		for tries := 0; tries < 1<<uint(p.K+6); tries++ {
			nonce := rng.Uint32()
			b := block
			b[12] |= nonce >> 31
			b[13] = nonce<<1 | 1 // pad bit '1' at position 447
			d := Compress(b, p.Rounds)
			if p.K > 0 && d[0]>>(32-uint(p.K)) != 0 {
				continue
			}
			return encodeBitcoin(p, b, nonce, d)
		}
		// No nonce found in the budget (possible for large K with reduced
		// rounds); resample the fixed bits.
	}
}

func encodeBitcoin(p BitcoinParams, block [16]uint32, nonce uint32, digest [8]uint32) *BitcoinInstance {
	bd := &encBuilder{sys: anf.NewSystem()}
	inst := &BitcoinInstance{Nonce: nonce, Block: block, Digest: digest}

	var sym [16]tracked
	for i := range sym {
		sym[i] = tracked{constW(block[i]), block[i]}
	}
	// Free nonce variables, MSB first.
	inst.NonceVarBase = int(bd.next)
	nb := make([]anf.Poly, 32)
	for b := 0; b < 32; b++ {
		nb[b] = bd.freeBit(nonce>>(31-uint(b))&1 == 1)
	}
	// Wire nonce bits into the block: field bit 0 -> block[12] bit 0;
	// field bit j (j ≥ 1) -> block[13] bit 32-j.
	w12 := constW(block[12] &^ 1)
	w12[0] = nb[0]
	sym[12] = tracked{w12, block[12]}
	var w13 word32
	for j := 1; j < 32; j++ {
		w13[32-j] = nb[j]
	}
	w13[0] = anf.OnePoly() // the pad bit
	sym[13] = tracked{w13, block[13]}

	out := bd.encodeCompression(sym, p.Rounds)
	// Challenge: the first K bits (MSBs of digest word 0) are zero.
	for b := 0; b < p.K; b++ {
		bd.sys.Add(out[0].w[31-b])
	}
	inst.Sys = bd.sys
	inst.Sys.SetNumVars(int(bd.next))
	inst.Witness = bd.wit
	return inst
}

// NonceFromSolution reads the nonce from a satisfying assignment.
func (inst *BitcoinInstance) NonceFromSolution(sol []bool) uint32 {
	var out uint32
	for b := 0; b < 32; b++ {
		idx := inst.NonceVarBase + b
		if idx < len(sol) && sol[idx] {
			out |= 1 << (31 - uint(b))
		}
	}
	return out
}
