package simon

import (
	"math/rand"
	"testing"

	"repro/internal/anf"
)

// TestSimonTestVectors checks the published Simon32/64 test vector
// (Beaulieu et al.): key 1918 1110 0908 0100, plaintext 6565 6877,
// ciphertext c69b e9bb — validating Fig. 4's round function end to end.
func TestSimonTestVectors(t *testing.T) {
	key := [4]uint16{0x0100, 0x0908, 0x1110, 0x1918}
	x, y := Encrypt(0x6565, 0x6877, key, FullRounds)
	if x != 0xc69b || y != 0xe9bb {
		t.Fatalf("Simon32/64 = %04x %04x, want c69b e9bb", x, y)
	}
}

func TestExpandKeyPrefix(t *testing.T) {
	key := [4]uint16{1, 2, 3, 4}
	ks := ExpandKey(key, 10)
	for i := 0; i < 4; i++ {
		if ks[i] != key[i] {
			t.Fatalf("round key %d = %04x, want %04x", i, ks[i], key[i])
		}
	}
	// Deterministic continuation.
	ks2 := ExpandKey(key, 10)
	for i := range ks {
		if ks[i] != ks2[i] {
			t.Fatal("key schedule not deterministic")
		}
	}
}

func TestRotations(t *testing.T) {
	if rotl(0x8000, 1) != 0x0001 {
		t.Fatal("rotl wraparound broken")
	}
	if rotr(0x0001, 1) != 0x8000 {
		t.Fatal("rotr wraparound broken")
	}
}

func TestInstanceWitness(t *testing.T) {
	for _, p := range []Params{{1, 1}, {1, 4}, {2, 6}, {8, 6}, {4, 9}} {
		rng := rand.New(rand.NewSource(21))
		inst := GenerateInstance(p, rng)
		assign := func(v anf.Var) bool {
			return int(v) < len(inst.Witness) && inst.Witness[int(v)]
		}
		if !inst.Sys.Eval(assign) {
			for _, q := range inst.Sys.Polys() {
				if q.Eval(assign) {
					t.Fatalf("Simon-[%d,%d]: witness violates %s", p.NPlaintexts, p.Rounds, q)
				}
			}
		}
		if got := inst.KeyFromSolution(inst.Witness); got != inst.Key {
			t.Fatalf("witness key mismatch: %v vs %v", got, inst.Key)
		}
	}
}

func TestInstanceShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	inst := GenerateInstance(Params{NPlaintexts: 8, Rounds: 6}, rng)
	// Paper's SP/RC setting: plaintext i toggles bit i-1 of P1's right half.
	for i := 1; i < len(inst.Plains); i++ {
		if inst.Plains[i][0] != inst.Plains[0][0] {
			t.Fatal("left halves should match in SP/RC")
		}
		if inst.Plains[i][1]^inst.Plains[0][1] != 1<<uint(i-1) {
			t.Fatalf("plaintext %d differs by %04x, want bit %d", i,
				inst.Plains[i][1]^inst.Plains[0][1], i-1)
		}
	}
	// The system should be quadratic (AND gates) with linear key schedule.
	if inst.Sys.MaxDeg() != 2 {
		t.Fatalf("max degree = %d, want 2", inst.Sys.MaxDeg())
	}
	// Each ciphertext must verify under the reference implementation.
	for i, pl := range inst.Plains {
		cx, cy := Encrypt(pl[0], pl[1], inst.Key, 6)
		if cx != inst.Ciphers[i][0] || cy != inst.Ciphers[i][1] {
			t.Fatalf("ciphertext %d mismatch", i)
		}
	}
}

func TestInstanceDifferentKeysDiffer(t *testing.T) {
	a := GenerateInstance(Params{2, 5}, rand.New(rand.NewSource(1)))
	b := GenerateInstance(Params{2, 5}, rand.New(rand.NewSource(2)))
	if a.Key == b.Key {
		t.Fatal("different seeds gave the same key")
	}
}

func TestInvalidParamsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for invalid params")
		}
	}()
	GenerateInstance(Params{0, 0}, rand.New(rand.NewSource(1)))
}
