package core

import "context"

// Config mirrors the repo's Config-struct way of threading cancellation.
type Config struct {
	Context context.Context
	N       int
}

func work(i int) {}

// ScanAll sees a Context but never polls it in any loop.
func ScanAll(ctx context.Context, eqs []int) {
	for range eqs { // want ctxpoll "none of its loops polls"
		work(0)
	}
}

// ScanPolled polls ctx.Err() on every iteration: clean.
func ScanPolled(ctx context.Context, eqs []int) {
	for i := range eqs {
		if ctx.Err() != nil {
			return
		}
		work(i)
	}
}

// ScanConfig receives cancellation through a Config field and never
// polls.
func ScanConfig(cfg Config, eqs []int) {
	for range eqs { // want ctxpoll "none of its loops polls"
		work(1)
	}
}

// ScanHooked installs an interrupt hook that delegates the polling:
// clean.
func ScanHooked(ctx context.Context, eqs []int) {
	SetInterrupt(func() bool { return ctx.Err() != nil })
	for range eqs {
		work(2)
	}
}

// SetInterrupt stands in for the solver's interrupt-hook installer.
func SetInterrupt(fn func() bool) {}

// scanForever is unexported, but infinite loops are checked everywhere in
// the target packages.
func scanForever() {
	for { // want ctxpoll "infinite for loop"
		work(3)
	}
}

// scanUntilDone receives from ctx.Done(): clean.
func scanUntilDone(ctx context.Context) {
	for {
		select {
		case <-ctx.Done():
			return
		default:
			work(4)
		}
	}
}

// drain breaks out of its infinite loop: clean.
func drain(ch chan int) {
	for {
		if _, ok := <-ch; !ok {
			break
		}
	}
}
