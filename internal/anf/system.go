package anf

import (
	"sort"
)

// System is an ANF polynomial system: a conjunction of polynomial equations
// "p = 0". It tracks the number of variables (indices are dense from 0) and
// maintains per-variable occurrence lists — the SAT-literature optimization
// the paper adopts (§III-B) so that substituting one variable touches only
// the equations it occurs in.
type System struct {
	polys []Poly
	// occ[v] lists indices into polys of equations containing v. Indices of
	// deleted (zeroed) equations may linger; readers must re-check.
	occ     map[Var][]int
	numVars int
	// table, once built by MonoTable(), interns every monomial of the
	// system; Add and Replace keep it current.
	table *MonoTable
}

// NewSystem returns an empty system.
func NewSystem() *System {
	return &System{occ: make(map[Var][]int)}
}

// Add appends the equation p = 0 to the system. Zero polynomials (trivially
// true) are ignored. Reports whether the polynomial was added.
func (s *System) Add(p Poly) bool {
	if p.IsZero() {
		return false
	}
	if s.table != nil {
		p = s.table.InternPoly(p)
	}
	idx := len(s.polys)
	s.polys = append(s.polys, p)
	for _, v := range p.Vars() {
		s.occ[v] = append(s.occ[v], idx)
		if int(v)+1 > s.numVars {
			s.numVars = int(v) + 1
		}
	}
	return true
}

// Len returns the number of (non-deleted) equations.
func (s *System) Len() int {
	n := 0
	for _, p := range s.polys {
		if !p.IsZero() {
			n++
		}
	}
	return n
}

// Polys returns the non-zero polynomials of the system, in insertion order.
func (s *System) Polys() []Poly {
	out := make([]Poly, 0, len(s.polys))
	for _, p := range s.polys {
		if !p.IsZero() {
			out = append(out, p)
		}
	}
	return out
}

// RawLen returns the number of equation slots including deleted ones; valid
// indices for At are [0, RawLen).
func (s *System) RawLen() int { return len(s.polys) }

// At returns the polynomial at slot i (possibly the zero polynomial if the
// equation was deleted by replacement).
func (s *System) At(i int) Poly { return s.polys[i] }

// Replace overwrites slot i with p, maintaining occurrence lists for any
// new variables.
func (s *System) Replace(i int, p Poly) {
	if s.table != nil {
		p = s.table.InternPoly(p)
	}
	s.polys[i] = p
	for _, v := range p.Vars() {
		s.occ[v] = appendUnique(s.occ[v], i)
		if int(v)+1 > s.numVars {
			s.numVars = int(v) + 1
		}
	}
}

func appendUnique(xs []int, x int) []int {
	for _, e := range xs {
		if e == x {
			return xs
		}
	}
	return append(xs, x)
}

// Occurrences returns the slots whose polynomial may contain v. The list is
// an over-approximation: slots are never removed when a substitution
// eliminates v, so callers must verify with ContainsVar.
func (s *System) Occurrences(v Var) []int { return s.occ[v] }

// OccurrenceCount returns the number of equations that actually contain v
// right now.
func (s *System) OccurrenceCount(v Var) int {
	n := 0
	for _, i := range s.occ[v] {
		if s.polys[i].ContainsVar(v) {
			n++
		}
	}
	return n
}

// MonoTable returns the system's monomial interning table, building it on
// first use. Building rewrites the stored polynomials with their canonical
// interned terms, so later ID() calls on any term of the system take the
// table's O(1) fast path instead of hashing a string key. Add and Replace
// keep the table current once it exists.
//
// Concurrent callers must arrange for the table to be built (and every
// system monomial interned) before sharing the system read-only; the
// engine's parallel fact-learning phase pre-warms it for exactly this
// reason.
func (s *System) MonoTable() *MonoTable {
	if s.table == nil {
		s.table = NewMonoTable()
		for i, p := range s.polys {
			s.polys[i] = s.table.InternPoly(p)
		}
	}
	return s.table
}

// NumVars returns one more than the largest variable index seen.
func (s *System) NumVars() int { return s.numVars }

// SetNumVars raises the declared variable count (for systems whose
// variables do not all occur in equations).
func (s *System) SetNumVars(n int) {
	if n > s.numVars {
		s.numVars = n
	}
}

// Clone returns a deep-enough copy: polynomials are immutable values, so
// only the slices and maps are duplicated. The monomial table is not
// carried over — the clone rebuilds its own lazily, keeping the two
// systems free to intern independently (and concurrently).
func (s *System) Clone() *System {
	n := &System{
		polys:   append([]Poly(nil), s.polys...),
		occ:     make(map[Var][]int, len(s.occ)),
		numVars: s.numVars,
	}
	for v, l := range s.occ {
		n.occ[v] = append([]int(nil), l...)
	}
	return n
}

// HasContradiction reports whether any equation is the constant 1 = 0.
func (s *System) HasContradiction() bool {
	for _, p := range s.polys {
		if p.IsOne() {
			return true
		}
	}
	return false
}

// Eval reports whether the assignment satisfies every equation.
func (s *System) Eval(assign func(Var) bool) bool {
	for _, p := range s.polys {
		if p.Eval(assign) {
			return false
		}
	}
	return true
}

// Contains reports whether an equation structurally equal to p is present.
func (s *System) Contains(p Poly) bool {
	// Use the occurrence list of p's first variable to narrow the scan.
	vs := p.Vars()
	if len(vs) == 0 {
		for _, q := range s.polys {
			if q.Equal(p) {
				return true
			}
		}
		return false
	}
	for _, i := range s.occ[vs[0]] {
		if s.polys[i].Equal(p) {
			return true
		}
	}
	return false
}

// MaxDeg returns the maximum degree over all equations (0 for an empty or
// all-deleted system).
func (s *System) MaxDeg() int {
	d := 0
	for _, p := range s.polys {
		if p.Deg() > d {
			d = p.Deg()
		}
	}
	return d
}

// SortedByDegree returns the non-zero polynomials sorted by ascending
// degree (the order XL expands equations in), ties broken by term count.
func (s *System) SortedByDegree() []Poly {
	ps := s.Polys()
	sort.SliceStable(ps, func(i, j int) bool {
		if ps[i].Deg() != ps[j].Deg() {
			return ps[i].Deg() < ps[j].Deg()
		}
		return ps[i].NumTerms() < ps[j].NumTerms()
	})
	return ps
}

// CompactOccurrences rebuilds all occurrence lists from scratch, dropping
// stale entries. Called after heavy substitution rounds.
func (s *System) CompactOccurrences() {
	s.occ = make(map[Var][]int)
	for i, p := range s.polys {
		if p.IsZero() {
			continue
		}
		for _, v := range p.Vars() {
			s.occ[v] = append(s.occ[v], i)
		}
	}
}
