package cube

import (
	"repro/internal/cnf"
	"repro/internal/sat"
)

// Node is one vertex of the cube tree. Internal nodes carry the split
// variable; leaves are either open (scheduled to a worker, Index ≥ 0) or
// refuted at split time.
type Node struct {
	// Prefix is the assumption path from the root.
	Prefix []cnf.Lit
	// Var is the split variable of an internal node.
	Var cnf.Var
	// Pos assumes Var, Neg assumes ¬Var. Both nil on leaves.
	Pos, Neg *Node
	// Refuted marks a leaf whose prefix propagates to a conflict against
	// the input clauses — no worker ever sees it, and its negation is RUP
	// against the input formula alone.
	Refuted bool
	// Index is the cube index of an open leaf, -1 otherwise.
	Index int
}

// Tree is the splitter's output.
type Tree struct {
	Root *Node
	// Open lists the open leaves' prefixes in deterministic (pre-order)
	// cube-index order.
	Open [][]cnf.Lit
	// RefutedAtSplit counts leaves refuted during splitting.
	RefutedAtSplit int
	// Status is Unsat when splitting refuted the formula outright (the
	// root prefix is empty, so a refuted root is a refuted formula);
	// Unknown otherwise.
	Status sat.Status
}

// splitterOptions derives the splitter solver's configuration: Gauss/XOR
// propagation and native parity clauses are disabled so every refutation
// the splitter finds is pure clause unit propagation — exactly the
// property that makes ¬prefix RUP against the input clauses without any
// proof segment to lean on.
func splitterOptions(o sat.Options) sat.Options {
	o.EnableGauss = false
	o.NativeXor = false
	return o
}

// Split builds a bounded cube tree for f. Expansion is breadth-first and
// fully deterministic: nodes expand in creation order, and the split
// variable is the probe-score argmax with the lowest variable index
// breaking ties.
func Split(f *cnf.Formula, opts Options) *Tree {
	t := &Tree{Root: &Node{Index: -1}, Status: sat.Unknown}
	maxCubes := opts.MaxCubes
	if maxCubes < 1 {
		maxCubes = 1
	}

	s := sat.New(splitterOptions(opts.SolverOptions))
	if !s.AddFormula(f.Clone()) {
		t.Root.Refuted = true
		t.RefutedAtSplit = 1
		t.Status = sat.Unsat
		return t
	}

	open := 1
	queue := []*Node{t.Root}
	for len(queue) > 0 && open < maxCubes {
		n := queue[0]
		queue = queue[1:]
		if opts.MaxDepth > 0 && len(n.Prefix) >= opts.MaxDepth {
			continue
		}
		scores, refuted := s.ProbeScoresUnder(n.Prefix, opts.ProbeVars)
		if !s.Okay() {
			// The formula itself is propagation-inconsistent; the whole
			// tree collapses.
			t.Root = &Node{Refuted: true, Index: -1}
			t.Open = nil
			t.RefutedAtSplit = 1
			t.Status = sat.Unsat
			return t
		}
		if refuted {
			n.Refuted = true
			t.RefutedAtSplit++
			open--
			continue
		}
		if len(scores) == 0 {
			// Propagation assigned every variable without conflict: the
			// cube is satisfiable outright. Leave it open; its worker
			// terminates immediately.
			continue
		}
		best := scores[0]
		bestScore := best.Score()
		for _, sc := range scores[1:] {
			if v := sc.Score(); v > bestScore {
				best, bestScore = sc, v
			}
		}
		n.Var = best.Var
		n.Pos = &Node{Prefix: childPrefix(n.Prefix, cnf.MkLit(best.Var, false)), Index: -1}
		n.Neg = &Node{Prefix: childPrefix(n.Prefix, cnf.MkLit(best.Var, true)), Index: -1}
		open++ // two leaves replace one
		queue = append(queue, n.Pos, n.Neg)
	}

	// Assign cube indices to the open leaves in pre-order.
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.Pos != nil {
			walk(n.Pos)
			walk(n.Neg)
			return
		}
		if n.Refuted {
			return
		}
		n.Index = len(t.Open)
		t.Open = append(t.Open, n.Prefix)
	}
	walk(t.Root)
	if len(t.Open) == 0 {
		t.Status = sat.Unsat
	}
	return t
}

func childPrefix(prefix []cnf.Lit, l cnf.Lit) []cnf.Lit {
	out := make([]cnf.Lit, len(prefix)+1)
	copy(out, prefix)
	out[len(prefix)] = l
	return out
}
