package core

import (
	"repro/internal/anf"
	"repro/internal/proof"
)

// Propagator runs ANF propagation (§II-A): value assignments from unit and
// monomial-plus-one polynomials, equivalence assignments from x ⊕ y and
// x ⊕ y ⊕ 1, applied through the master system's occurrence lists until a
// fixed point.
type Propagator struct {
	Sys   *anf.System
	State *VarState
	// Contradiction is set when 1 = 0 is derived; the system is UNSAT.
	Contradiction bool
	// prov, when non-nil, records the provenance of every binding and
	// rewrite into a ledger. All prov hooks are behind nil checks so the
	// tracking-off path is unchanged.
	prov *provTracker
}

// NewPropagator wraps a system with fresh state.
func NewPropagator(sys *anf.System) *Propagator {
	return &Propagator{Sys: sys, State: NewVarState(sys.NumVars())}
}

// Propagate runs to fixed point over the whole system. It returns the
// number of new facts (value or equivalence assignments) derived, and
// false if a contradiction was found.
func (p *Propagator) Propagate() (int, bool) {
	queue := make([]int, 0, p.Sys.RawLen())
	inQueue := make([]bool, p.Sys.RawLen())
	push := func(i int) {
		if i < len(inQueue) && !inQueue[i] {
			inQueue[i] = true
			queue = append(queue, i)
		}
	}
	for i := 0; i < p.Sys.RawLen(); i++ {
		push(i)
	}
	facts := 0
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		inQueue[i] = false
		n, affected, ok := p.step(i)
		if !ok {
			p.Contradiction = true
			return facts, false
		}
		facts += n
		for _, v := range affected {
			for _, j := range p.Sys.Occurrences(v) {
				push(j)
			}
		}
	}
	return facts, true
}

// step normalizes equation slot i and extracts any immediate facts. It
// returns the number of facts, the variables whose bindings changed, and
// false on contradiction.
func (p *Propagator) step(i int) (int, []anf.Var, bool) {
	q := p.Sys.At(i)
	if q.IsZero() {
		return 0, nil, true
	}
	p.State.Grow(p.Sys.NumVars())
	orig := q
	var wit []proof.Term
	if p.prov != nil {
		q, wit = p.prov.normalize(p.State, q)
	} else {
		q = p.State.NormalizePoly(q)
	}
	if q.IsZero() {
		p.Sys.Replace(i, anf.Zero())
		if p.prov != nil {
			p.prov.slotRec[i] = -1
		}
		return 0, nil, true
	}
	// recQ backs the slot's normalized content in the ledger; a rewrite
	// record is appended when normalization changed the polynomial, so the
	// bindings below (and the 1 = 0 contradiction) carry exact witnesses.
	recQ := -1
	if p.prov != nil {
		recQ = p.prov.slotRecord(i, orig, q, wit)
	}
	if q.IsOne() {
		return 0, nil, false
	}
	zeroSlot := func() {
		p.Sys.Replace(i, anf.Zero())
		if p.prov != nil {
			p.prov.slotRec[i] = -1
		}
	}
	facts := 0
	var affected []anf.Var
	switch {
	case q.NumTerms() == 1 && q.Deg() == 1:
		// Polynomial x: x = 0.
		v := q.Lead().Vars()[0]
		if !p.State.SetValue(v, false) {
			return 0, nil, false
		}
		if p.prov != nil {
			p.prov.noteValue(v, false, recQ)
		}
		facts++
		affected = append(affected, v)
		zeroSlot()
	case q.NumTerms() == 2 && q.Deg() == 1 && q.HasConstant():
		// Polynomial x ⊕ 1: x = 1.
		v := q.Lead().Vars()[0]
		if !p.State.SetValue(v, true) {
			return 0, nil, false
		}
		if p.prov != nil {
			p.prov.noteValue(v, true, recQ)
		}
		facts++
		affected = append(affected, v)
		zeroSlot()
	case q.IsMonomialPlusOne():
		// x·y·…·z ⊕ 1: every factor is 1.
		for _, v := range q.Lead().Vars() {
			if !p.State.SetValue(v, true) {
				return 0, nil, false
			}
			if p.prov != nil {
				p.prov.noteFactor(v, recQ)
			}
			facts++
			affected = append(affected, v)
		}
		zeroSlot()
	case q.Deg() == 1 && q.NumTerms() == 2 && !q.HasConstant():
		// x ⊕ y: x = y.
		vs := q.LinearVars()
		changed, ok := p.State.Merge(vs[0], vs[1], false)
		if !ok {
			return 0, nil, false
		}
		if changed {
			if p.prov != nil {
				p.prov.noteMerge(vs[0], vs[1], false, recQ)
			}
			facts++
			affected = append(affected, vs[0], vs[1])
		}
		zeroSlot()
	case q.Deg() == 1 && q.NumTerms() == 3 && q.HasConstant():
		// x ⊕ y ⊕ 1: x = ¬y.
		vs := q.LinearVars()
		changed, ok := p.State.Merge(vs[0], vs[1], true)
		if !ok {
			return 0, nil, false
		}
		if changed {
			if p.prov != nil {
				p.prov.noteMerge(vs[0], vs[1], true, recQ)
			}
			facts++
			affected = append(affected, vs[0], vs[1])
		}
		zeroSlot()
	default:
		p.Sys.Replace(i, q)
	}
	return facts, affected, true
}

// AddFact adds a learnt polynomial to the master system unless an equal
// one is already present (after normalization). It reports whether the
// fact was new.
func (p *Propagator) AddFact(f anf.Poly) bool {
	return p.addFact(f, nil, "")
}

// addFact is AddFact carrying a provenance witness (in ledger record
// terms) and note for the appended record.
func (p *Propagator) addFact(f anf.Poly, base []proof.Term, note string) bool {
	p.State.Grow(p.Sys.NumVars())
	if mv, ok := f.MaxVar(); ok {
		p.State.Grow(int(mv) + 1)
	}
	var q anf.Poly
	var wit []proof.Term
	if p.prov != nil {
		q, wit = p.prov.normalize(p.State, f)
	} else {
		q = p.State.NormalizePoly(f)
	}
	record := func() {
		if p.prov == nil {
			return
		}
		terms := make([]proof.Term, 0, len(base)+len(wit))
		terms = append(terms, base...)
		terms = append(terms, wit...)
		p.prov.slotRec = append(p.prov.slotRec, p.prov.append(q, terms, note))
	}
	if q.IsZero() {
		return false
	}
	if q.IsOne() {
		p.Contradiction = true
		p.Sys.Add(q)
		record()
		return true
	}
	if p.Sys.Contains(q) {
		return false
	}
	p.Sys.Add(q)
	record()
	return true
}

// AddFacts adds a batch, returning how many were new, and propagates to a
// fixed point afterwards (the paper applies ANF propagation whenever
// learnt facts are produced).
func (p *Propagator) AddFacts(fs []anf.Poly) (int, bool) {
	added := 0
	for _, f := range fs {
		if p.AddFact(f) {
			added++
		}
		if p.Contradiction {
			return added, false
		}
	}
	if added > 0 {
		if _, ok := p.Propagate(); !ok {
			return added, false
		}
	}
	return added, true
}

// AddProvFacts merges a batch of facts carrying slot-level witnesses:
// each SlotTerm is resolved to the ledger record backing that slot (via
// snap, a slot→record snapshot taken when the producing technique ran, or
// the current mapping when snap is nil), the records are stamped with the
// technique label and iteration, and the system propagates to a fixed
// point afterwards. Without an attached tracker it degrades to AddFacts.
func (p *Propagator) AddProvFacts(fs []ProvFact, technique string, iter int, snap []int) (int, bool) {
	if p.prov == nil {
		polys := make([]anf.Poly, len(fs))
		for i, f := range fs {
			polys[i] = f.Poly
		}
		return p.AddFacts(polys)
	}
	if snap == nil {
		snap = p.prov.slotRec
	}
	added := 0
	for _, f := range fs {
		p.prov.setPhase(technique, iter)
		var base []proof.Term
		for _, t := range f.Witness {
			src := -1
			if t.Slot >= 0 && t.Slot < len(snap) {
				src = snap[t.Slot]
			}
			base = append(base, proof.Term{Mult: t.Mult, Src: src})
		}
		if p.addFact(f.Poly, base, f.Note) {
			added++
		}
		if p.Contradiction {
			return added, false
		}
	}
	p.prov.setPhase(proof.TechPropagation, iter)
	if added > 0 {
		if _, ok := p.Propagate(); !ok {
			return added, false
		}
	}
	return added, true
}

// ProvSnapshot returns a copy of the current slot→ledger-record mapping
// (nil without provenance tracking) — taken before a merge sequence so
// witnesses computed against a system snapshot resolve to the records that
// described it.
func (p *Propagator) ProvSnapshot() []int {
	if p.prov == nil {
		return nil
	}
	return append([]int(nil), p.prov.slotRec...)
}
