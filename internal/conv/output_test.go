package conv

import (
	"strings"
	"testing"

	"repro/internal/anf"
	"repro/internal/cnf"
)

// §III-C: "Determined variables are added as unit clauses, while an
// equivalence such as xi = ¬xj is represented in CNF by (xi ∨ xj) ∧
// (¬xi ∨ ¬xj)." Our converter reaches the same forms through the linear
// path: a determined variable is the polynomial x (or x ⊕ 1) and an
// equivalence is x ⊕ y (⊕ 1); check the emitted clauses match the paper.
func TestDeterminedAndEquivalenceClauseForms(t *testing.T) {
	sys := anf.NewSystem()
	sys.Add(anf.MustParsePoly("x0 + 1"))      // x0 = 1
	sys.Add(anf.MustParsePoly("x1"))          // x1 = 0
	sys.Add(anf.MustParsePoly("x2 + x3 + 1")) // x2 = ¬x3
	sys.Add(anf.MustParsePoly("x4 + x5"))     // x4 = x5
	f, vm := ANFToCNF(sys, DefaultOptions())
	if vm.AuxCount() != 0 || vm.ConnectorCount() != 0 {
		t.Fatalf("no aux vars expected: %s", vm)
	}
	var forms []string
	for _, c := range f.Clauses {
		forms = append(forms, c.String())
	}
	joined := strings.Join(forms, " ")
	// Unit clauses for the determined variables.
	if !strings.Contains(joined, "(1)") || !strings.Contains(joined, "(-2)") {
		t.Fatalf("unit clauses missing: %v", forms)
	}
	// Equivalence x2 = ¬x3: (x2 ∨ x3) ∧ (¬x2 ∨ ¬x3).
	if !containsClause(f, "(3 4)") || !containsClause(f, "(-3 -4)") {
		t.Fatalf("anti-equivalence clauses missing: %v", forms)
	}
	// Equivalence x4 = x5: (x4 ∨ ¬x5) ∧ (¬x4 ∨ x5).
	if !containsClause(f, "(5 -6)") || !containsClause(f, "(-5 6)") {
		t.Fatalf("equivalence clauses missing: %v", forms)
	}
}

func containsClause(f *cnf.Formula, s string) bool {
	for _, c := range f.Clauses {
		sorted := c.Clone()
		sorted, _ = sorted.Normalize()
		if sorted.String() == s || c.String() == s {
			return true
		}
	}
	return false
}

// Cutting a long linear equation at several L values must preserve the
// solution set over the original variables.
func TestCutLenSweepSemantics(t *testing.T) {
	sys := anf.NewSystem()
	p := anf.Zero()
	nVars := 9
	for i := 0; i < nVars; i++ {
		p = p.Add(anf.VarPoly(anf.Var(i)))
	}
	p = p.Add(anf.OnePoly()) // x0 ⊕ ... ⊕ x8 = 1
	sys.Add(p)
	for _, L := range []int{3, 4, 5, 8} {
		opts := DefaultOptions()
		opts.CutLen = L
		opts.KarnaughK = 2
		f, vm := ANFToCNF(sys, opts)
		nAux := f.NumVars - nVars
		if L < nVars && nAux == 0 {
			t.Fatalf("L=%d: expected connectors", L)
		}
		_ = vm
		// For each assignment of the original vars, the parity must decide
		// extendability to the aux vars.
		for mask := 0; mask < 1<<uint(nVars); mask++ {
			parity := false
			for i := 0; i < nVars; i++ {
				if mask>>uint(i)&1 == 1 {
					parity = !parity
				}
			}
			extendable := false
			for amask := 0; amask < 1<<uint(nAux); amask++ {
				ok := f.Eval(func(v cnf.Var) bool {
					if int(v) < nVars {
						return mask>>uint(v)&1 == 1
					}
					return amask>>(uint(int(v)-nVars))&1 == 1
				})
				if ok {
					extendable = true
					break
				}
			}
			if extendable != parity {
				t.Fatalf("L=%d mask %b: extendable=%v parity=%v", L, mask, extendable, parity)
			}
		}
	}
}
