package core

import (
	"context"
	"math/rand"
	"sync"

	"repro/internal/anf"
	"repro/internal/proof"
)

// techJob is one fact learner of an iteration's snapshot phase: a closure
// over the read-only master system, the stats bucket it reports into, and
// the derived seed for its private RNG.
type techJob struct {
	name   string
	tech   string // proof.Tech* label for the provenance ledger
	stats  *PhaseStats
	seed   int64
	learn  func(rng *rand.Rand) []anf.Poly
	plearn func(rng *rand.Rand) []ProvFact // provenance-tracking variant
	facts  []anf.Poly
	pfacts []ProvFact
}

// deriveSeed mixes the run seed, iteration and job index into a decorrelated
// per-technique seed (splitmix64 finalizer). Only the inputs matter — not
// execution order — so any Workers fan-out sees identical streams.
func deriveSeed(base int64, iter, job int) int64 {
	z := uint64(base) + 0x9E3779B97F4A7C15*uint64(iter+1) + 0xBF58476D1CE4E5B9*uint64(job+1)
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}

// snapshotJobs assembles the iteration's enabled fact learners in the fixed
// merge order: XL, ElimLin, extra techniques (registration order), then the
// optional Gröbner phase — the same order the sequential loop runs them.
func snapshotJobs(ctx context.Context, sys *anf.System, cfg Config, res *Result, iter int) []*techJob {
	var jobs []*techJob
	add := func(name, tech string, stats *PhaseStats, learn func(rng *rand.Rand) []anf.Poly, plearn func(rng *rand.Rand) []ProvFact) {
		jobs = append(jobs, &techJob{
			name:   name,
			tech:   tech,
			stats:  stats,
			seed:   deriveSeed(cfg.Seed, iter, len(jobs)),
			learn:  learn,
			plearn: plearn,
		})
	}
	if !cfg.DisableXL {
		xcfg := XLConfig{M: cfg.M, DeltaM: cfg.DeltaM, Deg: cfg.XLDeg, Workers: cfg.Workers, Context: ctx}
		add("XL", proof.TechXL, &res.XL, func(rng *rand.Rand) []anf.Poly {
			c := xcfg
			c.Rand = rng
			return RunXL(sys, c)
		}, func(rng *rand.Rand) []ProvFact {
			c := xcfg
			c.Rand = rng
			return RunXLProv(sys, c)
		})
	}
	if !cfg.DisableElimLin {
		ecfg := ElimLinConfig{M: cfg.M, Workers: cfg.Workers, Context: ctx}
		add("ElimLin", proof.TechElimLin, &res.ElimLin, func(rng *rand.Rand) []anf.Poly {
			c := ecfg
			c.Rand = rng
			return RunElimLin(sys, c)
		}, func(rng *rand.Rand) []ProvFact {
			c := ecfg
			c.Rand = rng
			return RunElimLinProv(sys, c)
		})
	}
	for _, tech := range cfg.ExtraTechniques {
		tech := tech
		learn := func(rng *rand.Rand) []anf.Poly {
			return tech.Learn(ctx, sys, rng)
		}
		add(tech.Name(), proof.TechExtra, &res.Extra, learn, func(rng *rand.Rand) []ProvFact {
			return wrapPlain(learn(rng), tech.Name())
		})
	}
	if cfg.EnableGroebner {
		learn := func(rng *rand.Rand) []anf.Poly {
			if ctx.Err() != nil {
				return nil
			}
			return RunGroebnerStep(sys, DefaultGroebnerConfig(rng))
		}
		add("Groebner", proof.TechGroebner, &res.Groebner, learn, func(rng *rand.Rand) []ProvFact {
			return wrapPlain(learn(rng), "buchberger reduction")
		})
	}
	return jobs
}

// runSnapshotPhase runs one iteration's fact learners against the
// iteration-start system and merges their fact batches deterministically.
// All learners see the same snapshot (they only read sys; each already
// works on subsampled copies), so the learnt facts — and therefore the
// whole Result — are identical for every Workers value; Workers > 1 only
// changes how many run at once. Returns the number of new facts and false
// if the merge derived a contradiction.
func runSnapshotPhase(ctx context.Context, prop *Propagator, cfg Config, res *Result, iter int,
	logf func(string, ...interface{})) (int, bool) {
	sys := prop.Sys
	jobs := snapshotJobs(ctx, sys, cfg, res, iter)
	if len(jobs) == 0 {
		return 0, true
	}
	// Pre-warm the system's monomial table: once every stored polynomial
	// carries canonical interned terms, the concurrent subsample passes
	// below only ever take the table's read-only fast path.
	sys.MonoTable()

	prov := prop.prov != nil
	run := func(j *techJob) {
		rng := NewRNG(j.seed)
		if prov {
			j.pfacts = j.plearn(rng)
		} else {
			j.facts = j.learn(rng)
		}
	}
	if cfg.Workers > 1 {
		sem := make(chan struct{}, cfg.Workers)
		var wg sync.WaitGroup
		for _, j := range jobs {
			j := j
			wg.Add(1)
			sem <- struct{}{}
			go func() {
				defer func() { <-sem; wg.Done() }()
				run(j)
			}()
		}
		wg.Wait()
	} else {
		for _, j := range jobs {
			run(j)
		}
	}

	// Merge in fixed technique order: one AddFacts per technique keeps the
	// per-phase stats and the propagation order seed-reproducible. Witness
	// slots refer to the iteration-start system every learner saw, so the
	// slot→record snapshot is taken once, before the first merge mutates
	// the slot records.
	snap := prop.ProvSnapshot()
	total := 0
	for _, j := range jobs {
		var added int
		var ok bool
		n := len(j.facts)
		if prov {
			added, ok = prop.AddProvFacts(j.pfacts, j.tech, iter, snap)
			n = len(j.pfacts)
		} else {
			added, ok = prop.AddFacts(j.facts)
		}
		j.stats.Runs++
		j.stats.NewFacts += added
		total += added
		logf("iter %d: %s learnt %d facts (%d new)", iter, j.name, n, added)
		if !ok {
			return total, false
		}
	}
	return total, true
}
