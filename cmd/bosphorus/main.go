// Command bosphorus is the reproduction of the paper's tool: it reads a
// problem in ANF or CNF, runs the XL–ElimLin–SAT-solver fact-learning loop
// with ANF propagation to a fixed point, and writes a processed ANF and
// CNF augmented with the learnt facts. With -solve it keeps going until a
// verdict.
//
// Usage:
//
//	bosphorus -anf problem.anf -out-cnf out.cnf -out-anf out.anf
//	bosphorus -cnf problem.cnf -solve
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"syscall"
	"time"

	"repro/internal/anf"
	"repro/internal/cnf"
	"repro/internal/conv"
	"repro/internal/core"
	"repro/internal/proof"
	"repro/internal/sat"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "bosphorus:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("bosphorus", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		anfPath   = fs.String("anf", "", "input ANF file (one polynomial per line)")
		cnfPath   = fs.String("cnf", "", "input DIMACS CNF file")
		outANF    = fs.String("out-anf", "", "write the processed ANF here")
		outCNF    = fs.String("out-cnf", "", "write the processed CNF here")
		solve     = fs.Bool("solve", false, "keep solving until SAT/UNSAT instead of stopping at the fixed point")
		solver    = fs.String("solver", "cms", "internal SAT solver: minisat | lingeling | cms")
		m         = fs.Int("m", 20, "XL/ElimLin subsample size exponent M (linearized cells ≈ 2^M)")
		deltaM    = fs.Int("dm", 4, "XL expansion allowance δM")
		xlDeg     = fs.Int("d", 1, "XL multiplier degree D")
		karnaugh  = fs.Int("k", 8, "Karnaugh parameter K (ANF→CNF)")
		cutLen    = fs.Int("l", 5, "XOR cutting length L (ANF→CNF)")
		clauseCut = fs.Int("lp", 5, "clause cutting length L′ (CNF→ANF)")
		budget    = fs.Int64("confl", 10000, "starting SAT conflict budget C")
		maxIters  = fs.Int("iters", 16, "maximum fact-learning iterations")
		timeLimit = fs.Duration("time", 0, "wall-clock budget for the loop (0 = none)")
		seed      = fs.Int64("seed", 1, "random seed")
		verbose   = fs.Bool("v", false, "log per-iteration progress")
		probe     = fs.Bool("probe", false, "enable failed-literal probing in the SAT step (§V lookahead)")
		routeFlag = fs.Bool("route", false, "classify the converted CNF and route tractable fragments (2SAT/Horn/XOR) to polynomial solvers before CDCL")
		nativeXor = fs.Bool("native-xor", true, "keep XOR constraints as native parity clauses in the SAT solver (false = differential CNF-cut/Gauss baseline)")
		groebner  = fs.Bool("groebner", false, "enable the budgeted Buchberger phase (§V)")
		workers   = fs.Int("j", 0, "fact-learning workers: 0 = sequential paper loop, N ≥ 1 = deterministic snapshot pipeline with N goroutines")
		enum      = fs.Int("enum", 0, "enumerate up to N solutions of the processed system over the original variables")
		proofOut  = fs.String("proof", "", "capture a DRAT proof from the refuting SAT step and write it here (the exact CNF it is against goes to <path>.cnf for proofcheck)")
		proofFmt  = fs.String("proof-format", "text", "proof encoding: text | bin")
		verify    = fs.Bool("verify-facts", false, "track fact provenance and independently re-derive every learnt fact against the input; nonzero exit if any fact fails")
		noXL      = fs.Bool("no-xl", false, "ablation: disable the XL phase")
		noElimLin = fs.Bool("no-elimlin", false, "ablation: disable the ElimLin phase")
		cpuProf   = fs.String("cpuprofile", "", "write a CPU profile of the run to this file (go tool pprof)")
		memProf   = fs.String("memprofile", "", "write a heap allocation profile at exit to this file (go tool pprof)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if (*anfPath == "") == (*cnfPath == "") {
		return fmt.Errorf("exactly one of -anf or -cnf is required")
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return err
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProf != "" {
		path := *memProf
		defer func() {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(stderr, "bosphorus: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle allocations so the heap profile reflects live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(stderr, "bosphorus: memprofile:", err)
			}
		}()
	}

	cfg := core.DefaultConfig()
	cfg.M = *m
	cfg.DeltaM = *deltaM
	cfg.XLDeg = *xlDeg
	cfg.Conv = conv.Options{CutLen: *cutLen, KarnaughK: *karnaugh, ClauseCutLen: *clauseCut}
	cfg.ConflictBudget = *budget
	cfg.MaxIterations = *maxIters
	cfg.TimeBudget = *timeLimit
	cfg.Seed = *seed
	cfg.StopOnSolution = *solve
	cfg.EnableProbing = *probe
	cfg.Route = *routeFlag
	cfg.NoNativeXor = !*nativeXor
	cfg.EnableGroebner = *groebner
	cfg.Workers = *workers
	cfg.DisableXL = *noXL
	cfg.DisableElimLin = *noElimLin
	cfg.Provenance = *verify
	cfg.EmitProof = *proofOut != ""
	switch *proofFmt {
	case "text":
	case "bin":
		cfg.ProofBinary = true
	default:
		return fmt.Errorf("unknown proof format %q", *proofFmt)
	}
	if *verbose {
		cfg.Log = stderr
	}
	switch *solver {
	case "minisat":
		cfg.Profile = sat.ProfileMiniSat
	case "lingeling":
		cfg.Profile = sat.ProfileLingeling
		cfg.Preprocess = true
	case "cms":
		cfg.Profile = sat.ProfileCMS
	default:
		return fmt.Errorf("unknown solver %q", *solver)
	}

	var sys *anf.System
	var origCNF *cnf.Formula
	if *anfPath != "" {
		f, err := os.Open(*anfPath)
		if err != nil {
			return err
		}
		defer f.Close()
		sys, err = anf.ReadSystem(f)
		if err != nil {
			return err
		}
	} else {
		f, err := os.Open(*cnfPath)
		if err != nil {
			return err
		}
		defer f.Close()
		origCNF, err = cnf.ReadDimacs(f)
		if err != nil {
			return err
		}
		sys = conv.CNFToANF(origCNF, cfg.Conv)
	}

	// Ctrl-C / SIGTERM cancels the run cooperatively: the loop stops at
	// the next poll point and the outputs below still carry every fact
	// learnt up to that moment.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	cfg.Context = ctx

	start := time.Now()
	res := core.Process(sys, cfg)
	if res.Interrupted {
		fmt.Fprintln(stdout, "c interrupted: partial results follow")
	}
	fmt.Fprintf(stdout, "c bosphorus: %s\n", res.Summary())
	if res.RoutedVia != "" {
		fmt.Fprintf(stdout, "c routed via %s (%.3fms)\n", res.RoutedVia, float64(res.RouteNs)/1e6)
	}

	switch res.Status {
	case core.SolvedUNSAT:
		fmt.Fprintln(stdout, "s UNSATISFIABLE")
	case core.SolvedSAT:
		fmt.Fprintln(stdout, "s SATISFIABLE")
		fmt.Fprint(stdout, "v")
		for v, b := range res.Solution {
			if v >= sys.NumVars() {
				break
			}
			d := v + 1
			if !b {
				d = -d
			}
			fmt.Fprintf(stdout, " %d", d)
		}
		fmt.Fprintln(stdout, " 0")
	default:
		fmt.Fprintf(stdout, "c processed to fixed point (%v total)\n", time.Since(start))
	}

	if *proofOut != "" {
		if res.Certificate == nil {
			fmt.Fprintln(stdout, "c no proof captured (refutation did not come from the SAT solver)")
		} else {
			if err := os.WriteFile(*proofOut, res.Certificate.Proof, 0o644); err != nil {
				return err
			}
			cf, err := os.Create(*proofOut + ".cnf")
			if err != nil {
				return err
			}
			if err := cnf.WriteDimacs(cf, res.Certificate.Formula); err != nil {
				cf.Close()
				return err
			}
			if err := cf.Close(); err != nil {
				return err
			}
			fmt.Fprintf(stdout, "c proof: %d bytes to %s (formula: %s.cnf)\n",
				len(res.Certificate.Proof), *proofOut, *proofOut)
		}
	}

	if *verify {
		report := proof.VerifyFacts(sys, res.Provenance, proof.VerifyOptions{
			Seed: *seed, Context: ctx, Conv: cfg.Conv, Profile: cfg.Profile,
		})
		fmt.Fprintf(stdout, "c verify: %s\n", report.Summary())
		for _, v := range report.Verdicts {
			if !v.Verdict.Verified() {
				fmt.Fprintf(stdout, "c verify: fact %d (%s, iter %d): %v — %s\n",
					v.ID, v.Technique, v.Iteration, v.Verdict, v.Detail)
			}
		}
		if !report.AllVerified() {
			return fmt.Errorf("fact verification failed: %s", report.Summary())
		}
	}

	if *enum > 0 && res.Status != core.SolvedUNSAT {
		// §V: the processed system constrains the solution space without
		// committing to one solution — enumerate what remains.
		out, _ := res.OutputCNF(cfg.Conv)
		s := sat.New(sat.DefaultOptions(cfg.Profile))
		if s.AddFormula(out) {
			models := s.EnumerateModels(sys.NumVars(), *enum)
			fmt.Fprintf(stdout, "c %d solution(s) over the original variables (cap %d):\n", len(models), *enum)
			for _, m := range models {
				fmt.Fprint(stdout, "v")
				for v, b := range m {
					d := v + 1
					if !b {
						d = -d
					}
					fmt.Fprintf(stdout, " %d", d)
				}
				fmt.Fprintln(stdout, " 0")
			}
		} else {
			fmt.Fprintln(stdout, "c 0 solutions (processed CNF unsatisfiable)")
		}
	}

	if *outANF != "" {
		f, err := os.Create(*outANF)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := anf.WriteSystem(f, res.OutputANF()); err != nil {
			return err
		}
	}
	if *outCNF != "" {
		out, _ := res.OutputCNF(cfg.Conv)
		if origCNF != nil {
			// The CNF-preprocessor use-case (§III-D): the processed CNF
			// from the internal ANF is suboptimal on its own, so return
			// the original clauses plus the learnt facts.
			merged := origCNF.Clone()
			for _, c := range out.Clauses {
				inRange := true
				for _, l := range c {
					if int(l.Var()) >= origCNF.NumVars {
						inRange = false
						break
					}
				}
				if inRange && len(c) <= 2 {
					merged.AddClause(c...)
				}
			}
			out = merged
		}
		f, err := os.Create(*outCNF)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := cnf.WriteDimacs(f, out); err != nil {
			return err
		}
	}
	return nil
}
