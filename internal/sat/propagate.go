package sat

import "repro/internal/cnf"

// propagate performs unit propagation over the watched-literal lists and
// the XOR component until a joint fixed point or a conflict. It returns
// the conflicting clause ref, or NullRef. A returned Gauss conflict is an
// arena temporary — the caller releases it (releaseConflict) once conflict
// analysis is done with it.
//
//bosphorus:hotpath unit-propagation inner loop; PR-6 alloc-free result
func (s *Solver) propagate() ClauseRef {
	//lint:ignore ctxpoll propagation reaches a joint fixed point within the current trail (qhead catches up, gauss.advance stops progressing); the search loop above polls the interrupt hook
	for {
		for s.qhead < len(s.trail) {
			p := s.trail[s.qhead] // p is now true; scan watchers of p
			s.qhead++
			s.Propagations++
			// Parity clauses are problem constraints, so they are consulted
			// before the clause watch lists: with NativeXor on, an XOR-heavy
			// instance has few or no problem clauses and its clause lists hold
			// mostly learnts — scanning those first would give learnt clauses
			// propagation priority over the problem itself, the reverse of the
			// attach order the clausal-cut baseline exhibits.
			if len(s.parities) != 0 {
				if conf := s.propagateParity(p); conf != NullRef {
					return conf
				}
			}
			if conf := s.propagateLit(p); conf != NullRef {
				return conf
			}
		}
		if s.gauss == nil {
			return NullRef
		}
		//lint:ignore hotpath gauss.advance materializes XOR reasons as amortized arena temps and its only unprovable callee is the nil-guarded proof-hook dispatch, which is off on the alloc-free benchmark path
		conf, progressed := s.gauss.advance()
		if conf != NullRef {
			s.qhead = len(s.trail)
			return conf
		}
		if !progressed && s.qhead >= len(s.trail) {
			return NullRef
		}
	}
}

//
//bosphorus:hotpath watcher scan with in-place compaction
func (s *Solver) propagateLit(p cnf.Lit) ClauseRef {
	// The list is compacted in place with a single write cursor wj ≤ wi:
	// kept watchers slide left over moved ones, and the list is truncated
	// to the cursor at the end. No append, no spill — the only other list
	// touched is the new watch target's, which is never this one (the new
	// watched literal is non-false while p.Not() is false).
	ws := s.watches[p]
	wj := 0
	for wi := 0; wi < len(ws); wi++ {
		w := ws[wi]
		// Cheap pre-check: if the blocker is true the clause is satisfied
		// without loading its literals from the arena.
		if s.valueLit(w.blocker) == lTrue {
			ws[wj] = w
			wj++
			continue
		}
		cr := w.ref
		lits := s.ca.lits(cr)
		// Normalize so that the false watched literal is lits[1].
		falseLit := p.Not()
		if lits[0] == falseLit {
			lits[0], lits[1] = lits[1], lits[0]
		}
		first := lits[0]
		if first != w.blocker && s.valueLit(first) == lTrue {
			ws[wj] = watcher{cr, first}
			wj++
			continue
		}
		// Look for a new literal to watch.
		found := false
		for k := 2; k < len(lits); k++ {
			if s.valueLit(lits[k]) != lFalse {
				lits[1], lits[k] = lits[k], lits[1]
				s.watches[lits[1].Not()] = append(s.watches[lits[1].Not()], watcher{cr, first})
				found = true
				break
			}
		}
		if found {
			continue // watcher moved; do not keep
		}
		// Clause is unit or conflicting.
		ws[wj] = watcher{cr, first}
		wj++
		if s.valueLit(first) == lFalse {
			// Conflict: slide the unvisited tail up against the cursor and
			// bail out.
			wj += copy(ws[wj:], ws[wi+1:])
			s.watches[p] = ws[:wj]
			s.qhead = len(s.trail)
			return cr
		}
		if !s.enqueue(first, cr) {
			// enqueue only fails when first is false, handled above.
			panic("sat: enqueue failed on undefined literal")
		}
	}
	s.watches[p] = ws[:wj]
	return NullRef
}
