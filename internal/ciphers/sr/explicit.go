package sr

import (
	"math/rand"

	"repro/internal/anf"
)

// Style selects how S-box relations are encoded.
type Style int

const (
	// StyleImplicit uses the implicit quadratic relations (the classic
	// algebraic-cryptanalysis encoding; low degree, more equations).
	StyleImplicit Style = iota
	// StyleExplicit writes each output bit as its explicit ANF over the
	// input bits via the Möbius transform (degree up to e-1, e equations
	// per S-box) — the natural "cryptologists prefer ANF" encoding the
	// paper's introduction describes.
	StyleExplicit
)

// ExplicitSBoxPolys returns, for each output bit j of the S-box, the
// explicit polynomial f_j(in) equal to that bit.
func ExplicitSBoxPolys(table []uint16, e int, in []anf.Var) []anf.Poly {
	out := make([]anf.Poly, e)
	for j := 0; j < e; j++ {
		tt := make([]bool, len(table))
		for x, y := range table {
			tt[x] = y>>uint(j)&1 == 1
		}
		out[j] = anf.FromTruthTable(in, tt)
	}
	return out
}

// addSBoxRelations emits the equations tying S-box input bits to output
// bits in the chosen style.
func (enc *Encoding) addSBoxRelations(style Style, templates []TemplateEq, in, out []anf.Var) {
	switch style {
	case StyleExplicit:
		polys := ExplicitSBoxPolys(enc.Cipher.SBox.Table(), enc.Cipher.P.E, in)
		for j, f := range polys {
			enc.Sys.Add(f.Add(anf.VarPoly(out[j])))
		}
	default:
		for _, t := range templates {
			enc.Sys.Add(t.Instantiate(in, out))
		}
	}
}

// EncodeStyle builds the symbolic system with the chosen S-box encoding
// style. Encode(c) is EncodeStyle(c, StyleImplicit).
func EncodeStyle(c *Cipher, style Style) *Encoding {
	p := c.P
	se := p.Elements() * p.E
	enc := &Encoding{Cipher: c, Sys: anf.NewSystem()}
	enc.POff = 0
	enc.COff = se
	enc.KOff = 2 * se
	enc.XOff = enc.KOff + (p.N+1)*se
	enc.YOff = enc.XOff + p.N*se
	enc.ZOff = enc.YOff + p.N*se
	enc.NumVars = enc.ZOff + p.N*p.R*p.E
	enc.Sys.SetNumVars(enc.NumVars)

	var templates []TemplateEq
	if style == StyleImplicit {
		templates = ImplicitQuadratics(c.SBox.Table(), p.E)
	}

	for elem := 0; elem < p.Elements(); elem++ {
		xb := enc.xBits(1, elem)
		pb := enc.elemBits(enc.POff, elem)
		kb := enc.kBits(0, elem)
		for b := 0; b < p.E; b++ {
			enc.Sys.Add(linear([]anf.Var{xb[b], pb[b], kb[b]}, false))
		}
	}
	for rnd := 1; rnd <= p.N; rnd++ {
		for elem := 0; elem < p.Elements(); elem++ {
			enc.addSBoxRelations(style, templates, enc.xBits(rnd, elem), enc.yBits(rnd, elem))
		}
		for col := 0; col < p.C; col++ {
			for row := 0; row < p.R; row++ {
				outElem := c.idx(row, col)
				for b := 0; b < p.E; b++ {
					vars := []anf.Var{}
					for k := 0; k < p.R; k++ {
						srcElem := c.idx(k, (col+k)%p.C)
						yb := enc.yBits(rnd, srcElem)
						coef := c.mix[row][k]
						for ib := 0; ib < p.E; ib++ {
							if c.Field.Mul(coef, 1<<uint(ib))>>uint(b)&1 == 1 {
								vars = append(vars, yb[ib])
							}
						}
					}
					kb := enc.kBits(rnd, outElem)
					vars = append(vars, kb[b])
					if rnd < p.N {
						vars = append(vars, enc.xBits(rnd+1, outElem)[b])
					} else {
						vars = append(vars, enc.elemBits(enc.COff, outElem)[b])
					}
					enc.Sys.Add(linear(vars, false))
				}
			}
		}
		for row := 0; row < p.R; row++ {
			in := enc.kBits(rnd-1, c.idx((row+1)%p.R, p.C-1))
			out := enc.zBits(rnd, row)
			enc.addSBoxRelations(style, templates, in, out)
		}
		rcon := c.Field.Pow(2, rnd-1)
		for row := 0; row < p.R; row++ {
			kb := enc.kBits(rnd, c.idx(row, 0))
			pb := enc.kBits(rnd-1, c.idx(row, 0))
			zb := enc.zBits(rnd, row)
			for b := 0; b < p.E; b++ {
				cbit := row == 0 && rcon>>uint(b)&1 == 1
				enc.Sys.Add(linear([]anf.Var{kb[b], pb[b], zb[b]}, cbit))
			}
		}
		for col := 1; col < p.C; col++ {
			for row := 0; row < p.R; row++ {
				kb := enc.kBits(rnd, c.idx(row, col))
				lb := enc.kBits(rnd, c.idx(row, col-1))
				pb := enc.kBits(rnd-1, c.idx(row, col))
				for b := 0; b < p.E; b++ {
					enc.Sys.Add(linear([]anf.Var{kb[b], lb[b], pb[b]}, false))
				}
			}
		}
	}
	return enc
}

// GenerateInstanceStyle is GenerateInstance with an explicit encoding
// style choice.
func GenerateInstanceStyle(p Params, style Style, rng *rand.Rand) *Instance {
	c := New(p)
	enc := EncodeStyle(c, style)
	return buildInstance(c, enc, rng)
}
