// Package conv converts between ANF polynomial systems and CNF formulas,
// reproducing §III-C and §III-D of the Bosphorus paper.
//
// ANF→CNF introduces an auxiliary CNF variable for each nonlinear ANF
// monomial (with a bi-directional map), cuts long XORs at length L, and
// encodes each short polynomial either through a Karnaugh-map/logic-
// minimizer path (when it involves at most K distinct variables) or
// through a Tseitin-style XOR enumeration.
//
// CNF→ANF maps each clause to the product of its negated literals, first
// splitting clauses so no piece has more than L′ positive literals (each
// positive literal doubles the term count).
package conv

import (
	"fmt"
	"sort"

	"repro/internal/anf"
	"repro/internal/cnf"
	"repro/internal/minimize"
)

// Options parameterizes the conversion, names matching the paper (§IV).
type Options struct {
	// CutLen is L: the maximum number of XOR terms per emitted piece.
	CutLen int
	// KarnaughK is K: polynomials over at most this many distinct
	// variables go through the logic-minimizer path.
	KarnaughK int
	// ClauseCutLen is L′: the maximum positive literals per clause piece in
	// CNF→ANF conversion.
	ClauseCutLen int
	// NativeXor emits XOR pieces as native XOR clauses (for a GJE-enabled
	// solver) instead of enumerating 2^(l-1) CNF clauses.
	NativeXor bool
}

// DefaultOptions returns the paper's parameters: K=8, L=L′=5.
func DefaultOptions() Options {
	return Options{CutLen: 5, KarnaughK: 8, ClauseCutLen: 5}
}

// VarMap tracks the correspondence between ANF and CNF variables. ANF
// variable i is CNF variable i; auxiliary CNF variables (for monomials and
// XOR connectors) are allocated past the ANF range.
type VarMap struct {
	numANF  int
	monoByK map[string]cnf.Var
	monoOf  map[cnf.Var]anf.Monomial
	numAux  int
	numConn int
}

func newVarMap(numANF int) *VarMap {
	return &VarMap{
		numANF:  numANF,
		monoByK: map[string]cnf.Var{},
		monoOf:  map[cnf.Var]anf.Monomial{},
	}
}

// NumANFVars returns the count of original ANF variables (CNF variables
// below this index are original).
func (vm *VarMap) NumANFVars() int { return vm.numANF }

// IsOriginal reports whether CNF variable v maps to an original ANF
// variable.
func (vm *VarMap) IsOriginal(v cnf.Var) bool { return int(v) < vm.numANF }

// Monomial returns the ANF monomial represented by auxiliary CNF variable
// v, if any.
func (vm *VarMap) Monomial(v cnf.Var) (anf.Monomial, bool) {
	m, ok := vm.monoOf[v]
	return m, ok
}

// MonomialVars returns every (CNF variable, monomial) pair in the map,
// sorted by variable.
func (vm *VarMap) MonomialVars() []struct {
	Var  cnf.Var
	Mono anf.Monomial
} {
	out := make([]struct {
		Var  cnf.Var
		Mono anf.Monomial
	}, 0, len(vm.monoOf))
	for v, m := range vm.monoOf {
		out = append(out, struct {
			Var  cnf.Var
			Mono anf.Monomial
		}{v, m})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Var < out[j].Var })
	return out
}

// AuxCount returns how many monomial auxiliary variables were created.
func (vm *VarMap) AuxCount() int { return vm.numAux }

// ConnectorCount returns how many XOR-cutting connector variables were
// created.
func (vm *VarMap) ConnectorCount() int { return vm.numConn }

// converter carries the in-progress ANF→CNF state.
type converter struct {
	opts Options
	f    *cnf.Formula
	vm   *VarMap
}

// ANFToCNF converts the polynomial system to CNF. The returned VarMap
// relates CNF variables back to ANF monomials.
func ANFToCNF(sys *anf.System, opts Options) (*cnf.Formula, *VarMap) {
	if opts.CutLen < 3 {
		opts.CutLen = 3
	}
	c := &converter{
		opts: opts,
		f:    cnf.NewFormula(sys.NumVars()),
		vm:   newVarMap(sys.NumVars()),
	}
	for _, p := range sys.Polys() {
		c.addPoly(p)
	}
	return c.f, c.vm
}

// addPoly emits the CNF encoding of p = 0.
func (c *converter) addPoly(p anf.Poly) {
	switch {
	case p.IsZero():
		return
	case p.IsOne():
		c.f.AddClause() // empty clause: unsatisfiable
		return
	}
	vars := p.Vars()
	if len(vars) <= c.opts.KarnaughK {
		c.addKarnaugh(p, vars)
		return
	}
	c.addTseitin(p)
}

// addKarnaugh encodes p = 0 over its (few) variables by minimizing the
// on-set of p (the forbidden assignments) and emitting one blocking clause
// per prime-implicant cube — the paper's Karnaugh-map path, using our
// Quine–McCluskey minimizer in place of ESPRESSO.
func (c *converter) addKarnaugh(p anf.Poly, vars []anf.Var) {
	n := len(vars)
	idx := map[anf.Var]int{}
	for i, v := range vars {
		idx[v] = i
	}
	var onset []uint32
	for m := uint32(0); m < 1<<uint(n); m++ {
		val := p.Eval(func(v anf.Var) bool { return m>>uint(idx[v])&1 == 1 })
		if val {
			onset = append(onset, m)
		}
	}
	cubes := minimize.Minimize(n, onset)
	for _, cube := range cubes {
		var lits []cnf.Lit
		for i, v := range vars {
			if cube.Mask>>uint(i)&1 == 0 {
				continue
			}
			// Cube demands vars[i] == bit; the clause must block it.
			bit := cube.Val>>uint(i)&1 == 1
			lits = append(lits, cnf.MkLit(cnf.Var(v), bit))
		}
		c.f.AddClause(lits...)
	}
}

// addTseitin encodes p = 0 by replacing each nonlinear monomial with an
// auxiliary AND variable, cutting the resulting XOR at length L, and
// enumerating each piece.
func (c *converter) addTseitin(p anf.Poly) {
	var terms []cnf.Var
	rhs := false
	for _, t := range p.Terms() {
		switch {
		case t.IsOne():
			rhs = !rhs
		case t.Deg() == 1:
			terms = append(terms, cnf.Var(t.Vars()[0]))
		default:
			terms = append(terms, c.monomialVar(t))
		}
	}
	// p = 0 means sum(terms) ⊕ const = 0, i.e. sum(terms) = const over
	// GF(2) (subtraction is addition).
	c.addXorCut(terms, rhs)
}

// monomialVar returns the CNF variable standing for monomial m, creating
// it (with its AND-gate defining clauses) on first use.
func (c *converter) monomialVar(m anf.Monomial) cnf.Var {
	if v, ok := c.vm.monoByK[m.Key()]; ok {
		return v
	}
	v := c.f.NewVar()
	c.vm.monoByK[m.Key()] = v
	c.vm.monoOf[v] = m
	c.vm.numAux++
	// v ↔ x1 ∧ x2 ∧ ... ∧ xk
	var all []cnf.Lit
	for _, x := range m.Vars() {
		c.f.AddClause(cnf.MkLit(v, true), cnf.MkLit(cnf.Var(x), false)) // ¬v ∨ xi
		all = append(all, cnf.MkLit(cnf.Var(x), true))
	}
	all = append(all, cnf.MkLit(v, false)) // ¬x1 ∨ ... ∨ ¬xk ∨ v
	c.f.AddClause(all...)
	return v
}

// addXorCut emits sum(terms) = rhs, cutting at length L with connector
// variables.
func (c *converter) addXorCut(terms []cnf.Var, rhs bool) {
	terms = append([]cnf.Var(nil), terms...)
	L := c.opts.CutLen
	for len(terms) > L {
		u := c.f.NewVar()
		c.vm.numConn++
		// u = XOR of the first L-1 terms.
		piece := append(append([]cnf.Var(nil), terms[:L-1]...), u)
		c.emitXor(piece, false)
		terms = append([]cnf.Var{u}, terms[L-1:]...)
	}
	c.emitXor(terms, rhs)
}

// emitXor encodes sum(vars) = rhs either natively or by enumerating the
// 2^(l-1) clauses that block every odd/even-parity violation.
func (c *converter) emitXor(vars []cnf.Var, rhs bool) {
	// Cancel duplicate variables in pairs.
	count := map[cnf.Var]int{}
	for _, v := range vars {
		count[v]++
	}
	var vs []cnf.Var
	for _, v := range vars {
		if count[v]%2 == 1 {
			vs = append(vs, v)
			count[v] = 0
		}
	}
	if len(vs) == 0 {
		if rhs {
			c.f.AddClause()
		}
		return
	}
	if c.opts.NativeXor {
		c.f.AddXor(rhs, vs...)
		return
	}
	n := len(vs)
	for mask := 0; mask < 1<<uint(n); mask++ {
		parity := false
		for i := 0; i < n; i++ {
			if mask>>uint(i)&1 == 1 {
				parity = !parity
			}
		}
		if parity == rhs {
			continue
		}
		lits := make([]cnf.Lit, n)
		for i := 0; i < n; i++ {
			lits[i] = cnf.MkLit(vs[i], mask>>uint(i)&1 == 1)
		}
		c.f.AddClause(lits...)
	}
}

// PolyToCNF converts a single polynomial equation into a fresh formula;
// convenience for tests and examples (e.g. the paper's Fig. 2 comparison).
func PolyToCNF(p anf.Poly, opts Options) (*cnf.Formula, *VarMap) {
	sys := anf.NewSystem()
	sys.Add(p)
	return ANFToCNF(sys, opts)
}

// String summarizes a VarMap.
func (vm *VarMap) String() string {
	return fmt.Sprintf("varmap: %d anf vars, %d monomial aux, %d connectors",
		vm.numANF, vm.numAux, vm.numConn)
}
