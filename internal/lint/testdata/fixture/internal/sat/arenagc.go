// Lint fixture for the arenagc analyzer: ClauseRefs and lits() views held
// live across calls that may move the clause arena. The call-effect
// summaries are transitive — reduce() below never touches the arena
// syntactically, but it calls maybeGC, so it taints refs and views all
// the same.
package sat

type miniSolver struct {
	ca    clauseArena
	roots []ClauseRef
}

// reduce transitively GCs (reduce -> maybeGC -> garbageCollect).
func (s *miniSolver) reduce() {
	s.ca.wasted += 8
	s.ca.maybeGC()
}

// learn transitively allocates clauses (learn -> alloc).
func (s *miniSolver) learn(lits []uint32) ClauseRef {
	return s.ca.alloc(lits)
}

// badViewAcrossAlloc keeps a lits view live across an arena allocation:
// the append inside alloc may move the backing array.
func (s *miniSolver) badViewAcrossAlloc(r ClauseRef, extra []uint32) uint32 {
	view := s.ca.lits(r)
	s.learn(extra)
	return view[0] // want arenagc "arena view"
}

// badRefAcrossGC holds a local ref across a call that may compact: GC
// remaps s.roots, but it cannot see the local.
func (s *miniSolver) badRefAcrossGC(r ClauseRef) int {
	held := r
	s.reduce()
	return s.ca.size(held) // want arenagc "ClauseRef"
}

// badViewAcrossGC: views die on compaction too.
func (s *miniSolver) badViewAcrossGC(r ClauseRef) uint32 {
	view := s.ca.lits(r)
	s.ca.garbageCollect()
	return view[0] // want arenagc "arena view"
}

// goodRereadAfterAlloc re-reads the view through lits() after the
// allocation — the sanctioned fix.
func (s *miniSolver) goodRereadAfterAlloc(r ClauseRef, extra []uint32) uint32 {
	view := s.ca.lits(r)
	first := view[0]
	s.learn(extra)
	view = s.ca.lits(r)
	return first + view[0]
}

// goodUseBeforeCall reads the view before the killing call and passes it
// into the call itself — both legal; only reads after the call are stale.
func (s *miniSolver) goodUseBeforeCall(r ClauseRef, extra []uint32) uint32 {
	view := s.ca.lits(r)
	first := view[0]
	s.learn(view)
	return first
}

// goodRootedRef stores the ref in a remapped root before the GC and
// reloads it afterwards.
func (s *miniSolver) goodRootedRef(r ClauseRef) int {
	s.roots = append(s.roots, r)
	s.reduce()
	return s.ca.size(s.roots[len(s.roots)-1])
}

// goodLoopFreshView takes a fresh view each iteration after the
// allocating call of the previous one.
func (s *miniSolver) goodLoopFreshView(refs []ClauseRef, extra []uint32) uint32 {
	var sum uint32
	for _, r := range refs {
		view := s.ca.lits(r)
		sum += view[0]
		s.learn(extra)
	}
	return sum
}

// badLoopStaleView hoists the view out of a loop whose body allocates:
// the second iteration reads through a dead pointer.
func (s *miniSolver) badLoopStaleView(r ClauseRef, extra []uint32) uint32 {
	view := s.ca.lits(r)
	var sum uint32
	for i := 0; i < 4; i++ {
		sum += view[0] // want arenagc "arena view"
		s.learn(extra)
	}
	return sum
}
