// Benchmarks regenerating every table and figure of the paper, plus the
// ablations called out in DESIGN.md. Each BenchmarkTableII_* runs the full
// per-instance pipeline (Bosphorus fact-learning + eventual solve) on one
// representative instance of the corresponding Table II family at quick
// scale; cmd/benchtab prints the full PAR-2 matrix.
package bosphorus_test

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	bosphorus "repro"
	"repro/internal/anf"
	"repro/internal/bench"
	"repro/internal/ciphers/sha256"
	"repro/internal/ciphers/simon"
	"repro/internal/ciphers/sr"
	"repro/internal/conv"
	"repro/internal/core"
	"repro/internal/sat"
	"repro/internal/satgen"
)

const paperExample = `
x1*x2 + x3 + x4 + 1
x1*x2*x3 + x1 + x3 + 1
x1*x3 + x3*x4*x5 + x3
x2*x3 + x3*x5 + 1
x2*x3 + x5 + 1
`

func exampleSystem(b *testing.B) *bosphorus.System {
	b.Helper()
	sys, err := bosphorus.ParseANF(strings.NewReader(paperExample))
	if err != nil {
		b.Fatal(err)
	}
	return sys
}

// BenchmarkTableI_XL regenerates Table I: XL with degree-1 expansion and
// GJE on the two-equation example.
func BenchmarkTableI_XL(b *testing.B) {
	sys := anf.NewSystem()
	sys.Add(anf.MustParsePoly("x1*x2 + x1 + 1"))
	sys.Add(anf.MustParsePoly("x2*x3 + x3"))
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(1))
		facts := core.RunXL(sys, core.XLConfig{M: 20, DeltaM: 4, Deg: 1, Rand: rng})
		if len(facts) != 3 {
			b.Fatalf("facts = %v", facts)
		}
	}
}

// BenchmarkFig1_Workflow regenerates Fig. 1's loop on the worked example.
func BenchmarkFig1_Workflow(b *testing.B) {
	sys := exampleSystem(b)
	for i := 0; i < b.N; i++ {
		res := bosphorus.Solve(sys, bosphorus.DefaultOptions())
		if res.Status == bosphorus.UNSAT {
			b.Fatal("wrong verdict")
		}
	}
}

// BenchmarkFig2_Conversion regenerates Fig. 2/3: the Karnaugh (6 clauses)
// vs Tseitin (11 clauses) encodings of x1x3 ⊕ x1 ⊕ x2 ⊕ x4 ⊕ 1.
func BenchmarkFig2_Conversion(b *testing.B) {
	p := anf.MustParsePoly("x1*x3 + x1 + x2 + x4 + 1")
	b.Run("karnaugh", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			f, _ := conv.PolyToCNF(p, conv.DefaultOptions())
			if len(f.Clauses) != 6 {
				b.Fatalf("clauses = %d", len(f.Clauses))
			}
		}
	})
	b.Run("tseitin", func(b *testing.B) {
		opts := conv.DefaultOptions()
		opts.KarnaughK = 0
		for i := 0; i < b.N; i++ {
			f, _ := conv.PolyToCNF(p, opts)
			if len(f.Clauses) != 11 {
				b.Fatalf("clauses = %d", len(f.Clauses))
			}
		}
	})
}

// tableIIPipeline runs one Table II cell (one instance) at quick scale.
func tableIIPipeline(b *testing.B, job bench.Job, useBosphorus bool) {
	b.Helper()
	cfg := bench.DefaultConfig()
	cfg.Timeout = 10 * time.Second
	cfg.UseBosphorus = useBosphorus
	for i := 0; i < b.N; i++ {
		r := bench.RunInstance(job, cfg)
		if r.TruthMismatch {
			b.Fatal("verdict contradicts ground truth")
		}
	}
}

func srJob(b *testing.B) bench.Job {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	inst := sr.GenerateInstance(sr.Params{N: 1, R: 2, C: 2, E: 4}, rng)
	return bench.Job{Name: "sr", ANF: inst.Sys, Truth: satgen.StatusSat}
}

// BenchmarkTableII_SR runs the SR row's pipeline (quick-scale SR-[1,2,2,4],
// standing in for SR-[1,4,4,8]).
func BenchmarkTableII_SR(b *testing.B) {
	job := srJob(b)
	b.Run("without", func(b *testing.B) { tableIIPipeline(b, job, false) })
	b.Run("with", func(b *testing.B) { tableIIPipeline(b, job, true) })
}

func simonJob(b *testing.B, n, r int) bench.Job {
	b.Helper()
	rng := rand.New(rand.NewSource(int64(n*100 + r)))
	inst := simon.GenerateInstance(simon.Params{NPlaintexts: n, Rounds: r}, rng)
	return bench.Job{Name: "simon", ANF: inst.Sys, Truth: satgen.StatusSat}
}

// BenchmarkTableII_SimonEasy is the Simon-[8,6]-analogue row (easy:
// Bosphorus is overhead).
func BenchmarkTableII_SimonEasy(b *testing.B) {
	job := simonJob(b, 2, 6)
	b.Run("without", func(b *testing.B) { tableIIPipeline(b, job, false) })
	b.Run("with", func(b *testing.B) { tableIIPipeline(b, job, true) })
}

// BenchmarkTableII_SimonMid is the Simon-[9,7]-analogue row (break-even).
func BenchmarkTableII_SimonMid(b *testing.B) {
	job := simonJob(b, 4, 7)
	b.Run("without", func(b *testing.B) { tableIIPipeline(b, job, false) })
	b.Run("with", func(b *testing.B) { tableIIPipeline(b, job, true) })
}

// BenchmarkTableII_SimonHard is the Simon-[10,8]-analogue row: plain CDCL
// times out here while the fact-learning loop solves it — the paper's
// headline effect.
func BenchmarkTableII_SimonHard(b *testing.B) {
	job := simonJob(b, 8, 8)
	b.Run("without", func(b *testing.B) { tableIIPipeline(b, job, false) })
	b.Run("with", func(b *testing.B) { tableIIPipeline(b, job, true) })
}

func bitcoinJob(b *testing.B, k int) bench.Job {
	b.Helper()
	rng := rand.New(rand.NewSource(int64(k)))
	inst := sha256.GenerateBitcoin(sha256.BitcoinParams{K: k, Rounds: 16}, rng)
	return bench.Job{Name: "bitcoin", ANF: inst.Sys, Truth: satgen.StatusSat}
}

// BenchmarkTableII_Bitcoin10 is the Bitcoin-[10] row (quick scale: K=8).
func BenchmarkTableII_Bitcoin10(b *testing.B) {
	job := bitcoinJob(b, 8)
	b.Run("without", func(b *testing.B) { tableIIPipeline(b, job, false) })
	b.Run("with", func(b *testing.B) { tableIIPipeline(b, job, true) })
}

// BenchmarkTableII_SAT2017 runs a slice of the SAT-2017-substitute suite
// through both pipelines.
func BenchmarkTableII_SAT2017(b *testing.B) {
	suite := satgen.Suite(satgen.SuiteConfig{Scale: 1, PerFamily: 1, Seed: 3})
	job := bench.Job{Name: suite[0].Name, CNF: suite[0].Formula, Truth: suite[0].Status}
	b.Run("without", func(b *testing.B) { tableIIPipeline(b, job, false) })
	b.Run("with", func(b *testing.B) { tableIIPipeline(b, job, true) })
}

// BenchmarkAblation_Phases measures the loop with each technique disabled
// (the §II-E observation that each learns different facts).
func BenchmarkAblation_Phases(b *testing.B) {
	rng := rand.New(rand.NewSource(77))
	inst := simon.GenerateInstance(simon.Params{NPlaintexts: 4, Rounds: 6}, rng)
	run := func(b *testing.B, mutate func(*core.Config)) {
		for i := 0; i < b.N; i++ {
			cfg := core.DefaultConfig()
			mutate(&cfg)
			res := core.Process(inst.Sys, cfg)
			if res.Status == core.SolvedUNSAT {
				b.Fatal("wrong verdict")
			}
		}
	}
	b.Run("all", func(b *testing.B) { run(b, func(c *core.Config) {}) })
	b.Run("no-xl", func(b *testing.B) { run(b, func(c *core.Config) { c.DisableXL = true }) })
	b.Run("no-elimlin", func(b *testing.B) { run(b, func(c *core.Config) { c.DisableElimLin = true }) })
	b.Run("no-sat", func(b *testing.B) { run(b, func(c *core.Config) { c.DisableSAT = true }) })
}

// BenchmarkAblation_KCutoff sweeps the Karnaugh parameter K over the
// ANF→CNF conversion of an SR instance (the paper's §III-C trade-off).
func BenchmarkAblation_KCutoff(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	inst := sr.GenerateInstance(sr.Params{N: 1, R: 2, C: 2, E: 4}, rng)
	for _, k := range []int{0, 4, 8} {
		opts := conv.DefaultOptions()
		opts.KarnaughK = k
		b.Run(map[int]string{0: "k0-tseitin", 4: "k4", 8: "k8-paper"}[k], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				f, _ := conv.ANFToCNF(inst.Sys, opts)
				_ = f
			}
		})
	}
}

// BenchmarkAblation_XorGauss compares plain CDCL against the GJE-enabled
// profile on an XOR-rich instance (why CryptoMiniSat is its own column).
func BenchmarkAblation_XorGauss(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	inst := satgen.ParityChain(48, 52, 3, true, rng)
	for _, prof := range []sat.Profile{sat.ProfileMiniSat, sat.ProfileCMS} {
		b.Run(prof.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := sat.New(sat.DefaultOptions(prof))
				s.AddFormula(inst.Formula)
				if s.Solve() != sat.Sat {
					b.Fatal("wrong verdict")
				}
			}
		})
	}
}

// BenchmarkAblation_Propagation measures ANF propagation over the
// occurrence-list machinery on a large Simon system (§III-B).
func BenchmarkAblation_Propagation(b *testing.B) {
	rng := rand.New(rand.NewSource(13))
	inst := simon.GenerateInstance(simon.Params{NPlaintexts: 8, Rounds: 8}, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := core.NewPropagator(inst.Sys.Clone())
		if _, ok := p.Propagate(); !ok {
			b.Fatal("contradiction")
		}
	}
}

// BenchmarkAblation_Extensions measures the §V extensions: the loop with
// probing and the Buchberger phase toggled on.
func BenchmarkAblation_Extensions(b *testing.B) {
	rng := rand.New(rand.NewSource(21))
	inst := simon.GenerateInstance(simon.Params{NPlaintexts: 4, Rounds: 6}, rng)
	run := func(b *testing.B, mutate func(*core.Config)) {
		for i := 0; i < b.N; i++ {
			cfg := core.DefaultConfig()
			mutate(&cfg)
			res := core.Process(inst.Sys, cfg)
			if res.Status == core.SolvedUNSAT {
				b.Fatal("wrong verdict")
			}
		}
	}
	b.Run("baseline", func(b *testing.B) { run(b, func(c *core.Config) {}) })
	b.Run("probing", func(b *testing.B) { run(b, func(c *core.Config) { c.EnableProbing = true }) })
	b.Run("groebner", func(b *testing.B) { run(b, func(c *core.Config) { c.EnableGroebner = true }) })
}

// BenchmarkAblation_XorRecovery measures solving a clausal parity CNF with
// and without XOR recovery feeding the GJE component.
func BenchmarkAblation_XorRecovery(b *testing.B) {
	rng := rand.New(rand.NewSource(23))
	inst := satgen.ParityChain(40, 44, 3, true, rng)
	b.Run("without-recovery", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := sat.New(sat.DefaultOptions(sat.ProfileCMS))
			s.AddFormula(inst.Formula)
			if s.Solve() != sat.Sat {
				b.Fatal("wrong verdict")
			}
		}
	})
	b.Run("with-recovery", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rec := sat.RecoverXors(inst.Formula, 6)
			s := sat.New(sat.DefaultOptions(sat.ProfileCMS))
			s.AddFormula(rec)
			if s.Solve() != sat.Sat {
				b.Fatal("wrong verdict")
			}
		}
	})
}

// BenchmarkAblation_CutLen sweeps the XOR cutting length L over the
// conversion of a long-XOR system (§III-C's trade-off between clause
// count and auxiliary variables).
func BenchmarkAblation_CutLen(b *testing.B) {
	sys := anf.NewSystem()
	rng := rand.New(rand.NewSource(9))
	for e := 0; e < 24; e++ {
		p := anf.Zero()
		for j := 0; j < 12; j++ {
			p = p.Add(anf.VarPoly(anf.Var(rng.Intn(48))))
		}
		p = p.AddConstant(rng.Intn(2) == 1)
		sys.Add(p)
	}
	for _, L := range []int{3, 5, 8} {
		opts := conv.DefaultOptions()
		opts.CutLen = L
		opts.KarnaughK = 2
		b.Run(map[int]string{3: "L3", 5: "L5-paper", 8: "L8"}[L], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				f, _ := conv.ANFToCNF(sys, opts)
				_ = f
			}
		})
	}
}

// BenchmarkAblation_XLDegree sweeps the XL multiplier degree D (the paper
// runs D = 1; higher degrees find more facts at exponential cost).
func BenchmarkAblation_XLDegree(b *testing.B) {
	rng := rand.New(rand.NewSource(31))
	inst := sr.GenerateInstance(sr.Params{N: 1, R: 2, C: 2, E: 4}, rng)
	for _, d := range []int{1, 2} {
		b.Run(map[int]string{1: "D1-paper", 2: "D2"}[d], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				xrng := rand.New(rand.NewSource(1))
				facts := core.RunXL(inst.Sys, core.XLConfig{M: 16, DeltaM: 4, Deg: d, Rand: xrng})
				_ = facts
			}
		})
	}
}

// BenchmarkGroebnerBudget reproduces the M4GB remark: Buchberger under a
// budget on an SR instance blows through it.
func BenchmarkGroebnerBudget(b *testing.B) {
	// Kept here as a pipeline-level bench; the detailed measurement lives
	// in internal/groebner's tests. The bench target is the bench package
	// runner under a short timeout.
	rng := rand.New(rand.NewSource(17))
	inst := sr.GenerateInstance(sr.Params{N: 1, R: 2, C: 2, E: 4}, rng)
	job := bench.Job{Name: "sr-groebner", ANF: inst.Sys, Truth: satgen.StatusSat}
	cfg := bench.DefaultConfig()
	cfg.Timeout = 2 * time.Second
	for i := 0; i < b.N; i++ {
		_ = bench.RunInstance(job, cfg)
	}
}
