package core

import (
	"context"
	"math/rand"

	"repro/internal/anf"
)

// Technique is a pluggable fact-learning component. The paper's §V
// discussion highlights that "it is relatively easy to include new solving
// techniques by plugging them as components into the workflow"; this
// interface is that plug point. A Technique inspects the master system
// (read-only) and returns learnt facts — polynomials implied by the
// system. Facts join the master through the usual dedup-and-propagate
// path, so a Technique never needs to worry about bookkeeping.
//
// The built-in phases (XL, ElimLin, the SAT step, the optional Buchberger
// phase) are hard-wired for fidelity with the paper's Fig. 1; extra
// techniques run after ElimLin each iteration, in registration order.
type Technique interface {
	// Name identifies the technique in logs and statistics.
	Name() string
	// Learn returns facts implied by the system. Implementations must not
	// modify sys. The rng is seeded deterministically per run. The context
	// is the run's cancellation signal: long-running techniques should poll
	// ctx.Err() at internal boundaries and return (possibly partial) facts
	// promptly once it is non-nil — this is what lets a solver-service job
	// deadline or client disconnect actually free the worker.
	Learn(ctx context.Context, sys *anf.System, rng *rand.Rand) []anf.Poly
}

// TechniqueFunc adapts a function to the Technique interface.
type TechniqueFunc struct {
	// TechName is returned by Name.
	TechName string
	// Fn is invoked by Learn.
	Fn func(ctx context.Context, sys *anf.System, rng *rand.Rand) []anf.Poly
}

// Name implements Technique.
func (t TechniqueFunc) Name() string { return t.TechName }

// Learn implements Technique.
func (t TechniqueFunc) Learn(ctx context.Context, sys *anf.System, rng *rand.Rand) []anf.Poly {
	return t.Fn(ctx, sys, rng)
}

// BuchbergerTechnique wraps the budgeted Gröbner phase as a Technique —
// the concrete §V example ("using the Buchberger's algorithm as a
// preprocessor for SAT solving has previously been proposed, but with
// BOSPHORUS it may now be applied in an iterative manner").
func BuchbergerTechnique() Technique {
	return TechniqueFunc{
		TechName: "buchberger",
		Fn: func(ctx context.Context, sys *anf.System, rng *rand.Rand) []anf.Poly {
			if ctx.Err() != nil {
				return nil
			}
			return RunGroebnerStep(sys, DefaultGroebnerConfig(rng))
		},
	}
}
