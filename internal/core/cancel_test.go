package core

import (
	"context"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/anf"
	"repro/internal/ciphers/simon"
)

// pollCtx is a context.Context whose Err flips to Canceled after the Nth
// poll — deterministic mid-run cancellation without timers. Goroutine-safe
// (the snapshot pipeline polls from several workers).
type pollCtx struct {
	context.Context
	polls   atomic.Int64
	trigger int64
	done    chan struct{}
}

func newPollCtx(trigger int64) *pollCtx {
	return &pollCtx{Context: context.Background(), trigger: trigger, done: make(chan struct{})}
}

func (c *pollCtx) Done() <-chan struct{} { return c.done }

func (c *pollCtx) Err() error {
	if c.polls.Add(1) >= c.trigger {
		return context.Canceled
	}
	return nil
}

// hardSystem returns a Simon instance big enough that the loop does real
// work in every technique (it is not solved by initial propagation).
func hardSystem(t *testing.T) *anf.System {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	return simon.GenerateInstance(simon.Params{NPlaintexts: 4, Rounds: 8}, rng).Sys
}

// TestProcessCancellation is the table-driven proof that core.Process
// honours Config.Context across every loop configuration: a run whose
// context is cancelled — before the start or after a bounded number of
// interrupt polls — must return within a small wall-clock bound, report
// Interrupted, and still hand back a usable (partial) Result.
func TestProcessCancellation(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(cfg *Config)
		trigger int64 // Err() polls before cancellation fires; 0 = pre-cancelled
	}{
		{"pre-cancelled-sequential", func(cfg *Config) {}, 0},
		{"pre-cancelled-pipeline", func(cfg *Config) { cfg.Workers = 2 }, 0},
		{"mid-run-sequential", func(cfg *Config) {}, 8},
		{"mid-run-pipeline", func(cfg *Config) { cfg.Workers = 2 }, 8},
		{"mid-run-sat-only", func(cfg *Config) {
			cfg.DisableXL = true
			cfg.DisableElimLin = true
		}, 8},
		{"mid-run-probing", func(cfg *Config) { cfg.EnableProbing = true }, 8},
		{"mid-run-groebner", func(cfg *Config) { cfg.EnableGroebner = true }, 16},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			sys := hardSystem(t)
			cfg := DefaultConfig()
			cfg.MaxIterations = 64
			cfg.ConflictBudgetMax = 1 << 30
			cfg.ConflictBudget = 1 << 30 // make an uncancelled SAT step very long
			tc.mutate(&cfg)
			var ctx context.Context
			if tc.trigger == 0 {
				c, cancel := context.WithCancel(context.Background())
				cancel()
				ctx = c
			} else {
				ctx = newPollCtx(tc.trigger)
			}
			cfg.Context = ctx
			start := time.Now()
			res := Process(sys, cfg)
			elapsed := time.Since(start)
			if !res.Interrupted {
				t.Fatalf("Interrupted = false after cancellation (status %v)", res.Status)
			}
			if res.System == nil || res.State == nil {
				t.Fatal("cancelled run returned no partial result")
			}
			// The bound: a cancelled run may finish at most the technique
			// step it was inside plus the final propagation. On this
			// instance size that is well under 2 s even under -race.
			if elapsed > 10*time.Second {
				t.Fatalf("cancelled run took %v", elapsed)
			}
			if pc, ok := ctx.(*pollCtx); ok {
				// Cancellation must be observed within a bounded number of
				// polls after the trigger: each boundary checks once, and
				// no phase runs more than a handful of boundaries past a
				// positive poll.
				if extra := pc.polls.Load() - pc.trigger; extra > 256 {
					t.Fatalf("loop kept polling %d times after cancellation", extra)
				}
			}
		})
	}
}

// TestRunElimLinMidRoundCancellation cancels between GJE–substitute
// rounds: the run must stop at the next round boundary and return the
// facts learnt so far (sound partial output).
func TestRunElimLinMidRoundCancellation(t *testing.T) {
	sys := hardSystem(t)
	rng := rand.New(rand.NewSource(3))
	full := RunElimLin(sys, ElimLinConfig{M: 20, Rand: rand.New(rand.NewSource(3))})
	ctx := newPollCtx(2) // first poll passes (round 0 runs), second cancels
	partial := RunElimLin(sys, ElimLinConfig{M: 20, Context: ctx, Rand: rng})
	if len(partial) > len(full) {
		t.Fatalf("partial run learnt %d facts, full run %d", len(partial), len(full))
	}
	// The cancelled run stopped polling right away: one extra poll at most.
	if extra := ctx.polls.Load() - ctx.trigger; extra > 1 {
		t.Fatalf("ElimLin polled %d times after cancellation", extra)
	}
	// Every partial fact must also be a fact the full run derives from the
	// same seed (prefix property of round-ordered learning).
	for i, p := range partial {
		if i >= len(full) || !p.Equal(full[i]) {
			t.Fatalf("partial fact %d is not a prefix of the full run", i)
		}
	}
}

// TestRunXLCancelledReturnsNil: XL has no sound partial output (facts come
// from the final elimination), so a cancelled pass returns nothing.
func TestRunXLCancelledReturnsNil(t *testing.T) {
	sys := hardSystem(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if facts := RunXL(sys, XLConfig{M: 20, DeltaM: 4, Deg: 1, Context: ctx, Rand: rand.New(rand.NewSource(1))}); facts != nil {
		t.Fatalf("cancelled XL returned %d facts", len(facts))
	}
}

// TestRunSATStepCancellation: a SAT step with an enormous conflict budget
// must return promptly once its context is cancelled mid-search.
func TestRunSATStepCancellation(t *testing.T) {
	sys := hardSystem(t)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan *SATStepResult, 1)
	go func() {
		done <- RunSATStep(sys, SATStepConfig{
			ConflictBudget: 1 << 40,
			Conv:           DefaultConfig().Conv,
			Context:        ctx,
		})
	}()
	time.Sleep(100 * time.Millisecond)
	cancel()
	select {
	case res := <-done:
		if res == nil {
			t.Fatal("nil result")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("SAT step did not stop within 5s of cancellation")
	}
}

// A nil Context must behave exactly like no cancellation: same Result as
// an explicit background context (determinism check).
func TestProcessNilContextEquivalence(t *testing.T) {
	sysA := sysFrom(t, paperExample)
	sysB := sysFrom(t, paperExample)
	cfgA := DefaultConfig()
	cfgB := DefaultConfig()
	cfgB.Context = context.Background()
	resA := Process(sysA, cfgA)
	resB := Process(sysB, cfgB)
	if resA.Status != resB.Status || resA.Iterations != resB.Iterations ||
		resA.XL.NewFacts != resB.XL.NewFacts || resA.SAT.NewFacts != resB.SAT.NewFacts {
		t.Fatalf("nil-context run diverged: %+v vs %+v", resA, resB)
	}
	if resA.Interrupted || resB.Interrupted {
		t.Fatal("uncancelled run reported Interrupted")
	}
}
