package gf2

import (
	"math/rand"
	"runtime"
	"testing"
)

// randomShapedMatrix produces shapes the kernels must all agree on:
// all-zero columns, rows ≫ cols, cols ≫ rows, and dense squares.
func randomShapedMatrix(rng *rand.Rand) *Matrix {
	var rows, cols int
	switch rng.Intn(4) {
	case 0: // rows ≫ cols
		rows, cols = 50+rng.Intn(200), 1+rng.Intn(20)
	case 1: // cols ≫ rows
		rows, cols = 1+rng.Intn(20), 50+rng.Intn(200)
	case 2: // square-ish
		rows, cols = 1+rng.Intn(80), 1+rng.Intn(80)
	default: // word-boundary widths
		rows = 1 + rng.Intn(80)
		cols = []int{63, 64, 65, 127, 128, 129}[rng.Intn(6)]
	}
	m := NewMatrix(rows, cols)
	density := 1 + rng.Intn(4)
	// Zero out a random set of columns entirely to exercise pivot gaps.
	dead := map[int]bool{}
	for i := 0; i < cols/4; i++ {
		dead[rng.Intn(cols)] = true
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if !dead[c] && rng.Intn(4) < density {
				m.Set(r, c, true)
			}
		}
	}
	return m
}

// All elimination kernels — plain Gauss–Jordan, sequential M4R, and the
// parallel M4R — must return the identical rank and identical canonical
// rows (RREF is unique, so this is full bit equality).
func TestKernelsAgreeFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 120; trial++ {
		m := randomShapedMatrix(rng)
		plain, m4r := m.Clone(), m.Clone()
		rp := plain.RREF()
		rm := m4r.RREFM4R()
		if rp != rm {
			t.Fatalf("trial %d (%dx%d): rank plain=%d m4r=%d", trial, m.Rows(), m.Cols(), rp, rm)
		}
		if !plain.Equal(m4r) {
			t.Fatalf("trial %d (%dx%d): RREF differs plain vs m4r", trial, m.Rows(), m.Cols())
		}
		for _, workers := range []int{2, 3, 8} {
			par := m.Clone()
			if rw := par.RREFM4RWorkers(workers); rw != rp {
				t.Fatalf("trial %d workers=%d: rank %d, want %d", trial, workers, rw, rp)
			}
			if !par.Equal(plain) {
				t.Fatalf("trial %d workers=%d: parallel RREF differs", trial, workers)
			}
		}
	}
}

// The parallel path must also be exercised above the minWorkerWords gate,
// where the fan-out actually spawns goroutines.
func TestParallelKernelLargeMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	m := randomMatrix(rng, 1024, 1024)
	want := m.Clone()
	wr := want.RREFM4R()
	for _, workers := range []int{2, 4} {
		got := m.Clone()
		if gr := got.RREFM4RWorkers(workers); gr != wr {
			t.Fatalf("workers=%d: rank %d, want %d", workers, gr, wr)
		}
		if !got.Equal(want) {
			t.Fatalf("workers=%d: result differs from sequential", workers)
		}
	}
}

func TestAddRowFrom(t *testing.T) {
	m := NewMatrix(2, 130)
	m.Set(0, 0, true)
	m.Set(0, 129, true)
	src := make([]uint64, 3)
	src[0] = 1 << 5
	src[2] = 1 << 1 // column 129
	m.AddRowFrom(0, src)
	if !m.Get(0, 5) || m.Get(0, 129) || !m.Get(0, 0) {
		t.Fatalf("AddRowFrom wrong result: %s", m.String()[:12])
	}
}

// Regression: Solve must not read stale bits past column cols out of the
// source rows. cols%64 == 63 puts the augmented column in the same word as
// the last data column, directly in the path of a smeared bit.
func TestSolveTailWordRegression(t *testing.T) {
	const cols = 63
	m := NewMatrix(2, cols)
	m.Set(0, 0, true)
	m.Set(1, 1, true)
	// Smear garbage into bit 63 of each row's only word — past the last
	// valid column, exactly where the augmented bit will live.
	m.Row(0)[0] |= 1 << 63
	m.Row(1)[0] |= 1 << 63
	x, ok := m.Solve([]bool{true, false})
	if !ok {
		t.Fatal("consistent system reported unsolvable")
	}
	if !x[0] || x[1] {
		t.Fatalf("solution corrupted by stale tail bits: x0=%v x1=%v", x[0], x[1])
	}
	// And a multi-word shape: cols%64 == 63 with stride 2.
	m2 := NewMatrix(1, 127)
	m2.Set(0, 3, true)
	m2.Row(0)[1] |= 1 << 63
	x2, ok := m2.Solve([]bool{false})
	if !ok || x2[3] {
		t.Fatalf("multi-word tail smear: ok=%v x3=%v", ok, x2[3])
	}
}

func benchmarkRREFWorkers(b *testing.B, n, workers int) {
	rng := rand.New(rand.NewSource(42))
	m := randomMatrix(rng, n, n)
	b.ReportAllocs()
	b.SetBytes(int64(n * n / 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		c := m.Clone()
		b.StartTimer()
		c.RREFM4RWorkers(workers)
	}
}

func BenchmarkRREFM4RParallel512x1(b *testing.B)  { benchmarkRREFWorkers(b, 512, 1) }
func BenchmarkRREFM4RParallel1024x1(b *testing.B) { benchmarkRREFWorkers(b, 1024, 1) }
func BenchmarkRREFM4RParallel1024xN(b *testing.B) {
	benchmarkRREFWorkers(b, 1024, runtime.GOMAXPROCS(0))
}
func BenchmarkRREFM4RParallel2048x1(b *testing.B) { benchmarkRREFWorkers(b, 2048, 1) }
func BenchmarkRREFM4RParallel2048xN(b *testing.B) {
	benchmarkRREFWorkers(b, 2048, runtime.GOMAXPROCS(0))
}
