package gf2

import "sync"

// m4rWorkspace holds the per-call scratch of the M4R elimination kernel:
// the flat backing store of the 2^k combination table and the precomputed
// pivot-column word/shift pairs used for mask extraction. Eliminations run
// once per XL/ElimLin round, so the workspaces are pooled — a steady-state
// reduction allocates nothing beyond the matrix itself.
type m4rWorkspace struct {
	buf    []uint64 // (1<<k)*stride words; table[mask] = buf[mask*stride:]
	pcWord []int    // pivot column / 64
	pcBit  []uint   // pivot column % 64
}

var m4rPool = sync.Pool{New: func() interface{} { return new(m4rWorkspace) }}

// getM4RWorkspace returns a workspace with room for a 2^k-entry table of
// stride-word rows and k pivot descriptors.
func getM4RWorkspace(stride, k int) *m4rWorkspace {
	ws := m4rPool.Get().(*m4rWorkspace)
	need := (1 << uint(k)) * stride
	if cap(ws.buf) < need {
		ws.buf = make([]uint64, need)
	}
	ws.buf = ws.buf[:need]
	if cap(ws.pcWord) < k {
		ws.pcWord = make([]int, k)
		ws.pcBit = make([]uint, k)
	}
	return ws
}

func putM4RWorkspace(ws *m4rWorkspace) { m4rPool.Put(ws) }

// tableRow returns the mask-th combination row of the workspace table.
func (ws *m4rWorkspace) tableRow(mask, stride int) []uint64 {
	return ws.buf[mask*stride : (mask+1)*stride : (mask+1)*stride]
}

// xorWords XORs src into dst word-by-word. len(src) must be ≥ len(dst).
func xorWords(dst, src []uint64) {
	_ = src[:len(dst)] // bounds hint
	for i := range dst {
		dst[i] ^= src[i]
	}
}
