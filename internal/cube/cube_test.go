package cube

import (
	"bytes"
	"context"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/cnf"
	"repro/internal/proof"
	"repro/internal/sat"
	"repro/internal/satgen"
)

func testOptions(workers int) Options {
	o := DefaultOptions()
	o.Workers = workers
	o.ForceSplit = true
	o.MaxCubes = 8
	o.MaxDepth = 6
	o.ProbeVars = 32
	return o
}

// The splitter is deterministic: two runs over the same formula produce
// the same cube list.
func TestSplitDeterministic(t *testing.T) {
	f := satgen.Pigeonhole(5, 4).Formula
	a := Split(f, testOptions(1))
	b := Split(f, testOptions(1))
	if !reflect.DeepEqual(a.Open, b.Open) {
		t.Fatalf("split not deterministic:\n%v\nvs\n%v", a.Open, b.Open)
	}
	if a.RefutedAtSplit != b.RefutedAtSplit {
		t.Fatalf("refuted-at-split differs: %d vs %d", a.RefutedAtSplit, b.RefutedAtSplit)
	}
	if len(a.Open)+a.RefutedAtSplit < 2 {
		t.Fatalf("splitter produced no real split: %d open, %d refuted",
			len(a.Open), a.RefutedAtSplit)
	}
}

func TestCubeSat(t *testing.T) {
	f := satgen.Pigeonhole(4, 4).Formula // as many holes as pigeons: SAT
	for _, workers := range []int{1, 2} {
		res := Solve(context.Background(), f, testOptions(workers))
		if res.Status != sat.Sat {
			t.Fatalf("workers=%d: status %v, want SAT", workers, res.Status)
		}
		okModel := f.Eval(func(v cnf.Var) bool { return res.Model[v] })
		if !okModel {
			t.Fatalf("workers=%d: model does not satisfy the formula", workers)
		}
		if workers == 1 && res.SatCube < 0 {
			t.Fatalf("SatCube not set on split path")
		}
	}
}

func TestCubeUnsatProofChecks(t *testing.T) {
	f := satgen.Pigeonhole(5, 4).Formula
	for _, workers := range []int{1, 2, 4} {
		opts := testOptions(workers)
		opts.WithProof = true
		res := Solve(context.Background(), f, opts)
		if res.Status != sat.Unsat {
			t.Fatalf("workers=%d: status %v, want UNSAT", workers, res.Status)
		}
		if res.Refuted+res.RefutedAtSplit == 0 {
			t.Fatalf("workers=%d: no cube ever refuted", workers)
		}
		cr, err := proof.Check(f, bytes.NewReader(res.Proof))
		if err != nil {
			t.Fatalf("workers=%d: stitched proof rejected: %v", workers, err)
		}
		if !cr.Verified {
			t.Fatalf("workers=%d: stitched proof never derives the empty clause", workers)
		}
	}
}

// A formula refuted by the splitter alone (propagation-inconsistent
// prefixes everywhere) still yields a checkable proof: the tree merge is
// the whole refutation.
func TestSplitOnlyProof(t *testing.T) {
	// x1 and the binary chain forcing ¬x1: refuted at propagation.
	f := &cnf.Formula{NumVars: 2}
	l1 := cnf.MkLit(0, false)
	l2 := cnf.MkLit(1, false)
	f.Clauses = []cnf.Clause{{l1}, {l1.Not(), l2}, {l2.Not()}}
	opts := testOptions(1)
	opts.WithProof = true
	res := Solve(context.Background(), f, opts)
	if res.Status != sat.Unsat {
		t.Fatalf("status %v, want UNSAT", res.Status)
	}
	cr, err := proof.Check(f, bytes.NewReader(res.Proof))
	if err != nil || !cr.Verified {
		t.Fatalf("split-only proof rejected: %v (verified=%v)", err, cr != nil && cr.Verified)
	}
}

// The single-worker no-ForceSplit path is the plain solver, bit for bit:
// verdict, model, fact harvest, and every search counter.
func TestSeedEquivalenceDirectPath(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	instances := []*cnf.Formula{
		satgen.Pigeonhole(5, 4).Formula,
		satgen.Pigeonhole(4, 4).Formula,
		satgen.RandomKSAT(60, 3, 4.26, rng).Formula,
		satgen.ParityChain(40, 44, 4, false, rng).Formula,
	}
	for i, f := range instances {
		opts := DefaultOptions()
		opts.Workers = 1 // no ForceSplit: the contractual direct path
		res := Solve(context.Background(), f, opts)

		s := sat.New(opts.SolverOptions)
		var want sat.Status = sat.Unsat
		if s.AddFormula(f.Clone()) {
			want = s.Solve()
		}
		if res.Status != want {
			t.Fatalf("instance %d: cube status %v, direct %v", i, res.Status, want)
		}
		if !reflect.DeepEqual(res.Model, s.Model()) {
			t.Fatalf("instance %d: models differ", i)
		}
		if !reflect.DeepEqual(res.Units, s.LearntUnits()) {
			t.Fatalf("instance %d: unit harvest differs", i)
		}
		if !reflect.DeepEqual(res.Binaries, s.LearntBinaries()) {
			t.Fatalf("instance %d: binary harvest differs", i)
		}
		if got, wantStats := res.WorkerStats[0], s.Snapshot(); got != wantStats {
			t.Fatalf("instance %d: stats differ:\n got %v\nwant %v", i, got, wantStats)
		}
	}
}

// One worker with ForceSplit is deterministic run to run: same verdict,
// model, and counters.
func TestForceSplitSingleWorkerReproducible(t *testing.T) {
	fs := []*cnf.Formula{
		satgen.Pigeonhole(5, 4).Formula,
		satgen.Pigeonhole(4, 4).Formula,
	}
	for i, f := range fs {
		a := Solve(context.Background(), f, testOptions(1))
		b := Solve(context.Background(), f, testOptions(1))
		if a.Status != b.Status || a.SatCube != b.SatCube {
			t.Fatalf("instance %d: verdicts differ: %v/%d vs %v/%d",
				i, a.Status, a.SatCube, b.Status, b.SatCube)
		}
		if !reflect.DeepEqual(a.Model, b.Model) {
			t.Fatalf("instance %d: models differ", i)
		}
		if !reflect.DeepEqual(a.WorkerStats, b.WorkerStats) {
			t.Fatalf("instance %d: stats differ:\n%v\nvs\n%v", i, a.WorkerStats, b.WorkerStats)
		}
	}
}

// Clause sharing moves traffic and the verdict stays right (run with
// -race this also exercises the exchange hooks under contention).
func TestCubeSharingTraffic(t *testing.T) {
	f := satgen.Pigeonhole(6, 5).Formula
	opts := testOptions(2)
	opts.MaxCubes = 4
	opts.ShareSlots = 64
	opts.ShareMaxLBD = 6
	res := Solve(context.Background(), f, opts)
	if res.Status != sat.Unsat {
		t.Fatalf("status %v, want UNSAT", res.Status)
	}
	if res.SharedExported == 0 {
		t.Fatal("no clauses exported over a 2-worker run on a conflict-heavy instance")
	}
}

// Sharing composes with proof logging: imported clauses are RUP-filtered,
// so the stitched proof still checks.
func TestCubeSharingWithProof(t *testing.T) {
	f := satgen.Pigeonhole(6, 5).Formula
	opts := testOptions(4)
	opts.MaxCubes = 8
	opts.ShareSlots = 64
	opts.ShareMaxLBD = 6
	opts.WithProof = true
	res := Solve(context.Background(), f, opts)
	if res.Status != sat.Unsat {
		t.Fatalf("status %v, want UNSAT", res.Status)
	}
	cr, err := proof.Check(f, bytes.NewReader(res.Proof))
	if err != nil {
		t.Fatalf("proof rejected: %v", err)
	}
	if !cr.Verified {
		t.Fatal("proof never derives the empty clause")
	}
}
