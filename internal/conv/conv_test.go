package conv

import (
	"math/rand"
	"testing"

	"repro/internal/anf"
	"repro/internal/cnf"
	"repro/internal/sat"
)

// anfBruteForce returns all satisfying assignments of the system over
// variables [0, nVars).
func anfBruteForce(sys *anf.System, nVars int) []uint32 {
	var out []uint32
	for mask := uint32(0); mask < 1<<uint(nVars); mask++ {
		if sys.Eval(func(v anf.Var) bool { return mask>>uint(v)&1 == 1 }) {
			out = append(out, mask)
		}
	}
	return out
}

func cnfSatisfiable(f *cnf.Formula) bool {
	s := sat.NewDefault()
	if !s.AddFormula(f) {
		return false
	}
	return s.Solve() == sat.Sat
}

// TestFig2KarnaughVsTseitin reproduces the paper's Fig. 2: the polynomial
// x1x3 ⊕ x1 ⊕ x2 ⊕ x4 ⊕ 1 converts to 6 clauses with no auxiliary
// variables on the Karnaugh path, versus 11 clauses and one auxiliary
// variable on the Tseitin path.
func TestFig2KarnaughVsTseitin(t *testing.T) {
	p := anf.MustParsePoly("x1*x3 + x1 + x2 + x4 + 1")

	kOpts := DefaultOptions() // K=8 ≥ 4 vars: Karnaugh path
	kf, kvm := PolyToCNF(p, kOpts)
	if len(kf.Clauses) != 6 {
		t.Errorf("Karnaugh path: %d clauses, paper reports 6", len(kf.Clauses))
	}
	if kvm.AuxCount() != 0 || kvm.ConnectorCount() != 0 {
		t.Errorf("Karnaugh path created aux vars: %s", kvm)
	}

	tOpts := DefaultOptions()
	tOpts.KarnaughK = 0 // force the Tseitin path
	tf, tvm := PolyToCNF(p, tOpts)
	if len(tf.Clauses) != 11 {
		t.Errorf("Tseitin path: %d clauses, paper reports 11", len(tf.Clauses))
	}
	if tvm.AuxCount() != 1 {
		t.Errorf("Tseitin path: %d monomial aux vars, want 1", tvm.AuxCount())
	}

	// Both conversions must be satisfiability-equivalent to the ANF.
	sys := anf.NewSystem()
	sys.Add(p)
	sols := anfBruteForce(sys, 5)
	if len(sols) == 0 {
		t.Fatal("example polynomial should be satisfiable")
	}
	if !cnfSatisfiable(kf) || !cnfSatisfiable(tf) {
		t.Fatal("converted CNF unsatisfiable")
	}
	// Every ANF solution must satisfy the Karnaugh CNF directly (it uses
	// only original variables).
	for _, sol := range sols {
		if !kf.Eval(func(v cnf.Var) bool { return sol>>uint(v)&1 == 1 }) {
			t.Fatalf("ANF solution %05b violates Karnaugh CNF", sol)
		}
	}
}

// The models of the converted CNF, restricted to original variables, must
// satisfy the ANF; and satisfiability must be preserved.
func TestANFToCNFSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(321))
	for trial := 0; trial < 120; trial++ {
		nVars := 3 + rng.Intn(6)
		sys := anf.NewSystem()
		sys.SetNumVars(nVars)
		nPolys := 1 + rng.Intn(2*nVars)
		for i := 0; i < nPolys; i++ {
			nTerms := 1 + rng.Intn(4)
			var monos []anf.Monomial
			for j := 0; j < nTerms; j++ {
				deg := rng.Intn(4)
				var vs []anf.Var
				for d := 0; d < deg; d++ {
					vs = append(vs, anf.Var(rng.Intn(nVars)))
				}
				monos = append(monos, anf.NewMonomial(vs...))
			}
			sys.Add(anf.FromMonomials(monos...))
		}
		opts := DefaultOptions()
		if trial%3 == 1 {
			opts.KarnaughK = 0 // exercise the Tseitin path
		}
		if trial%3 == 2 {
			opts.CutLen = 3 // exercise XOR cutting
			opts.KarnaughK = 2
		}
		f, _ := ANFToCNF(sys, opts)
		sols := anfBruteForce(sys, nVars)
		s := sat.NewDefault()
		ok := s.AddFormula(f)
		st := sat.Unsat
		if ok {
			st = s.Solve()
		}
		if (st == sat.Sat) != (len(sols) > 0) {
			t.Fatalf("trial %d: ANF has %d solutions but CNF is %v", trial, len(sols), st)
		}
		if st == sat.Sat {
			m := s.Model()
			if !sys.Eval(func(v anf.Var) bool { return m[v] }) {
				t.Fatalf("trial %d: CNF model restricted to ANF vars violates system", trial)
			}
		}
	}
}

func TestNativeXorPath(t *testing.T) {
	sys := anf.NewSystem()
	// A long linear equation to force cutting: x0+...+x9 = 1.
	p := anf.Zero()
	for i := 0; i < 10; i++ {
		p = p.Add(anf.VarPoly(anf.Var(i)))
	}
	p = p.Add(anf.OnePoly())
	sys.Add(p)
	opts := DefaultOptions()
	opts.KarnaughK = 2
	opts.NativeXor = true
	f, vm := ANFToCNF(sys, opts)
	if len(f.Xors) == 0 {
		t.Fatal("native xor path emitted no xor clauses")
	}
	if vm.ConnectorCount() == 0 {
		t.Fatal("cutting a length-10 xor at L=5 should create connectors")
	}
	s := sat.New(sat.DefaultOptions(sat.ProfileCMS))
	s.AddFormula(f)
	if s.Solve() != sat.Sat {
		t.Fatal("xor system should be satisfiable")
	}
	m := s.Model()
	if !sys.Eval(func(v anf.Var) bool { return m[v] }) {
		t.Fatal("model violates the linear equation")
	}
}

func TestContradictionToEmptyClause(t *testing.T) {
	sys := anf.NewSystem()
	sys.Add(anf.OnePoly())
	f, _ := ANFToCNF(sys, DefaultOptions())
	if cnfSatisfiable(f) {
		t.Fatal("1 = 0 converted to a satisfiable CNF")
	}
}

func TestMonomialMapRoundTrip(t *testing.T) {
	sys := anf.NewSystem()
	sys.Add(anf.MustParsePoly("x0*x1 + x2*x3*x4 + x5 + x6 + x7 + x8 + x9 + 1"))
	opts := DefaultOptions()
	opts.KarnaughK = 3 // force monomial aux vars
	_, vm := ANFToCNF(sys, opts)
	if vm.AuxCount() != 2 {
		t.Fatalf("aux count = %d, want 2", vm.AuxCount())
	}
	for _, mv := range vm.MonomialVars() {
		if vm.IsOriginal(mv.Var) {
			t.Fatal("monomial var in original range")
		}
		if m, ok := vm.Monomial(mv.Var); !ok || !m.Equal(mv.Mono) {
			t.Fatal("monomial map inconsistent")
		}
	}
}

// CNF→ANF: the paper's example — clause ¬x1 ∨ x2 becomes x1x2 ⊕ x1.
func TestClausePolyPaperExample(t *testing.T) {
	c := cnf.Clause{cnf.MkLit(0, true), cnf.MkLit(1, false)} // ¬x0 ∨ x1
	p := clausePoly(c)
	want := anf.MustParsePoly("x0*x1 + x0")
	if !p.Equal(want) {
		t.Fatalf("clausePoly = %s, want %s", p, want)
	}
}

func TestCNFToANFSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(654))
	for trial := 0; trial < 100; trial++ {
		nVars := 3 + rng.Intn(5)
		f := cnf.NewFormula(nVars)
		nClauses := 1 + rng.Intn(3*nVars)
		for i := 0; i < nClauses; i++ {
			k := 1 + rng.Intn(3)
			var c []cnf.Lit
			for j := 0; j < k; j++ {
				c = append(c, cnf.MkLit(cnf.Var(rng.Intn(nVars)), rng.Intn(2) == 1))
			}
			f.AddClause(c...)
		}
		if rng.Intn(2) == 1 {
			f.AddXor(rng.Intn(2) == 1, cnf.Var(rng.Intn(nVars)), cnf.Var(rng.Intn(nVars)))
		}
		sys := CNFToANF(f, DefaultOptions())
		// Without clause splitting (short clauses), variables correspond
		// 1:1 and satisfaction must match pointwise.
		for mask := uint32(0); mask < 1<<uint(nVars); mask++ {
			cnfVal := f.Eval(func(v cnf.Var) bool { return mask>>uint(v)&1 == 1 })
			anfVal := sys.Eval(func(v anf.Var) bool { return mask>>uint(v)&1 == 1 })
			if cnfVal != anfVal {
				t.Fatalf("trial %d mask %b: cnf=%v anf=%v", trial, mask, cnfVal, anfVal)
			}
		}
	}
}

func TestClauseSplitting(t *testing.T) {
	// A clause with 8 positive literals and L′=3 must split, stay
	// equisatisfiable, and cap positive literals per piece.
	var c cnf.Clause
	for i := 0; i < 8; i++ {
		c = append(c, cnf.MkLit(cnf.Var(i), false))
	}
	next := anf.Var(8)
	pieces := splitClause(c, 3, &next)
	if len(pieces) < 3 {
		t.Fatalf("expected ≥3 pieces, got %d", len(pieces))
	}
	for _, p := range pieces {
		pos := 0
		for _, l := range p {
			if !l.Neg() && int(l.Var()) < 8 {
				pos++
			}
		}
		if pos > 3 {
			t.Fatalf("piece %v has %d original positive literals", p, pos)
		}
	}
	// Semantics: for each assignment of the original 8 vars, the original
	// clause holds iff there EXISTS an assignment of connectors satisfying
	// all pieces.
	nAux := int(next) - 8
	for mask := 0; mask < 1<<8; mask++ {
		orig := false
		for i := 0; i < 8; i++ {
			if mask>>uint(i)&1 == 1 {
				orig = true
				break
			}
		}
		exists := false
		for amask := 0; amask < 1<<uint(nAux); amask++ {
			all := true
			assign := func(v cnf.Var) bool {
				if int(v) < 8 {
					return mask>>uint(v)&1 == 1
				}
				return amask>>uint(int(v)-8)&1 == 1
			}
			for _, p := range pieces {
				sat := false
				for _, l := range p {
					if assign(l.Var()) != l.Neg() {
						sat = true
						break
					}
				}
				if !sat {
					all = false
					break
				}
			}
			if all {
				exists = true
				break
			}
		}
		if exists != orig {
			t.Fatalf("mask %08b: split semantics %v, original %v", mask, exists, orig)
		}
	}
}

func TestCNFToANFSplitLongPositiveClause(t *testing.T) {
	f := cnf.NewFormula(8)
	var c []cnf.Lit
	for i := 0; i < 8; i++ {
		c = append(c, cnf.MkLit(cnf.Var(i), false))
	}
	f.AddClause(c...)
	sys := CNFToANF(f, DefaultOptions())
	if sys.NumVars() <= 8 {
		t.Fatal("expected auxiliary split variables")
	}
	// Term-count guard: no polynomial should have more than 2^(L'+1) terms.
	for _, p := range sys.Polys() {
		if p.NumTerms() > 64 {
			t.Fatalf("polynomial with %d terms escaped the cut", p.NumTerms())
		}
	}
	// The system must be satisfiable (set x0 = 1) and must reject the
	// all-false original assignment regardless of aux values.
	nAux := sys.NumVars() - 8
	sat := func(mask, amask uint32) bool {
		return sys.Eval(func(v anf.Var) bool {
			if int(v) < 8 {
				return mask>>uint(v)&1 == 1
			}
			return amask>>uint(int(v)-8)&1 == 1
		})
	}
	for amask := uint32(0); amask < 1<<uint(nAux); amask++ {
		if sat(0, amask) {
			t.Fatal("all-false assignment satisfied the split system")
		}
	}
	found := false
	for amask := uint32(0); amask < 1<<uint(nAux); amask++ {
		if sat(1, amask) {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("x0=1 should extend to a solution")
	}
}
