// Package share provides the bounded, lock-free clause-exchange ring that
// backs portfolio and cube-and-conquer clause sharing. Producers publish
// low-LBD learnt clauses into a fixed-size ring of single-writer slots;
// each consumer follows the ring with a private cursor. The ring is lossy
// by construction: a slow consumer skips entries that have been lapped,
// and a producer that loses a slot race drops its clause. Clause sharing
// is a heuristic accelerant, so bounded loss is sound — every clause in
// the ring is implied by the shared input formula, and missing one only
// costs a potential shortcut.
//
// Concurrency design (no mutexes, no channels):
//
//   - A fetch-add ticket counter orders publications. Ticket t maps to
//     slot t % size and doubles as the entry's epoch stamp.
//   - Each slot carries a sequence word with the seqlock-style protocol
//     0 = never written, 2t+1 = ticket t writing, 2t+2 = ticket t
//     published. Writers claim a slot by CAS from an older even value to
//     2t+1, fill the payload, then store 2t+2.
//   - Readers validate the sequence before and after copying the payload;
//     any change means the entry was overwritten mid-read and is skipped.
//   - Payload literals live in atomic words (two 32-bit literals per
//     word), so concurrent lapped writes and seqlock reads are race-free
//     in the memory-model sense, not just "benign" — the race detector
//     accepts them.
package share

import (
	"sync/atomic"

	"repro/internal/cnf"
)

// MaxLits is the widest clause the ring accepts. Wide clauses are weak
// propagators and expensive to import, so clause-sharing portfolios cap
// width aggressively; 8 matches the LBD cap's intent of shipping only
// high-quality glue clauses.
const MaxLits = 8

const payloadWords = MaxLits / 2

// slot is a single ring entry. All fields are atomics so a reader racing
// a lapping writer is well-defined; the seq protocol decides whether the
// copied payload is coherent.
type slot struct {
	seq  atomic.Uint64 // 0 empty; 2t+1 ticket-t writing; 2t+2 ticket-t published
	meta atomic.Uint64 // source id <<32 | literal count
	lits [payloadWords]atomic.Uint64
}

// Ring is the shared buffer. One Ring serves a whole worker pool; each
// worker attaches through its own Endpoint.
type Ring struct {
	slots  []slot
	mask   uint64
	maxLBD int

	ticket atomic.Uint64 // next epoch/ticket to hand out

	// Traffic counters (atomic; read with Counters).
	published  atomic.Uint64 // clauses accepted into the ring
	dropLBD    atomic.Uint64 // rejected: LBD above cap
	dropWide   atomic.Uint64 // rejected: more than MaxLits literals
	dropRace   atomic.Uint64 // rejected: lost the slot-claim race
	endpointID atomic.Uint32
}

// NewRing creates a ring with at least the requested number of slots
// (rounded up to a power of two, minimum 8) accepting clauses with LBD at
// most maxLBD. maxLBD < 1 disables export entirely, which turns every
// attached endpoint into a pure consumer.
func NewRing(slots, maxLBD int) *Ring {
	n := 8
	for n < slots {
		n <<= 1
	}
	return &Ring{
		slots:  make([]slot, n),
		mask:   uint64(n - 1),
		maxLBD: maxLBD,
	}
}

// Slots returns the ring capacity.
func (r *Ring) Slots() int { return len(r.slots) }

// Counters reports the ring-wide traffic totals: clauses published, and
// drops broken down by cause (LBD cap, width cap, lost slot race).
func (r *Ring) Counters() (published, dropLBD, dropWide, dropRace uint64) {
	return r.published.Load(), r.dropLBD.Load(), r.dropWide.Load(), r.dropRace.Load()
}

// publish installs a clause stamped with the producing endpoint's id.
// Returns false when the clause is filtered or the slot race is lost.
func (r *Ring) publish(source uint32, lits []cnf.Lit, lbd int) bool {
	if lbd > r.maxLBD || r.maxLBD < 1 {
		r.dropLBD.Add(1)
		return false
	}
	if len(lits) == 0 || len(lits) > MaxLits {
		r.dropWide.Add(1)
		return false
	}
	t := r.ticket.Add(1) - 1
	s := &r.slots[t&r.mask]
	cur := s.seq.Load()
	// Claim only from an older, settled state: an odd cur is a writer from
	// a previous lap still mid-write, and cur >= 2t+2 means a later ticket
	// already lapped us. Either way the clause is dropped, never blocked.
	if cur%2 != 0 || cur >= 2*t+2 || !s.seq.CompareAndSwap(cur, 2*t+1) {
		r.dropRace.Add(1)
		return false
	}
	var words [payloadWords]uint64
	for i, l := range lits {
		words[i/2] |= uint64(uint32(l)) << (32 * uint(i%2))
	}
	for i := range words {
		s.lits[i].Store(words[i])
	}
	s.meta.Store(uint64(source)<<32 | uint64(len(lits)))
	s.seq.Store(2*t + 2)
	r.published.Add(1)
	return true
}

// read copies the entry for ticket t into buf. It returns the literal
// count and source id, and ok=false when the entry is incoherent (not
// yet published, overwritten, or republished mid-copy).
func (r *Ring) read(t uint64, buf *[MaxLits]cnf.Lit) (n int, source uint32, ok bool) {
	s := &r.slots[t&r.mask]
	want := 2*t + 2
	if s.seq.Load() != want {
		return 0, 0, false
	}
	meta := s.meta.Load()
	var words [payloadWords]uint64
	for i := range words {
		words[i] = s.lits[i].Load()
	}
	if s.seq.Load() != want {
		return 0, 0, false
	}
	n = int(meta & 0xffffffff)
	if n > MaxLits {
		return 0, 0, false
	}
	for i := 0; i < n; i++ {
		buf[i] = cnf.Lit(uint32(words[i/2] >> (32 * uint(i%2))))
	}
	return n, uint32(meta >> 32), true
}
