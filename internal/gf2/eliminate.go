package gf2

import "math/bits"

// RREF reduces the matrix in place to reduced row echelon form using plain
// Gauss–Jordan elimination with partial (first-nonzero) pivoting, and
// returns the rank. After the call, pivot rows are sorted by leading column
// and every pivot column has exactly one set bit.
func (m *Matrix) RREF() int {
	rank := 0
	for col := 0; col < m.cols && rank < m.rows; col++ {
		// Find a pivot row at or below rank with a 1 in this column.
		pivot := -1
		for r := rank; r < m.rows; r++ {
			if m.Get(r, col) {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			continue
		}
		m.SwapRows(rank, pivot)
		// Eliminate the column from every other row.
		prow := m.Row(rank)
		for r := 0; r < m.rows; r++ {
			if r == rank || !m.Get(r, col) {
				continue
			}
			row := m.Row(r)
			for w := range row {
				row[w] ^= prow[w]
			}
		}
		rank++
	}
	return rank
}

// Rank returns the rank of the matrix without modifying it.
func (m *Matrix) Rank() int {
	return m.Clone().RREF()
}

// m4rK picks the table width for M4R elimination: roughly log2 of the
// matrix size, clamped to [1, 8] so tables stay small.
func m4rK(rows, cols int) int {
	n := rows
	if cols < n {
		n = cols
	}
	k := bits.Len(uint(n)) - 2
	if k < 1 {
		k = 1
	}
	if k > 8 {
		k = 8
	}
	return k
}

// RREFM4R reduces the matrix in place to reduced row echelon form using the
// Method of the Four Russians and returns the rank. It processes up to k
// pivot columns per round: the k pivot rows are first fully reduced against
// each other, then a 2^k-entry table of all their GF(2) combinations is
// built, and every other row is cleared in one table lookup plus one
// word-parallel XOR. This is the elimination algorithm that gives M4RI its
// name and its asymptotic O(n^3 / log n) behaviour.
func (m *Matrix) RREFM4R() int {
	k := m4rK(m.rows, m.cols)
	rank := 0
	col := 0
	for col < m.cols && rank < m.rows {
		// Gather up to k pivots starting from this column.
		type pivot struct{ row, col int }
		var pivots []pivot
		c := col
		for c < m.cols && len(pivots) < k {
			// Scan candidate rows below the block, reducing each against
			// the block pivots before testing its bit at column c. Rows
			// that are reduced but not chosen stay partially reduced; that
			// is only a row operation, so correctness is unaffected and the
			// table step below finishes them.
			found := -1
			for r := rank + len(pivots); r < m.rows; r++ {
				for _, p := range pivots {
					if m.Get(r, p.col) {
						m.AddRowTo(p.row, r)
					}
				}
				if m.Get(r, c) {
					found = r
					break
				}
			}
			if found >= 0 {
				newRow := rank + len(pivots)
				m.SwapRows(newRow, found)
				// Clear column c from the earlier pivot rows so the block
				// stays in reduced form.
				for _, p := range pivots {
					if m.Get(p.row, c) {
						m.AddRowTo(newRow, p.row)
					}
				}
				pivots = append(pivots, pivot{newRow, c})
			}
			c++
		}
		if len(pivots) == 0 {
			break
		}
		// Build the combination table: table[mask] = XOR of pivot rows whose
		// bit is set in mask. Built incrementally (Gray-code style) so each
		// entry costs one row XOR.
		nComb := 1 << len(pivots)
		table := make([][]uint64, nComb)
		table[0] = make([]uint64, m.stride)
		for mask := 1; mask < nComb; mask++ {
			low := bits.TrailingZeros(uint(mask))
			prev := table[mask&(mask-1)]
			row := make([]uint64, m.stride)
			pr := m.Row(pivots[low].row)
			for w := range row {
				row[w] = prev[w] ^ pr[w]
			}
			table[mask] = row
		}
		// Reduce every non-pivot row: read its bits at the pivot columns to
		// form the table index, then XOR the combination in.
		for r := 0; r < m.rows; r++ {
			inBlock := false
			for _, p := range pivots {
				if r == p.row {
					inBlock = true
					break
				}
			}
			if inBlock {
				continue
			}
			mask := 0
			for i, p := range pivots {
				if m.Get(r, p.col) {
					mask |= 1 << i
				}
			}
			if mask == 0 {
				continue
			}
			row := m.Row(r)
			comb := table[mask]
			for w := range row {
				row[w] ^= comb[w]
			}
		}
		rank += len(pivots)
		col = c
	}
	// The pivot gathering above can leave rows unsorted by leading column
	// when a round spans a zero column; finish with a compaction pass that
	// restores canonical RREF row order.
	m.sortRowsByLeading()
	return rank
}

// sortRowsByLeading reorders rows so leading columns are strictly
// increasing, with zero rows last. Rows in RREF are unique per leading
// column, so a counting placement suffices.
func (m *Matrix) sortRowsByLeading() {
	type rowLead struct{ row, lead int }
	leads := make([]rowLead, m.rows)
	for r := 0; r < m.rows; r++ {
		l := m.LeadingCol(r)
		if l < 0 {
			l = m.cols
		}
		leads[r] = rowLead{r, l}
	}
	// Insertion sort on the lead column; matrices here are small enough and
	// usually nearly sorted already.
	for i := 1; i < len(leads); i++ {
		for j := i; j > 0 && leads[j].lead < leads[j-1].lead; j-- {
			leads[j], leads[j-1] = leads[j-1], leads[j]
			m.SwapRows(leads[j].row, leads[j-1].row)
			leads[j].row, leads[j-1].row = leads[j-1].row, leads[j].row
		}
	}
}

// NullSpace returns a basis of the right null space of m: every returned
// vector v (length Cols) satisfies m·v = 0. The basis vectors are packed
// bit vectors in the same layout as matrix rows.
func (m *Matrix) NullSpace() []*Matrix {
	r := m.Clone()
	r.RREF()
	// Identify pivot columns.
	pivotCol := make([]int, 0, m.rows)
	isPivot := make([]bool, m.cols)
	for row := 0; row < r.rows; row++ {
		c := r.LeadingCol(row)
		if c < 0 {
			break
		}
		pivotCol = append(pivotCol, c)
		isPivot[c] = true
	}
	var basis []*Matrix
	for free := 0; free < m.cols; free++ {
		if isPivot[free] {
			continue
		}
		v := NewMatrix(1, m.cols)
		v.Set(0, free, true)
		for row, pc := range pivotCol {
			if r.Get(row, free) {
				v.Set(0, pc, true)
			}
		}
		basis = append(basis, v)
	}
	return basis
}

// Solve finds one solution x to m·x = b, where b is a column vector given
// as a packed bit slice of length Rows. It returns (x, true) on success and
// (nil, false) if the system is inconsistent. Free variables are set to 0.
func (m *Matrix) Solve(b []bool) ([]bool, bool) {
	if len(b) != m.rows {
		panic("gf2: Solve rhs length mismatch")
	}
	// Build the augmented matrix [m | b].
	aug := NewMatrix(m.rows, m.cols+1)
	for r := 0; r < m.rows; r++ {
		copy(aug.Row(r), m.Row(r))
		// The copy above may smear bits of the old last partial word into
		// the augmented column region only if cols%64 leaves room; clear
		// and re-set the augmented bit explicitly.
		aug.Set(r, m.cols, b[r])
	}
	aug.RREF()
	x := make([]bool, m.cols)
	for r := 0; r < aug.rows; r++ {
		lead := aug.LeadingCol(r)
		if lead < 0 {
			break
		}
		if lead == m.cols {
			return nil, false // row 0...0 | 1: inconsistent
		}
		x[lead] = aug.Get(r, m.cols)
	}
	return x, true
}
