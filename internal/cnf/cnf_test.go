package cnf

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestLitEncoding(t *testing.T) {
	p := MkLit(3, false)
	n := MkLit(3, true)
	if p.Var() != 3 || n.Var() != 3 {
		t.Fatal("Var wrong")
	}
	if p.Neg() || !n.Neg() {
		t.Fatal("Neg wrong")
	}
	if p.Not() != n || n.Not() != p {
		t.Fatal("Not wrong")
	}
	if p.Dimacs() != 4 || n.Dimacs() != -4 {
		t.Fatalf("Dimacs = %d, %d", p.Dimacs(), n.Dimacs())
	}
}

func TestLitFromDimacs(t *testing.T) {
	l, err := LitFromDimacs(-4)
	if err != nil || l != MkLit(3, true) {
		t.Fatalf("LitFromDimacs(-4) = %v, %v", l, err)
	}
	l, err = LitFromDimacs(1)
	if err != nil || l != MkLit(0, false) {
		t.Fatalf("LitFromDimacs(1) = %v, %v", l, err)
	}
	if _, err := LitFromDimacs(0); err == nil {
		t.Fatal("LitFromDimacs(0) should fail")
	}
}

// Property: Dimacs round trip is identity.
func TestQuickLitRoundTrip(t *testing.T) {
	f := func(v uint16, neg bool) bool {
		l := MkLit(Var(v), neg)
		back, err := LitFromDimacs(l.Dimacs())
		return err == nil && back == l
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestClauseNormalize(t *testing.T) {
	c := Clause{MkLit(2, false), MkLit(1, true), MkLit(2, false)}
	out, taut := c.Normalize()
	if taut {
		t.Fatal("non-tautology reported as tautology")
	}
	if len(out) != 2 {
		t.Fatalf("normalize kept %d literals, want 2", len(out))
	}
	c = Clause{MkLit(1, false), MkLit(1, true)}
	if _, taut := c.Normalize(); !taut {
		t.Fatal("tautology not detected")
	}
}

func TestFormulaAddEval(t *testing.T) {
	f := NewFormula(0)
	f.AddClause(MkLit(0, false), MkLit(1, true)) // v0 ∨ ¬v1
	f.AddXor(true, 0, 1)                         // v0 ⊕ v1 = 1
	if f.NumVars != 2 {
		t.Fatalf("NumVars = %d", f.NumVars)
	}
	// v0=1, v1=0 satisfies both.
	if !f.Eval(func(v Var) bool { return v == 0 }) {
		t.Fatal("satisfying assignment rejected")
	}
	// v0=0, v1=1 violates the clause.
	if f.Eval(func(v Var) bool { return v == 1 }) {
		t.Fatal("violating assignment accepted")
	}
	// v0=1, v1=1 violates the xor.
	if f.Eval(func(v Var) bool { return true }) {
		t.Fatal("xor-violating assignment accepted")
	}
}

func TestNewVar(t *testing.T) {
	f := NewFormula(3)
	if v := f.NewVar(); v != 3 || f.NumVars != 4 {
		t.Fatalf("NewVar = %d, NumVars = %d", v, f.NumVars)
	}
}

func TestCloneIndependent(t *testing.T) {
	f := NewFormula(0)
	f.AddClause(MkLit(0, false), MkLit(1, false))
	g := f.Clone()
	g.Clauses[0][0] = MkLit(5, true)
	if f.Clauses[0][0] != MkLit(0, false) {
		t.Fatal("clone shares clause storage")
	}
}

func TestDimacsRoundTrip(t *testing.T) {
	f := NewFormula(0)
	f.AddClause(MkLit(0, false), MkLit(1, true), MkLit(2, false))
	f.AddClause(MkLit(3, true))
	f.AddXor(true, 0, 2, 3)
	f.AddXor(false, 1, 4)
	var sb strings.Builder
	if err := WriteDimacs(&sb, f); err != nil {
		t.Fatal(err)
	}
	back, err := ReadDimacs(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.NumVars != f.NumVars || len(back.Clauses) != len(f.Clauses) || len(back.Xors) != len(f.Xors) {
		t.Fatalf("round trip changed shape: %s -> %s", f.Stats(), back.Stats())
	}
	for i, c := range f.Clauses {
		if back.Clauses[i].String() != c.String() {
			t.Fatalf("clause %d changed: %s -> %s", i, c, back.Clauses[i])
		}
	}
	for i, x := range f.Xors {
		if back.Xors[i].RHS != x.RHS || len(back.Xors[i].Vars) != len(x.Vars) {
			t.Fatalf("xor %d changed", i)
		}
	}
}

func TestReadDimacsFeatures(t *testing.T) {
	src := `c a comment
p cnf 5 3
1 -2 0
3
4 0
x1 2 -5 0
`
	f, err := ReadDimacs(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if f.NumVars != 5 {
		t.Fatalf("NumVars = %d", f.NumVars)
	}
	if len(f.Clauses) != 2 {
		t.Fatalf("clauses = %d, want 2 (multi-line clause)", len(f.Clauses))
	}
	if len(f.Clauses[1]) != 2 {
		t.Fatalf("second clause has %d lits", len(f.Clauses[1]))
	}
	if len(f.Xors) != 1 {
		t.Fatalf("xors = %d", len(f.Xors))
	}
	x := f.Xors[0]
	if x.RHS { // trailing -5 flips parity
		t.Fatal("xor RHS should be false")
	}
	if len(x.Vars) != 3 || x.Vars[0] != 0 || x.Vars[1] != 1 || x.Vars[2] != 4 {
		t.Fatalf("xor vars = %v", x.Vars)
	}
}

func TestReadDimacsErrors(t *testing.T) {
	cases := []string{
		"p cnf x y\n1 0\n",
		"1 zz 0\n",
		"1 2\n", // unterminated at EOF
	}
	for _, src := range cases {
		if _, err := ReadDimacs(strings.NewReader(src)); err == nil {
			t.Errorf("ReadDimacs(%q) succeeded, want error", src)
		}
	}
}

func TestXorClauseString(t *testing.T) {
	x := XorClause{Vars: []Var{0, 1, 4}, RHS: false}
	if got := x.String(); got != "x1 2 -5" {
		t.Fatalf("String = %q", got)
	}
	x.RHS = true
	if got := x.String(); got != "x1 2 5" {
		t.Fatalf("String = %q", got)
	}
}

// Property: random formulas survive a DIMACS round trip with evaluation
// behaviour intact under random assignments.
func TestQuickDimacsSemantics(t *testing.T) {
	f := func(seed int64, bits uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		frm := NewFormula(8)
		for i := 0; i < rng.Intn(10); i++ {
			var c []Lit
			for j := 0; j <= rng.Intn(4); j++ {
				c = append(c, MkLit(Var(rng.Intn(8)), rng.Intn(2) == 1))
			}
			frm.AddClause(c...)
		}
		for i := 0; i < rng.Intn(3); i++ {
			var vs []Var
			for j := 0; j <= rng.Intn(4); j++ {
				vs = append(vs, Var(rng.Intn(8)))
			}
			frm.AddXor(rng.Intn(2) == 1, vs...)
		}
		var sb strings.Builder
		if err := WriteDimacs(&sb, frm); err != nil {
			return false
		}
		back, err := ReadDimacs(strings.NewReader(sb.String()))
		if err != nil {
			return false
		}
		assign := func(v Var) bool { return bits>>(uint(v)%16)&1 == 1 }
		return frm.Eval(assign) == back.Eval(assign)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
