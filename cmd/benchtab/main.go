// Command benchtab regenerates the paper's tables and figures:
//
//	benchtab -table 2            # Table II: the PAR-2 solver matrix
//	benchtab -table 2 -hard      # Table II's second SAT-2017 block (hard subset)
//	benchtab -table 1            # Table I: the worked XL example
//	benchtab -table fig2         # Fig. 2/3: Karnaugh vs Tseitin clause counts
//
// Table II runs every benchmark family against MiniSat-, Lingeling- and
// CryptoMiniSat-profile solvers, with and without the Bosphorus
// fact-learning loop, and prints PAR-2 scores with solved counts in the
// paper's row format. Sizes and timeouts are scaled for a single machine;
// -scale paper selects the paper's cipher parameters instead.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"time"

	"repro/internal/anf"
	"repro/internal/bench"
	"repro/internal/ciphers/sr"
	"repro/internal/conv"
	"repro/internal/core"
	"repro/internal/gf2"
	"repro/internal/sat"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "benchtab:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("benchtab", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		table   = fs.String("table", "2", "what to regenerate: 1 | 2 | fig2")
		scale   = fs.String("scale", "quick", "instance scale: quick | paper")
		count   = fs.Int("count", 3, "instances per family")
		timeout = fs.Duration("timeout", 3*time.Second, "per-instance timeout (the paper used 5000 s)")
		seed    = fs.Int64("seed", 1, "random seed")
		hard    = fs.Bool("hard", false, "also evaluate the SAT-2017 hard subset (Table II's second block)")
		cactus  = fs.String("cactus", "", "with -table 2: also write a cactus-plot CSV (w vs w/o per solver) to this file")
		perf    = fs.String("perf", "", "write a JSON snapshot of the linearization/elimination kernel timings to this file and exit")
		verbose = fs.Bool("v", false, "log each cell as it completes")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *perf != "" {
		return perfSnapshot(*perf, *seed, stderr)
	}

	switch *table {
	case "1":
		return tableI(stdout)
	case "fig2":
		return fig2(stdout)
	case "2":
		sc := bench.Quick
		if *scale == "paper" {
			sc = bench.Paper
		}
		cfg := bench.DefaultConfig()
		cfg.Timeout = *timeout
		cfg.Seed = *seed
		fams := bench.Families(sc, *count, *seed)
		if *hard {
			for _, f := range fams {
				if f.Name == "SAT-2017" {
					fmt.Fprintln(stderr, "selecting the hard SAT-2017 subset (MiniSat-runtime proxy, as in §IV)...")
					fams = append(fams, bench.HardSubset(f, cfg, 0.5))
				}
			}
		}
		var log io.Writer
		if *verbose {
			log = stderr
		}
		tab := bench.RunTableII(fams, cfg, log)
		fmt.Fprint(stdout, tab.Format())
		if *cactus != "" {
			var jobs []bench.Job
			for _, f := range fams {
				jobs = append(jobs, f.Jobs...)
			}
			configs := map[string]bench.Config{}
			for _, prof := range bench.Profiles {
				for _, useB := range []bool{false, true} {
					c := cfg
					c.Profile = prof
					c.UseBosphorus = useB
					name := prof.String() + "-wo"
					if useB {
						name = prof.String() + "-w"
					}
					configs[name] = c
				}
			}
			series := bench.RunCactus(jobs, configs)
			f, err := os.Create(*cactus)
			if err != nil {
				return err
			}
			defer f.Close()
			if err := bench.WriteCactusCSV(f, series); err != nil {
				return err
			}
			fmt.Fprintf(stderr, "cactus CSV written to %s\n", *cactus)
		}
		return nil
	default:
		return fmt.Errorf("unknown table %q", *table)
	}
}

// perfSnapshot times the hot kernels this reproduction optimizes — the XL
// linearization pass, the ElimLin rounds loop, the (optionally parallel)
// M4R elimination, and (since PR 5) the CDCL solver's propagation-heavy
// and conflict-analysis-heavy benchmark families — and writes the medians
// as JSON, so successive PRs can diff like against like (see
// BENCH_pr1.json, BENCH_pr5.json). The CDCL entries carry allocs/op and
// bytes/op alongside ns/op: the arena clause store's target is both.
func perfSnapshot(path string, seed int64, stderr io.Writer) error {
	median := func(runs int, f func()) int64 {
		times := make([]int64, runs)
		for i := range times {
			t0 := time.Now()
			f()
			times[i] = time.Since(t0).Nanoseconds()
		}
		sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
		return times[runs/2]
	}
	srSys := sr.GenerateInstance(sr.Params{N: 1, R: 2, C: 2, E: 4},
		rand.New(rand.NewSource(7))).Sys
	randMatrix := func(n int, src int64) *gf2.Matrix {
		rng := rand.New(rand.NewSource(src))
		m := gf2.NewMatrix(n, n)
		for r := 0; r < n; r++ {
			for c := 0; c < n; c++ {
				if rng.Intn(2) == 1 {
					m.Set(r, c, true)
				}
			}
		}
		return m
	}
	workers := runtime.GOMAXPROCS(0)
	results := map[string]int64{
		"xl_sr_ns": median(5, func() {
			core.RunXL(srSys, core.XLConfig{M: 20, DeltaM: 4, Deg: 1,
				Rand: rand.New(rand.NewSource(seed))})
		}),
		"elimlin_sr_ns": median(5, func() {
			core.RunElimLin(srSys, core.ElimLinConfig{M: 20,
				Rand: rand.New(rand.NewSource(seed))})
		}),
		"rref_m4r_1024_w1_ns": median(5, func() {
			randMatrix(1024, seed).RREFM4RWorkers(1)
		}),
		"rref_m4r_1024_wN_ns": median(5, func() {
			randMatrix(1024, seed).RREFM4RWorkers(workers)
		}),
	}
	cdcl := map[string]bench.CDCLMeasurement{}
	for fam, jobs := range map[string][]bench.CDCLJob{
		"propagation": bench.CDCLPropagationJobs(),
		"conflict":    bench.CDCLConflictJobs(),
	} {
		for name, m := range bench.MeasureCDCL(jobs, sat.ProfileMiniSat, 5) {
			cdcl["cdcl_"+fam+"_"+name] = m
		}
	}
	blob := struct {
		Date       string                           `json:"date"`
		GOOS       string                           `json:"goos"`
		GOARCH     string                           `json:"goarch"`
		GOMAXPROCS int                              `json:"gomaxprocs"`
		Seed       int64                            `json:"seed"`
		Medians    map[string]int64                 `json:"medians_ns"`
		CDCL       map[string]bench.CDCLMeasurement `json:"cdcl"`
	}{
		Date:       time.Now().UTC().Format(time.RFC3339),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: workers,
		Seed:       seed,
		Medians:    results,
		CDCL:       cdcl,
	}
	data, err := json.MarshalIndent(blob, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "perf snapshot written to %s\n", path)
	return nil
}

// tableI prints the worked XL example of Table I.
func tableI(w io.Writer) error {
	sys := anf.NewSystem()
	sys.Add(anf.MustParsePoly("x1*x2 + x1 + 1"))
	sys.Add(anf.MustParsePoly("x2*x3 + x3"))
	fmt.Fprintln(w, "Table I reproduction — XL on {x1*x2 + x1 + 1, x2*x3 + x3}, D = 1")
	rng := rand.New(rand.NewSource(1))
	facts := core.RunXL(sys, core.XLConfig{M: 20, DeltaM: 4, Deg: 1, Rand: rng})
	fmt.Fprintln(w, "facts retained after Gauss-Jordan elimination:")
	for _, f := range facts {
		fmt.Fprintf(w, "  %s = 0\n", f)
	}
	fmt.Fprintln(w, "(paper: x1 + 1, x2, x3)")
	return nil
}

// fig2 prints the Karnaugh vs Tseitin comparison of Fig. 2/3.
func fig2(w io.Writer) error {
	p := anf.MustParsePoly("x1*x3 + x1 + x2 + x4 + 1")
	fmt.Fprintf(w, "Fig. 2 reproduction — CNF encodings of %s = 0\n", p)

	kOpts := conv.DefaultOptions()
	kf, kvm := conv.PolyToCNF(p, kOpts)
	fmt.Fprintf(w, "Karnaugh-map path (K=%d): %d clauses, %d auxiliary variables\n",
		kOpts.KarnaughK, len(kf.Clauses), kvm.AuxCount()+kvm.ConnectorCount())
	for _, c := range kf.Clauses {
		fmt.Fprintf(w, "  %s\n", c)
	}

	tOpts := conv.DefaultOptions()
	tOpts.KarnaughK = 0
	tf, tvm := conv.PolyToCNF(p, tOpts)
	fmt.Fprintf(w, "Tseitin path: %d clauses, %d auxiliary variables\n",
		len(tf.Clauses), tvm.AuxCount()+tvm.ConnectorCount())
	for _, c := range tf.Clauses {
		fmt.Fprintf(w, "  %s\n", c)
	}
	fmt.Fprintln(w, "(paper: 6 clauses vs 11 clauses with one auxiliary variable)")
	return nil
}
