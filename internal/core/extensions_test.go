package core

import (
	"math/rand"
	"testing"

	"repro/internal/anf"
	"repro/internal/conv"
	"repro/internal/sat"
)

// The §V extension: budgeted Buchberger as a loop phase. On the worked
// example the basis is small and yields value facts directly.
func TestGroebnerStepOnExample(t *testing.T) {
	sys := sysFrom(t, paperExample)
	rng := rand.New(rand.NewSource(1))
	facts := RunGroebnerStep(sys, DefaultGroebnerConfig(rng))
	if len(facts) == 0 {
		t.Fatal("Groebner phase learnt nothing on the worked example")
	}
	// Facts must be consequences of the system.
	for mask := uint32(0); mask < 64; mask++ {
		assign := func(v anf.Var) bool { return mask>>uint(v)&1 == 1 }
		if !sys.Eval(assign) {
			continue
		}
		for _, f := range facts {
			if f.Eval(assign) {
				t.Fatalf("Groebner fact %s violated by a solution", f)
			}
		}
	}
}

func TestGroebnerStepDetectsUnsat(t *testing.T) {
	sys := sysFrom(t, "x0*x1 + 1\nx0 + x1 + 1\n")
	rng := rand.New(rand.NewSource(1))
	facts := RunGroebnerStep(sys, DefaultGroebnerConfig(rng))
	foundOne := false
	for _, f := range facts {
		if f.IsOne() {
			foundOne = true
		}
	}
	if !foundOne {
		t.Fatalf("contradiction not surfaced: %v", facts)
	}
}

func TestProcessWithGroebnerPhase(t *testing.T) {
	sys := sysFrom(t, paperExample)
	cfg := DefaultConfig()
	cfg.EnableGroebner = true
	res := Process(sys, cfg)
	if res.Status == SolvedUNSAT {
		t.Fatal("wrong verdict")
	}
	if res.Groebner.Runs == 0 {
		t.Fatal("Groebner phase did not run")
	}
}

func TestProcessWithProbing(t *testing.T) {
	sys := sysFrom(t, paperExample)
	cfg := DefaultConfig()
	cfg.EnableProbing = true
	cfg.StopOnSolution = false
	res := Process(sys, cfg)
	if res.Status == SolvedUNSAT {
		t.Fatal("wrong verdict")
	}
	// Probing must not break the final state: x3 = 1 is forced.
	if b, ok := res.State.Value(3); !ok || !b {
		t.Fatalf("x3 not determined with probing enabled")
	}
}

func TestSATStepProbeHarvestsEquivalences(t *testing.T) {
	// x0 ≡ x1 through a chain the plain unit harvest cannot see without
	// search: (¬x0 ∨ x1)(x0 ∨ ¬x1) plus independent structure.
	sys := sysFrom(t, "x0*x1 + x0\nx0*x1 + x1\nx2 + x3 + 1\nx2*x3\n")
	step := RunSATStep(sys, SATStepConfig{
		ConflictBudget: 1, // keep search from solving it outright
		Profile:        sat.ProfileMiniSat,
		Conv:           conv.DefaultOptions(),
		Probe:          true,
	})
	// x0*x1 + x0 = 0 means x0(x1+1) = 0, i.e. x0 → x1; the second gives
	// x1 → x0. Probing should find x0 ≡ x1 (as an equivalence or via
	// units).
	gotEquiv := false
	for _, f := range step.Facts {
		if f.Equal(anf.MustParsePoly("x0 + x1")) {
			gotEquiv = true
		}
	}
	if !gotEquiv && step.Status != sat.Sat {
		t.Fatalf("probe equivalence x0+x1 not harvested: %v (status %v)", step.Facts, step.Status)
	}
}

func TestProcessGroebnerOnSimonLike(t *testing.T) {
	// A quadratic system with planted solution; the Groebner phase must
	// not corrupt anything.
	rng := rand.New(rand.NewSource(4))
	sol := []bool{true, false, true, true, false, true}
	sys := anf.NewSystem()
	sys.SetNumVars(6)
	for i := 0; i < 10; i++ {
		var monos []anf.Monomial
		for j := 0; j < 1+rng.Intn(3); j++ {
			var vs []anf.Var
			for d := 0; d < 1+rng.Intn(2); d++ {
				vs = append(vs, anf.Var(rng.Intn(6)))
			}
			monos = append(monos, anf.NewMonomial(vs...))
		}
		p := anf.FromMonomials(monos...)
		if p.Eval(func(v anf.Var) bool { return sol[v] }) {
			p = p.Add(anf.OnePoly())
		}
		sys.Add(p)
	}
	cfg := DefaultConfig()
	cfg.EnableGroebner = true
	cfg.EnableProbing = true
	res := Process(sys, cfg)
	if res.Status == SolvedUNSAT {
		t.Fatal("satisfiable system declared UNSAT")
	}
	if res.Status == SolvedSAT && !VerifySolution(sys, res.Solution) {
		t.Fatal("bad solution")
	}
}
