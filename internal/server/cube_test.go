package server

import (
	"context"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/cnf"
	"repro/internal/cube"
	"repro/internal/proof"
	"repro/internal/satgen"
)

func dimacsOf(t *testing.T, f *cnf.Formula) string {
	t.Helper()
	var sb strings.Builder
	if err := cnf.WriteDimacs(&sb, f); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// Solo role: cube mode splits and conquers in-process, and the proof
// verifies against the input.
func TestCubeModeSolo(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	f := satgen.Pigeonhole(5, 4).Formula
	resp, out := postJob(t, ts.URL, Request{
		Format: "dimacs", Input: dimacsOf(t, f),
		Mode: "cube", Workers: 2, MaxCubes: 8, Proof: true,
		TimeoutMS: 30000,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if out.Status != "UNSAT" {
		t.Fatalf("Status = %q, want UNSAT", out.Status)
	}
	if out.Cubes < 2 {
		t.Fatalf("Cubes = %d, want a real split", out.Cubes)
	}
	cr, err := proof.Check(f, strings.NewReader(out.Proof))
	if err != nil || !cr.Verified {
		t.Fatalf("solo cube proof rejected: %v (verified=%v)", err, cr != nil && cr.Verified)
	}
}

func TestCubeModeSoloSat(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	f := satgen.Pigeonhole(4, 4).Formula
	_, out := postJob(t, ts.URL, Request{
		Format: "dimacs", Input: dimacsOf(t, f),
		Mode: "cube", Workers: 2, MaxCubes: 8, TimeoutMS: 30000,
	})
	if out.Status != "SAT" {
		t.Fatalf("Status = %q, want SAT", out.Status)
	}
	if !f.Eval(func(v cnf.Var) bool { return out.Solution[v] }) {
		t.Fatal("returned model does not satisfy the formula")
	}
}

// Coordinator + worker nodes, fully in-process: the coordinator splits,
// two pulling nodes conquer, the stitched proof checks, and a
// resubmission is served from the coordinator's cache.
func TestCubeCoordinatorWithNodes(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 2, Role: RoleCoordinator})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for i := 0; i < 2; i++ {
		node := NewNode(NodeConfig{Coordinator: ts.URL, Poll: 5 * time.Millisecond})
		go node.Run(ctx)
	}

	f := satgen.Pigeonhole(5, 4).Formula
	req := Request{
		Format: "dimacs", Input: dimacsOf(t, f),
		Mode: "cube", MaxCubes: 8, Proof: true, TimeoutMS: 30000,
	}
	_, out := postJob(t, ts.URL, req)
	if out.Status != "UNSAT" {
		t.Fatalf("Status = %q, want UNSAT", out.Status)
	}
	cr, err := proof.Check(f, strings.NewReader(out.Proof))
	if err != nil || !cr.Verified {
		t.Fatalf("stitched distributed proof rejected: %v (verified=%v)", err, cr != nil && cr.Verified)
	}
	if got := srv.Metrics().CubesDispatched.Load(); got < 2 {
		t.Fatalf("CubesDispatched = %d, want the fan-out", got)
	}
	if got := srv.Metrics().CubeResults.Load(); got == 0 {
		t.Fatal("no cube results recorded")
	}

	// Identical resubmission: cache hit on the normalized-formula key.
	_, again := postJob(t, ts.URL, req)
	if !again.Cached {
		t.Fatal("resubmission not served from cache")
	}
	if again.Status != "UNSAT" || again.Proof != out.Proof {
		t.Fatal("cached response differs from the original")
	}
}

// A SAT instance short-circuits the distributed job: the first SAT cube
// settles it, and the model verifies.
func TestCubeCoordinatorSatShortCircuit(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, Role: RoleCoordinator})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	node := NewNode(NodeConfig{Coordinator: ts.URL, Poll: 5 * time.Millisecond})
	go node.Run(ctx)

	f := satgen.Pigeonhole(4, 4).Formula
	_, out := postJob(t, ts.URL, Request{
		Format: "dimacs", Input: dimacsOf(t, f),
		Mode: "cube", MaxCubes: 8, TimeoutMS: 30000,
	})
	if out.Status != "SAT" {
		t.Fatalf("Status = %q, want SAT", out.Status)
	}
	if !f.Eval(func(v cnf.Var) bool { return out.Solution[v] }) {
		t.Fatal("distributed model does not satisfy the formula")
	}
}

// A coordinator with no worker nodes cannot finish a cube job: its
// deadline cancels it, and the queue entries die with it.
func TestCubeCoordinatorTimesOutWithoutNodes(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 1, Role: RoleCoordinator})
	f := satgen.Pigeonhole(5, 4).Formula
	_, out := postJob(t, ts.URL, Request{
		Format: "dimacs", Input: dimacsOf(t, f),
		Mode: "cube", MaxCubes: 4, TimeoutMS: 300,
	})
	if out.Status != "CANCELED" {
		t.Fatalf("Status = %q, want CANCELED", out.Status)
	}
	// The parked job is gone; stale refs are dropped on the next pull.
	if task, ok := srv.cubes.next(); ok {
		t.Fatalf("stale task served after cancellation: %+v", task)
	}
	if got := srv.Metrics().CubeJobsActive.Load(); got != 0 {
		t.Fatalf("CubeJobsActive = %d after cancellation, want 0", got)
	}
}

// Solo-role servers do not expose the coordination endpoints.
func TestCubeEndpointsSoloRole(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, err := http.Get(ts.URL + "/cube/next")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/cube/next on solo role = %d, want 404", resp.StatusCode)
	}
}

// An UNKNOWN node result re-queues the cube for another pull.
func TestCubeUnknownResultRequeues(t *testing.T) {
	reg := newCubeRegistry(30 * time.Second)
	f := satgen.Pigeonhole(5, 4).Formula
	dj := &distJob{
		formText:  dimacsOf(t, f),
		withProof: false,
		done:      make(chan struct{}),
	}
	tree := splitForTest(t, f)
	dj.tree = tree
	dj.outcomes = make([]distOutcome, len(tree.Open))
	dj.remaining = len(tree.Open)
	reg.register(dj, "deadbeefdeadbeef")

	task, ok := reg.next()
	if !ok {
		t.Fatal("no task from a registered job")
	}
	if requeued, used := reg.record(CubeResult{JobID: task.JobID, Cube: task.Cube, Status: "UNKNOWN"}); !requeued || !used {
		t.Fatalf("UNKNOWN result: requeued=%v used=%v, want true/true", requeued, used)
	}
	// Drain the queue; the re-queued cube must come around again.
	seen := map[int]int{}
	for {
		tk, ok := reg.next()
		if !ok {
			break
		}
		seen[tk.Cube]++
	}
	if seen[task.Cube] == 0 {
		t.Fatalf("cube %d never re-dispatched after UNKNOWN", task.Cube)
	}
	// Duplicate and unknown-job results are ignored, not errors.
	if _, used := reg.record(CubeResult{JobID: "nope", Cube: 0, Status: "UNSAT"}); used {
		t.Fatal("result for unknown job was used")
	}
}

// A cube leased to a node that dies (never answers) is re-queued once
// its lease expires, and only then; settled cubes and fresh leases are
// left alone. Driven by an injected clock — no wall-clock sleeps.
func TestCubeLeaseReaperRedispatches(t *testing.T) {
	reg := newCubeRegistry(10 * time.Second)
	clock := time.Unix(1000, 0)
	reg.now = func() time.Time { return clock }

	f := satgen.Pigeonhole(5, 4).Formula
	tree := splitForTest(t, f)
	dj := &distJob{
		formText:  dimacsOf(t, f),
		tree:      tree,
		outcomes:  make([]distOutcome, len(tree.Open)),
		remaining: len(tree.Open),
		done:      make(chan struct{}),
	}
	reg.register(dj, "deadbeefdeadbeef")

	// Lease two cubes: one to the "dead" node, one we settle promptly.
	lost, ok := reg.next()
	if !ok {
		t.Fatal("no task from a registered job")
	}
	settled, ok := reg.next()
	if !ok {
		t.Fatal("no second task")
	}
	if _, used := reg.record(CubeResult{JobID: settled.JobID, Cube: settled.Cube, Status: "UNSAT", Failed: settled.Assumptions}); !used {
		t.Fatal("prompt UNSAT result not used")
	}

	// Inside the TTL nothing is reaped.
	clock = clock.Add(9 * time.Second)
	if n := reg.reap(); n != 0 {
		t.Fatalf("reap inside TTL = %d, want 0", n)
	}

	// Past the TTL only the lost cube comes back; the settled one stays
	// settled and the still-queued ones are untouched (never leased).
	clock = clock.Add(2 * time.Second)
	if n := reg.reap(); n != 1 {
		t.Fatalf("reap past TTL = %d, want exactly the lost cube", n)
	}
	if n := reg.reap(); n != 0 {
		t.Fatalf("second reap = %d, want 0 (lease cleared on requeue)", n)
	}

	// Drain the queue: the lost cube must be dispatchable again.
	seen := map[int]int{}
	for {
		tk, ok := reg.next()
		if !ok {
			break
		}
		seen[tk.Cube]++
	}
	if seen[lost.Cube] == 0 {
		t.Fatalf("cube %d never re-dispatched after its lease expired", lost.Cube)
	}
	if seen[settled.Cube] != 0 {
		t.Fatalf("settled cube %d re-dispatched", settled.Cube)
	}

	// The original node answering late is deduped, not an error.
	if _, used := reg.record(CubeResult{JobID: settled.JobID, Cube: settled.Cube, Status: "UNSAT", Failed: settled.Assumptions}); used {
		t.Fatal("duplicate settle of an already-settled cube was used")
	}

	// Re-leased and expired again: reaped again (leases re-stamp on dispatch).
	clock = clock.Add(11 * time.Second)
	if n := reg.reap(); n == 0 {
		t.Fatal("re-leased cubes never reaped after second expiry")
	}
}

func splitForTest(t *testing.T, f *cnf.Formula) *cube.Tree {
	t.Helper()
	opts := cube.DefaultOptions()
	opts.MaxCubes = 4
	tree := cube.Split(f, opts)
	if len(tree.Open) == 0 {
		t.Fatal("splitter produced no open cubes")
	}
	return tree
}
