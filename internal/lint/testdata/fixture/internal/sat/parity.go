// Lint fixture for the native parity-clause path: the hotpath shapes the
// real propagateParity/parityLits pair relies on (pooled materialization
// buffers, variable-indexed watcher appends, the nil-guarded proof-hook
// dispatch behind a //lint:ignore), and the arenaref confinement of the
// parity flag bits — header peeking to test flagParity belongs in
// arena.go, everywhere else goes through an accessor.
package sat

type parityWriter interface {
	addClause(lits []uint32)
}

type paritySolver struct {
	arena     *clauseArena
	parityBuf []uint32
	xwatches  [][]uint32
	proof     parityWriter
}

// materialize is hotpath-clean: the pooled buf[:0] append is the exact
// shape the real parityLits uses to build a reason clause with zero
// allocation.
//
//bosphorus:hotpath fixture: pooled parity-reason materialization
func (s *paritySolver) materialize(r ClauseRef) []uint32 {
	buf := s.parityBuf[:0]
	buf = append(buf, s.arena.lits(r)...)
	s.parityBuf = buf
	return buf
}

// badMaterialize builds the reason in a fresh slice per conflict.
//
//bosphorus:hotpath fixture: demonstrates an allocating materialization
func (s *paritySolver) badMaterialize(r ClauseRef) []uint32 {
	buf := make([]uint32, 0, s.arena.size(r)) // want hotpath "make allocates"
	buf = append(buf, s.arena.lits(r)...)
	return buf
}

// moveWatch is hotpath-clean: appending a watcher onto another variable's
// list is a sanctioned self-append (the list is its own backing store).
//
//bosphorus:hotpath fixture: parity watcher hand-off between variables
func (s *paritySolver) moveWatch(from, to int, w uint32) {
	s.xwatches[to] = append(s.xwatches[to], w)
	s.xwatches[from] = s.xwatches[from][:0]
}

// badProofDispatch calls through the writer interface with no ignore
// directive: interface dispatch cannot be proven allocation-free.
//
//bosphorus:hotpath fixture: demonstrates an unguarded proof dispatch
func (s *paritySolver) badProofDispatch(lits []uint32) {
	s.proof.addClause(lits) // want hotpath "function value or interface"
}

// guardedProofDispatch mirrors the real propagateParity call-site: the
// dispatch is nil-guarded off the benchmark path and suppressed with an
// explicit ignore, which the golden test asserts is honored.
//
//bosphorus:hotpath fixture: nil-guarded proof dispatch with an ignore
func (s *paritySolver) guardedProofDispatch(lits []uint32) {
	if s.proof != nil {
		//lint:ignore hotpath fixture: nil-guarded off the alloc-free path
		s.proof.addClause(lits)
	}
}

// parityFlagPeek reads the header to test the parity flag bit outside
// arena.go: both the conversion out of the ref and the bitwise test on
// the header word are arena-private.
func (s *paritySolver) parityFlagPeek(r ClauseRef) bool {
	w := s.arena.data[uint32(r)] // want arenaref "backing store accessed outside arena.go" arenaref "conversion out of ClauseRef"
	return w&16 != 0
}

// nextParity walks to the following record by offset arithmetic, which
// only arena.go may do.
func (s *paritySolver) nextParity(r ClauseRef) ClauseRef {
	return r + 1 // want arenaref "offset arithmetic outside arena.go"
}
