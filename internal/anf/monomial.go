// Package anf implements Algebraic Normal Form: systems of Boolean
// polynomials over GF(2). It is the reproduction of the role played by
// PolyBoRi in Bosphorus — the master problem representation that ANF
// propagation, XL and ElimLin all operate on.
//
// A monomial is a product of distinct variables (x² = x over GF(2)); a
// polynomial is an XOR (GF(2) sum) of distinct monomials, optionally
// including the constant 1. Polynomials are kept in a canonical sorted form
// (graded lexicographic order, highest first) so equality is structural and
// addition is a linear-time merge.
package anf

import (
	"fmt"
	"sort"
	"strings"
)

// Var identifies a Boolean variable. Variables print as x0, x1, ...
type Var uint32

func (v Var) String() string { return fmt.Sprintf("x%d", v) }

// Monomial is a product of distinct variables, stored sorted ascending.
// The empty monomial is the constant 1.
type Monomial struct {
	vars []Var
	// id caches this monomial's MonoTable ID plus one (0 = not interned).
	// It is ignored by all algebraic operations — Compare, Equal and friends
	// look only at vars — and is validated against the table's canonical
	// copy before use, so a stale id from another table is harmless.
	id uint32
}

// One is the constant-1 monomial (the empty product).
var One = Monomial{}

// NewMonomial builds a monomial from the given variables; duplicates are
// collapsed (x·x = x over GF(2)).
func NewMonomial(vars ...Var) Monomial {
	if len(vars) == 0 {
		return One
	}
	vs := append([]Var(nil), vars...)
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	out := vs[:1]
	for _, v := range vs[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return Monomial{vars: out}
}

// Deg returns the degree: the number of variables in the product.
func (m Monomial) Deg() int { return len(m.vars) }

// IsOne reports whether m is the constant 1.
func (m Monomial) IsOne() bool { return len(m.vars) == 0 }

// Vars returns the variables of the monomial in ascending order. The
// returned slice must not be modified.
func (m Monomial) Vars() []Var { return m.vars }

// Contains reports whether variable v divides the monomial. Monomials are
// short (degree is small in every workload here), so a linear scan with
// sorted-order early exit beats binary search's closure overhead.
func (m Monomial) Contains(v Var) bool {
	for _, x := range m.vars {
		if x >= v {
			return x == v
		}
	}
	return false
}

// Mul returns the product m·o (the union of variable sets).
func (m Monomial) Mul(o Monomial) Monomial {
	if m.IsOne() {
		return o
	}
	if o.IsOne() {
		return m
	}
	out := make([]Var, 0, len(m.vars)+len(o.vars))
	i, j := 0, 0
	for i < len(m.vars) && j < len(o.vars) {
		switch {
		case m.vars[i] < o.vars[j]:
			out = append(out, m.vars[i])
			i++
		case m.vars[i] > o.vars[j]:
			out = append(out, o.vars[j])
			j++
		default:
			out = append(out, m.vars[i])
			i++
			j++
		}
	}
	out = append(out, m.vars[i:]...)
	out = append(out, o.vars[j:]...)
	return Monomial{vars: out}
}

// MulVar returns the product m·v.
func (m Monomial) MulVar(v Var) Monomial {
	if m.Contains(v) {
		return m
	}
	i := sort.Search(len(m.vars), func(i int) bool { return m.vars[i] >= v })
	out := make([]Var, 0, len(m.vars)+1)
	out = append(out, m.vars[:i]...)
	out = append(out, v)
	out = append(out, m.vars[i:]...)
	return Monomial{vars: out}
}

// Without returns the monomial with variable v removed (m / v). If v does
// not divide m, m is returned unchanged.
func (m Monomial) Without(v Var) Monomial {
	i := sort.Search(len(m.vars), func(i int) bool { return m.vars[i] >= v })
	if i >= len(m.vars) || m.vars[i] != v {
		return m
	}
	out := make([]Var, 0, len(m.vars)-1)
	out = append(out, m.vars[:i]...)
	out = append(out, m.vars[i+1:]...)
	return Monomial{vars: out}
}

// Divides reports whether every variable of m appears in o.
func (m Monomial) Divides(o Monomial) bool {
	i, j := 0, 0
	for i < len(m.vars) && j < len(o.vars) {
		switch {
		case m.vars[i] == o.vars[j]:
			i++
			j++
		case m.vars[i] > o.vars[j]:
			j++
		default:
			return false
		}
	}
	return i == len(m.vars)
}

// Compare orders monomials graded-lexicographically: first by degree, then
// lexicographically on the sorted variable lists with the PolyBoRi
// convention that lower-indexed variables are "larger" (x0 > x1 > ...), so
// x1 sorts before x3 in a polynomial's display. Returns -1, 0 or +1.
func (m Monomial) Compare(o Monomial) int {
	if d := m.Deg() - o.Deg(); d != 0 {
		if d < 0 {
			return -1
		}
		return 1
	}
	for i := range m.vars {
		if m.vars[i] != o.vars[i] {
			if m.vars[i] < o.vars[i] {
				return 1
			}
			return -1
		}
	}
	return 0
}

// Equal reports structural equality.
func (m Monomial) Equal(o Monomial) bool { return m.Compare(o) == 0 }

// Key returns a compact string key identifying the monomial, suitable for
// map indexing (e.g. the monomial↔CNF-variable map in the converter).
func (m Monomial) Key() string {
	return string(m.appendKey(make([]byte, 0, len(m.vars)*4)))
}

// appendKey appends the monomial's compact key bytes to b. MonoTable uses
// it with a scratch buffer so map probes allocate nothing.
func (m Monomial) appendKey(b []byte) []byte {
	for _, v := range m.vars {
		b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return b
}

// Eval evaluates the monomial under the assignment: a product is 1 iff all
// its variables are 1.
func (m Monomial) Eval(assign func(Var) bool) bool {
	for _, v := range m.vars {
		if !assign(v) {
			return false
		}
	}
	return true
}

// String renders the monomial like "x1*x2*x7", or "1" for the constant.
func (m Monomial) String() string {
	if m.IsOne() {
		return "1"
	}
	parts := make([]string, len(m.vars))
	for i, v := range m.vars {
		parts[i] = v.String()
	}
	return strings.Join(parts, "*")
}
