package bench

import (
	"testing"

	"repro/internal/cnf"
	"repro/internal/sat"
)

// TestParityJobsVerdicts runs every family member once per arm and checks
// the expected verdict — the same validity gate MeasureParity applies
// before publishing a timing. It keeps the frozen seeds honest: a
// generator change that flips a member's verdict fails here rather than
// silently invalidating BENCH_pr10.json's successors.
func TestParityJobsVerdicts(t *testing.T) {
	for _, job := range ParityJobs() {
		job := job
		t.Run(job.Name, func(t *testing.T) {
			f := job.Build()
			if len(f.Xors) == 0 {
				t.Fatalf("family member carries no native XOR clauses")
			}
			for _, arm := range []string{"native", "cut"} {
				opts := sat.DefaultOptions(sat.ProfileMiniSat)
				if arm == "cut" {
					opts.NativeXor = false
					opts.EnableGauss = false
				}
				s := sat.New(opts)
				st := sat.Unsat
				if s.AddFormula(f) {
					st = s.Solve()
				}
				if st != job.Want {
					t.Errorf("%s arm: status = %v, want %v", arm, st, job.Want)
				}
			}
		})
	}
}

// TestMeasureParityQuick exercises the measurement path end to end on a
// miniature cascade so CI asserts the harness (validity gate, medians,
// speedup) without paying full-family timings.
func TestMeasureParityQuick(t *testing.T) {
	jobs := []ParityJob{{
		Name: "cascade-v200-w4-unsat",
		Want: sat.Unsat,
		Build: func() *cnf.Formula {
			return ParityCascade(200, 4, true, 5)
		},
	}}
	got := MeasureParity(jobs, sat.ProfileMiniSat, 1)
	m, ok := got["cascade-v200-w4-unsat"]
	if !ok {
		t.Fatalf("measurement missing: %v", got)
	}
	if !m.Valid {
		t.Fatalf("measurement invalid: %+v", m)
	}
	if m.NativeNsPerOp <= 0 || m.CutNsPerOp <= 0 {
		t.Fatalf("unmeasured arm: %+v", m)
	}
}
