// Package cube is a lint fixture: its import path ends in internal/cube,
// so the determinism analyzer treats it as a target package — the
// single-worker cube solve must be reproducible from the seed alone, so
// the same no-global-rand / no-clock / no-map-order rules apply here as
// in internal/core (minus the NewRNG routing, which is core-only).
package cube

import (
	"math/rand"
	"sort"
	"time"
)

// badWorkerSeed draws the per-worker seed from the process-global source:
// two identical runs would split the cube tree differently.
func badWorkerSeed() int64 {
	return rand.Int63() // want determinism "global math/rand source"
}

// seededSplitter constructs an explicitly seeded generator; outside
// internal/core that is the sanctioned pattern.
func seededSplitter(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// badTieBreak breaks splitter-score ties on the wall clock.
func badTieBreak() int64 {
	return time.Now().UnixNano() // want determinism "time.Now"
}

// deadlineOnly carries a reasoned suppression: deadlines bound the solve
// but never decide the cube order.
func deadlineOnly(d time.Duration) time.Time {
	//lint:ignore determinism deadline only: bounds the solve, never ordering
	return time.Now().Add(d)
}

// badCubeOrder emits cubes in map-iteration order: the conquer schedule —
// and with it the stitched proof — would differ between identical runs.
func badCubeOrder(open map[int][]int, emit func([]int)) {
	for _, cube := range open { // want determinism "map iteration order"
		emit(cube)
	}
}

// sortedCubeOrder restores a deterministic schedule by sorting the keys.
func sortedCubeOrder(open map[int][]int, emit func([]int)) {
	keys := make([]int, 0, len(open))
	for k := range open {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		emit(open[k])
	}
}
