// Package walksat is a lint fixture: its import path ends in
// internal/walksat, so the determinism analyzer treats it as a target —
// local search is randomized by construction, which is exactly why every
// draw must come from one generator derived from Options.Seed via
// core.NewRNG: same seed, same flip sequence, same result.
package walksat

import (
	"math/rand"
	"time"
)

// badNoise draws the noise decision from the process-global source.
func badNoise() bool {
	return rand.Float64() < 0.5 // want determinism "global math/rand source"
}

// badRestartRNG builds a private generator instead of going through
// core.NewRNG.
func badRestartRNG(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed)) // want determinism "core.NewRNG" determinism "core.NewRNG"
}

// badFlipDeadline polls the wall clock per flip: the flip count at
// cutoff — and with it the returned model — would differ across runs.
func badFlipDeadline(start time.Time, budget time.Duration) bool {
	return time.Now().Sub(start) > budget // want determinism "time.Now"
}

// deadlineOnly carries a reasoned suppression: context deadlines bound
// the search but the flip sequence itself stays seed-determined.
func deadlineOnly(d time.Duration) time.Time {
	//lint:ignore determinism deadline only: bounds the search, never the flip sequence
	return time.Now().Add(d)
}
