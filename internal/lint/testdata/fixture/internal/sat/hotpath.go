// Lint fixture for the hotpath analyzer: //bosphorus:hotpath functions
// must be statically allocation-free. The sanctioned shapes — amortized
// self-appends and pooled buf[:0] resets — stay clean; everything else
// that can reach the heap is flagged, including calls into functions
// without an alloc-free summary.
package sat

type flipState struct {
	trail   []uint32
	scratch []uint32
	counts  map[uint32]int
}

// enqueue is hotpath-clean: the self-append amortizes into persistent
// backing and everything else is word arithmetic.
//
//bosphorus:hotpath fixture: propagation inner loop
func (f *flipState) enqueue(v uint32) {
	f.trail = append(f.trail, v)
}

// reset is hotpath-clean: pooled append onto a truncated scratch buffer.
//
//bosphorus:hotpath fixture: pooled scratch reuse
func (f *flipState) reset(vs []uint32) {
	f.scratch = append(f.scratch[:0], vs...)
}

// badMake allocates a fresh slice per call.
//
//bosphorus:hotpath fixture: demonstrates a make violation
func (f *flipState) badMake(n int) []uint32 {
	buf := make([]uint32, n) // want hotpath "make allocates"
	return buf
}

// badGrowingAppend appends into a different slot than its source.
//
//bosphorus:hotpath fixture: demonstrates a growing append
func (f *flipState) badGrowingAppend(dst, src []uint32) []uint32 {
	dst = append(src, 1) // want hotpath "growing append allocates"
	return dst
}

// badMapWrite rehashes on the hot path.
//
//bosphorus:hotpath fixture: demonstrates a map write
func (f *flipState) badMapWrite(v uint32) {
	f.counts[v]++ // want hotpath "map write"
}

// badClosure captures its environment, forcing a heap closure.
//
//bosphorus:hotpath fixture: demonstrates a capturing closure
func (f *flipState) badClosure(v uint32) func() uint32 {
	return func() uint32 { return v } // want hotpath "capturing closure"
}

// helperAllocates is NOT annotated and allocates.
func helperAllocates(n int) []uint32 {
	return make([]uint32, n)
}

// badCallOut calls into a function that may allocate.
//
//bosphorus:hotpath fixture: demonstrates an allocating callee
func (f *flipState) badCallOut() []uint32 {
	return helperAllocates(4) // want hotpath "calls helperAllocates, which may allocate"
}

// goodCallHot calls another hotpath function: trusted, its own body is
// checked where it is declared.
//
//bosphorus:hotpath fixture: hotpath-to-hotpath calls are free
func (f *flipState) goodCallHot(v uint32) {
	f.enqueue(v)
}

// badFuncValue calls through a function value, which cannot be proven
// allocation-free.
//
//bosphorus:hotpath fixture: demonstrates an indirect call
func (f *flipState) badFuncValue(fn func() int) int {
	return fn() // want hotpath "function value or interface"
}
