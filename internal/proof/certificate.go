package proof

import (
	"bytes"

	"repro/internal/cnf"
)

// Certificate pairs the CNF formula handed to the SAT step that derived
// UNSAT with the DRAT proof its solver logged. Check re-verifies the pair
// with the independent checker; the engine attaches one to Result when
// proof capture is on and the verdict is UNSAT.
type Certificate struct {
	// Formula is the exact CNF the proof is against (the SAT step's
	// translation of the simplified ANF at that iteration).
	Formula *cnf.Formula
	// Proof is the captured DRAT stream.
	Proof []byte
	// Binary marks the compact binary form (text otherwise).
	Binary bool
	// Iteration is the fact-learning iteration that produced it.
	Iteration int
}

// Check runs the streaming checker over the certificate.
func (c *Certificate) Check() (*CheckResult, error) {
	if c.Binary {
		return CheckBinary(c.Formula, bytes.NewReader(c.Proof))
	}
	return CheckText(c.Formula, bytes.NewReader(c.Proof))
}
