package core

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/anf"
	"repro/internal/cnf"
	"repro/internal/conv"
	"repro/internal/proof"
	"repro/internal/sat"
)

// Config drives the Bosphorus workflow (§III-A), defaults matching §IV.
type Config struct {
	// XL parameters (M is shared by ElimLin subsampling).
	M      int
	DeltaM int
	XLDeg  int

	// Conv holds the ANF↔CNF conversion parameters (K, L, L′).
	Conv conv.Options

	// Conflict budget schedule: start at ConflictBudget, grow by
	// ConflictBudgetStep up to ConflictBudgetMax whenever the SAT step
	// produces no new facts.
	ConflictBudget     int64
	ConflictBudgetStep int64
	ConflictBudgetMax  int64

	// Profile selects the internal SAT solver.
	Profile sat.Profile
	// Preprocess enables simp preprocessing inside the SAT step.
	Preprocess bool
	// HarvestMonomials is the §III-C ablation: also read facts off
	// monomial auxiliary variables.
	HarvestMonomials bool

	// MaxIterations caps the fact-learning loop (0 = until fixed point).
	MaxIterations int
	// TimeBudget caps wall-clock time for the whole loop (0 = none); the
	// paper gives Bosphorus at most 1000 s of the 5000 s total.
	TimeBudget time.Duration

	// Context, when non-nil, cancels the run: Process polls it at every
	// technique boundary and threads it into each technique, the SAT step,
	// and user-supplied Techniques, so cancellation (a job deadline, a
	// client disconnect) stops the whole stack promptly rather than waiting
	// for budgets to run out. The facts learnt before cancellation are kept
	// and the Result reports Interrupted. A nil Context never cancels.
	Context context.Context

	// StopOnSolution exits the loop when the SAT step finds a satisfying
	// assignment (the paper's default behaviour in the experiments).
	StopOnSolution bool

	// DisableXL / DisableElimLin / DisableSAT switch off individual
	// techniques (ablation support).
	DisableXL      bool
	DisableElimLin bool
	DisableSAT     bool

	// EnableGroebner adds a budgeted Buchberger phase to the loop — the
	// §V extension of running Gröbner-basis computation iteratively
	// alongside the other techniques.
	EnableGroebner bool
	// ExtraTechniques are user-supplied fact learners (§V's plug point),
	// run after ElimLin each iteration.
	ExtraTechniques []Technique
	// Route puts the tractable-fragment router in front of every SAT
	// step: after ANF propagation/ElimLin simplify the system, the
	// converted CNF residue is re-classified and — when it is pure 2SAT,
	// Horn, anti-Horn, or XOR — decided by the polynomial solvers in
	// internal/route instead of CDCL. Verdict provenance is preserved
	// (routed UNSAT certificates check, routed SAT models verify). Off by
	// default: routing can change which facts a non-terminal SAT step
	// harvests, so seed-equivalence golden runs keep it disabled.
	Route bool
	// NoNativeXor turns off the SAT solver's native parity-clause kind and
	// falls back to the pre-PR-10 CNF cut / Gauss-only routing — the
	// differential baseline (`bosphorus -native-xor=false`). Native parity
	// is on by default.
	NoNativeXor bool
	// EnableProbing adds failed-literal probing (a lookahead-style
	// component, also named in §V) to the SAT step.
	EnableProbing bool
	// ProbeMax bounds probing per SAT step (0 = all variables).
	ProbeMax int

	// Workers sets the fan-out of the fact-learning pipeline. 0 (the
	// default) keeps the paper's strictly sequential loop: each technique
	// sees the facts of the previous one within the same iteration.
	// Workers ≥ 1 switches to the snapshot pipeline: every enabled
	// technique of an iteration runs against the iteration-start system
	// with its own deterministically derived RNG, and the fact batches are
	// merged in fixed technique order before a single propagation — so the
	// Result is bit-identical for every Workers value ≥ 1, and with
	// Workers > 1 the techniques (and the GF(2) elimination kernel) run
	// concurrently across that many goroutines.
	Workers int

	// Seed drives all randomized choices; fixed seed = reproducible run.
	Seed int64

	// Provenance records every learnt fact into a proof.Ledger with the
	// technique, iteration, and — for the propagation and linear-algebra
	// paths — an exact algebraic witness, available as Result.Provenance
	// and independently checkable with proof.VerifyFacts. The learnt facts
	// are identical with tracking on or off (the tracked elimination kernel
	// produces the same unique RREF); only the run time differs.
	Provenance bool
	// EmitProof attaches a DRAT writer to every SAT step; when a step
	// refutes its formula the proof and the exact CNF it refutes are kept
	// as Result.Certificate, checkable with proof.Check (or cmd/proofcheck).
	EmitProof bool
	// ProofBinary selects the compact binary proof encoding.
	ProofBinary bool

	// Log, when non-nil, receives progress lines.
	Log io.Writer
}

// DefaultConfig returns the paper's §IV configuration with M scaled for
// single-machine runs.
func DefaultConfig() Config {
	return Config{
		M:                  20,
		DeltaM:             4,
		XLDeg:              1,
		Conv:               conv.DefaultOptions(),
		ConflictBudget:     10000,
		ConflictBudgetStep: 10000,
		ConflictBudgetMax:  100000,
		Profile:            sat.ProfileCMS,
		MaxIterations:      16,
		StopOnSolution:     true,
		Seed:               1,
	}
}

// Status is the overall verdict of a Process run.
type Status int

const (
	// Processed means the loop reached a fixed point (or budget) without a
	// verdict; the simplified ANF/CNF carry the learnt facts.
	Processed Status = iota
	// SolvedSAT means a satisfying assignment was found.
	SolvedSAT
	// SolvedUNSAT means the contradiction 1 = 0 was derived.
	SolvedUNSAT
)

func (s Status) String() string {
	switch s {
	case SolvedSAT:
		return "SAT"
	case SolvedUNSAT:
		return "UNSAT"
	default:
		return "PROCESSED"
	}
}

// PhaseStats counts the facts contributed by one technique.
type PhaseStats struct {
	Runs     int
	NewFacts int
}

// Result is the outcome of Process.
type Result struct {
	Status Status
	// Solution is a satisfying assignment over the original ANF variables
	// when Status is SolvedSAT.
	Solution []bool
	// System is the processed master ANF (learnt facts applied).
	System *anf.System
	// State carries the final variable values/equivalences.
	State *VarState
	// Iterations of the XL–ElimLin–SAT loop executed.
	Iterations int
	// Stats per phase, plus propagation-assignment counts. Extra
	// aggregates all user-supplied techniques.
	XL, ElimLin, SAT, Groebner, Extra PhaseStats
	PropagationFacts                  int
	Elapsed                           time.Duration
	// Interrupted is true when the run was cut short by Config.Context
	// cancellation; the facts learnt before the cut are still applied.
	Interrupted bool
	// Provenance is the fact ledger when Config.Provenance was set: inputs
	// first, then one record per learnt fact/rewrite/binding.
	Provenance *proof.Ledger
	// Certificate is the DRAT proof of the refuting SAT step when
	// Config.EmitProof was set and that step proved UNSAT.
	Certificate *proof.Certificate
	// RoutedVia names the tractable fragment that decided the final SAT
	// step when Config.Route was on and the router matched ("2sat",
	// "horn", "antihorn", "xor"); empty when CDCL did the solving.
	RoutedVia string
	// RouteNs is the total time the router spent across all SAT steps
	// (classification plus fragment solving), 0 when routing was off.
	RouteNs int64
}

// Process runs the Bosphorus fact-learning loop on a copy of the input
// system until fixed point, verdict, or budget exhaustion.
func Process(input *anf.System, cfg Config) *Result {
	//lint:ignore determinism timing only: start feeds Result.Elapsed and the TimeBudget deadline, never fact ordering
	start := time.Now()
	logf := func(format string, args ...interface{}) {
		if cfg.Log != nil {
			fmt.Fprintf(cfg.Log, format+"\n", args...)
		}
	}
	if cfg.M <= 0 {
		cfg.M = 20
	}
	if cfg.ConflictBudget <= 0 {
		cfg.ConflictBudget = 10000
	}
	if cfg.Conv.CutLen == 0 {
		cfg.Conv = conv.DefaultOptions()
	}
	rng := NewRNG(cfg.Seed)
	ctx := cfg.Context
	if ctx == nil {
		ctx = context.Background()
	}

	sys := input.Clone()
	prop := NewPropagator(sys)
	res := &Result{System: sys, State: prop.State}
	if cfg.Provenance {
		prop.prov = newProvTracker(sys)
		res.Provenance = prop.prov.ledger
	}
	finish := func(st Status) *Result {
		res.Status = st
		res.Interrupted = ctx.Err() != nil
		res.Elapsed = time.Since(start)
		return res
	}

	// Initial ANF propagation on the input (§III-A).
	n, ok := prop.Propagate()
	res.PropagationFacts += n
	if !ok {
		return finish(SolvedUNSAT)
	}

	budget := cfg.ConflictBudget
	maxIters := cfg.MaxIterations
	if maxIters <= 0 {
		maxIters = 1 << 30
	}
	deadline := time.Time{}
	if cfg.TimeBudget > 0 {
		deadline = start.Add(cfg.TimeBudget)
	}
	expired := func() bool {
		if ctx.Err() != nil {
			return true
		}
		//lint:ignore determinism TimeBudget is an explicitly opted-in wall-clock cutoff; reproducible runs use ConflictBudget/MaxIterations instead
		return !deadline.IsZero() && time.Now().After(deadline)
	}

	for iter := 0; iter < maxIters; iter++ {
		res.Iterations = iter + 1
		newThisIter := 0

		if cfg.Workers >= 1 {
			// Snapshot pipeline: all fact learners of this iteration see the
			// iteration-start system and run (possibly concurrently) with
			// deterministically derived RNGs; their batches merge in fixed
			// technique order, so the outcome is Workers-independent.
			if !expired() {
				added, ok := runSnapshotPhase(ctx, prop, cfg, res, iter, logf)
				newThisIter += added
				if !ok {
					return finish(SolvedUNSAT)
				}
			}
		} else {
			// merge folds one technique's batch into the master system —
			// through the provenance tracker when it is on (witness-carrying
			// ProvFacts), through plain AddFacts otherwise. Both paths learn
			// identical facts.
			merge := func(stats *PhaseStats, tech, name string, facts []anf.Poly, pfacts []ProvFact) bool {
				var added int
				var ok bool
				n := len(facts)
				if prop.prov != nil {
					added, ok = prop.AddProvFacts(pfacts, tech, iter, nil)
					n = len(pfacts)
				} else {
					added, ok = prop.AddFacts(facts)
				}
				stats.Runs++
				stats.NewFacts += added
				newThisIter += added
				logf("iter %d: %s learnt %d facts (%d new)", iter, name, n, added)
				return ok
			}

			if !cfg.DisableXL && !expired() {
				xcfg := XLConfig{M: cfg.M, DeltaM: cfg.DeltaM, Deg: cfg.XLDeg, Context: ctx, Rand: rng}
				var facts []anf.Poly
				var pfacts []ProvFact
				if prop.prov != nil {
					pfacts = RunXLProv(sys, xcfg)
				} else {
					facts = RunXL(sys, xcfg)
				}
				if !merge(&res.XL, proof.TechXL, "XL", facts, pfacts) {
					return finish(SolvedUNSAT)
				}
			}

			if !cfg.DisableElimLin && !expired() {
				ecfg := ElimLinConfig{M: cfg.M, Context: ctx, Rand: rng}
				var facts []anf.Poly
				var pfacts []ProvFact
				if prop.prov != nil {
					pfacts = RunElimLinProv(sys, ecfg)
				} else {
					facts = RunElimLin(sys, ecfg)
				}
				if !merge(&res.ElimLin, proof.TechElimLin, "ElimLin", facts, pfacts) {
					return finish(SolvedUNSAT)
				}
			}

			for _, tech := range cfg.ExtraTechniques {
				if expired() {
					break
				}
				facts := tech.Learn(ctx, sys, rng)
				if !merge(&res.Extra, proof.TechExtra, tech.Name(), facts, wrapPlain(facts, tech.Name())) {
					return finish(SolvedUNSAT)
				}
			}

			if cfg.EnableGroebner && !expired() {
				facts := RunGroebnerStep(sys, DefaultGroebnerConfig(rng))
				if !merge(&res.Groebner, proof.TechGroebner, "Groebner", facts, wrapPlain(facts, "buchberger reduction")) {
					return finish(SolvedUNSAT)
				}
			}
		}

		if !cfg.DisableSAT && !expired() {
			out := outputSystem(sys, prop.State)
			step := RunSATStep(out, SATStepConfig{
				ConflictBudget:   budget,
				Profile:          cfg.Profile,
				Conv:             cfg.Conv,
				Preprocess:       cfg.Preprocess,
				HarvestMonomials: cfg.HarvestMonomials,
				Probe:            cfg.EnableProbing,
				ProbeMax:         cfg.ProbeMax,
				Route:            cfg.Route,
				NoNativeXor:      cfg.NoNativeXor,
				Seed:             cfg.Seed + int64(iter) + 1,
				Context:          ctx,
				CaptureProof:     cfg.EmitProof,
				ProofBinary:      cfg.ProofBinary,
			})
			res.SAT.Runs++
			res.RouteNs += step.RouteNs
			if step.RoutedVia != "" {
				res.RoutedVia = step.RoutedVia
			}
			if step.Certificate != nil {
				step.Certificate.Iteration = iter
				res.Certificate = step.Certificate
			}
			if step.Status == sat.Sat && cfg.StopOnSolution {
				res.Solution = completeSolution(input, prop.State, step.Model)
				return finish(SolvedSAT)
			}
			var added int
			var ok bool
			if prop.prov != nil {
				pfacts := make([]ProvFact, len(step.Facts))
				for i, f := range step.Facts {
					note := "sat harvest"
					if i < len(step.Notes) {
						note = step.Notes[i]
					}
					pfacts[i] = ProvFact{Poly: f, Note: note}
				}
				added, ok = prop.AddProvFacts(pfacts, proof.TechSAT, iter, nil)
			} else {
				added, ok = prop.AddFacts(step.Facts)
			}
			res.SAT.NewFacts += added
			newThisIter += added
			logf("iter %d: SAT step (%v, %d conflicts) learnt %d facts (%d new)",
				iter, step.Status, step.Conflicts, len(step.Facts), added)
			if !ok {
				return finish(SolvedUNSAT)
			}
			if added == 0 && budget < cfg.ConflictBudgetMax {
				budget += cfg.ConflictBudgetStep
				if budget > cfg.ConflictBudgetMax {
					budget = cfg.ConflictBudgetMax
				}
			}
		}

		if sys.HasContradiction() {
			return finish(SolvedUNSAT)
		}
		if newThisIter == 0 || expired() {
			break
		}
	}
	return finish(Processed)
}

// Summary renders a one-paragraph human-readable report of the run.
func (r *Result) Summary() string {
	return fmt.Sprintf(
		"%v after %d iteration(s) in %v — facts: xl=%d elimlin=%d sat=%d groebner=%d extra=%d propagation=%d; %s",
		r.Status, r.Iterations, r.Elapsed.Round(time.Millisecond),
		r.XL.NewFacts, r.ElimLin.NewFacts, r.SAT.NewFacts,
		r.Groebner.NewFacts, r.Extra.NewFacts, r.PropagationFacts, r.State)
}

// outputSystem builds the ANF that represents the current knowledge: the
// simplified master equations plus the determined values and equivalences
// as polynomials (the paper's §III-C treatment of determined variables and
// equivalences in the conversion).
func outputSystem(sys *anf.System, st *VarState) *anf.System {
	out := anf.NewSystem()
	out.SetNumVars(sys.NumVars())
	for _, p := range sys.Polys() {
		out.Add(p)
	}
	for _, f := range st.FactPolys() {
		out.Add(f)
	}
	return out
}

// OutputANF returns the processed ANF including value/equivalence facts —
// what the tool writes as its ANF output.
func (r *Result) OutputANF() *anf.System {
	return outputSystem(r.System, r.State)
}

// OutputCNF converts the processed ANF to CNF — what the tool writes as
// its CNF output.
func (r *Result) OutputCNF(opts conv.Options) (*cnf.Formula, *conv.VarMap) {
	return conv.ANFToCNF(r.OutputANF(), opts)
}

// completeSolution lifts a CNF model to the original ANF variables, using
// determined values and equivalences for variables the CNF no longer
// mentions.
func completeSolution(input *anf.System, st *VarState, model []bool) []bool {
	n := input.NumVars()
	if st.NumVars() > n {
		n = st.NumVars()
	}
	out := make([]bool, n)
	for v := 0; v < n; v++ {
		if b, ok := st.Value(anf.Var(v)); ok {
			out[v] = b
			continue
		}
		r := st.Find(anf.Var(v))
		if int(r.V) < len(model) {
			out[v] = model[r.V] != r.Neg
		}
	}
	return out
}

// VerifySolution checks a solution against a system.
func VerifySolution(sys *anf.System, sol []bool) bool {
	return sys.Eval(func(v anf.Var) bool {
		if int(v) < len(sol) {
			return sol[v]
		}
		return false
	})
}
