package core

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/ciphers/simon"
)

// A near-zero time budget must stop the loop quickly with a Processed
// status rather than running to the fixed point.
func TestTimeBudgetExpiry(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	inst := simon.GenerateInstance(simon.Params{NPlaintexts: 8, Rounds: 8}, rng)
	cfg := DefaultConfig()
	cfg.TimeBudget = time.Millisecond
	cfg.StopOnSolution = true
	start := time.Now()
	res := Process(inst.Sys, cfg)
	if time.Since(start) > 30*time.Second {
		t.Fatal("time budget grossly overrun")
	}
	// With ~1ms the loop cannot finish its phases; whatever status comes
	// back, the result must be internally consistent.
	if res.Status == SolvedSAT && !VerifySolution(inst.Sys, res.Solution) {
		t.Fatal("invalid solution under time pressure")
	}
}

func TestMaxIterationsCap(t *testing.T) {
	sys := sysFrom(t, "x0*x1 + x2\nx1*x2 + x0\n")
	cfg := DefaultConfig()
	cfg.MaxIterations = 2
	cfg.StopOnSolution = false
	cfg.DisableSAT = true // keep it from solving outright
	res := Process(sys, cfg)
	if res.Iterations > 2 {
		t.Fatalf("iterations = %d, cap was 2", res.Iterations)
	}
}

func TestConflictBudgetEscalation(t *testing.T) {
	// With StopOnSolution off and a tiny starting budget, the budget must
	// escalate (visible through the log).
	rng := rand.New(rand.NewSource(3))
	inst := simon.GenerateInstance(simon.Params{NPlaintexts: 2, Rounds: 5}, rng)
	var log bytes.Buffer
	cfg := DefaultConfig()
	cfg.StopOnSolution = false
	cfg.ConflictBudget = 1
	cfg.ConflictBudgetStep = 1
	cfg.ConflictBudgetMax = 3
	cfg.MaxIterations = 6
	cfg.Log = &log
	res := Process(inst.Sys, cfg)
	if res.SAT.Runs == 0 {
		t.Fatal("SAT step never ran")
	}
	if log.Len() == 0 {
		t.Fatal("no log output")
	}
}

func TestOutputANFCarriesEquivalences(t *testing.T) {
	sys := sysFrom(t, "x0 + x1\nx2 + 1\nx0*x3 + x3\n")
	cfg := DefaultConfig()
	cfg.StopOnSolution = false
	cfg.MaxIterations = 1
	res := Process(sys, cfg)
	out := res.OutputANF()
	// The output must contain the equivalence x0 ⊕ x1 and the unit x2 ⊕ 1
	// as fact polynomials.
	foundEq, foundUnit := false, false
	for _, p := range out.Polys() {
		switch p.String() {
		case "x0 + x1":
			foundEq = true
		case "x2 + 1":
			foundUnit = true
		}
	}
	if !foundEq || !foundUnit {
		t.Fatalf("output ANF missing facts: %v", out.Polys())
	}
}

func TestResultSummary(t *testing.T) {
	sys := sysFrom(t, paperExample)
	res := Process(sys, DefaultConfig())
	s := res.Summary()
	for _, want := range []string{"iteration", "xl=", "propagation="} {
		if !strings.Contains(s, want) {
			t.Fatalf("summary missing %q: %s", want, s)
		}
	}
}
