package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
)

// ArenaGCAnalyzer is the flow-sensitive companion to arenaref: where
// arenaref keeps the ClauseRef encoding opaque, arenagc tracks ref and
// view *lifetimes*. The clause arena's contract (internal/sat/arena.go):
//
//   - a lits() view aliases the backing array, so ANY arena allocation
//     (append may move the backing) or GC invalidates it;
//   - a compacting GC remaps the solver's rooted refs (watches, reasons,
//     clause lists) but cannot see refs sitting in locals, so a local
//     ClauseRef held across a call that may GC is a use-after-relocate.
//
// The analyzer runs a forward abstract interpretation over each function's
// CFG: locals holding refs or views are tracked, every call is checked
// against the program-wide call-effect summaries (may-allocate-clauses /
// may-GC, transitively), and a tainted local that is subsequently read is
// a finding — unless it was re-read through the arena (reassigned from
// lits() or a forwarding lookup), which freshens it. arena.go and
// arena_test.go are exempt by basename, matching arenaref: the arena may
// reason about its own offsets.
var ArenaGCAnalyzer = &Analyzer{
	Name: "arenagc",
	Doc:  "ClauseRefs and lits() views must not be held live across calls that may move the clause arena",
	Run:  runArenaGC,
}

func runArenaGC(pass *Pass) {
	if pass.Prog == nil {
		return
	}
	for _, file := range pass.Pkg.Files {
		base := filepath.Base(pass.Pkg.Fset.Position(file.Pos()).Filename)
		if base == "arena.go" || base == "arena_test.go" {
			continue
		}
		eachFuncBody(file, func(fd *ast.FuncDecl, body *ast.BlockStmt) {
			runArenaGCFunc(pass, body)
		})
	}
}

func runArenaGCFunc(pass *Pass, body *ast.BlockStmt) {
	// Cheap pre-filter: skip functions that never mention a ClauseRef or
	// arena view.
	touches := false
	ast.Inspect(body, func(n ast.Node) bool {
		if touches {
			return false
		}
		if e, ok := n.(ast.Expr); ok {
			if t := typeOf(pass.Pkg, e); t != nil && isClauseRefType(t) {
				touches = true
			}
		}
		return !touches
	})
	if !touches {
		return
	}
	cfg := buildCFG(body)
	g := &arenaGCInterp{pass: pass}
	in := forwardFixpoint(cfg, func(st flowState, s ast.Stmt) {
		g.transfer(st, s, nil)
	})
	// Reporting pass: replay each block from its fixpoint entry state with
	// a live reporter; dedup by position so the replay can't double-report.
	seen := map[token.Pos]bool{}
	for _, b := range cfg.blocks {
		st := in[b]
		if st == nil {
			continue // unreachable
		}
		st = st.clone()
		for _, s := range b.stmts {
			g.transfer(st, s, func(pos token.Pos, format string, args ...interface{}) {
				if !seen[pos] {
					seen[pos] = true
					pass.Reportf(pos, format, args...)
				}
			})
		}
	}
}

type arenaGCInterp struct {
	pass *Pass
}

// transfer interprets one statement: check reads of tainted locals, apply
// the arena effects of any calls, then (re)define assigned locals. The
// order matters — passing a still-fresh view into the call that kills it
// is legal; reading it afterwards is not.
func (g *arenaGCInterp) transfer(st flowState, s ast.Stmt, report func(token.Pos, string, ...interface{})) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			g.checkUses(st, rhs, report)
		}
		for _, rhs := range s.Rhs {
			g.applyCalls(st, rhs)
		}
		if len(s.Lhs) == len(s.Rhs) {
			for i := range s.Lhs {
				g.define(st, s.Lhs[i], s.Rhs[i])
			}
		} else if len(s.Rhs) == 1 {
			// x, y := f(): classify each LHS by its own static type.
			for _, lhs := range s.Lhs {
				g.define(st, lhs, lhs)
			}
		}
	case *ast.RangeStmt:
		g.checkUses(st, s.X, report)
		g.applyCalls(st, s.X)
		for _, e := range []ast.Expr{s.Key, s.Value} {
			if e != nil {
				g.define(st, e, e)
			}
		}
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for _, v := range vs.Values {
				g.checkUses(st, v, report)
				g.applyCalls(st, v)
			}
			for i, name := range vs.Names {
				if i < len(vs.Values) {
					g.define(st, name, vs.Values[i])
				} else {
					g.define(st, name, name)
				}
			}
		}
	default:
		for _, n := range stmtEvalNodes(s) {
			g.checkUses(st, n, report)
			g.applyCalls(st, n)
		}
	}
}

// checkUses reports reads of stale locals within n.
func (g *arenaGCInterp) checkUses(st flowState, n ast.Node, report func(token.Pos, string, ...interface{})) {
	if report == nil || n == nil {
		return
	}
	ast.Inspect(n, func(node ast.Node) bool {
		id, ok := node.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := g.pass.Pkg.Info.Uses[id].(*types.Var)
		if !ok {
			return true
		}
		c, ok := st[obj]
		if !ok {
			return true
		}
		switch {
		case c.bits&bitStaleRef != 0:
			report(id.Pos(),
				"ClauseRef %q may be stale: %s ran after it was obtained; GC remaps rooted refs but not locals — re-read the ref from its root (watches/reason/clause list) after the call", id.Name, c.why)
		case c.bits&bitStaleView != 0:
			report(id.Pos(),
				"arena view %q may be stale: %s ran after lits() was taken and can move the backing array — re-read through lits() after the call", id.Name, c.why)
		}
		return true
	})
}

// applyCalls taints tracked locals for every call within n that may touch
// the arena, per the transitive call-effect summaries.
func (g *arenaGCInterp) applyCalls(st flowState, n ast.Node) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(node ast.Node) bool {
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := calleeFunc(g.pass.Pkg, call)
		eff := g.pass.Prog.effectsOf(callee)
		if eff == nil {
			return true // non-module callees cannot reach the unexported arena
		}
		if eff.ArenaGC {
			why := fmt.Sprintf("%s (may trigger arena GC)", callee.Name())
			taint(st, bitRef, bitStaleRef, why)
			taint(st, bitView, bitStaleView, why)
		} else if eff.ArenaAlloc {
			taint(st, bitView, bitStaleView, fmt.Sprintf("%s (may allocate clauses and grow the arena)", callee.Name()))
		}
		return true
	})
}

func taint(st flowState, have, add uint8, why string) {
	for obj, c := range st {
		if c.bits&have != 0 && c.bits&add == 0 {
			c.bits |= add
			if c.why == "" {
				c.why = why
			}
			st[obj] = c
		}
	}
}

// define classifies an assignment target from its source expression:
// refs and views enter the tracked state fresh (clearing any staleness —
// re-reading through the arena is exactly the sanctioned fix); anything
// else leaves tracking.
func (g *arenaGCInterp) define(st flowState, lhs ast.Expr, src ast.Expr) {
	id, ok := unparen(lhs).(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	var obj types.Object
	if d, ok := g.pass.Pkg.Info.Defs[id]; ok && d != nil {
		obj = d
	} else if u, ok := g.pass.Pkg.Info.Uses[id]; ok {
		obj = u
	}
	if obj == nil || !isLocalVar(obj) {
		return
	}
	t := typeOf(g.pass.Pkg, src)
	if t == nil {
		t = obj.Type()
	}
	switch {
	case t != nil && isClauseRefType(t):
		st[obj] = cell{bits: bitRef}
	case g.isViewExpr(st, src):
		st[obj] = cell{bits: bitView}
	default:
		delete(st, obj)
	}
}

// isViewExpr reports whether the expression yields a slice aliasing the
// arena backing: a call whose summary ReturnsView, a reslice of an
// existing view, or the view itself.
func (g *arenaGCInterp) isViewExpr(st flowState, e ast.Expr) bool {
	switch e := unparen(e).(type) {
	case *ast.CallExpr:
		callee := calleeFunc(g.pass.Pkg, e)
		if eff := g.pass.Prog.effectsOf(callee); eff != nil && eff.ReturnsView {
			return true
		}
	case *ast.SliceExpr:
		return g.isViewExpr(st, e.X)
	case *ast.Ident:
		if obj, ok := g.pass.Pkg.Info.Uses[e].(*types.Var); ok {
			if c, ok := st[obj]; ok && c.bits&bitView != 0 {
				return true
			}
		}
	}
	return false
}
