package bosphorus

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Pipeline-level seed-vs-arena equivalence: the arena clause store inside
// internal/sat must leave the whole fact-learning pipeline bit-identical —
// same verdicts, same per-technique fact counts, same learnt-fact ledger —
// for every instance under examples/instances, sequentially and across -j
// worker counts. The golden file was captured from the seed solver with
//
//	go test -run TestPipelineSeedEquivalence -update-pipeline-golden .
//
// check.sh runs this under -race, so the worker-count sweep also exercises
// the snapshot pipeline's concurrency.
//
// Deliberate regeneration (PR-10): examples/instances/unsat_parity.anf was
// added as the native-parity proof smoke, so the golden gained its record.
// The pre-existing records are byte-identical to the seed capture — XL
// refutes the new instance before the SAT step, so its ledger is
// arena/parity-independent anyway.

var updatePipelineGolden = flag.Bool("update-pipeline-golden", false,
	"rewrite testdata/pr5_pipeline_golden.json from the current engine")

type pipelineRecord struct {
	Instance     string `json:"instance"`
	Status       string `json:"status"`
	Solution     string `json:"solution,omitempty"`
	Iterations   int    `json:"iterations"`
	FactsXL      int    `json:"facts_xl"`
	FactsElimLin int    `json:"facts_elimlin"`
	FactsSAT     int    `json:"facts_sat"`
	FactsProp    int    `json:"facts_propagation"`
	// Ledger is the full learnt-fact ledger rendered as
	// "technique@iteration:poly" lines — the strongest equivalence witness
	// the pipeline exposes.
	Ledger []string `json:"ledger"`
}

func pipelineSummary(t *testing.T, path string, workers int) pipelineRecord {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := ParseANF(strings.NewReader(string(data)))
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Provenance = true
	opts.Workers = workers
	res := Solve(sys, opts)
	rec := pipelineRecord{
		Instance:     filepath.Base(path),
		Status:       res.Status.String(),
		Iterations:   res.Iterations,
		FactsXL:      res.FactsXL,
		FactsElimLin: res.FactsElimLin,
		FactsSAT:     res.FactsSAT,
		FactsProp:    res.FactsPropagation,
	}
	if res.Status == SAT {
		buf := make([]byte, len(res.Solution))
		for i, b := range res.Solution {
			buf[i] = '0'
			if b {
				buf[i] = '1'
			}
		}
		rec.Solution = string(buf)
	}
	if res.Provenance == nil {
		t.Fatalf("%s: no ledger", path)
	}
	for _, f := range res.Provenance.Facts() {
		rec.Ledger = append(rec.Ledger,
			fmt.Sprintf("%s@%d:%s", f.Technique, f.Iteration, f.Poly.String()))
	}
	return rec
}

func TestPipelineSeedEquivalence(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("examples", "instances", "*.anf"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no example instances")
	}
	var got []pipelineRecord
	for _, path := range paths {
		base := pipelineSummary(t, path, 0)
		got = append(got, base)
		// The ledger must be invariant across the -j worker sweep.
		for _, workers := range []int{1, 3} {
			alt := pipelineSummary(t, path, workers)
			bj, _ := json.Marshal(base)
			aj, _ := json.Marshal(alt)
			if string(bj) != string(aj) {
				t.Errorf("%s: -j %d diverged from sequential:\nseq: %s\n-j%d: %s",
					path, workers, bj, workers, aj)
			}
		}
	}
	goldenPath := filepath.Join("testdata", "pr5_pipeline_golden.json")
	if *updatePipelineGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("pipeline golden rewritten: %d records", len(got))
		return
	}
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden (%v); run with -update-pipeline-golden on the seed engine", err)
	}
	var want []pipelineRecord
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	wj, _ := json.MarshalIndent(want, "", "  ")
	gj, _ := json.MarshalIndent(got, "", "  ")
	if string(wj) != string(gj) {
		t.Errorf("pipeline output diverged from the seed engine:\nseed:\n%s\nnow:\n%s", wj, gj)
	}
}
