package share

import "repro/internal/cnf"

// Endpoint is one worker's attachment to a Ring. It satisfies the
// solver's sat.ClauseExchange interface structurally (Export/Drain), so
// internal/sat never imports this package.
//
// An Endpoint is single-goroutine: the owning solver calls Export at
// learning time and Drain at restart boundaries from the same goroutine,
// so the cursor and local counters need no synchronization. The Ring
// behind it is the shared, concurrent object.
type Endpoint struct {
	ring   *Ring
	id     uint32
	cursor uint64 // next ticket this endpoint will read

	// Local traffic counters, owned by the attached solver's goroutine.
	Imported   uint64 // clauses delivered to recv
	SkippedLap uint64 // entries lost because the ring lapped this cursor
	SkippedOwn uint64 // own exports seen and not re-imported
}

// Endpoint attaches a new consumer/producer to the ring. The cursor
// starts at the current head, so an endpoint only sees clauses published
// after it attached.
func (r *Ring) Endpoint() *Endpoint {
	return &Endpoint{
		ring:   r,
		id:     r.endpointID.Add(1),
		cursor: r.ticket.Load(),
	}
}

// Export offers a learnt clause to the ring, copying the literals before
// returning (the solver may pass an arena view). Reports whether the
// clause was accepted.
func (e *Endpoint) Export(lits []cnf.Lit, lbd int) bool {
	return e.ring.publish(e.id, lits, lbd)
}

// Drain delivers every coherent foreign clause published since the last
// call. Entries this endpoint published itself are consumed but not
// delivered; entries the ring overwrote before we got to them are counted
// in SkippedLap. The slice passed to recv aliases a scratch buffer and is
// only valid for the duration of the callback.
func (e *Endpoint) Drain(recv func(lits []cnf.Lit)) {
	head := e.ring.ticket.Load()
	if lag := head - e.cursor; lag > uint64(len(e.ring.slots)) {
		// Everything below head-slots has been overwritten; don't waste
		// reads proving it entry by entry.
		skip := lag - uint64(len(e.ring.slots))
		e.SkippedLap += skip
		e.cursor += skip
	}
	var buf [MaxLits]cnf.Lit
	for ; e.cursor < head; e.cursor++ {
		n, source, ok := e.ring.read(e.cursor, &buf)
		if !ok {
			// Unpublished (the exporter dropped or is mid-write) or
			// already lapped; either way the entry is gone for us.
			e.SkippedLap++
			continue
		}
		if source == e.id {
			e.SkippedOwn++
			continue
		}
		e.Imported++
		recv(buf[:n])
	}
}
