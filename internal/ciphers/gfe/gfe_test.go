package gfe

import (
	"testing"
	"testing/quick"
)

func TestFieldAxioms(t *testing.T) {
	for _, e := range []int{4, 8} {
		f := NewField(e)
		n := f.Order()
		// Spot-check associativity/commutativity/distributivity over all
		// triples for e=4, sampled pairs for e=8.
		limit := n
		if e == 8 {
			limit = 32
		}
		for a := 0; a < limit; a++ {
			for b := 0; b < limit; b++ {
				if f.Mul(uint16(a), uint16(b)) != f.Mul(uint16(b), uint16(a)) {
					t.Fatalf("e=%d: mul not commutative at %d,%d", e, a, b)
				}
				for c := 0; c < limit; c += 7 {
					lhs := f.Mul(uint16(a), f.Mul(uint16(b), uint16(c)))
					rhs := f.Mul(f.Mul(uint16(a), uint16(b)), uint16(c))
					if lhs != rhs {
						t.Fatalf("e=%d: mul not associative", e)
					}
					d1 := f.Mul(uint16(a), f.Add(uint16(b), uint16(c)))
					d2 := f.Add(f.Mul(uint16(a), uint16(b)), f.Mul(uint16(a), uint16(c)))
					if d1 != d2 {
						t.Fatalf("e=%d: not distributive", e)
					}
				}
			}
		}
	}
}

func TestFieldInverse(t *testing.T) {
	for _, e := range []int{4, 8} {
		f := NewField(e)
		for a := 1; a < f.Order(); a++ {
			if got := f.Mul(uint16(a), f.Inv(uint16(a))); got != 1 {
				t.Fatalf("e=%d: a·a⁻¹ = %d for a=%d", e, got, a)
			}
		}
		if f.Inv(0) != 0 {
			t.Fatal("Inv(0) should be 0")
		}
	}
}

func TestAESKnownProducts(t *testing.T) {
	f := NewField(8)
	// Classic AES example: 0x57 · 0x83 = 0xC1.
	if got := f.Mul(0x57, 0x83); got != 0xC1 {
		t.Fatalf("0x57·0x83 = %#x, want 0xc1", got)
	}
	// 0x57 · 0x13 = 0xFE (FIPS-197 example).
	if got := f.Mul(0x57, 0x13); got != 0xFE {
		t.Fatalf("0x57·0x13 = %#x, want 0xfe", got)
	}
}

func TestAESSBoxKnownValues(t *testing.T) {
	s := NewAESSBox(NewField(8))
	known := map[uint16]uint16{
		0x00: 0x63, 0x01: 0x7c, 0x53: 0xed, 0xff: 0x16, 0x10: 0xca,
	}
	for in, want := range known {
		if got := s.Apply(in); got != want {
			t.Fatalf("S(%#02x) = %#02x, want %#02x", in, got, want)
		}
	}
}

func TestSBoxPermutation(t *testing.T) {
	for _, e := range []int{4, 8} {
		s := NewAESSBox(NewField(e))
		if !s.IsPermutation() {
			t.Fatalf("e=%d: S-box is not a permutation", e)
		}
	}
}

func TestUnsupportedFieldPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewField(5) did not panic")
		}
	}()
	NewField(5)
}

// Property: Pow matches repeated multiplication.
func TestQuickPow(t *testing.T) {
	f := NewField(8)
	fn := func(a uint8, n uint8) bool {
		want := uint16(1)
		for i := 0; i < int(n%16); i++ {
			want = f.Mul(want, uint16(a))
		}
		return f.Pow(uint16(a), int(n%16)) == want
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Fatal(err)
	}
}
