package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/cnf"
	"repro/internal/cube"
	"repro/internal/sat"
)

// This file is the coordinator side of distributed cube-and-conquer: a
// coordinator-role server splits a cube-mode job in-process, parks the
// job, and serves the open cubes as pull tasks to worker nodes
// (internal/server/node.go) over two endpoints:
//
//	GET  /cube/next    next open cube as a CubeTask, or 204 when idle
//	POST /cube/result  a worker node's CubeResult for one cube
//
// Worker nodes are stateless: each task carries the full canonical
// DIMACS formula and the cube as assumptions, and is solved on a fresh
// solver. That makes every returned proof segment self-contained (RUP
// against the input alone), so the coordinator can hand segments to
// cube.StitchProof in arrival order, whatever the interleaving was. A
// SAT or outright-UNSAT result finishes the job early; tasks already
// dispatched for a finished job are simply ignored when their results
// arrive, and queued ones are dropped lazily on pop. A task answered
// UNKNOWN (node deadline, malformed transfer) is re-queued — the job's
// own deadline bounds the retries.

// CubeTask is one open cube, shipped to a worker node.
type CubeTask struct {
	// JobID names the coordinator-side job instance (not the cache key:
	// two identical submissions in flight get distinct IDs).
	JobID string `json:"job_id"`
	// Cube is the index of this cube in the job's open-cube list.
	Cube int `json:"cube"`
	// Formula is the full input, canonical DIMACS.
	Formula string `json:"formula"`
	// Assumptions is the cube prefix as DIMACS literals.
	Assumptions []int `json:"assumptions"`
	// WithProof asks the node for a DRAT segment on UNSAT.
	WithProof bool `json:"with_proof"`
	// TimeoutMS is the remaining job budget at dispatch time.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// CubeResult is a worker node's answer for one task.
type CubeResult struct {
	JobID  string `json:"job_id"`
	Cube   int    `json:"cube"`
	Status string `json:"status"` // SAT | UNSAT | UNKNOWN
	// Model is the satisfying assignment on SAT.
	Model []bool `json:"model,omitempty"`
	// Failed is the failed-assumption subset (DIMACS) on cube-level UNSAT.
	Failed []int `json:"failed,omitempty"`
	// Outright marks a refutation independent of the cube (the segment
	// ends in the empty clause).
	Outright bool `json:"outright,omitempty"`
	// Proof is the node's self-contained DRAT segment (with_proof only).
	Proof string `json:"proof,omitempty"`
}

// distOutcome is the coordinator's record of one cube's settled result
// plus its dispatch lease. leasedAt is the last dispatch time: zero means
// the cube is queued (or settled), non-zero means some node holds it. A
// lease older than the registry's TTL is presumed lost — the node died or
// went silent — and the reaper puts the cube back in line. Duplicate
// dispatch is safe: record() settles each cube exactly once.
type distOutcome struct {
	settled  bool
	failed   []cnf.Lit
	leasedAt time.Time
}

// distJob is one parked cube-mode job awaiting remote conquest. All
// fields past the channel are guarded by the registry mutex until
// finished flips; after that only the coordinator goroutine (released by
// the done close, which orders the accesses) reads them.
type distJob struct {
	id        string
	tree      *cube.Tree
	formText  string
	withProof bool
	deadline  time.Time // the job's context deadline, shipped with tasks

	outcomes  []distOutcome
	segments  [][]byte
	remaining int
	finished  bool
	status    sat.Status
	model     []bool
	done      chan struct{}
}

// cubeRegistry is the coordinator's job table plus the FIFO dispatch
// queue of (job, cube) refs. Refs to finished jobs are dropped on pop.
type cubeRegistry struct {
	mu   sync.Mutex
	seq  int64
	jobs map[string]*distJob
	fifo []taskRef

	// leaseTTL bounds how long a dispatched cube may stay unanswered
	// before the reaper re-queues it; now is injectable for tests.
	leaseTTL time.Duration
	now      func() time.Time
}

type taskRef struct {
	id   string
	cube int
}

func newCubeRegistry(leaseTTL time.Duration) *cubeRegistry {
	return &cubeRegistry{
		jobs:     make(map[string]*distJob),
		leaseTTL: leaseTTL,
		now:      time.Now,
	}
}

// register parks a job and queues every open cube for dispatch.
func (r *cubeRegistry) register(dj *distJob, keyHint string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seq++
	hint := keyHint
	if len(hint) > 12 {
		hint = hint[:12]
	}
	dj.id = fmt.Sprintf("%s-%d", hint, r.seq)
	r.jobs[dj.id] = dj
	for i := range dj.tree.Open {
		r.fifo = append(r.fifo, taskRef{id: dj.id, cube: i})
	}
}

func (r *cubeRegistry) unregister(id string) {
	r.mu.Lock()
	delete(r.jobs, id)
	r.mu.Unlock()
}

// finishLocked settles a job's verdict and releases its coordinator.
// Callers hold r.mu.
func (dj *distJob) finishLocked(st sat.Status, model []bool) {
	if dj.finished {
		return
	}
	dj.finished = true
	dj.status = st
	dj.model = model
	close(dj.done)
}

// next pops the first ref whose job is still live and builds its task.
func (r *cubeRegistry) next() (CubeTask, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for len(r.fifo) > 0 {
		ref := r.fifo[0]
		r.fifo = r.fifo[1:]
		dj := r.jobs[ref.id]
		if dj == nil || dj.finished || dj.outcomes[ref.cube].settled {
			continue
		}
		dj.outcomes[ref.cube].leasedAt = r.now()
		assumps := dj.tree.Open[ref.cube]
		t := CubeTask{
			JobID:     dj.id,
			Cube:      ref.cube,
			Formula:   dj.formText,
			WithProof: dj.withProof,
		}
		if !dj.deadline.IsZero() {
			if left := time.Until(dj.deadline).Milliseconds(); left > 0 {
				t.TimeoutMS = left
			} else {
				t.TimeoutMS = 1
			}
		}
		for _, l := range assumps {
			t.Assumptions = append(t.Assumptions, l.Dimacs())
		}
		return t, true
	}
	return CubeTask{}, false
}

// record folds one node result into its job. The bool reports whether
// the result was used (false: unknown/finished job or duplicate cube).
func (r *cubeRegistry) record(res CubeResult) (requeued, used bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	dj := r.jobs[res.JobID]
	if dj == nil || dj.finished {
		return false, false
	}
	if res.Cube < 0 || res.Cube >= len(dj.outcomes) || dj.outcomes[res.Cube].settled {
		return false, false
	}
	switch res.Status {
	case "SAT":
		dj.outcomes[res.Cube].settled = true
		dj.finishLocked(sat.Sat, res.Model)
	case "UNSAT":
		// Validate before mutating: a result with a malformed literal must
		// not settle the cube half-way.
		failed := make([]cnf.Lit, 0, len(res.Failed))
		for _, d := range res.Failed {
			l, err := cnf.LitFromDimacs(d)
			if err != nil {
				return false, false
			}
			failed = append(failed, l)
		}
		o := &dj.outcomes[res.Cube]
		o.settled = true
		o.failed = failed
		if dj.withProof && res.Proof != "" {
			dj.segments = append(dj.segments, []byte(res.Proof))
		}
		dj.remaining--
		if res.Outright || dj.remaining == 0 {
			dj.finishLocked(sat.Unsat, nil)
		}
	default:
		// The node gave up (its deadline, a transfer problem): put the
		// cube back in line. The job's own deadline bounds this.
		dj.outcomes[res.Cube].leasedAt = time.Time{}
		r.fifo = append(r.fifo, taskRef{id: dj.id, cube: res.Cube})
		return true, true
	}
	return false, true
}

// reap re-queues every unsettled cube whose dispatch lease has been out
// longer than the TTL — its node died or went silent mid-conquest — and
// returns how many it put back. A late answer from the presumed-dead
// node is still accepted (record dedups on settled), and if the node was
// merely slow the cube is conquered twice, which is wasted work but
// never a wrong answer.
func (r *cubeRegistry) reap() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	cutoff := r.now().Add(-r.leaseTTL)
	n := 0
	for _, dj := range r.jobs {
		if dj.finished {
			continue
		}
		for i := range dj.outcomes {
			o := &dj.outcomes[i]
			if o.settled || o.leasedAt.IsZero() || o.leasedAt.After(cutoff) {
				continue
			}
			o.leasedAt = time.Time{}
			r.fifo = append(r.fifo, taskRef{id: dj.id, cube: i})
			n++
		}
	}
	return n
}

// cubeReaper is the coordinator's lease-recovery loop: every quarter-TTL
// it re-queues cubes whose worker node has gone silent past the TTL, so
// a dead node stalls its cubes for at most ~1.25 lease periods instead
// of pinning them until the job deadline. Runs until Shutdown.
func (s *Server) cubeReaper() {
	tick := time.NewTicker(s.cfg.CubeLeaseTTL / 4)
	defer tick.Stop()
	for {
		select {
		case <-s.stopReaper:
			return
		case <-tick.C:
			if n := s.cubes.reap(); n > 0 {
				s.metrics.CubesReaped.Add(int64(n))
				s.logf("cube reaper: re-queued %d expired lease(s)", n)
			}
		}
	}
}

// runCubeCoordinator executes a cube job in coordinator role: split
// locally, then wait for worker nodes to conquer the open cubes.
func (s *Server) runCubeCoordinator(jb *job) *Response {
	start := time.Now()
	opts := jb.cubeOptions(s.cfg.Engine)
	tree := cube.Split(jb.form, opts)
	resp := &Response{Cubes: len(tree.Open)}
	if tree.Status == sat.Unsat {
		// Refuted by the splitter's propagation alone — no conquest needed.
		resp.Status = sat.Unsat.String()
		if jb.req.Proof {
			resp.Proof = string(cube.StitchProof(tree, nil, nil))
		}
		resp.ElapsedMS = time.Since(start).Milliseconds()
		return resp
	}

	dj := &distJob{
		tree:      tree,
		formText:  jb.formText,
		withProof: jb.req.Proof,
		outcomes:  make([]distOutcome, len(tree.Open)),
		remaining: len(tree.Open),
		done:      make(chan struct{}),
	}
	if d, ok := jb.ctx.Deadline(); ok {
		dj.deadline = d
	}
	s.cubes.register(dj, jb.key)
	s.metrics.CubeJobsActive.Add(1)
	defer func() {
		s.cubes.unregister(dj.id)
		s.metrics.CubeJobsActive.Add(-1)
	}()

	select {
	case <-dj.done:
	case <-jb.ctx.Done():
		// Settle the job under the lock so in-flight results and queued
		// refs are dropped from here on.
		s.cubes.mu.Lock()
		dj.finishLocked(sat.Unknown, nil)
		s.cubes.mu.Unlock()
		resp.Status = "CANCELED"
		resp.ElapsedMS = time.Since(start).Milliseconds()
		return resp
	}

	resp.Status = dj.status.String()
	resp.ElapsedMS = time.Since(start).Milliseconds()
	switch dj.status {
	case sat.Sat:
		resp.Solution = dj.model
	case sat.Unsat:
		if dj.withProof {
			failed := make([][]cnf.Lit, len(dj.outcomes))
			for i := range dj.outcomes {
				failed[i] = dj.outcomes[i].failed
			}
			resp.Proof = string(cube.StitchProof(tree, dj.segments, failed))
		}
	}
	return resp
}

// handleCubeNext serves the dispatch queue to pulling worker nodes.
func (s *Server) handleCubeNext(w http.ResponseWriter, r *http.Request) {
	task, ok := s.cubes.next()
	if !ok {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	s.metrics.CubesDispatched.Add(1)
	writeJSON(w, http.StatusOK, &task)
}

// handleCubeResult accepts one node result. Results for finished or
// unknown jobs are acknowledged and dropped — with pull-based dispatch
// and early SAT short-circuit they are expected, not errors.
func (s *Server) handleCubeResult(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var res CubeResult
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(&res); err != nil {
		http.Error(w, "bad result body: "+err.Error(), http.StatusBadRequest)
		return
	}
	requeued, used := s.cubes.record(res)
	s.metrics.CubeResults.Add(1)
	if requeued {
		s.metrics.CubesRequeued.Add(1)
	}
	writeJSON(w, http.StatusOK, map[string]bool{"used": used})
}
