package sat

import (
	"sort"

	"repro/internal/cnf"
)

// Native parity clauses (XNF-style): an XOR constraint stored as a single
// arena record instead of the 2^(k-1) clausal cut or a Gauss side-car row.
// The record's literal words carry the RHS folded into the signs — the
// invariant is "an odd number of the stored literals are true" (see the
// layout comment in arena.go). Two literals are watched, but unlike
// ordinary clauses the watch lists (xwatches) are indexed by *variable*
// and a watch fires when its variable becomes assigned — either polarity
// changes the parity bookkeeping, so falseness is the wrong trigger.
//
// The scan mirrors propagateLit: in-place write-cursor compaction, the
// assigned watch normalized into lits[1], replacement search over
// lits[2:]. When no unassigned replacement exists the clause is unit
// (lits[0] unassigned — force it to the parity-satisfying phase, reason =
// the parity ref itself, no arena temp) or fully assigned (evaluate the
// parity: satisfied or conflict). Conflict analysis never sees parity
// literal words directly: clauseLits materializes, on demand and into a
// pooled buffer, the ordinary clause the parity record implies under the
// current assignment — exactly the clause the Gauss component would have
// written to the arena as a temp, minus the allocation.
//
// Propagation completeness: a watch only moves from a just-assigned
// variable to an unassigned one, and backtracking only unassigns, so
// whenever the clause still has an unassigned variable at least one watch
// sits on one (or the assignment that broke that is still queued). The
// last variable of the clause to be assigned is therefore always watched
// at that moment, and its scan performs the full parity evaluation — a
// total assignment can never silently violate a parity clause.

// addXorNative routes an XOR constraint into the native parity kind:
// pair-cancel duplicates, handle the degenerate 0/1-unassigned cases at
// level 0, hand rows longer than NativeXorMaxLen to the Gauss side-car
// when it is enabled (long rows profit from inter-reduction, short rows
// are cheaper in-watch), and otherwise store a watched parity clause.
func (s *Solver) addXorNative(rhs bool, vars []cnf.Var) bool {
	if s.decisionLevel() != 0 {
		panic("sat: AddXor above decision level 0")
	}
	// Deduplicate pairs: x ⊕ x = 0.
	counts := map[cnf.Var]int{}
	for _, v := range vars {
		counts[v]++
	}
	vs := make([]cnf.Var, 0, len(vars))
	for _, v := range vars {
		if counts[v]%2 == 1 {
			vs = append(vs, v)
			counts[v] = 0
		}
	}
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	if len(vs) == 0 {
		if rhs {
			s.ok = false
			// 0 = 1: justified by the (inconsistent) input XOR rows.
			s.logJustify(nil)
			return false
		}
		return true
	}
	maxLen := s.opts.NativeXorMaxLen
	if maxLen <= 0 {
		maxLen = DefaultNativeXorMaxLen
	}
	if s.gauss != nil && len(vs) > maxLen {
		return s.gauss.addRow(vs, rhs)
	}
	// Encode the RHS into the literal signs: rhs=1 is all-positive, rhs=0
	// negates the first literal (either way: odd-many-true ⇔ row holds).
	lits := make([]cnf.Lit, len(vs))
	for i, v := range vs {
		lits[i] = cnf.MkLit(v, false)
	}
	if !rhs {
		lits[0] = lits[0].Not()
	}
	// Level-0 assignments are permanent, but the assigned variables must
	// NOT be folded out of the stored clause: proof justifications are
	// checked against the GF(2) row space of the *input* XOR rows, and a
	// folded row (input row ⊕ clause-derived units) is not in that space.
	// Keep the full variable set; attachParity watches unassigned slots.
	unassigned, nTrue := 0, 0
	for _, l := range lits {
		switch s.valueLit(l) {
		case lUndef:
			unassigned++
		case lTrue:
			nTrue++
		}
	}
	switch unassigned {
	case 0:
		if nTrue&1 == 1 {
			return true // satisfied at level 0, forever: nothing to store
		}
		s.logJustify(s.parityFalsified(lits))
		s.ok = false
		s.logEmpty()
		return false
	case 1:
		// Unit under the level-0 assignment: force the remaining variable,
		// logging the full implied clause (forced literal plus the false
		// literals of the assigned variables) so the unit stays checkable
		// against the XOR row space.
		var forced cnf.Lit
		for _, l := range lits {
			if s.valueLit(l) == lUndef {
				forced = l
				if nTrue&1 == 1 {
					forced = forced.Not()
				}
				break
			}
		}
		buf := s.parityBuf[:0]
		buf = append(buf, forced)
		for _, l := range lits {
			if l.Var() == forced.Var() {
				continue
			}
			buf = append(buf, cnf.MkLit(l.Var(), s.assigns[l.Var()] == lTrue))
		}
		s.parityBuf = buf
		s.logJustify(buf)
		if !s.enqueue(forced, NullRef) {
			panic("sat: parity unit on undefined literal not enqueueable")
		}
		if conf := s.propagate(); conf != NullRef {
			s.releaseConflict(conf)
			s.ok = false
			s.logEmpty()
			return false
		}
		return true
	}
	cr := s.ca.allocParity(lits)
	s.parities = append(s.parities, cr)
	s.attachParity(cr)
	return true
}

// parityFalsified materializes, into the pooled buffer, the clause
// forbidding the current (violating) total assignment of the parity
// clause's variables: every literal false right now.
func (s *Solver) parityFalsified(lits []cnf.Lit) []cnf.Lit {
	buf := s.parityBuf[:0]
	for _, l := range lits {
		buf = append(buf, cnf.MkLit(l.Var(), s.assigns[l.Var()] == lTrue))
	}
	s.parityBuf = buf
	return buf
}

// attachParity installs the two variable-indexed watches, moving two
// unassigned literals into slots 0 and 1 first (callers guarantee at
// least two exist). The blocker slot carries the other watched literal;
// parity scans never consult it (no single literal satisfies a parity).
func (s *Solver) attachParity(cr ClauseRef) {
	if s.xwatches == nil {
		// Lazily sized: formulas without parity clauses never pay for the
		// table (the chain-20000 alloc baseline stays intact).
		s.xwatches = make([][]watcher, len(s.assigns))
	}
	lits := s.ca.lits(cr)
	w := 0
	for i := 0; i < len(lits) && w < 2; i++ {
		if s.assigns[lits[i].Var()] == lUndef {
			lits[w], lits[i] = lits[i], lits[w]
			w++
		}
	}
	s.xwatches[lits[0].Var()] = append(s.xwatches[lits[0].Var()], watcher{cr, lits[1]})
	s.xwatches[lits[1].Var()] = append(s.xwatches[lits[1].Var()], watcher{cr, lits[0]})
}

// propagateParity scans the parity watches of p's variable after p was
// assigned. Same in-place compaction contract as propagateLit: kept
// watchers slide left over moved ones, a conflict slides the unvisited
// tail up and fast-forwards qhead.
//
//bosphorus:hotpath parity watcher scan with in-place compaction
func (s *Solver) propagateParity(p cnf.Lit) ClauseRef {
	pv := p.Var()
	ws := s.xwatches[pv]
	wj := 0
	for wi := 0; wi < len(ws); wi++ {
		w := ws[wi]
		cr := w.ref
		lits := s.ca.lits(cr)
		// Normalize so the just-assigned watched variable is lits[1].
		if lits[0].Var() == pv {
			lits[0], lits[1] = lits[1], lits[0]
		}
		// Look for an unassigned literal to watch instead.
		found := false
		for k := 2; k < len(lits); k++ {
			if s.assigns[lits[k].Var()] == lUndef {
				lits[1], lits[k] = lits[k], lits[1]
				s.xwatches[lits[1].Var()] = append(s.xwatches[lits[1].Var()], watcher{cr, lits[0]})
				found = true
				break
			}
		}
		if found {
			continue // watcher moved; do not keep
		}
		// Everything but (possibly) lits[0] is assigned: count the true
		// literals among lits[1:].
		n := 0
		for k := 1; k < len(lits); k++ {
			if s.valueLit(lits[k]) == lTrue {
				n++
			}
		}
		first := lits[0]
		if s.assigns[first.Var()] == lUndef {
			// Unit: force lits[0] to whatever phase makes the count odd.
			forced := first
			if n&1 == 1 {
				forced = forced.Not()
			}
			if s.proof != nil {
				//lint:ignore hotpath proof materialization dispatches through the writer interface; nil-guarded off the alloc-free benchmark path
				s.justifyParityStep(cr, forced, true)
			}
			ws[wj] = watcher{cr, forced}
			wj++
			if !s.enqueue(forced, cr) {
				panic("sat: parity unit on undefined literal not enqueueable")
			}
			continue
		}
		if s.valueLit(first) == lTrue {
			n++
		}
		ws[wj] = w
		wj++
		if n&1 == 1 {
			continue // parity satisfied
		}
		// Conflict: the total assignment violates the parity.
		if s.proof != nil {
			//lint:ignore hotpath proof materialization dispatches through the writer interface; nil-guarded off the alloc-free benchmark path
			s.justifyParityStep(cr, p, false)
		}
		wj += copy(ws[wj:], ws[wi+1:])
		s.xwatches[pv] = ws[:wj]
		s.qhead = len(s.trail)
		return cr
	}
	s.xwatches[pv] = ws[:wj]
	return NullRef
}

// justifyParityStep logs the ordinary clause the parity record implies (or
// falsifies) under the current assignment, keeping the DRAT stream
// checkable by proofcheck's GF(2) rowspan rule: the materialized clause
// forbids exactly one assignment of the clause's variables, and the
// corresponding row is the parity clause's own (vars, rhs), which lies in
// the input row space. Mirrors gauss.imply/conflictClause — minus the
// arena temp.
func (s *Solver) justifyParityStep(cr ClauseRef, implied cnf.Lit, haveImplied bool) {
	s.logJustify(s.parityLits(cr, implied, haveImplied))
}

// parityLits materializes, into the pooled parityBuf, the ordinary clause
// a parity record stands for under the current assignment: the implied
// trail literal verbatim (when there is one) and the false literal of
// every other variable. Conflict analysis resolves on the result exactly
// as it would on a Gauss-materialized temp reason. The returned slice is
// invalidated by the next parityLits/parityFalsified call.
//
//bosphorus:hotpath on-demand parity reason materialization for analyze
func (s *Solver) parityLits(cr ClauseRef, implied cnf.Lit, haveImplied bool) []cnf.Lit {
	buf := s.parityBuf[:0]
	for _, q := range s.ca.lits(cr) {
		v := q.Var()
		if haveImplied && v == implied.Var() {
			buf = append(buf, implied)
			continue
		}
		buf = append(buf, cnf.MkLit(v, s.assigns[v] == lTrue))
	}
	s.parityBuf = buf
	return buf
}

// clauseLits returns the literals conflict analysis should resolve on for
// clause c: the arena view for ordinary clauses, the materialized implied
// clause for parity records. p is the trail literal whose reason c is
// (havePathLit=false for the conflict clause itself, where every literal
// is false).
//
//bosphorus:hotpath reason-literal dispatch on the analyze path
func (s *Solver) clauseLits(c ClauseRef, p cnf.Lit, havePathLit bool) []cnf.Lit {
	if !s.ca.parity(c) {
		return s.ca.lits(c)
	}
	return s.parityLits(c, p, havePathLit)
}
