package anf

import (
	"sort"
	"strings"
)

// Poly is a Boolean polynomial: a GF(2) sum (XOR) of distinct monomials.
// The zero polynomial has no monomials. Monomials are kept sorted in
// descending graded-lex order (leading term first), mirroring the term
// order a Gröbner-basis engine would use.
//
// A Poly used as an equation means "this polynomial equals zero".
type Poly struct {
	terms []Monomial
}

// Zero returns the zero polynomial.
func Zero() Poly { return Poly{} }

// OnePoly returns the constant-1 polynomial (the contradictory equation
// 1 = 0 when read as an equation).
func OnePoly() Poly { return Poly{terms: []Monomial{One}} }

// FromMonomials builds a polynomial from monomials, cancelling duplicates
// in pairs (m ⊕ m = 0).
func FromMonomials(ms ...Monomial) Poly {
	ts := append([]Monomial(nil), ms...)
	sort.Slice(ts, func(i, j int) bool { return ts[i].Compare(ts[j]) > 0 })
	out := ts[:0]
	for i := 0; i < len(ts); {
		j := i
		for j < len(ts) && ts[j].Equal(ts[i]) {
			j++
		}
		if (j-i)%2 == 1 {
			out = append(out, ts[i])
		}
		i = j
	}
	return Poly{terms: append([]Monomial(nil), out...)}
}

// FromSortedMonomials builds a polynomial from monomials that are already
// in strictly descending order with no duplicates — the canonical term
// order. It trusts the caller (no sorting, no cancellation) and copies the
// slice. The linearization kernels use it to read reduced matrix rows back
// into polynomials without paying FromMonomials' sort.
func FromSortedMonomials(ms []Monomial) Poly {
	return Poly{terms: append([]Monomial(nil), ms...)}
}

// VarPoly returns the polynomial consisting of the single variable v.
func VarPoly(v Var) Poly { return Poly{terms: []Monomial{NewMonomial(v)}} }

// Constant returns the polynomial 0 or 1.
func Constant(b bool) Poly {
	if b {
		return OnePoly()
	}
	return Zero()
}

// IsZero reports whether p is the zero polynomial.
func (p Poly) IsZero() bool { return len(p.terms) == 0 }

// IsOne reports whether p is the constant 1.
func (p Poly) IsOne() bool { return len(p.terms) == 1 && p.terms[0].IsOne() }

// Terms returns the monomials in descending order. Callers must not modify
// the returned slice.
func (p Poly) Terms() []Monomial { return p.terms }

// NumTerms returns the number of monomials.
func (p Poly) NumTerms() int { return len(p.terms) }

// Deg returns the total degree (degree of the leading term), or -1 for the
// zero polynomial.
func (p Poly) Deg() int {
	if p.IsZero() {
		return -1
	}
	return p.terms[0].Deg()
}

// Lead returns the leading monomial. Panics on the zero polynomial.
func (p Poly) Lead() Monomial {
	if p.IsZero() {
		panic("anf: Lead of zero polynomial")
	}
	return p.terms[0]
}

// HasConstant reports whether the constant term 1 is present.
func (p Poly) HasConstant() bool {
	return len(p.terms) > 0 && p.terms[len(p.terms)-1].IsOne()
}

// Add returns p ⊕ q: the symmetric difference of the term sets, via a
// linear-time merge.
func (p Poly) Add(q Poly) Poly {
	out := make([]Monomial, 0, len(p.terms)+len(q.terms))
	i, j := 0, 0
	for i < len(p.terms) && j < len(q.terms) {
		switch c := p.terms[i].Compare(q.terms[j]); {
		case c > 0:
			out = append(out, p.terms[i])
			i++
		case c < 0:
			out = append(out, q.terms[j])
			j++
		default: // equal terms cancel
			i++
			j++
		}
	}
	out = append(out, p.terms[i:]...)
	out = append(out, q.terms[j:]...)
	return Poly{terms: out}
}

// AddConstant returns p ⊕ 1 if b, else p.
func (p Poly) AddConstant(b bool) Poly {
	if !b {
		return p
	}
	return p.Add(OnePoly())
}

// MulMonomial returns p·m. Multiplying distinct monomials by m can merge
// them (absorption), so duplicates are re-cancelled.
func (p Poly) MulMonomial(m Monomial) Poly {
	if m.IsOne() {
		return p
	}
	prods := make([]Monomial, len(p.terms))
	for i, t := range p.terms {
		prods[i] = t.Mul(m)
	}
	return FromMonomials(prods...)
}

// Mul returns the product p·q over GF(2).
func (p Poly) Mul(q Poly) Poly {
	if p.IsZero() || q.IsZero() {
		return Zero()
	}
	prods := make([]Monomial, 0, len(p.terms)*len(q.terms))
	for _, a := range p.terms {
		for _, b := range q.terms {
			prods = append(prods, a.Mul(b))
		}
	}
	return FromMonomials(prods...)
}

// Equal reports structural equality (which, for canonical forms, is
// mathematical equality).
func (p Poly) Equal(q Poly) bool {
	if len(p.terms) != len(q.terms) {
		return false
	}
	for i := range p.terms {
		if !p.terms[i].Equal(q.terms[i]) {
			return false
		}
	}
	return true
}

// Vars returns the sorted set of variables occurring in p.
func (p Poly) Vars() []Var {
	seen := map[Var]struct{}{}
	for _, t := range p.terms {
		for _, v := range t.Vars() {
			seen[v] = struct{}{}
		}
	}
	out := make([]Var, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ContainsVar reports whether v occurs in any term of p.
func (p Poly) ContainsVar(v Var) bool {
	for _, t := range p.terms {
		if t.Contains(v) {
			return true
		}
	}
	return false
}

// Eval evaluates the polynomial under the assignment.
func (p Poly) Eval(assign func(Var) bool) bool {
	acc := false
	for _, t := range p.terms {
		if t.Eval(assign) {
			acc = !acc
		}
	}
	return acc
}

// SubstituteVar returns p with every occurrence of v replaced by the
// polynomial r. For each term v·m the result contributes r·m.
func (p Poly) SubstituteVar(v Var, r Poly) Poly {
	if !p.ContainsVar(v) {
		return p
	}
	keep := make([]Monomial, 0, len(p.terms))
	var replaced Poly
	for _, t := range p.terms {
		if !t.Contains(v) {
			keep = append(keep, t)
			continue
		}
		rest := t.Without(v)
		replaced = replaced.Add(r.MulMonomial(rest))
	}
	return Poly{terms: keep}.Add(replaced)
}

// SubstituteConst returns p with v fixed to the constant value b.
func (p Poly) SubstituteConst(v Var, b bool) Poly {
	return p.SubstituteVar(v, Constant(b))
}

// IsLinear reports whether every term has degree ≤ 1 (a linear equation,
// possibly with a constant).
func (p Poly) IsLinear() bool { return p.Deg() <= 1 }

// LinearVars returns the variables of a linear polynomial's degree-1 terms.
// It panics if p is not linear.
func (p Poly) LinearVars() []Var {
	if !p.IsLinear() {
		panic("anf: LinearVars on nonlinear polynomial")
	}
	var out []Var
	for _, t := range p.terms {
		if t.Deg() == 1 {
			out = append(out, t.Vars()[0])
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// IsMonomialPlusOne reports whether p has the form m ⊕ 1 with m a single
// non-constant monomial — the learnt-fact shape that forces every variable
// of m to 1.
func (p Poly) IsMonomialPlusOne() bool {
	return len(p.terms) == 2 && p.terms[1].IsOne() && p.terms[0].Deg() >= 1
}

// String renders the polynomial like "x1*x2 + x3 + 1" ("+" is GF(2)
// addition, i.e. XOR). The zero polynomial renders as "0".
func (p Poly) String() string {
	if p.IsZero() {
		return "0"
	}
	parts := make([]string, len(p.terms))
	for i, t := range p.terms {
		parts[i] = t.String()
	}
	return strings.Join(parts, " + ")
}

// MaxVar returns the largest variable index occurring in p and true, or
// (0, false) if p has no variables.
func (p Poly) MaxVar() (Var, bool) {
	var max Var
	found := false
	for _, t := range p.terms {
		vs := t.Vars()
		if len(vs) > 0 {
			if v := vs[len(vs)-1]; !found || v > max {
				max = v
				found = true
			}
		}
	}
	return max, found
}
