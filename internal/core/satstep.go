package core

import (
	"bytes"
	"context"
	"sort"
	"time"

	"repro/internal/anf"
	"repro/internal/cnf"
	"repro/internal/conv"
	"repro/internal/proof"
	"repro/internal/route"
	"repro/internal/sat"
	"repro/internal/simp"
)

// SATStepConfig parameterizes conflict-bounded SAT solving (§II-D).
type SATStepConfig struct {
	// ConflictBudget is C, the number of conflicts the solver may spend.
	ConflictBudget int64
	// Profile selects the solver personality.
	Profile sat.Profile
	// Conv is the ANF→CNF conversion configuration.
	Conv conv.Options
	// Preprocess runs simp preprocessing before solving (the Lingeling
	// pairing). Facts are still extracted in the original variable space,
	// so only the solve benefits.
	Preprocess bool
	// HarvestMonomials additionally interprets learnt units on monomial
	// auxiliary variables as monomial facts. The paper's implementation
	// excludes auxiliary variables from learnt facts (§III-C); this is the
	// ablation toggle.
	HarvestMonomials bool
	// Probe runs failed-literal probing before the search — the
	// lookahead-style component the paper's §V names as pluggable. Probe
	// units flow through the normal unit harvest; probe equivalences are
	// harvested directly.
	Probe bool
	// ProbeMax bounds the number of probed variables (0 = all).
	ProbeMax int
	// Seed makes the solver deterministic.
	Seed int64
	// Context, when non-nil, cancels the step: the solver's interrupt hook
	// polls it during probing and search, so the step returns (with the
	// facts harvested so far) soon after cancellation. A nil Context never
	// cancels.
	Context context.Context
	// Route classifies the converted CNF into tractable fragments (2SAT,
	// Horn, anti-Horn, pure XOR) and, on a match, decides it with the
	// polynomial solver from internal/route instead of CDCL. Routed UNSAT
	// verdicts still carry a checkable certificate when CaptureProof is
	// set; routed SAT models are verified before being trusted.
	Route bool
	// NoNativeXor disables the solver's native parity-clause kind (PR-10)
	// and restores the pre-native routing: XOR pieces are clausally cut at
	// conversion (MiniSat/Lingeling profiles) or handed whole to the Gauss
	// side-car (CMS profile). The differential baseline for the `parity`
	// bench family and `bosphorus -native-xor=false`.
	NoNativeXor bool
	// CaptureProof attaches a DRAT writer to the solver and, when the step
	// refutes the formula, returns the proof as a Certificate. Capture
	// forces Preprocess off: simp rewrites the clause set, so a proof
	// logged against the preprocessed formula would not check against the
	// emitted CNF.
	CaptureProof bool
	// ProofBinary selects the compact binary proof encoding.
	ProofBinary bool
}

// SATStepResult carries the outcome of one conflict-bounded solve.
type SATStepResult struct {
	Status sat.Status
	// Facts are the learnt polynomials: x, x⊕1 from units; x⊕y, x⊕y⊕1
	// from complementary binary-clause pairs; 1 (contradiction) on UNSAT.
	Facts []anf.Poly
	// Model is the satisfying assignment over the CNF variables when
	// Status is Sat.
	Model []bool
	// VarMap relates CNF variables to ANF monomials.
	VarMap *conv.VarMap
	// Conflicts actually spent.
	Conflicts uint64
	// Notes describes, parallel to Facts, where each fact came from
	// ("learnt unit", "complementary binary pair", ...) — the per-fact
	// detail the provenance ledger records.
	Notes []string
	// Certificate holds the DRAT proof when CaptureProof was set and the
	// step refuted the formula.
	Certificate *proof.Certificate
	// RoutedVia names the tractable fragment that decided this step
	// ("2sat", "horn", "antihorn", "xor") — empty when CDCL ran.
	RoutedVia string
	// RouteNs is the time the router spent (classify + fragment solve),
	// whether or not it produced a verdict; 0 when routing was off.
	RouteNs int64
}

// RunSATStep converts the system to CNF, solves under the conflict budget,
// and harvests learnt facts (§II-D).
func RunSATStep(sys *anf.System, cfg SATStepConfig) *SATStepResult {
	if cfg.ConflictBudget <= 0 {
		cfg.ConflictBudget = 10000
	}
	if cfg.CaptureProof {
		// A proof logged against the simp-rewritten clause set would not
		// check against the emitted CNF; capture implies no preprocessing.
		cfg.Preprocess = false
	}
	convOpts := cfg.Conv
	// With native parity clauses (the default), every profile keeps XOR
	// pieces whole through conversion — the solver watches them directly.
	// The CNF-cut baseline restores the old rule: only the GJE-enabled CMS
	// profile gets native XOR clauses.
	if !cfg.NoNativeXor || cfg.Profile == sat.ProfileCMS {
		convOpts.NativeXor = true
	}
	f, vm := conv.ANFToCNF(sys, convOpts)
	res := &SATStepResult{VarMap: vm}
	addFact := func(p anf.Poly, note string) {
		res.Facts = append(res.Facts, p)
		res.Notes = append(res.Notes, note)
	}

	if cfg.Route {
		//lint:ignore determinism timing only: routeStart feeds the route_ns metric, never fact ordering
		routeStart := time.Now()
		v, _, routed := route.Decide(f)
		res.RouteNs = time.Since(routeStart).Nanoseconds()
		if routed {
			res.RoutedVia = v.Fragment.String()
			res.Status = v.Status
			switch v.Status {
			case sat.Sat:
				res.Model = v.Model
			case sat.Unsat:
				addFact(anf.OnePoly(), "routed "+res.RoutedVia+" refutation")
				if cfg.CaptureProof {
					// Fragment proofs are always text (RUP chain or xor
					// justification) against the unpreprocessed CNF.
					res.Certificate = &proof.Certificate{
						Formula: f,
						Proof:   append([]byte(nil), v.Proof...),
					}
				}
			}
			return res
		}
	}

	target := f
	var rec *simp.Reconstructor
	if cfg.Preprocess {
		pres := simp.Preprocess(f, simp.DefaultOptions())
		if pres.Unsat {
			res.Status = sat.Unsat
			addFact(anf.OnePoly(), "preprocessor refutation")
			return res
		}
		target = pres.Formula
		rec = pres.Reconstructor
	}

	opts := sat.DefaultOptions(cfg.Profile)
	if cfg.NoNativeXor {
		opts.NativeXor = false
	}
	if cfg.Seed != 0 {
		opts.RandomSeed = cfg.Seed
	}
	s := sat.New(opts)
	var proofBuf *bytes.Buffer
	var proofW sat.ProofWriter
	if cfg.CaptureProof {
		proofBuf = &bytes.Buffer{}
		if cfg.ProofBinary {
			proofW = proof.NewBinaryWriter(proofBuf)
		} else {
			proofW = proof.NewTextWriter(proofBuf)
		}
		s.SetProof(proofW)
	}
	// certify snapshots the proof stream into the result; called on every
	// refutation exit so the caller gets a checkable certificate.
	certify := func() {
		if proofW == nil {
			return
		}
		_ = proofW.Flush()
		res.Certificate = &proof.Certificate{
			Formula: target,
			Proof:   append([]byte(nil), proofBuf.Bytes()...),
			Binary:  cfg.ProofBinary,
		}
	}
	if cfg.Context != nil && cfg.Context.Done() != nil {
		ctx := cfg.Context
		s.SetInterrupt(func() bool { return ctx.Err() != nil })
	}
	if !s.AddFormula(target) {
		res.Status = sat.Unsat
		addFact(anf.OnePoly(), "refuted at clause insertion")
		certify()
		return res
	}
	if cfg.Probe {
		probe := s.ProbeLiterals(cfg.ProbeMax)
		if probe.Unsat {
			res.Status = sat.Unsat
			addFact(anf.OnePoly(), "refuted by probing")
			certify()
			return res
		}
		for _, eq := range probe.Equivalences {
			a, b := eq[0], eq[1]
			if !vm.IsOriginal(a.Var()) || !vm.IsOriginal(b.Var()) || cfg.Preprocess {
				continue
			}
			p := anf.VarPoly(anf.Var(a.Var())).Add(anf.VarPoly(anf.Var(b.Var())))
			if a.Neg() != b.Neg() {
				p = p.Add(anf.OnePoly())
			}
			addFact(p, "probe equivalence")
		}
	}
	res.Status = s.SolveLimited(cfg.ConflictBudget)
	res.Conflicts = s.Conflicts

	switch res.Status {
	case sat.Unsat:
		// Case (1): the learnt fact is the contradiction 1 = 0 (alone — the
		// probe harvest is subsumed, matching the paper's behaviour).
		res.Facts, res.Notes = nil, nil
		addFact(anf.OnePoly(), "solver refutation")
		certify()
		return res
	case sat.Sat:
		m := s.Model()
		for len(m) < target.NumVars {
			m = append(m, false)
		}
		if rec != nil {
			m = rec.Extend(m)
		}
		for len(m) < f.NumVars {
			m = append(m, false)
		}
		res.Model = m
	}
	// Cases (2) and (3): extract linear equations from learnt unit and
	// binary clauses. Facts derived from a preprocessed formula are only
	// harvested when they mention original variables (preprocessing
	// preserves equivalence on them because units are re-asserted and
	// frozen xor variables are untouched; eliminated variables simply
	// yield no facts).
	harvest := func(l cnf.Lit) (anf.Poly, bool) {
		v := l.Var()
		if vm.IsOriginal(v) {
			return anf.VarPoly(anf.Var(v)).AddConstant(!l.Neg()), true
		}
		if cfg.HarvestMonomials {
			if m, ok := vm.Monomial(v); ok {
				p := anf.FromMonomials(m)
				return p.AddConstant(!l.Neg()), true
			}
		}
		return anf.Zero(), false
	}
	for _, u := range s.LearntUnits() {
		if p, ok := harvest(u); ok {
			addFact(p, "learnt unit")
		}
	}
	// Complementary binary pairs (a ∨ b) ∧ (¬a ∨ ¬b) give a = ¬b, and
	// (¬a ∨ b) ∧ (a ∨ ¬b) give a = b.
	type pairKey struct{ a, b cnf.Var }
	seen := map[pairKey][4]bool{} // index: a-sign<<1 | b-sign
	record := func(c cnf.Clause) {
		a, b := c[0], c[1]
		if a.Var() > b.Var() {
			a, b = b, a
		}
		k := pairKey{a.Var(), b.Var()}
		entry := seen[k]
		idx := 0
		if a.Neg() {
			idx |= 2
		}
		if b.Neg() {
			idx |= 1
		}
		entry[idx] = true
		seen[k] = entry
	}
	for _, b := range s.LearntBinaries() {
		if len(b) == 2 && b[0].Var() != b[1].Var() {
			record(b)
		}
	}
	// Iterate the pairs in sorted order: map order is randomized per
	// process, and the order facts are added is part of the reproducible-
	// run contract (the determinism analyzer rejects map-range fact
	// emission).
	keys := make([]pairKey, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].a != keys[j].a {
			return keys[i].a < keys[j].a
		}
		return keys[i].b < keys[j].b
	})
	for _, k := range keys {
		entry := seen[k]
		if !vm.IsOriginal(k.a) || !vm.IsOriginal(k.b) {
			continue
		}
		av, bv := anf.Var(k.a), anf.Var(k.b)
		if entry[0] && entry[3] {
			// (a∨b) and (¬a∨¬b): exactly one true → a = ¬b.
			addFact(anf.VarPoly(av).Add(anf.VarPoly(bv)).Add(anf.OnePoly()), "complementary binary pair")
		}
		if entry[1] && entry[2] {
			// (a∨¬b) and (¬a∨b): a = b.
			addFact(anf.VarPoly(av).Add(anf.VarPoly(bv)), "complementary binary pair")
		}
	}
	// Generalized binary harvest: strongly connected components of the
	// implication graph over problem + learnt binaries find equivalences
	// that need a chain of implications, not just complementary pairs.
	// (Skip under preprocessing: simp rewrites the clause set.)
	if !cfg.Preprocess {
		bin := cnf.NewFormula(f.NumVars)
		for _, c := range f.Clauses {
			if len(c) == 2 {
				bin.AddClause(c...)
			}
		}
		for _, c := range s.LearntBinaries() {
			bin.AddClause(c...)
		}
		if eqs, ok := sat.BinaryEquivalences(bin); !ok {
			addFact(anf.OnePoly(), "binary implication contradiction")
		} else {
			for _, eq := range eqs {
				a, b := eq[0], eq[1]
				if !vm.IsOriginal(a.Var()) || !vm.IsOriginal(b.Var()) {
					continue
				}
				p := anf.VarPoly(anf.Var(a.Var())).Add(anf.VarPoly(anf.Var(b.Var())))
				if a.Neg() != b.Neg() {
					p = p.Add(anf.OnePoly())
				}
				addFact(p, "implication-graph equivalence")
			}
		}
	}
	return res
}
