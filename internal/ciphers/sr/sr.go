// Package sr implements the small-scale AES variants SR(n, r, c, e) of
// Cid, Murphy and Robshaw (FSE 2005) — the cipher family behind the
// paper's SR-[1,4,4,8] benchmark — together with a bit-level ANF encoder.
//
// The paper obtains its polynomial systems from SageMath's sr module; we
// generate equivalent systems from scratch: per-S-box implicit quadratic
// equations (computed automatically as the GF(2) nullspace of the
// quadratic-monomial evaluation matrix over all S-box input/output pairs),
// bit-level linear equations for ShiftRows/MixColumns/AddRoundKey and the
// key schedule, and unit equations fixing the plaintext and ciphertext
// bits. SR(1,4,4,8) comes out at 800 variables, the figure the paper
// reports for its Sage-generated systems.
package sr

import (
	"fmt"
	"math/rand"

	"repro/internal/ciphers/gfe"
)

// Params selects the SR(n, r, c, e) variant: n rounds, an r×c state of
// GF(2^e) elements.
type Params struct {
	N, R, C, E int
}

// Paper144_8 is SR(1,4,4,8), the paper's SR-[1,4,4,8] benchmark family.
var Paper144_8 = Params{N: 1, R: 4, C: 4, E: 8}

func (p Params) String() string {
	return fmt.Sprintf("SR(%d,%d,%d,%d)", p.N, p.R, p.C, p.E)
}

// Elements returns the number of state elements r·c.
func (p Params) Elements() int { return p.R * p.C }

// BlockBits returns the block size in bits.
func (p Params) BlockBits() int { return p.R * p.C * p.E }

// Cipher is an instantiated SR variant.
type Cipher struct {
	P     Params
	Field *gfe.Field
	SBox  *gfe.SBox
	mix   [][]uint16 // r×r MixColumns matrix
}

// New builds the cipher for the given parameters.
func New(p Params) *Cipher {
	if p.N < 1 || p.C < 1 {
		panic("sr: invalid parameters")
	}
	f := gfe.NewField(p.E)
	c := &Cipher{P: p, Field: f, SBox: gfe.NewAESSBox(f)}
	switch p.R {
	case 1:
		c.mix = [][]uint16{{1}}
	case 2:
		c.mix = [][]uint16{{3, 2}, {2, 3}}
	case 4:
		// The AES circulant circ(2,3,1,1).
		base := []uint16{2, 3, 1, 1}
		c.mix = make([][]uint16, 4)
		for i := 0; i < 4; i++ {
			row := make([]uint16, 4)
			for j := 0; j < 4; j++ {
				row[j] = base[(j-i+4)%4]
			}
			c.mix[i] = row
		}
	default:
		panic("sr: rows must be 1, 2 or 4")
	}
	return c
}

// idx maps (row, col) to the element index (column-major, as in AES).
func (c *Cipher) idx(row, col int) int { return col*c.P.R + row }

// subBytes applies the S-box to every element.
func (c *Cipher) subBytes(state []uint16) {
	for i := range state {
		state[i] = c.SBox.Apply(state[i])
	}
}

// shiftRows rotates row i left by i (mod c).
func (c *Cipher) shiftRows(state []uint16) {
	out := make([]uint16, len(state))
	for row := 0; row < c.P.R; row++ {
		for col := 0; col < c.P.C; col++ {
			out[c.idx(row, col)] = state[c.idx(row, (col+row)%c.P.C)]
		}
	}
	copy(state, out)
}

// mixColumns multiplies each column by the mix matrix.
func (c *Cipher) mixColumns(state []uint16) {
	for col := 0; col < c.P.C; col++ {
		in := make([]uint16, c.P.R)
		for row := 0; row < c.P.R; row++ {
			in[row] = state[c.idx(row, col)]
		}
		for row := 0; row < c.P.R; row++ {
			var acc uint16
			for k := 0; k < c.P.R; k++ {
				acc ^= c.Field.Mul(c.mix[row][k], in[k])
			}
			state[c.idx(row, col)] = acc
		}
	}
}

func xorInto(dst, src []uint16) {
	for i := range dst {
		dst[i] ^= src[i]
	}
}

// ExpandKey derives the n+1 subkeys from the master key (r·c elements
// each), with an AES-style schedule: the first column of subkey i is the
// previous subkey's first column XOR S(rot(last column)) XOR rcon, and
// each later column chains from the one before it.
func (c *Cipher) ExpandKey(key []uint16) [][]uint16 {
	p := c.P
	subkeys := make([][]uint16, p.N+1)
	subkeys[0] = append([]uint16(nil), key...)
	for i := 1; i <= p.N; i++ {
		prev := subkeys[i-1]
		next := make([]uint16, p.Elements())
		rcon := c.Field.Pow(2, i-1)
		// First column.
		for row := 0; row < p.R; row++ {
			rot := prev[c.idx((row+1)%p.R, p.C-1)]
			next[c.idx(row, 0)] = prev[c.idx(row, 0)] ^ c.SBox.Apply(rot)
			if row == 0 {
				next[c.idx(row, 0)] ^= rcon
			}
		}
		// Remaining columns.
		for col := 1; col < p.C; col++ {
			for row := 0; row < p.R; row++ {
				next[c.idx(row, col)] = next[c.idx(row, col-1)] ^ prev[c.idx(row, col)]
			}
		}
		subkeys[i] = next
	}
	return subkeys
}

// Trace captures the intermediate values of an encryption: the S-box
// inputs and outputs per round, and the key-schedule S-box outputs —
// the witness for the ANF encoding's auxiliary variables.
type Trace struct {
	SubKeys  [][]uint16 // n+1 subkeys
	SBoxIn   [][]uint16 // per round, r·c elements
	SBoxOut  [][]uint16
	KSBoxOut [][]uint16 // per round, r elements (rotated last column through S)
	Cipher   []uint16
}

// EncryptTrace encrypts plain under key and records the full trace.
func (c *Cipher) EncryptTrace(plain, key []uint16) *Trace {
	p := c.P
	if len(plain) != p.Elements() || len(key) != p.Elements() {
		panic("sr: wrong block/key length")
	}
	tr := &Trace{SubKeys: c.ExpandKey(key)}
	// Record key-schedule S-box outputs.
	for i := 1; i <= p.N; i++ {
		prev := tr.SubKeys[i-1]
		outs := make([]uint16, p.R)
		for row := 0; row < p.R; row++ {
			outs[row] = c.SBox.Apply(prev[c.idx((row+1)%p.R, p.C-1)])
		}
		tr.KSBoxOut = append(tr.KSBoxOut, outs)
	}
	state := append([]uint16(nil), plain...)
	xorInto(state, tr.SubKeys[0])
	for round := 1; round <= p.N; round++ {
		tr.SBoxIn = append(tr.SBoxIn, append([]uint16(nil), state...))
		c.subBytes(state)
		tr.SBoxOut = append(tr.SBoxOut, append([]uint16(nil), state...))
		c.shiftRows(state)
		c.mixColumns(state)
		xorInto(state, tr.SubKeys[round])
	}
	tr.Cipher = state
	return tr
}

// Encrypt returns the ciphertext only.
func (c *Cipher) Encrypt(plain, key []uint16) []uint16 {
	return c.EncryptTrace(plain, key).Cipher
}

// RandomBlock draws a uniform block.
func (c *Cipher) RandomBlock(rng *rand.Rand) []uint16 {
	out := make([]uint16, c.P.Elements())
	for i := range out {
		out[i] = uint16(rng.Intn(c.Field.Order()))
	}
	return out
}
