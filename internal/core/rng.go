package core

import "math/rand"

// NewRNG is the single constructor for the engine's random generators:
// every *rand.Rand used by XL sub-sampling, ElimLin and the snapshot
// pipeline derives from Config.Seed (or a value deterministically derived
// from it, such as a per-technique stream seed), so a run is reproducible
// from the recorded seed alone. The determinism analyzer
// (cmd/bosphoruslint) rejects rand.New/rand.NewSource calls anywhere else
// in internal/core, and rejects the global math/rand source everywhere.
func NewRNG(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}
