package core

import (
	"context"
	"math/rand"

	"repro/internal/anf"
)

// ElimLinConfig parameterizes ElimLin (§II-C).
type ElimLinConfig struct {
	// M bounds the linearized size of the subsampled system, as in XL.
	M int
	// MaxRounds caps the GJE–substitute iterations (a safety valve; the
	// algorithm terminates when no linear equations remain).
	MaxRounds int
	// Workers is the fan-out for the GF(2) elimination kernel (≤ 1 =
	// sequential). The result is identical for every value.
	Workers int
	// Context, when non-nil, cancels the run: RunElimLin polls it at every
	// GJE–substitute round boundary and returns the facts learnt so far.
	// A nil Context never cancels.
	Context context.Context
	// Rand drives the subsampling.
	Rand *rand.Rand
}

// DefaultElimLinConfig mirrors the paper's settings with the scaled M.
func DefaultElimLinConfig(rng *rand.Rand) ElimLinConfig {
	return ElimLinConfig{M: 20, MaxRounds: 64, Rand: rng}
}

// RunElimLin performs the ElimLin algorithm on a random subset of the
// system and returns the linear equations learnt across all rounds. The
// input system is not modified; substitutions happen on a working copy.
func RunElimLin(sys *anf.System, cfg ElimLinConfig) []anf.Poly {
	if cfg.MaxRounds <= 0 {
		cfg.MaxRounds = 64
	}
	work := subsample(sys, cfg.M, cfg.Rand)
	if len(work) == 0 {
		return nil
	}
	var scratch elimScratch
	var learnt []anf.Poly
	for round := 0; round < cfg.MaxRounds; round++ {
		// A cancelled run returns what it has: learnt facts are valid the
		// moment the GJE round that produced them finishes, so partial
		// results are still sound to propagate.
		if ctxCanceled(cfg.Context) {
			return learnt
		}
		// Step (1): GJE on the linearization.
		reduced := gjeRowsWorkers(work, cfg.Workers)
		// Step (2): gather the linear equations.
		var linear []anf.Poly
		var rest []anf.Poly
		for _, p := range reduced {
			switch {
			case p.IsZero():
			case p.IsLinear():
				linear = append(linear, p)
			default:
				rest = append(rest, p)
			}
		}
		if len(linear) == 0 {
			break
		}
		learnt = append(learnt, linear...)
		// Step (3): use each linear equation to eliminate one variable —
		// the variable occurring in the fewest remaining equations.
		for _, l := range linear {
			if l.IsOne() {
				// Contradiction: surface it as a learnt fact and stop.
				return append(learnt, anf.OnePoly())
			}
			vs := l.LinearVars()
			if len(vs) == 0 {
				continue
			}
			v := scratch.pick(vs, rest)
			// Solve l for v: v = l ⊕ v (the rest of the equation).
			rhs := l.Add(anf.VarPoly(v))
			for i, p := range rest {
				rest[i] = p.SubstituteVar(v, rhs)
			}
		}
		work = rest
	}
	return learnt
}

// RunElimLinProv is RunElimLin with provenance: identical subsampling,
// reduction (unique RREF), variable choice and substitution, plus a
// witness per learnt linear equation. Witnesses thread through the rounds:
// a reduced row combines the working polynomials' witnesses per the
// elimination's ops matrix, and substituting v := l ⊕ v into p rewrites p
// to p ⊕ A·l (A the cofactor of v in p), so the working witness gains
// A-scaled copies of l's witness.
func RunElimLinProv(sys *anf.System, cfg ElimLinConfig) []ProvFact {
	if cfg.MaxRounds <= 0 {
		cfg.MaxRounds = 64
	}
	idxs := subsampleIdx(sys, cfg.M, cfg.Rand)
	if len(idxs) == 0 {
		return nil
	}
	slots := polysSlots(sys)
	all := sys.Polys()
	work := make([]anf.Poly, len(idxs))
	wits := make([][]SlotTerm, len(idxs))
	for i, idx := range idxs {
		work[i] = all[idx]
		wits[i] = []SlotTerm{{Mult: anf.OnePoly(), Slot: slots[idx]}}
	}
	var scratch elimScratch
	var learnt []ProvFact
	for round := 0; round < cfg.MaxRounds; round++ {
		if ctxCanceled(cfg.Context) {
			return learnt
		}
		reduced, ops := gjeRowsTracked(work)
		rwits := make([][]SlotTerm, len(reduced))
		for r := range reduced {
			var w []SlotTerm
			for j := range work {
				if ops.Get(r, j) {
					w = append(w, wits[j]...)
				}
			}
			rwits[r] = canonSlotTerms(w)
		}
		var linear []anf.Poly
		var linWits [][]SlotTerm
		var rest []anf.Poly
		var restWits [][]SlotTerm
		for r, p := range reduced {
			switch {
			case p.IsZero():
			case p.IsLinear():
				linear = append(linear, p)
				linWits = append(linWits, rwits[r])
			default:
				rest = append(rest, p)
				restWits = append(restWits, rwits[r])
			}
		}
		if len(linear) == 0 {
			break
		}
		for i, l := range linear {
			learnt = append(learnt, ProvFact{Poly: l, Witness: linWits[i], Note: "gje row"})
		}
		for li, l := range linear {
			if l.IsOne() {
				return append(learnt, ProvFact{Poly: anf.OnePoly(), Witness: linWits[li], Note: "gje contradiction"})
			}
			vs := l.LinearVars()
			if len(vs) == 0 {
				continue
			}
			v := scratch.pick(vs, rest)
			rhs := l.Add(anf.VarPoly(v))
			for i, p := range rest {
				a := cofactor(p, v)
				rest[i] = p.SubstituteVar(v, rhs)
				if !a.IsZero() {
					restWits[i] = canonSlotTerms(scaleSlotTerms(restWits[i], linWits[li], a))
				}
			}
		}
		work = rest
		wits = restWits
	}
	return learnt
}

// elimScratch holds the generation-stamped dense arrays behind the
// eliminate-variable choice, reused across every pick of a RunElimLin
// call so the per-pick cost is one pass over rest with no allocation.
type elimScratch struct {
	cand   []int32 // cand[v] == gen: v is a candidate this pick
	seen   []int32 // seen[v] == tick: v already counted for current poly
	counts []int32 // occurrences of candidate v across rest
	gen    int32
	tick   int32
}

func (s *elimScratch) grow(n int) {
	if n <= len(s.cand) {
		return
	}
	c := make([]int32, n)
	copy(c, s.cand)
	s.cand = c
	sn := make([]int32, n)
	copy(sn, s.seen)
	s.seen = sn
	ct := make([]int32, n)
	copy(ct, s.counts)
	s.counts = ct
}

// pick returns the variable of vs occurring in the fewest polynomials of
// rest (first in vs on ties, matching the sorted order LinearVars
// produces). It counts all candidates in a single occurrence-count pass
// over rest — O(total terms) instead of the O(len(vs) × total terms)
// rescan a per-variable ContainsVar sweep costs.
func (s *elimScratch) pick(vs []anf.Var, rest []anf.Poly) anf.Var {
	if len(vs) == 1 {
		return vs[0]
	}
	s.grow(int(vs[len(vs)-1]) + 1) // vs is sorted ascending
	s.gen++
	for _, v := range vs {
		s.cand[v] = s.gen
		s.counts[v] = 0
	}
	for _, p := range rest {
		s.tick++
		for _, t := range p.Terms() {
			for _, v := range t.Vars() {
				if int(v) < len(s.cand) && s.cand[v] == s.gen && s.seen[v] != s.tick {
					s.seen[v] = s.tick
					s.counts[v]++
				}
			}
		}
	}
	best := vs[0]
	for _, v := range vs[1:] {
		if s.counts[v] < s.counts[best] {
			best = v
		}
	}
	return best
}

// pickElimVar is the standalone form of elimScratch.pick, kept for tests
// and one-off callers.
func pickElimVar(vs []anf.Var, rest []anf.Poly) anf.Var {
	var s elimScratch
	return s.pick(vs, rest)
}
