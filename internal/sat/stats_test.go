package sat

import (
	"strings"
	"testing"
)

func TestSnapshotAndString(t *testing.T) {
	s := New(DefaultOptions(ProfileCMS))
	s.AddFormula(pigeonhole(6, 5))
	s.AddXor(true, 0, 1, 2)
	s.Solve()
	st := s.Snapshot()
	if st.Vars == 0 || st.Clauses == 0 {
		t.Fatalf("empty stats: %+v", st)
	}
	if st.Conflicts == 0 {
		t.Fatal("pigeonhole should conflict")
	}
	if st.XorRows != 1 {
		t.Fatalf("xor rows = %d", st.XorRows)
	}
	out := st.String()
	for _, want := range []string{"vars=", "conflicts=", "xors=1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("stats string missing %q: %s", want, out)
		}
	}
}
