// Package minimize implements two-level Boolean minimization with the
// Quine–McCluskey procedure plus a prime-implicant cover search. It stands
// in for ESPRESSO in the ANF→CNF converter's Karnaugh-map path: Bosphorus
// uses a logic minimizer to emit a near-minimal clause representation of a
// low-arity polynomial instead of the bulkier Tseitin encoding.
//
// Like ESPRESSO, the cover step is heuristic beyond the essential primes
// (greedy set cover), which is fast and near-optimal in practice; an exact
// Petrick-style search is used when the residual problem is tiny.
package minimize

import (
	"fmt"
	"math/bits"
	"sort"
)

// Cube is a product term over n variables: variable i is fixed to bit i of
// Val when bit i of Mask is set, and unconstrained (don't-care) otherwise.
type Cube struct {
	Mask uint32
	Val  uint32
}

// Covers reports whether the cube contains the minterm m.
func (c Cube) Covers(m uint32) bool { return m&c.Mask == c.Val }

// FixedVars returns the number of constrained variables.
func (c Cube) FixedVars() int { return bits.OnesCount32(c.Mask) }

// String renders the cube as a pattern like "1-0-" (variable 0 leftmost).
func (c Cube) String() string {
	if c.Mask == 0 {
		return "-"
	}
	n := 32 - bits.LeadingZeros32(c.Mask)
	out := make([]byte, n)
	for i := 0; i < n; i++ {
		switch {
		case c.Mask>>uint(i)&1 == 0:
			out[i] = '-'
		case c.Val>>uint(i)&1 == 1:
			out[i] = '1'
		default:
			out[i] = '0'
		}
	}
	return string(out)
}

// Minimize returns a small set of cubes whose union is exactly the given
// on-set over n variables (n ≤ 20). Minterms are bit patterns: bit i is
// variable i's value. The result covers every on-set minterm and no
// off-set minterm.
func Minimize(n int, onset []uint32) []Cube {
	if n < 0 || n > 20 {
		panic(fmt.Sprintf("minimize: unsupported variable count %d", n))
	}
	if len(onset) == 0 {
		return nil
	}
	full := uint32(1)<<uint(n) - 1
	// Deduplicate the on-set.
	inOn := map[uint32]bool{}
	var ms []uint32
	for _, m := range onset {
		if m > full {
			panic("minimize: minterm out of range")
		}
		if !inOn[m] {
			inOn[m] = true
			ms = append(ms, m)
		}
	}
	sort.Slice(ms, func(i, j int) bool { return ms[i] < ms[j] })
	if len(ms) == 1<<uint(n) {
		return []Cube{{Mask: 0, Val: 0}} // constant-1 function
	}
	primes := primeImplicants(full, ms)
	return cover(ms, primes)
}

// primeImplicants runs the QM merging passes: cubes differing in exactly
// one fixed bit merge into a cube with that bit free; cubes that never
// merge are prime.
func primeImplicants(full uint32, onset []uint32) []Cube {
	type key struct{ mask, val uint32 }
	current := map[key]bool{} // value: merged into a bigger cube?
	for _, m := range onset {
		current[key{full, m}] = false
	}
	var primes []Cube
	for len(current) > 0 {
		next := map[key]bool{}
		keys := make([]key, 0, len(current))
		for k := range current {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].mask != keys[j].mask {
				return keys[i].mask < keys[j].mask
			}
			return keys[i].val < keys[j].val
		})
		// Try to merge each pair with the same mask differing in one bit.
		byMask := map[uint32][]key{}
		for _, k := range keys {
			byMask[k.mask] = append(byMask[k.mask], k)
		}
		merged := map[key]bool{}
		for _, group := range byMask {
			for i := 0; i < len(group); i++ {
				for j := i + 1; j < len(group); j++ {
					diff := group[i].val ^ group[j].val
					if bits.OnesCount32(diff) != 1 {
						continue
					}
					merged[group[i]] = true
					merged[group[j]] = true
					nk := key{group[i].mask &^ diff, group[i].val &^ diff}
					next[nk] = false
				}
			}
		}
		for _, k := range keys {
			if !merged[k] {
				primes = append(primes, Cube{Mask: k.mask, Val: k.val})
			}
		}
		current = next
	}
	return primes
}

// cover selects a subset of primes covering all minterms: essential primes
// first, then exact search if the residue is tiny, else greedy.
func cover(minterms []uint32, primes []Cube) []Cube {
	coveredBy := make([][]int, len(minterms)) // minterm index -> prime indices
	for pi, p := range primes {
		for mi, m := range minterms {
			if p.Covers(m) {
				coveredBy[mi] = append(coveredBy[mi], pi)
			}
		}
	}
	chosen := map[int]bool{}
	coveredM := make([]bool, len(minterms))
	// Essential primes: sole cover of some minterm.
	for mi := range minterms {
		if len(coveredBy[mi]) == 1 {
			chosen[coveredBy[mi][0]] = true
		}
	}
	markCovered := func() {
		for mi, m := range minterms {
			if coveredM[mi] {
				continue
			}
			for pi := range chosen {
				if primes[pi].Covers(m) {
					coveredM[mi] = true
					break
				}
			}
		}
	}
	markCovered()
	remaining := func() []int {
		var out []int
		for mi := range minterms {
			if !coveredM[mi] {
				out = append(out, mi)
			}
		}
		return out
	}
	if rem := remaining(); len(rem) > 0 {
		if len(rem) <= 16 && len(primes) <= 24 {
			exactCover(minterms, primes, chosen, rem, coveredBy)
		} else {
			greedyCover(minterms, primes, chosen, coveredM)
		}
	}
	out := make([]Cube, 0, len(chosen))
	idxs := make([]int, 0, len(chosen))
	for pi := range chosen {
		idxs = append(idxs, pi)
	}
	sort.Ints(idxs)
	for _, pi := range idxs {
		out = append(out, primes[pi])
	}
	return out
}

// greedyCover repeatedly picks the prime covering the most uncovered
// minterms (larger cubes break ties).
func greedyCover(minterms []uint32, primes []Cube, chosen map[int]bool, coveredM []bool) {
	for {
		best, bestCount, bestFree := -1, 0, -1
		for pi, p := range primes {
			if chosen[pi] {
				continue
			}
			count := 0
			for mi, m := range minterms {
				if !coveredM[mi] && p.Covers(m) {
					count++
				}
			}
			free := 32 - p.FixedVars()
			if count > bestCount || (count == bestCount && count > 0 && free > bestFree) {
				best, bestCount, bestFree = pi, count, free
			}
		}
		if best < 0 || bestCount == 0 {
			return
		}
		chosen[best] = true
		for mi, m := range minterms {
			if primes[best].Covers(m) {
				coveredM[mi] = true
			}
		}
	}
}

// exactCover finds a minimum set of additional primes covering the
// remaining minterms by branch and bound over the (small) residual
// problem, in the spirit of Petrick's method.
func exactCover(minterms []uint32, primes []Cube, chosen map[int]bool, rem []int, coveredBy [][]int) {
	// Candidate primes: those covering at least one remaining minterm.
	candSet := map[int]bool{}
	for _, mi := range rem {
		for _, pi := range coveredBy[mi] {
			if !chosen[pi] {
				candSet[pi] = true
			}
		}
	}
	cands := make([]int, 0, len(candSet))
	for pi := range candSet {
		cands = append(cands, pi)
	}
	sort.Ints(cands)
	// Bitmask over rem for each candidate.
	masks := make([]uint32, len(cands))
	for ci, pi := range cands {
		for ri, mi := range rem {
			if primes[pi].Covers(minterms[mi]) {
				masks[ci] |= 1 << uint(ri)
			}
		}
	}
	target := uint32(1)<<uint(len(rem)) - 1
	bestSel := []int(nil)
	var search func(idx int, cur uint32, sel []int)
	search = func(idx int, cur uint32, sel []int) {
		if cur == target {
			if bestSel == nil || len(sel) < len(bestSel) {
				bestSel = append([]int(nil), sel...)
			}
			return
		}
		if idx >= len(cands) {
			return
		}
		if bestSel != nil && len(sel)+1 >= len(bestSel) {
			return // cannot improve
		}
		// Branch on the first uncovered minterm: try each candidate
		// covering it.
		var first int
		for first = 0; first < len(rem); first++ {
			if cur>>uint(first)&1 == 0 {
				break
			}
		}
		for ci := range cands {
			if masks[ci]>>uint(first)&1 == 1 {
				search(idx+1, cur|masks[ci], append(sel, ci))
			}
		}
	}
	search(0, 0, nil)
	for _, ci := range bestSel {
		chosen[cands[ci]] = true
	}
}
