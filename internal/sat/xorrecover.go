package sat

import (
	"sort"

	"repro/internal/cnf"
)

// RecoverXors detects XOR constraints hidden in clausal form — a parity
// constraint over k variables appears as exactly 2^(k-1) clauses over the
// same variable set, each with the same parity of negations — and returns
// a formula where those clause groups are replaced by native XOR clauses.
// This mirrors CryptoMiniSat's XOR recovery, the step that lets its
// Gauss–Jordan component act on parity-rich CNF inputs (the SAT-2017
// families where the paper's CMS column shines).
//
// Only full groups are converted; partial groups are left as clauses.
// MaxWidth bounds the recovered arity (2^(k-1) grows fast; CMS uses ~6).
func RecoverXors(f *cnf.Formula, maxWidth int) *cnf.Formula {
	if maxWidth < 2 {
		maxWidth = 5
	}
	type group struct {
		vars    []cnf.Var
		clauses []int          // indices into f.Clauses
		masks   map[uint32]int // negation pattern -> clause index
	}
	groups := map[string]*group{}
	keyOf := func(vars []cnf.Var) string {
		b := make([]byte, 0, len(vars)*4)
		for _, v := range vars {
			b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
		}
		return string(b)
	}

	for i, c := range f.Clauses {
		if len(c) < 2 || len(c) > maxWidth {
			continue
		}
		nc, taut := c.Clone().Normalize()
		if taut || len(nc) != len(c) {
			continue // duplicates or tautology: not part of an XOR group
		}
		vars := make([]cnf.Var, len(nc))
		var mask uint32
		for j, l := range nc {
			vars[j] = l.Var()
			if l.Neg() {
				mask |= 1 << uint(j)
			}
		}
		// Distinct variables required (Normalize sorts by literal, which
		// sorts by variable; equal vars would have collapsed or
		// tautologized).
		distinct := true
		for j := 1; j < len(vars); j++ {
			if vars[j] == vars[j-1] {
				distinct = false
				break
			}
		}
		if !distinct {
			continue
		}
		k := keyOf(vars)
		g := groups[k]
		if g == nil {
			g = &group{vars: vars, masks: map[uint32]int{}}
			groups[k] = g
		}
		if _, dup := g.masks[mask]; !dup {
			g.masks[mask] = i
			g.clauses = append(g.clauses, i)
		}
	}

	// A clause with negation pattern m blocks the assignment where every
	// literal is false: variable j takes value mask-bit j. The blocked
	// assignments of an XOR "sum = rhs" are those with parity(values) !=
	// rhs. So a full group has 2^(k-1) clauses whose value-patterns all
	// share one parity; that parity is ¬rhs... the value pattern equals
	// the negation mask itself.
	drop := map[int]bool{}
	out := &cnf.Formula{NumVars: f.NumVars}
	var sortedKeys []string
	for k := range groups {
		sortedKeys = append(sortedKeys, k)
	}
	sort.Strings(sortedKeys)
	for _, k := range sortedKeys {
		g := groups[k]
		n := len(g.vars)
		if len(g.masks) != 1<<uint(n-1) {
			continue
		}
		// All masks must share the same parity.
		wantParity := -1
		ok := true
		for mask := range g.masks {
			p := 0
			for j := 0; j < n; j++ {
				p ^= int(mask >> uint(j) & 1)
			}
			if wantParity < 0 {
				wantParity = p
			} else if wantParity != p {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		// Blocked assignments have parity wantParity, so the constraint is
		// parity(values) = 1 - wantParity, i.e. rhs = wantParity == 0.
		out.AddXor(wantParity == 0, g.vars...)
		for _, ci := range g.clauses {
			drop[ci] = true
		}
	}
	for i, c := range f.Clauses {
		if !drop[i] {
			out.AddClause(c...)
		}
	}
	for _, x := range f.Xors {
		out.AddXor(x.RHS, x.Vars...)
	}
	return out
}
