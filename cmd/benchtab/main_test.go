package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableIOutput(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run([]string{"-table", "1"}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"x1 + 1 = 0", "x2 = 0", "x3 = 0"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Table I output missing %q:\n%s", want, s)
		}
	}
}

func TestFig2Output(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run([]string{"-table", "fig2"}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "6 clauses") || !strings.Contains(s, "11 clauses") {
		t.Fatalf("Fig 2 counts missing:\n%s", s)
	}
}

func TestTableIISmall(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full pipeline matrix")
	}
	var out, errw bytes.Buffer
	// One instance per family with a small timeout: exercises the whole
	// matrix quickly.
	if err := run([]string{"-table", "2", "-count", "1", "-timeout", "1s"}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"MiniSat", "Lingeling", "CryptoMiniSat5", "SR-", "Simon-", "Bitcoin-", "SAT-2017", "w/o"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Table II output missing %q:\n%s", want, s)
		}
	}
}

func TestUnknownTable(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run([]string{"-table", "9"}, &out, &errw); err == nil {
		t.Fatal("unknown table accepted")
	}
}
