package sat

import (
	"math/rand"
	"sync/atomic"
	"time"

	"repro/internal/cnf"
)

type lbool int8

const (
	lUndef lbool = iota
	lTrue
	lFalse
)

func boolToLbool(b bool) lbool {
	if b {
		return lTrue
	}
	return lFalse
}

// watcher pairs a watching clause ref with a blocker literal: if the
// blocker is already true the clause cannot propagate and the watch list
// scan skips it without touching the arena.
type watcher struct {
	ref     ClauseRef
	blocker cnf.Lit
}

// Solver is a CDCL SAT solver. Create one with New, add clauses, then call
// Solve or SolveLimited.
type Solver struct {
	opts Options
	rng  *rand.Rand

	ca      clauseArena // flat clause store; see arena.go
	clauses []ClauseRef // problem clauses (len >= 2)
	learnts []ClauseRef

	watches [][]watcher // indexed by literal

	// Native parity clauses (see parity.go). xwatches is indexed by
	// variable — a parity watch fires on assignment, not falseness — and
	// stays nil until the first parity clause is attached, so purely
	// clausal formulas never pay for the table. parityBuf is the pooled
	// scratch parityLits materializes implied clauses into.
	parities  []ClauseRef
	xwatches  [][]watcher
	parityBuf []cnf.Lit

	assigns  []lbool     // per variable
	level    []int32     // decision level of assignment
	reason   []ClauseRef // implying clause, NullRef for decisions
	polarity []byte      // saved phase (1 = last value was true)
	trail    []cnf.Lit   // assignment stack
	trailLim []int       // decision-level boundaries in trail
	qhead    int         // propagation queue head

	activity []float64
	varInc   float64
	claInc   float64
	order    varHeap

	seen        []byte
	analyzeBuf  []cnf.Lit
	minimizeBuf []cnf.Lit // analyze's pre-minimization snapshot, reused per conflict
	lbdStamp    []int32   // computeLBD level marks (stamp == lbdGen means counted)
	lbdGen      int32
	addBuf      cnf.Clause // AddClause normalization scratch

	gauss *gauss // XOR propagator, nil unless enabled

	ok       bool // false once UNSAT is established at level 0
	model    []lbool
	deadline time.Time

	// Assumption solving (SolveAssuming).
	assumptions   []cnf.Lit
	failedAssumps []cnf.Lit

	// interrupted is set asynchronously by Interrupt and polled by the
	// search loop; solving returns Unknown soon after.
	interrupted atomic.Bool

	// interruptHook, when non-nil, is polled alongside the deadline (every
	// few hundred conflicts and at every restart boundary); returning true
	// stops the solve with Unknown. This is the cancellation plug point the
	// service stack uses to thread context.Context down to the search loop.
	interruptHook func() bool

	// Learnt-fact harvest for Bosphorus (§II-D): all unit facts forced at
	// level 0 and all learnt binary clauses, in learning order.
	learntBinaries []cnf.Clause

	// proof, when non-nil, receives every clause derivation as a DRAT
	// stream (see SetProof); loggedEmpty keeps the UNSAT terminator unique.
	proof       ProofWriter
	loggedEmpty bool

	// exchange, when non-nil, shares learnt clauses with concurrently
	// running solvers (see SetExchange): exports at learning time, imports
	// at restart boundaries only.
	exchange ClauseExchange

	// Statistics.
	Conflicts    uint64
	Decisions    uint64
	Propagations uint64
	Restarts     uint64
	ReducedDBs   uint64
	ArenaGCs     uint64
	WatchShrinks uint64
	// SharedExported / SharedImported count clause-exchange traffic (zero
	// without an exchange; see SetExchange's determinism contract).
	SharedExported uint64
	SharedImported uint64
}

// New returns a solver with the given options and no variables.
func New(opts Options) *Solver {
	s := &Solver{
		opts:   opts,
		rng:    rand.New(rand.NewSource(opts.RandomSeed)),
		varInc: 1,
		claInc: 1,
		ok:     true,
	}
	s.order.s = s
	if opts.EnableGauss {
		s.gauss = newGauss(s)
	}
	return s
}

// NewDefault returns a MiniSat-profile solver.
func NewDefault() *Solver { return New(DefaultOptions(ProfileMiniSat)) }

// NumVars returns the number of variables.
func (s *Solver) NumVars() int { return len(s.assigns) }

// NewVar allocates a fresh variable and returns it.
func (s *Solver) NewVar() cnf.Var {
	v := cnf.Var(len(s.assigns))
	s.assigns = append(s.assigns, lUndef)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, NullRef)
	s.polarity = append(s.polarity, 1) // default to false (MiniSat habit)
	s.activity = append(s.activity, 0)
	s.seen = append(s.seen, 0)
	s.watches = append(s.watches, nil, nil)
	if s.xwatches != nil {
		s.xwatches = append(s.xwatches, nil)
	}
	s.order.insert(v)
	return v
}

// ensureVars grows the variable table to cover n variables.
func (s *Solver) ensureVars(n int) {
	for len(s.assigns) < n {
		s.NewVar()
	}
}

// reserveVars pre-grows every per-variable table to capacity n in a single
// reallocation each, then allocates the variables. Loading a large formula
// through the incremental NewVar path costs a doubling-growth series per
// table; the bulk reserve collapses that to one allocation per table.
func (s *Solver) reserveVars(n int) {
	if n > cap(s.assigns) {
		s.assigns = append(make([]lbool, 0, n), s.assigns...)
		s.level = append(make([]int32, 0, n), s.level...)
		s.reason = append(make([]ClauseRef, 0, n), s.reason...)
		s.polarity = append(make([]byte, 0, n), s.polarity...)
		s.activity = append(make([]float64, 0, n), s.activity...)
		s.seen = append(make([]byte, 0, n), s.seen...)
		s.watches = append(make([][]watcher, 0, 2*n), s.watches...)
		if s.xwatches != nil {
			s.xwatches = append(make([][]watcher, 0, n), s.xwatches...)
		}
		s.trail = append(make([]cnf.Lit, 0, n), s.trail...)
		s.order.heap = append(make([]cnf.Var, 0, n), s.order.heap...)
		s.order.index = append(make([]int, 0, n), s.order.index...)
	}
	s.ensureVars(n)
}

func (s *Solver) valueVar(v cnf.Var) lbool { return s.assigns[v] }

func (s *Solver) valueLit(l cnf.Lit) lbool {
	a := s.assigns[l.Var()]
	if a == lUndef {
		return lUndef
	}
	if l.Neg() {
		if a == lTrue {
			return lFalse
		}
		return lTrue
	}
	return a
}

func (s *Solver) decisionLevel() int { return len(s.trailLim) }

// AddClause adds a problem clause at decision level 0. It returns false if
// the clause (together with earlier ones) makes the formula trivially
// unsatisfiable.
func (s *Solver) AddClause(lits ...cnf.Lit) bool {
	if !s.ok {
		return false
	}
	if s.decisionLevel() != 0 {
		panic("sat: AddClause above decision level 0")
	}
	// Normalize in a reused scratch buffer; every consumer below (arena
	// alloc, proof log, unit enqueue) copies what it keeps, so nothing
	// retains the scratch across calls.
	s.addBuf = append(s.addBuf[:0], lits...)
	c := s.addBuf
	for _, l := range c {
		s.ensureVars(int(l.Var()) + 1)
	}
	c, taut := c.Normalize()
	if taut {
		return true
	}
	// Drop false literals; detect satisfied clauses.
	out := c[:0]
	for _, l := range c {
		switch s.valueLit(l) {
		case lTrue:
			return true
		case lFalse:
			// skip
		default:
			out = append(out, l)
		}
	}
	c = out
	switch len(c) {
	case 0:
		s.ok = false
		s.logEmpty()
		return false
	case 1:
		if !s.enqueue(c[0], NullRef) {
			s.ok = false
			s.logEmpty()
			return false
		}
		if conf := s.propagate(); conf != NullRef {
			s.releaseConflict(conf)
			s.ok = false
			s.logEmpty()
			return false
		}
		return true
	}
	cr := s.ca.alloc(c, false, false)
	s.clauses = append(s.clauses, cr)
	s.attach(cr)
	return true
}

// AddXor adds an XOR constraint. With Options.NativeXor (the default) it
// becomes a native parity clause in the arena — rows longer than
// NativeXorMaxLen still go to the Gauss side-car when that is enabled.
// With NativeXor off the pre-PR-10 routing applies: the Gauss component
// (CMS profile), else the 2^(k-1) clausal cut.
func (s *Solver) AddXor(rhs bool, vars ...cnf.Var) bool {
	if !s.ok {
		return false
	}
	for _, v := range vars {
		s.ensureVars(int(v) + 1)
	}
	if s.opts.NativeXor {
		return s.addXorNative(rhs, vars)
	}
	if s.gauss != nil {
		return s.gauss.addRow(vars, rhs)
	}
	return s.addXorClausal(rhs, vars)
}

// addXorClausal encodes v1 ⊕ ... ⊕ vk = rhs as 2^(k-1) clauses.
func (s *Solver) addXorClausal(rhs bool, vars []cnf.Var) bool {
	// Deduplicate pairs: x ⊕ x = 0.
	counts := map[cnf.Var]int{}
	for _, v := range vars {
		counts[v]++
	}
	var vs []cnf.Var
	for _, v := range vars {
		if counts[v]%2 == 1 {
			vs = append(vs, v)
			counts[v] = 0
		}
	}
	if len(vs) == 0 {
		if rhs {
			s.ok = false
			// 0 = 1: justified by the (inconsistent) input XOR rows.
			s.logJustify(nil)
			return false
		}
		return true
	}
	n := len(vs)
	for mask := 0; mask < 1<<n; mask++ {
		// A clause forbids each assignment with wrong parity: the clause is
		// the negation of the assignment where bit i set means vs[i]=true.
		parity := false
		for i := 0; i < n; i++ {
			if mask>>i&1 == 1 {
				parity = !parity
			}
		}
		if parity == rhs {
			continue // correct parity: allowed
		}
		lits := make([]cnf.Lit, n)
		for i := 0; i < n; i++ {
			lits[i] = cnf.MkLit(vs[i], mask>>i&1 == 1)
		}
		// The enumeration clauses are entailed by the XOR row, not by the
		// formula's clauses, so they enter the proof as justifications.
		s.logJustify(lits)
		if !s.AddClause(lits...) {
			return false
		}
	}
	return true
}

// AddFormula loads a cnf.Formula. Returns false if trivially UNSAT.
func (s *Solver) AddFormula(f *cnf.Formula) bool {
	s.reserveVars(f.NumVars)
	s.reserveWatches(f)
	for _, c := range f.Clauses {
		if !s.AddClause(c...) {
			return false
		}
	}
	for _, x := range f.Xors {
		if !s.AddXor(x.RHS, x.Vars...) {
			return false
		}
	}
	return true
}

// reserveWatches carves initial watch-list capacity for a formula out of
// one flat backing array. Each clause of length ≥ 2 installs two watchers;
// counting every literal's negation over-provisions (attach watches only
// the first two literals after normalization) but turns the tens of
// thousands of first-append list allocations of a bulk load into a single
// one. Lists that outgrow their carve, and literals watched before this
// call, fall back to ordinary slice growth.
func (s *Solver) reserveWatches(f *cnf.Formula) {
	counts := make([]int32, len(s.watches))
	total := 0
	for _, c := range f.Clauses {
		if len(c) < 2 {
			continue
		}
		for _, l := range c {
			if n := l.Not(); int(n) < len(counts) {
				counts[n]++
				total++
			}
		}
	}
	if total == 0 {
		return
	}
	backing := make([]watcher, total)
	off := 0
	for l, cnt := range counts {
		if cnt == 0 || len(s.watches[l]) > 0 {
			off += int(cnt)
			continue
		}
		s.watches[l] = backing[off : off : off+int(cnt)]
		off += int(cnt)
	}
}

func (s *Solver) attach(cr ClauseRef) {
	// Watch the negations: when lits[0] or lits[1] becomes false we must
	// visit the clause.
	lits := s.ca.lits(cr)
	s.watches[lits[0].Not()] = append(s.watches[lits[0].Not()], watcher{cr, lits[1]})
	s.watches[lits[1].Not()] = append(s.watches[lits[1].Not()], watcher{cr, lits[0]})
}

func (s *Solver) detach(cr ClauseRef) {
	lits := s.ca.lits(cr)
	s.removeWatch(lits[0].Not(), cr)
	s.removeWatch(lits[1].Not(), cr)
}

func (s *Solver) removeWatch(l cnf.Lit, cr ClauseRef) {
	ws := s.watches[l]
	for i := range ws {
		if ws[i].ref == cr {
			ws[i] = ws[len(ws)-1]
			s.watches[l] = ws[:len(ws)-1]
			return
		}
	}
}

// enqueue assigns literal l with the given reason. Returns false on an
// immediate conflict with the current assignment.
//
//bosphorus:hotpath trail push on every implied literal
func (s *Solver) enqueue(l cnf.Lit, from ClauseRef) bool {
	switch s.valueLit(l) {
	case lTrue:
		return true
	case lFalse:
		return false
	}
	v := l.Var()
	s.assigns[v] = boolToLbool(!l.Neg())
	s.level[v] = int32(s.decisionLevel())
	s.reason[v] = from
	s.trail = append(s.trail, l)
	return true
}

// cancelUntil backtracks to the given decision level.
//
//bosphorus:hotpath backtracking unwind of the trail
func (s *Solver) cancelUntil(level int) {
	if s.decisionLevel() <= level {
		return
	}
	bound := s.trailLim[level]
	for i := len(s.trail) - 1; i >= bound; i-- {
		l := s.trail[i]
		v := l.Var()
		if s.gauss != nil && i < s.gauss.pos {
			s.gauss.unassign(l)
		}
		if s.opts.PhaseSaving {
			if s.assigns[v] == lTrue {
				s.polarity[v] = 0
			} else {
				s.polarity[v] = 1
			}
		}
		s.assigns[v] = lUndef
		// Gauss reasons are temporaries materialized in the arena; the
		// unassignment is the last point they are reachable, so free them
		// here (a regular clause ref passes the temp check and survives).
		if r := s.reason[v]; r != NullRef && s.ca.temp(r) && !s.ca.dead(r) {
			s.ca.free(r)
		}
		s.reason[v] = NullRef
		s.order.insert(v)
	}
	s.trail = s.trail[:bound]
	s.trailLim = s.trailLim[:level]
	if s.qhead > bound {
		s.qhead = bound
	}
	if s.gauss != nil && s.gauss.pos > bound {
		s.gauss.pos = bound
	}
}

// Value returns the model value of variable v after a Sat result. It
// panics if no model is available.
func (s *Solver) Value(v cnf.Var) bool {
	if s.model == nil {
		panic("sat: Value called without a model")
	}
	return s.model[v] == lTrue
}

// Model returns the satisfying assignment as a bool slice, or nil if the
// last solve did not end in Sat.
func (s *Solver) Model() []bool {
	if s.model == nil {
		return nil
	}
	out := make([]bool, len(s.model))
	for i, a := range s.model {
		out[i] = a == lTrue
	}
	return out
}

// Okay reports whether the solver is still consistent (no UNSAT proven at
// level 0).
func (s *Solver) Okay() bool { return s.ok }

// LearntUnits returns every literal fixed at decision level 0 — the value
// facts Bosphorus harvests (§II-D). Includes units from problem clauses.
func (s *Solver) LearntUnits() []cnf.Lit {
	end := len(s.trail)
	if s.decisionLevel() > 0 {
		end = s.trailLim[0]
	}
	return append([]cnf.Lit(nil), s.trail[:end]...)
}

// LearntBinaries returns the learnt clauses of length 2 in learning order —
// the equivalence-candidate facts Bosphorus harvests (§II-D).
func (s *Solver) LearntBinaries() []cnf.Clause {
	return s.learntBinaries
}

func (s *Solver) bumpVar(v cnf.Var) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	s.order.update(v)
}

func (s *Solver) decayVar() { s.varInc /= s.opts.VarDecay }

func (s *Solver) bumpClause(cr ClauseRef) {
	act := s.ca.activity(cr) + s.claInc
	s.ca.setActivity(cr, act)
	if act > 1e20 {
		for _, lc := range s.learnts {
			s.ca.setActivity(lc, s.ca.activity(lc)*1e-20)
		}
		s.claInc *= 1e-20
	}
}

func (s *Solver) decayClause() { s.claInc /= s.opts.ClauseDecay }
