// Package proof provides checkable correctness artifacts for the whole
// fact-learning stack: DRAT proof logging for the CDCL SAT solver (with a
// justification extension for Gauss/XOR-derived clauses), a from-scratch
// streaming RUP proof checker, and an ANF fact-provenance ledger whose
// records can be independently re-derived against the original system.
//
// Nothing in this package depends on the engine (internal/core); the
// engine depends on it. The SAT solver does not import this package
// either — it declares a small structural logging interface that the
// writers here satisfy, so the logging-off path stays free of any proof
// machinery.
package proof

import (
	"bufio"
	"io"

	"repro/internal/cnf"
)

// Writer receives the solver's proof events. TextWriter and BinaryWriter
// implement it (and, structurally, the solver's logging interface).
//
// The stream is standard DRAT extended with one record kind: Justify marks
// a clause that is not necessarily RUP but is entailed by the input
// formula's XOR constraints (a Gauss/GJE-derived reason or conflict
// clause). The checker verifies those by GF(2) row-space membership
// instead of unit propagation.
type Writer interface {
	// Learn records the addition of a (learnt) clause. An empty or nil
	// clause is the empty clause — the UNSAT terminator.
	Learn(lits []cnf.Lit)
	// Delete records the deletion of a clause (reduceDB, simplification).
	Delete(lits []cnf.Lit)
	// Justify records the addition of an XOR-derived clause.
	Justify(lits []cnf.Lit)
	// Flush drains buffered output. The first write error is sticky and
	// returned here.
	Flush() error
}

// TextWriter emits the human-readable DRAT text form: additions as bare
// DIMACS literal lines, deletions prefixed "d", XOR justifications
// prefixed "x".
type TextWriter struct {
	bw  *bufio.Writer
	err error
}

// NewTextWriter wraps w in a buffered DRAT text writer.
func NewTextWriter(w io.Writer) *TextWriter {
	return &TextWriter{bw: bufio.NewWriter(w)}
}

func (t *TextWriter) line(prefix string, lits []cnf.Lit) {
	if t.err != nil {
		return
	}
	if prefix != "" {
		if _, t.err = t.bw.WriteString(prefix); t.err != nil {
			return
		}
	}
	var buf [12]byte
	for _, l := range lits {
		buf2 := appendInt(buf[:0], l.Dimacs())
		buf2 = append(buf2, ' ')
		if _, t.err = t.bw.Write(buf2); t.err != nil {
			return
		}
	}
	_, t.err = t.bw.WriteString("0\n")
}

// Learn implements Writer.
func (t *TextWriter) Learn(lits []cnf.Lit) { t.line("", lits) }

// Delete implements Writer.
func (t *TextWriter) Delete(lits []cnf.Lit) { t.line("d ", lits) }

// Justify implements Writer.
func (t *TextWriter) Justify(lits []cnf.Lit) { t.line("x ", lits) }

// Flush implements Writer.
func (t *TextWriter) Flush() error {
	if t.err != nil {
		return t.err
	}
	return t.bw.Flush()
}

// appendInt is strconv.AppendInt for small ints without the import weight.
func appendInt(b []byte, v int) []byte {
	if v < 0 {
		b = append(b, '-')
		v = -v
	}
	var tmp [11]byte
	i := len(tmp)
	for {
		i--
		tmp[i] = byte('0' + v%10)
		v /= 10
		if v == 0 {
			break
		}
	}
	return append(b, tmp[i:]...)
}

// BinaryWriter emits the compact binary DRAT form: each record is a tag
// byte ('a' addition, 'd' deletion, 'x' XOR justification) followed by
// the clause's literals as ULEB128 varints and a 0x00 terminator. A
// literal l (cnf encoding 2·var+sign) maps to the unsigned value l+2, so
// 0 stays free as the terminator and var 0 is representable.
type BinaryWriter struct {
	bw  *bufio.Writer
	err error
}

// NewBinaryWriter wraps w in a buffered binary DRAT writer.
func NewBinaryWriter(w io.Writer) *BinaryWriter {
	return &BinaryWriter{bw: bufio.NewWriter(w)}
}

func (b *BinaryWriter) record(tag byte, lits []cnf.Lit) {
	if b.err != nil {
		return
	}
	if b.err = b.bw.WriteByte(tag); b.err != nil {
		return
	}
	var buf [5]byte
	for _, l := range lits {
		n := putUvarint(buf[:], uint32(l)+2)
		if _, b.err = b.bw.Write(buf[:n]); b.err != nil {
			return
		}
	}
	b.err = b.bw.WriteByte(0)
}

// Learn implements Writer.
func (b *BinaryWriter) Learn(lits []cnf.Lit) { b.record('a', lits) }

// Delete implements Writer.
func (b *BinaryWriter) Delete(lits []cnf.Lit) { b.record('d', lits) }

// Justify implements Writer.
func (b *BinaryWriter) Justify(lits []cnf.Lit) { b.record('x', lits) }

// Flush implements Writer.
func (b *BinaryWriter) Flush() error {
	if b.err != nil {
		return b.err
	}
	return b.bw.Flush()
}

func putUvarint(buf []byte, v uint32) int {
	n := 0
	for v >= 0x80 {
		buf[n] = byte(v) | 0x80
		v >>= 7
		n++
	}
	buf[n] = byte(v)
	return n + 1
}
