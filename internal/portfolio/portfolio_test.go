package portfolio

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/cnf"
	"repro/internal/sat"
	"repro/internal/satgen"
)

func TestPortfolioSat(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	inst := satgen.ParityChain(24, 26, 3, true, rng)
	res := Solve(inst.Formula, nil, 10*time.Second)
	if res.Status != sat.Sat {
		t.Fatalf("status %v (winner %s)", res.Status, res.Winner)
	}
	if res.Winner == "" {
		t.Fatal("no winner recorded")
	}
	if !inst.Formula.Eval(func(v cnf.Var) bool { return res.Model[v] }) {
		t.Fatal("winning model does not satisfy the formula")
	}
}

func TestPortfolioUnsat(t *testing.T) {
	inst := satgen.Pigeonhole(7, 6)
	res := Solve(inst.Formula, nil, 10*time.Second)
	if res.Status != sat.Unsat {
		t.Fatalf("status %v", res.Status)
	}
}

func TestPortfolioTrivialUnsat(t *testing.T) {
	f := cnf.NewFormula(1)
	f.AddClause(cnf.MkLit(0, false))
	f.AddClause(cnf.MkLit(0, true))
	res := Solve(f, nil, time.Second)
	if res.Status != sat.Unsat {
		t.Fatalf("status %v", res.Status)
	}
}

func TestPortfolioTimeout(t *testing.T) {
	inst := satgen.Pigeonhole(12, 11) // too hard for 150 ms
	start := time.Now()
	res := Solve(inst.Formula, nil, 150*time.Millisecond)
	if res.Status != sat.Unknown {
		t.Fatalf("status %v", res.Status)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("timeout not honoured")
	}
}

func TestPortfolioCustomWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	inst := satgen.RandomKSAT(30, 3, 4.0, rng)
	workers := []Worker{
		{Name: "a", Options: sat.DefaultOptions(sat.ProfileMiniSat)},
		{Name: "b", Options: sat.DefaultOptions(sat.ProfileCMS)},
	}
	res := Solve(inst.Formula, workers, 10*time.Second)
	if res.Status == sat.Unknown {
		t.Fatal("small instance unsolved")
	}
	if res.Winner != "a" && res.Winner != "b" {
		t.Fatalf("winner %q not a configured worker", res.Winner)
	}
}

// All workers must agree; run several instances and cross-check against a
// single reference solver.
func TestPortfolioAgreesWithReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		inst := satgen.RandomKSAT(24, 3, 4.26, rng)
		ref := sat.New(sat.DefaultOptions(sat.ProfileMiniSat))
		ref.AddFormula(inst.Formula)
		want := ref.Solve()
		res := Solve(inst.Formula, nil, 30*time.Second)
		if res.Status != want {
			t.Fatalf("trial %d: portfolio %v, reference %v", trial, res.Status, want)
		}
	}
}

func TestInterruptLatency(t *testing.T) {
	// Interrupting a hard solve must return promptly.
	inst := satgen.Pigeonhole(12, 11)
	s := sat.New(sat.DefaultOptions(sat.ProfileMiniSat))
	s.AddFormula(inst.Formula)
	done := make(chan sat.Status, 1)
	go func() { done <- s.Solve() }()
	time.Sleep(50 * time.Millisecond)
	s.Interrupt()
	select {
	case st := <-done:
		if st != sat.Unknown {
			t.Fatalf("interrupted solve returned %v", st)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("interrupt did not stop the solver")
	}
}
