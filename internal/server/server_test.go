package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cnf"
	"repro/internal/core"
	"repro/internal/satgen"
)

// easyANF is the worked example from the paper: processing it learns
// facts and simplifies the system in well under a millisecond.
const easyANF = "x1*x2 + x1 + x2\nx1*x3 + x2\nx1 + x3\n"

// hardDimacs returns PHP(n+1, n) as DIMACS text — UNSAT, and
// exponentially hard for a CDCL solver, so a job over it with a huge
// conflict budget only ends by cancellation.
func hardDimacs(t *testing.T, holes int) string {
	t.Helper()
	var sb strings.Builder
	if err := cnf.WriteDimacs(&sb, satgen.Pigeonhole(holes+1, holes).Formula); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Engine.MaxIterations == 0 {
		cfg.Engine = core.DefaultConfig()
	}
	s := New(cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s, ts
}

func postJob(t *testing.T, url string, req Request) (*http.Response, *Response) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(url+"/solve", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatalf("POST /solve: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return resp, nil
	}
	var out Response
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return resp, &out
}

func TestSolveANFJob(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	resp, out := postJob(t, ts.URL, Request{Format: "anf", Input: easyANF, Mode: "solve"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if out.Status != "SAT" && out.Status != "PROCESSED" {
		t.Fatalf("Status = %q", out.Status)
	}
	total := 0
	for _, n := range out.Facts {
		total += n
	}
	if total == 0 {
		t.Fatal("no facts learnt on the paper example")
	}
	if out.ANF == "" {
		t.Fatal("no simplified ANF returned")
	}
}

func TestSolveDimacsPortfolio(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	resp, out := postJob(t, ts.URL, Request{
		Format: "dimacs", Input: hardDimacs(t, 4), Mode: "portfolio", TimeoutMS: 20000,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if out.Status != "UNSAT" {
		t.Fatalf("PHP(5,4) portfolio Status = %q, want UNSAT", out.Status)
	}
	if out.Winner == "" {
		t.Fatal("no winner reported")
	}
}

func TestConcurrentJobsComplete(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 4, QueueSize: 32})
	const n = 16
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Distinct seeds dodge the cache so every job really runs.
			_, out := postJob(t, ts.URL, Request{Format: "anf", Input: easyANF, Seed: int64(i + 1)})
			if out == nil {
				errs <- fmt.Errorf("job %d rejected", i)
			} else if out.Status == "CANCELED" {
				errs <- fmt.Errorf("job %d canceled", i)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := s.Metrics().JobsCompleted.Load(); got != n {
		t.Errorf("JobsCompleted = %d, want %d", got, n)
	}
	if got := s.Metrics().QueueDepth.Load(); got != 0 {
		t.Errorf("QueueDepth = %d after drain of work, want 0", got)
	}
}

// TestCanceledJobFreesWorker is the core acceptance check: a job over an
// exponentially hard instance with an effectively unlimited conflict
// budget gets a short deadline, and the single worker must be free for
// the next job within 2 seconds of the deadline.
func TestCanceledJobFreesWorker(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueSize: 4})
	hard := hardDimacs(t, 9)

	start := time.Now()
	_, out := postJob(t, ts.URL, Request{
		Format: "dimacs", Input: hard, Mode: "solve",
		ConflictBudget: 1 << 40, TimeoutMS: 300,
	})
	if out == nil {
		t.Fatal("hard job rejected")
	}
	if out.Status != "CANCELED" {
		t.Fatalf("hard job Status = %q, want CANCELED", out.Status)
	}
	if wall := time.Since(start); wall > 2*time.Second+300*time.Millisecond {
		t.Fatalf("canceled job held its worker for %s", wall)
	}

	// The freed worker must pick up a fresh job promptly.
	start = time.Now()
	_, out = postJob(t, ts.URL, Request{Format: "anf", Input: easyANF})
	if out == nil || time.Since(start) > 2*time.Second {
		t.Fatalf("worker not freed: follow-up job took %s (resp %+v)", time.Since(start), out)
	}
	if got := s.Metrics().JobsCanceled.Load(); got != 1 {
		t.Errorf("JobsCanceled = %d, want 1", got)
	}
}

func TestQueueFullBackpressure(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueSize: 1})
	hard := hardDimacs(t, 9)
	slow := func(seed int64) Request {
		return Request{
			Format: "dimacs", Input: hard, Mode: "solve",
			ConflictBudget: 1 << 40, TimeoutMS: 3000, Seed: seed,
		}
	}

	// Occupy the worker, then the one queue slot, then overflow.
	var wg sync.WaitGroup
	for i := int64(1); i <= 2; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			postJob(t, ts.URL, slow(seed))
		}(i)
	}
	// Wait until both jobs are admitted (one running, one queued).
	deadline := time.Now().Add(5 * time.Second)
	for s.Metrics().JobsAccepted.Load() < 2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if s.Metrics().JobsAccepted.Load() < 2 {
		t.Fatal("setup jobs never admitted")
	}
	// Give the worker a moment to pull the first job off the queue, so
	// the queue slot is held by the second.
	for s.Metrics().QueueDepth.Load() > 1 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}

	resp, _ := postJob(t, ts.URL, slow(3))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow job status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 response missing Retry-After header")
	}
	if got := s.Metrics().JobsRejected.Load(); got != 1 {
		t.Errorf("JobsRejected = %d, want 1", got)
	}
	wg.Wait()
}

func TestCacheHit(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	req := Request{Format: "anf", Input: easyANF}
	_, first := postJob(t, ts.URL, req)
	if first == nil || first.Cached {
		t.Fatalf("first job: %+v", first)
	}
	// Same problem, different whitespace: normalization must map both to
	// the same cache key.
	req.Input = "x1*x2  +  x1 + x2\n\nx1*x3 + x2\nx1 + x3\n"
	_, second := postJob(t, ts.URL, req)
	if second == nil || !second.Cached {
		t.Fatalf("second job not served from cache: %+v", second)
	}
	if second.Status != first.Status {
		t.Errorf("cached Status = %q, first = %q", second.Status, first.Status)
	}
	if got := s.Metrics().CacheHits.Load(); got != 1 {
		t.Errorf("CacheHits = %d, want 1", got)
	}
}

func TestMetricsCountersMatchJobs(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	const n = 5
	for i := 0; i < n; i++ {
		postJob(t, ts.URL, Request{Format: "anf", Input: easyANF, Seed: int64(i + 1)})
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, want := range []string{
		fmt.Sprintf("bosphorusd_jobs_accepted_total %d", n),
		fmt.Sprintf("bosphorusd_jobs_completed_total %d", n),
		"bosphorusd_jobs_rejected_total 0",
		"bosphorusd_queue_depth 0",
		fmt.Sprintf("bosphorusd_solve_seconds_count %d", n),
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q:\n%s", want, text)
		}
	}
	if !strings.Contains(text, `bosphorusd_facts_learnt_total{technique="propagation"}`) {
		t.Errorf("metrics missing per-technique facts:\n%s", text)
	}
}

func TestBadRequests(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	cases := []struct{ name, body string }{
		{"not json", "{"},
		{"empty input", `{"format":"anf","input":""}`},
		{"bad format", `{"format":"smtlib","input":"x1\n"}`},
		{"bad mode", `{"format":"anf","input":"x1\n","mode":"quantum"}`},
		{"bad anf", `{"format":"anf","input":"x1*y2\n"}`},
		{"bad dimacs", `{"format":"dimacs","input":"p cnf 3\n"}`},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+"/solve", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", tc.name, resp.StatusCode)
		}
	}
	if got := s.Metrics().JobsFailed.Load(); got != int64(len(cases)) {
		t.Errorf("JobsFailed = %d, want %d", got, len(cases))
	}
}

func TestHealthzAndDrain(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d, want 200", resp.StatusCode)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("second Shutdown: %v", err)
	}

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz while draining = %d, want 503", resp.StatusCode)
	}
	post, _ := postJob(t, ts.URL, Request{Format: "anf", Input: easyANF})
	if post.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("solve while draining = %d, want 503", post.StatusCode)
	}
}

func TestLRUCacheEviction(t *testing.T) {
	c := newLRUCache(2)
	c.Put("a", &Response{Status: "A"})
	c.Put("b", &Response{Status: "B"})
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a evicted early")
	}
	c.Put("c", &Response{Status: "C"}) // evicts b (a was just touched)
	if _, ok := c.Get("b"); ok {
		t.Error("b not evicted")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("a evicted")
	}
	if _, ok := c.Get("c"); !ok {
		t.Error("c missing")
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2", c.Len())
	}
	var nilCache *lruCache
	nilCache.Put("x", nil)
	if _, ok := nilCache.Get("x"); ok {
		t.Error("nil cache returned a hit")
	}
}

func TestMetricsRenderShape(t *testing.T) {
	m := NewMetrics()
	m.JobsAccepted.Add(3)
	m.AddFacts("xl", 2)
	m.AddFacts("sat", 5)
	m.AddFacts("xl", 1)
	m.ObserveLatency(7 * time.Millisecond)
	m.ObserveLatency(90 * time.Second) // +Inf bucket
	text := m.Render()
	for _, want := range []string{
		"bosphorusd_jobs_accepted_total 3",
		`bosphorusd_facts_learnt_total{technique="xl"} 3`,
		`bosphorusd_facts_learnt_total{technique="sat"} 5`,
		`bosphorusd_solve_seconds_bucket{le="0.01"} 1`,
		`bosphorusd_solve_seconds_bucket{le="+Inf"} 2`,
		"bosphorusd_solve_seconds_count 2",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("Render missing %q:\n%s", want, text)
		}
	}
}

// verify=true jobs must return the re-derivation tally, credit the proof
// counters in /metrics, and key the cache separately from unverified runs
// of the same input.
func TestVerifyJob(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	resp, out := postJob(t, ts.URL, Request{Format: "anf", Input: easyANF, Mode: "solve", Verify: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if out.Verification == nil {
		t.Fatal("no verification tally on a verify=true job")
	}
	if !out.Verification.OK || out.Verification.Failed != 0 || out.Verification.Unverified != 0 {
		t.Fatalf("verification not clean: %+v", out.Verification)
	}
	if out.Verification.Facts == 0 || out.Verification.Verified != out.Verification.Facts {
		t.Fatalf("tally inconsistent: %+v", out.Verification)
	}

	// Same input without verify must not hit the verified run's cache
	// entry (the tally would silently vanish otherwise).
	_, plain := postJob(t, ts.URL, Request{Format: "anf", Input: easyANF, Mode: "solve"})
	if plain.Cached {
		t.Fatal("verify and non-verify runs share a cache key")
	}
	if plain.Verification != nil {
		t.Fatal("verification tally on a non-verify job")
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var sb strings.Builder
	if _, err := io.Copy(&sb, mresp.Body); err != nil {
		t.Fatal(err)
	}
	body := sb.String()
	if !strings.Contains(body, "bosphorusd_proof_verified_total") {
		t.Fatalf("metrics missing proof_verified counter:\n%s", body)
	}
	if strings.Contains(body, "bosphorusd_proof_verified_total 0\n") {
		t.Fatal("proof_verified counter not credited")
	}
	if !strings.Contains(body, "bosphorusd_proof_failed_total 0") {
		t.Fatal("proof_failed counter should be zero")
	}
}

// verify is meaningless for portfolio jobs (no fact ledger) and must be
// rejected up front.
func TestVerifyPortfolioRejected(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, _ := postJob(t, ts.URL, Request{
		Format: "dimacs", Input: "p cnf 1 1\n1 0\n", Mode: "portfolio", Verify: true,
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
}
