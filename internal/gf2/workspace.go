package gf2

import "sync"

// m4rWorkspace holds the per-call scratch of the M4R elimination kernel:
// the flat backing store of the 2^k combination table, the pivot
// descriptors of the current round, and the per-row lead/mask tracking
// arrays. Eliminations run once per XL/ElimLin round, so the workspaces
// are pooled — a steady-state reduction allocates nothing beyond the
// matrix itself.
type m4rWorkspace struct {
	buf        []uint64 // (1<<k)*stride words of table backing
	tableWidth int      // live words per table row this round (stride - startWord)
	pcWord     []int    // pivot column / 64
	pcBit      []uint   // pivot column % 64
	pcCol      []int32  // pivot columns of the round, ascending
	pcRow      []int32  // row holding each pivot before the block swap
	leads      []int32  // leading column per row; cols = zero-row sentinel
	masks      []uint16 // per-row table index, filled by the blocked apply
}

var m4rPool = sync.Pool{New: func() interface{} { return new(m4rWorkspace) }}

// getM4RWorkspace returns a workspace with room for a 2^k-entry table of
// stride-word rows, k pivot descriptors, and per-row tracking for rows
// rows.
func getM4RWorkspace(stride, k, rows int) *m4rWorkspace {
	ws := m4rPool.Get().(*m4rWorkspace)
	need := (1 << uint(k)) * stride
	if cap(ws.buf) < need {
		ws.buf = make([]uint64, need)
	}
	ws.buf = ws.buf[:need]
	if cap(ws.pcWord) < k {
		ws.pcWord = make([]int, k)
		ws.pcBit = make([]uint, k)
		ws.pcCol = make([]int32, k)
		ws.pcRow = make([]int32, k)
	}
	if cap(ws.leads) < rows {
		ws.leads = make([]int32, rows)
		ws.masks = make([]uint16, rows)
	}
	ws.leads = ws.leads[:rows]
	ws.masks = ws.masks[:rows]
	return ws
}

func putM4RWorkspace(ws *m4rWorkspace) { m4rPool.Put(ws) }

// tableRow returns the mask-th combination row of the workspace table,
// tableWidth words wide (the live suffix of the round).
func (ws *m4rWorkspace) tableRow(mask int) []uint64 {
	tw := ws.tableWidth
	return ws.buf[mask*tw : (mask+1)*tw : (mask+1)*tw]
}

// xorWords XORs src into dst word-by-word. len(src) must be ≥ len(dst).
// The 8-way unrolled body with re-sliced operands compiles to
// bounds-check-free loads; this is the innermost loop of every
// elimination, so the unroll is measurable.
//
//bosphorus:hotpath innermost XOR loop of every elimination
func xorWords(dst, src []uint64) {
	n := len(dst)
	src = src[:n]
	i := 0
	for ; i+8 <= n; i += 8 {
		d := dst[i : i+8 : i+8]
		s := src[i : i+8 : i+8]
		d[0] ^= s[0]
		d[1] ^= s[1]
		d[2] ^= s[2]
		d[3] ^= s[3]
		d[4] ^= s[4]
		d[5] ^= s[5]
		d[6] ^= s[6]
		d[7] ^= s[7]
	}
	for ; i < n; i++ {
		dst[i] ^= src[i]
	}
}
