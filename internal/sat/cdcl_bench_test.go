package sat

import (
	"math/rand"
	"testing"

	"repro/internal/cnf"
	"repro/internal/satgen"
)

// The CDCL hot-path benchmark family (mirrors internal/bench's CDCL jobs,
// expressed as plain go-test benchmarks so `go test -bench CDCL` and the
// check.sh bench smoke cover the solver core). The formula is built once;
// each iteration pays solver construction + clause loading + the full
// search, which is exactly the per-SAT-step cost the Bosphorus loop pays
// every iteration.

func benchSolve(b *testing.B, f *cnf.Formula, profile Profile, want Status) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := New(DefaultOptions(profile))
		if !s.AddFormula(f) {
			if want != Unsat {
				b.Fatal("unexpected load-time UNSAT")
			}
			continue
		}
		if st := s.Solve(); want != Unknown && st != want {
			b.Fatalf("verdict %v, want %v", st, want)
		}
	}
}

// Propagation-heavy family: unit propagation over long watcher lists
// dominates; conflicts are rare.

func BenchmarkCDCLPropagationChain(b *testing.B) {
	f := cnf.NewFormula(20000)
	for i := 0; i+1 < 20000; i++ {
		f.AddClause(cnf.MkLit(cnf.Var(i), true), cnf.MkLit(cnf.Var(i+1), false))
	}
	f.AddClause(cnf.MkLit(0, false))
	benchSolve(b, f, ProfileMiniSat, Sat)
}

func BenchmarkCDCLPropagationLFSR(b *testing.B) {
	f := satgen.LFSRReach(16, 48, false, rand.New(rand.NewSource(11))).Formula
	benchSolve(b, f, ProfileMiniSat, Sat)
}

func BenchmarkCDCLPropagationParity(b *testing.B) {
	f := satgen.ParityChain(96, 80, 3, true, rand.New(rand.NewSource(12))).Formula
	benchSolve(b, f, ProfileMiniSat, Sat)
}

// Conflict-analysis-heavy family: thousands of conflicts, learnt-clause
// churn, reduceDB triggered.

func BenchmarkCDCLConflictPHP(b *testing.B) {
	f := satgen.Pigeonhole(8, 7).Formula
	benchSolve(b, f, ProfileMiniSat, Unsat)
}

func BenchmarkCDCLConflictRand3SAT(b *testing.B) {
	f := satgen.RandomKSAT(170, 3, 4.26, rand.New(rand.NewSource(13))).Formula
	benchSolve(b, f, ProfileMiniSat, Sat)
}

func BenchmarkCDCLConflictChessboard(b *testing.B) {
	f := satgen.MutilatedChessboard(8).Formula
	benchSolve(b, f, ProfileMiniSat, Unsat)
}

// Long-session benchmark: enumerate models with blocking clauses — the
// assume/enumerate workload whose peak watcher capacity the arena GC is
// meant to cap.
func BenchmarkCDCLEnumerate(b *testing.B) {
	f := satgen.GraphColoring(16, 3, 0.18, rand.New(rand.NewSource(14))).Formula
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := New(DefaultOptions(ProfileMiniSat))
		if !s.AddFormula(f) {
			b.Fatal("load-time UNSAT")
		}
		s.EnumerateModels(f.NumVars, 64)
	}
}
