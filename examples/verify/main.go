// Verify: the trust-nothing pipeline through the public API. The program
// solves an UNSAT instance with provenance tracking and proof capture on,
// then (1) re-checks the solver's DRAT certificate with the built-in
// streaming checker and (2) independently re-derives every learnt fact
// against the original system with VerifyFacts — the two halves of the
// answer to "why should I believe this 1 = 0?".
package main

import (
	"fmt"
	"log"
	"strings"

	bosphorus "repro"
)

const unsatPair = `
# Two quadratics differing by the constant 1: their sum is 1 = 0.
x1*x2 + x3
x1*x2 + x3 + 1
`

func main() {
	sys, err := bosphorus.ParseANF(strings.NewReader(unsatPair))
	if err != nil {
		log.Fatal(err)
	}

	opts := bosphorus.DefaultOptions()
	opts.Provenance = true
	opts.EmitProof = true
	res := bosphorus.Solve(sys, opts)
	fmt.Printf("verdict: %v in %d iteration(s)\n", res.Status, res.Iterations)

	// Half one: the SAT certificate, when the solver did the refuting.
	// (Here XL's GJE usually finds the contradiction first, so a missing
	// certificate is normal — the provenance ledger still justifies it.)
	if res.Certificate != nil {
		cr, err := res.Certificate.Check()
		fmt.Printf("DRAT certificate: %d bytes, verified=%v (steps=%d) err=%v\n",
			len(res.Certificate.Proof), cr != nil && cr.Verified, cr.Steps, err)
	} else {
		fmt.Println("DRAT certificate: none (refutation was algebraic, not from the SAT solver)")
	}

	// Half two: re-derive every fact in the ledger from the input alone.
	report := bosphorus.VerifyFacts(sys, res.Provenance, bosphorus.VerifyOptions{})
	fmt.Printf("fact verification: %s\n", report.Summary())
	for _, v := range report.Verdicts {
		rec := res.Provenance.At(v.ID)
		fmt.Printf("  fact %d [%s, iter %d] %s = 0: %v (%s)\n",
			v.ID, v.Technique, v.Iteration, rec.Poly, v.Verdict, v.Detail)
	}
	if !report.AllVerified() {
		log.Fatal("a learnt fact failed verification")
	}
}
