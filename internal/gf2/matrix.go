// Package gf2 provides dense linear algebra over GF(2), the Galois field of
// two elements. It is the reproduction of the role played by the M4RI
// library in Bosphorus: every XL and ElimLin step linearizes a polynomial
// system into a dense Boolean matrix and reduces it with Gauss–Jordan
// elimination.
//
// Matrices are stored row-major with 64 columns packed per machine word, so
// row operations (the inner loop of elimination) are word-parallel XORs. In
// addition to the plain Gauss–Jordan kernel the package implements the
// "Method of the Four Russians" elimination (M4R), the algorithm M4RI is
// named after, which processes pivot blocks of k rows at a time through a
// 2^k-entry combination table.
package gf2

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Matrix is a dense matrix over GF(2). Rows are packed little-endian into
// 64-bit words: column c of row r lives at bit (c % 64) of word c/64.
type Matrix struct {
	rows, cols int
	stride     int // words per row
	data       []uint64
}

// NewMatrix returns a zero matrix with the given dimensions.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("gf2: invalid dimensions %dx%d", rows, cols))
	}
	stride := (cols + wordBits - 1) / wordBits
	return &Matrix{
		rows:   rows,
		cols:   cols,
		stride: stride,
		data:   make([]uint64, rows*stride),
	}
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// Row returns the packed words of row r. The slice aliases the matrix
// storage; callers may mutate it to mutate the row.
func (m *Matrix) Row(r int) []uint64 {
	return m.data[r*m.stride : (r+1)*m.stride : (r+1)*m.stride]
}

// Get returns the bit at (r, c).
func (m *Matrix) Get(r, c int) bool {
	m.check(r, c)
	return m.data[r*m.stride+c/wordBits]>>(uint(c)%wordBits)&1 == 1
}

// Set sets the bit at (r, c) to v.
func (m *Matrix) Set(r, c int, v bool) {
	m.check(r, c)
	w := &m.data[r*m.stride+c/wordBits]
	mask := uint64(1) << (uint(c) % wordBits)
	if v {
		*w |= mask
	} else {
		*w &^= mask
	}
}

// Flip toggles the bit at (r, c).
func (m *Matrix) Flip(r, c int) {
	m.check(r, c)
	m.data[r*m.stride+c/wordBits] ^= uint64(1) << (uint(c) % wordBits)
}

func (m *Matrix) check(r, c int) {
	if r < 0 || r >= m.rows || c < 0 || c >= m.cols {
		panic(fmt.Sprintf("gf2: index (%d,%d) out of %dx%d", r, c, m.rows, m.cols))
	}
}

// Clone returns a deep copy of the matrix.
func (m *Matrix) Clone() *Matrix {
	n := &Matrix{rows: m.rows, cols: m.cols, stride: m.stride}
	n.data = append([]uint64(nil), m.data...)
	return n
}

// SwapRows exchanges rows i and j.
func (m *Matrix) SwapRows(i, j int) {
	if i == j {
		return
	}
	ri, rj := m.Row(i), m.Row(j)
	for w := range ri {
		ri[w], rj[w] = rj[w], ri[w]
	}
}

// AddRowTo XORs row src into row dst (dst += src over GF(2)).
func (m *Matrix) AddRowTo(src, dst int) {
	rs, rd := m.Row(src), m.Row(dst)
	for w := range rd {
		rd[w] ^= rs[w]
	}
}

// AddRowFrom XORs the packed words src into row dst (dst += src over
// GF(2)). src must have at least stride words; extra words are ignored.
// This is the word-level hook the elimination kernels use to apply
// combination-table rows without materializing per-round slices.
func (m *Matrix) AddRowFrom(dst int, src []uint64) {
	xorWords(m.Row(dst), src)
}

// lastWordMask returns the mask of valid bits in the final word of a row
// with the given positive column count (all ones when cols is a multiple
// of 64).
func lastWordMask(cols int) uint64 {
	if r := uint(cols) % wordBits; r != 0 {
		return (uint64(1) << r) - 1
	}
	return ^uint64(0)
}

// RowIsZero reports whether row r is all zeros.
func (m *Matrix) RowIsZero(r int) bool {
	for _, w := range m.Row(r) {
		if w != 0 {
			return false
		}
	}
	return true
}

// LeadingCol returns the column of the first set bit in row r, or -1 if the
// row is zero.
func (m *Matrix) LeadingCol(r int) int {
	row := m.Row(r)
	for w, word := range row {
		if word != 0 {
			c := w*wordBits + bits.TrailingZeros64(word)
			if c >= m.cols {
				return -1
			}
			return c
		}
	}
	return -1
}

// PopCountRow returns the number of set bits in row r.
func (m *Matrix) PopCountRow(r int) int {
	n := 0
	for _, w := range m.Row(r) {
		n += bits.OnesCount64(w)
	}
	return n
}

// String renders the matrix as rows of 0/1 characters, for debugging and
// golden tests.
func (m *Matrix) String() string {
	var b strings.Builder
	for r := 0; r < m.rows; r++ {
		for c := 0; c < m.cols; c++ {
			if m.Get(r, c) {
				b.WriteByte('1')
			} else {
				b.WriteByte('0')
			}
		}
		if r != m.rows-1 {
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// Equal reports whether two matrices have identical dimensions and contents.
func (m *Matrix) Equal(o *Matrix) bool {
	if m.rows != o.rows || m.cols != o.cols {
		return false
	}
	for i, w := range m.data {
		if w != o.data[i] {
			return false
		}
	}
	return true
}

// Mul returns the matrix product m·o over GF(2).
func (m *Matrix) Mul(o *Matrix) *Matrix {
	if m.cols != o.rows {
		panic(fmt.Sprintf("gf2: dimension mismatch %dx%d · %dx%d", m.rows, m.cols, o.rows, o.cols))
	}
	p := NewMatrix(m.rows, o.cols)
	for r := 0; r < m.rows; r++ {
		pr := p.Row(r)
		row := m.Row(r)
		for w, word := range row {
			for word != 0 {
				k := w*wordBits + bits.TrailingZeros64(word)
				word &= word - 1
				if k >= m.cols {
					break
				}
				ok := o.Row(k)
				for j := range pr {
					pr[j] ^= ok[j]
				}
			}
		}
	}
	return p
}

// Transpose returns the transpose of m.
func (m *Matrix) Transpose() *Matrix {
	t := NewMatrix(m.cols, m.rows)
	for r := 0; r < m.rows; r++ {
		row := m.Row(r)
		for w, word := range row {
			for word != 0 {
				c := w*wordBits + bits.TrailingZeros64(word)
				word &= word - 1
				if c < m.cols {
					t.Set(c, r, true)
				}
			}
		}
	}
	return t
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, true)
	}
	return m
}
