package server

import (
	"container/list"
	"sync"
)

// lruCache is a small result cache keyed by the normalized job key. Only
// completed (non-cancelled, non-failed) results are stored, so a cached
// entry is always a full answer for its inputs.
type lruCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recent; values are *lruEntry
	byKey map[string]*list.Element
}

type lruEntry struct {
	key string
	val *Response
}

func newLRUCache(capacity int) *lruCache {
	return &lruCache{cap: capacity, order: list.New(), byKey: make(map[string]*list.Element)}
}

// Get returns the cached response and moves it to the front.
func (c *lruCache) Get(key string) (*Response, bool) {
	if c == nil || c.cap <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// Put stores a response, evicting the least recently used entry past cap.
func (c *lruCache) Put(key string, val *Response) {
	if c == nil || c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		el.Value.(*lruEntry).val = val
		c.order.MoveToFront(el)
		return
	}
	c.byKey[key] = c.order.PushFront(&lruEntry{key: key, val: val})
	for c.order.Len() > c.cap {
		back := c.order.Back()
		c.order.Remove(back)
		delete(c.byKey, back.Value.(*lruEntry).key)
	}
}

// Len reports the number of cached entries.
func (c *lruCache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
