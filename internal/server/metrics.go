package server

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// latencyBuckets are the upper bounds (seconds) of the solve-latency
// histogram, chosen to straddle the service's job-time range: interactive
// preprocessing jobs land in the millisecond buckets, portfolio solves in
// the second ones, and everything at the per-job cap in the last.
var latencyBuckets = []float64{0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60}

// routeBuckets are the upper bounds (nanoseconds) of the fragment-router
// classification-time histogram. Classification is a single linear pass
// plus at most one polynomial solve, so the range is microseconds to a
// few milliseconds even on large residues.
var routeBuckets = []float64{1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9}

// Metrics is the daemon's plain-text counter registry. All fields are
// safe for concurrent use; rendering takes a consistent-enough snapshot
// (counters are monotonic, the gauge is read last).
type Metrics struct {
	JobsAccepted  atomic.Int64 // admitted to the queue
	JobsRejected  atomic.Int64 // turned away with 429 (queue full)
	JobsCompleted atomic.Int64 // ran to a verdict/fixed point
	JobsCanceled  atomic.Int64 // cut short by disconnect or deadline
	JobsFailed    atomic.Int64 // malformed input or internal error
	CacheHits     atomic.Int64 // served from the result cache
	QueueDepth    atomic.Int64 // jobs admitted but not yet picked up
	ProofVerified atomic.Int64 // facts independently re-derived (verify=true jobs)
	ProofFailed   atomic.Int64 // facts that failed or exhausted verification

	// Coordinator-role cube fan-out.
	CubesDispatched atomic.Int64 // tasks handed to worker nodes
	CubeResults     atomic.Int64 // node results received (incl. ignored ones)
	CubesRequeued   atomic.Int64 // tasks put back after an UNKNOWN result
	CubesReaped     atomic.Int64 // tasks re-queued by the lease reaper (dead/silent node)
	CubeJobsActive  atomic.Int64 // cube jobs parked awaiting remote conquest
	// Worker-node role.
	NodeCubesSolved atomic.Int64 // tasks this node settled (SAT or UNSAT)

	mu         sync.Mutex
	facts      map[string]int64 // per-technique facts learnt
	routed     map[string]int64 // per-fragment router verdicts (2sat/horn/antihorn/xor)
	latencyCnt [14]int64        // len(latencyBuckets)+1, last is +Inf
	latencySum float64
	latencyN   int64
	routeCnt   [8]int64 // len(routeBuckets)+1, last is +Inf
	routeSum   float64  // nanoseconds
	routeN     int64
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{facts: make(map[string]int64), routed: make(map[string]int64)}
}

// AddFacts credits n learnt facts to a technique label (xl, elimlin, sat,
// groebner, extra, propagation).
func (m *Metrics) AddFacts(technique string, n int) {
	if n == 0 {
		return
	}
	m.mu.Lock()
	m.facts[technique] += int64(n)
	m.mu.Unlock()
}

// ObserveRoute records one routing-enabled job: the classification time
// in nanoseconds always lands in the route_ns histogram, and a non-empty
// fragment label ("2sat", "horn", "antihorn", "xor") additionally counts
// a routed verdict. fragment is "" when the residue was mixed and the
// job fell through to CDCL.
func (m *Metrics) ObserveRoute(fragment string, ns int64) {
	idx := len(routeBuckets)
	for i, ub := range routeBuckets {
		if float64(ns) <= ub {
			idx = i
			break
		}
	}
	m.mu.Lock()
	if fragment != "" {
		m.routed[fragment]++
	}
	m.routeCnt[idx]++
	m.routeSum += float64(ns)
	m.routeN++
	m.mu.Unlock()
}

// ObserveLatency records one completed solve's wall-clock time.
func (m *Metrics) ObserveLatency(d time.Duration) {
	s := d.Seconds()
	idx := len(latencyBuckets)
	for i, ub := range latencyBuckets {
		if s <= ub {
			idx = i
			break
		}
	}
	m.mu.Lock()
	m.latencyCnt[idx]++
	m.latencySum += s
	m.latencyN++
	m.mu.Unlock()
}

// Render writes the registry in the Prometheus text exposition format
// (counters and one cumulative histogram) — stdlib-only, scrapable, and
// greppable by the smoke tests.
func (m *Metrics) Render() string {
	var b strings.Builder
	count := func(name string, v int64) {
		fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", name, name, v)
	}
	count("bosphorusd_jobs_accepted_total", m.JobsAccepted.Load())
	count("bosphorusd_jobs_rejected_total", m.JobsRejected.Load())
	count("bosphorusd_jobs_completed_total", m.JobsCompleted.Load())
	count("bosphorusd_jobs_canceled_total", m.JobsCanceled.Load())
	count("bosphorusd_jobs_failed_total", m.JobsFailed.Load())
	count("bosphorusd_cache_hits_total", m.CacheHits.Load())
	count("bosphorusd_proof_verified_total", m.ProofVerified.Load())
	count("bosphorusd_proof_failed_total", m.ProofFailed.Load())
	count("bosphorusd_cubes_dispatched_total", m.CubesDispatched.Load())
	count("bosphorusd_cube_results_total", m.CubeResults.Load())
	count("bosphorusd_cubes_requeued_total", m.CubesRequeued.Load())
	count("bosphorusd_cubes_reaped_total", m.CubesReaped.Load())
	count("bosphorusd_node_cubes_solved_total", m.NodeCubesSolved.Load())
	fmt.Fprintf(&b, "# TYPE bosphorusd_queue_depth gauge\nbosphorusd_queue_depth %d\n", m.QueueDepth.Load())
	fmt.Fprintf(&b, "# TYPE bosphorusd_cube_jobs_active gauge\nbosphorusd_cube_jobs_active %d\n", m.CubeJobsActive.Load())

	m.mu.Lock()
	techs := make([]string, 0, len(m.facts))
	for t := range m.facts {
		techs = append(techs, t)
	}
	sort.Strings(techs)
	b.WriteString("# TYPE bosphorusd_facts_learnt_total counter\n")
	for _, t := range techs {
		fmt.Fprintf(&b, "bosphorusd_facts_learnt_total{technique=%q} %d\n", t, m.facts[t])
	}
	frags := make([]string, 0, len(m.routed))
	for f := range m.routed {
		frags = append(frags, f)
	}
	sort.Strings(frags)
	b.WriteString("# TYPE bosphorusd_routed_total counter\n")
	for _, f := range frags {
		fmt.Fprintf(&b, "bosphorusd_routed_total{fragment=%q} %d\n", f, m.routed[f])
	}
	b.WriteString("# TYPE bosphorusd_route_ns histogram\n")
	rcum := int64(0)
	for i, ub := range routeBuckets {
		rcum += m.routeCnt[i]
		fmt.Fprintf(&b, "bosphorusd_route_ns_bucket{le=\"%g\"} %d\n", ub, rcum)
	}
	rcum += m.routeCnt[len(routeBuckets)]
	fmt.Fprintf(&b, "bosphorusd_route_ns_bucket{le=\"+Inf\"} %d\n", rcum)
	fmt.Fprintf(&b, "bosphorusd_route_ns_sum %g\n", m.routeSum)
	fmt.Fprintf(&b, "bosphorusd_route_ns_count %d\n", m.routeN)
	b.WriteString("# TYPE bosphorusd_solve_seconds histogram\n")
	cum := int64(0)
	for i, ub := range latencyBuckets {
		cum += m.latencyCnt[i]
		fmt.Fprintf(&b, "bosphorusd_solve_seconds_bucket{le=\"%g\"} %d\n", ub, cum)
	}
	cum += m.latencyCnt[len(latencyBuckets)]
	fmt.Fprintf(&b, "bosphorusd_solve_seconds_bucket{le=\"+Inf\"} %d\n", cum)
	fmt.Fprintf(&b, "bosphorusd_solve_seconds_sum %g\n", m.latencySum)
	fmt.Fprintf(&b, "bosphorusd_solve_seconds_count %d\n", m.latencyN)
	m.mu.Unlock()
	return b.String()
}
