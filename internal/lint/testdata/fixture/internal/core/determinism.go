// Package core is a lint fixture: its import path ends in internal/core,
// so the determinism and ctxpoll analyzers treat it as a target package.
// Trailing want-comments state the expected diagnostics (see
// lint_test.go); a standalone want-comment line applies to the next line.
package core

import (
	"math/rand"
	"sort"
	"time"
)

// globalRand draws from the process-global math/rand source.
func globalRand() int {
	return rand.Intn(10) // want determinism "global math/rand source"
}

// unroutedRNG constructs a generator without going through NewRNG.
func unroutedRNG(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed)) // want determinism "core.NewRNG" determinism "core.NewRNG"
}

// NewRNG is the one sanctioned constructor; rand.New/NewSource inside it
// are exempt.
func NewRNG(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// wallClock reads the wall clock on a provenance-tracked path.
func wallClock() int64 {
	return time.Now().Unix() // want determinism "time.Now"
}

// suppressedClock carries a reasoned suppression, so no diagnostic.
func suppressedClock() int64 {
	//lint:ignore determinism timing only: feeds Elapsed, never fact ordering
	return time.Now().Unix()
}

// want lint "malformed //lint:ignore directive"
//lint:ignore determinism

// mapOrderFacts lets map iteration order decide the fact order.
func mapOrderFacts(facts map[int]string) []string {
	var out []string
	for _, v := range facts { // want determinism "map iteration order"
		out = append(out, v)
	}
	return out
}

// mapOrderSorted restores a canonical order afterwards, so no diagnostic.
func mapOrderSorted(facts map[int]string) []string {
	var out []string
	for _, v := range facts {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// mapOrderScan neither appends nor calls an ordered sink; counting is
// order-independent, so no diagnostic.
func mapOrderScan(facts map[int]string) int {
	n := 0
	for range facts {
		n++
	}
	return n
}
