package lint

import (
	"go/ast"
	"go/types"
)

// This file is the flow-sensitive half of the engine: a forward abstract-
// interpretation worklist over the CFG in cfg.go, plus intraprocedural
// def/use chains. The abstract domain is deliberately tiny — a bitset per
// local variable with a one-line provenance string — which keeps the
// fixpoint obviously monotone (merge is bitwise OR) and fast enough that
// the whole suite stays well inside the CI lint budget.

// Abstract-value bits. The arenagc analyzer uses all four; future
// analyzers can claim further bits or run their own cell type through the
// same worklist.
const (
	// bitRef: the variable holds a sat.ClauseRef.
	bitRef uint8 = 1 << iota
	// bitView: the variable holds a slice aliasing the arena backing
	// store (a lits() view or something derived from one).
	bitView
	// bitStaleRef: a call that may run the arena GC happened since the
	// ref was obtained.
	bitStaleRef
	// bitStaleView: a call that may grow or compact the arena happened
	// since the view was taken.
	bitStaleView
)

// cell is one variable's abstract value: its bits plus the provenance of
// the most informative taint (used verbatim in diagnostics).
type cell struct {
	bits uint8
	why  string
}

// flowState maps in-scope variables to abstract values.
type flowState map[types.Object]cell

func (s flowState) clone() flowState {
	out := make(flowState, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// mergeInto joins src into dst (bitwise OR per variable) and reports
// whether dst changed. The join keeps the first taint provenance seen —
// any witness path suffices for a may-analysis diagnostic.
func mergeInto(dst, src flowState) bool {
	changed := false
	for obj, sc := range src {
		dc, ok := dst[obj]
		if !ok {
			dst[obj] = sc
			changed = true
			continue
		}
		merged := dc.bits | sc.bits
		if merged != dc.bits {
			why := dc.why
			if why == "" {
				why = sc.why
			}
			dst[obj] = cell{bits: merged, why: why}
			changed = true
		}
	}
	return changed
}

// forwardFixpoint runs the transfer function to a fixpoint over the CFG
// and returns each block's entry state. transfer mutates the state in
// statement order; it must be deterministic and monotone in the state.
func forwardFixpoint(cfg *funcCFG, transfer func(flowState, ast.Stmt)) map[*block]flowState {
	in := map[*block]flowState{cfg.entry: {}}
	work := []*block{cfg.entry}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		st := in[b].clone()
		for _, s := range b.stmts {
			transfer(st, s)
		}
		for _, succ := range b.succs {
			if in[succ] == nil {
				in[succ] = st.clone()
				work = append(work, succ)
			} else if mergeInto(in[succ], st) {
				work = append(work, succ)
			}
		}
	}
	return in
}

// defUse holds one function body's def/use chains: every identifier that
// (re)defines a variable and every identifier that reads one, in source
// order.
type defUse struct {
	defs map[types.Object][]*ast.Ident
	uses map[types.Object][]*ast.Ident
}

// buildDefUse computes def/use chains for a function body. Definitions
// are := / var declarations, plain-assignment left-hand sides, and range
// bindings; everything else referencing a variable is a use.
func buildDefUse(pkg *Package, body ast.Node) *defUse {
	du := &defUse{
		defs: map[types.Object][]*ast.Ident{},
		uses: map[types.Object][]*ast.Ident{},
	}
	// Idents in write position: plain-assignment LHS and range bindings
	// (declaration idents come via Info.Defs already).
	writes := map[*ast.Ident]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if id, ok := unparen(lhs).(*ast.Ident); ok {
					writes[id] = true
				}
			}
		case *ast.RangeStmt:
			for _, e := range []ast.Expr{n.Key, n.Value} {
				if id, ok := unparen(e).(*ast.Ident); ok && e != nil {
					writes[id] = true
				}
			}
		case *ast.IncDecStmt:
			if id, ok := unparen(n.X).(*ast.Ident); ok {
				writes[id] = true
			}
		}
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || id.Name == "_" {
			return true
		}
		if obj, ok := pkg.Info.Defs[id]; ok && obj != nil {
			if _, isVar := obj.(*types.Var); isVar {
				du.defs[obj] = append(du.defs[obj], id)
			}
			return true
		}
		obj, ok := pkg.Info.Uses[id].(*types.Var)
		if !ok {
			return true
		}
		if writes[id] {
			du.defs[obj] = append(du.defs[obj], id)
		} else {
			du.uses[obj] = append(du.uses[obj], id)
		}
		return true
	})
	return du
}

// usedAfter reports whether obj is read at any position after pos.
func (du *defUse) usedAfter(obj types.Object, pos ast.Node) bool {
	for _, u := range du.uses[obj] {
		if u.Pos() > pos.End() {
			return true
		}
	}
	return false
}

// isLocalVar reports whether obj is a function-local variable or
// parameter — something flow analysis can track (not a field, not a
// package-level variable).
func isLocalVar(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return false
	}
	if v.Pkg() == nil || v.Parent() == nil {
		return false
	}
	return v.Parent() != v.Pkg().Scope()
}
