//go:build !pprof

package main

import "net/http"

// withPprof is a no-op in default builds: the daemon exposes no profiling
// endpoints unless compiled with the pprof build tag (see pprof_on.go).
// Keeping the debug surface out of production binaries entirely — not just
// behind a flag — means a misconfigured deployment cannot expose it.
func withPprof(h http.Handler) http.Handler { return h }
