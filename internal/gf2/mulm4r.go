package gf2

// MulM4R returns the product m·o using the Method of the Four Russians
// (M4RM) — the algorithm the M4RI library is named after. The columns of m
// are processed in strips of k bits; for each strip a 2^k-entry table of
// GF(2) combinations of the corresponding k rows of o is built Gray-code
// style (one row XOR per entry), after which every row of the product
// needs only one table lookup and one word-parallel XOR per strip, for an
// O(n³ / log n) total.
func (m *Matrix) MulM4R(o *Matrix) *Matrix {
	if m.cols != o.rows {
		panic("gf2: dimension mismatch in MulM4R")
	}
	p := NewMatrix(m.rows, o.cols)
	if m.cols == 0 || o.cols == 0 || m.rows == 0 {
		return p
	}
	k := m4rK(m.cols, o.cols)
	table := make([][]uint64, 1<<uint(k))
	for strip := 0; strip < m.cols; strip += k {
		kk := k
		if strip+kk > m.cols {
			kk = m.cols - strip
		}
		n := 1 << uint(kk)
		// Build the combination table over rows strip..strip+kk-1 of o.
		table[0] = make([]uint64, o.stride)
		for i := range table[0] {
			table[0][i] = 0
		}
		for mask := 1; mask < n; mask++ {
			low := trailingZeroBit(mask)
			prev := table[mask&(mask-1)]
			row := make([]uint64, o.stride)
			src := o.Row(strip + low)
			for w := range row {
				row[w] = prev[w] ^ src[w]
			}
			table[mask] = row
		}
		for r := 0; r < m.rows; r++ {
			idx := m.extractBits(r, strip, kk)
			if idx == 0 {
				continue
			}
			dst := p.Row(r)
			comb := table[idx]
			for w := range dst {
				dst[w] ^= comb[w]
			}
		}
	}
	return p
}

// extractBits reads kk bits of row r starting at column c as an integer
// (bit 0 = column c).
func (m *Matrix) extractBits(r, c, kk int) int {
	row := m.Row(r)
	w := c / wordBits
	off := uint(c % wordBits)
	v := row[w] >> off
	if off+uint(kk) > wordBits && w+1 < len(row) {
		v |= row[w+1] << (wordBits - off)
	}
	return int(v & (1<<uint(kk) - 1))
}

func trailingZeroBit(x int) int {
	n := 0
	for x&1 == 0 {
		x >>= 1
		n++
	}
	return n
}
