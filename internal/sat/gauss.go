package sat

import (
	"sort"

	"repro/internal/cnf"
	"repro/internal/gf2"
)

// gauss is the XOR-constraint component of the CMS solver profile. At the
// start of each solve it runs Gauss–Jordan elimination over the XOR rows
// (CryptoMiniSat's signature "native GJE"), then during search it keeps a
// per-row count of unassigned variables and the parity of the assigned
// ones, implying the last variable of a row (with an on-the-fly reason
// clause) and detecting parity conflicts.
type gauss struct {
	s    *Solver
	raw  []xorRow // rows as added, before elimination
	rows []*xorRow
	occ  map[cnf.Var][]*xorRow
	pos  int // number of trail literals already observed
	// buf assembles reason/conflict literals before they are copied into
	// the clause arena, so steady-state propagation allocates nothing on
	// the Go heap.
	buf []cnf.Lit
}

type xorRow struct {
	vars        []cnf.Var
	rhs         bool
	nUnassigned int
	parity      bool // XOR of the values of currently assigned vars
}

func newGauss(s *Solver) *gauss {
	return &gauss{s: s, occ: map[cnf.Var][]*xorRow{}}
}

// addRow records an XOR constraint. Duplicate variables cancel in pairs.
// Returns false if the row is the immediate contradiction 0 = 1.
func (g *gauss) addRow(vars []cnf.Var, rhs bool) bool {
	counts := map[cnf.Var]int{}
	for _, v := range vars {
		counts[v]++
	}
	var vs []cnf.Var
	for v, c := range counts {
		if c%2 == 1 {
			vs = append(vs, v)
		}
	}
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	if len(vs) == 0 {
		if rhs {
			g.s.ok = false
			g.s.logJustify(nil)
			return false
		}
		return true
	}
	g.raw = append(g.raw, xorRow{vars: vs, rhs: rhs})
	return true
}

// NumXorRows reports the number of XOR rows currently stored (raw, before
// elimination). Exposed for tests and statistics.
func (s *Solver) NumXorRows() int {
	if s.gauss == nil {
		return 0
	}
	return len(s.gauss.raw)
}

// initialize runs Gauss–Jordan elimination over the raw rows and prepares
// the propagation state. It may enqueue implied units (single-variable
// rows). Returns lFalse if the rows are contradictory by themselves.
func (g *gauss) initialize() lbool {
	g.pos = 0
	g.rows = g.rows[:0]
	g.occ = map[cnf.Var][]*xorRow{}
	if len(g.raw) == 0 {
		g.pos = len(g.s.trail)
		return lTrue
	}
	rows := g.eliminate()
	for _, r := range rows {
		switch len(r.vars) {
		case 0:
			if r.rhs {
				g.s.logJustify(nil)
				return lFalse
			}
		case 1:
			// Unit row: fix the variable at level 0.
			l := cnf.MkLit(r.vars[0], !r.rhs)
			g.s.logJustify([]cnf.Lit{l})
			if g.s.valueLit(l) == lFalse {
				return lFalse
			}
			if !g.s.enqueue(l, NullRef) {
				return lFalse
			}
		default:
			row := &xorRow{vars: r.vars, rhs: r.rhs, nUnassigned: len(r.vars)}
			g.rows = append(g.rows, row)
			for _, v := range row.vars {
				g.occ[v] = append(g.occ[v], row)
			}
		}
	}
	return lUndef
}

// eliminate performs GJE over the raw rows: each variable is a column, and
// the RHS is an extra column. It returns the reduced rows. Very large
// systems (dense work beyond ~2^26 word operations) skip the elimination —
// the rows still propagate, they are just not inter-reduced first, the
// same size guard real CMS applies to its Gaussian component.
func (g *gauss) eliminate() []xorRow {
	// Collect the variable set.
	varSet := map[cnf.Var]int{}
	var vars []cnf.Var
	for _, r := range g.raw {
		for _, v := range r.vars {
			if _, ok := varSet[v]; !ok {
				varSet[v] = len(vars)
				vars = append(vars, v)
			}
		}
	}
	ncols := len(vars)
	if est := uint64(len(g.raw)) * uint64(len(g.raw)) * uint64(ncols/64+1); est > 1<<26 {
		return g.raw
	}
	// Represent each row as a set of column indices plus rhs, and run
	// straightforward GJE keyed on the lowest set column.
	type packed struct {
		bits []uint64
		rhs  bool
	}
	words := gf2.Words(ncols)
	mk := func(r xorRow) packed {
		p := packed{bits: make([]uint64, words), rhs: r.rhs}
		for _, v := range r.vars {
			c := varSet[v]
			gf2.XorBit(p.bits, c)
		}
		return p
	}
	lead := func(p packed) int {
		return gf2.FirstSetBit(p.bits)
	}
	pivots := make(map[int]*packed) // leading column -> row
	var order []int
	for _, r := range g.raw {
		p := mk(r)
		for {
			l := lead(p)
			if l < 0 {
				break
			}
			piv, ok := pivots[l]
			if !ok {
				cp := p
				pivots[l] = &cp
				order = append(order, l)
				break
			}
			for w := range p.bits {
				p.bits[w] ^= piv.bits[w]
			}
			p.rhs = p.rhs != piv.rhs
		}
		if lead(p) < 0 && p.rhs {
			// 0 = 1 row.
			return []xorRow{{rhs: true}}
		}
	}
	// Back-substitute to reduced form.
	sort.Ints(order)
	for i := len(order) - 1; i >= 0; i-- {
		l := order[i]
		piv := pivots[l]
		for _, l2 := range order[:i] {
			p2 := pivots[l2]
			if gf2.TestBit(p2.bits, l) {
				for w := range p2.bits {
					p2.bits[w] ^= piv.bits[w]
				}
				p2.rhs = p2.rhs != piv.rhs
			}
		}
	}
	out := make([]xorRow, 0, len(order))
	for _, l := range order {
		p := pivots[l]
		var vs []cnf.Var
		for c := 0; c < ncols; c++ {
			if gf2.TestBit(p.bits, c) {
				vs = append(vs, vars[c])
			}
		}
		out = append(out, xorRow{vars: vs, rhs: p.rhs})
	}
	return out
}

// advance observes trail literals not yet seen, updating row counters and
// enqueueing implications. It returns a conflict clause if a row's parity
// is violated, plus whether any progress was made.
func (g *gauss) advance() (ClauseRef, bool) {
	progressed := false
	for g.pos < len(g.s.trail) {
		l := g.s.trail[g.pos]
		g.pos++
		progressed = true
		v := l.Var()
		val := !l.Neg()
		// Counter updates must cover the literal's whole occurrence list
		// even when a conflict is found part-way: pos has already advanced
		// past the literal, so backtracking will undo the updates for every
		// row in the list.
		conflict := NullRef
		for _, row := range g.occ[v] {
			row.nUnassigned--
			if val {
				row.parity = !row.parity
			}
			if conflict != NullRef {
				continue
			}
			switch {
			case row.nUnassigned == 0 && row.parity != row.rhs:
				conflict = g.conflictClause(row)
			case row.nUnassigned == 1:
				conflict = g.imply(row)
			}
		}
		if conflict != NullRef {
			return conflict, true
		}
	}
	return NullRef, progressed
}

// imply enqueues the forced value of the single unassigned variable of the
// row, materializing the reason as a temp clause in the arena (freed by
// cancelUntil when the variable unassigns). Returns a conflict clause if
// the forced literal is already false (cannot normally happen, defensive).
func (g *gauss) imply(row *xorRow) ClauseRef {
	var u cnf.Var
	found := false
	for _, v := range row.vars {
		if g.s.assigns[v] == lUndef {
			u = v
			found = true
			break
		}
	}
	if !found {
		return NullRef // raced with this very advance loop; counter catches up
	}
	val := row.rhs != row.parity
	l := cnf.MkLit(u, !val)
	g.buf = append(g.buf[:0], l)
	for _, v := range row.vars {
		if v == u {
			continue
		}
		g.buf = append(g.buf, cnf.MkLit(v, g.s.assigns[v] == lTrue))
	}
	// The reason clause is entailed by the row (vars, rhs), which lies in
	// the span of the input XOR rows — log it so conflict analysis that
	// resolves on it stays checkable.
	g.s.logJustify(g.buf)
	reason := g.s.ca.alloc(g.buf, false, true)
	if g.s.valueLit(l) == lFalse {
		return reason
	}
	g.s.enqueue(l, reason)
	return NullRef
}

// conflictClause materializes the clause forbidding the current (violating)
// assignment of the row's variables: every literal is false right now. The
// clause is an arena temp; the caller of propagate releases it.
func (g *gauss) conflictClause(row *xorRow) ClauseRef {
	g.buf = g.buf[:0]
	for _, v := range row.vars {
		g.buf = append(g.buf, cnf.MkLit(v, g.s.assigns[v] == lTrue))
	}
	g.s.logJustify(g.buf)
	return g.s.ca.alloc(g.buf, false, true)
}

// unassign undoes the counter updates for literal l (called during
// backtracking for literals the component has observed).
func (g *gauss) unassign(l cnf.Lit) {
	v := l.Var()
	val := !l.Neg()
	for _, row := range g.occ[v] {
		row.nUnassigned++
		if val {
			row.parity = !row.parity
		}
	}
}
