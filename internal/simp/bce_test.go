package simp

import (
	"math/rand"
	"testing"

	"repro/internal/cnf"
	"repro/internal/sat"
)

func bceOptions() Options {
	o := DefaultOptions()
	o.EnableBCE = true
	return o
}

func TestBCERemovesBlockedClause(t *testing.T) {
	// (a ∨ b) is blocked on a when every clause with ¬a resolves to a
	// tautology: take (¬a ∨ b). Resolvent on a: (b ∨ b) = (b) — NOT a
	// tautology, so not blocked. Classic blocked example: (a ∨ b),
	// (¬a ∨ ¬b): resolvent (b ∨ ¬b) is tautological, so (a ∨ b) is
	// blocked on a (and on b).
	f := cnf.NewFormula(2)
	f.AddClause(cnf.MkLit(0, false), cnf.MkLit(1, false))
	f.AddClause(cnf.MkLit(0, true), cnf.MkLit(1, true))
	// Disable BVE (MaxOccurrences 0) so BCE sees the clauses first.
	opts := Options{MaxResolventLen: 12, MaxOccurrences: 0, MaxRounds: 3, EnableBCE: true}
	res := Preprocess(f, opts)
	if res.Unsat {
		t.Fatal("unexpected UNSAT")
	}
	if res.Blocked == 0 {
		t.Fatalf("no blocked clauses removed: %s", res)
	}
}

func TestBCEPreservesEquisatisfiability(t *testing.T) {
	rng := rand.New(rand.NewSource(1213))
	for trial := 0; trial < 150; trial++ {
		nVars := 3 + rng.Intn(7)
		nClauses := 2 + rng.Intn(4*nVars)
		f := cnf.NewFormula(nVars)
		for i := 0; i < nClauses; i++ {
			k := 1 + rng.Intn(3)
			var c []cnf.Lit
			for j := 0; j < k; j++ {
				c = append(c, cnf.MkLit(cnf.Var(rng.Intn(nVars)), rng.Intn(2) == 1))
			}
			f.AddClause(c...)
		}
		want := bruteForce(f)
		res := Preprocess(f, bceOptions())
		if res.Unsat {
			if want {
				t.Fatalf("trial %d: SAT formula became UNSAT under BCE", trial)
			}
			continue
		}
		s := sat.NewDefault()
		s.AddFormula(res.Formula)
		st := s.Solve()
		if (st == sat.Sat) != want {
			t.Fatalf("trial %d: want sat=%v, got %v", trial, want, st)
		}
		if st == sat.Sat {
			m := s.Model()
			for len(m) < nVars {
				m = append(m, false)
			}
			full := res.Reconstructor.Extend(m)
			if !f.Eval(func(v cnf.Var) bool { return full[v] }) {
				t.Fatalf("trial %d: BCE reconstruction failed", trial)
			}
		}
	}
}

func TestBCESkipsFrozenVars(t *testing.T) {
	f := cnf.NewFormula(2)
	f.AddClause(cnf.MkLit(0, false), cnf.MkLit(1, false))
	f.AddClause(cnf.MkLit(0, true), cnf.MkLit(1, true))
	f.AddXor(true, 0, 1) // freezes both variables
	res := Preprocess(f, bceOptions())
	if res.Blocked != 0 {
		t.Fatal("clause on frozen variables removed by BCE")
	}
}
