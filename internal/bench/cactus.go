package bench

import (
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/sat"
)

// CactusPoint is one step of a cactus plot: after Time, Solved instances
// are done.
type CactusPoint struct {
	Time   time.Duration
	Solved int
}

// Cactus turns per-instance results into the classic cactus-plot series:
// solved-instance count as a function of per-instance time, instances
// sorted by runtime. Unsolved instances do not appear (they are the
// plateau the curve never reaches).
func Cactus(results []InstanceResult) []CactusPoint {
	var times []time.Duration
	for _, r := range results {
		if r.Verdict != sat.Unknown {
			times = append(times, r.Time)
		}
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	out := make([]CactusPoint, len(times))
	for i, d := range times {
		out[i] = CactusPoint{Time: d, Solved: i + 1}
	}
	return out
}

// WriteCactusCSV emits the series as CSV (seconds, solved) for external
// plotting.
func WriteCactusCSV(w io.Writer, series map[string][]CactusPoint) error {
	if _, err := fmt.Fprintln(w, "config,seconds,solved"); err != nil {
		return err
	}
	var names []string
	for name := range series {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		for _, p := range series[name] {
			if _, err := fmt.Fprintf(w, "%s,%.3f,%d\n", name, p.Time.Seconds(), p.Solved); err != nil {
				return err
			}
		}
	}
	return nil
}

// RunCactus evaluates the jobs under each named configuration and returns
// the cactus series per configuration.
func RunCactus(jobs []Job, configs map[string]Config) map[string][]CactusPoint {
	out := map[string][]CactusPoint{}
	for name, cfg := range configs {
		var results []InstanceResult
		for _, j := range jobs {
			results = append(results, RunInstance(j, cfg))
		}
		out[name] = Cactus(results)
	}
	return out
}
