// Package sat is a lint fixture for the arenaref analyzer: ClauseRef
// offset arithmetic, ref<->integer conversions, and access to the
// clauseArena backing store are legal only in a file named arena.go
// (or its unit test arena_test.go). This file is that file, so every
// raw manipulation below is clean.
package sat

// ClauseRef is a word offset into the arena's backing store.
type ClauseRef uint32

// NullRef is the absent-clause sentinel.
const NullRef = ClauseRef(^uint32(0))

type clauseArena struct {
	data   []uint32
	wasted int
}

func (a *clauseArena) header(r ClauseRef) uint32 { return a.data[r] }

func (a *clauseArena) size(r ClauseRef) int { return int(a.header(r) >> 4) }

// next walks to the following clause: offset arithmetic, fine here.
func (a *clauseArena) next(r ClauseRef) ClauseRef {
	return r + ClauseRef(a.size(r)) + 1
}
