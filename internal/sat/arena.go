package sat

import (
	"math"

	"repro/internal/cnf"
)

// This file is the only place allowed to interpret ClauseRef offsets or the
// arena's header encoding (bosphoruslint's arenaref analyzer enforces it).
// Everything else in the package treats ClauseRef as an opaque handle.
//
// Layout: the arena is one flat []cnf.Lit (cnf.Lit is a uint32, so header
// words are stored type-punned as Lits). A clause at ref r is
//
//	data[r]      header: size<<5 | flags (learnt, reloc, temp, dead, parity)
//	data[r+1..]  learnt only: LBD word, then the float64 activity in two
//	             words (low 32 bits first) — float64, not float32, so the
//	             reduceDB activity tie-breaks stay bit-identical to the
//	             pointer-based seed solver
//	data[r+k..]  the literals, inline (k = 4 learnt, 1 otherwise)
//
// A parity clause (flagParity) stores an XOR constraint in the same
// record shape: its literal words are the constraint's variables with the
// RHS parity folded into the signs — the invariant is that an odd number
// of the stored literals must be true. rhs=1 packs as all-positive
// literals; rhs=0 negates the first one. Negating any single literal
// flips the represented RHS, so the encoding is stable under the watch
// swaps that reorder lits[0..1].
//
// After relocation (GC) the header's reloc flag is set and data[r+1] holds
// the forwarding ref in the new arena; the old literals are garbage. For a
// two-literal problem clause that overwrites lits[0], which is fine: the
// old arena is only ever read through relocate until it is dropped.

// ClauseRef is the word offset of a clause header in the arena. Refs are
// stable between GCs; a GC remaps every live root (watch lists, reason
// slots, the clause lists) and drops the old arena.
type ClauseRef uint32

// NullRef is the absent clause: a decision's reason slot, "no conflict".
const NullRef = ClauseRef(^uint32(0))

const (
	flagLearnt = 1 << 0 // clause carries LBD + activity words
	flagReloc  = 1 << 1 // forwarded: data[r+1] is the new ref
	flagTemp   = 1 << 2 // Gauss reason/conflict: freed when released
	flagDead   = 1 << 3 // freed: words counted in wasted, awaiting GC
	flagParity = 1 << 4 // XOR constraint: odd number of literals true
	flagBits   = 5
	maxSize    = 1<<(32-flagBits) - 1
)

// clauseArena is the flat clause store. The zero value is ready to use.
type clauseArena struct {
	data   []cnf.Lit
	wasted int // words occupied by dead or shrunk-away clauses
}

func (a *clauseArena) header(r ClauseRef) uint32 { return uint32(a.data[r]) }

func (a *clauseArena) size(r ClauseRef) int    { return int(a.header(r) >> flagBits) }
func (a *clauseArena) learnt(r ClauseRef) bool { return a.header(r)&flagLearnt != 0 }
func (a *clauseArena) temp(r ClauseRef) bool   { return a.header(r)&flagTemp != 0 }
func (a *clauseArena) dead(r ClauseRef) bool   { return a.header(r)&flagDead != 0 }

// parity reports whether the record is a native parity clause.
func (a *clauseArena) parity(r ClauseRef) bool { return a.header(r)&flagParity != 0 }

// headerWords returns the number of metadata words before the literals.
func (a *clauseArena) headerWords(r ClauseRef) int {
	if a.header(r)&flagLearnt != 0 {
		return 4
	}
	return 1
}

// lits returns the clause's literals as a view into the arena. The view is
// invalidated by any alloc (append may move the backing array) and by GC —
// never hold one across either.
func (a *clauseArena) lits(r ClauseRef) []cnf.Lit {
	start := int(r) + a.headerWords(r)
	return a.data[start : start+a.size(r) : start+a.size(r)]
}

// alloc copies lits into the arena and returns the new clause's ref.
func (a *clauseArena) alloc(lits []cnf.Lit, learnt, temp bool) ClauseRef {
	if len(lits) > maxSize {
		panic("sat: clause exceeds arena size field")
	}
	r := ClauseRef(len(a.data))
	hdr := uint32(len(lits)) << flagBits
	if learnt {
		hdr |= flagLearnt
	}
	if temp {
		hdr |= flagTemp
	}
	a.data = append(a.data, cnf.Lit(hdr))
	if learnt {
		a.data = append(a.data, 0, 0, 0) // LBD, activity lo, activity hi
	}
	a.data = append(a.data, lits...)
	return r
}

// allocParity copies a packed parity constraint (see the layout comment:
// RHS folded into the literal signs) into the arena as a non-learnt,
// non-temp record carrying the parity flag.
func (a *clauseArena) allocParity(lits []cnf.Lit) ClauseRef {
	r := a.alloc(lits, false, false)
	a.data[r] = cnf.Lit(a.header(r) | flagParity)
	return r
}

func (a *clauseArena) lbd(r ClauseRef) int { return int(uint32(a.data[r+1])) }

func (a *clauseArena) setLBD(r ClauseRef, v int) { a.data[r+1] = cnf.Lit(uint32(v)) }

func (a *clauseArena) activity(r ClauseRef) float64 {
	lo := uint64(uint32(a.data[r+2]))
	hi := uint64(uint32(a.data[r+3]))
	return math.Float64frombits(hi<<32 | lo)
}

func (a *clauseArena) setActivity(r ClauseRef, v float64) {
	bits := math.Float64bits(v)
	a.data[r+2] = cnf.Lit(uint32(bits))
	a.data[r+3] = cnf.Lit(uint32(bits >> 32))
}

// words returns the clause's total footprint (header + literals).
func (a *clauseArena) words(r ClauseRef) int { return a.headerWords(r) + a.size(r) }

// free marks the clause dead and accounts its words as wasted. The data
// stays readable until the next GC, so views taken before the free (e.g.
// a conflict clause being analyzed) remain valid.
func (a *clauseArena) free(r ClauseRef) {
	a.wasted += a.words(r)
	a.data[r] = cnf.Lit(a.header(r) | flagDead)
}

// shrink truncates the clause to its first n literals, accounting the
// dropped tail as wasted (the words become a gap; GC reclaims them).
func (a *clauseArena) shrink(r ClauseRef, n int) {
	old := a.size(r)
	if n >= old {
		return
	}
	a.wasted += old - n
	a.data[r] = cnf.Lit(a.header(r)&(1<<flagBits-1) | uint32(n)<<flagBits)
}

// liveWords is the arena's footprint net of dead/shrunk words — the size
// the next arena needs.
func (a *clauseArena) liveWords() int { return len(a.data) - a.wasted }

// relocate moves the clause into arena `to` (learnt metadata included) and
// leaves a forwarding ref behind, or follows an existing forwarding ref.
// Callers must not pass dead refs.
func (a *clauseArena) relocate(r ClauseRef, to *clauseArena) ClauseRef {
	if a.header(r)&flagReloc != 0 {
		return ClauseRef(a.data[r+1])
	}
	hdr := a.header(r)
	nr := to.alloc(a.lits(r), hdr&flagLearnt != 0, hdr&flagTemp != 0)
	if hdr&flagLearnt != 0 {
		to.setLBD(nr, a.lbd(r))
		to.setActivity(nr, a.activity(r))
	}
	if hdr&flagParity != 0 {
		to.data[nr] = cnf.Lit(to.header(nr) | flagParity)
	}
	a.data[r] = cnf.Lit(hdr | flagReloc)
	a.data[r+1] = cnf.Lit(uint32(nr))
	return nr
}

// Arena GC thresholds: collect when a fifth of the arena is waste
// (MiniSat's garbage_frac), and during a collection rebuild any watch list
// whose capacity is both ≥ watchShrinkCap and ≥ watchShrinkFactor× its
// length — the fix for watcher slices that grew huge during one hot stretch
// (enumeration, a deep restart) and then pinned that capacity forever.
const (
	gcWasteDenom      = 5
	watchShrinkCap    = 16
	watchShrinkFactor = 4
)

// maybeGC runs a garbage collection if enough of the arena is wasted. The
// trigger sites (reduceDB, Simplify, restart boundaries, enumeration
// steps) are all places where no arena views are live.
func (s *Solver) maybeGC() {
	if s.ca.wasted > len(s.ca.data)/gcWasteDenom {
		s.garbageCollect()
	}
}

// garbageCollect compacts the arena: every live clause moves to a fresh
// arena and every root — watch lists, the reason slots of assigned
// variables, the problem/learnt clause lists — is remapped in place, in
// that order, preserving list order (watcher order is search-visible).
// Refs are opaque to the search, so a collection never changes behavior.
func (s *Solver) garbageCollect() {
	to := clauseArena{data: make([]cnf.Lit, 0, s.ca.liveWords())}
	for i := range s.watches {
		ws := s.watches[i]
		for j := range ws {
			ws[j].ref = s.ca.relocate(ws[j].ref, &to)
		}
		if cap(ws) >= watchShrinkCap && cap(ws) >= watchShrinkFactor*len(ws) {
			if len(ws) == 0 {
				s.watches[i] = nil
			} else {
				s.watches[i] = append(make([]watcher, 0, len(ws)), ws...)
			}
			s.WatchShrinks++
		}
	}
	for i := range s.xwatches {
		ws := s.xwatches[i]
		for j := range ws {
			ws[j].ref = s.ca.relocate(ws[j].ref, &to)
		}
		if cap(ws) >= watchShrinkCap && cap(ws) >= watchShrinkFactor*len(ws) {
			if len(ws) == 0 {
				s.xwatches[i] = nil
			} else {
				s.xwatches[i] = append(make([]watcher, 0, len(ws)), ws...)
			}
			s.WatchShrinks++
		}
	}
	// Every assigned variable is on the trail, so the trail covers all live
	// reason slots. A slot can point at a clause Simplify deleted (the seed
	// solver tolerated the dangling pointer at level 0, where reasons are
	// never dereferenced); those must not be resurrected — clear them.
	for _, l := range s.trail {
		v := l.Var()
		if r := s.reason[v]; r != NullRef {
			if s.ca.dead(r) {
				s.reason[v] = NullRef
			} else {
				s.reason[v] = s.ca.relocate(r, &to)
			}
		}
	}
	for i := range s.clauses {
		s.clauses[i] = s.ca.relocate(s.clauses[i], &to)
	}
	for i := range s.learnts {
		s.learnts[i] = s.ca.relocate(s.learnts[i], &to)
	}
	for i := range s.parities {
		s.parities[i] = s.ca.relocate(s.parities[i], &to)
	}
	s.ca = to
	s.ArenaGCs++
}

// releaseConflict frees a temporary (Gauss-materialized) conflict clause
// once analysis is done with it. Regular clause refs pass through
// untouched; temp reasons on the trail are instead freed by cancelUntil.
func (s *Solver) releaseConflict(cr ClauseRef) {
	if cr != NullRef && s.ca.temp(cr) && !s.ca.dead(cr) {
		s.ca.free(cr)
	}
}
