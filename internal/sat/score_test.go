package sat

import (
	"reflect"
	"testing"

	"repro/internal/cnf"
)

func mk(v uint32, neg bool) cnf.Lit { return cnf.MkLit(cnf.Var(v), neg) }

// buildScoreSolver loads a small formula with asymmetric propagation
// structure: an implication chain out of x0, a failed phase on x3, and a
// loose equivalence pair, so the probe scores separate the variables.

func buildScoreSolver(t *testing.T) *Solver {
	t.Helper()
	s := New(DefaultOptions(ProfileMiniSat))
	clauses := [][]cnf.Lit{
		// Chain: x0 → x1 → x2 (positive phase of x0 propagates 2 literals).
		{mk(0, true), mk(1, false)},
		{mk(1, true), mk(2, false)},
		// x3's positive phase fails: x3 → x4 and x3 → ¬x4.
		{mk(3, true), mk(4, false)},
		{mk(3, true), mk(4, true)},
		// x5/x6: a loose pair with one implication each way.
		{mk(5, true), mk(6, false)},
		{mk(6, true), mk(5, false)},
	}
	for _, c := range clauses {
		if !s.AddClause(c...) {
			t.Fatal("fixture unexpectedly unsat")
		}
	}
	return s
}

// The probe scores of a fixed formula are pinned values: any drift in the
// probing or scoring machinery shows up here, which is what the cube
// splitter's determinism rests on.
func TestProbeScoresPinned(t *testing.T) {
	s := buildScoreSolver(t)
	got := s.ProbeScores(0)
	want := []ProbeScore{
		{Var: 0, PosImplied: 2, NegImplied: 0},
		{Var: 1, PosImplied: 1, NegImplied: 1},
		{Var: 2, PosImplied: 0, NegImplied: 2},
		{Var: 3, NegImplied: 0, PosFailed: true},
		{Var: 4, PosImplied: 1, NegImplied: 1},
		{Var: 5, PosImplied: 1, NegImplied: 1},
		{Var: 6, PosImplied: 1, NegImplied: 1},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("scores drifted:\n got %+v\nwant %+v", got, want)
	}
	// Scoring is observational: the trail must be untouched.
	if n := len(s.trail); n != 0 {
		t.Fatalf("probe left %d literals on the trail", n)
	}
	if s.decisionLevel() != 0 {
		t.Fatalf("probe left decision level %d", s.decisionLevel())
	}
	// And repeatable.
	again := s.ProbeScores(0)
	if !reflect.DeepEqual(got, again) {
		t.Fatalf("second run differs:\n%+v\nvs\n%+v", got, again)
	}
}

// A failed phase dominates every fanout product, and the mixing function
// rewards balanced splits over lopsided ones.
func TestProbeScoreOrdering(t *testing.T) {
	failed := ProbeScore{PosFailed: true}
	balanced := ProbeScore{PosImplied: 3, NegImplied: 3}
	lopsided := ProbeScore{PosImplied: 9, NegImplied: 0}
	if failed.Score() <= balanced.Score() {
		t.Fatal("failed phase does not dominate")
	}
	if balanced.Score() <= lopsided.Score() {
		t.Fatal("balanced split does not beat lopsided fanout")
	}
}

func TestProbeScoresUnder(t *testing.T) {
	s := buildScoreSolver(t)
	// Under x3 (whose positive phase fails), the prefix is refuted.
	if _, refuted := s.ProbeScoresUnder([]cnf.Lit{mk(3, false)}, 0); !refuted {
		t.Fatal("prefix with failing literal not refuted")
	}
	if !s.Okay() {
		t.Fatal("refuted prefix must not poison the solver")
	}
	// Under ¬x0 the chain variables x1, x2 stay free and score; x0 is
	// assigned and must not appear.
	scores, refuted := s.ProbeScoresUnder([]cnf.Lit{mk(0, true)}, 0)
	if refuted {
		t.Fatal("consistent prefix reported refuted")
	}
	for _, sc := range scores {
		if sc.Var == 0 {
			t.Fatal("assigned prefix variable was scored")
		}
	}
	if s.decisionLevel() != 0 || len(s.trail) != 0 {
		t.Fatal("ProbeScoresUnder left state behind")
	}
	// Deterministic under the same prefix.
	again, _ := s.ProbeScoresUnder([]cnf.Lit{mk(0, true)}, 0)
	if !reflect.DeepEqual(scores, again) {
		t.Fatalf("scores under prefix drifted:\n%+v\nvs\n%+v", scores, again)
	}
}
