package gf2

import (
	"math/bits"
	"sync"
)

// RREF reduces the matrix in place to reduced row echelon form using plain
// Gauss–Jordan elimination with partial (first-nonzero) pivoting, and
// returns the rank. After the call, pivot rows are sorted by leading column
// and every pivot column has exactly one set bit.
func (m *Matrix) RREF() int {
	rank := 0
	for col := 0; col < m.cols && rank < m.rows; col++ {
		// Find a pivot row at or below rank with a 1 in this column.
		pivot := -1
		for r := rank; r < m.rows; r++ {
			if m.Get(r, col) {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			continue
		}
		m.SwapRows(rank, pivot)
		// Eliminate the column from every other row.
		prow := m.Row(rank)
		for r := 0; r < m.rows; r++ {
			if r == rank || !m.Get(r, col) {
				continue
			}
			row := m.Row(r)
			for w := range row {
				row[w] ^= prow[w]
			}
		}
		rank++
	}
	return rank
}

// RREFTracked reduces the matrix in place to reduced row echelon form
// with the same plain Gauss–Jordan loop as RREF, and additionally returns
// an ops matrix recording the row operations: after the call,
//
//	new_row[r] = XOR over { original_row[j] : ops.Get(r, j) }.
//
// RREF of a matrix is unique, so the reduced rows (and their order — pivot
// rows sorted by leading column, zero rows last) are bit-identical to what
// RREFM4RWorkers produces for the same input; only the run time differs.
// The provenance-tracking elimination paths use this to attribute every
// reduced row to an exact GF(2) combination of input rows.
func (m *Matrix) RREFTracked() (int, *Matrix) {
	ops := Identity(m.rows)
	rank := 0
	for col := 0; col < m.cols && rank < m.rows; col++ {
		pivot := -1
		for r := rank; r < m.rows; r++ {
			if m.Get(r, col) {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			continue
		}
		m.SwapRows(rank, pivot)
		ops.SwapRows(rank, pivot)
		prow := m.Row(rank)
		orow := ops.Row(rank)
		for r := 0; r < m.rows; r++ {
			if r == rank || !m.Get(r, col) {
				continue
			}
			row := m.Row(r)
			for w := range row {
				row[w] ^= prow[w]
			}
			xrow := ops.Row(r)
			for w := range xrow {
				xrow[w] ^= orow[w]
			}
		}
		rank++
	}
	return rank, ops
}

// Rank returns the rank of the matrix without modifying it.
func (m *Matrix) Rank() int {
	return m.Clone().RREF()
}

// m4rK picks the base table width for the M4R kernels: roughly log2 of the
// matrix size, clamped to [1, 8] so tables stay small.
func m4rK(rows, cols int) int {
	n := rows
	if cols < n {
		n = cols
	}
	k := bits.Len(uint(n)) - 2
	if k < 1 {
		k = 1
	}
	if k > 8 {
		k = 8
	}
	return k
}

// m4rKElim is the elimination kernel's table width: the base m4rK choice,
// then narrowed to account for the row stride — a 2^k-entry table of
// stride-word rows must stay within the calibrated outer-cache budget
// (see calibrate.go) or the per-round build cost stops amortizing and the
// blocked application thrashes. Wide-and-short matrices (large stride)
// therefore step k down; square benchmark shapes keep the full width.
func m4rKElim(rows, cols, stride int) int {
	k := m4rK(rows, cols)
	budget := tableBudgetWords()
	for k > 1 && (1<<uint(k))*stride > budget {
		k--
	}
	return k
}

// RREFM4R reduces the matrix in place to reduced row echelon form using the
// Method of the Four Russians and returns the rank. It is the sequential
// form of RREFM4RWorkers.
func (m *Matrix) RREFM4R() int { return m.RREFM4RWorkers(1) }

// minWorkerWords is the minimum number of matrix words a round must touch
// per worker before the kernel fans the table-application sweep out to
// goroutines; below it the per-round synchronization outweighs the XOR
// work.
const minWorkerWords = 8192

// RREFM4RWorkers reduces the matrix in place to reduced row echelon form
// using the Method of the Four Russians and returns the rank. It processes
// up to k pivot columns per round: the k pivot rows are mutually reduced,
// a 2^k-entry table of all their GF(2) combinations is built Gray-code
// style, and every other row is cleared in one table lookup plus one
// word-parallel XOR — the elimination algorithm that gives M4RI its name
// and its O(n³ / log n) behaviour.
//
// Beyond the classic algorithm the kernel keeps three pieces of hot-path
// structure:
//
//   - Per-row lead tracking: the leading column of every unfinished row is
//     maintained across rounds, so pivot selection is one scan of an int32
//     array (the k smallest distinct leads) instead of a per-column probe
//     of the matrix — empty columns cost nothing, which is what makes the
//     wide, sparse XL linearizations cheap.
//   - Skip-zero prefix: every table row is a combination of pivot rows,
//     all of which lead at or after the round's first pivot column, so the
//     build and the application both run over [startWord, stride) only.
//   - Cache blocking: when the live table exceeds the calibrated fast-
//     cache budget (calibrate.go), the application sweep runs in column
//     strips — masks are extracted once per row into a workspace buffer,
//     then each strip of the table is streamed over all rows while it is
//     hot.
//
// The workspace (table, leads, masks) is pooled, so steady-state rounds
// allocate nothing. With workers > 1 the application sweep is split into
// fixed disjoint row strips owned by persistent per-call goroutines that
// are woken once per round; each row's final value is a fixed XOR of table
// entries regardless of scheduling, so the result is bit-identical for
// every worker count.
func (m *Matrix) RREFM4RWorkers(workers int) int {
	if m.rows == 0 || m.cols == 0 || m.stride == 0 {
		return 0
	}
	k := m4rKElim(m.rows, m.cols, m.stride)
	ws := getM4RWorkspace(m.stride, k, m.rows)
	defer putM4RWorkspace(ws)

	for r := 0; r < m.rows; r++ {
		ws.leads[r] = m.leadColFrom(r, 0)
	}

	// Cap the fan-out by the per-round work so small matrices stay on the
	// fast sequential path.
	if limit := m.rows * m.stride / minWorkerWords; workers > limit {
		workers = limit
	}
	var crew *m4rCrew
	if workers > 1 {
		crew = m.startCrew(ws, workers)
		defer crew.stop()
	}

	rank := 0
	for rank < m.rows {
		np := m.gatherPivots(ws, rank, k)
		if np == 0 {
			break
		}
		startWord := int(ws.pcCol[0]) / wordBits
		m.buildTable(ws, rank, np, startWord)
		if crew != nil {
			crew.dispatch(m4rRound{rank: rank, np: np, startWord: startWord})
		} else {
			m.applyRound(ws, rank, np, startWord, 0, m.rows)
		}
		rank += np
	}
	// Pivot gathering takes leads in whatever order the rounds produce
	// them, so finish with a compaction pass that restores canonical RREF
	// row order (pivot rows by leading column, zero rows last).
	m.sortRowsByLeading()
	return rank
}

// leadColFrom returns the leading column of row r scanning from the given
// word, or m.cols when the row has no set bit in a valid column (the
// zero-row sentinel used by the lead-tracking arrays).
func (m *Matrix) leadColFrom(r, fromWord int) int32 {
	row := m.Row(r)
	for w := fromWord; w < len(row); w++ {
		if word := row[w]; word != 0 {
			c := w*wordBits + bits.TrailingZeros64(word)
			if c >= m.cols {
				return int32(m.cols)
			}
			return int32(c)
		}
	}
	return int32(m.cols)
}

// gatherPivots selects the next pivot block: the rows holding the (up to k)
// smallest distinct leading columns among rows ≥ rank, preferring the
// smallest row index per column. The chosen rows are swapped into the
// contiguous block [rank, rank+np) and mutually reduced, and the workspace
// pivot descriptors (pcCol, pcWord, pcBit) are filled in ascending column
// order. Returns the number of pivots gathered; 0 means every remaining
// row is zero.
//
// Rows that share a leading column with a chosen pivot are left alone: the
// round's table application clears their pivot-column bits, and whatever
// lead they reduce to is picked up by a later round. RREF is unique, so
// the final matrix is unaffected by this scheduling choice.
func (m *Matrix) gatherPivots(ws *m4rWorkspace, rank, k int) int {
	np := 0
	for r := rank; r < m.rows; r++ {
		lead := ws.leads[r]
		if int(lead) >= m.cols {
			continue // zero row
		}
		// Full list and lead at or beyond its maximum: cannot improve it.
		if np == k && lead >= ws.pcCol[k-1] {
			continue
		}
		// Insertion position in the (tiny, ≤ k) sorted candidate list.
		pos := np
		dup := false
		for i := 0; i < np; i++ {
			if ws.pcCol[i] == lead {
				dup = true
				break
			}
			if ws.pcCol[i] > lead {
				pos = i
				break
			}
		}
		if dup {
			continue
		}
		if pos == np {
			if np == k {
				continue // larger than every candidate, list full
			}
			ws.pcCol[np] = lead
			ws.pcRow[np] = int32(r)
			np++
			continue
		}
		if np < k {
			np++
		}
		for j := np - 1; j > pos; j-- {
			ws.pcCol[j] = ws.pcCol[j-1]
			ws.pcRow[j] = ws.pcRow[j-1]
		}
		ws.pcCol[pos] = lead
		ws.pcRow[pos] = int32(r)
	}
	// Swap the chosen rows into the block, tracking displaced candidates.
	for i := 0; i < np; i++ {
		src := int(ws.pcRow[i])
		dst := rank + i
		if src != dst {
			m.SwapRows(src, dst)
			ws.leads[src], ws.leads[dst] = ws.leads[dst], ws.leads[src]
			for j := i + 1; j < np; j++ {
				if int(ws.pcRow[j]) == dst {
					ws.pcRow[j] = int32(src)
				}
			}
		}
	}
	// Mutually reduce the block: clear pivot column j from every earlier
	// pivot row. Pivot row j leads at pcCol[j], so the XOR never
	// reintroduces earlier columns and can start at that column's word.
	for j := 1; j < np; j++ {
		cj := int(ws.pcCol[j])
		wj := cj / wordBits
		bj := uint(cj) % wordBits
		rowj := m.Row(rank + j)[wj:]
		for i := 0; i < j; i++ {
			rowi := m.Row(rank + i)
			if rowi[wj]>>bj&1 == 1 {
				xorWords(rowi[wj:], rowj)
			}
		}
	}
	for i := 0; i < np; i++ {
		c := int(ws.pcCol[i])
		ws.pcWord[i] = c / wordBits
		ws.pcBit[i] = uint(c) % wordBits
	}
	return np
}

// buildTable fills the workspace combination table for the current pivot
// block over the live suffix [startWord, stride): table[mask] = XOR of the
// pivot rows whose bit is set in mask, built incrementally (Gray-code
// style) so each entry costs one row XOR.
//
//bosphorus:hotpath M4R combination-table build into the pooled workspace
func (m *Matrix) buildTable(ws *m4rWorkspace, rank, np, startWord int) {
	tw := m.stride - startWord
	ws.tableWidth = tw
	zero := ws.tableRow(0)
	for w := range zero {
		zero[w] = 0
	}
	for mask := 1; mask < 1<<uint(np); mask++ {
		low := bits.TrailingZeros(uint(mask))
		prev := ws.tableRow(mask & (mask - 1))
		row := ws.tableRow(mask)
		pr := m.Row(rank + low)[startWord:]
		for w := range row {
			row[w] = prev[w] ^ pr[w]
		}
	}
}

// applyRound clears the pivot columns from every non-pivot row in [lo, hi):
// the row's bits at the np pivot columns index the combination table, whose
// entry is XORed into the row's live suffix, and the row's tracked lead is
// rescanned. When the live table fits the calibrated fast-cache budget the
// sweep is a single fused pass; otherwise it is column-blocked — masks are
// extracted into the workspace first, then each table strip is streamed
// over all rows of the range while it is cache-resident.
//
//bosphorus:hotpath M4R table-apply sweep
func (m *Matrix) applyRound(ws *m4rWorkspace, rank, np, startWord, lo, hi int) {
	m.fillMasks(ws, rank, np, lo, hi)
	masks := ws.masks
	tw := m.stride - startWord
	if (1<<uint(np))*tw <= fusedTableWords() {
		// Fused: table XOR and lead rescan in one pass per row.
		for r := lo; r < hi; r++ {
			mask := masks[r]
			if mask == 0 {
				continue
			}
			base := r * m.stride
			xorWords(m.data[base+startWord:base+m.stride], ws.tableRow(int(mask)))
			if r >= rank+np {
				ws.leads[r] = m.leadColFrom(r, int(ws.leads[r])/wordBits)
			}
		}
		return
	}
	// Blocked: stream the table strip-by-strip over all rows in range.
	strip := stripWordsFor(np)
	for w0 := startWord; w0 < m.stride; w0 += strip {
		w1 := w0 + strip
		if w1 > m.stride {
			w1 = m.stride
		}
		toff := w0 - startWord
		tend := w1 - startWord
		for r := lo; r < hi; r++ {
			mask := masks[r]
			if mask == 0 {
				continue
			}
			base := r * m.stride
			xorWords(m.data[base+w0:base+w1], ws.tableRow(int(mask))[toff:tend])
		}
	}
	// Final pass: rescan leads of the touched unfinished rows. Bits below
	// the old lead were zero and stay zero (the table's support starts at
	// the first pivot column, which is at or after every candidate's
	// lead), so the rescan starts at the old lead's word.
	r0 := lo
	if r0 < rank+np {
		r0 = rank + np
	}
	for r := r0; r < hi; r++ {
		if masks[r] != 0 {
			ws.leads[r] = m.leadColFrom(r, int(ws.leads[r])/wordBits)
		}
	}
}

// fillMasks extracts every row's table index (bit i = pivot column i) for
// rows in [lo, hi) into ws.masks; the pivot block itself gets 0. The
// common dense case — the round's pivot columns are consecutive — reads
// the index with one or two word loads instead of np scattered probes.
//
//bosphorus:hotpath per-row table-index extraction
func (m *Matrix) fillMasks(ws *m4rWorkspace, rank, np, lo, hi int) {
	masks := ws.masks
	if ws.pcCol[np-1]-ws.pcCol[0] == int32(np-1) {
		c0 := int(ws.pcCol[0])
		w0, off := c0/wordBits, uint(c0)%wordBits
		low := uint64(1)<<uint(np) - 1
		spill := off+uint(np) > wordBits && w0+1 < m.stride
		for r := lo; r < hi; r++ {
			base := r * m.stride
			v := m.data[base+w0] >> off
			if spill {
				v |= m.data[base+w0+1] << (wordBits - off)
			}
			masks[r] = uint16(v & low)
		}
	} else {
		for r := lo; r < hi; r++ {
			base := r * m.stride
			mask := uint16(0)
			for i := 0; i < np; i++ {
				mask |= uint16(m.data[base+ws.pcWord[i]]>>ws.pcBit[i]&1) << uint(i)
			}
			masks[r] = mask
		}
	}
	for r := rank; r < rank+np; r++ {
		if r >= lo && r < hi {
			masks[r] = 0
		}
	}
}

// m4rRound is one round's application job, broadcast to the crew.
type m4rRound struct {
	rank, np, startWord int
}

// m4rCrew is the persistent fan-out of one RREFM4RWorkers call: workers-1
// helper goroutines, each owning a fixed disjoint strip of rows, woken
// once per round through a buffered channel. Row strips touch disjoint
// matrix, mask, and lead ranges, so rounds run lock-free; the per-round
// WaitGroup is the only synchronization.
type m4rCrew struct {
	m      *Matrix
	ws     *m4rWorkspace
	starts []chan m4rRound
	bounds [][2]int // row strip per member; entry 0 is the coordinator's
	wg     sync.WaitGroup
}

// startCrew launches the helper goroutines. Strips are contiguous,
// near-equal row ranges; the coordinator keeps the first strip so the
// calling goroutine contributes instead of idling at the barrier.
func (m *Matrix) startCrew(ws *m4rWorkspace, workers int) *m4rCrew {
	crew := &m4rCrew{m: m, ws: ws}
	chunk := (m.rows + workers - 1) / workers
	for lo := 0; lo < m.rows; lo += chunk {
		hi := lo + chunk
		if hi > m.rows {
			hi = m.rows
		}
		crew.bounds = append(crew.bounds, [2]int{lo, hi})
	}
	for i := 1; i < len(crew.bounds); i++ {
		ch := make(chan m4rRound, 1)
		crew.starts = append(crew.starts, ch)
		b := crew.bounds[i]
		go func() {
			for rd := range ch {
				m.applyRound(ws, rd.rank, rd.np, rd.startWord, b[0], b[1])
				crew.wg.Done()
			}
		}()
	}
	return crew
}

// dispatch runs one round across the crew and returns when every strip is
// done. The coordinator works its own strip between the broadcast and the
// barrier.
func (c *m4rCrew) dispatch(rd m4rRound) {
	c.wg.Add(len(c.starts))
	for _, ch := range c.starts {
		ch <- rd
	}
	b := c.bounds[0]
	c.m.applyRound(c.ws, rd.rank, rd.np, rd.startWord, b[0], b[1])
	c.wg.Wait()
}

// stop releases the helper goroutines.
func (c *m4rCrew) stop() {
	for _, ch := range c.starts {
		close(ch)
	}
}

// sortRowsByLeading reorders rows so leading columns are strictly
// increasing, with zero rows last. Rows in RREF are unique per leading
// column, so a counting placement suffices.
func (m *Matrix) sortRowsByLeading() {
	type rowLead struct{ row, lead int }
	leads := make([]rowLead, m.rows)
	for r := 0; r < m.rows; r++ {
		l := m.LeadingCol(r)
		if l < 0 {
			l = m.cols
		}
		leads[r] = rowLead{r, l}
	}
	// Insertion sort on the lead column; matrices here are small enough and
	// usually nearly sorted already.
	for i := 1; i < len(leads); i++ {
		for j := i; j > 0 && leads[j].lead < leads[j-1].lead; j-- {
			leads[j], leads[j-1] = leads[j-1], leads[j]
			m.SwapRows(leads[j].row, leads[j-1].row)
			leads[j].row, leads[j-1].row = leads[j-1].row, leads[j].row
		}
	}
}

// NullSpace returns a basis of the right null space of m: every returned
// vector v (length Cols) satisfies m·v = 0. The basis vectors are packed
// bit vectors in the same layout as matrix rows.
func (m *Matrix) NullSpace() []*Matrix {
	r := m.Clone()
	r.RREF()
	// Identify pivot columns.
	pivotCol := make([]int, 0, m.rows)
	isPivot := make([]bool, m.cols)
	for row := 0; row < r.rows; row++ {
		c := r.LeadingCol(row)
		if c < 0 {
			break
		}
		pivotCol = append(pivotCol, c)
		isPivot[c] = true
	}
	var basis []*Matrix
	for free := 0; free < m.cols; free++ {
		if isPivot[free] {
			continue
		}
		v := NewMatrix(1, m.cols)
		v.Set(0, free, true)
		for row, pc := range pivotCol {
			if r.Get(row, free) {
				v.Set(0, pc, true)
			}
		}
		basis = append(basis, v)
	}
	return basis
}

// Solve finds one solution x to m·x = b, where b is a column vector given
// as a packed bit slice of length Rows. It returns (x, true) on success and
// (nil, false) if the system is inconsistent. Free variables are set to 0.
func (m *Matrix) Solve(b []bool) ([]bool, bool) {
	if len(b) != m.rows {
		panic("gf2: Solve rhs length mismatch")
	}
	// Build the augmented matrix [m | b]. Row() exposes the packed words,
	// so a caller can have smeared bits past column cols into the source
	// row's final partial word; mask the trailing word after the copy so
	// stale bits cannot land in (or beyond) the augmented column.
	aug := NewMatrix(m.rows, m.cols+1)
	mask := lastWordMask(m.cols)
	for r := 0; r < m.rows; r++ {
		dst := aug.Row(r)
		copy(dst, m.Row(r))
		if m.stride > 0 {
			dst[m.stride-1] &= mask
		}
		aug.Set(r, m.cols, b[r])
	}
	// M4R-accelerated reduction: same echelon form as RREF, an order of
	// magnitude less word work on the large systems the fragment router
	// feeds through here.
	aug.RREFM4R()
	x := make([]bool, m.cols)
	for r := 0; r < aug.rows; r++ {
		lead := aug.LeadingCol(r)
		if lead < 0 {
			break
		}
		if lead == m.cols {
			return nil, false // row 0...0 | 1: inconsistent
		}
		x[lead] = aug.Get(r, m.cols)
	}
	return x, true
}
