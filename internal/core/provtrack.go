package core

import (
	"fmt"
	"sort"

	"repro/internal/anf"
	"repro/internal/proof"
)

// SlotTerm is one summand of a technique-level witness, expressed against
// the system the technique ran on: Mult · (the polynomial in equation slot
// Slot). A negative Slot marks an unattributable source. The propagator
// translates slots into ledger record IDs when the fact batch is merged.
type SlotTerm struct {
	Mult anf.Poly
	Slot int
}

// ProvFact is a learnt fact together with its algebraic witness: the claim
// Poly = Σ Witness[i].Mult · slotPoly(Witness[i].Slot) in the Boolean
// ring. A nil Witness means the producer could not track the derivation
// (SAT-learnt facts, for example); verification then falls back to
// refutation.
type ProvFact struct {
	Poly    anf.Poly
	Witness []SlotTerm
	Note    string
}

// wrapPlain lifts witness-less facts (extra techniques, the Gröbner phase,
// SAT harvests) into ProvFacts.
func wrapPlain(facts []anf.Poly, note string) []ProvFact {
	out := make([]ProvFact, len(facts))
	for i, f := range facts {
		out[i] = ProvFact{Poly: f, Note: note}
	}
	return out
}

// provEq is one link of the provenance-side equivalence forest: the ledger
// record rec justifies v ⊕ next ⊕ neg = 0.
type provEq struct {
	next anf.Var
	neg  bool
	rec  int
}

// provVal records the ledger record justifying v ⊕ b = 0.
type provVal struct {
	b   bool
	rec int
}

// provTracker maintains, alongside the propagator, enough bookkeeping to
// express every learnt fact as an exact polynomial combination of earlier
// ledger records:
//
//   - slotRec[i] is the ledger record whose polynomial equals the current
//     content of system slot i (-1 once the slot is zeroed);
//   - eq mirrors the VarState equivalence forest with one ledger record per
//     merge, lazily path-compressed by composing link records;
//   - val maps determined variables to records for v ⊕ value.
//
// The tracker is only ever touched from the propagator's (sequential)
// merge path; technique runs compute SlotTerm witnesses independently.
type provTracker struct {
	ledger  *proof.Ledger
	slotRec []int
	eq      map[anf.Var]provEq
	val     map[anf.Var]provVal
	tech    string
	iter    int
}

// newProvTracker seeds the ledger with the system's equations and aligns
// slot records. Fresh systems have no zeroed slots (Add skips the zero
// polynomial), so slot i is input record i; the guard keeps the mapping
// right even for a caller that hands in a partially propagated system.
func newProvTracker(sys *anf.System) *provTracker {
	pt := &provTracker{
		ledger: proof.NewLedger(sys),
		eq:     map[anf.Var]provEq{},
		val:    map[anf.Var]provVal{},
		tech:   proof.TechPropagation,
	}
	n := 0
	for i := 0; i < sys.RawLen(); i++ {
		if sys.At(i).IsZero() {
			pt.slotRec = append(pt.slotRec, -1)
		} else {
			pt.slotRec = append(pt.slotRec, n)
			n++
		}
	}
	return pt
}

// setPhase stamps subsequently appended records with a technique label and
// loop iteration.
func (pt *provTracker) setPhase(tech string, iter int) {
	pt.tech = tech
	pt.iter = iter
}

func (pt *provTracker) append(p anf.Poly, w []proof.Term, note string) int {
	return pt.ledger.Append(proof.Record{
		Technique: pt.tech,
		Iteration: pt.iter,
		Poly:      p,
		Witness:   w,
		Note:      note,
	})
}

// cofactor returns A = Σ_{t ∈ p, v ∈ t} t.Without(v): the polynomial with
// p = A·v ⊕ B where B collects the terms free of v. Substituting v := r in
// p yields p ⊕ A·(v ⊕ r) — the identity every substitution witness leans
// on.
func cofactor(p anf.Poly, v anf.Var) anf.Poly {
	var ts []anf.Monomial
	for _, t := range p.Terms() {
		if t.Contains(v) {
			ts = append(ts, t.Without(v))
		}
	}
	return anf.FromMonomials(ts...)
}

// bindingEq returns (root, neg, rec) with rec the ledger record justifying
// v ⊕ root ⊕ neg = 0, composing (and caching) the chain of merge records
// from v to its current representative. rec is -1 when v has no recorded
// chain.
func (pt *provTracker) bindingEq(v anf.Var) (anf.Var, bool, int) {
	e, ok := pt.eq[v]
	if !ok {
		return v, false, -1
	}
	root, neg, rec := e.next, e.neg, e.rec
	var chain []proof.Term
	for {
		e2, ok := pt.eq[root]
		if !ok {
			break
		}
		if len(chain) == 0 {
			chain = append(chain, proof.Term{Mult: anf.OnePoly(), Src: rec})
		}
		chain = append(chain, proof.Term{Mult: anf.OnePoly(), Src: e2.rec})
		root, neg = e2.next, neg != e2.neg
	}
	if len(chain) > 0 {
		p := anf.VarPoly(v).Add(anf.VarPoly(root)).AddConstant(neg)
		rec = pt.append(p, chain, "equivalence chain")
		pt.eq[v] = provEq{next: root, neg: neg, rec: rec}
	}
	return root, neg, rec
}

// bindingVal returns (b, rec) with rec the ledger record justifying
// v ⊕ b = 0, composing the equivalence chain with the root's value record
// when needed. rec is -1 when the value cannot be attributed.
func (pt *provTracker) bindingVal(v anf.Var) (bool, int) {
	if pv, ok := pt.val[v]; ok {
		return pv.b, pv.rec
	}
	root, neg, erec := pt.bindingEq(v)
	rv, ok := pt.val[root]
	if !ok || erec < 0 {
		return false, -1
	}
	b := rv.b != neg
	rec := pt.append(anf.VarPoly(v).AddConstant(b),
		[]proof.Term{{Mult: anf.OnePoly(), Src: erec}, {Mult: anf.OnePoly(), Src: rv.rec}},
		"value through equivalence")
	pt.val[v] = provVal{b: b, rec: rec}
	return b, rec
}

// normalize mirrors VarState.NormalizePoly exactly — same substitutions in
// the same order, so the returned polynomial is identical — while
// recording witness terms for each substitution: the result satisfies
// q = p ⊕ Σ Mult·record(Src).Poly. Terms with Src -1 mark substitutions
// whose binding record could not be attributed.
func (pt *provTracker) normalize(st *VarState, p anf.Poly) (anf.Poly, []proof.Term) {
	var terms []proof.Term
	for _, v := range p.Vars() {
		if int(v) >= st.NumVars() {
			continue
		}
		if val, ok := st.Value(v); ok {
			a := cofactor(p, v)
			p = p.SubstituteConst(v, val)
			if a.IsZero() {
				continue
			}
			_, rec := pt.bindingVal(v)
			terms = append(terms, proof.Term{Mult: a, Src: rec})
			continue
		}
		r := st.Find(v)
		if r.V != v {
			a := cofactor(p, v)
			p = p.SubstituteVar(v, r.Poly())
			if a.IsZero() {
				continue
			}
			_, _, rec := pt.bindingEq(v)
			terms = append(terms, proof.Term{Mult: a, Src: rec})
		}
	}
	return p, terms
}

// slotRecord returns the ledger record backing slot i's normalized content
// q, appending a rewrite record (old content ⊕ substitution witness) when
// normalization changed the slot.
func (pt *provTracker) slotRecord(i int, orig, q anf.Poly, wit []proof.Term) int {
	old := pt.slotRec[i]
	if q.Equal(orig) && old >= 0 {
		return old
	}
	terms := make([]proof.Term, 0, len(wit)+1)
	terms = append(terms, proof.Term{Mult: anf.OnePoly(), Src: old})
	terms = append(terms, wit...)
	rec := pt.append(q, terms, fmt.Sprintf("normalized slot %d", i))
	pt.slotRec[i] = rec
	return rec
}

// noteValue records the binding v = b extracted from the slot record rec
// (whose polynomial is exactly v ⊕ b).
func (pt *provTracker) noteValue(v anf.Var, b bool, rec int) {
	pt.val[v] = provVal{b: b, rec: rec}
}

// noteFactor records v = 1 extracted from a monomial-plus-one record rec
// with v a factor of the monomial, via (v⊕1) = (v⊕1)·(m⊕1).
func (pt *provTracker) noteFactor(v anf.Var, rec int) {
	vp := anf.VarPoly(v).AddConstant(true)
	fr := pt.append(vp, []proof.Term{{Mult: vp, Src: rec}}, "factor of monomial+1")
	pt.val[v] = provVal{b: true, rec: fr}
}

// noteMerge records the equivalence x = y ⊕ neg extracted from record rec
// (polynomial x ⊕ y ⊕ neg, both variables free roots at merge time). The
// larger variable is the one absorbed, mirroring VarState.Merge.
func (pt *provTracker) noteMerge(x, y anf.Var, neg bool, rec int) {
	hi, lo := x, y
	if hi < lo {
		hi, lo = lo, hi
	}
	pt.eq[hi] = provEq{next: lo, neg: neg, rec: rec}
}

// canonSlotTerms sorts witness terms by slot, merges duplicates by adding
// their multipliers, and drops cancelled entries — keeping technique-side
// witnesses small and deterministic.
func canonSlotTerms(ts []SlotTerm) []SlotTerm {
	if len(ts) <= 1 {
		return ts
	}
	sort.SliceStable(ts, func(i, j int) bool { return ts[i].Slot < ts[j].Slot })
	out := ts[:0]
	for _, t := range ts {
		if n := len(out); n > 0 && out[n-1].Slot == t.Slot {
			out[n-1].Mult = out[n-1].Mult.Add(t.Mult)
			continue
		}
		out = append(out, t)
	}
	kept := out[:0]
	for _, t := range out {
		if !t.Mult.IsZero() {
			kept = append(kept, t)
		}
	}
	return kept
}

// scaleSlotTerms returns dst extended with mult·src.
func scaleSlotTerms(dst []SlotTerm, src []SlotTerm, mult anf.Poly) []SlotTerm {
	for _, t := range src {
		dst = append(dst, SlotTerm{Mult: mult.Mul(t.Mult), Slot: t.Slot})
	}
	return dst
}
