package core

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/anf"
	"repro/internal/ciphers/sha256"
	"repro/internal/ciphers/simon"
	"repro/internal/ciphers/sr"
)

// End-to-end: the full loop recovers the SR key from a generated
// plaintext/ciphertext instance.
func TestIntegrationSRKeyRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	inst := sr.GenerateInstance(sr.Params{N: 1, R: 2, C: 2, E: 4}, rng)
	cfg := DefaultConfig()
	res := Process(inst.Sys, cfg)
	if res.Status != SolvedSAT {
		t.Fatalf("status %v", res.Status)
	}
	if !VerifySolution(inst.Sys, res.Solution) {
		t.Fatal("solution does not satisfy the instance")
	}
	key := inst.KeyFromSolution(res.Solution)
	// Any key consistent with the P/C pair is a valid break; check it
	// reproduces the ciphertext.
	c := sr.New(sr.Params{N: 1, R: 2, C: 2, E: 4})
	ct := c.Encrypt(inst.Plain, key)
	for i := range ct {
		if ct[i] != inst.CipherT[i] {
			t.Fatalf("recovered key does not reproduce ciphertext at element %d", i)
		}
	}
}

// End-to-end: Simon key recovery through the loop, verified against the
// reference cipher.
func TestIntegrationSimonKeyRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	p := simon.Params{NPlaintexts: 4, Rounds: 6}
	inst := simon.GenerateInstance(p, rng)
	res := Process(inst.Sys, DefaultConfig())
	if res.Status != SolvedSAT {
		t.Fatalf("status %v", res.Status)
	}
	key := inst.KeyFromSolution(res.Solution)
	for i, pl := range inst.Plains {
		cx, cy := simon.Encrypt(pl[0], pl[1], key, p.Rounds)
		if cx != inst.Ciphers[i][0] || cy != inst.Ciphers[i][1] {
			t.Fatalf("recovered key fails pair %d", i)
		}
	}
}

// End-to-end: bitcoin nonce recovery with proof-of-work verification.
func TestIntegrationBitcoinNonce(t *testing.T) {
	rng := rand.New(rand.NewSource(303))
	p := sha256.BitcoinParams{K: 4, Rounds: 16}
	inst := sha256.GenerateBitcoin(p, rng)
	res := Process(inst.Sys, DefaultConfig())
	if res.Status != SolvedSAT {
		t.Fatalf("status %v", res.Status)
	}
	nonce := inst.NonceFromSolution(res.Solution)
	block := inst.Block
	block[12] = block[12]&^1 | nonce>>31
	block[13] = nonce<<1 | 1
	digest := sha256.Compress(block, p.Rounds)
	if digest[0]>>(32-uint(p.K)) != 0 {
		t.Fatalf("found nonce %08x does not meet the target (digest %08x)", nonce, digest[0])
	}
}

// Differential fuzz: Process must agree with brute force on random small
// systems, both satisfiable and unsatisfiable.
func TestDifferentialProcessVsBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	for trial := 0; trial < 60; trial++ {
		nVars := 3 + rng.Intn(6)
		sys := anf.NewSystem()
		sys.SetNumVars(nVars)
		nPolys := 2 + rng.Intn(3*nVars)
		for i := 0; i < nPolys; i++ {
			var monos []anf.Monomial
			for j := 0; j <= rng.Intn(3); j++ {
				var vs []anf.Var
				for d := 0; d < rng.Intn(3); d++ {
					vs = append(vs, anf.Var(rng.Intn(nVars)))
				}
				monos = append(monos, anf.NewMonomial(vs...))
			}
			if rng.Intn(2) == 1 {
				monos = append(monos, anf.One)
			}
			sys.Add(anf.FromMonomials(monos...))
		}
		want := false
		for mask := uint32(0); mask < 1<<uint(nVars); mask++ {
			if sys.Eval(func(v anf.Var) bool { return mask>>uint(v)&1 == 1 }) {
				want = true
				break
			}
		}
		cfg := DefaultConfig()
		cfg.Seed = int64(trial + 1)
		// Alternate extension configurations across trials.
		cfg.EnableProbing = trial%2 == 0
		cfg.EnableGroebner = trial%3 == 0
		res := Process(sys, cfg)
		switch res.Status {
		case SolvedSAT:
			if !want {
				t.Fatalf("trial %d: UNSAT system declared SAT", trial)
			}
			if !VerifySolution(sys, res.Solution) {
				t.Fatalf("trial %d: invalid solution", trial)
			}
		case SolvedUNSAT:
			if want {
				t.Fatalf("trial %d: SAT system declared UNSAT", trial)
			}
		case Processed:
			// No verdict: the residual system plus state must still admit
			// exactly the original satisfiability. At minimum, Processed
			// on an UNSAT system must not have fabricated assignments that
			// satisfy everything; spot-check that no contradiction was
			// missed by checking the processed ANF is consistent with the
			// original satisfiability.
			if !want {
				// Acceptable (fixed point without refutation), though with
				// the SAT step enabled and unlimited iterations this path
				// should be rare; flag it if the SAT step was on.
				t.Logf("trial %d: UNSAT system only processed (budget)", trial)
			}
		}
	}
}

// The full pipeline must be deterministic for a fixed seed.
func TestProcessDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	inst := simon.GenerateInstance(simon.Params{NPlaintexts: 2, Rounds: 5}, rng)
	cfg := DefaultConfig()
	cfg.Seed = 9
	a := Process(inst.Sys, cfg)
	b := Process(inst.Sys, cfg)
	if a.Status != b.Status || a.Iterations != b.Iterations {
		t.Fatalf("nondeterministic: %v/%d vs %v/%d", a.Status, a.Iterations, b.Status, b.Iterations)
	}
	if a.Status == SolvedSAT {
		for i := range a.Solution {
			if a.Solution[i] != b.Solution[i] {
				t.Fatal("solutions differ across identical runs")
			}
		}
	}
}

// Paper-scale smoke: the full SR-[1,4,4,8] system (800 variables) flows
// through the loop under a small time budget without issue. Solving it
// outright needs the paper's 5000 s class of compute; here we only demand
// that the machinery scales and learns something.
func TestIntegrationSRPaperScaleSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second paper-scale run")
	}
	rng := rand.New(rand.NewSource(505))
	inst := sr.GenerateInstance(sr.Paper144_8, rng)
	if inst.Sys.NumVars() != 800 {
		t.Fatalf("vars = %d, want 800", inst.Sys.NumVars())
	}
	cfg := DefaultConfig()
	cfg.TimeBudget = 5 * time.Second
	cfg.MaxIterations = 2
	res := Process(inst.Sys, cfg)
	if res.Status == SolvedUNSAT {
		t.Fatal("satisfiable SR instance declared UNSAT")
	}
	if res.Status == SolvedSAT {
		if !VerifySolution(inst.Sys, res.Solution) {
			t.Fatal("invalid solution")
		}
		return
	}
	total := res.XL.NewFacts + res.ElimLin.NewFacts + res.SAT.NewFacts + res.PropagationFacts
	if total == 0 {
		t.Fatal("no facts learnt at paper scale")
	}
	t.Logf("paper-scale: %d facts in %v", total, res.Elapsed)
}
