// Fragment-router benchmark family. Each job is a CNF residue that falls
// squarely inside one of the router's tractable fragments (pure 2SAT,
// pure Horn, pure XOR) or just outside all of them (the near-fragment
// control), measured two ways at the same fixed seeds:
//
//   - routed: route.Decide — one classification pass plus the fragment's
//     polynomial solver (SCC, counting unit propagation, or GF(2)
//     elimination), model-verified before the verdict is trusted; and
//   - cdcl: a full solver construction + load + search, the path the
//     engine would take with routing off.
//
// The family exists to keep the router honest: the routed column must
// stay an order of magnitude under the CDCL column on the pure
// fragments (the whole point of routing), and the near-fragment control
// bounds the classification overhead paid on residues that fall through.
package bench

import (
	"math/rand"
	"testing"

	"repro/internal/cnf"
	"repro/internal/route"
	"repro/internal/sat"
)

// FragmentJob is one deterministic router-level benchmark instance.
type FragmentJob struct {
	Name string
	// Frag is the classification route.Classify must produce; the
	// differential tests assert it.
	Frag route.Fragment
	// Build constructs the formula (called outside the timed region).
	Build func() *cnf.Formula
}

// Random2SAT builds a random formula of width-2 clauses over distinct
// variable pairs — the pure-binary fragment, solved by the router in
// O(n+m) via implication-graph SCCs.
func Random2SAT(nVars, nClauses int, rng *rand.Rand) *cnf.Formula {
	f := cnf.NewFormula(nVars)
	for i := 0; i < nClauses; i++ {
		a := rng.Intn(nVars)
		b := rng.Intn(nVars)
		for b == a {
			b = rng.Intn(nVars)
		}
		f.AddClause(
			cnf.MkLit(cnf.Var(a), rng.Intn(2) == 1),
			cnf.MkLit(cnf.Var(b), rng.Intn(2) == 1),
		)
	}
	return f
}

// Gadget2SAT builds k independent two-variable forcing gadgets
// (y ∨ a), (y ∨ ¬a): each y is forced true, but a false-polarity CDCL
// solver discovers that only through a decision → conflict → learn-unit
// cycle per gadget, paying full conflict-analysis overhead k times. The
// SCC router reads all k forcings off one linear pass, which is what
// makes this the family's order-of-magnitude 2SAT instance.
func Gadget2SAT(k int) *cnf.Formula {
	f := cnf.NewFormula(2 * k)
	for g := 0; g < k; g++ {
		y, a := cnf.Var(2*g), cnf.Var(2*g+1)
		f.AddClause(cnf.MkLit(y, false), cnf.MkLit(a, false))
		f.AddClause(cnf.MkLit(y, false), cnf.MkLit(a, true))
	}
	return f
}

// HornSparse builds a unit-free random Horn instance: nClauses ternary
// clauses ¬a ∨ ¬b ∨ c over distinct variables, nVars much larger than
// nClauses. Nothing propagates — the all-false default is already a
// model — but a complete solver still has to decide every one of the
// nVars variables through its activity heap before it may answer SAT,
// while the router verifies the default model in one pass over the
// clauses. The gap is the decision overhead, and it grows with nVars.
func HornSparse(nVars, nClauses int, rng *rand.Rand) *cnf.Formula {
	f := cnf.NewFormula(nVars)
	for i := 0; i < nClauses; i++ {
		a, b, c := rng.Intn(nVars), rng.Intn(nVars), rng.Intn(nVars)
		for b == a {
			b = rng.Intn(nVars)
		}
		for c == a || c == b {
			c = rng.Intn(nVars)
		}
		f.AddClause(
			cnf.MkLit(cnf.Var(a), true),
			cnf.MkLit(cnf.Var(b), true),
			cnf.MkLit(cnf.Var(c), false),
		)
	}
	return f
}

// HornChain builds a Horn instance whose verdict is decided by one long
// unit-propagation cascade: two positive units seed the chain, and each
// ternary clause ¬x_{i-2} ∨ ¬x_{i-1} ∨ x_i forces the next variable.
// With unsat=true a final all-negative clause over the last two forced
// variables closes the chain into a contradiction.
func HornChain(n int, unsat bool) *cnf.Formula {
	f := cnf.NewFormula(n)
	f.AddClause(cnf.MkLit(0, false))
	f.AddClause(cnf.MkLit(1, false))
	for i := 2; i < n; i++ {
		f.AddClause(
			cnf.MkLit(cnf.Var(i-2), true),
			cnf.MkLit(cnf.Var(i-1), true),
			cnf.MkLit(cnf.Var(i), false),
		)
	}
	if unsat {
		f.AddClause(cnf.MkLit(cnf.Var(n-2), true), cnf.MkLit(cnf.Var(n-1), true))
	}
	return f
}

// XorSystem builds a native-XOR linear system (no CNF clauses at all,
// unlike satgen.ParityChain's clausal expansion): nEqs equations of the
// given width with right-hand sides planted from a hidden solution. With
// unsat=true the last equation is repeated with its RHS flipped, making
// the system inconsistent by exactly one row.
func XorSystem(nVars, nEqs, width int, unsat bool, rng *rand.Rand) *cnf.Formula {
	f := cnf.NewFormula(nVars)
	sol := make([]bool, nVars)
	for i := range sol {
		sol[i] = rng.Intn(2) == 1
	}
	var lastVars []cnf.Var
	lastRHS := false
	for e := 0; e < nEqs; e++ {
		seen := make(map[int]bool, width)
		vs := make([]cnf.Var, 0, width)
		for len(vs) < width {
			v := rng.Intn(nVars)
			if seen[v] {
				continue
			}
			seen[v] = true
			vs = append(vs, cnf.Var(v))
		}
		rhs := false
		for _, v := range vs {
			if sol[v] {
				rhs = !rhs
			}
		}
		f.AddXor(rhs, vs...)
		lastVars, lastRHS = vs, rhs
	}
	if unsat {
		f.AddXor(!lastRHS, lastVars...)
	}
	return f
}

// FragmentJobs returns the full family at fixed seeds: one pure-fragment
// job per router (each chosen so the polynomial solve is an order of
// magnitude under the CDCL baseline — conflict-farm 2SAT, decision-bound
// sparse Horn, and a planted XOR system sized just under the solver's
// GJE work guard so both sides pay a full elimination) and the
// near-fragment control — a 2SAT instance salted with a handful of mixed
// ternary clauses, which must classify Mixed and fall through.
func FragmentJobs() []FragmentJob {
	return []FragmentJob{
		{
			Name: "2sat-gadget-k1000",
			Frag: route.Binary,
			Build: func() *cnf.Formula {
				return Gadget2SAT(1000)
			},
		},
		{
			Name: "horn-sparse-v500000-m50000",
			Frag: route.Horn,
			Build: func() *cnf.Formula {
				return HornSparse(500000, 50000, rand.New(rand.NewSource(7)))
			},
		},
		{
			Name: "xor-planted-v2048-e1300-w16",
			Frag: route.AffineXor,
			Build: func() *cnf.Formula {
				return XorSystem(2048, 1300, 16, false, rand.New(rand.NewSource(82)))
			},
		},
		{
			Name: "near2sat-v4000-m4000-salt8",
			Frag: route.Mixed,
			Build: func() *cnf.Formula {
				rng := rand.New(rand.NewSource(83))
				f := Random2SAT(4000, 4000, rng)
				// Eight ternary clauses with two positive literals each:
				// not Horn, not anti-Horn, not binary — the residue is
				// within a hair of 2SAT yet must classify Mixed.
				for i := 0; i < 8; i++ {
					f.AddClause(
						cnf.MkLit(cnf.Var(rng.Intn(4000)), false),
						cnf.MkLit(cnf.Var(rng.Intn(4000)), false),
						cnf.MkLit(cnf.Var(rng.Intn(4000)), true),
					)
				}
				return f
			},
		},
	}
}

// FragmentMeasurement is one job's routed-vs-CDCL timing result.
type FragmentMeasurement struct {
	// RoutedNsPerOp times route.Decide: classification plus, when the
	// residue is pure, the polynomial solve. On Mixed jobs it is the
	// fall-through overhead alone.
	RoutedNsPerOp int64 `json:"routed_ns_per_op"`
	// CDCLNsPerOp times solver construction + load + full search.
	CDCLNsPerOp int64 `json:"cdcl_ns_per_op"`
	// Speedup is CDCL/routed (0 when either side is unmeasured).
	Speedup float64 `json:"speedup"`
	// Routed reports whether the router actually decided the instance.
	Routed bool `json:"routed"`
}

// MeasureFragment benchmarks each job both ways (formula built outside
// the timed region) `rounds` times via testing.Benchmark and returns the
// per-job medians, mirroring MeasureCDCL's medians-of-rounds shape so
// the JSON artifacts diff cleanly across PRs.
func MeasureFragment(jobs []FragmentJob, profile sat.Profile, rounds int) map[string]FragmentMeasurement {
	if rounds <= 0 {
		rounds = 5
	}
	out := make(map[string]FragmentMeasurement, len(jobs))
	for _, job := range jobs {
		f := job.Build()
		_, _, routed := route.Decide(f)
		var routedNs, cdclNs []int64
		for r := 0; r < rounds; r++ {
			res := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					route.Decide(f)
				}
			})
			routedNs = append(routedNs, res.NsPerOp())
			res = testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					s := sat.New(sat.DefaultOptions(profile))
					if !s.AddFormula(f) {
						continue
					}
					s.Solve()
				}
			})
			cdclNs = append(cdclNs, res.NsPerOp())
		}
		m := FragmentMeasurement{
			RoutedNsPerOp: median64(routedNs),
			CDCLNsPerOp:   median64(cdclNs),
			Routed:        routed,
		}
		if m.RoutedNsPerOp > 0 {
			m.Speedup = float64(m.CDCLNsPerOp) / float64(m.RoutedNsPerOp)
		}
		out[job.Name] = m
	}
	return out
}
