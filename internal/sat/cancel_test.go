package sat

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"repro/internal/satgen"
)

// countingCtx is a context.Context whose Err flips to Canceled after the
// Nth poll — a deterministic way to cancel "mid-solve" without timers.
type countingCtx struct {
	context.Context
	polls   int
	trigger int
	done    chan struct{}
}

func newCountingCtx(trigger int) *countingCtx {
	return &countingCtx{
		Context: context.Background(),
		trigger: trigger,
		done:    make(chan struct{}),
	}
}

func (c *countingCtx) Done() <-chan struct{} { return c.done }

func (c *countingCtx) Err() error {
	c.polls++
	if c.polls >= c.trigger {
		return context.Canceled
	}
	return nil
}

func TestSolveCtxCancelledBeforeStart(t *testing.T) {
	inst := satgen.Pigeonhole(12, 11) // far too hard to finish
	s := New(DefaultOptions(ProfileMiniSat))
	s.AddFormula(inst.Formula)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if st := s.SolveCtx(ctx); st != Unknown {
		t.Fatalf("cancelled solve returned %v", st)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("cancelled solve took %v", d)
	}
}

// TestSolveCtxMidRestart cancels after a fixed number of interrupt polls,
// which land every ~256 conflicts and at restart boundaries — i.e. the
// cancellation arrives mid-search, across restarts.
func TestSolveCtxMidRestart(t *testing.T) {
	for _, trigger := range []int{1, 2, 5, 20} {
		inst := satgen.Pigeonhole(12, 11)
		s := New(DefaultOptions(ProfileMiniSat))
		s.AddFormula(inst.Formula)
		ctx := newCountingCtx(trigger)
		if st := s.SolveCtx(ctx); st != Unknown {
			t.Fatalf("trigger %d: cancelled solve returned %v", trigger, st)
		}
		// After the trigger fired, the solver may poll only a bounded number
		// of further times before giving up: once per ~256 conflicts plus
		// once per restart boundary, and it must stop at the first positive
		// poll. Allow a small slack for the restart-boundary double checks.
		if extra := ctx.polls - trigger; extra > 4 {
			t.Fatalf("trigger %d: solver kept polling %d times after cancellation", trigger, extra)
		}
	}
}

func TestSolveCtxWallClockBound(t *testing.T) {
	inst := satgen.Pigeonhole(12, 11)
	s := New(DefaultOptions(ProfileMiniSat))
	s.AddFormula(inst.Formula)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan Status, 1)
	go func() { done <- s.SolveCtx(ctx) }()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case st := <-done:
		if st != Unknown {
			t.Fatalf("cancelled solve returned %v", st)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("solver did not stop within 2s of cancellation")
	}
}

// The hook must survive across solve calls (unlike the one-shot Interrupt
// flag) and must not poison a solver whose context is still live.
func TestSetInterruptPersistsAcrossSolves(t *testing.T) {
	inst := satgen.Pigeonhole(12, 11)
	s := New(DefaultOptions(ProfileMiniSat))
	s.AddFormula(inst.Formula)
	stop := false
	s.SetInterrupt(func() bool { return stop })
	stop = true
	for i := 0; i < 2; i++ {
		if st := s.SolveLimited(-1); st != Unknown {
			t.Fatalf("solve %d with active hook returned %v", i, st)
		}
	}
	stop = false
	s.SetInterrupt(nil)
	if st := s.SolveLimited(100); st != Unknown {
		// Budget-bounded solve on a hard instance: Unknown is the expected
		// verdict; the point is that it ran (no stale interrupt).
		t.Logf("status %v", st)
	}
}

// SolveLimitedCtx with a background context must behave exactly like
// SolveLimited (no hook overhead path taken).
func TestSolveCtxBackgroundEquivalence(t *testing.T) {
	inst := satgen.ParityChain(16, 18, 3, true, rand.New(rand.NewSource(9)))
	a := New(DefaultOptions(ProfileMiniSat))
	a.AddFormula(inst.Formula.Clone())
	b := New(DefaultOptions(ProfileMiniSat))
	b.AddFormula(inst.Formula.Clone())
	stA := a.Solve()
	stB := b.SolveCtx(context.Background())
	if stA != stB {
		t.Fatalf("Solve=%v SolveCtx(background)=%v", stA, stB)
	}
}

func TestProbeLiteralsInterrupt(t *testing.T) {
	inst := satgen.Pigeonhole(8, 7)
	s := New(DefaultOptions(ProfileMiniSat))
	s.AddFormula(inst.Formula)
	s.SetInterrupt(func() bool { return true })
	start := time.Now()
	res := s.ProbeLiterals(0)
	if res.Unsat {
		t.Fatal("interrupted probe reported UNSAT")
	}
	if res.Probed != 0 {
		t.Fatalf("interrupted probe examined %d variables", res.Probed)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("interrupted probe took %v", d)
	}
}
