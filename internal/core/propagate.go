package core

import (
	"repro/internal/anf"
)

// Propagator runs ANF propagation (§II-A): value assignments from unit and
// monomial-plus-one polynomials, equivalence assignments from x ⊕ y and
// x ⊕ y ⊕ 1, applied through the master system's occurrence lists until a
// fixed point.
type Propagator struct {
	Sys   *anf.System
	State *VarState
	// Contradiction is set when 1 = 0 is derived; the system is UNSAT.
	Contradiction bool
}

// NewPropagator wraps a system with fresh state.
func NewPropagator(sys *anf.System) *Propagator {
	return &Propagator{Sys: sys, State: NewVarState(sys.NumVars())}
}

// Propagate runs to fixed point over the whole system. It returns the
// number of new facts (value or equivalence assignments) derived, and
// false if a contradiction was found.
func (p *Propagator) Propagate() (int, bool) {
	queue := make([]int, 0, p.Sys.RawLen())
	inQueue := make([]bool, p.Sys.RawLen())
	push := func(i int) {
		if i < len(inQueue) && !inQueue[i] {
			inQueue[i] = true
			queue = append(queue, i)
		}
	}
	for i := 0; i < p.Sys.RawLen(); i++ {
		push(i)
	}
	facts := 0
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		inQueue[i] = false
		n, affected, ok := p.step(i)
		if !ok {
			p.Contradiction = true
			return facts, false
		}
		facts += n
		for _, v := range affected {
			for _, j := range p.Sys.Occurrences(v) {
				push(j)
			}
		}
	}
	return facts, true
}

// step normalizes equation slot i and extracts any immediate facts. It
// returns the number of facts, the variables whose bindings changed, and
// false on contradiction.
func (p *Propagator) step(i int) (int, []anf.Var, bool) {
	q := p.Sys.At(i)
	if q.IsZero() {
		return 0, nil, true
	}
	p.State.Grow(p.Sys.NumVars())
	q = p.State.NormalizePoly(q)
	if q.IsZero() {
		p.Sys.Replace(i, anf.Zero())
		return 0, nil, true
	}
	if q.IsOne() {
		return 0, nil, false
	}
	facts := 0
	var affected []anf.Var
	switch {
	case q.NumTerms() == 1 && q.Deg() == 1:
		// Polynomial x: x = 0.
		v := q.Lead().Vars()[0]
		if !p.State.SetValue(v, false) {
			return 0, nil, false
		}
		facts++
		affected = append(affected, v)
		p.Sys.Replace(i, anf.Zero())
	case q.NumTerms() == 2 && q.Deg() == 1 && q.HasConstant():
		// Polynomial x ⊕ 1: x = 1.
		v := q.Lead().Vars()[0]
		if !p.State.SetValue(v, true) {
			return 0, nil, false
		}
		facts++
		affected = append(affected, v)
		p.Sys.Replace(i, anf.Zero())
	case q.IsMonomialPlusOne():
		// x·y·…·z ⊕ 1: every factor is 1.
		for _, v := range q.Lead().Vars() {
			if !p.State.SetValue(v, true) {
				return 0, nil, false
			}
			facts++
			affected = append(affected, v)
		}
		p.Sys.Replace(i, anf.Zero())
	case q.Deg() == 1 && q.NumTerms() == 2 && !q.HasConstant():
		// x ⊕ y: x = y.
		vs := q.LinearVars()
		changed, ok := p.State.Merge(vs[0], vs[1], false)
		if !ok {
			return 0, nil, false
		}
		if changed {
			facts++
			affected = append(affected, vs[0], vs[1])
		}
		p.Sys.Replace(i, anf.Zero())
	case q.Deg() == 1 && q.NumTerms() == 3 && q.HasConstant():
		// x ⊕ y ⊕ 1: x = ¬y.
		vs := q.LinearVars()
		changed, ok := p.State.Merge(vs[0], vs[1], true)
		if !ok {
			return 0, nil, false
		}
		if changed {
			facts++
			affected = append(affected, vs[0], vs[1])
		}
		p.Sys.Replace(i, anf.Zero())
	default:
		p.Sys.Replace(i, q)
	}
	return facts, affected, true
}

// AddFact adds a learnt polynomial to the master system unless an equal
// one is already present (after normalization). It reports whether the
// fact was new.
func (p *Propagator) AddFact(f anf.Poly) bool {
	p.State.Grow(p.Sys.NumVars())
	if mv, ok := f.MaxVar(); ok {
		p.State.Grow(int(mv) + 1)
	}
	q := p.State.NormalizePoly(f)
	if q.IsZero() {
		return false
	}
	if q.IsOne() {
		p.Contradiction = true
		p.Sys.Add(q)
		return true
	}
	if p.Sys.Contains(q) {
		return false
	}
	p.Sys.Add(q)
	return true
}

// AddFacts adds a batch, returning how many were new, and propagates to a
// fixed point afterwards (the paper applies ANF propagation whenever
// learnt facts are produced).
func (p *Propagator) AddFacts(fs []anf.Poly) (int, bool) {
	added := 0
	for _, f := range fs {
		if p.AddFact(f) {
			added++
		}
		if p.Contradiction {
			return added, false
		}
	}
	if added > 0 {
		if _, ok := p.Propagate(); !ok {
			return added, false
		}
	}
	return added, true
}
