// Package simp implements SAT preprocessing in the SatELite tradition:
// top-level unit propagation, subsumption, self-subsuming resolution
// (strengthening), and bounded variable elimination (BVE). It plays the
// role of the heavier inprocessing that distinguishes the paper's
// "Lingeling" solver column from plain MiniSat.
//
// Preprocessing is model-changing: eliminated variables must be
// reconstructed. Preprocess therefore returns a Reconstructor whose Extend
// method lifts a model of the simplified formula back to the original
// variable space.
package simp

import (
	"fmt"
	"math/bits"
	"sort"

	"repro/internal/cnf"
)

// Options bounds the preprocessing effort.
type Options struct {
	// MaxResolventLen discards eliminations that would create clauses
	// longer than this.
	MaxResolventLen int
	// MaxOccurrences skips elimination of variables occurring more often
	// than this (quadratic blow-up guard).
	MaxOccurrences int
	// MaxRounds bounds the subsume/eliminate fixpoint iterations.
	MaxRounds int
	// EnableBCE adds blocked-clause elimination to each round.
	EnableBCE bool
}

// DefaultOptions mirrors classic SatELite settings.
func DefaultOptions() Options {
	return Options{MaxResolventLen: 12, MaxOccurrences: 20, MaxRounds: 5}
}

// Reconstructor lifts models of the simplified formula back to the
// original formula's variables.
type Reconstructor struct {
	numVars int
	// elimination stack: groups pushed in elimination order; Extend
	// replays in reverse.
	stack []elimGroup
	// units fixed at the top level.
	units []cnf.Lit
}

type elimGroup struct {
	v       cnf.Var
	clauses []cnf.Clause // the original clauses containing v or ¬v
	// bce marks a blocked-clause entry: reconstruction flips the pivot
	// literal only when the clause is unsatisfied, instead of re-solving
	// the variable from scratch as BVE does.
	bce   bool
	pivot cnf.Lit
}

// Extend completes a model of the simplified formula: eliminated variables
// get values satisfying their original clauses; top-level units are
// restored. The input slice must cover the simplified formula's variables;
// the result covers the original formula's.
func (r *Reconstructor) Extend(model []bool) []bool {
	out := make([]bool, r.numVars)
	copy(out, model)
	for _, u := range r.units {
		out[u.Var()] = !u.Neg()
	}
	for i := len(r.stack) - 1; i >= 0; i-- {
		g := r.stack[i]
		if g.bce {
			// Blocked clause: flip the pivot only if the clause is
			// currently unsatisfied.
			c := g.clauses[0]
			sat := false
			for _, l := range c {
				if out[l.Var()] != l.Neg() {
					sat = true
					break
				}
			}
			if !sat {
				out[g.pivot.Var()] = !g.pivot.Neg()
			}
			continue
		}
		// BVE group: find a polarity for g.v that satisfies every original
		// clause. Default false; flip if some clause with the positive
		// literal is otherwise unsatisfied.
		out[g.v] = false
		for _, c := range g.clauses {
			sat := false
			needsTrue := false
			for _, l := range c {
				if l.Var() == g.v {
					if !l.Neg() {
						needsTrue = true
					}
					continue
				}
				if out[l.Var()] != l.Neg() {
					sat = true
					break
				}
			}
			if !sat && needsTrue {
				out[g.v] = true
			}
		}
	}
	return out
}

// Result of preprocessing.
type Result struct {
	// Formula is the simplified CNF (same variable numbering; eliminated
	// variables simply no longer occur).
	Formula *cnf.Formula
	// Reconstructor lifts models back; nil only when Unsat.
	Reconstructor *Reconstructor
	// Unsat is true when preprocessing already proves unsatisfiability.
	Unsat bool
	// Eliminated counts variables removed by BVE.
	Eliminated int
	// Subsumed counts clauses removed by subsumption.
	Subsumed int
	// Blocked counts clauses removed by blocked-clause elimination.
	Blocked int
	// Strengthened counts literals removed by self-subsumption.
	Strengthened int
}

// Preprocess simplifies the formula. XOR clauses are passed through
// untouched (their variables are frozen, i.e. never eliminated).
func Preprocess(f *cnf.Formula, opts Options) *Result {
	p := &preprocessor{
		opts:    opts,
		numVars: f.NumVars,
		rec:     &Reconstructor{numVars: f.NumVars},
		assigns: make([]int8, f.NumVars),
		frozen:  make([]bool, f.NumVars),
	}
	for _, x := range f.Xors {
		for _, v := range x.Vars {
			p.frozen[v] = true
		}
	}
	for _, c := range f.Clauses {
		nc, taut := c.Clone().Normalize()
		if taut {
			continue
		}
		p.addClause(nc)
	}
	res := &Result{Reconstructor: p.rec}
	if !p.run() {
		res.Unsat = true
		res.Reconstructor = nil
		return res
	}
	out := cnf.NewFormula(f.NumVars)
	for _, c := range p.clauses {
		if c.deleted {
			continue
		}
		out.AddClause(c.lits...)
	}
	for _, x := range f.Xors {
		// Substitute top-level assignments into the XOR.
		vs := make([]cnf.Var, 0, len(x.Vars))
		rhs := x.RHS
		for _, v := range x.Vars {
			switch p.assigns[v] {
			case 1:
				rhs = !rhs
			case 0:
				vs = append(vs, v)
			}
		}
		if len(vs) == 0 {
			if rhs {
				res.Unsat = true
				res.Reconstructor = nil
				return res
			}
			continue
		}
		out.AddXor(rhs, vs...)
	}
	// Re-assert top-level units so the simplified formula is equivalent on
	// the original variables.
	for _, u := range p.rec.units {
		out.AddClause(u)
	}
	res.Formula = out
	res.Eliminated = p.eliminated
	res.Blocked = p.blocked
	res.Subsumed = p.subsumed
	res.Strengthened = p.strengthened
	return res
}

type simpClause struct {
	lits    cnf.Clause
	deleted bool
	sig     uint64 // literal Bloom signature for fast subsumption checks
}

type preprocessor struct {
	opts    Options
	numVars int
	clauses []*simpClause
	occ     map[cnf.Lit][]*simpClause
	assigns []int8 // 0 unknown, 1 true, -1 false
	frozen  []bool
	rec     *Reconstructor
	queue   []cnf.Lit // pending top-level units

	eliminated   int
	subsumed     int
	strengthened int
	blocked      int
}

func signature(lits cnf.Clause) uint64 {
	var s uint64
	for _, l := range lits {
		s |= 1 << (uint64(l) % 64)
	}
	return s
}

func (p *preprocessor) addClause(lits cnf.Clause) {
	if p.occ == nil {
		p.occ = map[cnf.Lit][]*simpClause{}
	}
	if len(lits) == 1 {
		p.queue = append(p.queue, lits[0])
		return
	}
	c := &simpClause{lits: lits, sig: signature(lits)}
	p.clauses = append(p.clauses, c)
	for _, l := range lits {
		p.occ[l] = append(p.occ[l], c)
	}
}

func (p *preprocessor) run() bool {
	for round := 0; round < p.opts.MaxRounds; round++ {
		changed := false
		if !p.propagateUnits() {
			return false
		}
		if p.subsumeAll() {
			changed = true
		}
		if !p.propagateUnits() {
			return false
		}
		elimChanged, ok := p.eliminateVars()
		if !ok {
			return false
		}
		if elimChanged {
			changed = true
		}
		if !p.propagateUnits() {
			return false
		}
		if p.opts.EnableBCE {
			if p.eliminateBlocked() {
				changed = true
			}
			if !p.propagateUnits() {
				return false
			}
		}
		if !changed {
			break
		}
	}
	return true
}

// propagateUnits applies the pending top-level units to all clauses.
func (p *preprocessor) propagateUnits() bool {
	for len(p.queue) > 0 {
		u := p.queue[0]
		p.queue = p.queue[1:]
		v := u.Var()
		want := int8(1)
		if u.Neg() {
			want = -1
		}
		if p.assigns[v] != 0 {
			if p.assigns[v] != want {
				return false // contradictory units
			}
			continue
		}
		p.assigns[v] = want
		p.rec.units = append(p.rec.units, u)
		// Clauses containing u are satisfied.
		for _, c := range p.occ[u] {
			c.deleted = true
		}
		// Clauses containing ¬u shrink.
		for _, c := range p.occ[u.Not()] {
			if c.deleted {
				continue
			}
			out := c.lits[:0]
			for _, l := range c.lits {
				if l != u.Not() {
					out = append(out, l)
				}
			}
			c.lits = out
			c.sig = signature(out)
			switch len(c.lits) {
			case 0:
				return false
			case 1:
				p.queue = append(p.queue, c.lits[0])
				c.deleted = true
			}
		}
	}
	return true
}

// subsumeAll performs forward subsumption and self-subsuming resolution
// over all clauses. Reports whether anything changed.
func (p *preprocessor) subsumeAll() bool {
	changed := false
	for _, c := range p.clauses {
		if c.deleted {
			continue
		}
		if p.subsumeWith(c) {
			changed = true
		}
	}
	return changed
}

// subsumeWith uses clause c to subsume or strengthen other clauses.
func (p *preprocessor) subsumeWith(c *simpClause) bool {
	changed := false
	// Scan candidates via the least-occurring literal of c.
	best := c.lits[0]
	for _, l := range c.lits[1:] {
		if len(p.occ[l]) < len(p.occ[best]) {
			best = l
		}
	}
	// Self-subsumption: also check occurrences of each literal's negation.
	for _, d := range append(append([]*simpClause(nil), p.occ[best]...), p.occ[best.Not()]...) {
		if d == c || d.deleted || c.deleted {
			continue
		}
		if len(d.lits) < len(c.lits) {
			continue
		}
		// Subsumption needs c.sig ⊆ d.sig; strengthening flips exactly one
		// literal, so at most one signature bit of c may be missing from d.
		if bits.OnesCount64(c.sig&^d.sig) > 1 {
			continue
		}
		switch rel := subsumes(c.lits, d.lits); rel {
		case subsumeYes:
			d.deleted = true
			p.subsumed++
			changed = true
		case subsumeStrengthen:
			// c \ {l} ⊆ d \ {¬l}: remove ¬l from d where l is the flipped
			// literal found by subsumes.
			lit := strengthenLit(c.lits, d.lits)
			out := d.lits[:0]
			for _, l := range d.lits {
				if l != lit {
					out = append(out, l)
				}
			}
			d.lits = out
			d.sig = signature(out)
			p.strengthened++
			changed = true
			if len(d.lits) == 1 {
				p.queue = append(p.queue, d.lits[0])
				d.deleted = true
			}
		}
	}
	return changed
}

type subsumeRel int

const (
	subsumeNo subsumeRel = iota
	subsumeYes
	subsumeStrengthen
)

// subsumes reports whether every literal of c occurs in d (subsumption) or
// every literal occurs except exactly one that occurs negated
// (self-subsuming resolution).
func subsumes(c, d cnf.Clause) subsumeRel {
	flips := 0
	for _, l := range c {
		found := false
		for _, m := range d {
			if m == l {
				found = true
				break
			}
			if m == l.Not() {
				found = true
				flips++
				break
			}
		}
		if !found {
			return subsumeNo
		}
	}
	switch flips {
	case 0:
		return subsumeYes
	case 1:
		return subsumeStrengthen
	default:
		return subsumeNo
	}
}

// strengthenLit returns the literal of d to delete: the negation of the
// single literal of c that occurs flipped in d.
func strengthenLit(c, d cnf.Clause) cnf.Lit {
	for _, l := range c {
		for _, m := range d {
			if m == l.Not() {
				return m
			}
		}
	}
	panic("simp: strengthenLit called without a flipped literal")
}

// eliminateVars runs bounded variable elimination over all non-frozen
// variables in increasing occurrence order. The second result is false
// when draining pending units exposes a contradiction.
func (p *preprocessor) eliminateVars() (bool, bool) {
	changed := false
	type cand struct {
		v   cnf.Var
		occ int
	}
	var cands []cand
	for v := 0; v < p.numVars; v++ {
		if p.frozen[v] || p.assigns[v] != 0 {
			continue
		}
		pos := p.liveOcc(cnf.MkLit(cnf.Var(v), false))
		neg := p.liveOcc(cnf.MkLit(cnf.Var(v), true))
		total := len(pos) + len(neg)
		if total == 0 || total > p.opts.MaxOccurrences {
			continue
		}
		cands = append(cands, cand{cnf.Var(v), total})
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].occ < cands[j].occ })
	for _, c := range cands {
		// Eliminations queue resolvent units; drain them first so we never
		// eliminate a variable that a pending unit is about to fix.
		if len(p.queue) > 0 && !p.propagateUnits() {
			return changed, false
		}
		if p.assigns[c.v] != 0 {
			continue
		}
		if p.tryEliminate(c.v) {
			changed = true
		}
	}
	return changed, true
}

func (p *preprocessor) liveOcc(l cnf.Lit) []*simpClause {
	var out []*simpClause
	for _, c := range p.occ[l] {
		if !c.deleted && contains(c.lits, l) {
			out = append(out, c)
		}
	}
	return out
}

func contains(lits cnf.Clause, l cnf.Lit) bool {
	for _, m := range lits {
		if m == l {
			return true
		}
	}
	return false
}

// tryEliminate resolves the positive against the negative occurrences of v
// and replaces them when the resolvent set is no larger.
func (p *preprocessor) tryEliminate(v cnf.Var) bool {
	pl, nl := cnf.MkLit(v, false), cnf.MkLit(v, true)
	pos := p.liveOcc(pl)
	neg := p.liveOcc(nl)
	if len(pos)+len(neg) == 0 {
		return false // variable no longer occurs; leave it free
	}
	var resolvents []cnf.Clause
	for _, a := range pos {
		for _, b := range neg {
			r, ok := resolve(a.lits, b.lits, v)
			if !ok {
				continue // tautological resolvent
			}
			if len(r) > p.opts.MaxResolventLen {
				return false
			}
			resolvents = append(resolvents, r)
			if len(resolvents) > len(pos)+len(neg) {
				return false // would grow the formula
			}
		}
	}
	// Commit: record originals for model reconstruction, delete them, add
	// resolvents.
	g := elimGroup{v: v}
	for _, c := range append(append([]*simpClause(nil), pos...), neg...) {
		g.clauses = append(g.clauses, c.lits.Clone())
		c.deleted = true
	}
	p.rec.stack = append(p.rec.stack, g)
	p.assigns[v] = 2 // mark as eliminated (neither true nor false)
	for _, r := range resolvents {
		nr, taut := r.Normalize()
		if taut {
			continue
		}
		p.addClause(nr.Clone())
	}
	p.eliminated++
	return true
}

// resolve computes the resolvent of a and b on pivot v; reports ok=false
// for tautologies.
func resolve(a, b cnf.Clause, v cnf.Var) (cnf.Clause, bool) {
	var out cnf.Clause
	for _, l := range a {
		if l.Var() != v {
			out = append(out, l)
		}
	}
	for _, l := range b {
		if l.Var() != v {
			out = append(out, l)
		}
	}
	out, taut := out.Normalize()
	if taut {
		return nil, false
	}
	return out, true
}

// String summarizes a result.
func (r *Result) String() string {
	if r.Unsat {
		return "simp: UNSAT at preprocessing"
	}
	return fmt.Sprintf("simp: eliminated %d vars, subsumed %d, strengthened %d -> %s",
		r.Eliminated, r.Subsumed, r.Strengthened, r.Formula.Stats())
}
