package lint

import (
	"strings"
	"testing"
	"unicode/utf8"
)

// FuzzDirectives throws arbitrary comment text at ParseDirective and
// checks its contract rather than specific outputs: no panics, the
// (ok, err, Directive) legs are mutually consistent, and every accepted
// directive round-trips through a re-render of its canonical form.
// scripts/check.sh runs this for a few seconds next to the proof-checker
// fuzz targets.
func FuzzDirectives(f *testing.F) {
	for _, seed := range []string{
		"//lint:ignore arenagc view re-read below",
		"//lint:ignore",
		"//lint:ignore hotpath",
		"//lint:ignore  lockhold\ttabs and  runs of spaces",
		"//bosphorus:hotpath propagation inner loop",
		"//bosphorus:hotpath",
		"//bosphorus:hotpth typo",
		"//bosphorus:",
		"// plain comment",
		"//lint:ignoreX not a directive",
		"//lint:ignore\tgf2pack reason via tab",
		"//bosphorus:hotpath\ttab reason",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, text string) {
		d, ok, err := ParseDirective(text)
		if !ok {
			// Not a directive: no error and a zero value.
			if err != nil {
				t.Fatalf("ok=false with err=%v for %q", err, text)
			}
			if d != (Directive{}) {
				t.Fatalf("ok=false with non-zero directive %+v for %q", d, text)
			}
			// The prefixes are the whole trigger: anything starting with
			// one must be recognized (well-formed or not).
			if strings.HasPrefix(text, "//bosphorus:") {
				t.Fatalf("%q has the //bosphorus: prefix but was not recognized", text)
			}
			return
		}
		if err != nil {
			// Malformed directive: recognized, diagnosed, no value.
			if d != (Directive{}) {
				t.Fatalf("err=%v with non-zero directive %+v for %q", err, d, text)
			}
			return
		}
		switch d.Kind {
		case DirIgnore:
			if d.Analyzer == "" || d.Reason == "" {
				t.Fatalf("accepted ignore with empty analyzer/reason: %+v from %q", d, text)
			}
			if strings.ContainsAny(d.Analyzer, " \t") {
				t.Fatalf("analyzer %q contains whitespace (from %q)", d.Analyzer, text)
			}
			// Canonical re-render parses back to the same directive.
			rd, rok, rerr := ParseDirective("//lint:ignore " + d.Analyzer + " " + d.Reason)
			if !rok || rerr != nil {
				t.Fatalf("re-render of %+v failed: ok=%v err=%v", d, rok, rerr)
			}
			// Reason whitespace is normalized by Fields on the first
			// parse, so only the normalized form must be stable.
			if utf8.ValidString(text) && (rd.Analyzer != d.Analyzer || strings.Join(strings.Fields(rd.Reason), " ") != strings.Join(strings.Fields(d.Reason), " ")) {
				t.Fatalf("round-trip changed the directive: %+v -> %+v", d, rd)
			}
		case DirHotpath:
			if d.Analyzer != "" {
				t.Fatalf("hotpath directive with analyzer set: %+v from %q", d, text)
			}
		default:
			t.Fatalf("unknown directive kind %q from %q", d.Kind, text)
		}
	})
}
