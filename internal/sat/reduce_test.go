package sat

import (
	"math/rand"
	"testing"

	"repro/internal/cnf"
)

// Force enough conflicts that the clause database gets reduced, then check
// the verdict is still right — reduceDB must only drop redundant clauses.
func TestReduceDBKeepsCorrectness(t *testing.T) {
	rng := rand.New(rand.NewSource(31337))
	for trial := 0; trial < 8; trial++ {
		nVars := 30 + rng.Intn(20)
		f := randomFormula(rng, nVars, int(4.26*float64(nVars)), 3)
		opts := DefaultOptions(ProfileMiniSat)
		opts.LearntsFraction = 0.02 // aggressive reduction
		s := New(opts)
		s.AddFormula(f)
		st := s.Solve()

		ref := New(DefaultOptions(ProfileMiniSat))
		ref.AddFormula(f)
		want := ref.Solve()
		if st != want {
			t.Fatalf("trial %d: aggressive reduceDB changed verdict: %v vs %v", trial, st, want)
		}
		if st == Sat {
			m := s.Model()
			if !f.Eval(func(v cnf.Var) bool { return m[v] }) {
				t.Fatalf("trial %d: model invalid after reductions", trial)
			}
		}
	}
}

func TestReduceDBTriggered(t *testing.T) {
	opts := DefaultOptions(ProfileMiniSat)
	opts.LearntsFraction = 0.01
	s := New(opts)
	s.AddFormula(pigeonhole(8, 7))
	s.Solve()
	if s.ReducedDBs == 0 {
		t.Fatal("reduceDB never triggered despite tiny learnts budget")
	}
}

// Phase saving: re-solving after a restart-heavy run should still work,
// and disabling phase saving must not change verdicts.
func TestPhaseSavingToggle(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		nVars := 10 + rng.Intn(10)
		f := randomFormula(rng, nVars, int(4*float64(nVars)), 3)
		on := DefaultOptions(ProfileMiniSat)
		off := DefaultOptions(ProfileMiniSat)
		off.PhaseSaving = false
		sOn := New(on)
		sOn.AddFormula(f)
		sOff := New(off)
		sOff.AddFormula(f)
		if sOn.Solve() != sOff.Solve() {
			t.Fatalf("trial %d: phase saving changed the verdict", trial)
		}
	}
}

// RandomFreq decisions must preserve verdicts too.
func TestRandomDecisionsPreserveVerdicts(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 20; trial++ {
		nVars := 8 + rng.Intn(8)
		f := randomFormula(rng, nVars, int(4.2*float64(nVars)), 3)
		want := bruteForce(f)
		opts := DefaultOptions(ProfileMiniSat)
		opts.RandomFreq = 0.1
		s := New(opts)
		s.AddFormula(f)
		if (s.Solve() == Sat) != want {
			t.Fatalf("trial %d: randomized decisions changed the verdict", trial)
		}
	}
}

func BenchmarkPropagationHeavy(b *testing.B) {
	// A long implication chain: unit propagation dominates.
	s := NewDefault()
	n := 5000
	for i := 0; i < n; i++ {
		s.NewVar()
	}
	for i := 0; i+1 < n; i++ {
		s.AddClause(cnf.MkLit(cnf.Var(i), true), cnf.MkLit(cnf.Var(i+1), false))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s2 := NewDefault()
		for j := 0; j < n; j++ {
			s2.NewVar()
		}
		for j := 0; j+1 < n; j++ {
			s2.AddClause(cnf.MkLit(cnf.Var(j), true), cnf.MkLit(cnf.Var(j+1), false))
		}
		s2.AddClause(cnf.MkLit(0, false))
		if s2.Solve() != Sat {
			b.Fatal("chain unsat?")
		}
	}
}
