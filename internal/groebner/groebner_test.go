package groebner

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/anf"
	"repro/internal/ciphers/sr"
)

func sysFrom(t *testing.T, src string) *anf.System {
	t.Helper()
	sys, err := anf.ReadSystem(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestBasisSimpleSolved(t *testing.T) {
	// x0 + 1, x0*x1 + x1 -> basis should fix x0 = 1 and make x1 free
	// (x0*x1+x1 reduces to 0 under x0=1).
	sys := sysFrom(t, "x0 + 1\nx0*x1 + x1\n")
	res := Basis(sys, DefaultOptions())
	if !res.Complete || res.Contradiction {
		t.Fatalf("result: %v", res)
	}
	if len(res.Basis) != 1 || !res.Basis[0].Equal(anf.MustParsePoly("x0 + 1")) {
		t.Fatalf("basis = %v", res.Basis)
	}
}

func TestBasisDetectsUnsat(t *testing.T) {
	sys := sysFrom(t, "x0\nx0 + 1\n")
	res := Basis(sys, DefaultOptions())
	if !res.Contradiction {
		t.Fatalf("1 not found in ideal: %v", res)
	}
	if unsat, decided := IsUnsat(sys, DefaultOptions()); !unsat || !decided {
		t.Fatal("IsUnsat disagreed")
	}
}

func TestBasisHiddenUnsat(t *testing.T) {
	// UNSAT only via multiplication: x0*x1 + 1 (both must be 1) together
	// with x0 + x1 + 1 (exactly one is 1).
	sys := sysFrom(t, "x0*x1 + 1\nx0 + x1 + 1\n")
	res := Basis(sys, DefaultOptions())
	if !res.Contradiction {
		t.Fatalf("hidden contradiction missed: %v", res)
	}
}

// Basis polynomials must vanish on every solution of the input system.
func TestBasisSound(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 30; trial++ {
		nVars := 3 + rng.Intn(4)
		sys := anf.NewSystem()
		sys.SetNumVars(nVars)
		for i := 0; i < 2+rng.Intn(4); i++ {
			var monos []anf.Monomial
			for j := 0; j <= rng.Intn(3); j++ {
				var vs []anf.Var
				for d := 0; d < rng.Intn(3); d++ {
					vs = append(vs, anf.Var(rng.Intn(nVars)))
				}
				monos = append(monos, anf.NewMonomial(vs...))
			}
			sys.Add(anf.FromMonomials(monos...))
		}
		res := Basis(sys, DefaultOptions())
		if !res.Complete {
			continue
		}
		hasSolution := false
		for mask := uint32(0); mask < 1<<uint(nVars); mask++ {
			assign := func(v anf.Var) bool { return mask>>uint(v)&1 == 1 }
			if !sys.Eval(assign) {
				continue
			}
			hasSolution = true
			for _, g := range res.Basis {
				if g.Eval(assign) {
					t.Fatalf("trial %d: basis element %s violated by solution", trial, g)
				}
			}
		}
		if !hasSolution && !res.Contradiction {
			// A complete basis of an UNSAT system must contain 1.
			t.Fatalf("trial %d: UNSAT system but no contradiction in complete basis %v", trial, res.Basis)
		}
		if hasSolution && res.Contradiction {
			t.Fatalf("trial %d: SAT system declared UNSAT", trial)
		}
	}
}

// TestBudgetBlowUpOnSR reproduces the paper's M4GB observation: on a
// small-scale AES instance, the Gröbner computation exhausts a modest
// work budget rather than completing.
func TestBudgetBlowUpOnSR(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	inst := sr.GenerateInstance(sr.Params{N: 1, R: 2, C: 2, E: 4}, rng)
	opts := Options{MaxBasis: 2000, MaxTerms: 20000, MaxReductions: 3000}
	res := Basis(inst.Sys, opts)
	if res.Complete {
		t.Skip("tiny SR instance completed within budget; acceptable")
	}
	if res.PeakTerms == 0 {
		t.Fatal("no work recorded")
	}
	t.Logf("budget exhausted as expected: %v", res)
}

func TestLinearSystemBasis(t *testing.T) {
	// Purely linear systems always complete quickly and triangularize.
	sys := sysFrom(t, "x0 + x1\nx1 + x2\nx2 + 1\n")
	res := Basis(sys, DefaultOptions())
	if !res.Complete || res.Contradiction {
		t.Fatalf("linear basis failed: %v", res)
	}
	// All three variables pinned to 1: basis must force x0=x1=x2=1.
	assign := func(v anf.Var) bool { return true }
	for _, g := range res.Basis {
		if g.Eval(assign) {
			t.Fatalf("basis element %s violated by the solution", g)
		}
	}
	if len(res.Basis) != 3 {
		t.Fatalf("basis size = %d, want 3", len(res.Basis))
	}
}
