package gf2

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewMatrixZero(t *testing.T) {
	m := NewMatrix(3, 130)
	if m.Rows() != 3 || m.Cols() != 130 {
		t.Fatalf("dimensions = %dx%d, want 3x130", m.Rows(), m.Cols())
	}
	for r := 0; r < 3; r++ {
		for c := 0; c < 130; c++ {
			if m.Get(r, c) {
				t.Fatalf("new matrix has bit set at (%d,%d)", r, c)
			}
		}
	}
}

func TestSetGetFlip(t *testing.T) {
	m := NewMatrix(2, 70)
	m.Set(0, 0, true)
	m.Set(0, 63, true)
	m.Set(1, 64, true)
	m.Set(1, 69, true)
	if !m.Get(0, 0) || !m.Get(0, 63) || !m.Get(1, 64) || !m.Get(1, 69) {
		t.Fatal("Set/Get failed at word boundaries")
	}
	m.Set(0, 63, false)
	if m.Get(0, 63) {
		t.Fatal("Set false did not clear the bit")
	}
	m.Flip(0, 5)
	if !m.Get(0, 5) {
		t.Fatal("Flip did not set")
	}
	m.Flip(0, 5)
	if m.Get(0, 5) {
		t.Fatal("Flip did not clear")
	}
}

func TestIndexPanics(t *testing.T) {
	m := NewMatrix(2, 2)
	for _, fn := range []func(){
		func() { m.Get(2, 0) },
		func() { m.Get(0, 2) },
		func() { m.Get(-1, 0) },
		func() { m.Set(0, -1, true) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("out-of-range access did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestSwapAddRows(t *testing.T) {
	m := NewMatrix(2, 100)
	m.Set(0, 3, true)
	m.Set(0, 99, true)
	m.Set(1, 3, true)
	m.SwapRows(0, 1)
	if !m.Get(1, 99) || !m.Get(0, 3) || m.Get(0, 99) {
		t.Fatal("SwapRows wrong")
	}
	m.AddRowTo(0, 1) // row1 ^= row0: bit 3 cancels
	if m.Get(1, 3) || !m.Get(1, 99) {
		t.Fatal("AddRowTo wrong")
	}
}

func TestLeadingColAndPopCount(t *testing.T) {
	m := NewMatrix(3, 200)
	if m.LeadingCol(0) != -1 {
		t.Fatal("zero row should have leading col -1")
	}
	m.Set(0, 130, true)
	m.Set(0, 199, true)
	if got := m.LeadingCol(0); got != 130 {
		t.Fatalf("LeadingCol = %d, want 130", got)
	}
	if got := m.PopCountRow(0); got != 2 {
		t.Fatalf("PopCountRow = %d, want 2", got)
	}
	if !m.RowIsZero(1) || m.RowIsZero(0) {
		t.Fatal("RowIsZero wrong")
	}
}

func TestIdentityAndEqual(t *testing.T) {
	i := Identity(5)
	if !i.Equal(i.Clone()) {
		t.Fatal("clone not equal")
	}
	j := Identity(5)
	j.Flip(2, 3)
	if i.Equal(j) {
		t.Fatal("unequal matrices reported equal")
	}
	if i.Equal(NewMatrix(5, 6)) {
		t.Fatal("dimension mismatch reported equal")
	}
}

func TestString(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(0, 1, true)
	m.Set(1, 2, true)
	want := "010\n001"
	if got := m.String(); got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
}

func randomMatrix(rng *rand.Rand, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if rng.Intn(2) == 1 {
				m.Set(r, c, true)
			}
		}
	}
	return m
}

func TestMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := randomMatrix(rng, 7, 9)
	if !m.Mul(Identity(9)).Equal(m) {
		t.Fatal("m·I != m")
	}
	if !Identity(7).Mul(m).Equal(m) {
		t.Fatal("I·m != m")
	}
}

func TestMulAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 25; trial++ {
		a := randomMatrix(rng, 1+rng.Intn(10), 1+rng.Intn(70))
		b := randomMatrix(rng, a.Cols(), 1+rng.Intn(70))
		got := a.Mul(b)
		for r := 0; r < a.Rows(); r++ {
			for c := 0; c < b.Cols(); c++ {
				want := false
				for k := 0; k < a.Cols(); k++ {
					want = want != (a.Get(r, k) && b.Get(k, c))
				}
				if got.Get(r, c) != want {
					t.Fatalf("trial %d: product bit (%d,%d) = %v, want %v", trial, r, c, got.Get(r, c), want)
				}
			}
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := randomMatrix(rng, 13, 67)
	tt := m.Transpose().Transpose()
	if !tt.Equal(m) {
		t.Fatal("transpose twice is not identity")
	}
	tr := m.Transpose()
	for r := 0; r < m.Rows(); r++ {
		for c := 0; c < m.Cols(); c++ {
			if m.Get(r, c) != tr.Get(c, r) {
				t.Fatal("transpose bit mismatch")
			}
		}
	}
}

func TestMulDimensionPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("dimension mismatch did not panic")
		}
	}()
	NewMatrix(2, 3).Mul(NewMatrix(4, 2))
}

// Property: (A·B)ᵀ = Bᵀ·Aᵀ over GF(2).
func TestQuickTransposeOfProduct(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomMatrix(rng, 1+rng.Intn(12), 1+rng.Intn(12))
		b := randomMatrix(rng, a.Cols(), 1+rng.Intn(12))
		lhs := a.Mul(b).Transpose()
		rhs := b.Transpose().Mul(a.Transpose())
		return lhs.Equal(rhs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
