package bosphorus_test

import (
	"bytes"
	"context"
	"strings"
	"testing"

	bosphorus "repro"
	"repro/internal/cnf"
	"repro/internal/proof"
	"repro/internal/satgen"
)

func TestSolvePaperExample(t *testing.T) {
	sys, err := bosphorus.ParseANF(strings.NewReader(paperExample))
	if err != nil {
		t.Fatal(err)
	}
	res := bosphorus.Solve(sys, bosphorus.DefaultOptions())
	if res.Status != bosphorus.SAT {
		t.Fatalf("status = %v", res.Status)
	}
	want := map[int]bool{1: true, 2: true, 3: true, 4: true, 5: false}
	for v, b := range want {
		if res.Solution[v] != b {
			t.Fatalf("solution x%d = %v, want %v", v, res.Solution[v], b)
		}
	}
	if !bosphorus.VerifyANF(sys, res.Solution) {
		t.Fatal("solution does not verify")
	}
}

func TestSolveUnsat(t *testing.T) {
	sys, err := bosphorus.ParseANF(strings.NewReader("x0\nx0 + 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if res := bosphorus.Solve(sys, bosphorus.DefaultOptions()); res.Status != bosphorus.UNSAT {
		t.Fatalf("status = %v, want UNSAT", res.Status)
	}
}

func TestPreprocessReturnsAugmentedForms(t *testing.T) {
	sys, err := bosphorus.ParseANF(strings.NewReader(paperExample))
	if err != nil {
		t.Fatal(err)
	}
	res := bosphorus.Preprocess(sys, bosphorus.DefaultOptions())
	if res.ANF == nil || res.CNF == nil {
		t.Fatal("missing outputs")
	}
	if res.ANF.Len() == 0 {
		t.Fatal("processed ANF empty")
	}
	if res.FactsXL+res.FactsElimLin+res.FactsSAT+res.FactsPropagation == 0 {
		t.Fatal("no facts learnt on the worked example")
	}
}

func TestPreprocessCNFRoundTrip(t *testing.T) {
	src := `p cnf 3 4
1 2 0
-1 2 0
2 -3 0
-2 -3 0
`
	f, err := bosphorus.ParseDimacs(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	res := bosphorus.PreprocessCNF(f, bosphorus.DefaultOptions())
	// The formula forces v2 = true and v3 = false.
	if res.Status == bosphorus.UNSAT {
		t.Fatal("satisfiable CNF preprocessed to UNSAT")
	}
	var sb strings.Builder
	if err := bosphorus.WriteDimacs(&sb, res.CNF); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sb.String(), "p cnf") {
		t.Fatal("bad DIMACS output")
	}
}

func TestSolveCNF(t *testing.T) {
	src := "p cnf 2 2\n1 -2 0\n-1 2 0\n"
	f, err := bosphorus.ParseDimacs(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	res := bosphorus.SolveCNF(f, bosphorus.DefaultOptions())
	if res.Status != bosphorus.SAT {
		t.Fatalf("status = %v", res.Status)
	}
}

func TestWriteANF(t *testing.T) {
	sys, _ := bosphorus.ParseANF(strings.NewReader("x0*x1 + 1\n"))
	var sb strings.Builder
	if err := bosphorus.WriteANF(&sb, sys); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "x0*x1 + 1") {
		t.Fatalf("output %q", sb.String())
	}
}

func TestStatusStrings(t *testing.T) {
	if bosphorus.SAT.String() != "SAT" || bosphorus.UNSAT.String() != "UNSAT" || bosphorus.Processed.String() != "PROCESSED" {
		t.Fatal("status strings wrong")
	}
}

func TestOptionsProfiles(t *testing.T) {
	sys, _ := bosphorus.ParseANF(strings.NewReader(paperExample))
	for _, p := range []bosphorus.SolverProfile{bosphorus.MiniSat, bosphorus.Lingeling, bosphorus.CryptoMiniSat} {
		o := bosphorus.DefaultOptions()
		o.Profile = p
		res := bosphorus.Solve(sys, o)
		if res.Status == bosphorus.UNSAT {
			t.Fatalf("profile %v: wrong verdict", p)
		}
	}
}

func TestExtensionsThroughFacade(t *testing.T) {
	sys, _ := bosphorus.ParseANF(strings.NewReader(paperExample))
	o := bosphorus.DefaultOptions()
	o.EnableGroebner = true
	o.EnableProbing = true
	o.ExtraTechniques = []bosphorus.Technique{bosphorus.BuchbergerTechnique()}
	res := bosphorus.Solve(sys, o)
	if res.Status == bosphorus.UNSAT {
		t.Fatal("wrong verdict with extensions enabled")
	}
}

// TestSolveCubeThroughFacade drives cube-and-conquer from the public
// API: a satisfiable pigeonhole instance must yield a model that
// satisfies the formula, and an unsatisfiable one (with WithProof set)
// must yield a stitched DRAT proof the built-in checker accepts.
func TestSolveCubeThroughFacade(t *testing.T) {
	o := bosphorus.DefaultCubeOptions()
	o.Workers = 2
	o.ForceSplit = true
	o.WithProof = true

	sat := satgen.Pigeonhole(4, 4).Formula
	res := bosphorus.SolveCube(nil, sat, o)
	if res.Status != bosphorus.CubeSAT {
		t.Fatalf("PHP(4,4) status = %v, want SAT", res.Status)
	}
	if !sat.Eval(func(v cnf.Var) bool { return res.Model[v] }) {
		t.Fatal("cube model does not satisfy the formula")
	}

	unsat := satgen.Pigeonhole(4, 3).Formula
	res = bosphorus.SolveCube(context.Background(), unsat, o)
	if res.Status != bosphorus.CubeUNSAT {
		t.Fatalf("PHP(4,3) status = %v, want UNSAT", res.Status)
	}
	if len(res.Proof) == 0 {
		t.Fatal("UNSAT cube run returned no proof")
	}
	cr, err := proof.Check(unsat, bytes.NewReader(res.Proof))
	if err != nil || !cr.Verified {
		t.Fatalf("stitched proof rejected: %v (verified=%v)", err, cr != nil && cr.Verified)
	}
}
