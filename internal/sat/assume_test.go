package sat

import (
	"math/rand"
	"testing"

	"repro/internal/cnf"
)

func TestSolveAssumingBasic(t *testing.T) {
	s := NewDefault()
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(cnf.MkLit(a, false), cnf.MkLit(b, false)) // a ∨ b
	if st := s.SolveAssuming([]cnf.Lit{cnf.MkLit(a, true)}, -1); st != Sat {
		t.Fatalf("¬a assumption: %v", st)
	}
	if s.Value(a) || !s.Value(b) {
		t.Fatal("model should have a=0, b=1")
	}
	// The solver is reusable and unconstrained afterwards.
	if st := s.SolveAssuming([]cnf.Lit{cnf.MkLit(a, false)}, -1); st != Sat {
		t.Fatalf("a assumption: %v", st)
	}
	if !s.Value(a) {
		t.Fatal("assumption a not honoured")
	}
}

func TestSolveAssumingUnsatUnderAssumptions(t *testing.T) {
	s := NewDefault()
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(cnf.MkLit(a, false), cnf.MkLit(b, false))
	// Assume ¬a and ¬b: contradiction with the clause, but the formula
	// itself stays satisfiable.
	st := s.SolveAssuming([]cnf.Lit{cnf.MkLit(a, true), cnf.MkLit(b, true)}, -1)
	if st != Unsat {
		t.Fatalf("status %v", st)
	}
	if !s.Okay() {
		t.Fatal("solver wrongly marked globally UNSAT")
	}
	failed := s.FailedAssumptions()
	if len(failed) == 0 {
		t.Fatal("no failed assumption set")
	}
	// And without assumptions it is still SAT.
	if s.Solve() != Sat {
		t.Fatal("formula should be SAT without assumptions")
	}
}

func TestSolveAssumingGlobalUnsat(t *testing.T) {
	s := NewDefault()
	a := s.NewVar()
	s.AddClause(cnf.MkLit(a, false))
	s.AddClause(cnf.MkLit(a, true))
	if st := s.SolveAssuming(nil, -1); st != Unsat {
		t.Fatalf("status %v", st)
	}
	if s.Okay() {
		t.Fatal("globally UNSAT formula left Okay")
	}
}

func TestFailedAssumptionsMinimalish(t *testing.T) {
	// Clauses: (¬a1 ∨ ¬a2); a3 independent. Assuming a1, a2, a3 fails, and
	// the failed set must not be forced to include a3.
	s := NewDefault()
	a1, a2, a3 := s.NewVar(), s.NewVar(), s.NewVar()
	s.AddClause(cnf.MkLit(a1, true), cnf.MkLit(a2, true))
	st := s.SolveAssuming([]cnf.Lit{
		cnf.MkLit(a1, false), cnf.MkLit(a2, false), cnf.MkLit(a3, false),
	}, -1)
	if st != Unsat {
		t.Fatalf("status %v", st)
	}
	for _, l := range s.FailedAssumptions() {
		if l.Var() == a3 {
			t.Fatalf("independent assumption a3 in failed set %v", s.FailedAssumptions())
		}
	}
}

// Fuzz: SolveAssuming(asms) must agree with solving the formula plus the
// assumptions as unit clauses.
func TestQuickAssumptionsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(2718))
	for trial := 0; trial < 80; trial++ {
		nVars := 4 + rng.Intn(6)
		f := randomFormula(rng, nVars, int(3.5*float64(nVars)), 3)
		var asms []cnf.Lit
		seen := map[cnf.Var]bool{}
		for i := 0; i < 1+rng.Intn(3); i++ {
			v := cnf.Var(rng.Intn(nVars))
			if seen[v] {
				continue
			}
			seen[v] = true
			asms = append(asms, cnf.MkLit(v, rng.Intn(2) == 1))
		}
		sA := New(DefaultOptions(ProfileMiniSat))
		sA.AddFormula(f)
		stA := sA.SolveAssuming(asms, -1)

		sU := New(DefaultOptions(ProfileMiniSat))
		sU.AddFormula(f)
		okUnits := true
		for _, l := range asms {
			if !sU.AddClause(l) {
				okUnits = false
				break
			}
		}
		stU := Unsat
		if okUnits {
			stU = sU.Solve()
		}
		if stA != stU {
			t.Fatalf("trial %d: assuming=%v units=%v (asms %v)", trial, stA, stU, asms)
		}
		if stA == Sat {
			for _, l := range asms {
				if sA.Value(l.Var()) == l.Neg() {
					t.Fatalf("trial %d: assumption %v violated in model", trial, l)
				}
			}
		}
	}
}

func TestAssumptionsWithGauss(t *testing.T) {
	// XOR rows plus assumptions must interoperate.
	s := New(DefaultOptions(ProfileCMS))
	a, b, c := s.NewVar(), s.NewVar(), s.NewVar()
	s.AddXor(true, a, b, c) // a⊕b⊕c = 1
	// Assume a = 1, b = 1: the xor forces c = 1.
	if st := s.SolveAssuming([]cnf.Lit{cnf.MkLit(a, false), cnf.MkLit(b, false)}, -1); st != Sat {
		t.Fatalf("status %v", st)
	}
	if !s.Value(a) || !s.Value(b) || !s.Value(c) {
		t.Fatalf("model a=%v b=%v c=%v, want 1 1 1", s.Value(a), s.Value(b), s.Value(c))
	}
	// Assume a = 0, b = 1: the xor forces c = 0.
	if st := s.SolveAssuming([]cnf.Lit{cnf.MkLit(a, true), cnf.MkLit(b, false)}, -1); st != Sat {
		t.Fatalf("status %v", st)
	}
	if s.Value(a) || !s.Value(b) || s.Value(c) {
		t.Fatalf("model a=%v b=%v c=%v, want 0 1 0", s.Value(a), s.Value(b), s.Value(c))
	}
}
