package sat

import "repro/internal/cnf"

// BinaryEquivalences analyzes the binary implication graph of a formula:
// every 2-clause (a ∨ b) contributes the implications ¬a → b and ¬b → a.
// Literals in the same strongly connected component are equivalent —
// exactly the "linear equations from binary clauses" the paper's SAT-step
// harvest is after (§II-D), generalized from complementary pairs to
// arbitrary implication cycles.
//
// It returns one (root, member) pair per non-trivial equivalence, plus
// ok=false when a variable is equivalent to its own negation (the formula
// is unsatisfiable).
func BinaryEquivalences(f *cnf.Formula) ([][2]cnf.Lit, bool) {
	n := 2 * f.NumVars // literal-indexed graph
	adj := make([][]int32, n)
	for _, c := range f.Clauses {
		if len(c) != 2 {
			continue
		}
		a, b := c[0], c[1]
		if a.Var() == b.Var() {
			continue
		}
		adj[a.Not()] = append(adj[a.Not()], int32(b))
		adj[b.Not()] = append(adj[b.Not()], int32(a))
	}
	comp := tarjanSCC(adj)
	// UNSAT check: x and ¬x in one component.
	for v := 0; v < f.NumVars; v++ {
		pos, neg := 2*v, 2*v+1
		if comp[pos] == comp[neg] {
			return nil, false
		}
	}
	// Group literals by component; emit (root, member) pairs with the
	// smallest literal of each component as root.
	byComp := map[int32][]cnf.Lit{}
	for l := 0; l < n; l++ {
		byComp[comp[l]] = append(byComp[comp[l]], cnf.Lit(l))
	}
	var out [][2]cnf.Lit
	seen := map[cnf.Var]bool{}
	for _, lits := range byComp {
		if len(lits) < 2 {
			continue
		}
		root := lits[0]
		for _, l := range lits[1:] {
			if l.Var() == root.Var() {
				continue
			}
			// Emit each variable pair once (the complementary component
			// mirrors every pair).
			if seen[l.Var()] && seen[root.Var()] {
				continue
			}
			seen[l.Var()] = true
			seen[root.Var()] = true
			out = append(out, [2]cnf.Lit{root, l})
		}
	}
	return out, true
}

// tarjanSCC computes strongly connected components of a literal graph,
// iteratively (explicit stack) to handle long implication chains.
func tarjanSCC(adj [][]int32) []int32 {
	n := len(adj)
	const unvisited = -1
	index := make([]int32, n)
	low := make([]int32, n)
	comp := make([]int32, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = unvisited
		comp[i] = unvisited
	}
	var stack []int32
	var nextIndex, nextComp int32

	type frame struct {
		v     int32
		child int
	}
	var callStack []frame
	for root := 0; root < n; root++ {
		if index[root] != unvisited {
			continue
		}
		callStack = append(callStack[:0], frame{int32(root), 0})
		index[root] = nextIndex
		low[root] = nextIndex
		nextIndex++
		stack = append(stack, int32(root))
		onStack[root] = true
		for len(callStack) > 0 {
			fr := &callStack[len(callStack)-1]
			if fr.child < len(adj[fr.v]) {
				w := adj[fr.v][fr.child]
				fr.child++
				if index[w] == unvisited {
					index[w] = nextIndex
					low[w] = nextIndex
					nextIndex++
					stack = append(stack, w)
					onStack[w] = true
					callStack = append(callStack, frame{w, 0})
				} else if onStack[w] && low[fr.v] > index[w] {
					low[fr.v] = index[w]
				}
				continue
			}
			// Post-visit: pop and propagate lowlink.
			v := fr.v
			callStack = callStack[:len(callStack)-1]
			if len(callStack) > 0 {
				parent := &callStack[len(callStack)-1]
				if low[parent.v] > low[v] {
					low[parent.v] = low[v]
				}
			}
			if low[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = nextComp
					if w == v {
						break
					}
				}
				nextComp++
			}
		}
	}
	return comp
}
