package core

import (
	"math/rand"
	"testing"

	"repro/internal/anf"
	"repro/internal/ciphers/simon"
	"repro/internal/ciphers/sr"
)

func TestDeriveSeedDecorrelated(t *testing.T) {
	seen := map[int64]bool{}
	for iter := 0; iter < 8; iter++ {
		for job := 0; job < 8; job++ {
			s := deriveSeed(42, iter, job)
			if seen[s] {
				t.Fatalf("seed collision at iter=%d job=%d", iter, job)
			}
			seen[s] = true
		}
	}
	if deriveSeed(42, 3, 2) != deriveSeed(42, 3, 2) {
		t.Fatal("deriveSeed not a pure function")
	}
}

// resultFingerprint renders everything about a Result that the pipeline
// promises to keep Workers-independent.
func resultFingerprint(t *testing.T, r *Result) string {
	t.Helper()
	s := r.Status.String()
	s += "|" + r.State.String()
	for _, p := range r.System.Polys() {
		s += "|" + p.String()
	}
	for _, b := range r.Solution {
		if b {
			s += "1"
		} else {
			s += "0"
		}
	}
	return s
}

// TestProcessWorkersBitIdentical is the tentpole determinism contract: with
// the snapshot pipeline enabled, the entire Result — verdict, solution,
// learnt-fact counts, final system and variable state — must be bit-identical
// for every Workers value ≥ 1.
func TestProcessWorkersBitIdentical(t *testing.T) {
	instances := []*anf.System{
		simon.GenerateInstance(simon.Params{NPlaintexts: 2, Rounds: 5},
			rand.New(rand.NewSource(77))).Sys,
		sr.GenerateInstance(sr.Params{N: 1, R: 1, C: 2, E: 4},
			rand.New(rand.NewSource(5))).Sys,
	}
	for i, sys := range instances {
		cfg := DefaultConfig()
		cfg.Seed = 9
		cfg.EnableGroebner = true
		cfg.Workers = 1
		base := Process(sys, cfg)
		want := resultFingerprint(t, base)
		for _, w := range []int{2, 4} {
			cfg.Workers = w
			got := Process(sys, cfg)
			if base.Status != got.Status || base.Iterations != got.Iterations {
				t.Fatalf("instance %d: Workers=1 gave %v/%d, Workers=%d gave %v/%d",
					i, base.Status, base.Iterations, w, got.Status, got.Iterations)
			}
			if base.XL != got.XL || base.ElimLin != got.ElimLin ||
				base.SAT != got.SAT || base.Groebner != got.Groebner ||
				base.Extra != got.Extra ||
				base.PropagationFacts != got.PropagationFacts {
				t.Fatalf("instance %d: phase stats differ between Workers=1 and Workers=%d", i, w)
			}
			if fp := resultFingerprint(t, got); fp != want {
				t.Fatalf("instance %d: result fingerprint differs between Workers=1 and Workers=%d", i, w)
			}
		}
	}
}

// TestProcessWorkersSolves checks the snapshot pipeline still recovers the
// key, i.e. parallelism does not cost solving power on the standard cases.
func TestProcessWorkersSolves(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	inst := sr.GenerateInstance(sr.Params{N: 1, R: 1, C: 2, E: 4}, rng)
	cfg := DefaultConfig()
	cfg.Workers = 4
	res := Process(inst.Sys, cfg)
	if res.Status != SolvedSAT {
		t.Fatalf("status %v, want SAT", res.Status)
	}
	if !VerifySolution(inst.Sys, res.Solution) {
		t.Fatal("solution does not satisfy the system")
	}
}

// TestPickElimVarMatchesRescan cross-checks the single-pass occurrence
// counter against the obvious per-variable rescan on random systems.
func TestPickElimVarMatchesRescan(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	randPoly := func(nvars int) anf.Poly {
		p := anf.Zero()
		for t := 0; t < 1+rng.Intn(5); t++ {
			m := anf.NewMonomial(anf.Var(rng.Intn(nvars)), anf.Var(rng.Intn(nvars)))
			p = p.Add(anf.FromMonomials(m))
		}
		return p
	}
	naive := func(vs []anf.Var, rest []anf.Poly) anf.Var {
		best, bestCount := vs[0], int(^uint(0)>>1)
		for _, v := range vs {
			count := 0
			for _, p := range rest {
				if p.ContainsVar(v) {
					count++
				}
			}
			if count < bestCount {
				best, bestCount = v, count
			}
		}
		return best
	}
	for trial := 0; trial < 200; trial++ {
		nvars := 4 + rng.Intn(40)
		rest := make([]anf.Poly, 1+rng.Intn(20))
		for i := range rest {
			rest[i] = randPoly(nvars)
		}
		nvs := 1 + rng.Intn(6)
		if nvs > nvars {
			nvs = nvars
		}
		seen := map[anf.Var]bool{}
		var vs []anf.Var
		for len(vs) < nvs {
			v := anf.Var(rng.Intn(nvars))
			if !seen[v] {
				seen[v] = true
				vs = append(vs, v)
			}
		}
		sortVars(vs)
		if got, want := pickElimVar(vs, rest), naive(vs, rest); got != want {
			t.Fatalf("trial %d: pickElimVar=%v naive=%v (vs=%v)", trial, got, want, vs)
		}
	}
}

func sortVars(vs []anf.Var) {
	for i := 1; i < len(vs); i++ {
		for j := i; j > 0 && vs[j] < vs[j-1]; j-- {
			vs[j], vs[j-1] = vs[j-1], vs[j]
		}
	}
}

// BenchmarkPickElimVar isolates the eliminate-variable choice that used to
// rescan rest once per candidate variable.
func BenchmarkPickElimVar(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	const nvars = 256
	rest := make([]anf.Poly, 400)
	for i := range rest {
		p := anf.Zero()
		for t := 0; t < 6; t++ {
			m := anf.NewMonomial(anf.Var(rng.Intn(nvars)), anf.Var(rng.Intn(nvars)))
			p = p.Add(anf.FromMonomials(m))
		}
		rest[i] = p
	}
	vs := []anf.Var{3, 17, 40, 99, 180, 220}
	var s elimScratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.pick(vs, rest)
	}
}

// BenchmarkProcessWorkers runs the whole loop on the Simon instance under
// the snapshot pipeline — the end-to-end number the -j flag moves.
func BenchmarkProcessWorkers(b *testing.B) {
	sys := simon.GenerateInstance(simon.Params{NPlaintexts: 2, Rounds: 5},
		rand.New(rand.NewSource(77))).Sys
	for _, w := range []int{1, 4} {
		b.Run(map[int]string{1: "w1", 4: "w4"}[w], func(b *testing.B) {
			cfg := DefaultConfig()
			cfg.Seed = 9
			cfg.Workers = w
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = Process(sys, cfg)
			}
		})
	}
}
