package sat

// watcher stores a ref as an opaque handle next to its blocker: clean.
type watcher struct {
	ref     ClauseRef
	blocker uint32
}

// okHandleUse: equality against NullRef (or another ref) is the one
// comparison a handle supports, and passing refs around is free.
func okHandleUse(w watcher, r ClauseRef) bool {
	return w.ref != NullRef && w.ref == r
}

// badOffsetMath reimplements arena traversal outside the arena.
func badOffsetMath(r ClauseRef) ClauseRef {
	return r + 1 // want arenaref "raw ClauseRef offset arithmetic"
}

// badOrdering compares offsets by position, which is meaningless after a
// compacting GC.
func badOrdering(a, b ClauseRef) bool {
	return a < b // want arenaref "raw ClauseRef offset arithmetic"
}

// badHeaderPeek reads the backing store directly.
func badHeaderPeek(a *clauseArena, r ClauseRef) int {
	w := a.header(r) // a method call is fine...
	_ = w
	return len(a.data) // want arenaref "backing store"
}

// badMint fabricates a ref from an integer.
func badMint(i int) ClauseRef {
	return ClauseRef(i) // want arenaref "conversion into ClauseRef"
}

// badLeak extracts the raw offset.
func badLeak(r ClauseRef) uint32 {
	return uint32(r) // want arenaref "conversion out of ClauseRef"
}
