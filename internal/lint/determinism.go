package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// DeterminismAnalyzer guards the bit-identical-run contract of the
// provenance-tracked packages (internal/core, internal/proof), of the
// cube-and-conquer layer (internal/cube, internal/share), and of the
// routing tier (internal/route, internal/walksat), whose single-worker
// runs must reproduce from the seed alone: a run is reproducible from
// Config.Seed alone, so nothing in those packages may consult a global
// entropy source or let map iteration order decide the order facts are
// learnt or recorded. Rules:
//
//   - No package-level math/rand calls (rand.Intn, rand.Perm, ...): the
//     global source is seeded from runtime entropy. Constructing an
//     explicitly seeded generator (rand.New(rand.NewSource(seed))) is
//     fine; in internal/core, internal/route, and internal/walksat it
//     must additionally go through the one core.NewRNG helper so every
//     generator derives from the configured seed (WalkSAT restarts and
//     noise flips replay bit-identically from Options.Seed).
//   - No time.Now: wall-clock reads make runs diverge. Timing-only uses
//     (Result.Elapsed, deadlines) carry a //lint:ignore with the reason.
//   - No map-range loop that feeds an ordered output (append or an
//     add/record/emit-style call in the body) unless the function sorts
//     the result afterwards: map order is randomized per process, so the
//     fact/equation order — and with it the whole downstream run — would
//     differ between identical invocations.
var DeterminismAnalyzer = &Analyzer{
	Name: "determinism",
	Doc:  "provenance-tracked paths must be reproducible: no global rand, no time.Now, no map-order-dependent fact ordering",
	Run:  runDeterminism,
}

var determinismTargets = []string{"internal/core", "internal/proof", "internal/cube", "internal/share", "internal/route", "internal/walksat"}

// newRNGScoped are the targets where RNG construction must go through
// core.NewRNG rather than bare rand.New(rand.NewSource(...)).
var newRNGScoped = []string{"internal/core", "internal/route", "internal/walksat"}

// rngConstructors are the math/rand functions that build explicitly
// seeded generators rather than drawing from the global source.
var rngConstructors = map[string]bool{"New": true, "NewSource": true}

func runDeterminism(pass *Pass) {
	targeted := false
	for _, t := range determinismTargets {
		if pkgPathHas(pass.Pkg, t) {
			targeted = true
			break
		}
	}
	if !targeted {
		return
	}
	viaNewRNG := false
	for _, t := range newRNGScoped {
		if pkgPathHas(pass.Pkg, t) {
			viaNewRNG = true
			break
		}
	}
	// The helper itself lives in internal/core; only there may a function
	// named NewRNG construct a generator directly.
	inCore := pkgPathHas(pass.Pkg, "internal/core")
	for _, file := range pass.Pkg.Files {
		eachFuncBody(file, func(fd *ast.FuncDecl, body *ast.BlockStmt) {
			checkEntropySources(pass, fd, body, viaNewRNG, inCore)
			checkMapRangeOrdering(pass, body)
		})
	}
}

// checkEntropySources flags global math/rand use and time.Now. In
// viaNewRNG packages bare RNG construction is also flagged — except in
// internal/core's own NewRNG helper, which is where it must live.
func checkEntropySources(pass *Pass, fd *ast.FuncDecl, body *ast.BlockStmt, viaNewRNG, inCore bool) {
	funcName := ""
	if fd != nil {
		funcName = fd.Name.Name
	}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch {
		case isPkgIdent(pass.Pkg, sel.X, "math/rand"):
			if !rngConstructors[sel.Sel.Name] {
				pass.Reportf(call.Pos(),
					"rand.%s draws from the global math/rand source; use the run's seeded *rand.Rand", sel.Sel.Name)
			} else if viaNewRNG && !(inCore && funcName == "NewRNG") {
				pass.Reportf(call.Pos(),
					"construct RNGs through core.NewRNG so every generator derives from Config.Seed")
			}
		case isPkgIdent(pass.Pkg, sel.X, "time") && sel.Sel.Name == "Now":
			pass.Reportf(call.Pos(),
				"time.Now makes provenance-tracked runs irreproducible; derive ordering from the seed, not the clock")
		}
		return true
	})
}

// orderedSinkFragments mark a call inside a map-range body as producing
// ordered output.
var orderedSinkFragments = []string{"add", "record", "emit", "learn", "push", "write", "fact"}

// checkMapRangeOrdering flags range-over-map loops whose body feeds an
// ordered sink, unless a sort call follows the loop in the same function.
func checkMapRangeOrdering(pass *Pass, body *ast.BlockStmt) {
	var sortCalls []token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if isPkgIdent(pass.Pkg, sel.X, "sort") || isPkgIdent(pass.Pkg, sel.X, "slices") {
				sortCalls = append(sortCalls, call.Pos())
			}
		}
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := typeOf(pass.Pkg, rng.X)
		if t == nil {
			return true
		}
		if !isMapType(t) {
			return true
		}
		if !bodyFeedsOrderedSink(rng.Body) {
			return true
		}
		for _, p := range sortCalls {
			if p > rng.End() {
				return true // sorted afterwards: order restored
			}
		}
		pass.Reportf(rng.Pos(),
			"map iteration order feeds an ordered output; collect and sort the keys first (or sort the result)")
		return true
	})
}

// bodyFeedsOrderedSink reports whether the loop body appends to a slice or
// calls an add/record/emit-style function.
func bodyFeedsOrderedSink(body *ast.BlockStmt) bool {
	return containsCall(body, func(call *ast.CallExpr) bool {
		name := calleeName(call)
		if name == "append" {
			return true
		}
		lower := strings.ToLower(name)
		for _, frag := range orderedSinkFragments {
			if strings.Contains(lower, frag) {
				return true
			}
		}
		return false
	})
}
