// Bosphorus as a CNF preprocessor (the paper's §III-D use-case): a
// parity-heavy CNF — the kind of structure hidden from clause-level
// reasoning but transparent at the ANF level — is translated to ANF
// (clause → product of negated literals), run through the fact-learning
// loop, and the learnt unit/equivalence facts are handed back to a plain
// CDCL solver alongside the original clauses.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"time"

	bosphorus "repro"
	"repro/internal/cnf"
	"repro/internal/sat"
	"repro/internal/satgen"
)

func main() {
	nVars := flag.Int("vars", 32, "parity system variables")
	seed := flag.Int64("seed", 5, "instance seed")
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	inst := satgen.ParityChain(*nVars, *nVars+4, 3, true, rng)
	fmt.Printf("instance %s: %s (planted SAT)\n", inst.Name, inst.Formula.Stats())

	// Baseline: plain CDCL.
	s1 := sat.New(sat.DefaultOptions(sat.ProfileMiniSat))
	s1.AddFormula(inst.Formula)
	t0 := time.Now()
	st1 := s1.Solve()
	fmt.Printf("plain MiniSat profile:      %v in %v (%d conflicts)\n",
		st1, time.Since(t0).Round(time.Microsecond), s1.Conflicts)

	// Bosphorus preprocessing: CNF -> ANF -> learnt facts.
	opts := bosphorus.DefaultOptions()
	opts.Seed = *seed
	t1 := time.Now()
	res := bosphorus.PreprocessCNF(inst.Formula, opts)
	fmt.Printf("bosphorus preprocessing:    %v in %v (facts xl=%d elimlin=%d sat=%d prop=%d)\n",
		res.Status, time.Since(t1).Round(time.Microsecond),
		res.FactsXL, res.FactsElimLin, res.FactsSAT, res.FactsPropagation)

	// Solve the original CNF augmented with the facts the loop learnt
	// (unit clauses for determined variables; the processed CNF's short
	// clauses over original variables carry the equivalences).
	augmented := inst.Formula.Clone()
	added := 0
	for _, c := range res.CNF.Clauses {
		if len(c) > 2 {
			continue
		}
		ok := true
		for _, l := range c {
			if int(l.Var()) >= inst.Formula.NumVars {
				ok = false
			}
		}
		if ok {
			augmented.AddClause(c...)
			added++
		}
	}
	fmt.Printf("augmenting original CNF with %d learnt fact clauses\n", added)
	s2 := sat.New(sat.DefaultOptions(sat.ProfileMiniSat))
	s2.AddFormula(augmented)
	t2 := time.Now()
	st2 := s2.Solve()
	fmt.Printf("MiniSat profile after pre:  %v in %v (%d conflicts)\n",
		st2, time.Since(t2).Round(time.Microsecond), s2.Conflicts)
	if st2 == sat.Sat {
		m := s2.Model()
		if !inst.Formula.Eval(func(v cnf.Var) bool { return m[v] }) {
			panic("augmented model violates the original formula")
		}
		fmt.Println("model verified against the original CNF ✓")
	}
}
